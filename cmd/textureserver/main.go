// Command textureserver serves texture cards over HTTP. It binds its
// port immediately, fits the topic model in the background (answering
// 503 on model-backed routes until ready), and drains gracefully on
// SIGINT/SIGTERM:
//
//	POST /annotate   {recipe JSON}  → texture card
//	GET  /topics                    → the fitted topics
//	GET  /healthz                   → liveness (process is up)
//	GET  /readyz                    → readiness (model fitted, not draining)
//	GET  /statusz                   → runtime counters
//
// Usage:
//
//	textureserver [-addr :8080] [-scale 1.0] [-iters 300]
//	              [-pool N] [-request-timeout 5s] [-drain-timeout 10s]
//	              [-admit-wait 250ms]
//
// Example:
//
//	curl -s localhost:8080/annotate -d '{
//	  "id":"my-jelly","title":"ゼリー",
//	  "ingredients":[{"name":"ゼラチン","amount":"5g"},
//	                 {"name":"水","amount":"400ml"}]}'
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		scale        = flag.Float64("scale", 1.0, "training corpus scale")
		iters        = flag.Int("iters", 300, "Gibbs sweeps for the startup fit")
		pool         = flag.Int("pool", runtime.GOMAXPROCS(0), "concurrent fold-in annotators")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Second, "per-request deadline (504 past it; 0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown budget for in-flight requests")
		admitWait    = flag.Duration("admit-wait", 250*time.Millisecond, "max wait for an annotator before shedding with 429")
	)
	flag.Parse()

	opts := serve.DefaultOptions()
	opts.Pool = *pool
	opts.RequestTimeout = *reqTimeout
	opts.AdmitWait = *admitWait
	srv := serve.NewPending(opts)

	// Bind first, fit later: /healthz and /readyz answer while the
	// Gibbs fit runs, so orchestrators see a live-but-not-ready pod
	// instead of a connection refused.
	go func() {
		log.Printf("fitting topic model (scale %.2f, %d sweeps)…", *scale, *iters)
		start := time.Now()
		popts := pipeline.DefaultOptions()
		popts.Corpus.Scale = *scale
		popts.Model.Iterations = *iters
		out, err := pipeline.Run(popts)
		if err != nil {
			log.Fatalf("model fit failed; the server can never become ready: %v", err)
		}
		if err := srv.SetOutput(out); err != nil {
			log.Fatal(err)
		}
		log.Printf("model ready in %v: %d recipes, %d topics",
			time.Since(start).Round(time.Millisecond), len(out.Docs), out.Model.K)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("listening on %s (pool %d, request timeout %v, admit wait %v)",
		*addr, *pool, *reqTimeout, *admitWait)
	if err := serve.ListenAndServe(ctx, hs, srv, *drainTimeout); err != nil {
		log.Fatal(err)
	}
	log.Println("drained cleanly")
}
