// Command textureserver serves texture cards over HTTP. It binds its
// port immediately, acquires its model in the background (answering
// 503 on model-backed routes until ready), and drains gracefully on
// SIGINT/SIGTERM:
//
//	POST /annotate      {recipe JSON}  → texture card
//	POST /ingest        {recipe JSON}  → durable WAL append (with -ingest-dir)
//	POST /ingest/batch  {recipes}      → batched durable appends
//	GET  /topics                       → the fitted topics
//	GET  /healthz                      → liveness (process is up)
//	GET  /readyz                       → readiness (model fitted, not draining)
//	GET  /statusz                      → runtime counters
//	GET  /metrics                      → Prometheus text exposition
//	POST /admin/reload                 → swap in the bundle file again (with -bundle)
//
// The model comes from one of three places: a -bundle file saved by
// texturetopics (instant startup, reloadable at runtime via SIGHUP or
// POST /admin/reload), a model -store published to by texturetopics
// (the replica follows the registry's promoted generation, hot-swapping
// new rollouts and degrading gracefully when the store is unreachable),
// or a startup fit (-scale/-iters). A startup fit with -checkpoint-dir
// writes crash-safe checkpoints; with -resume it continues a
// half-finished fit instead of starting over.
//
// With -ingest-dir the server accepts online corpus growth: POST
// /ingest fsyncs each recipe into a durable WAL before acking, folds it
// into the live model opportunistically, and — when a -store registry
// is also configured — a background re-fit controller streams the base
// corpus plus the WAL through the pipeline once -refit-records (or
// -refit-age) accumulate past the watermark, publishes and promotes the
// merged bundle so every follower rolls forward.
//
// Usage:
//
//	textureserver [-addr :8080] [-bundle model.bundle]
//	              [-store fs:DIR|mem:] [-registry-poll 5s] [-generation-pin N]
//	              [-scale 1.0] [-iters 300]
//	              [-ingest-dir dir] [-refit-records 1000] [-refit-age 0]
//	              [-refit-interval 15s] [-refit-base corpus.jsonl]
//	              [-checkpoint-dir dir] [-checkpoint-every 25] [-resume]
//	              [-supervise] [-max-restarts 3] [-sweep-timeout 0] [-max-ll-drop 0]
//	              [-admin-token secret]
//	              [-pool N] [-max-batch 64] [-cache] [-cache-size 4096]
//	              [-request-timeout 5s] [-drain-timeout 10s]
//	              [-admit-wait 250ms] [-log-format text|json] [-pprof]
//
// Example:
//
//	curl -s localhost:8080/annotate -d '{
//	  "id":"my-jelly","title":"ゼリー",
//	  "ingredients":[{"name":"ゼラチン","amount":"5g"},
//	                 {"name":"水","amount":"400ml"}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/serve"
	_ "repro/internal/shardfit" // registers the sharded fitter with the pipeline
	"repro/internal/storage"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		bundlePath   = flag.String("bundle", "", "serve this bundle file instead of fitting at startup")
		storeSpec    = flag.String("store", "", "follow the model registry in this store (fs:DIR, mem:, or a bare directory)")
		registryPoll = flag.Duration("registry-poll", 5*time.Second, "registry poll interval (with -store)")
		genPin       = flag.Int64("generation-pin", 0, "pin this replica to a registry generation ID instead of following promotions (with -store)")
		scale        = flag.Float64("scale", 1.0, "training corpus scale")
		iters        = flag.Int("iters", 300, "Gibbs sweeps for the startup fit")
		ckDir        = flag.String("checkpoint-dir", "", "write startup-fit checkpoints into this directory")
		ckEvery      = flag.Int("checkpoint-every", 25, "sweeps between checkpoints (with -checkpoint-dir)")
		resume       = flag.Bool("resume", false, "resume the startup fit from -checkpoint-dir if a checkpoint exists")
		supervise    = flag.Bool("supervise", false, "run the startup fit under the self-healing supervisor")
		maxRst       = flag.Int("max-restarts", 3, "supervised recovery attempts after the first (with -supervise)")
		sweepTO      = flag.Duration("sweep-timeout", 0, "supervised stall watchdog: abort a sweep exceeding this duration (0 disables)")
		maxLLDrop    = flag.Float64("max-ll-drop", 0, "supervised divergence threshold below the best sweep's log-likelihood (0 disables)")
		shards       = flag.Int("shards", 1, "fit the startup corpus as this many supervised shards merged by sufficient statistics")
		shardDir     = flag.String("shard-dir", "", "durable shard manifest + statistics directory for the startup fit (with -shards)")
		ingestDir    = flag.String("ingest-dir", "", "durable ingest WAL directory; mounts POST /ingest and /ingest/batch")
		refitRecords = flag.Uint64("refit-records", 1000, "trigger a background re-fit after this many accepted records past the watermark (with -ingest-dir and -store)")
		refitAge     = flag.Duration("refit-age", 0, "trigger a re-fit once the oldest unfitted record is this old, regardless of count (0 disables)")
		refitPoll    = flag.Duration("refit-interval", 15*time.Second, "re-fit trigger poll cadence")
		refitBase    = flag.String("refit-base", "", "frozen JSONL base corpus re-fits grow the WAL on top of (empty: WAL records alone)")
		adminToken   = flag.String("admin-token", "", "X-Admin-Token required by POST /admin/reload (empty: no token check)")
		pool         = flag.Int("pool", runtime.GOMAXPROCS(0), "concurrent fold-in annotators")
		maxBatch     = flag.Int("max-batch", 64, "max recipes per POST /annotate/batch (413 over)")
		cacheOn      = flag.Bool("cache", true, "serve repeated annotation requests from the response cache (single-flight deduped)")
		cacheSize    = flag.Int("cache-size", serve.DefaultCacheSize, "max cached annotation responses (with -cache)")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Second, "per-request deadline (504 past it; 0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown budget for in-flight requests")
		admitWait    = flag.Duration("admit-wait", 250*time.Millisecond, "max wait for an annotator before shedding with 429")
		f32Kernel    = flag.Bool("f32-kernel", false, "serve fold-ins through the float32 scoring kernel (float64 accumulation; fitting is unaffected)")
		aliasKernel  = flag.Bool("alias-kernel", false, "serve fold-ins through alias-method/Gumbel categorical draws (different RNG stream than the default path)")
		logFormat    = flag.String("log-format", "text", "access/progress log format: text or json")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logEvery     = flag.Int("log-every", 50, "log fitting progress every N sweeps (0 disables)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logFormat)

	if *storeSpec != "" && *bundlePath != "" {
		log.Fatal("textureserver: -store and -bundle are mutually exclusive; a replica follows the registry or a file, not both")
	}
	if *genPin != 0 && *storeSpec == "" {
		log.Fatal("textureserver: -generation-pin requires -store")
	}
	if *refitBase != "" && *ingestDir == "" {
		log.Fatal("textureserver: -refit-base requires -ingest-dir")
	}
	if *refitRecords == 0 {
		// NewRefitter treats 0 as "use the default"; an operator typing 0
		// almost certainly wanted per-record refits and must hear that
		// they cannot have them, not silently get 1000.
		log.Fatal("textureserver: -refit-records must be at least 1 (use -refit-age to trigger by age instead)")
	}

	// One registry shared by the server, the fitting pipeline, and the
	// ingest manager, so /metrics is a single page.
	metrics := obs.NewRegistry()

	opts := serve.DefaultOptions()
	opts.Metrics = metrics
	opts.Pool = *pool
	opts.MaxBatch = *maxBatch
	opts.Cache = *cacheOn
	opts.CacheSize = *cacheSize
	opts.RequestTimeout = *reqTimeout
	opts.AdmitWait = *admitWait
	opts.AccessLog = logger
	opts.Pprof = *pprofOn
	opts.AdminToken = *adminToken
	opts.Kernel = core.KernelOptions{Float32: *f32Kernel, Alias: *aliasKernel}
	if *bundlePath != "" {
		// A file-backed model can be replaced at runtime: SIGHUP and
		// POST /admin/reload both re-read the bundle and swap it in
		// without dropping traffic.
		opts.Reload = func(context.Context) (*pipeline.Output, error) {
			return pipeline.LoadBundleFile(*bundlePath)
		}
	}

	// The ingest manager recovers the WAL (truncating any torn tail)
	// before the server mounts its routes, so the first /ingest already
	// sees the recovered sequence space.
	var mgr *ingest.Manager
	if *ingestDir != "" {
		var err error
		mgr, err = ingest.OpenManager(ingest.ManagerOptions{
			Dir:      *ingestDir,
			ShardDir: *shardDir,
			Metrics:  metrics,
		})
		if err != nil {
			log.Fatalf("textureserver: ingest: %v", err)
		}
		defer mgr.Close()
		opts.Ingest = mgr
		st := mgr.WAL().Stats()
		logger.Info("ingest WAL recovered", "dir", *ingestDir,
			"records", st.Records, "segments", st.Segments,
			"last_seq", st.LastSeq, "watermark", mgr.Watermark())
	}

	srv := serve.NewPending(opts)

	// Registry follower mode: the model comes from the store's promoted
	// generation, so the startup fit/load goroutine below is skipped and
	// the follower loop (started once the signal context exists) owns
	// the model lifecycle end to end.
	var follower *serve.Follower
	var registry *storage.Registry
	if *storeSpec != "" {
		// A breaker cooldown of half the poll interval guarantees a
		// recovered backend gets its half-open probe by the next poll, so
		// replicas converge within one interval of recovery.
		st, err := storage.Open(*storeSpec, storage.RobustOptions{BreakerCooldown: *registryPoll / 2})
		if err != nil {
			log.Fatalf("textureserver: %v", err)
		}
		registry = storage.NewRegistry(st)
		follower, err = srv.NewFollower(serve.FollowOptions{
			Registry: registry,
			Interval: *registryPoll,
			Pin:      *genPin,
		})
		if err != nil {
			log.Fatalf("textureserver: %v", err)
		}
		logger.Info("following model registry", "store", *storeSpec,
			"poll", registryPoll.String(), "pin", *genPin)
	}

	// Bind first, load or fit later: /healthz and /readyz answer while
	// the model is acquired, so orchestrators see a live-but-not-ready
	// pod instead of a connection refused.
	if follower == nil {
		go func() {
			start := time.Now()
			var out *pipeline.Output
			var err error
			if *bundlePath != "" {
				logger.Info("loading bundle", "path", *bundlePath)
				out, err = pipeline.LoadBundleFile(*bundlePath)
			} else {
				logger.Info("fitting topic model", "scale", *scale, "sweeps", *iters,
					"checkpoint_dir", *ckDir, "resume", *resume)
				popts := pipeline.DefaultOptions()
				popts.Corpus.Scale = *scale
				popts.Model.Iterations = *iters
				popts.Checkpoint = pipeline.CheckpointOptions{Dir: *ckDir, Every: *ckEvery, Resume: *resume}
				popts.Supervise = *supervise
				popts.MaxRestarts = *maxRst
				popts.SweepTimeout = *sweepTO
				popts.MaxLLDrop = *maxLLDrop
				popts.ShardCount = *shards
				popts.ShardDir = *shardDir
				// The fit records into the server's registry, so the sweep and
				// stage series show up on the same /metrics page as the serving
				// counters.
				popts.Metrics = srv.Metrics()
				popts.Model.Hooks = pipeline.SweepProgress(logger, *logEvery)
				out, err = pipeline.Run(popts)
			}
			if err != nil {
				log.Fatalf("model acquisition failed; the server can never become ready: %v", err)
			}
			if err := srv.SetOutput(out); err != nil {
				log.Fatal(err)
			}
			logger.Info("model ready",
				"elapsed", time.Since(start).Round(time.Millisecond).String(),
				"recipes", len(out.Docs), "topics", out.Model.K)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if follower != nil {
		go follower.Run(ctx)
	}

	// Watermark-triggered background re-fit: needs both a WAL to replay
	// and a registry to publish into. Without -store the WAL still
	// accrues durably and an offline `texturetopics -ingest-dir` run
	// folds it in later.
	switch {
	case mgr != nil && registry != nil:
		var base pipeline.StreamSource
		if *refitBase != "" {
			base = pipeline.FileSource(*refitBase)
		}
		ropts := pipeline.DefaultOptions()
		ropts.Corpus.Scale = *scale
		ropts.Model.Iterations = *iters
		ropts.Supervise = *supervise
		ropts.MaxRestarts = *maxRst
		ropts.SweepTimeout = *sweepTO
		ropts.MaxLLDrop = *maxLLDrop
		ropts.ShardCount = *shards
		if *shards > 1 {
			// -shard-dir pulls double duty: the ingest watermark lives in
			// its manifest even for single-chain re-fits, but the pipeline
			// accepts a shard directory only for an actually sharded fit.
			ropts.ShardDir = *shardDir
		}
		ropts.Metrics = metrics
		ropts.Model.Hooks = pipeline.SweepProgress(logger, *logEvery)
		refitter, err := ingest.NewRefitter(ingest.RefitOptions{
			Manager:    mgr,
			Base:       base,
			Pipeline:   ropts,
			Registry:   registry,
			MinRecords: *refitRecords,
			MaxAge:     *refitAge,
			Interval:   *refitPoll,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			log.Fatalf("textureserver: %v", err)
		}
		go refitter.Run(ctx)
		logger.Info("re-fit controller running",
			"min_records", *refitRecords, "max_age", refitAge.String(),
			"interval", refitPoll.String(), "base", *refitBase)
	case mgr != nil:
		logger.Info("ingest WAL active without -store; records accrue for an offline re-fit (texturetopics -ingest-dir)")
	}

	// SIGHUP = operator asking for a zero-downtime model reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *bundlePath == "" {
				logger.Warn("SIGHUP ignored: no -bundle to reload from")
				continue
			}
			gen, err := srv.Reload(ctx)
			if err != nil {
				logger.Error("SIGHUP reload failed; still serving the previous model", "err", err.Error())
				continue
			}
			logger.Info("SIGHUP reload complete", "generation", gen, "path", *bundlePath)
		}
	}()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("listening", "addr", *addr, "pool", *pool,
		"request_timeout", reqTimeout.String(), "admit_wait", admitWait.String(),
		"pprof", *pprofOn)
	if err := serve.ListenAndServe(ctx, hs, srv, *drainTimeout); err != nil {
		log.Fatal(err)
	}
	logger.Info("drained cleanly")
}
