// Command textureserver serves texture cards over HTTP: it fits the
// topic model once at startup, then answers
//
//	POST /annotate   {recipe JSON}  → texture card
//	GET  /topics                    → the fitted topics
//	GET  /healthz                   → liveness
//
// Usage:
//
//	textureserver [-addr :8080] [-scale 1.0] [-iters 300]
//
// Example:
//
//	curl -s localhost:8080/annotate -d '{
//	  "id":"my-jelly","title":"ゼリー",
//	  "ingredients":[{"name":"ゼラチン","amount":"5g"},
//	                 {"name":"水","amount":"400ml"}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		scale = flag.Float64("scale", 1.0, "training corpus scale")
		iters = flag.Int("iters", 300, "Gibbs sweeps for the startup fit")
	)
	flag.Parse()

	log.Printf("fitting topic model (scale %.2f, %d sweeps)…", *scale, *iters)
	start := time.Now()
	opts := pipeline.DefaultOptions()
	opts.Corpus.Scale = *scale
	opts.Model.Iterations = *iters
	out, err := pipeline.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("model ready in %v: %d recipes, %d topics", time.Since(start).Round(time.Millisecond),
		len(out.Docs), out.Model.K)

	srv, err := serve.New(out)
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Println("listening on", *addr)
	log.Fatal(server.ListenAndServe())
}
