// Command textureserver serves texture cards over HTTP. It binds its
// port immediately, fits the topic model in the background (answering
// 503 on model-backed routes until ready), and drains gracefully on
// SIGINT/SIGTERM:
//
//	POST /annotate   {recipe JSON}  → texture card
//	GET  /topics                    → the fitted topics
//	GET  /healthz                   → liveness (process is up)
//	GET  /readyz                    → readiness (model fitted, not draining)
//	GET  /statusz                   → runtime counters
//	GET  /metrics                   → Prometheus text exposition
//
// Usage:
//
//	textureserver [-addr :8080] [-scale 1.0] [-iters 300]
//	              [-pool N] [-request-timeout 5s] [-drain-timeout 10s]
//	              [-admit-wait 250ms] [-log-format text|json] [-pprof]
//
// Example:
//
//	curl -s localhost:8080/annotate -d '{
//	  "id":"my-jelly","title":"ゼリー",
//	  "ingredients":[{"name":"ゼラチン","amount":"5g"},
//	                 {"name":"水","amount":"400ml"}]}'
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		scale        = flag.Float64("scale", 1.0, "training corpus scale")
		iters        = flag.Int("iters", 300, "Gibbs sweeps for the startup fit")
		pool         = flag.Int("pool", runtime.GOMAXPROCS(0), "concurrent fold-in annotators")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Second, "per-request deadline (504 past it; 0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "shutdown budget for in-flight requests")
		admitWait    = flag.Duration("admit-wait", 250*time.Millisecond, "max wait for an annotator before shedding with 429")
		logFormat    = flag.String("log-format", "text", "access/progress log format: text or json")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logEvery     = flag.Int("log-every", 50, "log fitting progress every N sweeps (0 disables)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, *logFormat)

	opts := serve.DefaultOptions()
	opts.Pool = *pool
	opts.RequestTimeout = *reqTimeout
	opts.AdmitWait = *admitWait
	opts.AccessLog = logger
	opts.Pprof = *pprofOn
	srv := serve.NewPending(opts)

	// Bind first, fit later: /healthz and /readyz answer while the
	// Gibbs fit runs, so orchestrators see a live-but-not-ready pod
	// instead of a connection refused.
	go func() {
		logger.Info("fitting topic model", "scale", *scale, "sweeps", *iters)
		start := time.Now()
		popts := pipeline.DefaultOptions()
		popts.Corpus.Scale = *scale
		popts.Model.Iterations = *iters
		// The fit records into the server's registry, so the sweep and
		// stage series show up on the same /metrics page as the serving
		// counters.
		popts.Metrics = srv.Metrics()
		popts.Model.Hooks = pipeline.SweepProgress(logger, *logEvery)
		out, err := pipeline.Run(popts)
		if err != nil {
			log.Fatalf("model fit failed; the server can never become ready: %v", err)
		}
		if err := srv.SetOutput(out); err != nil {
			log.Fatal(err)
		}
		logger.Info("model ready",
			"elapsed", time.Since(start).Round(time.Millisecond).String(),
			"recipes", len(out.Docs), "topics", out.Model.K)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	logger.Info("listening", "addr", *addr, "pool", *pool,
		"request_timeout", reqTimeout.String(), "admit_wait", admitWait.String(),
		"pprof", *pprofOn)
	if err := serve.ListenAndServe(ctx, hs, srv, *drainTimeout); err != nil {
		log.Fatal(err)
	}
	logger.Info("drained cleanly")
}
