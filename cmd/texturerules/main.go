// Command texturerules mines association rules bridging recipe
// information — gel dose bands, emulsion presence, cooking-step
// keywords — to the sensory texture categories of the description, the
// extension the paper's conclusion proposes for food-industry use.
//
// Usage:
//
//	texturerules [-scale 1.0] [-support 0.01] [-conf 0.6] [-lift 1.05]
//	             [-max-antecedent 2] [-top 30]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/rules"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "corpus scale")
		seed    = flag.Uint64("seed", 7, "corpus seed")
		support = flag.Float64("support", 0.01, "minimum rule support")
		conf    = flag.Float64("conf", 0.6, "minimum confidence")
		lift    = flag.Float64("lift", 1.05, "minimum lift")
		maxAnte = flag.Int("max-antecedent", 2, "maximum antecedent size")
		top     = flag.Int("top", 30, "rules to print")
	)
	flag.Parse()

	cfg := corpus.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	recipes, err := corpus.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texturerules:", err)
		os.Exit(1)
	}

	mcfg := rules.Config{
		MinSupport:    *support,
		MinConfidence: *conf,
		MinLift:       *lift,
		MaxAntecedent: *maxAnte,
	}
	mined, err := rules.MineTexture(recipes, lexicon.Default(), mcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "texturerules:", err)
		os.Exit(1)
	}
	fmt.Printf("mined %d rules from %d recipes\n", len(mined), len(recipes))
	fmt.Print(rules.Render(mined, *top))
}
