// Command corpusgen generates the synthetic recipe-sharing-site corpus
// and writes it as JSON, with an optional summary of the collection
// statistics the paper reports (recipes per gel, tagged share,
// distinct texture terms).
//
// Usage:
//
//	corpusgen [-scale 1.0] [-seed 7] [-funnel] [-n 0] [-o corpus.json] [-stats]
//
// With -n > 0 the corpus is streamed as JSONL — exactly n records,
// generated one at a time and never held in memory — the input shape
// texturetopics -stream expects. -stats needs the in-memory path and
// is rejected with -n.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/recipe"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1.0, "corpus scale relative to the paper's ~3,000 recipes")
		seed   = flag.Uint64("seed", 7, "generator seed")
		funnel = flag.Bool("funnel", false, "reproduce the full 63k→10k→3k collection funnel")
		out    = flag.String("o", "-", "output file, - for stdout")
		n      = flag.Int("n", 0, "stream exactly this many recipes as JSONL without materializing the corpus (overrides -scale)")
		stats  = flag.Bool("stats", false, "print collection statistics to stderr")
	)
	flag.Parse()

	cfg := corpus.DefaultConfig()
	if *funnel {
		cfg = corpus.FunnelConfig(*scale)
	} else {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if *n > 0 {
		if *stats {
			fmt.Fprintln(os.Stderr, "corpusgen: -stats needs the in-memory corpus; drop -n")
			os.Exit(1)
		}
		if err := corpus.GenerateTo(cfg, w, *n); err != nil {
			fmt.Fprintln(os.Stderr, "corpusgen:", err)
			os.Exit(1)
		}
		return
	}

	recipes, err := corpus.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	if err := recipe.WriteJSON(w, recipes); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprint(os.Stderr, corpus.Summarize(recipes, lexicon.Default()))
	}
}
