// Command annotate attaches texture cards to recipes: it fits (or
// quickly refits) the topic model on the synthetic corpus, reads a
// JSON array of recipes (the format of cmd/corpusgen and
// recipe.WriteJSON), and prints one card per recipe — expected texture
// words, simulated rheology, and the nearest food-science measurement.
//
// Usage:
//
//	corpusgen -scale 0.02 | annotate            # cards for piped recipes
//	annotate -i recipes.json -json              # machine-readable cards
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/annotate"
	"repro/internal/pipeline"
	"repro/internal/recipe"
)

// fitOrLoad loads a fitted bundle when the path exists, otherwise
// fits the pipeline and (when a path was given) saves the bundle.
func fitOrLoad(path string, scale float64, iters int) (*pipeline.Output, error) {
	if path != "" {
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			return pipeline.LoadBundle(f)
		}
	}
	opts := pipeline.DefaultOptions()
	opts.Corpus.Scale = scale
	opts.Model.Iterations = iters
	out, err := pipeline.Run(opts)
	if err != nil {
		return nil, err
	}
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := out.SaveBundle(f); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func main() {
	var (
		in       = flag.String("i", "-", "input recipes JSON, - for stdin")
		scale    = flag.Float64("scale", 1.0, "training corpus scale")
		iters    = flag.Int("iters", 300, "Gibbs sweeps for the model fit")
		foldIn   = flag.Int("foldin", 100, "fold-in sweeps per recipe")
		asJSON   = flag.Bool("json", false, "emit cards as JSON lines")
		topTerms = flag.Int("top", 5, "expected terms per card")
		bundle   = flag.String("bundle", "", "fitted-model bundle: loaded if it exists, written after a fresh fit otherwise")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "annotate:", err)
		os.Exit(1)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	recipes, err := recipe.ReadJSON(r)
	if err != nil {
		fail(err)
	}

	out, err := fitOrLoad(*bundle, *scale, *iters)
	if err != nil {
		fail(err)
	}
	ann, err := annotate.New(out)
	if err != nil {
		fail(err)
	}
	ann.FoldInIters = *foldIn
	ann.TopTerms = *topTerms

	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	cards, errs := ann.AnnotateAll(context.Background(), recipes)
	for i, card := range cards {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "annotate: %s: %v\n", recipes[i].ID, errs[i])
			continue
		}
		if *asJSON {
			if err := enc.Encode(card.Wire()); err != nil {
				fail(err)
			}
		} else {
			fmt.Println(card)
		}
	}
}
