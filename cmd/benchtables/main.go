// Command benchtables regenerates every table and figure of the
// paper's evaluation in one run: Table I, Figure 2, Table II(a) with
// the Table I topic assignment, Table II(b), and Figures 3 and 4 for
// the Bavarois / Milk jelly case study, plus the Texture Profile
// validation and (on synthetic ground truth) topic-recovery scores.
//
// Usage:
//
//	benchtables [-scale 1.0] [-iters 300] [-seed 1] [-bins 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/eval"
	"repro/internal/linkage"
	"repro/internal/pipeline"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/rheology"
	"repro/internal/rules"
	"repro/internal/sensory"
)

func main() {
	var (
		scale  = flag.Float64("scale", 1.0, "corpus scale")
		iters  = flag.Int("iters", 300, "Gibbs sweeps")
		seed   = flag.Uint64("seed", 1, "model seed")
		bins   = flag.Int("bins", 5, "Figure 3 histogram bins")
		svgDir = flag.String("svg", "", "also write the figures as SVG files into this directory")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}

	fmt.Println("=== Table I ===")
	fmt.Print(report.RenderTableI())

	fmt.Println("\n=== Figure 2 (simulated TPA curve for Table I data 4) ===")
	fmt.Print(report.RenderFigure2(rheology.TableI[3].Attr))

	opts := pipeline.DefaultOptions()
	opts.Corpus.Scale = *scale
	opts.Model.Iterations = *iters
	opts.Model.Seed = *seed
	out, err := pipeline.Run(opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\npipeline: %d recipes generated, %d kept; %d texture terms excluded by word2vec filter\n",
		len(out.AllRecipes), len(out.Kept), len(out.ExcludedTerms))

	fmt.Println("\n=== Table II(a) ===")
	rows, assignments, err := report.BuildTableIIa(out, linkage.DefaultConfig())
	if err != nil {
		fail(err)
	}
	fmt.Print(report.RenderTableIIa(out, rows))

	fmt.Println("\n=== Texture Profile validation ===")
	val := linkage.Validate(out.Model, out.Dict, assignments)
	fmt.Print(report.RenderValidation(val))

	truth := make([]int, len(out.Docs))
	for i, d := range out.Docs {
		truth[i] = d.Truth
	}
	if c, err := eval.NewContingency(out.Model.Assign(), truth); err == nil {
		fmt.Printf("\nground-truth recovery (synthetic corpus only): purity=%.3f NMI=%.3f V=%.3f\n",
			c.Purity(), c.NMI(), c.VMeasure())
	}

	fmt.Println("\n=== Table II(b) + case study ===")
	cs, err := report.BuildCaseStudy(out, linkage.DefaultConfig(), *bins)
	if err != nil {
		fail(err)
	}
	fmt.Print(report.RenderTableIIb(cs))
	for _, dish := range []string{"Bavarois", "Milk jelly"} {
		fmt.Println()
		fmt.Print(report.RenderFigure3(cs.Figure3[dish]))
		fmt.Println()
		fmt.Print(report.RenderFigure4(cs.Figure4[dish]))
	}

	fmt.Println("\n=== Extensions ===")
	mined, err := rules.MineTexture(out.AllRecipes, out.Dict, rules.DefaultConfig())
	if err != nil {
		fail(err)
	}
	fmt.Print(rules.Render(mined, 10))

	samples := make([]rheology.Attributes, len(rheology.TableI))
	for i, m := range rheology.TableI {
		samples[i] = m.Attr
	}
	evals, err := sensory.DefaultPanel().Evaluate(out.Dict, samples)
	if err != nil {
		fail(err)
	}
	fmt.Println("\nsensory panel vs instrument (Table I samples):")
	for _, c := range sensory.Correlate(evals) {
		fmt.Printf("  %-13s Spearman %+.3f\n", c.Axis, c.Spearman)
	}

	if *svgDir != "" {
		if err := writeSVGs(*svgDir, cs); err != nil {
			fail(err)
		}
		fmt.Println()
		fmt.Println("SVG figures written to", *svgDir)
	}
}

// writeSVGs renders Figures 2-4 as SVG files.
func writeSVGs(dir string, cs *report.CaseStudy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	curve := rheology.Simulate(rheology.TableI[3].Attr)
	if err := write("figure2.svg", plot.Figure2SVG(curve, "Figure 2 — simulated TPA curve (Table I data 4)")); err != nil {
		return err
	}
	for dish, slug := range map[string]string{"Bavarois": "bavarois", "Milk jelly": "milkjelly"} {
		if err := write("figure3-"+slug+".svg", plot.Figure3SVG(cs.Figure3[dish])); err != nil {
			return err
		}
		if err := write("figure4-"+slug+".svg", plot.Figure4SVG(cs.Figure4[dish])); err != nil {
			return err
		}
	}
	return nil
}
