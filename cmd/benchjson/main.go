// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON baseline, so benchmark results can be diffed
// across PRs instead of eyeballed:
//
//	go test -run '^$' -bench BenchmarkServeAnnotate -benchtime 20x . \
//	    | benchjson -o BENCH_serve.json
//
// Each benchmark line becomes one record with its iteration count and
// every reported metric (ns/op, B/op, plus custom b.ReportMetric
// units like served or shed). Non-benchmark lines pass through to
// stderr so the usual PASS/ok trailer stays visible.
//
// Repeated lines for the same benchmark (go test -count N) collapse to
// the run with the lowest ns/op. Best-of-N is the noise-robust
// estimator for CPU-bound benchmarks: the minimum is the run least
// disturbed by scheduler phases, GC timing, and frequency drift, which
// on a one-core box can swing single runs by 30% or more.
//
// With -compare, benchjson instead diffs two baselines and exits
// non-zero when any shared benchmark regressed in ns/op beyond the
// threshold:
//
//	benchjson -compare -threshold 15 BENCH_old.json BENCH_new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// record is one parsed benchmark result.
type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON here (stdout when empty)")
	compare := flag.Bool("compare", false, "compare two baseline files (old.json new.json) instead of reading stdin")
	threshold := flag.Float64("threshold", 15, "with -compare: max allowed ns/op regression, in percent")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two files: old.json new.json"))
		}
		os.Exit(compareBaselines(flag.Arg(0), flag.Arg(1), *threshold))
	}

	var records []record
	index := map[string]int{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		if at, seen := index[rec.Name]; seen {
			if rec.Metrics["ns/op"] < records[at].Metrics["ns/op"] {
				records[at] = rec
			}
			continue
		}
		index[rec.Name] = len(records)
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(records) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks → %s\n", len(records), *out)
	}
}

// compareBaselines diffs the shared benchmarks of two baseline files
// on ns/op and prints one line per benchmark. Returns the process
// exit code: 1 when any shared benchmark slowed down by more than
// maxRegressPct percent, 0 otherwise. Benchmarks present in only one
// file are reported but never fail the comparison — the suite is
// allowed to grow.
func compareBaselines(oldPath, newPath string, maxRegressPct float64) int {
	oldRecs, err := loadBaseline(oldPath)
	if err != nil {
		fatal(err)
	}
	newRecs, err := loadBaseline(newPath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(oldRecs))
	for name := range oldRecs {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	shared := 0
	sumLogRatio := 0.0
	for _, name := range names {
		o := oldRecs[name]
		n, ok := newRecs[name]
		if !ok {
			fmt.Printf("%-40s  removed (was %.0f ns/op)\n", name, o.Metrics["ns/op"])
			continue
		}
		oldNs, okO := o.Metrics["ns/op"]
		newNs, okN := n.Metrics["ns/op"]
		if !okO || !okN || oldNs <= 0 {
			fmt.Printf("%-40s  no ns/op to compare\n", name)
			continue
		}
		shared++
		sumLogRatio += math.Log(newNs / oldNs)
		deltaPct := (newNs - oldNs) / oldNs * 100
		verdict := "ok"
		if deltaPct > maxRegressPct {
			verdict = fmt.Sprintf("REGRESSION (limit +%.0f%%)", maxRegressPct)
			failed++
		}
		fmt.Printf("%-40s  %12.0f → %12.0f ns/op  %+7.1f%%  %s\n",
			name, oldNs, newNs, deltaPct, verdict)
	}
	added := make([]string, 0, len(newRecs))
	for name := range newRecs {
		if _, ok := oldRecs[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Printf("%-40s  new (%.0f ns/op)\n", name, newRecs[name].Metrics["ns/op"])
	}
	if shared == 0 {
		fatal(fmt.Errorf("no shared benchmarks between %s and %s", oldPath, newPath))
	}
	// One headline number for multi-benchmark PRs: the geometric mean
	// of the per-benchmark ns/op ratios, so improvements and
	// regressions of different magnitudes compose symmetrically.
	geomean := math.Exp(sumLogRatio / float64(shared))
	fmt.Printf("%-40s  geomean ns/op ratio %.3f (%+.1f%%) over %d shared benchmarks\n",
		"SUMMARY", geomean, (geomean-1)*100, shared)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d shared benchmarks regressed past %.0f%%\n",
			failed, shared, maxRegressPct)
		return 1
	}
	return 0
}

// loadBaseline reads a benchjson output file into a name-keyed map.
func loadBaseline(path string) (map[string]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]record, len(recs))
	for _, r := range recs {
		byName[r.Name] = r
	}
	return byName, nil
}

// parseBenchLine reads one `Benchmark<Name>-P  N  <value> <unit> ...`
// line. The -P GOMAXPROCS suffix is kept in the name: it is part of
// what the number means.
func parseBenchLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
