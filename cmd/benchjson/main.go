// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON baseline, so benchmark results can be diffed
// across PRs instead of eyeballed:
//
//	go test -run '^$' -bench BenchmarkServeAnnotate -benchtime 2x . \
//	    | benchjson -o BENCH_serve.json
//
// Each benchmark line becomes one record with its iteration count and
// every reported metric (ns/op, B/op, plus custom b.ReportMetric
// units like served or shed). Non-benchmark lines pass through to
// stderr so the usual PASS/ok trailer stays visible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// record is one parsed benchmark result.
type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON here (stdout when empty)")
	flag.Parse()

	var records []record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		rec, ok := parseBenchLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(records) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks → %s\n", len(records), *out)
	}
}

// parseBenchLine reads one `Benchmark<Name>-P  N  <value> <unit> ...`
// line. The -P GOMAXPROCS suffix is kept in the name: it is part of
// what the number means.
func parseBenchLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
