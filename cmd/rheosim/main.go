// Command rheosim simulates a rheometer run: given a gel/emulsion
// composition it predicts the quantitative texture attributes with the
// Table-I-calibrated model, synthesizes the two-compression TPA force
// curve (the paper's Figure 2), and re-extracts the attributes from
// the curve.
//
// Usage:
//
//	rheosim [-gelatin 0.025] [-kanten 0] [-agar 0]
//	        [-sugar 0] [-albumen 0] [-yolk 0] [-cream 0] [-milk 0] [-yogurt 0]
//	        [-table1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/recipe"
	"repro/internal/report"
	"repro/internal/rheology"
)

func main() {
	var (
		gelatin = flag.Float64("gelatin", 0.025, "gelatin weight ratio")
		kanten  = flag.Float64("kanten", 0, "kanten weight ratio")
		agar    = flag.Float64("agar", 0, "agar weight ratio")
		sugar   = flag.Float64("sugar", 0, "sugar weight ratio")
		albumen = flag.Float64("albumen", 0, "egg albumen weight ratio")
		yolk    = flag.Float64("yolk", 0, "egg yolk weight ratio")
		cream   = flag.Float64("cream", 0, "raw cream weight ratio")
		milk    = flag.Float64("milk", 0, "milk weight ratio")
		yogurt  = flag.Float64("yogurt", 0, "yogurt weight ratio")
		table1  = flag.Bool("table1", false, "print Table I (measured vs simulated) and exit")
	)
	flag.Parse()

	if *table1 {
		fmt.Print(report.RenderTableI())
		return
	}
	gels := [recipe.NumGels]float64{*gelatin, *kanten, *agar}
	emus := [recipe.NumEmulsions]float64{*sugar, *albumen, *yolk, *cream, *milk, *yogurt}
	attr := rheology.Predict(gels, emus)
	fmt.Printf("composition: gelatin=%.3f kanten=%.3f agar=%.3f\n", *gelatin, *kanten, *agar)
	fmt.Printf("emulsions:   sugar=%.3f albumen=%.3f yolk=%.3f cream=%.3f milk=%.3f yogurt=%.3f\n",
		*sugar, *albumen, *yolk, *cream, *milk, *yogurt)
	fmt.Printf("predicted:   hardness=%.3f cohesiveness=%.3f adhesiveness=%.3f (RU)\n\n",
		attr.Hardness, attr.Cohesiveness, attr.Adhesiveness)
	if attr.Hardness <= 0 {
		fmt.Fprintln(os.Stderr, "rheosim: no gel network forms at this composition; no curve to draw")
		os.Exit(1)
	}
	fmt.Print(report.RenderFigure2(attr))
}
