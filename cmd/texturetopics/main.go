// Command texturetopics runs the full texture-mining pipeline — corpus,
// word2vec relatedness filter, dataset filters, joint topic model — and
// prints the paper's Table II(a): the acquired topics with their gel
// concentrations, ranked texture terms, recipe counts, and the Table I
// empirical rows assigned to each topic by KL divergence.
//
// Usage:
//
//	texturetopics [-scale 1.0] [-k 10] [-iters 300] [-seed 1]
//	              [-collapsed] [-no-filter] [-no-emulsion]
//	              [-stream corpus.jsonl] [-corpus-size 0] [-ingest-dir dir]
//	              [-shards 1] [-shard-retries 2] [-straggler-timeout 0] [-shard-dir dir]
//	              [-model-out model.json] [-bundle-out model.bundle]
//	              [-store fs:DIR|mem:] [-publish-note text] [-promote]
//	              [-checkpoint-dir dir] [-checkpoint-every 25] [-resume]
//	              [-supervise] [-max-restarts 3] [-sweep-timeout 0] [-max-ll-drop 0]
//	              [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	              [-v] [-log-format text|json] [-log-every 50]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"context"

	"repro/internal/ingest"
	"repro/internal/lexicon"
	"repro/internal/linkage"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/report"
	_ "repro/internal/shardfit" // registers the sharded fitter with the pipeline
	"repro/internal/storage"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "corpus scale relative to the paper's ~3,000 recipes")
		k         = flag.Int("k", 10, "number of topics")
		iters     = flag.Int("iters", 300, "Gibbs sweeps")
		seed      = flag.Uint64("seed", 1, "model seed")
		collapsed = flag.Bool("collapsed", false, "use the collapsed sampler")
		noFilter  = flag.Bool("no-filter", false, "disable the word2vec relatedness filter")
		workers   = flag.Int("workers", 1, "parallel Gibbs workers (AD-LDA approximation when > 1)")
		restarts  = flag.Int("restarts", 1, "independent chains; the best by log-likelihood is kept")
		noEmu     = flag.Bool("no-emulsion", false, "drop the emulsion likelihood (gel-only ablation)")
		stream    = flag.String("stream", "", "stream this JSONL corpus file record-at-a-time instead of generating in memory")
		corpSize  = flag.Int("corpus-size", 0, "stream exactly this many synthetic recipes through ingestion without materializing them (overrides -scale)")
		ingestDir = flag.String("ingest-dir", "", "fold this online-ingest WAL's records into the fit, appended after the -stream/-corpus-size base")
		shards    = flag.Int("shards", 1, "fit the corpus as this many independently supervised shards merged by sufficient statistics")
		shardRtr  = flag.Int("shard-retries", 2, "orchestrator retries per failed shard (with -shards)")
		stragTO   = flag.Duration("straggler-timeout", 0, "split and refit a shard attempt exceeding this duration (0 disables; with -shards)")
		shardDir  = flag.String("shard-dir", "", "durable shard manifest + statistics directory; a killed run resumes from it (with -shards)")
		modelOut  = flag.String("model-out", "", "write the fitted model JSON to this file")
		bundleOut = flag.String("bundle-out", "", "write the full serving bundle (model+docs+exclusions) to this file")
		storeSpec = flag.String("store", "", "publish the bundle to this model store (fs:DIR, mem:, or a bare directory)")
		pubNote   = flag.String("publish-note", "", "operator note recorded on the published generation (with -store)")
		promote   = flag.Bool("promote", false, "promote the published generation so follower replicas roll to it (with -store)")
		ckDir     = flag.String("checkpoint-dir", "", "write crash-safe fit checkpoints into this directory")
		ckEvery   = flag.Int("checkpoint-every", 25, "sweeps between checkpoints (with -checkpoint-dir)")
		resume    = flag.Bool("resume", false, "resume the fit from -checkpoint-dir if a checkpoint exists")
		supervise = flag.Bool("supervise", false, "run the fit under the self-healing supervisor (health checks, rollback, restart)")
		maxRst    = flag.Int("max-restarts", 3, "supervised recovery attempts after the first (with -supervise)")
		sweepTO   = flag.Duration("sweep-timeout", 0, "supervised stall watchdog: abort a sweep exceeding this duration (0 disables)")
		maxLLDrop = flag.Float64("max-ll-drop", 0, "supervised divergence threshold: abort when log-likelihood drops this far below the best sweep (0 disables)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a post-run heap profile to this file")
		verbose   = flag.Bool("v", false, "print progress and the validation summary")
		logFormat = flag.String("log-format", "text", "progress log format: text or json")
		logEvery  = flag.Int("log-every", 50, "log sweep progress every N sweeps with -v (0 disables)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "texturetopics:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "texturetopics:", err)
			}
		}()
	}

	opts := pipeline.DefaultOptions()
	opts.Corpus.Scale = *scale
	opts.Model.K = *k
	opts.Model.Iterations = *iters
	opts.Model.Seed = *seed
	opts.Model.Collapsed = *collapsed
	opts.Model.Workers = *workers
	opts.Restarts = *restarts
	opts.Model.UseEmulsion = !*noEmu
	opts.UseW2VFilter = !*noFilter
	opts.Checkpoint = pipeline.CheckpointOptions{Dir: *ckDir, Every: *ckEvery, Resume: *resume}
	opts.Supervise = *supervise
	opts.MaxRestarts = *maxRst
	opts.SweepTimeout = *sweepTO
	opts.MaxLLDrop = *maxLLDrop
	opts.ShardCount = *shards
	opts.ShardRetries = *shardRtr
	opts.StragglerTimeout = *stragTO
	opts.ShardDir = *shardDir
	if *verbose {
		logger := obs.NewLogger(os.Stderr, *logFormat)
		opts.Model.Hooks = pipeline.SweepProgress(logger, *logEvery)
	}

	var base pipeline.StreamSource
	switch {
	case *stream != "":
		base = pipeline.FileSource(*stream)
	case *corpSize > 0:
		base = pipeline.GeneratedSource(opts.Corpus, *corpSize)
	}

	var out *pipeline.Output
	var err error
	switch {
	case *ingestDir != "":
		// The batch analogue of the server's background re-fit: replay
		// every WAL record (deduplicated by canonical hash) after the
		// frozen base, so an offline fit covers online growth too.
		out, err = pipeline.RunStream(ingest.CombinedSource(base, *ingestDir, 0), opts)
	case base != nil:
		out, err = pipeline.RunStream(base, opts)
	default:
		out, err = pipeline.Run(opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "texturetopics:", err)
		os.Exit(1)
	}
	if *verbose {
		if out.Ingest != nil {
			fmt.Printf("corpus: %d records streamed (%d skipped), %d kept (dropped: %d no-gel, %d no-texture, %d unrelated>10%%)\n",
				out.Ingest.Decoded+len(out.Ingest.Skipped), len(out.Ingest.Skipped), len(out.Docs),
				out.FilterStats.NoGel, out.FilterStats.NoTexture, out.FilterStats.TooUnrelated)
		} else {
			fmt.Printf("corpus: %d recipes, %d kept (dropped: %d no-gel, %d no-texture, %d unrelated>10%%)\n",
				len(out.AllRecipes), len(out.Kept),
				out.FilterStats.NoGel, out.FilterStats.NoTexture, out.FilterStats.TooUnrelated)
		}
		if sh := out.Shards; sh != nil {
			fmt.Printf("sharded fit: %d shards (%d resumed, %d fitted, %d retried, %d resharded)\n",
				sh.ShardCount, sh.Resumed, sh.Fitted, sh.Retried, sh.Resharded)
		}
		for _, inc := range out.FitIncidents {
			fmt.Printf("fit incident: attempt %d sweep %d %s → %s (%s)\n",
				inc.Attempt, inc.Sweep, inc.Kind, inc.Action, inc.Detail)
		}
		if len(out.ExcludedTerms) > 0 {
			fmt.Println("word2vec filter excluded terms:")
			for term, offending := range out.ExcludedTerms {
				fmt.Printf("  %s (neighbours: %v)\n", term, offending)
			}
		}
	}

	rows, assignments, err := report.BuildTableIIa(out, linkage.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "texturetopics:", err)
		os.Exit(1)
	}
	fmt.Print(report.RenderTableIIa(out, rows))

	if *verbose {
		val := linkage.Validate(out.Model, lexicon.Default(), assignments)
		fmt.Print(report.RenderValidation(val))
	}

	if *modelOut != "" {
		f, err := os.Create(*modelOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := out.Model.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics:", err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Println("model written to", *modelOut)
		}
	}

	if *bundleOut != "" {
		if err := out.SaveBundleFile(*bundleOut); err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics:", err)
			os.Exit(1)
		}
		if *verbose {
			fmt.Println("bundle written to", *bundleOut)
		}
	}

	if *storeSpec != "" {
		st, err := storage.Open(*storeSpec, storage.RobustOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics:", err)
			os.Exit(1)
		}
		reg := storage.NewRegistry(st)
		bundle, _, err := out.EncodeBundle()
		if err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics:", err)
			os.Exit(1)
		}
		ctx := context.Background()
		gen, err := reg.Publish(ctx, bundle, *pubNote)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texturetopics: publish:", err)
			os.Exit(1)
		}
		fmt.Printf("published generation %d (digest %s, %d bytes) to %s\n",
			gen.ID, gen.Digest, gen.Size, *storeSpec)
		if *promote {
			if err := reg.Promote(ctx, gen.ID); err != nil {
				fmt.Fprintln(os.Stderr, "texturetopics: promote:", err)
				os.Exit(1)
			}
			fmt.Printf("promoted generation %d; follower replicas converge within one poll interval\n", gen.ID)
		}
	}
}
