// Typed ingest methods: submit recipes for durable online ingestion.
// The wire structs are the server's own (serve.IngestAck and friends),
// and the retry/Retry-After taxonomy is the shared call loop's —
// ingest POSTs are idempotent by canonical recipe hash, so retrying a
// 429/503/transport failure can at worst turn a lost ack into a
// Duplicate answer, never a double record.
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/recipe"
	"repro/internal/serve"
)

// IngestReceipt is one recipe's ingest outcome. Accepted distinguishes
// the server's 202 (a new durable record) from a 200 duplicate ack.
type IngestReceipt struct {
	serve.IngestAck
	// Accepted is true when the server answered 202 Accepted — the
	// recipe is newly and durably in the ingest log. False means the
	// log already held it (see Duplicate).
	Accepted bool `json:"-"`
}

// Ingest durably submits one recipe. A nil error means the server
// fsynced the record (or already had it) before answering.
func (c *Client) Ingest(ctx context.Context, r *recipe.Recipe) (*IngestReceipt, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("client: encoding recipe: %w", err)
	}
	var ack serve.IngestAck
	status, err := c.callStatus(ctx, http.MethodPost, "/ingest", body, &ack)
	if err != nil {
		return nil, err
	}
	return &IngestReceipt{IngestAck: ack, Accepted: status == http.StatusAccepted}, nil
}

// IngestBatch durably submits up to MaxBatch recipes in one request.
// The response is index-aligned; items fail individually (check
// IngestBatchItem.Error/Status), so a non-nil error means the whole
// request failed, not one recipe.
func (c *Client) IngestBatch(ctx context.Context, rs []*recipe.Recipe) (*serve.IngestBatchResponse, error) {
	if len(rs) == 0 {
		return &serve.IngestBatchResponse{}, nil
	}
	if len(rs) > c.maxBatch {
		return nil, fmt.Errorf("client: batch of %d recipes over the %d limit", len(rs), c.maxBatch)
	}
	body, err := json.Marshal(struct {
		Recipes []*recipe.Recipe `json:"recipes"`
	}{rs})
	if err != nil {
		return nil, fmt.Errorf("client: encoding batch: %w", err)
	}
	var resp serve.IngestBatchResponse
	if err := c.call(ctx, http.MethodPost, "/ingest/batch", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
