// Package client is the typed Go SDK for the texture annotation
// server: the serving API as a consumable product surface instead of
// hand-rolled HTTP. Every method takes a context that bounds the
// whole call including retries, decodes into the same wire types the
// server encodes (no parallel struct definitions to drift), and maps
// the server's status taxonomy onto typed errors.
//
// Backpressure is handled the way the server asks for it: 429 (shed)
// and 503 (not ready / draining) answers are retried on a jittered
// exponential schedule, waiting at least as long as the server's
// Retry-After header suggests. Everything else — 4xx recipe faults,
// 504 deadlines, 5xx failures — surfaces immediately as an *APIError
// wrapping its class sentinel (ErrRecipe, ErrTimeout, …).
//
//	c, _ := client.New("http://localhost:8080", client.Options{})
//	card, err := c.Annotate(ctx, &recipe.Recipe{...})
//	if errors.Is(err, client.ErrRecipe) { /* the recipe's fault */ }
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/annotate"
	"repro/internal/recipe"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// Options tunes a Client. The zero value is usable: default transport,
// default retry schedule, server-default batch size.
type Options struct {
	// HTTPClient overrides the transport; http.DefaultClient when nil.
	// Set one with a Timeout for belt-and-braces deadlines, though the
	// per-call context is the primary bound.
	HTTPClient *http.Client
	// Retry is the backoff schedule for 429/503/transport failures.
	// The zero value gets DefaultBackoff. Attempts: 1 disables
	// retrying entirely.
	Retry resilience.Backoff
	// MaxBatch caps the recipes per /annotate/batch request;
	// AnnotateAll splits larger inputs into chunks of this size.
	// Defaults to 64, the server's own default limit.
	MaxBatch int
}

// DefaultBackoff is the retry schedule when Options.Retry is zero:
// four attempts spanning roughly a second — enough to ride out a
// draining replica or a shed burst without hammering it.
func DefaultBackoff() resilience.Backoff {
	return resilience.Backoff{Attempts: 4, Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: 1}
}

// Client talks to one texture server.
type Client struct {
	base     string
	hc       *http.Client
	delays   []time.Duration
	maxBatch int
}

// New builds a client for the server at baseURL (scheme and host,
// e.g. "http://localhost:8080").
func New(baseURL string, opts Options) (*Client, error) {
	base := strings.TrimRight(baseURL, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return nil, fmt.Errorf("client: base URL %q needs an http(s) scheme", baseURL)
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	b := opts.Retry
	if b == (resilience.Backoff{}) {
		b = DefaultBackoff()
	}
	maxBatch := opts.MaxBatch
	if maxBatch < 1 {
		maxBatch = 64
	}
	return &Client{base: base, hc: hc, delays: b.Delays(), maxBatch: maxBatch}, nil
}

// Annotate posts one recipe and returns its texture card.
func (c *Client) Annotate(ctx context.Context, r *recipe.Recipe) (*annotate.WireCard, error) {
	body, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("client: encoding recipe: %w", err)
	}
	var card annotate.WireCard
	if err := c.call(ctx, http.MethodPost, "/annotate", body, &card); err != nil {
		return nil, err
	}
	return &card, nil
}

// AnnotateBatch posts up to MaxBatch recipes in one request. The
// response is index-aligned with the input; items fail individually
// (check BatchItem.Error/Status), so a non-nil error here means the
// whole request failed, not one recipe.
func (c *Client) AnnotateBatch(ctx context.Context, rs []*recipe.Recipe) (*serve.BatchResponse, error) {
	if len(rs) == 0 {
		return &serve.BatchResponse{}, nil
	}
	if len(rs) > c.maxBatch {
		return nil, fmt.Errorf("client: batch of %d recipes over the %d limit; use AnnotateAll to chunk", len(rs), c.maxBatch)
	}
	body, err := json.Marshal(struct {
		Recipes []*recipe.Recipe `json:"recipes"`
	}{rs})
	if err != nil {
		return nil, fmt.Errorf("client: encoding batch: %w", err)
	}
	var resp serve.BatchResponse
	if err := c.call(ctx, http.MethodPost, "/annotate/batch", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// AnnotateAll is the batch helper for arbitrarily many recipes: the
// input is split into MaxBatch-sized chunks, each posted as one batch
// request, and the items re-indexed against the full input. On a
// chunk failure the items gathered so far are returned alongside the
// error, so a partial run is not lost.
func (c *Client) AnnotateAll(ctx context.Context, rs []*recipe.Recipe) ([]serve.BatchItem, error) {
	items := make([]serve.BatchItem, 0, len(rs))
	for start := 0; start < len(rs); start += c.maxBatch {
		end := min(start+c.maxBatch, len(rs))
		resp, err := c.AnnotateBatch(ctx, rs[start:end])
		if err != nil {
			return items, fmt.Errorf("client: batch starting at recipe %d: %w", start, err)
		}
		for _, it := range resp.Results {
			it.Index += start
			items = append(items, it)
		}
	}
	return items, nil
}

// Topics fetches the fitted topics with gel doses and top terms.
func (c *Client) Topics(ctx context.Context) ([]serve.TopicInfo, error) {
	var topics []serve.TopicInfo
	if err := c.call(ctx, http.MethodGet, "/topics", nil, &topics); err != nil {
		return nil, err
	}
	return topics, nil
}

// Status fetches the server's runtime counters from /statusz.
func (c *Client) Status(ctx context.Context) (*serve.Stats, error) {
	var st serve.Stats
	if err := c.call(ctx, http.MethodGet, "/statusz", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Ready probes /readyz once, without retrying: nil when the server is
// serving, ErrNotReady while it fits or drains. Poll it to wait for a
// replica to come up.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.once(ctx, http.MethodGet, "/readyz", nil, nil)
	return err
}

// call is the retrying request loop: each attempt rebuilds the
// request from the marshaled body, backpressure answers wait out the
// longer of the scheduled backoff and the server's Retry-After, and
// the caller's context bounds everything — a cancellation mid-wait
// returns immediately with the last error noted.
func (c *Client) call(ctx context.Context, method, path string, body []byte, out any) error {
	_, err := c.callStatus(ctx, method, path, body, out)
	return err
}

// callStatus is call exposing the final attempt's HTTP status code —
// the ingest routes overload 2xx (202 accepted vs 200 duplicate), so
// their typed wrappers need more than "success". Status is 0 when no
// HTTP exchange completed.
func (c *Client) callStatus(ctx context.Context, method, path string, body []byte, out any) (int, error) {
	var last error
	var status int
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return status, stopRetry(err, last)
		}
		status, last = c.once(ctx, method, path, body, out)
		if last == nil || !retryable(last) || attempt >= len(c.delays) {
			return status, last
		}
		d := c.delays[attempt]
		var ae *APIError
		if errors.As(last, &ae) && ae.RetryAfter > d {
			d = ae.RetryAfter
		}
		if d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return status, stopRetry(ctx.Err(), last)
			}
		}
	}
}

func stopRetry(ctxErr, last error) error {
	if last == nil {
		return ctxErr
	}
	return fmt.Errorf("client: retry stopped (%w) after: %w", ctxErr, last)
}

// once performs a single HTTP exchange and maps the outcome: 2xx
// decodes into out, anything else becomes an *APIError carrying the
// status, the server's diagnostic line, and its Retry-After advice.
// The returned status is the response's code, 0 when no response
// arrived.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// The caller's own cancellation is not a transport fault and
		// must not be retried on its behalf.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, err
		}
		return 0, &transportError{err: err}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, apiError(resp)
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return resp.StatusCode, fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return resp.StatusCode, nil
}

// apiError reads the diagnostic line and retry advice off a non-2xx
// response.
func apiError(resp *http.Response) *APIError {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	ae := &APIError{
		StatusCode: resp.StatusCode,
		Message:    strings.TrimSpace(string(msg)),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return ae
}
