package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/annotate"
	"repro/internal/recipe"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// fastRetry is a schedule that retries immediately — contract tests
// exercise the retry logic, not the wall clock.
func fastRetry(attempts int) Options {
	return Options{Retry: resilience.Backoff{Attempts: attempts, Base: time.Millisecond, Max: time.Millisecond, Seed: 1}}
}

func jelly() *recipe.Recipe {
	return &recipe.Recipe{
		ID:    "web-1",
		Title: "ゼリー",
		Ingredients: []recipe.Ingredient{
			{Name: "ゼラチン", Amount: "5g"},
			{Name: "水", Amount: "400ml"},
		},
	}
}

func mustNew(t *testing.T, baseURL string, opts Options) *Client {
	t.Helper()
	c, err := New(baseURL, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New("localhost:8080", Options{}); err == nil {
		t.Error("scheme-less base URL accepted")
	}
	if _, err := New("http://localhost:8080/", Options{}); err != nil {
		t.Errorf("trailing slash rejected: %v", err)
	}
}

// TestAnnotateDecodesCard: a 200 answer decodes into the same wire
// type the server encodes.
func TestAnnotateDecodesCard(t *testing.T) {
	var gotPath, gotCT string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath, gotCT = r.URL.Path, r.Header.Get("Content-Type")
		var rec recipe.Recipe
		if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
			t.Errorf("server could not decode the client's recipe: %v", err)
		}
		json.NewEncoder(w).Encode(annotate.WireCard{
			RecipeID: rec.ID, Title: rec.Title, Topic: 3, Prob: 0.9,
			Expected: []annotate.WireTerm{{Romaji: "purupuru", Prob: 0.4}},
		})
	}))
	defer ts.Close()

	card, err := mustNew(t, ts.URL, Options{}).Annotate(context.Background(), jelly())
	if err != nil {
		t.Fatal(err)
	}
	if gotPath != "/annotate" || gotCT != "application/json" {
		t.Errorf("request was %s with Content-Type %q", gotPath, gotCT)
	}
	if card.RecipeID != "web-1" || card.Topic != 3 || len(card.Expected) != 1 {
		t.Errorf("card = %+v", card)
	}
}

// TestRetryOn429HonorsRetryAfter: a shed answer with Retry-After is
// retried no sooner than the server asked, even when the backoff
// schedule alone would have gone back immediately.
func TestRetryOn429HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "annotator pool saturated; retry shortly", http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(annotate.WireCard{RecipeID: "web-1"})
	}))
	defer ts.Close()

	start := time.Now()
	card, err := mustNew(t, ts.URL, fastRetry(3)).Annotate(context.Background(), jelly())
	if err != nil {
		t.Fatal(err)
	}
	if card.RecipeID != "web-1" {
		t.Errorf("card = %+v", card)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("%d requests, want 2 (one shed, one retry)", n)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v; Retry-After: 1 asked for ≥1s", elapsed)
	}
}

// TestRetryOn503UntilReady: not-ready answers are retried on the
// schedule until the server comes up.
func TestRetryOn503UntilReady(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "model not ready", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(annotate.WireCard{RecipeID: "web-1"})
	}))
	defer ts.Close()

	if _, err := mustNew(t, ts.URL, fastRetry(4)).Annotate(context.Background(), jelly()); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("%d requests, want 3", n)
	}
}

// TestRetriesExhaustedSurfaceTypedError: a server that never recovers
// runs the schedule dry and the last typed error comes back.
func TestRetriesExhaustedSurfaceTypedError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	_, err := mustNew(t, ts.URL, fastRetry(3)).Annotate(context.Background(), jelly())
	if !errors.Is(err, ErrNotReady) {
		t.Errorf("err = %v, want ErrNotReady", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("%d requests, want the full 3-attempt schedule", n)
	}
}

// TestNoRetryOnRecipeFault: 4xx taxonomy errors cannot succeed on
// retry and must surface after exactly one request.
func TestNoRetryOnRecipeFault(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "annotate: recipe not annotatable: no gel ingredient", http.StatusUnprocessableEntity)
	}))
	defer ts.Close()

	_, err := mustNew(t, ts.URL, fastRetry(4)).Annotate(context.Background(), jelly())
	if !errors.Is(err, ErrRecipe) {
		t.Fatalf("err = %v, want ErrRecipe", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnprocessableEntity ||
		!strings.Contains(ae.Message, "no gel ingredient") {
		t.Errorf("APIError = %+v", ae)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("%d requests for a recipe fault, want 1 (no retry)", n)
	}
}

// TestErrorTaxonomy maps every server status class onto its sentinel.
func TestErrorTaxonomy(t *testing.T) {
	for _, tc := range []struct {
		status int
		want   error
	}{
		{http.StatusBadRequest, ErrBadRequest},
		{http.StatusForbidden, ErrForbidden},
		{http.StatusRequestEntityTooLarge, ErrTooLarge},
		{http.StatusUnprocessableEntity, ErrRecipe},
		{http.StatusTooManyRequests, ErrOverloaded},
		{http.StatusServiceUnavailable, ErrNotReady},
		{http.StatusGatewayTimeout, ErrTimeout},
		{http.StatusInternalServerError, ErrInternal},
		{http.StatusBadGateway, ErrInternal},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "nope", tc.status)
		}))
		_, err := mustNew(t, ts.URL, fastRetry(1)).Annotate(context.Background(), jelly())
		ts.Close()
		if !errors.Is(err, tc.want) {
			t.Errorf("status %d: err = %v, want %v", tc.status, err, tc.want)
		}
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != tc.status {
			t.Errorf("status %d: APIError = %+v", tc.status, ae)
		}
	}
}

// TestContextCancellationStopsRetries: the caller's deadline cuts the
// retry loop mid-wait and surfaces both the context error and the last
// server answer.
func TestContextCancellationStopsRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	opts := Options{Retry: resilience.Backoff{Attempts: 10, Base: 200 * time.Millisecond, Max: 200 * time.Millisecond, Seed: 1}}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := mustNew(t, ts.URL, opts).Annotate(ctx, jelly())
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancellation ignored for %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want a DeadlineExceeded wrap", err)
	}
	if !errors.Is(err, ErrNotReady) {
		t.Errorf("err = %v, want the last server answer preserved", err)
	}
	if n := calls.Load(); n < 1 || n > 2 {
		t.Errorf("%d requests under a 100ms deadline with 200ms waits, want 1", n)
	}
}

// TestTransportErrorRetried: a connection that dies before a response
// is retryable; the next attempt succeeds.
func TestTransportErrorRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close() // the client sees a dead connection, not a status
			return
		}
		json.NewEncoder(w).Encode(annotate.WireCard{RecipeID: "web-1"})
	}))
	defer ts.Close()

	card, err := mustNew(t, ts.URL, fastRetry(3)).Annotate(context.Background(), jelly())
	if err != nil {
		t.Fatal(err)
	}
	if card.RecipeID != "web-1" || calls.Load() != 2 {
		t.Errorf("card=%+v after %d calls", card, calls.Load())
	}
}

// TestAnnotateBatchShape: the batch call round-trips the server's
// index-aligned response, and an over-limit batch is refused locally.
func TestAnnotateBatchShape(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/annotate/batch" {
			t.Errorf("path %s", r.URL.Path)
		}
		var req struct {
			Recipes []*recipe.Recipe `json:"recipes"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		resp := serve.BatchResponse{Served: len(req.Recipes)}
		for i, rc := range req.Recipes {
			resp.Results = append(resp.Results, serve.BatchItem{
				Index: i, Card: &annotate.WireCard{RecipeID: rc.ID},
			})
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	c := mustNew(t, ts.URL, Options{MaxBatch: 2})
	resp, err := c.AnnotateBatch(context.Background(), []*recipe.Recipe{jelly(), jelly()})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Served != 2 {
		t.Errorf("batch response = %+v", resp)
	}
	if _, err := c.AnnotateBatch(context.Background(), []*recipe.Recipe{jelly(), jelly(), jelly()}); err == nil {
		t.Error("over-limit batch accepted; should be refused before any request")
	}
}

// TestAnnotateAllChunksAndReindexes: five recipes through a MaxBatch-2
// client arrive as three requests, and every item keeps its index in
// the full input.
func TestAnnotateAllChunksAndReindexes(t *testing.T) {
	var sizes []int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Recipes []*recipe.Recipe `json:"recipes"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		sizes = append(sizes, len(req.Recipes))
		resp := serve.BatchResponse{Served: len(req.Recipes)}
		for i, rc := range req.Recipes {
			resp.Results = append(resp.Results, serve.BatchItem{
				Index: i, Card: &annotate.WireCard{RecipeID: rc.ID},
			})
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()

	rs := make([]*recipe.Recipe, 5)
	for i := range rs {
		r := jelly()
		r.ID = fmt.Sprintf("web-%d", i)
		rs[i] = r
	}
	items, err := mustNew(t, ts.URL, Options{MaxBatch: 2}).AnnotateAll(context.Background(), rs)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sizes) != "[2 2 1]" {
		t.Errorf("chunk sizes = %v, want [2 2 1]", sizes)
	}
	if len(items) != 5 {
		t.Fatalf("%d items, want 5", len(items))
	}
	for i, it := range items {
		if it.Index != i || it.Card == nil || it.Card.RecipeID != rs[i].ID {
			t.Errorf("items[%d] = %+v, want index %d for %s", i, it, i, rs[i].ID)
		}
	}
}

// TestTopicsAndStatus: the read-only endpoints decode into the
// server's own wire types.
func TestTopicsAndStatus(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]serve.TopicInfo{{Topic: 0, Recipes: 12}, {Topic: 1, Recipes: 3}})
	})
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.Stats{Ready: true, Pool: 4, Served: 9,
			Cache: &serve.CacheStats{Capacity: 4096, Hits: 7}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := mustNew(t, ts.URL, Options{})
	topics, err := c.Topics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(topics) != 2 || topics[0].Recipes != 12 {
		t.Errorf("topics = %+v", topics)
	}
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Pool != 4 || st.Cache == nil || st.Cache.Hits != 7 {
		t.Errorf("status = %+v", st)
	}
}

// TestReadyProbesOnce: the readiness probe never retries — polling is
// the caller's loop, not the SDK's.
func TestReadyProbesOnce(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "model not fitted yet", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	err := mustNew(t, ts.URL, fastRetry(5)).Ready(context.Background())
	if !errors.Is(err, ErrNotReady) {
		t.Errorf("err = %v, want ErrNotReady", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("%d probes, want exactly 1", n)
	}
}
