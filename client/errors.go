package client

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Sentinel errors mirroring the server's status taxonomy. Every
// non-2xx response surfaces as an *APIError whose Unwrap returns the
// sentinel for its class, so callers branch with errors.Is and still
// reach the raw status and message through errors.As.
var (
	// ErrBadRequest is a malformed request the server refused (400).
	ErrBadRequest = errors.New("client: bad request")
	// ErrForbidden is a rejected admin credential (403).
	ErrForbidden = errors.New("client: forbidden")
	// ErrTooLarge is a body or batch over the server's limits (413).
	ErrTooLarge = errors.New("client: request too large")
	// ErrRecipe is a well-formed recipe the model cannot annotate —
	// unparseable amounts, no gel ingredient (422). The recipe's
	// fault, not the server's; retrying cannot help.
	ErrRecipe = errors.New("client: recipe not annotatable")
	// ErrOverloaded is the admission gate shedding load (429). The
	// client retries these automatically, honoring Retry-After.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrNotReady is a server without a model or draining for
	// shutdown (503). Retried automatically like ErrOverloaded.
	ErrNotReady = errors.New("client: server not ready")
	// ErrTimeout is an annotation that ran out of its server-side
	// deadline (504).
	ErrTimeout = errors.New("client: annotation timed out")
	// ErrInternal is any other 5xx.
	ErrInternal = errors.New("client: internal server error")
)

// APIError is a non-2xx response from the texture server.
type APIError struct {
	// StatusCode is the HTTP status the server answered with.
	StatusCode int
	// Message is the server's response body (one diagnostic line).
	Message string
	// RetryAfter is the parsed Retry-After header; zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.StatusCode, e.Message)
}

// Unwrap maps the status onto its class sentinel, so
// errors.Is(err, client.ErrOverloaded) works on any wrapped APIError.
func (e *APIError) Unwrap() error {
	switch e.StatusCode {
	case http.StatusBadRequest:
		return ErrBadRequest
	case http.StatusForbidden:
		return ErrForbidden
	case http.StatusRequestEntityTooLarge:
		return ErrTooLarge
	case http.StatusUnprocessableEntity:
		return ErrRecipe
	case http.StatusTooManyRequests:
		return ErrOverloaded
	case http.StatusServiceUnavailable:
		return ErrNotReady
	case http.StatusGatewayTimeout:
		return ErrTimeout
	default:
		if e.StatusCode >= 500 {
			return ErrInternal
		}
		return nil
	}
}

// retryable reports whether the failure is worth another attempt: the
// two backpressure statuses (429, 503) and transport-level failures.
// Context cancellation is the caller's decision and never retried;
// 4xx taxonomy errors cannot succeed on retry.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.StatusCode == http.StatusTooManyRequests || ae.StatusCode == http.StatusServiceUnavailable
	}
	var te *transportError
	return errors.As(err, &te)
}

// transportError marks a request that never produced a response —
// refused connection, reset, DNS failure — as distinct from a typed
// server answer. These are retryable unless caused by the caller's
// own context.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }
