package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/recipe"
	"repro/internal/serve"
)

// TestIngestAcceptedSentinel: a 202 answer surfaces Accepted=true, a
// 200 duplicate answer Accepted=false with the original sequence —
// the same wire struct, disambiguated by status.
func TestIngestAcceptedSentinel(t *testing.T) {
	var dup atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/ingest" {
			t.Errorf("path = %s", r.URL.Path)
		}
		var rec recipe.Recipe
		if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
			t.Errorf("server could not decode the client's recipe: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		if dup.Load() {
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(serve.IngestAck{Seq: 1, Duplicate: true, RecordsSinceFit: 1})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.IngestAck{Seq: 1, RecordsSinceFit: 1})
	}))
	defer ts.Close()
	c := mustNew(t, ts.URL, Options{})

	receipt, err := c.Ingest(context.Background(), jelly())
	if err != nil {
		t.Fatal(err)
	}
	if !receipt.Accepted || receipt.Duplicate || receipt.Seq != 1 {
		t.Fatalf("receipt = %+v", receipt)
	}

	dup.Store(true)
	receipt, err = c.Ingest(context.Background(), jelly())
	if err != nil {
		t.Fatal(err)
	}
	if receipt.Accepted || !receipt.Duplicate || receipt.Seq != 1 {
		t.Fatalf("duplicate receipt = %+v", receipt)
	}
}

// TestIngestRetriedAfterLostAck: the idempotency story end to end — a
// 503 (the "ack lost in flight" stand-in) is retried on the shared
// schedule, and the retry's duplicate answer still reports the durable
// sequence. At-least-once delivery, exactly-once records.
func TestIngestRetriedAfterLostAck(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "draining; retry against a peer", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(serve.IngestAck{Seq: 7, Duplicate: true, RecordsSinceFit: 3})
	}))
	defer ts.Close()

	receipt, err := mustNew(t, ts.URL, fastRetry(3)).Ingest(context.Background(), jelly())
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2 (one failed, one retried)", calls.Load())
	}
	if receipt.Accepted || !receipt.Duplicate || receipt.Seq != 7 {
		t.Fatalf("receipt after retry = %+v", receipt)
	}
}

// TestIngestBatchRoundtrip: the batch call decodes the server's own
// response type, and over-limit batches are refused before any bytes
// hit the wire.
func TestIngestBatchRoundtrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/ingest/batch" {
			t.Errorf("path = %s", r.URL.Path)
		}
		var req struct {
			Recipes []*recipe.Recipe `json:"recipes"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Recipes) != 2 {
			t.Errorf("batch decode: %v (%d recipes)", err, len(req.Recipes))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.IngestBatchResponse{
			Results: []serve.IngestBatchItem{
				{Index: 0, Seq: 1, Status: http.StatusAccepted},
				{Index: 1, Seq: 1, Duplicate: true, Status: http.StatusOK},
			},
			Accepted: 1, Duplicates: 1,
		})
	}))
	defer ts.Close()
	c := mustNew(t, ts.URL, Options{MaxBatch: 2})

	resp, err := c.IngestBatch(context.Background(), []*recipe.Recipe{jelly(), jelly()})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Duplicates != 1 || len(resp.Results) != 2 {
		t.Fatalf("response = %+v", resp)
	}
	if _, err := c.IngestBatch(context.Background(), []*recipe.Recipe{jelly(), jelly(), jelly()}); err == nil {
		t.Error("over-limit batch accepted")
	}
	if resp, err := c.IngestBatch(context.Background(), nil); err != nil || len(resp.Results) != 0 {
		t.Errorf("empty batch: %+v, %v", resp, err)
	}
}

// TestIngestErrorTaxonomy: a 422 surfaces as ErrRecipe without
// retries, like every other recipe-fault answer.
func TestIngestErrorTaxonomy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "ingest: recipe fault: no gelling agent", http.StatusUnprocessableEntity)
	}))
	defer ts.Close()

	_, err := mustNew(t, ts.URL, fastRetry(3)).Ingest(context.Background(), jelly())
	if !errors.Is(err, ErrRecipe) {
		t.Fatalf("err = %v, want ErrRecipe", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("recipe fault retried: %d calls", calls.Load())
	}
}
