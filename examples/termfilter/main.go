// Termfilter: the paper's word2vec relatedness filter in isolation. A
// mousse topped with nuts may be described as さくさく (crispy), but
// the crispiness belongs to the nuts, not the gel. Skip-gram
// embeddings trained on the recipe descriptions place さくさく next to
// ナッツ and グラノーラ; the filter excludes texture terms that sit
// markedly closer to gel-unrelated ingredients than to the gels.
//
//	go run ./examples/termfilter
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/pipeline"
	"repro/internal/textseg"
	"repro/internal/word2vec"
)

func main() {
	cfg := corpus.DefaultConfig()
	cfg.ConfoundRate = 0.3 // plenty of nut/granola toppings
	recipes, err := corpus.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Tokenize descriptions with a dictionary that knows both texture
	// terms and ingredient names.
	dict := lexicon.Default()
	trie := dict.Trie()
	next := dict.Len()
	for _, info := range recipeIngredients() {
		trie.Insert(info, next)
		next++
	}
	tok := textseg.NewTokenizer(trie)
	var sentences [][]string
	for _, r := range recipes {
		if s := textseg.Surfaces(tok.Tokenize(r.Description)); len(s) > 1 {
			sentences = append(sentences, s)
		}
	}

	w2v := word2vec.DefaultConfig()
	w2v.Subsample = 0
	model, err := word2vec.Train(sentences, w2v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("trained", model.Vocab)

	for _, term := range []string{"さくさく", "ぷるぷる"} {
		fmt.Printf("\nnearest neighbours of %s:\n", term)
		nb, err := model.MostSimilar(term, 6)
		if err != nil {
			log.Fatal(err)
		}
		for _, ws := range nb {
			fmt.Printf("   %-14s %.3f\n", ws.Word, ws.Score)
		}
	}

	candidates := []string{"さくさく", "かりかり", "ぱりぱり", "ざくざく", "ぷるぷる", "ふわふわ", "とろとろ", "かたい"}
	results := word2vec.FilterContrastive(model, candidates,
		pipeline.UnrelatedIngredientWords(), pipeline.GelIngredientWords(), 25, 0.25, 0.15)
	sort.Slice(results, func(i, j int) bool { return results[i].Term < results[j].Term })
	fmt.Println("\nfilter decisions:")
	for _, r := range results {
		verdict := "keep"
		if r.Excluded {
			verdict = fmt.Sprintf("EXCLUDE (neighbours: %v)", r.Offending)
		}
		fmt.Printf("   %-10s %s\n", r.Term, verdict)
	}
}

func recipeIngredients() []string {
	var out []string
	out = append(out, pipeline.UnrelatedIngredientWords()...)
	out = append(out, pipeline.GelIngredientWords()...)
	return out
}
