// Sensorypanel: reproduce the sensory-vs-instrumental correlation
// experiment behind the paper's Related Work. A simulated panel of
// subjects scores the Table I samples on 9-point scales and names
// their textures; the panel means are correlated against the
// instrumental rheometer values — strong but imperfect agreement, the
// gap the paper's topic-model linkage is designed to bridge at corpus
// scale.
//
//	go run ./examples/sensorypanel
package main

import (
	"fmt"
	"log"

	"repro/internal/lexicon"
	"repro/internal/rheology"
	"repro/internal/sensory"
)

func main() {
	dict := lexicon.Default()
	samples := make([]rheology.Attributes, len(rheology.TableI))
	for i, m := range rheology.TableI {
		samples[i] = m.Attr
	}

	panel := sensory.DefaultPanel()
	evals, err := panel.Evaluate(dict, samples)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("panel of %d subjects over the %d Table I samples\n\n", panel.Subjects, len(samples))
	fmt.Println("sample  inst-H  panel-H | inst-C panel-C | words most chosen")
	for i, e := range evals {
		top := sensory.TopWords(dict, evals[i:i+1], 2)
		names := ""
		for j, t := range top {
			if j > 0 {
				names += ", "
			}
			names += t.Romaji
		}
		fmt.Printf("%-7s %6.2f  %6.2f | %6.2f %6.2f | %s\n",
			rheology.TableI[i].ID, e.Attr.Hardness, e.MeanHardness(),
			e.Attr.Cohesiveness, e.MeanCohesive(), names)
	}

	fmt.Println("\nsensory–instrumental correlation (the experiment of refs [13],[14]):")
	for _, c := range sensory.Correlate(evals) {
		fmt.Printf("  %-13s Spearman %+.3f  Pearson %+.3f\n", c.Axis, c.Spearman, c.Pearson)
	}
	fmt.Printf("\nword-to-instrument agreement on hardness: %.1f%%\n",
		100*sensory.WordAgreement(dict, evals, 1.5))
}
