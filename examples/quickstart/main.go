// Quickstart: run the texture-mining pipeline end to end on a small
// synthetic corpus and inspect the topics it finds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/linkage"
	"repro/internal/pipeline"
	"repro/internal/recipe"
)

func main() {
	// Default options reproduce the paper's setup; a smaller corpus and
	// fewer sweeps keep the quickstart fast.
	opts := pipeline.DefaultOptions()
	opts.Corpus.Scale = 0.25
	opts.Model.Iterations = 150

	out, err := pipeline.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d of %d recipes (dropped: %d without gel, %d without texture terms, %d over the 10%% unrelated rule)\n\n",
		len(out.Kept), len(out.AllRecipes),
		out.FilterStats.NoGel, out.FilterStats.NoTexture, out.FilterStats.TooUnrelated)

	counts := out.Model.DocsPerTopic()
	for k := 0; k < out.Model.K; k++ {
		if counts[k] == 0 {
			continue
		}
		fmt.Printf("topic %d (%d recipes):", k, counts[k])
		gels := linkage.TopicMeanConcentrations(out.Model, k, 0.0005)
		for axis, conc := range gels {
			fmt.Printf(" %s=%.3f", recipe.Gel(axis), conc)
		}
		fmt.Println()
		for _, tp := range out.Model.TopTerms(k, 3) {
			if tp.Prob < 0.02 {
				break
			}
			term := out.Dict.Term(tp.ID)
			fmt.Printf("   %-16s %.3f  %s\n", term.Romaji, tp.Prob, term.Gloss)
		}
	}
}
