// Whatstexture: the paper's motivating application. Given a brand-new
// posted recipe with no texture description at all, estimate what
// texture it will have: fold the recipe into the fitted topic model by
// its ingredient concentrations, read off the topic's texture
// vocabulary, and cross-check with the rheology simulator.
//
//	go run ./examples/whatstexture
package main

import (
	"fmt"
	"log"

	"repro/internal/pipeline"
	"repro/internal/recipe"
	"repro/internal/rheology"
	"repro/internal/stats"
)

func main() {
	// Fit the model on the corpus (as a service would do offline).
	opts := pipeline.DefaultOptions()
	out, err := pipeline.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	// A new posted recipe: a panna cotta. The description says nothing
	// about texture — exactly the situation the paper motivates.
	panna := &recipe.Recipe{
		ID:          "user-panna-cotta",
		Title:       "とろける パンナコッタ",
		Description: "イタリアの定番デザートをおうちで。",
		Ingredients: []recipe.Ingredient{
			{Name: "ゼラチン", Amount: "5g"},
			{Name: "生クリーム", Amount: "200ml"},
			{Name: "牛乳", Amount: "100ml"},
			{Name: "砂糖", Amount: "大さじ3"},
		},
	}
	if err := panna.Resolve(); err != nil {
		log.Fatal(err)
	}
	gels := panna.GelConcentrations()
	emus := panna.EmulsionConcentrations()
	fmt.Printf("new recipe %q: gelatin %.1f%%, cream %.1f%%, milk %.1f%%, sugar %.1f%%\n\n",
		panna.Title, 100*gels[recipe.Gelatin], 100*emus[recipe.RawCream],
		100*emus[recipe.Milk], 100*emus[recipe.Sugar])

	// Fold into the fitted model: no texture words, concentrations only.
	theta, err := out.Model.FoldIn(nil, panna.GelFeatures(), panna.EmulsionFeatures(), 100, 42)
	if err != nil {
		log.Fatal(err)
	}
	topic := stats.ArgMax(theta)
	fmt.Printf("estimated topic: %d (p=%.2f) — expected texture words:\n", topic, theta[topic])
	for _, tp := range out.Model.TopTerms(topic, 5) {
		if tp.Prob < 0.02 {
			break
		}
		term := out.Dict.Term(tp.ID)
		fmt.Printf("   %-16s %.3f  %s\n", term.Romaji, tp.Prob, term.Gloss)
	}

	// Cross-check with the calibrated rheology simulator.
	attr := rheology.Predict(gels, emus)
	fmt.Printf("\nsimulated rheology: hardness=%.2f cohesiveness=%.2f adhesiveness=%.2f (RU)\n",
		attr.Hardness, attr.Cohesiveness, attr.Adhesiveness)
	fmt.Println("(compare: pure 1.1% gelatin would measure far softer — the cream is an active filler)")
}
