// Rheometer: sweep gel compositions through the Table-I-calibrated
// texture predictor and the TPA curve simulator — the quantitative
// side of the paper without any text mining.
//
//	go run ./examples/rheometer
package main

import (
	"fmt"
	"log"

	"repro/internal/recipe"
	"repro/internal/report"
	"repro/internal/rheology"
)

func main() {
	// Dose-response sweep: how does gelatin concentration shape texture?
	fmt.Println("gelatin dose-response (simulator calibrated to Table I):")
	fmt.Println("conc    hardness cohesiveness adhesiveness")
	for _, c := range []float64{0.015, 0.02, 0.025, 0.03, 0.04, 0.055} {
		a := rheology.Predict([recipe.NumGels]float64{c, 0, 0}, [recipe.NumEmulsions]float64{})
		fmt.Printf("%.3f   %7.2f  %7.2f     %7.2f\n", c, a.Hardness, a.Cohesiveness, a.Adhesiveness)
	}

	// The emulsion effect: the same 2.5% gelatin as Bavarois vs plain.
	plain := rheology.Predict(rheology.PureGelatin25.Gels, [recipe.NumEmulsions]float64{})
	bav := rheology.PredictMeasurement(rheology.Bavarois)
	fmt.Printf("\nemulsion effect at 2.5%% gelatin: plain H=%.2f → Bavarois H=%.2f (measured %.2f)\n",
		plain.Hardness, bav.Hardness, rheology.Bavarois.Attr.Hardness)

	// One full rheometer run with curve extraction (Figure 2).
	fmt.Println()
	curve := rheology.Simulate(bav)
	fmt.Print(curve.ASCIIPlot(12, 70))
	got, err := curve.Extract()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted from curve: H=%.2f C=%.2f A=%.2f\n", got.Hardness, got.Cohesiveness, got.Adhesiveness)

	// And the measured-vs-simulated table.
	fmt.Println()
	fmt.Print(report.RenderTableI())
}
