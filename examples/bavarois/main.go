// Bavarois: the paper's Section V.B case study. Two dishes with the
// same 2.5% gelatin dose but different emulsions — Bavarois (yolk,
// cream, milk) and Milk jelly (sugar, lots of milk) — are assigned to
// their most similar topic by gel-concentration KL divergence, and the
// topic's recipes are ranked by emulsion-KL to each dish to read off
// the texture terms the dish would carry (Table II(b), Figures 3-4).
//
//	go run ./examples/bavarois
package main

import (
	"fmt"
	"log"

	"repro/internal/linkage"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/rheology"
)

func main() {
	// The firm-gelatin population has only ~38 recipes; the case study
	// needs the full-scale corpus to recover it as its own topic.
	out, err := pipeline.Run(pipeline.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	cs, err := report.BuildCaseStudy(out, linkage.DefaultConfig(), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.RenderTableIIb(cs))
	fmt.Println()

	for _, dish := range []rheology.Measurement{rheology.Bavarois, rheology.MilkJelly} {
		fmt.Print(report.RenderFigure3(cs.Figure3[dish.ID]))
		fmt.Println()
		fmt.Print(report.RenderFigure4(cs.Figure4[dish.ID]))
		fmt.Println()
	}

	// The paper's reading of the figures, computed:
	bav, milk := cs.Figure4["Bavarois"], cs.Figure4["Milk jelly"]
	bh, bc := bav.NearMeanKL(0.25)
	mh, mc := milk.NearMeanKL(0.25)
	fmt.Println("reading:")
	fmt.Printf("  recipes near Bavarois read hard (%+.2f vs topic %+.2f) and elastic (%+.2f vs %+.2f)\n",
		bh, bav.StarX, bc, bav.StarY)
	fmt.Printf("  recipes near Milk jelly read hard (%+.2f) but less elastic (%+.2f)\n", mh, mc)
	fmt.Printf("  matching the measured attributes: Bavarois H=%.2f C=%.2f, Milk jelly H=%.2f C=%.2f\n",
		rheology.Bavarois.Attr.Hardness, rheology.Bavarois.Attr.Cohesiveness,
		rheology.MilkJelly.Attr.Hardness, rheology.MilkJelly.Attr.Cohesiveness)
}
