# Development targets. `make verify` is the gate a change must pass:
# vet plus the full test suite under the race detector (the serving
# runtime is concurrent by design — races are correctness bugs here).

GO ?= go

.PHONY: build test verify bench-serve bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify:
	$(GO) vet ./... && $(GO) test -race ./...

# The pooled serve-path benchmark: tracks end-to-end /annotate
# latency and shed count across PRs.
bench-serve:
	$(GO) test -run '^$$' -bench BenchmarkServeAnnotate -benchtime 2x .

# The serving-stack baseline: runs the serve-path and fold-in
# benchmarks and writes the parsed results to BENCH_serve.json so a PR
# can diff numbers against the committed baseline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkServeAnnotate|BenchmarkFoldInPlacement|BenchmarkGibbsSweep' -benchtime 2x . \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json

bench-all:
	$(GO) test -run '^$$' -bench . .
