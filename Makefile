# Development targets. `make verify` is the gate a change must pass:
# vet plus the full test suite under the race detector (the serving
# runtime is concurrent by design — races are correctness bugs here).

GO ?= go

# Stable benchmark settings for the committed baseline: a fixed
# iteration count high enough to amortize warm-up (the old 2x baseline
# measured little but cache-cold setup), one run per benchmark, and
# allocation reporting so allocs/op regressions are caught alongside
# ns/op.
BENCHTIME ?= 100x
BENCHCOUNT ?= 1
BENCH_PATTERN := BenchmarkServeAnnotate|BenchmarkServeAnnotateBatch|BenchmarkFoldInPlacement|BenchmarkFoldInSteadyState|BenchmarkGibbsSweep|BenchmarkBundleSave|BenchmarkBundleLoad|BenchmarkSupervisedFit|BenchmarkUnsupervisedFit|BenchmarkShardedFit

.PHONY: build test verify smoke bench-serve bench bench-compare bench-all profile fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: smoke
	$(GO) vet ./... && $(GO) test -race ./...

# The self-healing smoke: health classification, supervisor recovery,
# checkpoint rollback, the robust store envelope (breaker/retry), the
# model registry, the replica follower, and the annotation cache with
# its single-flight dedup and drain gating — all under the race
# detector. A fast subset of verify for iterating on the fit-recovery
# and fleet-rollout machinery, and an explicit gate inside it — these
# paths involve watchdog goroutines, an async checkpoint writer, a
# polling hot-swap loop, and flight-completion channels, so they must
# stay race-clean. The client SDK's retry/taxonomy contract tests ride
# along (they are httptest-only and fast), as does the whole sharded-fit
# suite — the orchestrator runs shard workers concurrently and its
# chaos/crash-resume tests are exactly the paths that must not race.
smoke:
	$(GO) test -race -run 'Health|Supervis|Rollback|Breaker|Robust|Store|Registry|Follower|Cache|Drain|Shard|Chaos|Stream' ./internal/core ./internal/resilience ./internal/pipeline ./internal/storage ./internal/serve
	$(GO) test -race ./internal/shardfit
	$(GO) test -race ./client

# The pooled serve-path benchmark: tracks end-to-end /annotate
# latency and shed count across PRs.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeAnnotate' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem .

# The serving-stack baseline: runs the serve-path (single and batch),
# fold-in, sampler-sweep, and bundle save/load benchmarks and writes
# the parsed results to BENCH_serve.json so a PR can diff numbers
# against the committed baseline.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json

# Regression gate: rerun the baseline suite into a scratch file and
# fail (non-zero exit) if any shared benchmark slowed down more than
# 15% in ns/op versus the committed BENCH_serve.json.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_new.json
	$(GO) run ./cmd/benchjson -compare -threshold 15 BENCH_serve.json BENCH_new.json

bench-all:
	$(GO) test -run '^$$' -bench . .

# CPU and heap profiles of the sampler hot path, for pprof:
#   go tool pprof cpu.pprof
profile:
	$(GO) test -run '^$$' -bench BenchmarkGibbsSweep -benchtime $(BENCHTIME) \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "profiles written: cpu.pprof mem.pprof (inspect with: go tool pprof cpu.pprof)"

# Each fuzz corpus for ~10s: cheap continuous assurance that no input
# can panic the durable-format loaders, the tokenizer, or the unit
# parser. Run before cutting a release; CI-friendly wall time.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzLoadBundle -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzReadCheckpoint -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzShardManifest -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzRegistryManifest -fuzztime 10s ./internal/storage
	$(GO) test -run '^$$' -fuzz FuzzTokenize -fuzztime 10s ./internal/textseg
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/units
