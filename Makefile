# Development targets. `make verify` is the gate a change must pass:
# vet plus the full test suite under the race detector (the serving
# runtime is concurrent by design — races are correctness bugs here).

GO ?= go

.PHONY: build test verify bench-serve bench bench-all fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify:
	$(GO) vet ./... && $(GO) test -race ./...

# The pooled serve-path benchmark: tracks end-to-end /annotate
# latency and shed count across PRs.
bench-serve:
	$(GO) test -run '^$$' -bench BenchmarkServeAnnotate -benchtime 2x .

# The serving-stack baseline: runs the serve-path, fold-in, and
# bundle save/load benchmarks and writes the parsed results to
# BENCH_serve.json so a PR can diff numbers against the committed
# baseline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkServeAnnotate|BenchmarkFoldInPlacement|BenchmarkGibbsSweep|BenchmarkBundleSave|BenchmarkBundleLoad' -benchtime 2x . \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json

bench-all:
	$(GO) test -run '^$$' -bench . .

# Each fuzz corpus for ~10s: cheap continuous assurance that no input
# can panic the durable-format loaders, the tokenizer, or the unit
# parser. Run before cutting a release; CI-friendly wall time.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzLoadBundle -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzReadCheckpoint -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzTokenize -fuzztime 10s ./internal/textseg
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/units
