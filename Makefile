# Development targets. `make verify` is the gate a change must pass:
# vet plus the full test suite under the race detector (the serving
# runtime is concurrent by design — races are correctness bugs here).

GO ?= go

# Stable benchmark settings for the committed baseline: a time-based
# benchtime so every benchmark — 2µs cache hits and 35ms sharded fits
# alike — averages its ns/op over the same ~1s wall window (this box
# sees hypervisor CPU steal that swings sub-millisecond windows 2x;
# equal windows make the mean comparable across benchmarks), three
# runs per benchmark collapsed to best-of-N by benchjson, and
# allocation reporting so allocs/op regressions are caught alongside
# ns/op.
BENCHTIME ?= 1s
BENCHCOUNT ?= 3
BENCH_PATTERN := BenchmarkServeAnnotate|BenchmarkServeAnnotateBatch|BenchmarkFoldInPlacement|BenchmarkFoldInSteadyState|BenchmarkGibbsSweep|BenchmarkBundleSave|BenchmarkBundleLoad|BenchmarkSupervisedFit|BenchmarkUnsupervisedFit|BenchmarkShardedFit|BenchmarkIngestAck|BenchmarkServeAnnotateFreshRecipe

.PHONY: build test verify smoke bench-serve bench bench-compare bench-all profile fuzz-smoke pgo pgo-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify: smoke pgo-check
	$(GO) vet ./... && $(GO) test -race ./...

# Guard against a silently dropped profile: when default.pgo is checked
# in, the toolchain must actually feed it to the compiler (-pgo=auto is
# the default since Go 1.21, but a stray GOFLAGS=-pgo=off or a moved
# profile would disable it without failing the build). Builds the
# server binary and inspects its recorded build settings.
pgo-check:
	@if [ -f cmd/textureserver/default.pgo ]; then \
		$(GO) build -o .pgocheck.bin ./cmd/textureserver; \
		if ! $(GO) version -m .pgocheck.bin | grep -q -- '-pgo='; then \
			echo "verify: cmd/textureserver/default.pgo exists but the build does not consume it"; \
			rm -f .pgocheck.bin; exit 1; \
		fi; \
		rm -f .pgocheck.bin; \
		echo "pgo-check: build consumes default.pgo"; \
	fi

# The self-healing smoke: health classification, supervisor recovery,
# checkpoint rollback, the robust store envelope (breaker/retry), the
# model registry, the replica follower, and the annotation cache with
# its single-flight dedup and drain gating — all under the race
# detector. A fast subset of verify for iterating on the fit-recovery
# and fleet-rollout machinery, and an explicit gate inside it — these
# paths involve watchdog goroutines, an async checkpoint writer, a
# polling hot-swap loop, and flight-completion channels, so they must
# stay race-clean. The client SDK's retry/taxonomy contract tests ride
# along (they are httptest-only and fast), as does the whole sharded-fit
# suite — the orchestrator runs shard workers concurrently and its
# chaos/crash-resume tests are exactly the paths that must not race.
# The online-ingest suite joins the gate in full: the WAL's group-commit
# fsync, the kill -9 chaos harness, and the background refit controller
# are concurrent durability machinery — the exact code this smoke exists
# to keep race-clean.
smoke:
	$(GO) test -race -run 'Health|Supervis|Rollback|Breaker|Robust|Store|Registry|Follower|Cache|Drain|Shard|Chaos|Stream|Ingest|WAL|Refit' ./internal/core ./internal/resilience ./internal/pipeline ./internal/storage ./internal/serve
	$(GO) test -race ./internal/shardfit
	$(GO) test -race ./internal/ingest
	$(GO) test -race ./client

# The pooled serve-path benchmark: tracks end-to-end /annotate
# latency and shed count across PRs.
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeAnnotate' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem .

# The serving-stack baseline: runs the serve-path (single and batch),
# fold-in, sampler-sweep, and bundle save/load benchmarks and writes
# the parsed results to BENCH_serve.json so a PR can diff numbers
# against the committed baseline.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_serve.json

# Regression gate: rerun the baseline suite into a scratch file and
# fail (non-zero exit) if any shared benchmark slowed down more than
# 15% in ns/op versus the committed BENCH_serve.json. The build
# consumes the checked-in default.pgo, so after `make pgo` this delta
# is the combined code + PGO effect.
bench-compare:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_new.json
	$(GO) run ./cmd/benchjson -compare -threshold 15 BENCH_serve.json BENCH_new.json

bench-all:
	$(GO) test -run '^$$' -bench . .

# Profile-guided optimization: collect CPU profiles from the fit-path
# and serve-path benchmarks separately, merge them with pprof, and
# check the result in as default.pgo (repo root for the benchmark/test
# binary, cmd/textureserver for the shipped server — -pgo=auto picks
# each up automatically since Go 1.21). Time-based benchtime so both
# profiles carry comparable sample mass regardless of per-op cost.
# Re-run after changing a hot path; bench-compare then reports the
# combined code + PGO delta against the committed baseline.
PGO_BENCHTIME ?= 2s
pgo:
	$(GO) test -run '^$$' -bench 'BenchmarkGibbsSweep|BenchmarkUnsupervisedFit|BenchmarkSupervisedFit' \
		-benchtime $(PGO_BENCHTIME) -cpuprofile pgo_fit.pprof .
	$(GO) test -run '^$$' -bench 'BenchmarkServeAnnotate$$|BenchmarkServeAnnotateHot|BenchmarkFoldInSteadyState|BenchmarkFoldInPlacement' \
		-benchtime $(PGO_BENCHTIME) -cpuprofile pgo_serve.pprof .
	$(GO) tool pprof -proto pgo_fit.pprof pgo_serve.pprof > default.pgo
	cp default.pgo cmd/textureserver/default.pgo
	rm -f pgo_fit.pprof pgo_serve.pprof repro.test
	@echo "default.pgo refreshed (repo root + cmd/textureserver)"

# CPU and heap profiles of the sampler hot path, for pprof:
#   go tool pprof cpu.pprof
profile:
	$(GO) test -run '^$$' -bench BenchmarkGibbsSweep -benchtime $(BENCHTIME) \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "profiles written: cpu.pprof mem.pprof (inspect with: go tool pprof cpu.pprof)"

# Each fuzz corpus for ~10s: cheap continuous assurance that no input
# can panic the durable-format loaders, the tokenizer, or the unit
# parser. Run before cutting a release; CI-friendly wall time.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzLoadBundle -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzReadCheckpoint -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzShardManifest -fuzztime 10s ./internal/pipeline
	$(GO) test -run '^$$' -fuzz FuzzRegistryManifest -fuzztime 10s ./internal/storage
	$(GO) test -run '^$$' -fuzz FuzzTokenize -fuzztime 10s ./internal/textseg
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/units
	$(GO) test -run '^$$' -fuzz FuzzAliasTable -fuzztime 10s ./internal/stats
	$(GO) test -run '^$$' -fuzz FuzzWALRecord -fuzztime 10s ./internal/ingest
