// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations over the design choices called out in
// DESIGN.md. Custom metrics (purity, NMI, Spearman, …) are attached to
// the benchmark output via b.ReportMetric, so `go test -bench=.`
// doubles as the experiment harness; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/ingest"
	"repro/internal/lexicon"
	"repro/internal/linkage"
	"repro/internal/pipeline"
	"repro/internal/recipe"
	"repro/internal/report"
	"repro/internal/resilience"
	"repro/internal/rheology"
	"repro/internal/rules"
	"repro/internal/sensory"
	"repro/internal/serve"
	_ "repro/internal/shardfit" // registers the sharded fitter with the pipeline
	"repro/internal/stats"
	"repro/internal/textseg"
	"repro/internal/word2vec"
)

// fixture is the shared full-scale fitted pipeline used by the
// table/figure benches so the expensive fit runs once.
var (
	fixtureOnce sync.Once
	fixtureOut  *pipeline.Output
	fixtureErr  error
)

func fixture(b *testing.B) *pipeline.Output {
	b.Helper()
	fixtureOnce.Do(func() {
		fixtureOut, fixtureErr = pipeline.Run(pipeline.DefaultOptions())
	})
	if fixtureErr != nil {
		b.Fatal(fixtureErr)
	}
	return fixtureOut
}

func truthOf(out *pipeline.Output) []int {
	truth := make([]int, len(out.Docs))
	for i, d := range out.Docs {
		truth[i] = d.Truth
	}
	return truth
}

func recovery(b *testing.B, out *pipeline.Output) *eval.Contingency {
	b.Helper()
	c, err := eval.NewContingency(out.Model.Assign(), truthOf(out))
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTableI regenerates Table I: the calibrated simulator's
// predictions for all thirteen empirical settings. The maxRelErr
// metric is the worst relative error across rows and attributes
// (absolute error for attributes measured as 0).
func BenchmarkTableI(b *testing.B) {
	worst := 0.0
	for i := 0; i < b.N; i++ {
		worst = 0.0
		for _, m := range rheology.TableI {
			p := rheology.PredictMeasurement(m)
			for _, pair := range [][2]float64{
				{p.Hardness, m.Attr.Hardness},
				{p.Cohesiveness, m.Attr.Cohesiveness},
				{p.Adhesiveness, m.Attr.Adhesiveness},
			} {
				err := pair[0] - pair[1]
				if err < 0 {
					err = -err
				}
				if pair[1] > 0 {
					err /= pair[1]
				}
				if err > worst {
					worst = err
				}
			}
		}
	}
	b.ReportMetric(worst, "maxRelErr")
}

// BenchmarkFigure2 regenerates Figure 2: TPA curve synthesis and
// attribute re-extraction for Table I data 4.
func BenchmarkFigure2(b *testing.B) {
	attr := rheology.TableI[3].Attr
	var recovered rheology.Attributes
	for i := 0; i < b.N; i++ {
		got, err := rheology.Simulate(attr).Extract()
		if err != nil {
			b.Fatal(err)
		}
		recovered = got
	}
	b.ReportMetric(recovered.Hardness, "F1_RU")
	b.ReportMetric(recovered.Cohesiveness, "c/a")
	b.ReportMetric(recovered.Adhesiveness, "negArea_RU")
}

// BenchmarkTableIIa regenerates Table II(a): the full pipeline (corpus,
// word2vec filter, dataset filters, joint topic model) plus the KL
// assignment of the Table I rows. Metrics report ground-truth recovery
// and the Texture Profile hardness consistency.
func BenchmarkTableIIa(b *testing.B) {
	var c *eval.Contingency
	var spearman float64
	var ci eval.CI
	for i := 0; i < b.N; i++ {
		out, err := pipeline.Run(pipeline.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		_, assignments, err := report.BuildTableIIa(out, linkage.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		c = recovery(b, out)
		val := linkage.Validate(out.Model, out.Dict, assignments)
		spearman = val.Spearman[lexicon.Hardness]
		ci, err = eval.BootstrapClusterMetric(out.Model.Assign(), truthOf(out),
			func(ct *eval.Contingency) float64 { return ct.Purity() }, 200, 0.95, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.Purity(), "purity")
	b.ReportMetric(ci.Lo, "purityCI95lo")
	b.ReportMetric(ci.Hi, "purityCI95hi")
	b.ReportMetric(c.NMI(), "NMI")
	b.ReportMetric(spearman, "hardSpearman")
}

// BenchmarkTableIIb regenerates Table II(b): assigning Bavarois and
// Milk jelly to topics on the shared fitted model. sameTopic is 1 when
// both dishes land in one topic (as in the paper) and that topic also
// hosts Table I data 3.
func BenchmarkTableIIb(b *testing.B) {
	out := fixture(b)
	same := 0.0
	for i := 0; i < b.N; i++ {
		dishes := []rheology.Measurement{rheology.Bavarois, rheology.MilkJelly, rheology.PureGelatin25}
		as, err := linkage.AssignMeasurements(out.Model, dishes, linkage.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		same = 0
		if as[0].Topic == as[1].Topic && as[1].Topic == as[2].Topic {
			same = 1
		}
	}
	b.ReportMetric(same, "sameTopic")
}

// BenchmarkFigure3 regenerates Figure 3 for both dishes on the shared
// fitted model. Metrics: the near-dish hard fraction for Milk jelly
// and the near-dish elastic-fraction gap between the dishes (the
// paper's Bavarois-specific elasticity signal).
func BenchmarkFigure3(b *testing.B) {
	out := fixture(b)
	cfg := linkage.DefaultConfig()
	var nearHard, elasticGap float64
	for i := 0; i < b.N; i++ {
		cs, err := report.BuildCaseStudy(out, cfg, 5)
		if err != nil {
			b.Fatal(err)
		}
		nearHard = cs.Figure3["Milk jelly"].Bins[0].HardFraction()
		elasticGap = cs.Figure3["Bavarois"].Bins[0].ElasticFraction() -
			cs.Figure3["Milk jelly"].Bins[0].ElasticFraction()
	}
	b.ReportMetric(nearHard, "nearHardFrac")
	b.ReportMetric(elasticGap, "elasticGap")
}

// BenchmarkFigure4 regenerates Figure 4 for both dishes. Metrics: how
// far right of the topic star the near-dish quartile sits on the
// hardness axis for each dish, and the cohesiveness gap between the
// dishes' near quartiles.
func BenchmarkFigure4(b *testing.B) {
	out := fixture(b)
	cfg := linkage.DefaultConfig()
	var bavRight, milkRight, cohGap float64
	for i := 0; i < b.N; i++ {
		cs, err := report.BuildCaseStudy(out, cfg, 5)
		if err != nil {
			b.Fatal(err)
		}
		bav, milk := cs.Figure4["Bavarois"], cs.Figure4["Milk jelly"]
		bh, bc := bav.NearMeanKL(0.25)
		mh, mc := milk.NearMeanKL(0.25)
		bavRight = bh - bav.StarX
		milkRight = mh - milk.StarX
		cohGap = bc - mc
	}
	b.ReportMetric(bavRight, "bavHardVsStar")
	b.ReportMetric(milkRight, "milkHardVsStar")
	b.ReportMetric(cohGap, "bavMilkCohGap")
}

// ablationOptions is the reduced-size configuration shared by the
// ablation benches.
func ablationOptions() pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.Corpus.Scale = 0.3
	opts.Model.Iterations = 150
	return opts
}

// BenchmarkAblationCollapsed compares the explicit parameter sampler
// (the paper's equation (4)) against the collapsed Student-t sampler.
func BenchmarkAblationCollapsed(b *testing.B) {
	for _, mode := range []struct {
		name      string
		collapsed bool
	}{{"explicit", false}, {"collapsed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var c *eval.Contingency
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				opts.Model.Collapsed = mode.collapsed
				out, err := pipeline.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				c = recovery(b, out)
			}
			b.ReportMetric(c.NMI(), "NMI")
			b.ReportMetric(c.Purity(), "purity")
		})
	}
}

// BenchmarkAblationBaselines compares the joint model against
// words-only LDA and a concentrations-only GMM on the same dataset.
func BenchmarkAblationBaselines(b *testing.B) {
	opts := ablationOptions()
	out, err := pipeline.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	truth := truthOf(out)
	words := make([][]int, len(out.Docs))
	gel := make([][]float64, len(out.Docs))
	for i, d := range out.Docs {
		words[i] = d.TermIDs
		gel[i] = d.Gel
	}

	b.Run("joint", func(b *testing.B) {
		var c *eval.Contingency
		for i := 0; i < b.N; i++ {
			c = recovery(b, out)
		}
		b.ReportMetric(c.NMI(), "NMI")
	})
	b.Run("lda", func(b *testing.B) {
		var nmi float64
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultLDAConfig()
			cfg.Iterations = 150
			res, err := core.FitLDA(words, out.Dict.Len(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			c, err := eval.NewContingency(res.Assign(), truth)
			if err != nil {
				b.Fatal(err)
			}
			nmi = c.NMI()
		}
		b.ReportMetric(nmi, "NMI")
	})
	b.Run("gmm", func(b *testing.B) {
		var nmi float64
		for i := 0; i < b.N; i++ {
			res, err := core.FitGMM(gel, core.GMMConfig{K: 10, Alpha: 1, Iterations: 100, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			c, err := eval.NewContingency(res.Y, truth)
			if err != nil {
				b.Fatal(err)
			}
			nmi = c.NMI()
		}
		b.ReportMetric(nmi, "NMI")
	})
}

// BenchmarkAblationFilter measures the word2vec relatedness filter's
// effect: fraction of mined term tokens that are non-gel noise, with
// the filter off and on, at a high confound rate.
func BenchmarkAblationFilter(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var noise float64
			for i := 0; i < b.N; i++ {
				opts := pipeline.DefaultOptions()
				opts.Corpus.ConfoundRate = 0.3
				opts.Model.Iterations = 50
				opts.UseW2VFilter = mode.on
				out, err := pipeline.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				nonGel, total := 0, 0
				for _, d := range out.Docs {
					for _, id := range d.TermIDs {
						total++
						if !out.Dict.Term(id).GelRelated {
							nonGel++
						}
					}
				}
				noise = float64(nonGel) / float64(total)
			}
			b.ReportMetric(noise, "noiseTokenFrac")
		})
	}
}

// BenchmarkAblationLogTransform compares the paper's −log(x)
// information-quantity features against raw concentration ratios.
func BenchmarkAblationLogTransform(b *testing.B) {
	opts := ablationOptions()
	out, err := pipeline.Run(opts) // provides docs; refit below
	if err != nil {
		b.Fatal(err)
	}
	truth := truthOf(out)
	fit := func(b *testing.B, transform func([]float64) []float64) float64 {
		data := &core.Data{V: out.Dict.Len()}
		for _, d := range out.Docs {
			data.Words = append(data.Words, d.TermIDs)
			data.Gel = append(data.Gel, transform(d.Gel))
			data.Emu = append(data.Emu, transform(d.Emulsion))
		}
		res, err := core.Fit(data, opts.Model)
		if err != nil {
			b.Fatal(err)
		}
		c, err := eval.NewContingency(res.Assign(), truth)
		if err != nil {
			b.Fatal(err)
		}
		return c.NMI()
	}
	b.Run("neglog", func(b *testing.B) {
		var nmi float64
		for i := 0; i < b.N; i++ {
			nmi = fit(b, func(f []float64) []float64 { return f })
		}
		b.ReportMetric(nmi, "NMI")
	})
	b.Run("raw", func(b *testing.B) {
		var nmi float64
		for i := 0; i < b.N; i++ {
			nmi = fit(b, recipe.ConcentrationVector)
		}
		b.ReportMetric(nmi, "NMI")
	})
}

// BenchmarkAblationEpsilon sweeps the ε floor applied to absent
// ingredients before the −log transform.
func BenchmarkAblationEpsilon(b *testing.B) {
	opts := ablationOptions()
	out, err := pipeline.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	truth := truthOf(out)
	for _, tc := range []struct {
		name string
		eps  float64
	}{{"1e-2", 1e-2}, {"1e-4", 1e-4}, {"1e-6", 1e-6}} {
		b.Run(tc.name, func(b *testing.B) {
			var nmi float64
			for i := 0; i < b.N; i++ {
				data := &core.Data{V: out.Dict.Len()}
				refloor := func(f []float64) []float64 {
					o := make([]float64, len(f))
					for j, v := range f {
						o[j] = recipe.InfoQuantityEps(recipe.Concentration(v), tc.eps)
					}
					return o
				}
				for _, d := range out.Docs {
					data.Words = append(data.Words, d.TermIDs)
					data.Gel = append(data.Gel, refloor(d.Gel))
					data.Emu = append(data.Emu, refloor(d.Emulsion))
				}
				res, err := core.Fit(data, opts.Model)
				if err != nil {
					b.Fatal(err)
				}
				c, err := eval.NewContingency(res.Assign(), truth)
				if err != nil {
					b.Fatal(err)
				}
				nmi = c.NMI()
			}
			b.ReportMetric(nmi, "NMI")
		})
	}
}

// BenchmarkAblationEmulsionWeight sweeps the emulsion likelihood
// tempering λ (1.0 is the paper's exact model).
func BenchmarkAblationEmulsionWeight(b *testing.B) {
	for _, tc := range []struct {
		name   string
		weight float64
	}{{"1.0", 1.0}, {"0.5", 0.5}, {"0.25", 0.25}, {"gel-only", 0}} {
		b.Run(tc.name, func(b *testing.B) {
			var c *eval.Contingency
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				if tc.weight == 0 {
					opts.Model.UseEmulsion = false
				} else {
					opts.Model.EmulsionWeight = tc.weight
				}
				out, err := pipeline.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				c = recovery(b, out)
			}
			b.ReportMetric(c.NMI(), "NMI")
		})
	}
}

// BenchmarkGibbsSweep measures the cost of one Gibbs sweep over the
// full-scale dataset.
func BenchmarkGibbsSweep(b *testing.B) {
	out := fixture(b)
	data := &core.Data{V: out.Dict.Len()}
	for _, d := range out.Docs {
		data.Words = append(data.Words, d.TermIDs)
		data.Gel = append(data.Gel, d.Gel)
		data.Emu = append(data.Emu, d.Emulsion)
	}
	cfg := pipeline.DefaultOptions().Model
	s, err := core.NewSampler(data, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Sweep(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(out.Docs)), "docs")
	b.ReportMetric(float64(b.N*len(out.Docs))/b.Elapsed().Seconds(), "docs/sec")
}

// BenchmarkWord2Vec measures skip-gram training on the corpus text.
func BenchmarkWord2Vec(b *testing.B) {
	recipes, err := corpus.Generate(corpus.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tok := lexicon.Default().Tokenizer()
	var sentences [][]string
	for _, r := range recipes {
		if s := textseg.Surfaces(tok.Tokenize(r.Description)); len(s) > 1 {
			sentences = append(sentences, s)
		}
	}
	cfg := word2vec.DefaultConfig()
	cfg.Epochs = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := word2vec.Train(sentences, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenizer measures dictionary longest-match segmentation
// throughput over recipe descriptions.
func BenchmarkTokenizer(b *testing.B) {
	recipes, err := corpus.Generate(corpus.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	tok := lexicon.Default().Tokenizer()
	var bytes int64
	for _, r := range recipes {
		bytes += int64(len(r.Description))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range recipes {
			tok.Tokenize(r.Description)
		}
	}
}

// BenchmarkRheologyPredict measures the texture predictor.
func BenchmarkRheologyPredict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range rheology.TableI {
			rheology.PredictMeasurement(m)
		}
	}
}

// BenchmarkModelSelectionK sweeps the topic count with held-out word
// perplexity as the criterion (the paper fixes K=10 without comment;
// the sweep justifies it).
func BenchmarkModelSelectionK(b *testing.B) {
	opts := ablationOptions()
	out, err := pipeline.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	full := &core.Data{V: out.Dict.Len()}
	for _, d := range out.Docs {
		full.Words = append(full.Words, d.TermIDs)
		full.Gel = append(full.Gel, d.Gel)
		full.Emu = append(full.Emu, d.Emulsion)
	}
	train, test, err := core.SplitData(full, 0.2, 11)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{5, 10, 15, 20} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var ho core.HeldOut
			for i := 0; i < b.N; i++ {
				cfg := opts.Model
				cfg.K = k
				res, err := core.Fit(train, cfg)
				if err != nil {
					b.Fatal(err)
				}
				ho, err = res.Evaluate(test, 50, 3)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ho.Perplexity, "perplexity")
			b.ReportMetric(ho.ConcLogLik, "concLogLik")
		})
	}
}

// BenchmarkFoldInPlacement measures fold-in inference on held-out
// recipes: the fraction placed into the cluster holding the majority
// of their ground-truth population.
func BenchmarkFoldInPlacement(b *testing.B) {
	out := fixture(b)
	// Majority cluster per truth label.
	assign := out.Model.Assign()
	counts := map[[2]int]int{}
	for i, d := range out.Docs {
		counts[[2]int{d.Truth, assign[i]}]++
	}
	majority := map[int]int{}
	best := map[int]int{}
	for key, n := range counts {
		if n > best[key[0]] {
			best[key[0]] = n
			majority[key[0]] = key[1]
		}
	}
	// Freshly generated recipes, unseen by the fit.
	cfg := corpus.DefaultConfig()
	cfg.Seed = 999
	cfg.Scale = 0.05
	fresh, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dict := lexicon.Default()
	acc := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correct, total := 0, 0
		for j, r := range fresh {
			theta, err := out.Model.FoldIn(dict.ExtractTermIDs(r.Description),
				r.GelFeatures(), r.EmulsionFeatures(), 60, uint64(j))
			if err != nil {
				b.Fatal(err)
			}
			total++
			if stats.ArgMax(theta) == majority[r.Truth] {
				correct++
			}
		}
		acc = float64(correct) / float64(total)
	}
	b.ReportMetric(acc, "placementAcc")
	b.ReportMetric(float64(len(fresh)), "recipes")
	b.ReportMetric(float64(b.N*len(fresh))/b.Elapsed().Seconds(), "recipes/sec")
}

// BenchmarkFoldInSteadyState isolates one warm fold-in chain on the
// cached kernel — the per-recipe serving kernel without HTTP, JSON or
// tokenization. allocs/op is the headline: after the kernel is built,
// a chain must run entirely out of pooled scratch.
func BenchmarkFoldInSteadyState(b *testing.B) {
	out := fixture(b)
	dict := lexicon.Default()
	cfg := corpus.DefaultConfig()
	cfg.Seed = 999
	cfg.Scale = 0.05
	fresh, err := corpus.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := fresh[0]
	words := dict.ExtractTermIDs(r.Description)
	gel, emu := r.GelFeatures(), r.EmulsionFeatures()
	kn, err := out.Model.BuildKernel()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	theta := make([]float64, kn.K())
	if err := kn.FoldInTo(ctx, theta, words, gel, emu, 60, 1); err != nil {
		b.Fatal(err) // warm the scratch pool before measuring
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kn.FoldInTo(ctx, theta, words, gel, emu, 60, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEnv is the reusable request/response harness of the serve-path
// benches: the request object, body reader, and response sink are
// built once per worker and recycled, so ns/op measures the server's
// cost — middleware, decode, cache or fold-in, encode — not the test
// client's per-request allocations. Both the fold-in and the cache-hit
// bench go through it, keeping their ns/op comparable.
type benchEnv struct {
	h    http.Handler
	req  *http.Request
	rd   *bytes.Reader
	body []byte
	hdr  http.Header
	code int
	buf  bytes.Buffer
}

func newBenchEnv(h http.Handler, path string, body []byte) *benchEnv {
	rd := bytes.NewReader(body)
	req := httptest.NewRequest("POST", path, rd)
	req.Body = io.NopCloser(rd)
	return &benchEnv{h: h, req: req, rd: rd, body: body, hdr: make(http.Header, 8)}
}

func (e *benchEnv) Header() http.Header { return e.hdr }
func (e *benchEnv) WriteHeader(code int) {
	e.code = code
}
func (e *benchEnv) Write(p []byte) (int, error) {
	e.buf.Write(p)
	return len(p), nil
}

// do serves one request and returns the status code.
func (e *benchEnv) do() int {
	e.rd.Reset(e.body)
	clear(e.hdr)
	e.code = http.StatusOK
	e.buf.Reset()
	e.h.ServeHTTP(e, e.req)
	return e.code
}

// BenchmarkServeAnnotate measures the pooled HTTP serve path end to
// end — JSON decode, admission gate, annotator checkout, fold-in
// Gibbs chain, response encode — with the benchmark's parallelism
// driving all pool slots. The shed metric counts requests lost to
// admission; with the roomy wait budget here it should stay 0, so a
// regression in pool turnover shows up in the metrics, not just the
// latency.
func BenchmarkServeAnnotate(b *testing.B) {
	out := fixture(b)
	opts := serve.DefaultOptions()
	opts.AdmitWait = time.Minute
	opts.RequestTimeout = time.Minute
	srv, err := serve.NewWithOptions(out, opts)
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	body := []byte(`{
		"id": "bench-1",
		"title": "ゼリー",
		"description": "ぷるぷるです",
		"ingredients": [
			{"name": "ゼラチン", "amount": "5g"},
			{"name": "水", "amount": "400ml"}
		]
	}`)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		env := newBenchEnv(h, "/annotate", body)
		for pb.Next() {
			if code := env.do(); code != http.StatusOK {
				b.Fatalf("status %d: %s", code, env.buf.String())
			}
		}
	})
	st := srv.Stats()
	b.ReportMetric(float64(st.Served), "served")
	b.ReportMetric(float64(st.Shed), "shed")
}

// BenchmarkServeAnnotateHot measures the request-cache hit path: one
// warm-up request folds in and fills the cache, then every measured
// request is served straight from memory — no pool slot, no Gibbs
// sweeps. Compare its ns/op against BenchmarkServeAnnotate (the
// fold-in path) for the hot-key speedup; the hits/misses metrics prove
// the measured loop never left the cache.
func BenchmarkServeAnnotateHot(b *testing.B) {
	out := fixture(b)
	opts := serve.DefaultOptions()
	opts.AdmitWait = time.Minute
	opts.RequestTimeout = time.Minute
	opts.Cache = true
	srv, err := serve.NewWithOptions(out, opts)
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	body := []byte(`{
		"id": "bench-hot",
		"title": "ゼリー",
		"description": "ぷるぷるです",
		"ingredients": [
			{"name": "ゼラチン", "amount": "5g"},
			{"name": "水", "amount": "400ml"}
		]
	}`)
	warm := newBenchEnv(h, "/annotate", body)
	if code := warm.do(); code != http.StatusOK {
		b.Fatalf("warm-up status %d: %s", code, warm.buf.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		env := newBenchEnv(h, "/annotate", body)
		for pb.Next() {
			if code := env.do(); code != http.StatusOK {
				b.Fatalf("status %d: %s", code, env.buf.String())
			}
		}
	})
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(float64(st.Cache.Hits), "hits")
	b.ReportMetric(float64(st.Cache.Misses), "misses")
}

// BenchmarkServeAnnotateDedup measures single-flight collapse: each
// iteration posts 16 concurrent identical requests for a key never
// seen before, so exactly one fold-in should feed all sixteen. ns/op
// is the wall time of the whole 16-wide wave; foldins/op is the proof
// of collapse (1.0 means perfect dedup).
func BenchmarkServeAnnotateDedup(b *testing.B) {
	out := fixture(b)
	opts := serve.DefaultOptions()
	opts.AdmitWait = time.Minute
	opts.RequestTimeout = time.Minute
	opts.Cache = true
	srv, err := serve.NewWithOptions(out, opts)
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	const fan = 16
	var failed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := []byte(fmt.Sprintf(`{
			"id": "bench-dedup-%d",
			"title": "ゼリー",
			"description": "ぷるぷるです",
			"ingredients": [
				{"name": "ゼラチン", "amount": "5g"},
				{"name": "水", "amount": "400ml"}
			]
		}`, i))
		var wg sync.WaitGroup
		for j := 0; j < fan; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				req := httptest.NewRequest("POST", "/annotate", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					failed.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d of %d deduped requests failed", n, b.N*fan)
	}
	foldins := srv.Metrics().Histogram("annotate_foldin_seconds", "", nil, nil).Count()
	b.ReportMetric(float64(foldins)/float64(b.N), "foldins/op")
	b.ReportMetric(float64(srv.Stats().Cache.Waiters), "waiters")
}

// BenchmarkServeAnnotateBatch measures POST /annotate/batch at
// several batch sizes. The per-recipe metric (ns/recipe) is the one
// to watch: the batch fans out across the annotator pool and shares
// one HTTP/JSON envelope, so it must come in well under the
// single-request ns/op of BenchmarkServeAnnotate.
func BenchmarkServeAnnotateBatch(b *testing.B) {
	out := fixture(b)
	recipeJSON := func(id int) string {
		return fmt.Sprintf(`{
			"id": "bench-%d",
			"title": "ゼリー",
			"description": "ぷるぷるです",
			"ingredients": [
				{"name": "ゼラチン", "amount": "5g"},
				{"name": "水", "amount": "400ml"}
			]
		}`, id)
	}
	for _, size := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			opts := serve.DefaultOptions()
			opts.AdmitWait = time.Minute
			opts.RequestTimeout = time.Minute
			opts.MaxBatch = size
			srv, err := serve.NewWithOptions(out, opts)
			if err != nil {
				b.Fatal(err)
			}
			h := srv.Handler()
			var sb bytes.Buffer
			sb.WriteString(`{"recipes":[`)
			for i := 0; i < size; i++ {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(recipeJSON(i))
			}
			sb.WriteString(`]}`)
			body := sb.Bytes()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/annotate/batch", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.StopTimer()
			b.ReportMetric(b.Elapsed().Seconds()/float64(b.N*size)*1e9, "ns/recipe")
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "recipes/sec")
		})
	}
}

// ingestBody renders the i-th unique ingest recipe with a fixed-width
// id, so the recycled benchEnv request's ContentLength stays correct
// while every iteration still hits a never-seen canonical hash.
func ingestBody(prefix string, i int) []byte {
	return []byte(fmt.Sprintf(`{
		"id": "%s-%08d",
		"title": "ゼリー",
		"description": "ぷるぷるです",
		"ingredients": [
			{"name": "ゼラチン", "amount": "5g"},
			{"name": "水", "amount": "400ml"}
		]
	}`, prefix, i))
}

// BenchmarkIngestAck measures the durable ingest path end to end —
// JSON decode, canonical hashing, WAL append, fsync, 202 encode. Every
// iteration posts a never-before-seen recipe, so ns/op is the
// fsync-acked write cost a client pays per accepted record;
// bytes/record is the WAL amplification (frame + digest + JSON
// envelope over the raw recipe).
func BenchmarkIngestAck(b *testing.B) {
	out := fixture(b)
	mgr, err := ingest.OpenManager(ingest.ManagerOptions{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	opts := serve.DefaultOptions()
	opts.AdmitWait = time.Minute
	opts.RequestTimeout = time.Minute
	opts.Ingest = mgr
	srv, err := serve.NewWithOptions(out, opts)
	if err != nil {
		b.Fatal(err)
	}
	env := newBenchEnv(srv.Handler(), "/ingest", ingestBody("bench-ingest", 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.body = ingestBody("bench-ingest", i+1)
		if code := env.do(); code != http.StatusAccepted {
			b.Fatalf("status %d: %s", code, env.buf.String())
		}
	}
	b.StopTimer()
	st := mgr.WAL().Stats()
	if st.Records != uint64(b.N) {
		b.Fatalf("WAL holds %d records, want %d", st.Records, b.N)
	}
	b.ReportMetric(float64(st.Bytes)/float64(st.Records), "bytes/record")
	b.ReportMetric(float64(st.Segments), "segments")
}

// BenchmarkServeAnnotateFreshRecipe measures the annotate path the way
// freshly ingested recipes exercise it: every iteration's recipe is
// new, so the request cache never hits and each request runs a full
// fold-in chain. Compare against BenchmarkServeAnnotateHot for the
// fresh-vs-cached spread; misses/op == 1 proves no iteration was
// accidentally served from memory.
func BenchmarkServeAnnotateFreshRecipe(b *testing.B) {
	out := fixture(b)
	opts := serve.DefaultOptions()
	opts.AdmitWait = time.Minute
	opts.RequestTimeout = time.Minute
	opts.Cache = true
	srv, err := serve.NewWithOptions(out, opts)
	if err != nil {
		b.Fatal(err)
	}
	env := newBenchEnv(srv.Handler(), "/annotate", ingestBody("bench-fresh", 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.body = ingestBody("bench-fresh", i+1)
		if code := env.do(); code != http.StatusOK {
			b.Fatalf("status %d: %s", code, env.buf.String())
		}
	}
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(float64(st.Cache.Misses)/float64(b.N), "misses/op")
	b.ReportMetric(float64(st.Cache.Hits), "hits")
}

// BenchmarkConvergence reports the Geweke diagnostic and effective
// sample size of the full-scale fit's log-likelihood trace.
func BenchmarkConvergence(b *testing.B) {
	out := fixture(b)
	var z, ess float64
	for i := 0; i < b.N; i++ {
		trace := out.Model.LogLik[len(out.Model.LogLik)/3:]
		var err error
		z, err = core.GewekeZ(trace, 0.2, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		ess = core.ESS(trace)
	}
	b.ReportMetric(z, "gewekeZ")
	b.ReportMetric(ess, "ESS")
}

// BenchmarkParallelSweep measures the AD-LDA-style parallel sweep
// against the sequential kernel. The dataset is the full-scale corpus
// replicated 4× (≈11k recipes): at the paper's own size one sweep is
// ~4 ms and goroutine fan-out overhead hides the speedup.
func BenchmarkParallelSweep(b *testing.B) {
	out := fixture(b)
	data := &core.Data{V: out.Dict.Len()}
	for rep := 0; rep < 4; rep++ {
		for _, d := range out.Docs {
			data.Words = append(data.Words, d.TermIDs)
			data.Gel = append(data.Gel, d.Gel)
			data.Emu = append(data.Emu, d.Emulsion)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := pipeline.DefaultOptions().Model
			cfg.Workers = workers
			cfg.Iterations = b.N
			s, err := core.NewSampler(data, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if err := s.Run(nil); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkTextureRules mines the future-work association rules
// (recipe information + cooking steps ⇒ texture category) over the
// full corpus. Metrics: rule count and the confidence of the
// gelatin-high ⇒ hard rule, the miner's rediscovery of Table I's
// dose-response.
func BenchmarkTextureRules(b *testing.B) {
	recipes, err := corpus.Generate(corpus.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	dict := lexicon.Default()
	var mined []rules.Rule
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mined, err = rules.MineTexture(recipes, dict, rules.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(mined)), "rules")
	for _, r := range mined {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "gel:gelatin-high" && r.Consequent == "reads:hard" {
			b.ReportMetric(r.Confidence, "gelatinHighHardConf")
			break
		}
	}
}

// BenchmarkSensoryPanel reproduces the sensory-instrumental
// correlation experiment (refs [13],[14]) with the simulated panel on
// the Table I samples.
func BenchmarkSensoryPanel(b *testing.B) {
	dict := lexicon.Default()
	samples := make([]rheology.Attributes, len(rheology.TableI))
	for i, m := range rheology.TableI {
		samples[i] = m.Attr
	}
	panel := sensory.DefaultPanel()
	var hardRho, agreement float64
	for i := 0; i < b.N; i++ {
		evals, err := panel.Evaluate(dict, samples)
		if err != nil {
			b.Fatal(err)
		}
		hardRho = sensory.Correlate(evals)[0].Spearman
		agreement = sensory.WordAgreement(dict, evals, 1.5)
	}
	b.ReportMetric(hardRho, "hardSpearman")
	b.ReportMetric(agreement, "wordAgreement")
}

// BenchmarkRuleGeneralization mines texture rules on one corpus seed
// and scores them on a fresh seed — held-out precision over training
// confidence.
func BenchmarkRuleGeneralization(b *testing.B) {
	dict := lexicon.Default()
	trainRecipes, err := corpus.Generate(corpus.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	testCfg := corpus.DefaultConfig()
	testCfg.Seed = 1234
	testRecipes, err := corpus.Generate(testCfg)
	if err != nil {
		b.Fatal(err)
	}
	var testTxs []rules.Transaction
	for _, r := range testRecipes {
		testTxs = append(testTxs, rules.Featurize(r, dict))
	}
	var gen float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mined, err := rules.MineTexture(trainRecipes, dict, rules.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		scores, err := rules.Evaluate(mined, testTxs)
		if err != nil {
			b.Fatal(err)
		}
		gen = rules.MeanGeneralization(scores, 5)
	}
	b.ReportMetric(gen, "generalization")
}

// BenchmarkTopicStability fits the model with three seeds and reports
// the optimal-matching (Hungarian) topic agreement — how reproducible
// Table II(a)'s topics are across chains.
func BenchmarkTopicStability(b *testing.B) {
	opts := ablationOptions()
	var mean, minimum float64
	for i := 0; i < b.N; i++ {
		var phis [][][]float64
		for seed := uint64(1); seed <= 3; seed++ {
			o := opts
			o.Model.Seed = seed
			out, err := pipeline.Run(o)
			if err != nil {
				b.Fatal(err)
			}
			phis = append(phis, out.Model.Phi)
		}
		mean, minimum = 0, 1
		pairs := 0
		for x := 0; x < len(phis); x++ {
			for y := x + 1; y < len(phis); y++ {
				st, err := eval.TopicStability(phis[x], phis[y])
				if err != nil {
					b.Fatal(err)
				}
				mean += st.Mean
				if st.Minimum < minimum {
					minimum = st.Minimum
				}
				pairs++
			}
		}
		mean /= float64(pairs)
	}
	b.ReportMetric(mean, "meanMatchedCos")
	b.ReportMetric(minimum, "worstMatchedCos")
}

// BenchmarkAblationLearnAlpha lets Minka's fixed point learn α on the
// real corpus, reporting the learned value — the data-driven check of
// the pipeline's hand-set α=0.1.
func BenchmarkAblationLearnAlpha(b *testing.B) {
	var learned, nmi float64
	for i := 0; i < b.N; i++ {
		opts := ablationOptions()
		opts.Model.LearnAlpha = true
		opts.Model.Alpha = 0.5 // start from the naive default
		out, err := pipeline.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		learned = out.Model.Alpha
		nmi = recovery(b, out).NMI()
	}
	b.ReportMetric(learned, "learnedAlpha")
	b.ReportMetric(nmi, "NMI")
}

// BenchmarkRobustnessTermNoise injects uniformly random texture terms
// into the corpus and measures recovery degradation.
func BenchmarkRobustnessTermNoise(b *testing.B) {
	for _, noise := range []float64{0, 0.3, 0.6} {
		b.Run(fmt.Sprintf("noise=%.1f", noise), func(b *testing.B) {
			var nmi float64
			for i := 0; i < b.N; i++ {
				opts := ablationOptions()
				opts.Corpus.TermNoise = noise
				out, err := pipeline.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				nmi = recovery(b, out).NMI()
			}
			b.ReportMetric(nmi, "NMI")
		})
	}
}

// BenchmarkPipelineScale sweeps the corpus scale: wall-clock and
// recovery at 0.25×, 0.5×, 1× and 2× the paper's dataset.
func BenchmarkPipelineScale(b *testing.B) {
	for _, scale := range []float64{0.25, 0.5, 1, 2} {
		b.Run(fmt.Sprintf("scale=%.2f", scale), func(b *testing.B) {
			var nmi float64
			var docs int
			for i := 0; i < b.N; i++ {
				opts := pipeline.DefaultOptions()
				opts.Corpus.Scale = scale
				out, err := pipeline.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				nmi = recovery(b, out).NMI()
				docs = len(out.Docs)
			}
			b.ReportMetric(nmi, "NMI")
			b.ReportMetric(float64(docs), "docs")
		})
	}
}

// BenchmarkBundleSave measures durable-bundle serialization of the
// full-scale fitted pipeline — the cost of producing every deploy
// artifact and the steady-state price of persistence. bundle_bytes is
// the on-disk envelope size (container header + gzip payload).
func BenchmarkBundleSave(b *testing.B) {
	out := fixture(b)
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := out.SaveBundle(&buf); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
	}
	b.ReportMetric(float64(size), "bundle_bytes")
}

// supervisionBenchData draws a small well-separated three-topic corpus
// from the model's generative process, sized so a full fit runs in
// milliseconds — the point is the supervision delta, not sampler
// throughput (BenchmarkGibbsSweep covers that).
func supervisionBenchData() (*core.Data, core.Config) {
	rng := stats.NewRNG(41, 99)
	phi := [][]float64{
		{.30, .30, .30, .03, .03, .02, .01, .005, .005},
		{.01, .005, .005, .30, .30, .30, .03, .03, .02},
		{.03, .03, .02, .01, .005, .005, .30, .30, .30},
	}
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	emuMeans := [][]float64{{2, 8}, {8, 2}, {5, 5}}
	data := &core.Data{V: 9}
	for d := 0; d < 120; d++ {
		k := d % 3
		words := make([]int, 2+rng.IntN(4))
		for i := range words {
			words[i] = rng.Categorical(phi[k])
		}
		data.Words = append(data.Words, words)
		data.Gel = append(data.Gel, []float64{rng.Normal(gelMeans[k][0], 0.25), rng.Normal(gelMeans[k][1], 0.25)})
		data.Emu = append(data.Emu, []float64{rng.Normal(emuMeans[k][0], 0.3), rng.Normal(emuMeans[k][1], 0.3)})
	}
	cfg := core.DefaultConfig()
	cfg.K = 3
	cfg.Iterations = 30
	cfg.BurnIn = 15
	cfg.Seed = 9
	return data, cfg
}

// BenchmarkUnsupervisedFit is the control for BenchmarkSupervisedFit:
// the same fit with no health policy and no supervisor.
func BenchmarkUnsupervisedFit(b *testing.B) {
	data, cfg := supervisionBenchData()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Fit(data, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupervisedFit measures the same fit under the self-healing
// supervisor with the always-on health classifier armed (NaN, collapse
// and stall checks evaluated every sweep) on a chain that never
// diverges — the steady-state overhead a healthy fit pays for the
// safety net. Compare ns/op against BenchmarkUnsupervisedFit: the
// delta is the supervision tax and must stay within a few percent.
func BenchmarkSupervisedFit(b *testing.B) {
	data, cfg := supervisionBenchData()
	cfg.Health = core.HealthPolicy{
		MaxLLDrop:    1e9, // armed but unreachable on a healthy chain
		MinTopics:    1,
		SweepTimeout: time.Hour,
	}
	sup := &resilience.Supervisor{MaxRestarts: 3}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, incidents, err := sup.RunFit(ctx, data, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(incidents) != 0 {
			b.Fatalf("healthy chain produced incidents: %+v", incidents)
		}
	}
}

// BenchmarkShardedFit measures the corpus-scale path end to end:
// streaming ingestion of a generated JSONL corpus (never materialized)
// plus a 4-shard fit merged from per-shard sufficient statistics.
// recipes/s counts streamed records; heap_inuse_mb is the post-merge
// resident heap — with streaming ingestion it tracks the kept
// documents, not the corpus bytes, so it stays flat as -corpus-size
// grows (the peak-RSS claim EXPERIMENTS.md spot-checks at 1M records).
func BenchmarkShardedFit(b *testing.B) {
	opts := pipeline.DefaultOptions()
	opts.UseW2VFilter = false
	opts.Model.K = 3
	opts.Model.Iterations = 60
	opts.Model.BurnIn = 30
	opts.Model.Seed = 9
	opts.ShardCount = 4
	const n = 400
	src := pipeline.GeneratedSource(opts.Corpus, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := pipeline.RunStream(src, opts)
		if err != nil {
			b.Fatal(err)
		}
		if out.Shards == nil || out.Shards.Fitted != 4 {
			b.Fatalf("shard summary = %+v, want 4 fitted", out.Shards)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(n*b.N)/s, "recipes/s")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.HeapInuse)/(1<<20), "heap_inuse_mb")
}

// BenchmarkBundleLoad measures bundle deserialization with full
// integrity verification (SHA-256 + gzip CRC + schema checks) — the
// startup cost of a -bundle boot and of every live reload.
func BenchmarkBundleLoad(b *testing.B) {
	out := fixture(b)
	var buf bytes.Buffer
	if err := out.SaveBundle(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.LoadBundle(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(data)), "bundle_bytes")
}
