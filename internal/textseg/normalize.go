package textseg

import "strings"

// Normalize canonicalizes recipe text before segmentation:
//
//   - full-width ASCII (letters, digits, punctuation) folds to half-width
//   - katakana folds to hiragana, so クリーム and くりーむ match the same
//     dictionary entry
//   - ASCII letters are lower-cased
//   - half-width katakana folds to (full-width, then hiragana) kana
//
// The folding is deliberately lossy: the tokenizer keeps the original
// surface form alongside the normalized form, so display is unaffected.
func Normalize(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	rs := []rune(s)
	for i := 0; i < len(rs); i++ {
		r := rs[i]
		switch {
		case r >= 0xFF01 && r <= 0xFF5E: // full-width ASCII block
			r = r - 0xFF01 + '!'
		case r >= 0x30A1 && r <= 0x30F6: // katakana → hiragana
			r = r - 0x30A1 + 0x3041
		case r == 0x30FD: // katakana iteration marks → hiragana ones
			r = 0x309D
		case r == 0x30FE:
			r = 0x309E
		case r >= 0xFF66 && r <= 0xFF9D: // half-width katakana
			r = halfWidthKana(rs, &i)
		}
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

// halfWidthKana maps a half-width katakana rune (possibly followed by a
// voicing mark) to its hiragana equivalent, advancing *i past the mark.
func halfWidthKana(rs []rune, i *int) rune {
	base, ok := halfToHiragana[rs[*i]]
	if !ok {
		return rs[*i]
	}
	if *i+1 < len(rs) {
		switch rs[*i+1] {
		case 0xFF9E: // dakuten
			if v, ok := voiced[base]; ok {
				*i++
				return v
			}
		case 0xFF9F: // handakuten
			if v, ok := semiVoiced[base]; ok {
				*i++
				return v
			}
		}
	}
	return base
}

var halfToHiragana = map[rune]rune{
	0xFF66: 'を', 0xFF67: 'ぁ', 0xFF68: 'ぃ', 0xFF69: 'ぅ', 0xFF6A: 'ぇ', 0xFF6B: 'ぉ',
	0xFF6C: 'ゃ', 0xFF6D: 'ゅ', 0xFF6E: 'ょ', 0xFF6F: 'っ', 0xFF70: 'ー',
	0xFF71: 'あ', 0xFF72: 'い', 0xFF73: 'う', 0xFF74: 'え', 0xFF75: 'お',
	0xFF76: 'か', 0xFF77: 'き', 0xFF78: 'く', 0xFF79: 'け', 0xFF7A: 'こ',
	0xFF7B: 'さ', 0xFF7C: 'し', 0xFF7D: 'す', 0xFF7E: 'せ', 0xFF7F: 'そ',
	0xFF80: 'た', 0xFF81: 'ち', 0xFF82: 'つ', 0xFF83: 'て', 0xFF84: 'と',
	0xFF85: 'な', 0xFF86: 'に', 0xFF87: 'ぬ', 0xFF88: 'ね', 0xFF89: 'の',
	0xFF8A: 'は', 0xFF8B: 'ひ', 0xFF8C: 'ふ', 0xFF8D: 'へ', 0xFF8E: 'ほ',
	0xFF8F: 'ま', 0xFF90: 'み', 0xFF91: 'む', 0xFF92: 'め', 0xFF93: 'も',
	0xFF94: 'や', 0xFF95: 'ゆ', 0xFF96: 'よ',
	0xFF97: 'ら', 0xFF98: 'り', 0xFF99: 'る', 0xFF9A: 'れ', 0xFF9B: 'ろ',
	0xFF9C: 'わ', 0xFF9D: 'ん',
}

var voiced = map[rune]rune{
	'か': 'が', 'き': 'ぎ', 'く': 'ぐ', 'け': 'げ', 'こ': 'ご',
	'さ': 'ざ', 'し': 'じ', 'す': 'ず', 'せ': 'ぜ', 'そ': 'ぞ',
	'た': 'だ', 'ち': 'ぢ', 'つ': 'づ', 'て': 'で', 'と': 'ど',
	'は': 'ば', 'ひ': 'び', 'ふ': 'ぶ', 'へ': 'べ', 'ほ': 'ぼ',
	'う': 'ゔ',
}

var semiVoiced = map[rune]rune{
	'は': 'ぱ', 'ひ': 'ぴ', 'ふ': 'ぷ', 'へ': 'ぺ', 'ほ': 'ぽ',
}
