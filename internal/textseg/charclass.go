// Package textseg segments unsegmented Japanese recipe text into
// tokens. Japanese is written without spaces, so the tokenizer combines
// dictionary-driven longest-match (for known texture terms and
// ingredient names) with character-class chunking for everything else —
// the standard fallback used by morphological analyzers when a word is
// out of vocabulary.
package textseg

// Class is the writing-system class of a rune.
type Class int

// Character classes, ordered roughly by how they appear in recipe text.
const (
	ClassOther    Class = iota
	ClassSpace          // ASCII and ideographic spaces
	ClassPunct          // ASCII punctuation plus Japanese brackets and marks
	ClassDigit          // ASCII digits (after normalization)
	ClassLatin          // ASCII letters
	ClassHiragana       // ぁ..ゖ plus prolonged sound mark
	ClassKatakana       // ァ..ヺ plus middle dot
	ClassKanji          // CJK unified ideographs
)

// String names the class for diagnostics.
func (c Class) String() string {
	switch c {
	case ClassSpace:
		return "space"
	case ClassPunct:
		return "punct"
	case ClassDigit:
		return "digit"
	case ClassLatin:
		return "latin"
	case ClassHiragana:
		return "hiragana"
	case ClassKatakana:
		return "katakana"
	case ClassKanji:
		return "kanji"
	default:
		return "other"
	}
}

// ClassOf classifies a rune. Input is assumed to be already normalized
// (see Normalize), so full-width ASCII has been folded to half-width.
func ClassOf(r rune) Class {
	switch {
	case r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '　':
		return ClassSpace
	case r >= '0' && r <= '9':
		return ClassDigit
	case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		return ClassLatin
	case r >= 0x3041 && r <= 0x3096 || r == 'ー' || r == 0x309D || r == 0x309E:
		// ー (the prolonged sound mark) glues to the preceding kana, so it
		// is treated as hiragana after katakana folding.
		return ClassHiragana
	case r >= 0x30A1 && r <= 0x30FA || r == 0x30FD || r == 0x30FE:
		return ClassKatakana
	case r >= 0x4E00 && r <= 0x9FFF || r >= 0x3400 && r <= 0x4DBF || r == '々':
		return ClassKanji
	case r >= '!' && r <= '/' || r >= ':' && r <= '@' || r >= '[' && r <= '`' ||
		r >= '{' && r <= '~' ||
		r == '、' || r == '。' || r == '「' || r == '」' || r == '『' || r == '』' ||
		r == '（' || r == '）' || r == '・' || r == '！' || r == '？' || r == '…' ||
		r == '〜' || r == '♪' || r == '☆' || r == '★' || r == '♡' || r == '♥':
		return ClassPunct
	default:
		return ClassOther
	}
}
