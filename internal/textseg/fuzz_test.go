package textseg

import "testing"

// FuzzTokenize checks the tokenizer's core invariants on arbitrary
// input: no panics, idempotent normalization, and no non-space rune of
// the normalized input lost or duplicated.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"とてもぷるぷるなゼリーです。",
		"プルプル！ＡＢＣ123",
		"ｶﾞｷﾞｸﾞけ゜",
		"寒天を煮とかして、常温でかためる",
		"", " 　\n", "ーーー", "a1あアー漢!？",
	} {
		f.Add(seed)
	}
	tr := NewTrie()
	for i, w := range []string{"ぷるぷる", "かたい", "ぜりー", "かんてん"} {
		tr.Insert(w, i)
	}
	tok := NewTokenizer(tr)
	tok.KeepPunct = true
	f.Fuzz(func(t *testing.T, s string) {
		norm := Normalize(s)
		if Normalize(norm) != norm {
			t.Fatalf("Normalize not idempotent on %q", s)
		}
		toks := tok.Tokenize(s)
		kept := 0
		for _, r := range norm {
			if ClassOf(r) != ClassSpace {
				kept++
			}
		}
		total := 0
		for _, tk := range toks {
			if tk.Surface == "" {
				t.Fatalf("empty token for %q", s)
			}
			total += len([]rune(tk.Surface))
		}
		if total != kept {
			t.Fatalf("Tokenize(%q): %d runes in tokens, %d non-space in input", s, total, kept)
		}
	})
}
