package textseg

// Trie is a rune-keyed prefix tree used for longest-match dictionary
// lookup during segmentation. IDs are caller-assigned; inserting the
// same word twice keeps the latest ID.
type Trie struct {
	root trieNode
	size int
}

type trieNode struct {
	children map[rune]*trieNode
	id       int
	terminal bool
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{} }

// Len returns the number of distinct words stored.
func (t *Trie) Len() int { return t.size }

// Insert stores word with the given ID. Word is inserted as-is: callers
// should Normalize first so lookups and insertions share a canonical
// form. Empty words are ignored.
func (t *Trie) Insert(word string, id int) {
	if word == "" {
		return
	}
	n := &t.root
	for _, r := range word {
		if n.children == nil {
			n.children = make(map[rune]*trieNode)
		}
		child, ok := n.children[r]
		if !ok {
			child = &trieNode{}
			n.children[r] = child
		}
		n = child
	}
	if !n.terminal {
		t.size++
	}
	n.terminal = true
	n.id = id
}

// Contains reports whether word is stored.
func (t *Trie) Contains(word string) bool {
	_, ok := t.Lookup(word)
	return ok
}

// Lookup returns the ID of word if stored.
func (t *Trie) Lookup(word string) (id int, ok bool) {
	n := &t.root
	for _, r := range word {
		if n.children == nil {
			return 0, false
		}
		n = n.children[r]
		if n == nil {
			return 0, false
		}
	}
	return n.id, n.terminal
}

// LongestMatch finds the longest dictionary word starting at rs[start].
// It returns the matched ID and length in runes, or ok=false when no
// dictionary word starts there.
func (t *Trie) LongestMatch(rs []rune, start int) (id, length int, ok bool) {
	n := &t.root
	for i := start; i < len(rs); i++ {
		if n.children == nil {
			break
		}
		n = n.children[rs[i]]
		if n == nil {
			break
		}
		if n.terminal {
			id, length, ok = n.id, i-start+1, true
		}
	}
	return id, length, ok
}
