package textseg

// Token is one segment of input text.
type Token struct {
	Surface string // normalized surface form
	Class   Class  // writing-system class of the first rune
	DictID  int    // dictionary ID when InDict
	InDict  bool   // true when the token matched a dictionary entry
}

// Tokenizer segments normalized text by dictionary longest-match with
// character-class chunking as fallback.
type Tokenizer struct {
	dict *Trie
	// KeepPunct controls whether punctuation tokens are emitted; spaces
	// are never emitted.
	KeepPunct bool
}

// NewTokenizer returns a tokenizer over the given dictionary trie.
// A nil dict is treated as an empty dictionary.
func NewTokenizer(dict *Trie) *Tokenizer {
	if dict == nil {
		dict = NewTrie()
	}
	return &Tokenizer{dict: dict}
}

// Tokenize normalizes and segments text.
//
// At each position the longest dictionary match wins. Otherwise a
// maximal run of the same character class is emitted as an unknown
// token — except that a dictionary match is allowed to interrupt the
// run, so "とてもぷるぷるです" yields とても / ぷるぷる / です even
// though all three are hiragana.
func (t *Tokenizer) Tokenize(text string) []Token {
	rs := []rune(Normalize(text))
	var out []Token
	i := 0
	for i < len(rs) {
		c := ClassOf(rs[i])
		if c == ClassSpace {
			i++
			continue
		}
		if c == ClassPunct {
			if t.KeepPunct {
				out = append(out, Token{Surface: string(rs[i]), Class: c})
			}
			i++
			continue
		}
		if id, n, ok := t.dict.LongestMatch(rs, i); ok {
			out = append(out, Token{Surface: string(rs[i : i+n]), Class: c, DictID: id, InDict: true})
			i += n
			continue
		}
		// Unknown run of the same class, stopping early if a dictionary
		// word begins mid-run.
		j := i + 1
		for j < len(rs) && ClassOf(rs[j]) == c {
			if _, _, ok := t.dict.LongestMatch(rs, j); ok {
				break
			}
			j++
		}
		out = append(out, Token{Surface: string(rs[i:j]), Class: c})
		i = j
	}
	return out
}

// Dict exposes the tokenizer's dictionary trie. The trie is shared,
// not copied; callers must not Insert into it while the tokenizer is
// in use.
func (t *Tokenizer) Dict() *Trie {
	return t.dict
}

// DictIDs returns the dictionary IDs matched in text, in order of
// appearance. It walks the same longest-match segmentation as
// Tokenize but materializes no surface strings and no Token records —
// this is the extraction kernel the annotation hot path runs per
// recipe.
func (t *Tokenizer) DictIDs(text string) []int {
	rs := []rune(Normalize(text))
	var out []int
	i := 0
	for i < len(rs) {
		c := ClassOf(rs[i])
		if c == ClassSpace || c == ClassPunct {
			i++
			continue
		}
		if id, n, ok := t.dict.LongestMatch(rs, i); ok {
			out = append(out, id)
			i += n
			continue
		}
		// Skip the unknown run, stopping where a dictionary word begins.
		i++
		for i < len(rs) && ClassOf(rs[i]) == c {
			if _, _, ok := t.dict.LongestMatch(rs, i); ok {
				break
			}
			i++
		}
	}
	return out
}

// DictTokens returns only the dictionary-matched tokens of text, in
// order. This is the operation the mining pipeline uses to extract
// texture-term sequences from recipe descriptions.
func (t *Tokenizer) DictTokens(text string) []Token {
	all := t.Tokenize(text)
	out := all[:0:0]
	for _, tok := range all {
		if tok.InDict {
			out = append(out, tok)
		}
	}
	return out
}

// Surfaces projects tokens to their surface strings.
func Surfaces(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Surface
	}
	return out
}
