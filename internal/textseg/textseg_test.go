package textseg

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeFullWidthASCII(t *testing.T) {
	if got := Normalize("ＡＢＣ１２３！"); got != "abc123!" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestNormalizeKatakanaFolds(t *testing.T) {
	if got := Normalize("プルプル"); got != "ぷるぷる" {
		t.Errorf("Normalize = %q", got)
	}
	// Prolonged sound mark is preserved.
	if got := Normalize("クリーム"); got != "くりーむ" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestNormalizeHalfWidthKatakana(t *testing.T) {
	// ﾌﾟﾙﾌﾟﾙ with handakuten marks.
	in := "ﾌﾟﾙﾌﾟﾙ"
	if got := Normalize(in); got != "ぷるぷる" {
		t.Errorf("Normalize(half-width) = %q", got)
	}
	// Dakuten: ｶﾞ → が.
	if got := Normalize("ｶﾞ"); got != "が" {
		t.Errorf("Normalize(dakuten) = %q", got)
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	for _, s := range []string{"プルプル！ＡＢＣ", "ｶﾞｷﾞｸﾞ", "ゼリーは固い"} {
		n := Normalize(s)
		if Normalize(n) != n {
			t.Errorf("not idempotent on %q: %q vs %q", s, n, Normalize(n))
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		r    rune
		want Class
	}{
		{'あ', ClassHiragana}, {'ー', ClassHiragana}, {'ア', ClassKatakana},
		{'固', ClassKanji}, {'々', ClassKanji}, {'a', ClassLatin}, {'7', ClassDigit},
		{' ', ClassSpace}, {'　', ClassSpace}, {'、', ClassPunct}, {'!', ClassPunct},
		{'♪', ClassPunct},
	}
	for _, c := range cases {
		if got := ClassOf(c.r); got != c.want {
			t.Errorf("ClassOf(%q) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestTrieBasics(t *testing.T) {
	tr := NewTrie()
	tr.Insert("ぷるぷる", 1)
	tr.Insert("ぷる", 2)
	tr.Insert("かたい", 3)
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if id, ok := tr.Lookup("ぷる"); !ok || id != 2 {
		t.Errorf("Lookup(ぷる) = %d, %v", id, ok)
	}
	if _, ok := tr.Lookup("ぷるぷ"); ok {
		t.Error("prefix should not match")
	}
	if !tr.Contains("かたい") || tr.Contains("やわらかい") {
		t.Error("Contains wrong")
	}
	// Re-insert keeps count and updates ID.
	tr.Insert("ぷる", 9)
	if tr.Len() != 3 {
		t.Errorf("Len after reinsert = %d", tr.Len())
	}
	if id, _ := tr.Lookup("ぷる"); id != 9 {
		t.Error("reinsert should update id")
	}
}

func TestTrieLongestMatch(t *testing.T) {
	tr := NewTrie()
	tr.Insert("ぷる", 1)
	tr.Insert("ぷるぷる", 2)
	rs := []rune("ぷるぷるです")
	id, n, ok := tr.LongestMatch(rs, 0)
	if !ok || id != 2 || n != 4 {
		t.Errorf("LongestMatch = (%d,%d,%v), want (2,4,true)", id, n, ok)
	}
	// At position 2 only the short word matches.
	id, n, ok = tr.LongestMatch(rs, 2)
	if !ok || id != 1 || n != 2 {
		t.Errorf("LongestMatch@2 = (%d,%d,%v)", id, n, ok)
	}
	if _, _, ok := tr.LongestMatch(rs, 4); ok {
		t.Error("no match expected at で")
	}
}

func newTestTokenizer() *Tokenizer {
	tr := NewTrie()
	for i, w := range []string{"ぷるぷる", "ふるふる", "かたい", "ゼリー", "ないしょ"} {
		tr.Insert(Normalize(w), i+1)
	}
	return NewTokenizer(tr)
}

func TestTokenizeDictionaryInterruptsRun(t *testing.T) {
	tok := newTestTokenizer()
	got := Surfaces(tok.Tokenize("とてもぷるぷるです"))
	want := []string{"とても", "ぷるぷる", "です"}
	if strings.Join(got, "/") != strings.Join(want, "/") {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeClassBoundaries(t *testing.T) {
	tok := newTestTokenizer()
	got := tok.Tokenize("ゼリー100g、とword")
	surfaces := Surfaces(got)
	want := []string{"ぜりー", "100", "g", "と", "word"}
	if strings.Join(surfaces, "/") != strings.Join(want, "/") {
		t.Errorf("Tokenize = %v, want %v", surfaces, want)
	}
	if !got[0].InDict {
		t.Error("ゼリー (normalized) should be a dictionary hit")
	}
	if got[1].Class != ClassDigit || got[2].Class != ClassLatin {
		t.Error("classes wrong")
	}
}

func TestTokenizePunctHandling(t *testing.T) {
	tok := newTestTokenizer()
	if got := len(tok.Tokenize("、、、")); got != 0 {
		t.Errorf("punct should be dropped by default, got %d tokens", got)
	}
	tok.KeepPunct = true
	if got := len(tok.Tokenize("、、、")); got != 3 {
		t.Errorf("KeepPunct should emit punct, got %d", got)
	}
}

func TestDictTokens(t *testing.T) {
	tok := newTestTokenizer()
	hits := tok.DictTokens("このゼリーはぷるぷるでかたいです")
	want := []string{"ぜりー", "ぷるぷる", "かたい"}
	if strings.Join(Surfaces(hits), "/") != strings.Join(want, "/") {
		t.Errorf("DictTokens = %v, want %v", Surfaces(hits), want)
	}
	for _, h := range hits {
		if !h.InDict {
			t.Error("DictTokens returned non-dictionary token")
		}
	}
}

func TestTokenizeKatakanaMatchesHiraganaEntry(t *testing.T) {
	tok := newTestTokenizer()
	hits := tok.DictTokens("プルプルのゼリー")
	if len(hits) != 2 || hits[0].DictID != 1 {
		t.Errorf("katakana surface should fold to dictionary form; hits=%v", hits)
	}
}

func TestTokenizeEmptyAndSpaces(t *testing.T) {
	tok := newTestTokenizer()
	if got := tok.Tokenize(""); len(got) != 0 {
		t.Error("empty input should yield no tokens")
	}
	if got := tok.Tokenize("  　\n"); len(got) != 0 {
		t.Error("whitespace-only input should yield no tokens")
	}
}

func TestTokenizeNeverLosesNonSpaceRunes(t *testing.T) {
	tok := newTestTokenizer()
	tok.KeepPunct = true
	f := func(s string) bool {
		norm := []rune(Normalize(s))
		var kept int
		for _, r := range norm {
			if ClassOf(r) != ClassSpace {
				kept++
			}
		}
		total := 0
		for _, tk := range tok.Tokenize(s) {
			total += len([]rune(tk.Surface))
		}
		return total == kept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNilDictTokenizer(t *testing.T) {
	tok := NewTokenizer(nil)
	got := tok.Tokenize("ぷるぷる123")
	if len(got) != 2 {
		t.Errorf("got %v", got)
	}
}

// Property: the trie agrees with a map-based reference on lookup and
// longest-match for random word sets over a small alphabet.
func TestTrieMatchesReferenceProperty(t *testing.T) {
	alphabet := []rune("あいう")
	randWord := func(seed *uint64) string {
		*seed = *seed*6364136223846793005 + 1442695040888963407
		n := 1 + int(*seed>>33)%4
		rs := make([]rune, n)
		for i := range rs {
			*seed = *seed*6364136223846793005 + 1442695040888963407
			rs[i] = alphabet[int(*seed>>33)%len(alphabet)]
		}
		return string(rs)
	}
	f := func(seed uint64) bool {
		tr := NewTrie()
		ref := map[string]int{}
		for i := 0; i < 12; i++ {
			w := randWord(&seed)
			tr.Insert(w, i)
			ref[w] = i
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Lookup agreement.
		for w, id := range ref {
			got, ok := tr.Lookup(w)
			if !ok || got != id {
				return false
			}
		}
		// Longest-match agreement on a random text.
		text := []rune(randWord(&seed) + randWord(&seed) + randWord(&seed))
		for start := 0; start < len(text); start++ {
			wantID, wantLen, wantOK := 0, 0, false
			for end := start + 1; end <= len(text); end++ {
				if id, ok := ref[string(text[start:end])]; ok {
					wantID, wantLen, wantOK = id, end-start, true
				}
			}
			gotID, gotLen, gotOK := tr.LongestMatch(text, start)
			if gotOK != wantOK || (wantOK && (gotID != wantID || gotLen != wantLen)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDictIDsMatchesDictTokens: the allocation-lean extraction path
// must segment exactly like the full tokenizer.
func TestDictIDsMatchesDictTokens(t *testing.T) {
	tr := NewTrie()
	tr.Insert("ぷるぷる", 1)
	tr.Insert("ぷる", 2)
	tr.Insert("かたい", 3)
	tr.Insert("ねっとり", 4)
	tok := NewTokenizer(tr)
	for _, text := range []string{
		"",
		"このゼリーはぷるぷるでねっとりしていて、かたいです。",
		"ぷるぷるぷるぷる",
		"ぷるんぷるん",
		"とても ぷるぷる です！ＰＵＲＵ",
		"ｶﾀｲかたいカタイ",
		"abcかたい123ねっとりxyz",
		"。。。、、、",
	} {
		want := []int{}
		for _, tk := range tok.DictTokens(text) {
			want = append(want, tk.DictID)
		}
		got := tok.DictIDs(text)
		if len(got) != len(want) {
			t.Fatalf("%q: DictIDs %v, DictTokens IDs %v", text, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%q: DictIDs %v, DictTokens IDs %v", text, got, want)
			}
		}
	}
}
