package report

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/linkage"
	"repro/internal/pipeline"
	"repro/internal/recipe"
	"repro/internal/rheology"
)

var (
	fixtureOnce sync.Once
	fixtureOut  *pipeline.Output
	fixtureErr  error
)

// fixture runs the full pipeline once (moderate scale) and shares the
// output across the package's tests.
func fixture(t *testing.T) *pipeline.Output {
	t.Helper()
	fixtureOnce.Do(func() {
		// Full paper scale: the firm-gelatin population has only 38
		// recipes even at scale 1, and the case study needs it recovered
		// as its own topic.
		opts := pipeline.DefaultOptions()
		fixtureOut, fixtureErr = pipeline.Run(opts)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureOut
}

func TestRenderTableI(t *testing.T) {
	s := RenderTableI()
	if !strings.Contains(s, "Table I") || len(strings.Split(s, "\n")) < 15 {
		t.Errorf("Table I render too short:\n%s", s)
	}
	// Row 5's big adhesiveness must appear.
	if !strings.Contains(s, "12.6") {
		t.Error("row 5 adhesiveness missing")
	}
}

// The central shape criterion of Table II(a): Table I's soft gelatin
// rows (1,2), hard gelatin rows (3,4), kanten rows (6-9) and agar rows
// (10-13) map to topics whose term annotations agree with the measured
// attributes.
func TestTableIIaShape(t *testing.T) {
	out := fixture(t)
	rows, assignments, err := BuildTableIIa(out, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != out.Model.K {
		t.Fatalf("%d rows", len(rows))
	}
	byID := make(map[string]linkage.Assignment)
	for _, a := range assignments {
		byID[a.Measurement.ID] = a
	}
	dict := out.Dict

	topicHardness := func(k int) float64 {
		return linkage.TopicAxisScore(out.Model, dict, k, lexicon.Hardness)
	}
	// Soft gelatin rows must land in softer-term topics than hard rows.
	softTopic := byID["1"].Topic
	hardTopic := byID["4"].Topic
	if softTopic == hardTopic {
		t.Errorf("rows 1 and 4 share topic %d; gel bands not separated", softTopic)
	}
	if !(topicHardness(softTopic) < topicHardness(hardTopic)) {
		t.Errorf("hardness scores: soft topic %.3f, hard topic %.3f", topicHardness(softTopic), topicHardness(hardTopic))
	}
	// Kanten rows map to kanten-dominant topics.
	for _, id := range []string{"6", "7", "8", "9"} {
		k := byID[id].Topic
		gels := linkage.TopicMeanConcentrations(out.Model, k, 0.0005)
		kc := gels[int(recipe.Kanten)]
		gc := gels[int(recipe.Gelatin)]
		ac := gels[int(recipe.Agar)]
		if kc < gc || kc < ac {
			t.Errorf("row %s → topic %d not kanten-dominant: %v", id, k, gels)
		}
	}
	// Agar rows map to agar-dominant topics.
	agarDominant := 0
	for _, id := range []string{"10", "11", "12", "13"} {
		k := byID[id].Topic
		gels := linkage.TopicMeanConcentrations(out.Model, k, 0.0005)
		if gels[int(recipe.Agar)] > gels[int(recipe.Kanten)] {
			agarDominant++
		}
	}
	if agarDominant < 3 {
		t.Errorf("only %d/4 agar rows landed in agar-dominant topics", agarDominant)
	}
}

func TestTableIIaRender(t *testing.T) {
	out := fixture(t)
	rows, _, err := BuildTableIIa(out, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := RenderTableIIa(out, rows)
	if !strings.Contains(s, "topic") || !strings.Contains(s, "#recipes=") {
		t.Errorf("render:\n%s", s)
	}
	// Recipe counts must sum to the dataset size.
	total := 0
	for _, r := range rows {
		total += r.Recipes
	}
	if total != len(out.Docs) {
		t.Errorf("topic counts sum to %d, docs %d", total, len(out.Docs))
	}
}

func TestValidationPositive(t *testing.T) {
	out := fixture(t)
	_, assignments, err := BuildTableIIa(out, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	val := linkage.Validate(out.Model, out.Dict, assignments)
	if r := val.Spearman[lexicon.Hardness]; r < 0.4 {
		t.Errorf("hardness Spearman = %.3f, want ≥ 0.4 (Texture Profile consistency)", r)
	}
	if s := RenderValidation(val); !strings.Contains(s, "hardness") {
		t.Error("render missing axes")
	}
}

// The case study of Section V.B: both dishes → the hard-gelatin topic
// (same as Table I data 3); near-dish recipes skew hard for both and
// elastic only for Bavarois.
func TestCaseStudyShape(t *testing.T) {
	out := fixture(t)
	cs, err := BuildCaseStudy(out, linkage.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Both dishes share one topic (they share the 2.5% gelatin dose).
	if cs.Assign[0].Topic != cs.Assign[1].Topic {
		t.Errorf("Bavarois → %d, Milk jelly → %d; expected the same topic",
			cs.Assign[0].Topic, cs.Assign[1].Topic)
	}
	// And it is the topic of Table I data 3.
	rowAssign, err := linkage.AssignMeasurements(out.Model, []rheology.Measurement{rheology.PureGelatin25}, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Assign[0].Topic != rowAssign[0].Topic {
		t.Errorf("dishes → topic %d but data 3 → topic %d", cs.Assign[0].Topic, rowAssign[0].Topic)
	}

	// Figure 4: near-dish recipes are harder than the topic average for
	// both dishes (paper: "red plots concentrate in the right area").
	for _, dish := range []string{"Bavarois", "Milk jelly"} {
		fig := cs.Figure4[dish]
		h, _ := fig.NearMeanKL(0.25)
		if h <= fig.StarX {
			t.Errorf("%s: near-dish hardness %+.3f not right of star %+.3f", dish, h, fig.StarX)
		}
	}
	// Bavarois' near recipes are more cohesive/elastic than Milk
	// jelly's (paper: "Bavarois concentrate in the upper right while
	// Milk jelly concentrate in the middle right").
	_, cBav := cs.Figure4["Bavarois"].NearMeanKL(0.25)
	_, cMilk := cs.Figure4["Milk jelly"].NearMeanKL(0.25)
	if cBav <= cMilk {
		t.Errorf("near-dish cohesiveness: Bavarois %+.3f vs Milk jelly %+.3f", cBav, cMilk)
	}
}

func TestCaseStudyRenderings(t *testing.T) {
	out := fixture(t)
	cs, err := BuildCaseStudy(out, linkage.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderTableIIb(cs); !strings.Contains(s, "Bavarois") || !strings.Contains(s, "data 3") {
		t.Errorf("Table II(b):\n%s", s)
	}
	for _, dish := range []string{"Bavarois", "Milk jelly"} {
		if s := RenderFigure3(cs.Figure3[dish]); !strings.Contains(s, dish) {
			t.Errorf("figure 3 render missing %s", dish)
		}
		if s := RenderFigure4(cs.Figure4[dish]); !strings.Contains(s, "star") {
			t.Errorf("figure 4 render for %s", dish)
		}
	}
}

func TestFigure3Signal(t *testing.T) {
	out := fixture(t)
	cs, err := BuildCaseStudy(out, linkage.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Paper, Fig 3(a): recipes nearest each dish by emulsion-KL read
	// hard — "both the dishes are likely to be harder recipes among the
	// recipes in topic 3". The nearest bin must be hard-dominated, and
	// harder than the topic at large (both dishes measure harder than
	// the pure gel).
	for _, dish := range []string{"Bavarois", "Milk jelly"} {
		bins := cs.Figure3[dish].Bins
		near := bins[0]
		if f := near.HardFraction(); math.IsNaN(f) || f < 0.6 {
			t.Errorf("%s: near-dish hard fraction = %.2f, want ≥ 0.6", dish, f)
		}
	}
	// Paper, Fig 3(b): "the smaller the KL is, the more frequent the
	// bins of elastic in case of Bavarois, but not in the case of milk
	// jelly" — the elastic signal separates the two dishes.
	bavNear := cs.Figure3["Bavarois"].Bins[0]
	milkNear := cs.Figure3["Milk jelly"].Bins[0]
	be, me := bavNear.ElasticFraction(), milkNear.ElasticFraction()
	if math.IsNaN(be) {
		t.Fatal("Bavarois near bin has no elastic/cohesive terms")
	}
	if !math.IsNaN(me) && be <= me {
		t.Errorf("near-dish elastic fraction: Bavarois %.2f vs Milk jelly %.2f; want Bavarois higher", be, me)
	}
}

func TestRenderFigure2(t *testing.T) {
	s := RenderFigure2(rheology.Attributes{Hardness: 2.78, Cohesiveness: 0.31, Adhesiveness: 0.42})
	if !strings.Contains(s, "extracted") || !strings.Contains(s, "*") {
		t.Errorf("figure 2:\n%s", s)
	}
}
