// Package report renders the paper's tables and figures from fitted
// pipeline outputs: Table I (empirical data vs simulator), Table II(a)
// (topics with gel concentrations, ranked terms, recipe counts and
// Table I assignments), Table II(b) with the Bavarois / Milk jelly
// case study, and Figures 2-4.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/linkage"
	"repro/internal/pipeline"
	"repro/internal/recipe"
	"repro/internal/rheology"
)

// RenderTableI prints the paper's Table I next to the calibrated
// simulator's predictions for the same compositions.
func RenderTableI() string {
	var sb strings.Builder
	sb.WriteString("Table I — empirical gel settings (measured vs simulator)\n")
	sb.WriteString("data  gelatin kanten  agar   | H-meas C-meas A-meas | H-sim  C-sim  A-sim\n")
	for _, m := range rheology.TableI {
		p := rheology.PredictMeasurement(m)
		fmt.Fprintf(&sb, "%-5s %.3f   %.3f   %.3f | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
			m.ID, m.Gels[recipe.Gelatin], m.Gels[recipe.Kanten], m.Gels[recipe.Agar],
			m.Attr.Hardness, m.Attr.Cohesiveness, m.Attr.Adhesiveness,
			p.Hardness, p.Cohesiveness, p.Adhesiveness)
	}
	return sb.String()
}

// TopicRow is one line of Table II(a).
type TopicRow struct {
	Topic    int
	Gels     map[int]float64 // gel axis → mean concentration
	Terms    []core.TermProb
	Recipes  int
	TableIDs []string // Table I rows assigned to this topic
}

// BuildTableIIa assembles Table II(a): per fitted topic, the mean gel
// concentrations, the ranked texture terms, the recipe count (argmax
// θ), and the Table I rows whose settings are nearest this topic.
func BuildTableIIa(out *pipeline.Output, cfg linkage.Config) ([]TopicRow, []linkage.Assignment, error) {
	assignments, err := linkage.AssignMeasurements(out.Model, rheology.TableI, cfg)
	if err != nil {
		return nil, nil, err
	}
	perTopic := make(map[int][]string)
	for _, a := range assignments {
		perTopic[a.Topic] = append(perTopic[a.Topic], a.Measurement.ID)
	}
	counts := out.Model.DocsPerTopic()
	rows := make([]TopicRow, 0, out.Model.K)
	for k := 0; k < out.Model.K; k++ {
		row := TopicRow{
			Topic:    k,
			Gels:     linkage.TopicMeanConcentrations(out.Model, k, 0.0005),
			Recipes:  counts[k],
			TableIDs: perTopic[k],
		}
		for _, tp := range out.Model.TopTerms(k, 10) {
			if tp.Prob < 0.01 {
				break
			}
			row.Terms = append(row.Terms, tp)
		}
		rows = append(rows, row)
	}
	// Present like the paper: ordered by dominant gel then concentration.
	sort.SliceStable(rows, func(i, j int) bool {
		gi, ci := dominantGel(rows[i].Gels)
		gj, cj := dominantGel(rows[j].Gels)
		if gi != gj {
			return gi < gj
		}
		return ci < cj
	})
	return rows, assignments, nil
}

func dominantGel(gels map[int]float64) (axis int, conc float64) {
	axis = int(recipe.NumGels)
	for a, c := range gels {
		if c > conc {
			axis, conc = a, c
		}
	}
	return axis, conc
}

// RenderTableIIa prints Table II(a).
func RenderTableIIa(out *pipeline.Output, rows []TopicRow) string {
	var sb strings.Builder
	sb.WriteString("Table II(a) — acquired topics and Table I assignment\n")
	for _, row := range rows {
		var gels []string
		for a := 0; a < recipe.NumGels; a++ {
			if c, ok := row.Gels[a]; ok {
				gels = append(gels, fmt.Sprintf("%s:%.3f", recipe.Gel(a), c))
			}
		}
		if len(gels) == 0 {
			gels = append(gels, "(none)")
		}
		fmt.Fprintf(&sb, "topic %d  %-32s #recipes=%-5d TableI=%s\n",
			row.Topic, strings.Join(gels, " "), row.Recipes, strings.Join(row.TableIDs, ","))
		for _, tp := range row.Terms {
			term := out.Dict.Term(tp.ID)
			fmt.Fprintf(&sb, "    %-18s (%.3f) [%s] %s\n", term.Romaji, tp.Prob, term.Kana, term.Gloss)
		}
	}
	return sb.String()
}

// CaseStudy is the paper's Section V.B experiment: Table II(b) plus
// Figures 3 and 4 for Bavarois and Milk jelly.
type CaseStudy struct {
	Dishes  []rheology.Measurement
	Assign  []linkage.Assignment // dish → topic (gel KL, like Table I)
	Figure3 map[string]linkage.Figure3
	Figure4 map[string]linkage.Figure4
}

// BuildCaseStudy assigns both dishes to topics and builds their
// figures with the given histogram bin count.
func BuildCaseStudy(out *pipeline.Output, cfg linkage.Config, nbins int) (*CaseStudy, error) {
	dishes := []rheology.Measurement{rheology.Bavarois, rheology.MilkJelly}
	assign, err := linkage.AssignMeasurements(out.Model, dishes, cfg)
	if err != nil {
		return nil, err
	}
	cs := &CaseStudy{
		Dishes:  dishes,
		Assign:  assign,
		Figure3: make(map[string]linkage.Figure3),
		Figure4: make(map[string]linkage.Figure4),
	}
	for i, dish := range dishes {
		topic := assign[i].Topic
		f3, err := linkage.BuildFigure3(out.Model, out.Docs, out.Dict, topic, dish.ID, dish.EmulsionFeatures(), nbins)
		if err != nil {
			return nil, fmt.Errorf("report: figure 3 for %s: %w", dish.ID, err)
		}
		cs.Figure3[dish.ID] = f3
		f4, err := linkage.BuildFigure4(out.Model, out.Docs, out.Dict, topic, dish.ID, dish.EmulsionFeatures())
		if err != nil {
			return nil, fmt.Errorf("report: figure 4 for %s: %w", dish.ID, err)
		}
		cs.Figure4[dish.ID] = f4
	}
	return cs, nil
}

// RenderTableIIb prints Table II(b): the dishes' measured attributes,
// compositions and assigned topics.
func RenderTableIIb(cs *CaseStudy) string {
	var sb strings.Builder
	sb.WriteString("Table II(b) — Bavarois and Milk jelly\n")
	sb.WriteString("dish        H      C      A      gelatin sugar  yolk   cream  milk   topic\n")
	for i, d := range cs.Dishes {
		fmt.Fprintf(&sb, "%-11s %-6.3f %-6.3f %-6.3f %-7.3f %-6.3f %-6.3f %-6.3f %-6.3f %d\n",
			d.ID, d.Attr.Hardness, d.Attr.Cohesiveness, d.Attr.Adhesiveness,
			d.Gels[recipe.Gelatin], d.Emulsions[recipe.Sugar], d.Emulsions[recipe.EggYolk],
			d.Emulsions[recipe.RawCream], d.Emulsions[recipe.Milk], cs.Assign[i].Topic)
	}
	p := rheology.PureGelatin25
	fmt.Fprintf(&sb, "%-11s %-6.3f %-6.3f %-6.3f %-7.3f (Table I data 3, pure gelatin reference)\n",
		"data 3", p.Attr.Hardness, p.Attr.Cohesiveness, p.Attr.Adhesiveness, p.Gels[recipe.Gelatin])
	return sb.String()
}

// RenderFigure2 prints the simulated rheometer curve for a sample with
// the given attributes, annotated with the re-extracted values.
func RenderFigure2(attr rheology.Attributes) string {
	curve := rheology.Simulate(attr)
	var sb strings.Builder
	sb.WriteString("Figure 2 — simulated two-compression rheometer curve\n")
	sb.WriteString(curve.ASCIIPlot(14, 72))
	got, err := curve.Extract()
	if err != nil {
		fmt.Fprintf(&sb, "extraction failed: %v\n", err)
		return sb.String()
	}
	fmt.Fprintf(&sb, "input:     H=%.2f C=%.2f A=%.2f\n", attr.Hardness, attr.Cohesiveness, attr.Adhesiveness)
	fmt.Fprintf(&sb, "extracted: H=%.2f C=%.2f A=%.2f  (F1, c/a, negative area)\n",
		got.Hardness, got.Cohesiveness, got.Adhesiveness)
	return sb.String()
}

// RenderFigure3 prints the histogram pair of Figure 3 for one dish.
func RenderFigure3(fig linkage.Figure3) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 — %s (topic %d), %d KL-ordered bins\n", fig.Dish, fig.Topic, len(fig.Bins))
	sb.WriteString("bin  meanKL  recipes | hard soft (hard%) | elastic cohesive (elastic%)\n")
	for i, b := range fig.Bins {
		fmt.Fprintf(&sb, "%-4d %-7.3f %-7d | %-4d %-4d (%5.1f%%) | %-7d %-8d (%5.1f%%)\n",
			i, b.MeanKL, b.Recipes, b.Hard, b.Soft, 100*b.HardFraction(),
			b.Elastic, b.Cohesive, 100*b.ElasticFraction())
	}
	return sb.String()
}

// RenderFigure4 summarizes Figure 4 for one dish: star position and
// the near-dish quantile means.
func RenderFigure4(fig linkage.Figure4) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 — %s (topic %d), %d recipes\n", fig.Dish, fig.Topic, len(fig.Points))
	fmt.Fprintf(&sb, "star (topic mean):        hardness=%+.3f cohesiveness=%+.3f\n", fig.StarX, fig.StarY)
	h, c := fig.NearMeanKL(0.25)
	fmt.Fprintf(&sb, "nearest quartile by KL:   hardness=%+.3f cohesiveness=%+.3f\n", h, c)
	h2, c2 := fig.NearMeanKL(1.0)
	fmt.Fprintf(&sb, "all topic recipes:        hardness=%+.3f cohesiveness=%+.3f\n", h2, c2)
	return sb.String()
}

// RenderValidation prints the Texture Profile validation.
func RenderValidation(val linkage.Validation) string {
	var sb strings.Builder
	sb.WriteString("Texture Profile validation (Spearman, measured attribute vs topic term score)\n")
	for _, axis := range []lexicon.Axis{lexicon.Hardness, lexicon.Cohesiveness, lexicon.Adhesiveness} {
		fmt.Fprintf(&sb, "  %-13s %+.3f\n", axis, val.Spearman[axis])
	}
	return sb.String()
}
