package lexicon

import (
	"math"
	"testing"

	"repro/internal/textseg"
)

func TestDefaultDictionarySize(t *testing.T) {
	d := Default()
	if d.Len() != DictionarySize {
		t.Fatalf("dictionary has %d terms, want %d (the paper's dictionary size)", d.Len(), DictionarySize)
	}
}

func TestDefaultDictionaryConsistency(t *testing.T) {
	d := Default()
	for i := 0; i < d.Len(); i++ {
		term := d.Term(i)
		if term.ID != i {
			t.Fatalf("term at %d has ID %d", i, term.ID)
		}
		if term.Kana == "" || term.Romaji == "" || term.Gloss == "" {
			t.Fatalf("term %d has empty fields: %+v", i, term)
		}
		if term.Kana != textseg.Normalize(term.Kana) {
			t.Errorf("term %q not normalized", term.Kana)
		}
		if math.Abs(term.Hardness) > 1 || math.Abs(term.Cohesiveness) > 1 ||
			term.Adhesiveness < 0 || term.Adhesiveness > 1 {
			t.Errorf("term %q scores out of range: %+v", term.Romaji, term)
		}
	}
}

// The 41 texture terms the paper's tables name (in our canonical kana
// mapping) must all be present with sensible annotations.
func TestPaperTermsPresent(t *testing.T) {
	d := Default()
	paperTerms := []string{
		// Table II(a) topic 8, 3
		"furufuru", "katai", "muchimuchi", "guchat", "potteri", "burunburun",
		"bosoboso", "botet", "shakushaku", "buruburu",
		// topic 5, 2
		"purupuru", "nettori", "purit", "mottari", "horohoro", "necchiri",
		// topic 6, 1
		"fuwafuwa", "yuruyuru", "bechat", "fukafuka", "burit",
		// topic 9
		"dossiri", "churuchuru", "punipuni", "kutat", "burinburin", "korit",
		"daradara", "karat", "hajikeru", "omoi",
		// synthesized fills for the unreadable topics 7/4/0 plus common
		// gel words used by the corpus generator
		"torotoro", "tsurun", "purun", "mochimochi", "shikoshiko",
		"yawarakai", "funwari", "shittori", "tokeru", "nameraka",
	}
	if len(paperTerms) != 41 {
		t.Fatalf("test list has %d terms, want 41", len(paperTerms))
	}
	for _, r := range paperTerms {
		if _, ok := d.ByRomaji(r); !ok {
			t.Errorf("paper term %q missing from dictionary", r)
		}
	}
}

func TestPaperAnnotationsShape(t *testing.T) {
	d := Default()
	// katai is a hard term; furufuru and fuwafuwa are soft.
	for _, tc := range []struct {
		romaji string
		sense  SenseClass
	}{
		{"katai", SenseHard}, {"dossiri", SenseHard}, {"kachikachi", SenseHard},
		{"furufuru", SenseSoft}, {"fuwafuwa", SenseSoft}, {"yuruyuru", SenseSoft},
	} {
		term, ok := d.ByRomaji(tc.romaji)
		if !ok {
			t.Fatalf("missing %q", tc.romaji)
		}
		if got := term.HardnessSense(); got != tc.sense {
			t.Errorf("%s hardness sense = %v, want %v", tc.romaji, got, tc.sense)
		}
	}
	for _, tc := range []struct {
		romaji string
		sense  SenseClass
	}{
		{"purupuru", SenseElastic}, {"burunburun", SenseElastic}, {"muchimuchi", SenseElastic},
		{"horohoro", SenseCohesive}, {"bosoboso", SenseCohesive}, {"guchat", SenseCohesive},
	} {
		term, _ := d.ByRomaji(tc.romaji)
		if got := term.CohesivenessSense(); got != tc.sense {
			t.Errorf("%s cohesiveness sense = %v, want %v", tc.romaji, got, tc.sense)
		}
	}
	for _, r := range []string{"nettori", "necchiri", "betabeta"} {
		term, _ := d.ByRomaji(r)
		if term.AdhesivenessSense() != SenseSticky {
			t.Errorf("%s should be sticky", r)
		}
	}
}

func TestNonGelTermsFlagged(t *testing.T) {
	d := Default()
	for _, r := range []string{"sakusaku", "karikari", "paripari", "shakishaki", "zakuzaku"} {
		term, ok := d.ByRomaji(r)
		if !ok {
			t.Fatalf("missing %q", r)
		}
		if term.GelRelated {
			t.Errorf("%s should be flagged non-gel (word2vec filter target)", r)
		}
	}
	for _, r := range []string{"purupuru", "katai", "nettori"} {
		term, _ := d.ByRomaji(r)
		if !term.GelRelated {
			t.Errorf("%s should be gel-related", r)
		}
	}
	gel := d.GelRelated()
	if len(gel) == 0 || len(gel) >= d.Len() {
		t.Errorf("GelRelated returned %d of %d", len(gel), d.Len())
	}
}

func TestByKanaNormalizesQuery(t *testing.T) {
	d := Default()
	// Katakana query must fold to the hiragana entry.
	term, ok := d.ByKana("プルプル")
	if !ok || term.Romaji != "purupuru" {
		t.Errorf("ByKana(プルプル) = %+v, %v", term, ok)
	}
	if _, ok := d.ByKana("そんなことば"); ok {
		t.Error("unexpected hit")
	}
}

func TestExtractTermIDs(t *testing.T) {
	d := Default()
	ids := d.ExtractTermIDs("このゼリーはプルプルでねっとりしていて、かたいです。")
	if len(ids) != 3 {
		t.Fatalf("extracted %d terms, want 3", len(ids))
	}
	want := []string{"purupuru", "nettori", "katai"}
	for i, id := range ids {
		if d.Term(id).Romaji != want[i] {
			t.Errorf("term %d = %s, want %s", i, d.Term(id).Romaji, want[i])
		}
	}
	// Repetitions preserved.
	ids = d.ExtractTermIDs("ぷるぷるぷるぷる")
	if len(ids) != 2 {
		t.Errorf("repeated term extracted %d times, want 2", len(ids))
	}
}

func TestLongestMatchPrefersLongerTerm(t *testing.T) {
	d := Default()
	// ぷるんぷるん must match as one term, not two ぷるん.
	ids := d.ExtractTermIDs("ぷるんぷるんのゼリー")
	if len(ids) != 1 {
		t.Fatalf("got %d terms", len(ids))
	}
	if d.Term(ids[0]).Romaji != "purunpurun" {
		t.Errorf("matched %s", d.Term(ids[0]).Romaji)
	}
}

func TestSenseCounts(t *testing.T) {
	d := Default()
	katai, _ := d.ByRomaji("katai")
	puru, _ := d.ByRomaji("purupuru")
	fuwa, _ := d.ByRomaji("fuwafuwa")
	counts := d.SenseCounts([]int{katai.ID, puru.ID, fuwa.ID})
	if counts[SenseHard] != 1 {
		t.Errorf("hard = %d, want 1", counts[SenseHard])
	}
	if counts[SenseSoft] != 2 {
		t.Errorf("soft = %d, want 2", counts[SenseSoft])
	}
	if counts[SenseElastic] != 1 {
		t.Errorf("elastic = %d, want 1", counts[SenseElastic])
	}
}

func TestAxisScoreAccessor(t *testing.T) {
	term := Term{Hardness: 0.5, Cohesiveness: -0.3, Adhesiveness: 0.7}
	if term.Score(Hardness) != 0.5 || term.Score(Cohesiveness) != -0.3 || term.Score(Adhesiveness) != 0.7 {
		t.Error("Score accessor wrong")
	}
	if Hardness.String() != "hardness" || SenseElastic.String() != "elastic" {
		t.Error("String() wrong")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New([]Term{{ID: 1, Kana: "あ", Romaji: "a", Gloss: "x"}}); err == nil {
		t.Error("want error for non-dense ID")
	}
	if _, err := New([]Term{
		{ID: 0, Kana: "ああ", Romaji: "aa", Gloss: "x"},
		{ID: 1, Kana: "ああ", Romaji: "bb", Gloss: "x"},
	}); err == nil {
		t.Error("want error for duplicate kana")
	}
	if _, err := New([]Term{{ID: 0, Kana: "プル", Romaji: "p", Gloss: "x"}}); err == nil {
		t.Error("want error for non-normalized kana")
	}
}

// Every mimetic root contributes its four regular morphological forms,
// and every form inherits the root's annotations.
func TestRootMorphologyComplete(t *testing.T) {
	d := Default()
	base, ok := d.ByRomaji("purupuru")
	if !ok {
		t.Fatal("missing purupuru")
	}
	for _, form := range []string{"purut", "purun", "purunpurun"} {
		term, ok := d.ByRomaji(form)
		if !ok {
			t.Fatalf("missing form %s", form)
		}
		if term.Hardness != base.Hardness || term.Cohesiveness != base.Cohesiveness ||
			term.Adhesiveness != base.Adhesiveness || term.GelRelated != base.GelRelated {
			t.Errorf("form %s does not inherit annotations", form)
		}
	}
}

// Sense thresholds behave at the boundary.
func TestSenseThresholdBoundary(t *testing.T) {
	at := Term{Hardness: senseThreshold}
	below := Term{Hardness: senseThreshold - 1e-9}
	if at.HardnessSense() != SenseHard {
		t.Error("score at threshold should classify")
	}
	if below.HardnessSense() != SenseNone {
		t.Error("score below threshold should not classify")
	}
	negAt := Term{Cohesiveness: -senseThreshold}
	if negAt.CohesivenessSense() != SenseCohesive {
		t.Error("negative pole at threshold should classify")
	}
}
