// Package lexicon provides the Japanese sensory texture term dictionary
// used to mine texture descriptions from recipe text.
//
// The paper builds its dictionary from the NARO "Comprehensive Japanese
// Texture Terms" resource, keeping the 288 terms annotated with the
// three rheological categories it compares against: hardness,
// cohesiveness and adhesiveness. That resource is not redistributable,
// so this package reconstructs a dictionary of the same size and schema:
// the 41 terms the paper's tables name carry the paper's own
// annotations, and the remainder are real Japanese texture mimetics and
// adjectives assembled from the texture-term literature the paper cites
// (Hayakawa et al. 2013; Nishinari et al. 1989; Drake 1989), expanded
// through the regular morphology of Japanese mimetics (reduplication,
// っ-form, ん-form, り-form).
package lexicon

import "fmt"

// Axis is one of the three rheological measurement axes of the paper.
type Axis int

// The three axes measured by a rheometer in the paper's Table I.
const (
	Hardness Axis = iota
	Cohesiveness
	Adhesiveness
)

// String names the axis.
func (a Axis) String() string {
	switch a {
	case Hardness:
		return "hardness"
	case Cohesiveness:
		return "cohesiveness"
	case Adhesiveness:
		return "adhesiveness"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// SenseClass is the perceptual bin a term falls into on an axis, used
// by the paper's Figure 3 (hard/soft histogram, elastic/cohesive
// histogram) and Figure 4 (hardness × cohesiveness scatter).
type SenseClass int

// Sense classes. Hard/Soft partition the hardness axis; Elastic and
// Cohesive partition the cohesiveness axis (the paper treats perceived
// elasticity/springiness as the positive pole of instrumental
// cohesiveness and crumbly/easily-collapsing textures as the negative
// pole); Sticky marks adhesive terms.
const (
	SenseNone SenseClass = iota
	SenseHard
	SenseSoft
	SenseElastic
	SenseCohesive
	SenseSticky
)

// String names the sense class.
func (s SenseClass) String() string {
	switch s {
	case SenseHard:
		return "hard"
	case SenseSoft:
		return "soft"
	case SenseElastic:
		return "elastic"
	case SenseCohesive:
		return "cohesive"
	case SenseSticky:
		return "sticky"
	default:
		return "none"
	}
}

// Term is a dictionary entry: one sensory texture word with its
// rheological annotations.
type Term struct {
	ID     int    // dense index into the dictionary
	Kana   string // normalized hiragana surface form (lookup key)
	Romaji string // romanized form, matching the paper's notation
	Gloss  string // English gloss

	// Axis scores in [−1, 1]: the perceptual direction and strength the
	// term implies on each instrumental axis. Hardness: −1 very soft …
	// +1 very hard. Cohesiveness: −1 crumbly/collapsing … +1
	// springy/elastic. Adhesiveness: 0 not sticky … +1 very sticky.
	Hardness     float64
	Cohesiveness float64
	Adhesiveness float64

	// GelRelated is false for terms that describe non-gel textures
	// (crispy fried or nutty textures); these are the terms the paper's
	// word2vec filter is designed to remove from gel recipes.
	GelRelated bool
}

// Score returns the term's score on the given axis.
func (t Term) Score(a Axis) float64 {
	switch a {
	case Hardness:
		return t.Hardness
	case Cohesiveness:
		return t.Cohesiveness
	case Adhesiveness:
		return t.Adhesiveness
	default:
		panic(fmt.Sprintf("lexicon: unknown axis %d", a))
	}
}

// HardnessSense classifies the term on the hardness axis.
func (t Term) HardnessSense() SenseClass {
	switch {
	case t.Hardness >= senseThreshold:
		return SenseHard
	case t.Hardness <= -senseThreshold:
		return SenseSoft
	default:
		return SenseNone
	}
}

// CohesivenessSense classifies the term on the cohesiveness axis.
func (t Term) CohesivenessSense() SenseClass {
	switch {
	case t.Cohesiveness >= senseThreshold:
		return SenseElastic
	case t.Cohesiveness <= -senseThreshold:
		return SenseCohesive
	default:
		return SenseNone
	}
}

// AdhesivenessSense classifies the term on the adhesiveness axis.
func (t Term) AdhesivenessSense() SenseClass {
	if t.Adhesiveness >= senseThreshold {
		return SenseSticky
	}
	return SenseNone
}

// senseThreshold is the minimum |score| for a term to count as a member
// of an axis category, mirroring the paper's binary category
// annotations.
const senseThreshold = 0.25
