package lexicon

import (
	"fmt"
	"sync"

	"repro/internal/textseg"
)

// Dictionary is an immutable indexed collection of texture terms.
type Dictionary struct {
	terms    []Term
	byKana   map[string]int
	byRomaji map[string]int

	// tok is the shared extraction tokenizer, built on first use. The
	// trie behind it is never mutated afterwards, so one instance
	// serves all goroutines; rebuilding it per extraction dominated
	// the annotation hot path before it was cached here.
	tokOnce sync.Once
	tok     *textseg.Tokenizer
}

var (
	defaultOnce sync.Once
	defaultDict *Dictionary
)

// Default returns the shared 288-term dictionary. The value is built
// once and must not be mutated.
func Default() *Dictionary {
	defaultOnce.Do(func() {
		d, err := New(expand())
		if err != nil {
			panic("lexicon: default dictionary is inconsistent: " + err.Error())
		}
		defaultDict = d
	})
	return defaultDict
}

// New builds a dictionary from a term list. IDs must be dense indices
// 0..len-1; kana and romaji forms must be unique.
func New(terms []Term) (*Dictionary, error) {
	d := &Dictionary{
		terms:    terms,
		byKana:   make(map[string]int, len(terms)),
		byRomaji: make(map[string]int, len(terms)),
	}
	for i, t := range terms {
		if t.ID != i {
			return nil, fmt.Errorf("lexicon: term %q has ID %d at index %d", t.Kana, t.ID, i)
		}
		norm := textseg.Normalize(t.Kana)
		if norm != t.Kana {
			return nil, fmt.Errorf("lexicon: term %q is not in normalized form (want %q)", t.Kana, norm)
		}
		if prev, dup := d.byKana[t.Kana]; dup {
			return nil, fmt.Errorf("lexicon: duplicate kana %q (IDs %d and %d)", t.Kana, prev, i)
		}
		if prev, dup := d.byRomaji[t.Romaji]; dup {
			return nil, fmt.Errorf("lexicon: duplicate romaji %q (IDs %d and %d)", t.Romaji, prev, i)
		}
		d.byKana[t.Kana] = i
		d.byRomaji[t.Romaji] = i
	}
	return d, nil
}

// Len returns the number of terms.
func (d *Dictionary) Len() int { return len(d.terms) }

// Term returns the term with the given ID. It panics on out-of-range
// IDs, which indicate a programming error (IDs only come from this
// dictionary).
func (d *Dictionary) Term(id int) Term {
	return d.terms[id]
}

// Terms returns the full term slice. Callers must not modify it.
func (d *Dictionary) Terms() []Term { return d.terms }

// ByKana finds a term by its normalized kana form.
func (d *Dictionary) ByKana(kana string) (Term, bool) {
	id, ok := d.byKana[textseg.Normalize(kana)]
	if !ok {
		return Term{}, false
	}
	return d.terms[id], true
}

// ByRomaji finds a term by its romanized form.
func (d *Dictionary) ByRomaji(r string) (Term, bool) {
	id, ok := d.byRomaji[r]
	if !ok {
		return Term{}, false
	}
	return d.terms[id], true
}

// Trie builds a textseg dictionary trie over the kana forms, keyed by
// term ID, for use with textseg.NewTokenizer.
func (d *Dictionary) Trie() *textseg.Trie {
	tr := textseg.NewTrie()
	for _, t := range d.terms {
		tr.Insert(t.Kana, t.ID)
	}
	return tr
}

// Tokenizer returns a tokenizer whose dictionary hits are texture terms
// of this dictionary. Each call returns a fresh Tokenizer (callers may
// set KeepPunct), but all of them share one immutable trie.
func (d *Dictionary) Tokenizer() *textseg.Tokenizer {
	return textseg.NewTokenizer(d.sharedTokenizer().Dict())
}

// sharedTokenizer lazily builds the one trie-backed tokenizer behind
// ExtractTermIDs and Tokenizer.
func (d *Dictionary) sharedTokenizer() *textseg.Tokenizer {
	d.tokOnce.Do(func() {
		d.tok = textseg.NewTokenizer(d.Trie())
	})
	return d.tok
}

// ExtractTermIDs tokenizes text and returns the IDs of the texture
// terms found, in order of appearance (with repetitions).
func (d *Dictionary) ExtractTermIDs(text string) []int {
	return d.sharedTokenizer().DictIDs(text)
}

// GelRelated returns the IDs of all gel-related terms.
func (d *Dictionary) GelRelated() []int {
	var out []int
	for _, t := range d.terms {
		if t.GelRelated {
			out = append(out, t.ID)
		}
	}
	return out
}

// SenseCounts tallies how many of the given term IDs fall into each
// sense class on the hardness and cohesiveness axes; used by the
// Figure 3 histograms.
func (d *Dictionary) SenseCounts(ids []int) map[SenseClass]int {
	out := make(map[SenseClass]int)
	for _, id := range ids {
		t := d.terms[id]
		if s := t.HardnessSense(); s != SenseNone {
			out[s]++
		}
		if s := t.CohesivenessSense(); s != SenseNone {
			out[s]++
		}
		if s := t.AdhesivenessSense(); s != SenseNone {
			out[s]++
		}
	}
	return out
}
