package lexicon

// root is a two-to-three-mora mimetic root. Japanese texture mimetics
// derive systematically from such roots: ぷる → ぷるぷる (reduplication),
// ぷるっ (sokuon form), ぷるん (n-form), ぷるんぷるん (n-reduplication).
// The dictionary expands every root into those four forms, each
// inheriting the root's annotations; the sokuon and n- forms describe a
// momentary percept and the reduplicated forms a sustained one, but they
// sit at the same point on the rheological axes, which is what matters
// for this pipeline.
type root struct {
	kana, romaji, gloss string
	hard, coh, adh      float64
	gel                 bool
}

// roots lists the mimetic roots. Scores follow the glosses the paper's
// Table II(a) gives for the terms it names, and the cited texture-term
// literature for the rest.
var roots = []root{
	// Gel-related roots: soft / elastic / wobbly family.
	{"ぷる", "puru", "soft elastic and slightly sticky, slightly wobbly", -0.3, 0.8, 0.2, true},
	{"ふる", "furu", "soft and slightly wobbly, easy to break", -0.8, -0.2, 0.0, true},
	{"ぶる", "buru", "elastic and slightly wobbly", 0.1, 0.7, 0.0, true},
	{"ぶり", "buri", "firm and resilient", 0.5, 0.7, 0.0, true},
	{"ぷり", "puri", "crisp-popping; slight sound at the bite", 0.4, 0.5, 0.0, true},
	{"むち", "muchi", "resilient, firm and slightly sticky", 0.6, 0.7, 0.3, true},
	{"もち", "mochi", "chewy, sticky and elastic", 0.2, 0.7, 0.5, true},
	{"ぷに", "puni", "soft elastic and slightly sticky", -0.4, 0.6, 0.2, true},
	{"ぷよ", "puyo", "jiggly and soft", -0.5, 0.5, 0.0, true},
	{"しこ", "shiko", "firm, chewy and resilient", 0.6, 0.8, 0.0, true},
	// Melting / flowing family.
	{"とろ", "toro", "melty, thick and flowing", -0.7, -0.3, 0.3, true},
	{"どろ", "doro", "muddy and thick", -0.6, -0.5, 0.5, true},
	{"だら", "dara", "thick, heavy, drooping flow", -0.4, -0.5, 0.4, true},
	{"もた", "mota", "thick and sluggish", -0.2, -0.3, 0.4, true},
	// Airy / soft family.
	{"ふわ", "fuwa", "soft and fluffy", -0.9, 0.2, 0.0, true},
	{"ふか", "fuka", "soft, swollen and somewhat elastic", -0.6, 0.2, 0.0, true},
	{"ふにゃ", "funya", "limp and soft", -0.8, -0.2, 0.0, true},
	{"ゆる", "yuru", "thin, loose, easy to deform", -0.9, -0.4, 0.0, true},
	{"くた", "kuta", "soft, not taut", -0.7, -0.4, 0.0, true},
	{"くにゃ", "kunya", "pliant, bending", -0.6, -0.1, 0.0, true},
	{"ぐにゃ", "gunya", "squishy, deforming", -0.6, -0.3, 0.1, true},
	{"ぐちゃ", "gucha", "mushy; having lost its original shape", -0.5, -0.8, 0.4, true},
	// Sticky family.
	{"べた", "beta", "sticky, flattening", -0.3, -0.2, 0.8, true},
	{"べちゃ", "becha", "sticky, viscous and watery", -0.5, -0.3, 0.7, true},
	{"ねば", "neba", "sticky and stringy", -0.2, 0.3, 0.9, true},
	{"ねと", "neto", "sticky, clinging", -0.2, 0.0, 0.9, true},
	{"ぬちゃ", "nucha", "wet and sticky", -0.3, -0.2, 0.8, true},
	{"ぬる", "nuru", "slimy, slippery", -0.4, 0.0, 0.6, true},
	{"ぬめ", "nume", "slick, smooth-coated", -0.3, 0.0, 0.5, true},
	// Smooth / slippery family.
	{"つる", "tsuru", "smooth and slippery", -0.3, 0.3, 0.1, true},
	{"ちゅる", "churu", "slippery, smooth and wet surface", -0.3, 0.2, 0.1, true},
	{"すべ", "sube", "smooth, sliding", -0.3, 0.1, 0.0, true},
	// Firm / hard gel family.
	{"こり", "kori", "crunchy, small firm bite", 0.7, 0.3, 0.0, true},
	{"こち", "kochi", "stiff, hardened", 0.8, 0.0, 0.0, true},
	{"かち", "kachi", "hard as if frozen solid", 0.95, 0.1, 0.0, true},
	{"がち", "gachi", "extremely hard, rigid", 1.0, 0.1, 0.0, true},
	// Crumbly / dry family.
	{"ほろ", "horo", "crumbly and soft", -0.2, -0.8, 0.0, true},
	{"ぼろ", "boro", "crumbling, falling apart", 0.0, -0.9, 0.0, true},
	{"ぽろ", "poro", "flaking into small crumbs", -0.1, -0.7, 0.0, true},
	{"ぼそ", "boso", "dry, crumbly and not compact", 0.2, -0.7, 0.0, true},
	{"ぱさ", "pasa", "dry, moistureless", 0.1, -0.6, 0.0, true},
	{"から", "kara", "dry and crispy", 0.3, -0.5, 0.0, true},
	// Thick-body family.
	{"ぽて", "pote", "thick, plump, resistant to flow", 0.1, -0.2, 0.4, true},
	{"ぼて", "bote", "thick and heavy, resistant to flow", 0.2, -0.3, 0.4, true},
	// Grain / fizz family.
	{"しゃく", "shaku", "crisp; material is cut off or shears off easily", 0.4, -0.4, 0.0, true},
	{"しゅわ", "shuwa", "fizzy, bursting finely", -0.3, -0.3, 0.0, true},
	{"ぷち", "puchi", "popping like small beads", 0.2, 0.3, 0.0, true},
	{"つぶ", "tsubu", "grainy, granular", 0.2, -0.3, 0.0, true},
	{"ざら", "zara", "gritty, rough-surfaced", 0.2, -0.3, 0.1, true},
	// Non-gel crisp/crunchy family: textures of fried foods, nuts and raw
	// vegetables. These are the targets of the word2vec relatedness
	// filter — a mousse topped with nuts may be described as さくさく, but
	// that says nothing about the gel.
	{"さく", "saku", "lightly crisp (pastry, nuts)", 0.5, -0.6, 0.0, false},
	{"かり", "kari", "hard-crisp (deep-fried)", 0.7, -0.5, 0.0, false},
	{"ぱり", "pari", "thin-crisp (crackers, nori)", 0.6, -0.5, 0.0, false},
	{"ばり", "bari", "hard cracker crunch", 0.7, -0.5, 0.0, false},
	{"しゃき", "shaki", "crisp-fresh (raw vegetables)", 0.5, -0.4, 0.0, false},
	{"しゃり", "shari", "icy-granular (sherbet)", 0.4, -0.4, 0.0, false},
	{"ざく", "zaku", "coarse crunch (granola)", 0.6, -0.5, 0.0, false},
	{"がり", "gari", "hard gnawing crunch", 0.8, -0.4, 0.0, false},
	{"ごり", "gori", "hard and gristly", 0.8, 0.1, 0.0, false},
	{"ぽき", "poki", "snapping cleanly", 0.7, -0.6, 0.0, false},
	{"ぱき", "paki", "crisp snap", 0.7, -0.6, 0.0, false},
}

// irregular entries: lexicalized -ri adverbs, adjectives and texture
// phrases that do not follow the four-form mimetic paradigm.
var irregulars = []root{
	{"ぽってり", "potteri", "thick, resistant to flow", 0.1, -0.2, 0.4, true},
	{"もったり", "mottari", "thick and viscous, resistant to flow", -0.1, -0.3, 0.5, true},
	{"ねっとり", "nettori", "sticky, viscous and thick", -0.1, 0.0, 0.9, true},
	{"ねっちり", "necchiri", "very sticky and viscous", 0.0, 0.1, 0.95, true},
	{"どっしり", "dossiri", "heavy, dense", 0.8, 0.2, 0.0, true},
	{"しっとり", "shittori", "moist and smooth", -0.4, 0.1, 0.2, true},
	{"かっちり", "kacchiri", "firmly set", 0.7, 0.3, 0.0, true},
	{"がっちり", "gacchiri", "rigidly solid", 0.9, 0.2, 0.0, true},
	{"もっちり", "mocchiri", "springy and chewy", 0.1, 0.8, 0.4, true},
	{"むっちり", "mucchiri", "dense and springy", 0.4, 0.7, 0.2, true},
	{"あっさり", "assari", "light, plain-bodied", -0.3, 0.0, 0.0, true},
	{"こってり", "kotteri", "heavy and rich", 0.1, -0.1, 0.5, true},
	{"さっくり", "sakkuri", "lightly crisp through", 0.3, -0.5, 0.0, false},
	{"ざっくり", "zakkuri", "coarsely crunchy through", 0.5, -0.5, 0.0, false},
	{"しっかり", "shikkari", "firm, well set", 0.6, 0.4, 0.0, true},
	{"ふっくら", "fukkura", "plump and soft", -0.7, 0.3, 0.0, true},
	{"ふんわり", "funwari", "airy and soft", -0.9, 0.2, 0.0, true},
	{"とろり", "torori", "melting into a thick drop", -0.7, -0.3, 0.3, true},
	{"どろり", "dorori", "thick muddy drop", -0.5, -0.4, 0.5, true},
	{"ぬるり", "nururi", "slipping slickly", -0.4, 0.0, 0.6, true},
	{"つるり", "tsururi", "slipping smoothly", -0.3, 0.3, 0.1, true},
	{"ほろり", "horori", "crumbling tenderly", -0.3, -0.7, 0.0, true},
	{"こしがある", "koshi-ga-aru", "having firm body", 0.5, 0.7, 0.0, true},
	{"はごたえがある", "hagotae-ga-aru", "having a chewy bite", 0.7, 0.5, 0.0, true},
	{"くちどけがよい", "kuchidoke-ga-yoi", "melting well in the mouth", -0.7, -0.4, 0.0, true},
	{"なめらか", "nameraka", "smooth", -0.4, 0.2, 0.1, true},
	{"かたい", "katai", "hard, firm, stiff, tough, rigid", 0.9, 0.1, 0.0, true},
	{"やわらかい", "yawarakai", "soft", -0.9, 0.0, 0.0, true},
	{"おもい", "omoi", "heavy", 0.6, 0.0, 0.1, true},
	{"かるい", "karui", "light", -0.5, -0.1, 0.0, true},
	{"はじける", "hajikeru", "cracking open, fizzy", 0.3, -0.3, 0.0, true},
	{"とける", "tokeru", "melting", -0.8, -0.4, 0.1, true},
	{"みずみずしい", "mizumizushii", "juicy, fresh", -0.5, 0.0, 0.0, true},
	{"だんりょくがある", "danryoku-ga-aru", "elastic", 0.2, 0.9, 0.0, true},
	{"はりがある", "hari-ga-aru", "taut", 0.4, 0.6, 0.0, true},
	{"きめこまかい", "kimekomakai", "fine-textured", -0.2, 0.2, 0.0, true},
	{"あらい", "arai", "coarse-textured", 0.3, -0.3, 0.0, true},
	{"べたつく", "betatsuku", "sticking, clinging", -0.2, -0.1, 0.9, true},
	{"ねばる", "nebaru", "pulling sticky strings", -0.1, 0.3, 0.9, true},
	{"とろける", "torokeru", "melting away richly", -0.8, -0.3, 0.2, true},
	{"くずれる", "kuzureru", "collapsing", -0.3, -0.9, 0.0, true},
	{"くずれやすい", "kuzureyasui", "collapsing easily", -0.3, -0.85, 0.0, true},
	{"こわれやすい", "kowareyasui", "breaking easily", -0.2, -0.8, 0.0, true},
	{"かみごたえ", "kamigotae", "chewiness", 0.6, 0.5, 0.0, true},
	{"のどごしがよい", "nodogoshi-ga-yoi", "sliding smoothly down the throat", -0.4, -0.2, 0.0, true},
	{"ごわごわ", "gowagowa", "stiff and rough (fibrous)", 0.5, -0.2, 0.0, false},
	{"ぱさつく", "pasatsuku", "turning dry and crumbly", 0.1, -0.6, 0.0, true},
	{"ひんやり", "hinyari", "cool to the tongue", -0.2, 0.0, 0.0, true},
}

// DictionarySize is the number of entries in the default dictionary,
// matching the size of the paper's dictionary.
const DictionarySize = 288

// expand produces the full term list: four regular forms per root, then
// the irregular entries, with dense IDs in deterministic order.
func expand() []Term {
	terms := make([]Term, 0, len(roots)*4+len(irregulars))
	add := func(kana, romaji string, r root) {
		terms = append(terms, Term{
			ID:           len(terms),
			Kana:         kana,
			Romaji:       romaji,
			Gloss:        r.gloss,
			Hardness:     r.hard,
			Cohesiveness: r.coh,
			Adhesiveness: r.adh,
			GelRelated:   r.gel,
		})
	}
	for _, r := range roots {
		add(r.kana+r.kana, r.romaji+r.romaji, r)                 // ぷるぷる
		add(r.kana+"っ", r.romaji+"t", r)                         // ぷるっ
		add(r.kana+"ん", r.romaji+"n", r)                         // ぷるん
		add(r.kana+"ん"+r.kana+"ん", r.romaji+"n"+r.romaji+"n", r) // ぷるんぷるん
	}
	for _, r := range irregulars {
		add(r.kana, r.romaji, r)
	}
	return terms
}
