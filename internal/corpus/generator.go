package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/lexicon"
	"repro/internal/recipe"
	"repro/internal/rheology"
	"repro/internal/stats"
)

// Config controls corpus generation.
type Config struct {
	Seed  uint64
	Scale float64 // population multiplier over the Table II(a) counts

	// ConfoundRate is the probability a recipe gains a non-gel topping
	// (nuts, granola, cookies) plus matching crispy texture terms — the
	// word2vec filter's targets. Toppings stay below the 10% weight
	// share so the recipes survive the unrelated-ingredient filter.
	ConfoundRate float64
	// FruitHeavyRate is the probability a recipe carries >10% fruit and
	// is therefore dropped by the paper's exclusion rule.
	FruitHeavyRate float64
	// UntaggedPerTagged appends this many description-without-texture-
	// terms recipes per tagged recipe, reproducing the paper's 63k → 10k
	// funnel when set to ≈5.3. Zero (the default) skips them.
	UntaggedPerTagged float64

	GelJitter      float64 // σ of the log-normal jitter on gel doses
	EmulsionJitter float64 // σ of the log-normal jitter on emulsion doses
	ExtraTerms     int     // max extra base-topic terms per recipe beyond the first
	KatakanaRate   float64 // probability a term is written in katakana

	// TermNoise is the probability of appending one uniformly random
	// gel-related texture term to a recipe — off-topic vocabulary noise
	// for robustness experiments. Zero in the calibrated corpus.
	TermNoise float64
}

// DefaultConfig generates the ≈3,000-recipe corpus of the paper's
// final dataset.
func DefaultConfig() Config {
	return Config{
		Seed:           7,
		Scale:          1,
		ConfoundRate:   0.12,
		FruitHeavyRate: 0.05,
		GelJitter:      0.10,
		EmulsionJitter: 0.18,
		ExtraTerms:     2,
		KatakanaRate:   0.2,
	}
}

// FunnelConfig reproduces the paper's full collection funnel
// (63,000 collected → ~10,000 with texture terms → ~3,000 kept) at the
// given scale.
func FunnelConfig(scale float64) Config {
	cfg := DefaultConfig()
	cfg.Scale = scale
	cfg.UntaggedPerTagged = 5.3
	cfg.FruitHeavyRate = 0.70
	return cfg
}

// Generate builds the corpus. Every recipe carries its ground-truth
// topic in Truth (untagged filler recipes carry −1) and is already
// resolved (amounts parsed to grams).
func Generate(cfg Config) ([]*recipe.Recipe, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("corpus: scale must be positive, got %g", cfg.Scale)
	}
	g := &generator{cfg: cfg, rng: stats.NewRNG(cfg.Seed, 0xC0FFEE), dict: lexicon.Default()}
	var out []*recipe.Recipe
	serial := 0
	for _, spec := range Topics {
		n := int(math.Round(float64(spec.Recipes) * cfg.Scale))
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			serial++
			r, err := g.recipe(spec, serial)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
			for f := cfg.UntaggedPerTagged; f > 0; f-- {
				if f < 1 && g.rng.Float64() >= f {
					break
				}
				serial++
				u, err := g.untagged(spec, serial)
				if err != nil {
					return nil, err
				}
				out = append(out, u)
			}
		}
	}
	// Shuffle so topic blocks are not contiguous.
	g.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// GenerateTo streams n generated recipes to w as JSONL — one compact
// JSON object per line, the framing recipe.StreamJSONLenient reads
// back record-at-a-time — without ever holding more than one recipe in
// memory, which is what makes million-recipe corpora generable on a
// laptop. Each record draws its topic from the Table II(a) population
// weights; with UntaggedPerTagged = U, a record is an untagged filler
// with probability U/(1+U), so the tagged:untagged ratio converges to
// the paper's funnel. Output is deterministic for a fixed seed.
func GenerateTo(cfg Config, w io.Writer, n int) error {
	if n < 0 {
		return fmt.Errorf("corpus: negative corpus size %d", n)
	}
	g := &generator{cfg: cfg, rng: stats.NewRNG(cfg.Seed, 0xC0FFEE), dict: lexicon.Default()}
	weights := make([]float64, len(Topics))
	for i, spec := range Topics {
		weights[i] = float64(spec.Recipes)
	}
	pUntagged := 0.0
	if cfg.UntaggedPerTagged > 0 {
		pUntagged = cfg.UntaggedPerTagged / (1 + cfg.UntaggedPerTagged)
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for serial := 1; serial <= n; serial++ {
		spec := Topics[g.rng.Categorical(weights)]
		var r *recipe.Recipe
		var err error
		if pUntagged > 0 && g.rng.Float64() < pUntagged {
			r, err = g.untagged(spec, serial)
		} else {
			r, err = g.recipe(spec, serial)
		}
		if err != nil {
			return err
		}
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("corpus: writing record %d: %w", serial, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("corpus: flushing stream: %w", err)
	}
	return nil
}

type generator struct {
	cfg  Config
	rng  *stats.RNG
	dict *lexicon.Dictionary
}

// jitterLogNormal multiplies x by exp(N(0,σ)).
func (g *generator) jitterLogNormal(x, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	return x * math.Exp(g.rng.Normal(0, sigma))
}

func (g *generator) recipe(spec TopicSpec, serial int) (*recipe.Recipe, error) {
	// Target composition.
	var gels [recipe.NumGels]float64
	for i, c := range spec.Gels {
		gels[i] = g.jitterLogNormal(c, g.cfg.GelJitter*jitterScale(spec))
	}
	style := g.pickStyle(spec)
	var emus [recipe.NumEmulsions]float64
	for i, c := range style.Conc {
		emus[i] = g.jitterLogNormal(c, g.cfg.EmulsionJitter)
	}

	total := g.rng.Normal(450, 70)
	if total < 250 {
		total = 250
	}
	if total > 700 {
		total = 700
	}

	confound := g.rng.Float64() < g.cfg.ConfoundRate
	fruitHeavy := g.rng.Float64() < g.cfg.FruitHeavyRate

	ings, toppingName := g.ingredients(gels, emus, total, confound, fruitHeavy)

	terms := g.terms(spec, gels, emus)
	// A crunchy-texture sentence is only written for crunchy toppings;
	// fruit (which wins when both flags fire) is decoration.
	desc := g.description(spec, terms, toppingName, confound && !fruitHeavy)

	r := &recipe.Recipe{
		ID:          fmt.Sprintf("syn-%05d", serial),
		Title:       g.title(spec, serial),
		Description: desc,
		Ingredients: ings,
		Steps:       g.steps(gels, emus, style),
		Truth:       spec.ID,
	}
	if err := r.Resolve(); err != nil {
		return nil, fmt.Errorf("corpus: generated unparseable recipe: %w", err)
	}
	return r, nil
}

// untagged emits a same-composition recipe whose description carries no
// texture terms; the mining pipeline drops it, as the paper dropped
// 53,000 of its 63,000 collected recipes.
func (g *generator) untagged(spec TopicSpec, serial int) (*recipe.Recipe, error) {
	var gels [recipe.NumGels]float64
	for i, c := range spec.Gels {
		gels[i] = g.jitterLogNormal(c, g.cfg.GelJitter*jitterScale(spec))
	}
	style := g.pickStyle(spec)
	var emus [recipe.NumEmulsions]float64
	for i, c := range style.Conc {
		emus[i] = g.jitterLogNormal(c, g.cfg.EmulsionJitter)
	}
	ings, _ := g.ingredients(gels, emus, 400, false, false)
	r := &recipe.Recipe{
		ID:          fmt.Sprintf("syn-%05d", serial),
		Title:       g.title(spec, serial),
		Description: g.plainDescription(),
		Ingredients: ings,
		Steps:       g.steps(gels, emus, style),
		Truth:       -1,
	}
	if err := r.Resolve(); err != nil {
		return nil, fmt.Errorf("corpus: generated unparseable recipe: %w", err)
	}
	return r, nil
}

func (g *generator) pickStyle(spec TopicSpec) EmulsionStyle {
	if len(spec.Styles) == 0 {
		return plainStyle(1)
	}
	w := make([]float64, len(spec.Styles))
	for i, s := range spec.Styles {
		w[i] = s.Prob
	}
	return spec.Styles[g.rng.Categorical(w)]
}

// terms draws the texture terms of one recipe: one or more from the
// topic's base distribution, plus emulsion-driven hard/elastic terms
// whose probability scales with how much the emulsions change the
// predicted rheology versus the plain gel — the mechanism that gives
// the Figure 3/4 case study its signal.
func (g *generator) terms(spec TopicSpec, gels [recipe.NumGels]float64, emus [recipe.NumEmulsions]float64) []string {
	w := make([]float64, len(spec.Terms))
	for i, t := range spec.Terms {
		w[i] = t.Prob
	}
	n := 1 + g.rng.IntN(g.cfg.ExtraTerms+1)
	var out []string
	for i := 0; i < n; i++ {
		out = append(out, spec.Terms[g.rng.Categorical(w)].Romaji)
	}

	base := rheology.Predict(gels, [recipe.NumEmulsions]float64{})
	withE := rheology.Predict(gels, emus)
	if base.Hardness > 0.5 {
		p := gradedProb(withE.Hardness / base.Hardness)
		if g.rng.Float64() < p {
			out = append(out, hardTermPool[g.rng.IntN(len(hardTermPool))])
		}
		// An emulsion-hardened dish also stops reading soft: posters of a
		// firm bavarois do not call it mushy, so soft base terms are
		// replaced by hard ones with the same graded probability.
		for i, romaji := range out {
			if term, ok := g.dict.ByRomaji(romaji); ok && term.Hardness < 0 && g.rng.Float64() < p {
				out[i] = hardTermPool[g.rng.IntN(len(hardTermPool))]
			}
		}
	}
	if base.Cohesiveness > 0 && base.Hardness > 0.5 {
		if p := gradedProb(withE.Cohesiveness / base.Cohesiveness); g.rng.Float64() < p {
			out = append(out, elasticTermPool[g.rng.IntN(len(elasticTermPool))])
		}
	}
	if g.cfg.TermNoise > 0 && g.rng.Float64() < g.cfg.TermNoise {
		gel := g.dict.GelRelated()
		out = append(out, g.dict.Term(gel[g.rng.IntN(len(gel))]).Romaji)
	}
	return out
}

// gradedProb maps an emulsion-effect ratio to an extra-term
// probability: no effect → 0, strong effect → capped at 0.9.
func gradedProb(ratio float64) float64 {
	p := 0.35 * (ratio - 1)
	if p < 0 {
		return 0
	}
	if p > 0.9 {
		return 0.9
	}
	return p
}

// jitterScale returns the topic's gel jitter multiplier.
func jitterScale(spec TopicSpec) float64 {
	if spec.JitterScale > 0 {
		return spec.JitterScale
	}
	return 1
}

var hardTermPool = []string{"katai", "shikkari", "muchimuchi", "kamigotae"}
var elasticTermPool = []string{"danryoku-ga-aru", "burunburun", "mocchiri", "hari-ga-aru"}
