package corpus

import (
	"fmt"
	"strings"

	"repro/internal/recipe"
)

// steps generates the cooking instructions of a recipe. Steps follow
// the preparation a composition actually requires — gelatin blooms and
// dissolves below the boil, kanten and agar must be boiled, egg white
// and cream are whipped, everything chills to set — so step keywords
// carry real signal about the resulting texture, the signal the
// paper's future-work rule mining is after.
func (g *generator) steps(gels [recipe.NumGels]float64, emus [recipe.NumEmulsions]float64, style EmulsionStyle) []string {
	var out []string

	switch {
	case gels[recipe.Kanten] > 0 && gels[recipe.Kanten] >= gels[recipe.Gelatin]:
		out = append(out,
			"寒天を水にひたしてもどす。",
			"なべにいれて煮とかし、2ふんほど沸騰させる。")
	case gels[recipe.Agar] > 0 && gels[recipe.Agar] >= gels[recipe.Gelatin]:
		out = append(out,
			"アガーと砂糖をよくまぜておく。",
			"水にふりいれて煮とかし、沸騰直前まであたためる。")
	default:
		out = append(out,
			"ゼラチンを水でふやかしておく。",
			"あたためたベースにゼラチンをいれてとかす。")
	}

	fat := emus[recipe.RawCream] + emus[recipe.EggAlbumen]
	if fat > 0.05 || strings.Contains(style.Name, "mousse") {
		if emus[recipe.EggAlbumen] > 0 {
			out = append(out, "卵白をあわだててメレンゲにする。")
		}
		if emus[recipe.RawCream] > 0 {
			out = append(out, "生クリームを八分立てにあわだてる。")
		}
		out = append(out, "ベースにさっくりとまぜあわせる。")
	}
	if emus[recipe.Milk] > 0.2 {
		out = append(out, "牛乳をくわえてよくまぜる。")
	}

	// Setting: kanten sets at room temperature, the others chill.
	if gels[recipe.Kanten] > 0 && gels[recipe.Kanten] >= gels[recipe.Gelatin] {
		out = append(out, "型にながして常温でかためる。")
	} else {
		hours := 2 + g.rng.IntN(3)
		out = append(out, fmt.Sprintf("れいぞうこで%dじかんひやしかためる。", hours))
	}
	return out
}
