// Package corpus generates a synthetic recipe-sharing-site corpus that
// substitutes for the paper's Cookpad crawl.
//
// The generator is calibrated to everything the paper reports about its
// data: ten latent dish populations whose gel types, concentrations,
// texture-term distributions and sizes follow Table II(a); quantities
// written in the heterogeneous units of real recipe posts; emulsion
// profiles whose effect on texture follows the calibrated rheology
// model (so the Bavarois / Milk jelly case study has signal to find);
// and nut/granola topping confounds that attach non-gel texture terms
// to gel recipes — the targets of the paper's word2vec filter.
//
// Because the corpus is generated, each recipe carries its hidden topic
// label, letting the evaluation score topic recovery, which the paper
// could not do.
package corpus

import "repro/internal/recipe"

// WeightedTerm is a texture term (romaji key into the lexicon) with
// its probability inside a topic.
type WeightedTerm struct {
	Romaji string
	Prob   float64
}

// EmulsionStyle is one emulsion usage pattern with mean concentrations
// (weight ratios) per emulsion axis.
type EmulsionStyle struct {
	Name string
	Conc [recipe.NumEmulsions]float64
	Prob float64
}

// TopicSpec is the ground truth for one latent dish population.
type TopicSpec struct {
	ID   int
	Name string
	Gels [recipe.NumGels]float64 // mean concentration per gel
	// JitterScale multiplies the corpus-level gel jitter σ for this
	// topic; 0 means 1. The firm-dessert population doses its gelatin
	// widely (roughly 2.5%-8%), matching the paper's assignment of the
	// 2.5% and 3% empirical rows to the 5.4% topic.
	JitterScale float64
	Terms       []WeightedTerm  // base term distribution (sums to ~1)
	Recipes     int             // population size at Scale=1
	Styles      []EmulsionStyle // emulsion usage patterns
	TableIRef   []string        // Table I rows the paper assigns (documentation)
}

// plainStyle has no emulsions.
func plainStyle(p float64) EmulsionStyle { return EmulsionStyle{Name: "plain", Prob: p} }

func emu(sugar, albumen, yolk, cream, milk, yogurt float64) [recipe.NumEmulsions]float64 {
	return [recipe.NumEmulsions]float64{sugar, albumen, yolk, cream, milk, yogurt}
}

// Topics is the ground-truth topic table, Table II(a) of the paper.
// Texture terms and probabilities are the paper's own for topics
// 8,3,5,2,6,1,9; the term cells of topics 7,4,0 and the recipe counts
// of topics 8,2,9 are unreadable in our source and filled with
// plausible values flagged in EXPERIMENTS.md.
var Topics = []TopicSpec{
	{
		ID: 7, Name: "melting gelatin dessert",
		Gels:    [recipe.NumGels]float64{0.005, 0, 0},
		Terms:   []WeightedTerm{{"torotoro", 0.60}, {"toron", 0.25}, {"tokeru", 0.15}},
		Recipes: 73,
		Styles: []EmulsionStyle{
			plainStyle(0.4),
			{Name: "milk", Conc: emu(0.05, 0, 0, 0, 0.4, 0), Prob: 0.4},
			{Name: "cream", Conc: emu(0.06, 0, 0, 0.15, 0.2, 0), Prob: 0.2},
		},
	},
	{
		ID: 4, Name: "barely-set gelatin jelly",
		Gels:    [recipe.NumGels]float64{0.007, 0, 0},
		Terms:   []WeightedTerm{{"purun", 0.50}, {"tsurun", 0.30}, {"nameraka", 0.20}},
		Recipes: 74,
		Styles: []EmulsionStyle{
			plainStyle(0.5),
			{Name: "juice-sweet", Conc: emu(0.08, 0, 0, 0, 0, 0), Prob: 0.3},
			{Name: "milk", Conc: emu(0.05, 0, 0, 0, 0.3, 0), Prob: 0.2},
		},
	},
	{
		ID: 0, Name: "smooth gelatin jelly",
		Gels:    [recipe.NumGels]float64{0.012, 0, 0},
		Terms:   []WeightedTerm{{"tsurutsuru", 0.45}, {"nodogoshi-ga-yoi", 0.30}, {"nameraka", 0.25}},
		Recipes: 152,
		Styles: []EmulsionStyle{
			plainStyle(0.45),
			{Name: "sweet", Conc: emu(0.09, 0, 0, 0, 0, 0), Prob: 0.35},
			{Name: "yogurt", Conc: emu(0.06, 0, 0, 0, 0.1, 0.2), Prob: 0.2},
		},
	},
	{
		ID: 8, Name: "soft wobbly gelatin jelly",
		Gels:      [recipe.NumGels]float64{0.014, 0, 0},
		Terms:     []WeightedTerm{{"furufuru", 1.0}},
		Recipes:   120, // unreadable in source; fills the ~3,000 total
		TableIRef: []string{"1", "2"},
		Styles: []EmulsionStyle{
			plainStyle(0.5),
			{Name: "sweet", Conc: emu(0.08, 0, 0, 0, 0, 0), Prob: 0.3},
			{Name: "milk", Conc: emu(0.05, 0, 0, 0, 0.35, 0), Prob: 0.2},
		},
	},
	{
		ID: 3, Name: "firm rich gelatin dessert",
		Gels:        [recipe.NumGels]float64{0.054, 0, 0},
		JitterScale: 3,
		Terms: []WeightedTerm{
			{"katai", 0.307}, {"muchimuchi", 0.245}, {"guchat", 0.129},
			{"potteri", 0.089}, {"burunburun", 0.062}, {"bosoboso", 0.060},
			{"botet", 0.055}, {"shakushaku", 0.029}, {"buruburu", 0.022},
		},
		Recipes:   38,
		TableIRef: []string{"3", "4"},
		Styles: []EmulsionStyle{
			plainStyle(0.25),
			// Bavarois-like: yolk + cream + milk.
			{Name: "bavarois", Conc: emu(0, 0, 0.08, 0.2, 0.4, 0), Prob: 0.3},
			// Milk-jelly-like: sugar + lots of milk.
			{Name: "milkjelly", Conc: emu(0.032, 0, 0, 0, 0.787, 0), Prob: 0.3},
			{Name: "mousse", Conc: emu(0.05, 0.1, 0, 0.25, 0.1, 0), Prob: 0.15},
		},
	},
	{
		ID: 5, Name: "standard purupuru jelly (agar+gelatin)",
		Gels:      [recipe.NumGels]float64{0.009, 0, 0.009},
		Terms:     []WeightedTerm{{"purupuru", 1.0}},
		Recipes:   1046,
		TableIRef: []string{"5"},
		Styles: []EmulsionStyle{
			plainStyle(0.4),
			{Name: "sweet", Conc: emu(0.1, 0, 0, 0, 0, 0), Prob: 0.35},
			{Name: "milk", Conc: emu(0.06, 0, 0, 0, 0.3, 0), Prob: 0.25},
		},
	},
	{
		ID: 2, Name: "dense agar sweets",
		Gels: [recipe.NumGels]float64{0, 0, 0.016},
		Terms: []WeightedTerm{
			{"nettori", 0.445}, {"purit", 0.255}, {"mottari", 0.210},
			{"horohoro", 0.080}, {"necchiri", 0.010},
		},
		Recipes:   130, // unreadable in source
		TableIRef: []string{"10", "11", "12", "13"},
		Styles: []EmulsionStyle{
			plainStyle(0.35),
			{Name: "anmitsu-sweet", Conc: emu(0.12, 0, 0, 0, 0, 0), Prob: 0.45},
			{Name: "milk", Conc: emu(0.08, 0, 0, 0, 0.25, 0), Prob: 0.2},
		},
	},
	{
		ID: 6, Name: "airy mousse with a touch of gel",
		Gels:    [recipe.NumGels]float64{0.003, 0.002, 0},
		Terms:   []WeightedTerm{{"fuwafuwa", 1.0}},
		Recipes: 1200,
		Styles: []EmulsionStyle{
			{Name: "mousse", Conc: emu(0.08, 0.12, 0, 0.2, 0.1, 0), Prob: 0.5},
			{Name: "yogurt-mousse", Conc: emu(0.07, 0, 0, 0.1, 0.1, 0.25), Prob: 0.3},
			{Name: "milk", Conc: emu(0.06, 0, 0, 0, 0.4, 0), Prob: 0.2},
		},
	},
	{
		ID: 1, Name: "loose kanten",
		Gels: [recipe.NumGels]float64{0, 0.004, 0},
		Terms: []WeightedTerm{
			{"yuruyuru", 0.487}, {"bechat", 0.432}, {"fukafuka", 0.027}, {"burit", 0.027},
		},
		Recipes: 60,
		Styles: []EmulsionStyle{
			plainStyle(0.5),
			{Name: "sweet", Conc: emu(0.07, 0, 0, 0, 0, 0), Prob: 0.3},
			{Name: "milk-kanten", Conc: emu(0.06, 0, 0, 0, 0.3, 0), Prob: 0.2},
		},
	},
	{
		ID: 9, Name: "firm dense kanten",
		Gels: [recipe.NumGels]float64{0, 0.021, 0},
		Terms: []WeightedTerm{
			{"dossiri", 0.270}, {"churuchuru", 0.165}, {"punipuni", 0.100},
			{"kutat", 0.074}, {"burinburin", 0.069}, {"korit", 0.064},
			{"daradara", 0.057}, {"karat", 0.055}, {"hajikeru", 0.055}, {"omoi", 0.054},
		},
		Recipes:   110, // unreadable in source
		TableIRef: []string{"6", "7", "8", "9"},
		Styles: []EmulsionStyle{
			plainStyle(0.45),
			{Name: "anko-sweet", Conc: emu(0.1, 0, 0, 0, 0, 0), Prob: 0.35},
			{Name: "milk-kanten", Conc: emu(0.07, 0, 0, 0, 0.3, 0), Prob: 0.2},
		},
	},
}

// TotalRecipes is the corpus size at Scale=1, ≈3,000 as in the paper.
func TotalRecipes() int {
	n := 0
	for _, t := range Topics {
		n += t.Recipes
	}
	return n
}

// TopicByID returns the spec with the given ID.
func TopicByID(id int) (TopicSpec, bool) {
	for _, t := range Topics {
		if t.ID == id {
			return t, true
		}
	}
	return TopicSpec{}, false
}
