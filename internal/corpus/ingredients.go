package corpus

import (
	"fmt"
	"math"

	"repro/internal/recipe"
)

// ingredients composes an ingredient list realizing the target
// concentrations at the given total weight, writing amounts in the
// heterogeneous units of real recipe posts (grams, spoons, cups,
// sheets, packs, pieces). Returns the list and the topping name when a
// confound or fruit load was added.
func (g *generator) ingredients(gels [recipe.NumGels]float64, emus [recipe.NumEmulsions]float64, total float64, confound, fruitHeavy bool) ([]recipe.Ingredient, string) {
	var ings []recipe.Ingredient
	used := 0.0

	toppingGrams := 0.0
	toppingName := ""
	switch {
	case fruitHeavy:
		toppingName = fruitNames[g.rng.IntN(len(fruitNames))]
		toppingGrams = total * (0.15 + 0.15*g.rng.Float64())
	case confound:
		toppingName = confoundToppings[g.rng.IntN(len(confoundToppings))]
		toppingGrams = total * (0.03 + 0.05*g.rng.Float64())
	}

	// Keep at least 8% of the weight for water; scale emulsions and
	// topping down if the target composition overflows.
	need := toppingGrams
	for _, c := range gels {
		need += c * total
	}
	for _, c := range emus {
		need += c * total
	}
	if limit := 0.92 * total; need > limit {
		f := limit / need
		for i := range emus {
			emus[i] *= f
		}
		toppingGrams *= f
	}

	for gel := recipe.Gel(0); gel < recipe.NumGels; gel++ {
		grams := gels[gel] * total
		if grams <= 0 {
			continue
		}
		name, amount, realized := g.gelAmount(gel, grams)
		ings = append(ings, recipe.Ingredient{Name: name, Amount: amount})
		used += realized
	}
	for emu := recipe.Emulsion(0); emu < recipe.NumEmulsions; emu++ {
		grams := emus[emu] * total
		if grams <= 0 {
			continue
		}
		name, amount, realized := g.emulsionAmount(emu, grams)
		if realized <= 0 {
			continue
		}
		ings = append(ings, recipe.Ingredient{Name: name, Amount: amount})
		used += realized
	}
	if toppingGrams > 1 {
		ings = append(ings, recipe.Ingredient{Name: toppingName, Amount: fmt.Sprintf("%dg", int(math.Round(toppingGrams)))})
		used += math.Round(toppingGrams)
	}

	// Water fills the remainder.
	water := total - used
	if water < 20 {
		water = 20
	}
	ings = append(ings, recipe.Ingredient{Name: "水", Amount: g.waterAmount(water)})
	return ings, toppingName
}

var confoundToppings = []string{"ナッツ", "グラノーラ", "クッキー"}
var fruitNames = []string{"いちご", "みかん", "もも", "フルーツ"}

// gelAmount renders a gel dose in one of the unit styles posters use
// and returns the grams the written amount actually resolves to. Gel
// doses are the latent signal the topic model must recover, so a unit
// is only used when its rounding keeps the dose within 25% of the
// target (nobody writes "1袋" of a 5 g sachet when the recipe needs
// 1.5 g — they write grams); otherwise the amount falls back to grams
// rounded to 0.5.
func (g *generator) gelAmount(gel recipe.Gel, grams float64) (name, amount string, realized float64) {
	gramsFallback := func(name string) (string, string, float64) {
		v := roundTo(grams, 0.5)
		if v == 0 {
			v = 0.5
		}
		return name, trimFloat(v) + "g", v
	}
	// accept reports whether a candidate realization is close enough.
	accept := func(realized float64) bool {
		return math.Abs(realized-grams) <= 0.25*grams
	}
	switch gel {
	case recipe.Gelatin:
		switch g.rng.IntN(4) {
		case 1: // sheets of 1.5 g
			n := atLeast1(math.Round(grams / 1.5))
			if r := float64(n) * 1.5; accept(r) {
				return "板ゼラチン", fmt.Sprintf("%d枚", n), r
			}
		case 2: // 5 g sachets
			n := atLeast1(math.Round(grams / 5))
			if r := float64(n) * 5; accept(r) {
				return "ゼラチン", fmt.Sprintf("%d袋", n), r
			}
		case 3: // teaspoons, 5 mL × 0.6 g/mL = 3 g
			v := roundTo(grams/3, 0.5)
			if r := v * 3; v > 0 && accept(r) {
				return "ゼラチン", "小さじ" + trimFloat(v), r
			}
		}
		return gramsFallback("ゼラチン")
	case recipe.Kanten:
		switch g.rng.IntN(3) {
		case 1: // 4 g sachets
			n := atLeast1(math.Round(grams / 4))
			if r := float64(n) * 4; accept(r) {
				return "寒天", fmt.Sprintf("%d袋", n), r
			}
		case 2: // sticks of 8 g
			n := atLeast1(math.Round(grams / 8))
			if r := float64(n) * 8; accept(r) {
				return "棒寒天", fmt.Sprintf("%d本", n), r
			}
		}
		return gramsFallback("粉寒天")
	default: // agar
		if g.rng.IntN(2) == 1 {
			v := roundTo(grams/3, 0.5)
			if r := v * 3; v > 0 && accept(r) {
				return "アガー", "小さじ" + trimFloat(v), r
			}
		}
		return gramsFallback("アガー")
	}
}

// emulsionAmount renders an emulsion dose and returns realized grams.
func (g *generator) emulsionAmount(emu recipe.Emulsion, grams float64) (name, amount string, realized float64) {
	switch emu {
	case recipe.Sugar:
		if g.rng.IntN(2) == 0 {
			v := math.Round(grams)
			return "砂糖", trimFloat(v) + "g", v
		}
		v := roundTo(grams/9, 0.5) // 大さじ = 15 mL × 0.6
		if v == 0 {
			v = 0.5
		}
		return "砂糖", "大さじ" + trimFloat(v), v * 9
	case recipe.EggAlbumen:
		n := atLeast1(math.Round(grams / 30))
		return "卵白", fmt.Sprintf("%d個", n), float64(n) * 30
	case recipe.EggYolk:
		n := atLeast1(math.Round(grams / 20))
		return "卵黄", fmt.Sprintf("%d個", n), float64(n) * 20
	case recipe.RawCream:
		if grams > 150 && g.rng.IntN(3) == 0 {
			n := atLeast1(math.Round(grams / 200))
			return "生クリーム", fmt.Sprintf("%dパック", n), float64(n) * 200
		}
		v := roundTo(grams, 10) // density 1.0 → mL = g
		if v == 0 {
			v = 10
		}
		return "生クリーム", trimFloat(v) + "ml", v
	case recipe.Milk:
		if g.rng.IntN(3) == 0 {
			v := roundTo(grams/206, 0.5) // カップ = 200 mL × 1.03
			if v == 0 {
				v = 0.5
			}
			return "牛乳", trimFloat(v) + "カップ", v * 206
		}
		ml := roundTo(grams/1.03, 10)
		if ml == 0 {
			ml = 10
		}
		return "牛乳", trimFloat(ml) + "ml", ml * 1.03
	default: // yogurt
		v := math.Round(grams)
		if v == 0 {
			return "", "", 0
		}
		return "ヨーグルト", trimFloat(v) + "g", v
	}
}

func (g *generator) waterAmount(grams float64) string {
	switch g.rng.IntN(3) {
	case 0:
		return trimFloat(roundTo(grams, 10)) + "ml"
	case 1:
		return trimFloat(roundTo(grams, 10)) + "cc"
	default:
		v := roundTo(grams/200, 0.5)
		if v == 0 {
			v = 0.5
		}
		return trimFloat(v) + "カップ"
	}
}

func roundTo(x, step float64) float64 {
	return math.Round(x/step) * step
}

func atLeast1(x float64) int {
	if x < 1 {
		return 1
	}
	return int(x)
}

// trimFloat formats without a trailing ".0".
func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int(v))
	}
	return fmt.Sprintf("%g", v)
}
