package corpus

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/recipe"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.1
	return cfg
}

func TestSpecTableConsistency(t *testing.T) {
	if len(Topics) != 10 {
		t.Fatalf("have %d topics, want 10 (Table II(a))", len(Topics))
	}
	seen := make(map[int]bool)
	dict := lexicon.Default()
	for _, spec := range Topics {
		if seen[spec.ID] {
			t.Errorf("duplicate topic ID %d", spec.ID)
		}
		seen[spec.ID] = true
		// Terms must exist in the lexicon and be gel-related.
		sum := 0.0
		for _, wt := range spec.Terms {
			term, ok := dict.ByRomaji(wt.Romaji)
			if !ok {
				t.Errorf("topic %d term %q missing from lexicon", spec.ID, wt.Romaji)
				continue
			}
			if !term.GelRelated {
				t.Errorf("topic %d term %q is flagged non-gel", spec.ID, wt.Romaji)
			}
			sum += wt.Prob
		}
		// The paper's own term lists are truncated and sum to ≈0.96-1.0.
		if math.Abs(sum-1) > 0.05 {
			t.Errorf("topic %d term probs sum to %g", spec.ID, sum)
		}
		// Style probabilities sum to 1.
		ps := 0.0
		for _, st := range spec.Styles {
			ps += st.Prob
		}
		if math.Abs(ps-1) > 1e-9 {
			t.Errorf("topic %d style probs sum to %g", spec.ID, ps)
		}
		if spec.Recipes <= 0 {
			t.Errorf("topic %d has no recipes", spec.ID)
		}
	}
	// Total ≈ 3,000 as in the paper.
	if n := TotalRecipes(); n < 2800 || n > 3200 {
		t.Errorf("total recipes = %d, want ≈3000", n)
	}
	if _, ok := TopicByID(3); !ok {
		t.Error("TopicByID(3) missing")
	}
	if _, ok := TopicByID(99); ok {
		t.Error("TopicByID(99) unexpected hit")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Description != b[i].Description {
			t.Fatal("same seed must give identical corpora")
		}
	}
}

func TestGenerateScaleAndTruth(t *testing.T) {
	rs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, spec := range Topics {
		want += int(math.Round(float64(spec.Recipes) * 0.1))
	}
	if len(rs) != want {
		t.Errorf("generated %d, want %d", len(rs), want)
	}
	byTruth := make(map[int]int)
	for _, r := range rs {
		byTruth[r.Truth]++
	}
	for _, spec := range Topics {
		if byTruth[spec.ID] == 0 {
			t.Errorf("topic %d generated no recipes", spec.ID)
		}
	}
}

func TestGenerateRecipesAreValid(t *testing.T) {
	rs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dict := lexicon.Default()
	for _, r := range rs {
		if !r.HasGel() {
			t.Errorf("%s has no gel", r.ID)
		}
		if r.TotalGrams() < 100 {
			t.Errorf("%s total %g g is implausible", r.ID, r.TotalGrams())
		}
		if len(dict.ExtractTermIDs(r.Description)) == 0 {
			t.Errorf("%s description has no texture terms: %q", r.ID, r.Description)
		}
		// All ingredients must be known to the registry.
		for _, ing := range r.Ingredients {
			if !ing.Known {
				t.Errorf("%s has unknown ingredient %q", r.ID, ing.Name)
			}
		}
	}
}

func TestGenerateConcentrationsNearSpec(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.3
	cfg.ConfoundRate = 0
	cfg.FruitHeavyRate = 0
	rs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Group by truth and compare mean gel concentration to the spec.
	sums := make(map[int]*[recipe.NumGels]float64)
	counts := make(map[int]int)
	for _, r := range rs {
		c := r.GelConcentrations()
		if sums[r.Truth] == nil {
			sums[r.Truth] = &[recipe.NumGels]float64{}
		}
		for i, v := range c {
			sums[r.Truth][i] += v
		}
		counts[r.Truth]++
	}
	for _, spec := range Topics {
		n := counts[spec.ID]
		if n < 3 {
			continue
		}
		for gel, want := range spec.Gels {
			got := sums[spec.ID][gel] / float64(n)
			if want == 0 {
				if got > 0.002 {
					t.Errorf("topic %d %v = %g, want ≈0", spec.ID, recipe.Gel(gel), got)
				}
				continue
			}
			if math.Abs(got-want)/want > 0.35 {
				t.Errorf("topic %d %v = %g, want ≈%g", spec.ID, recipe.Gel(gel), got, want)
			}
		}
	}
}

func TestGenerateConfounds(t *testing.T) {
	cfg := smallConfig()
	cfg.ConfoundRate = 1 // force confounds
	cfg.FruitHeavyRate = 0
	rs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dict := lexicon.Default()
	withCrispy := 0
	for _, r := range rs {
		hasTopping := false
		for _, ing := range r.Ingredients {
			if ing.Category == recipe.CategoryOther {
				hasTopping = true
			}
		}
		if !hasTopping {
			t.Errorf("%s should have a topping", r.ID)
		}
		for _, id := range dict.ExtractTermIDs(r.Description) {
			if !dict.Term(id).GelRelated {
				withCrispy++
				break
			}
		}
		// Toppings stay under the 10% filter threshold.
		if f := r.UnrelatedFraction(); f > 0.10 {
			t.Errorf("%s topping share %g breaches the filter", r.ID, f)
		}
	}
	if withCrispy < len(rs)*9/10 {
		t.Errorf("only %d/%d confound recipes carry crispy terms", withCrispy, len(rs))
	}
}

func TestGenerateFruitHeavyFailFilter(t *testing.T) {
	cfg := smallConfig()
	cfg.ConfoundRate = 0
	cfg.FruitHeavyRate = 1
	rs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	breaching := 0
	for _, r := range rs {
		if r.UnrelatedFraction() > 0.10 {
			breaching++
		}
	}
	if breaching < len(rs)*9/10 {
		t.Errorf("only %d/%d fruit-heavy recipes breach the filter", breaching, len(rs))
	}
}

func TestGenerateFunnel(t *testing.T) {
	rs, err := Generate(FunnelConfig(0.02))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rs, lexicon.Default())
	if s.Tagged >= s.Total {
		t.Errorf("funnel config should include untagged recipes: %+v", s)
	}
	// Untagged ≈ 5.3× tagged.
	ratio := float64(s.Total-s.Tagged) / float64(s.Tagged)
	if ratio < 3.5 || ratio > 7.5 {
		t.Errorf("untagged/tagged = %g, want ≈5.3", ratio)
	}
}

func TestSummarize(t *testing.T) {
	rs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(rs, lexicon.Default())
	if s.Total != len(rs) || s.Tagged != len(rs) {
		t.Errorf("summary totals: %+v", s)
	}
	if s.ByGel["gelatin"] == 0 || s.ByGel["kanten"] == 0 || s.ByGel["agar"] == 0 {
		t.Errorf("gel split: %v", s.ByGel)
	}
	if s.DistinctTerms < 20 {
		t.Errorf("distinct terms = %d, suspiciously few", s.DistinctTerms)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("scale 0 should fail")
	}
}

func TestToKatakana(t *testing.T) {
	if got := toKatakana("ぷるぷる"); got != "プルプル" {
		t.Errorf("toKatakana = %q", got)
	}
	// Non-hiragana passes through.
	if got := toKatakana("abcー"); got != "abcー" {
		t.Errorf("toKatakana = %q", got)
	}
}

func TestGenerateStepsMatchComposition(t *testing.T) {
	rs, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if len(r.Steps) < 3 {
			t.Fatalf("%s has %d steps", r.ID, len(r.Steps))
		}
		// Steps are chosen from the generator's target doses; realized
		// concentrations shift slightly under unit rounding, so only
		// clearly dominant compositions are asserted (2× margin).
		gels := r.GelConcentrations()
		joined := strings.Join(r.Steps, " ")
		switch {
		case gels[recipe.Kanten] > 2*gels[recipe.Gelatin] && gels[recipe.Kanten] > 2*gels[recipe.Agar]:
			if !strings.Contains(joined, "沸騰") {
				t.Errorf("%s: kanten recipe without a boil step: %v", r.ID, r.Steps)
			}
			if !strings.Contains(joined, "常温でかため") {
				t.Errorf("%s: kanten recipe should set at room temperature", r.ID)
			}
		case gels[recipe.Gelatin] > 2*gels[recipe.Kanten] && gels[recipe.Gelatin] > 2*gels[recipe.Agar]:
			if !strings.Contains(joined, "ふやかし") {
				t.Errorf("%s: gelatin recipe without blooming: %v", r.ID, r.Steps)
			}
			if !strings.Contains(joined, "れいぞうこ") {
				t.Errorf("%s: gelatin recipe should chill", r.ID)
			}
		}
		// Whipping appears only with whippable emulsions.
		emus := r.EmulsionConcentrations()
		if strings.Contains(joined, "あわだて") &&
			emus[recipe.RawCream] == 0 && emus[recipe.EggAlbumen] == 0 {
			t.Errorf("%s: whip step without cream or albumen", r.ID)
		}
	}
}

func TestGenerateToStreamsValidJSONL(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UntaggedPerTagged = 2
	var buf bytes.Buffer
	const n = 400
	if err := GenerateTo(cfg, &buf, n); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte{'\n'}); got != n {
		t.Fatalf("emitted %d lines, want %d", got, n)
	}
	recipes, report, err := recipe.ReadJSONLenient(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Skipped) != 0 || len(recipes) != n {
		t.Fatalf("lenient decode: %d recipes, report %+v", len(recipes), report)
	}
	tagged, untagged := 0, 0
	for _, r := range recipes {
		if err := r.Resolve(); err != nil {
			t.Fatalf("streamed recipe %s does not resolve: %v", r.ID, err)
		}
		if r.Truth >= 0 {
			tagged++
		} else {
			untagged++
		}
	}
	// U = 2 → untagged fraction converges to 2/3.
	frac := float64(untagged) / float64(n)
	if frac < 0.55 || frac > 0.78 {
		t.Errorf("untagged fraction = %.2f (%d/%d), want ≈ 2/3", frac, untagged, n)
	}
}

func TestGenerateToDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	var a, b bytes.Buffer
	if err := GenerateTo(cfg, &a, 120); err != nil {
		t.Fatal(err)
	}
	if err := GenerateTo(cfg, &b, 120); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed, same n: streamed corpora differ")
	}
	var c bytes.Buffer
	cfg.Seed++
	if err := GenerateTo(cfg, &c, 120); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateToRejectsNegativeSize(t *testing.T) {
	if err := GenerateTo(DefaultConfig(), io.Discard, -1); err == nil {
		t.Fatal("negative size accepted")
	}
	if err := GenerateTo(DefaultConfig(), io.Discard, 0); err != nil {
		t.Fatalf("zero size should be a no-op, got %v", err)
	}
}
