package corpus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/recipe"
)

// Summary aggregates corpus statistics, mirroring the figures the
// paper reports about its collection (Section IV.A).
type Summary struct {
	Total         int
	Tagged        int            // recipes whose description carries ≥1 texture term
	ByGel         map[string]int // recipes per dominant gel
	ByTruth       map[int]int    // recipes per ground-truth topic
	DistinctTerms int            // distinct dictionary terms observed
}

// Summarize scans the corpus.
func Summarize(recipes []*recipe.Recipe, dict *lexicon.Dictionary) Summary {
	s := Summary{
		Total:   len(recipes),
		ByGel:   make(map[string]int),
		ByTruth: make(map[int]int),
	}
	seen := make(map[int]bool)
	for _, r := range recipes {
		ids := dict.ExtractTermIDs(r.Description)
		if len(ids) > 0 {
			s.Tagged++
			for _, id := range ids {
				seen[id] = true
			}
		}
		s.ByTruth[r.Truth]++
		g := r.GelConcentrations()
		best, bestC := "", 0.0
		for i, c := range g {
			if c > bestC {
				bestC = c
				best = recipe.Gel(i).String()
			}
		}
		if best != "" {
			s.ByGel[best]++
		}
	}
	s.DistinctTerms = len(seen)
	return s
}

// String renders the summary.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "recipes=%d tagged=%d distinctTerms=%d\n", s.Total, s.Tagged, s.DistinctTerms)
	gels := make([]string, 0, len(s.ByGel))
	for g := range s.ByGel {
		gels = append(gels, g)
	}
	sort.Strings(gels)
	for _, g := range gels {
		fmt.Fprintf(&sb, "  %s: %d\n", g, s.ByGel[g])
	}
	return sb.String()
}
