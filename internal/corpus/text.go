package corpus

import (
	"fmt"
	"strings"
)

// termSurface renders a texture term (romaji key) as it would appear
// in a post: usually hiragana, sometimes katakana.
func (g *generator) termSurface(romaji string) string {
	term, ok := g.dict.ByRomaji(romaji)
	if !ok {
		// Generator term lists are validated by tests; an unknown romaji
		// here is a programming error.
		panic("corpus: term not in lexicon: " + romaji)
	}
	kana := term.Kana
	if g.rng.Float64() < g.cfg.KatakanaRate {
		return toKatakana(kana)
	}
	return kana
}

// toKatakana shifts hiragana runes to katakana; the tokenizer folds
// them back, so dictionary matching is unaffected.
func toKatakana(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 0x3041 && r <= 0x3096 {
			r = r - 0x3041 + 0x30A1
		}
		sb.WriteRune(r)
	}
	return sb.String()
}

var termTemplates = []string{
	"とても%sなしあがりです。",
	"%sのしょっかんがたまりません。",
	"ひやすと%sになります。",
	"こどもがよろこぶ%sデザートです。",
	"くちにいれると%sでしあわせなあじわい。",
	"%sでとてもおいしいですよ。",
}

var confoundTemplates = []string{
	"%sをのせて%sのしょっかんをプラスしました。",
	"しあげに%sをトッピングして%sにしあげます。",
}

var introTemplates = []string{
	"%sでつくるかんたんデザートです。",
	"%sをつかったてづくりおやつです。",
	"おうちにある%sでできるレシピです。",
}

var confoundTermPool = []string{"sakusaku", "karikari", "paripari", "zakuzaku"}

// description assembles the free text of a tagged recipe: an intro
// naming the gel, one sentence per texture term, and — when a topping
// confound is present — a topping sentence whose crispy term co-occurs
// with the topping name (the word2vec filter's training signal).
func (g *generator) description(spec TopicSpec, terms []string, toppingName string, confound bool) string {
	var sb strings.Builder
	gelName := g.primaryGelName(spec)
	fmt.Fprintf(&sb, introTemplates[g.rng.IntN(len(introTemplates))], gelName)
	for _, t := range terms {
		fmt.Fprintf(&sb, termTemplates[g.rng.IntN(len(termTemplates))], g.termSurface(t))
	}
	if toppingName != "" {
		if confound {
			ct := confoundTermPool[g.rng.IntN(len(confoundTermPool))]
			fmt.Fprintf(&sb, confoundTemplates[g.rng.IntN(len(confoundTemplates))],
				toppingName, g.termSurface(ct))
		} else {
			// Fruit decorations are mentioned without texture claims, as
			// in real posts — this gives fruit words ordinary contexts so
			// only the crunchy-topping words stay texture-specific.
			fmt.Fprintf(&sb, decorationTemplates[g.rng.IntN(len(decorationTemplates))], toppingName)
		}
	}
	return sb.String()
}

var decorationTemplates = []string{
	"%sをかざってかわいくしあげました。",
	"%sをそえていろどりよくどうぞ。",
	"おこのみで%sをのせてもおいしいです。",
}

// plainDescription is the texture-term-free text of filler recipes.
func (g *generator) plainDescription() string {
	options := []string{
		"かんたんにつくれるデザートです。おもてなしにもどうぞ。",
		"れいぞうこでひやすだけのてがるなおやつです。",
		"ざいりょうをまぜてかためるだけのレシピです。",
	}
	return options[g.rng.IntN(len(options))]
}

func (g *generator) primaryGelName(spec TopicSpec) string {
	best, bestC := "ゼラチン", 0.0
	names := []string{"ゼラチン", "寒天", "アガー"}
	for i, c := range spec.Gels {
		if c > bestC {
			bestC = c
			best = names[i]
		}
	}
	return best
}

func (g *generator) title(spec TopicSpec, serial int) string {
	styles := []string{"ぷるぷる", "てづくり", "かんたん", "おうちカフェの", "なつかしの"}
	kinds := []string{"ゼリー", "ムース", "プリン", "デザート", "スイーツ"}
	return fmt.Sprintf("%s%s No.%d", styles[g.rng.IntN(len(styles))], kinds[g.rng.IntN(len(kinds))], serial)
}
