package linkage

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/recipe"
	"repro/internal/stats"
)

func exp(x float64) float64 { return math.Exp(x) }

// emulsionKL computes the KL divergence of emulsion concentrations
// between a dish and a recipe, both given in −log feature space. The
// concentration vectors are converted back to ratios, smoothed and
// normalized to distributions, and compared as KL(dish ‖ recipe) —
// small when the recipe uses emulsions in the dish's proportions.
func emulsionKL(dishFeat, recipeFeat []float64, eps float64) float64 {
	d := make([]float64, len(dishFeat))
	r := make([]float64, len(recipeFeat))
	for i := range dishFeat {
		d[i] = clampConc(exp(-dishFeat[i]))
		r[i] = clampConc(exp(-recipeFeat[i]))
	}
	return stats.KLCategorical(stats.NormalizeSmoothed(d, eps), stats.NormalizeSmoothed(r, eps))
}

// clampConc zeroes concentrations at or below the ε floor of the −log
// transform, so "absent" stays absent after the round trip.
func clampConc(c float64) float64 {
	if c <= recipe.EpsilonConcentration*1.01 {
		return 0
	}
	return c
}

// smoothingEps is the additive smoothing used when normalizing
// emulsion concentration vectors into distributions for KL.
const smoothingEps = 1e-3

// Fig3Bin is one histogram bin of Figure 3: recipes in one band of
// emulsion-KL order, with sense-class counts of their texture terms.
type Fig3Bin struct {
	MeanKL   float64
	Recipes  int
	Hard     int // terms in the hardness category (hard pole)
	Soft     int
	Elastic  int
	Cohesive int
}

// Figure3 is the paper's Figure 3 for one dish: topic-member recipes
// binned by KL divergence of emulsion concentrations to the dish.
type Figure3 struct {
	Dish  string
	Topic int
	Bins  []Fig3Bin
}

// BuildFigure3 reproduces Figure 3: take the recipes assigned to the
// dish's topic, order them by emulsion-KL to the dish, split them into
// nbins equal-count bins, and count hard/soft and elastic/cohesive
// texture terms per bin.
func BuildFigure3(res *core.Result, docs []recipe.Doc, dict *lexicon.Dictionary,
	topic int, dishName string, dishEmuFeat []float64, nbins int) (Figure3, error) {
	if nbins < 2 {
		return Figure3{}, fmt.Errorf("linkage: need ≥2 bins")
	}
	members := topicMembers(res, docs, topic)
	if len(members) < nbins {
		return Figure3{}, fmt.Errorf("linkage: topic %d has %d recipes, fewer than %d bins", topic, len(members), nbins)
	}
	type scored struct {
		doc recipe.Doc
		kl  float64
	}
	ss := make([]scored, len(members))
	for i, d := range members {
		ss[i] = scored{doc: d, kl: emulsionKL(dishEmuFeat, d.Emulsion, smoothingEps)}
	}
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].kl < ss[j].kl })

	fig := Figure3{Dish: dishName, Topic: topic, Bins: make([]Fig3Bin, nbins)}
	for i, s := range ss {
		b := i * nbins / len(ss)
		bin := &fig.Bins[b]
		bin.Recipes++
		bin.MeanKL += s.kl
		counts := dict.SenseCounts(s.doc.TermIDs)
		bin.Hard += counts[lexicon.SenseHard]
		bin.Soft += counts[lexicon.SenseSoft]
		bin.Elastic += counts[lexicon.SenseElastic]
		bin.Cohesive += counts[lexicon.SenseCohesive]
	}
	for i := range fig.Bins {
		if fig.Bins[i].Recipes > 0 {
			fig.Bins[i].MeanKL /= float64(fig.Bins[i].Recipes)
		}
	}
	return fig, nil
}

// HardFraction returns hard/(hard+soft) for a bin, NaN when empty.
func (b Fig3Bin) HardFraction() float64 {
	t := b.Hard + b.Soft
	if t == 0 {
		return math.NaN()
	}
	return float64(b.Hard) / float64(t)
}

// ElasticFraction returns elastic/(elastic+cohesive), NaN when empty.
func (b Fig3Bin) ElasticFraction() float64 {
	t := b.Elastic + b.Cohesive
	if t == 0 {
		return math.NaN()
	}
	return float64(b.Elastic) / float64(t)
}

// Fig4Point is one recipe on the hardness × cohesiveness plane,
// colored by emulsion-KL to the dish. Coordinates follow the paper's
// consolidation: softness is negative hardness and elasticity is the
// positive pole of cohesiveness, so each axis is the balance of the
// recipe's categorized terms: (hard − soft)/(hard + soft) and
// (elastic − cohesive)/(elastic + cohesive); a recipe with no terms in
// a category pair sits at zero on that axis.
type Fig4Point struct {
	RecipeID     string
	Hardness     float64 // term-category balance on the hardness axis, in [−1,1]
	Cohesiveness float64 // term-category balance on the cohesiveness axis, in [−1,1]
	KL           float64
}

// Figure4 is the paper's Figure 4 for one dish: the topic's recipes as
// points plus the topic centroid (the star mark).
type Figure4 struct {
	Dish   string
	Topic  int
	Points []Fig4Point
	StarX  float64 // topic centroid hardness
	StarY  float64 // topic centroid cohesiveness
}

// BuildFigure4 reproduces Figure 4: each topic recipe scored on the
// consolidated hardness and cohesiveness axes (softness is negative
// hardness; elasticity is the positive pole of cohesiveness), colored
// by emulsion-KL; the star is the topic's mean position.
func BuildFigure4(res *core.Result, docs []recipe.Doc, dict *lexicon.Dictionary,
	topic int, dishName string, dishEmuFeat []float64) (Figure4, error) {
	members := topicMembers(res, docs, topic)
	if len(members) == 0 {
		return Figure4{}, fmt.Errorf("linkage: topic %d has no recipes", topic)
	}
	fig := Figure4{Dish: dishName, Topic: topic}
	for _, d := range members {
		h, c := termAxisBalance(dict, d.TermIDs)
		fig.Points = append(fig.Points, Fig4Point{
			RecipeID:     d.RecipeID,
			Hardness:     h,
			Cohesiveness: c,
			KL:           emulsionKL(dishEmuFeat, d.Emulsion, smoothingEps),
		})
		fig.StarX += h
		fig.StarY += c
	}
	fig.StarX /= float64(len(fig.Points))
	fig.StarY /= float64(len(fig.Points))
	return fig, nil
}

// termAxisBalance classifies a recipe's terms into the dictionary's
// sense categories and returns the per-axis balances.
func termAxisBalance(dict *lexicon.Dictionary, ids []int) (hardness, cohesiveness float64) {
	counts := dict.SenseCounts(ids)
	if t := counts[lexicon.SenseHard] + counts[lexicon.SenseSoft]; t > 0 {
		hardness = float64(counts[lexicon.SenseHard]-counts[lexicon.SenseSoft]) / float64(t)
	}
	if t := counts[lexicon.SenseElastic] + counts[lexicon.SenseCohesive]; t > 0 {
		cohesiveness = float64(counts[lexicon.SenseElastic]-counts[lexicon.SenseCohesive]) / float64(t)
	}
	return hardness, cohesiveness
}

// topicMembers selects the docs assigned (argmax θ) to the topic.
func topicMembers(res *core.Result, docs []recipe.Doc, topic int) []recipe.Doc {
	assign := res.Assign()
	var out []recipe.Doc
	for i, d := range docs {
		if i < len(assign) && assign[i] == topic {
			out = append(out, d)
		}
	}
	return out
}

// NearMeanKL summarizes a Figure 4: the mean hardness/cohesiveness of
// the quantile of points nearest the dish (lowest KL), against the
// topic centroid — the quantitative reading of the paper's "red plots
// concentrate in the upper right" statement.
func (f Figure4) NearMeanKL(quantile float64) (hardness, cohesiveness float64) {
	pts := append([]Fig4Point(nil), f.Points...)
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].KL < pts[j].KL })
	n := int(float64(len(pts)) * quantile)
	if n < 1 {
		n = 1
	}
	for _, p := range pts[:n] {
		hardness += p.Hardness
		cohesiveness += p.Cohesiveness
	}
	return hardness / float64(n), cohesiveness / float64(n)
}
