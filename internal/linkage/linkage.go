// Package linkage connects fitted topics to empirical rheology: it
// assigns each food-science measurement to its most similar topic by
// KL divergence over gel concentrations (the paper's Section III.C.4),
// validates the resulting term↔attribute linkages against the
// dictionary's category annotations, and builds the paper's Figure 3
// histograms and Figure 4 scatter for the emulsion-mixture case study.
package linkage

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/rheology"
	"repro/internal/stats"
)

// Config controls topic assignment.
type Config struct {
	// SettingSigma is the standard deviation (in −log concentration
	// space) of the narrow Gaussian that represents a point empirical
	// setting when computing KL against a topic's gel component. The
	// paper applies KL between the setting and the topic but leaves the
	// point-vs-distribution detail open; a fixed small σ is the natural
	// reading and BenchmarkAblationEpsilon sweeps it.
	SettingSigma float64

	// MinTopicFraction excludes topics holding fewer than this fraction
	// of the recipes (by argmax θ) from assignment: the paper's Table
	// II(a) only lists acquired topics, and a residual near-empty
	// component's wide posterior would otherwise attract outlying
	// settings.
	MinTopicFraction float64
}

// DefaultConfig mirrors the reproduction's standard settings.
func DefaultConfig() Config { return Config{SettingSigma: 0.15, MinTopicFraction: 0.01} }

// Assignment links one measurement to its most similar topic.
type Assignment struct {
	Measurement rheology.Measurement
	Topic       int
	Divergence  float64   // KL(setting ‖ topic)
	PerTopic    []float64 // divergence against every topic
}

// AssignMeasurements finds, for each empirical measurement, the topic
// whose gel component is closest in KL divergence.
func AssignMeasurements(res *core.Result, ms []rheology.Measurement, cfg Config) ([]Assignment, error) {
	if cfg.SettingSigma <= 0 {
		return nil, fmt.Errorf("linkage: setting σ must be positive")
	}
	counts := res.DocsPerTopic()
	total := 0
	for _, c := range counts {
		total += c
	}
	topics := make([]*stats.Gaussian, res.K)
	for k := 0; k < res.K; k++ {
		if total > 0 && float64(counts[k]) < cfg.MinTopicFraction*float64(total) {
			continue // near-empty topic: not part of the acquired table
		}
		g, err := res.GelGaussian(k)
		if err != nil {
			return nil, fmt.Errorf("linkage: topic %d: %w", k, err)
		}
		topics[k] = g
	}
	out := make([]Assignment, 0, len(ms))
	for _, m := range ms {
		feat := m.GelFeatures()
		prec := stats.ScaledIdentity(len(feat), 1/(cfg.SettingSigma*cfg.SettingSigma))
		setting, err := stats.NewGaussian(feat, prec)
		if err != nil {
			return nil, fmt.Errorf("linkage: measurement %s: %w", m.ID, err)
		}
		a := Assignment{Measurement: m, Topic: -1, PerTopic: make([]float64, res.K)}
		for k, tg := range topics {
			if tg == nil {
				a.PerTopic[k] = math.Inf(1)
				continue
			}
			d := stats.KLGaussian(setting, tg)
			a.PerTopic[k] = d
			if a.Topic < 0 || d < a.Divergence {
				a.Topic = k
				a.Divergence = d
			}
		}
		if a.Topic < 0 {
			return nil, fmt.Errorf("linkage: no eligible topics (min fraction %g)", cfg.MinTopicFraction)
		}
		out = append(out, a)
	}
	return out, nil
}

// TopicAxisScore is the φ-weighted mean annotation score of a topic's
// terms on one rheological axis, using the dictionary annotations. The
// model vocabulary must be dictionary term IDs.
func TopicAxisScore(res *core.Result, dict *lexicon.Dictionary, k int, axis lexicon.Axis) float64 {
	s := 0.0
	for v, p := range res.Phi[k] {
		s += p * dict.Term(v).Score(axis)
	}
	return s
}

// Validation reports how well the linked topics' term annotations
// track the measured attributes — the paper's Texture Profile check.
type Validation struct {
	Assignments []Assignment
	// Spearman rank correlation, across assignments, between the
	// measured attribute and the linked topic's term-annotation score on
	// that axis.
	Spearman map[lexicon.Axis]float64
}

// Validate computes the Texture Profile consistency of a set of
// assignments.
func Validate(res *core.Result, dict *lexicon.Dictionary, assignments []Assignment) Validation {
	val := Validation{Assignments: assignments, Spearman: make(map[lexicon.Axis]float64)}
	for _, axis := range []lexicon.Axis{lexicon.Hardness, lexicon.Cohesiveness, lexicon.Adhesiveness} {
		measured := make([]float64, len(assignments))
		scored := make([]float64, len(assignments))
		for i, a := range assignments {
			switch axis {
			case lexicon.Hardness:
				measured[i] = a.Measurement.Attr.Hardness
			case lexicon.Cohesiveness:
				measured[i] = a.Measurement.Attr.Cohesiveness
			default:
				measured[i] = a.Measurement.Attr.Adhesiveness
			}
			scored[i] = TopicAxisScore(res, dict, a.Topic, axis)
		}
		val.Spearman[axis] = stats.SpearmanCorr(measured, scored)
	}
	return val
}

// TopicMeanConcentrations converts topic k's gel component mean back
// from −log feature space to concentration ratios, reporting only the
// gels whose mean concentration exceeds the floor (absent gels sit at
// the ε feature).
func TopicMeanConcentrations(res *core.Result, k int, floor float64) map[int]float64 {
	out := make(map[int]float64)
	for i, f := range res.Gel[k].Mean {
		c := concFromFeature(f)
		if c >= floor {
			out[i] = c
		}
	}
	return out
}

func concFromFeature(f float64) float64 {
	// Inverse of the −log transform.
	return exp(-f)
}

// SortAssignmentsByTopic orders assignments by topic then measurement
// ID, for table rendering.
func SortAssignmentsByTopic(as []Assignment) {
	sort.SliceStable(as, func(i, j int) bool {
		if as[i].Topic != as[j].Topic {
			return as[i].Topic < as[j].Topic
		}
		return as[i].Measurement.ID < as[j].Measurement.ID
	})
}
