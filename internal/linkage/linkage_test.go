package linkage

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/recipe"
	"repro/internal/rheology"
	"repro/internal/stats"
)

// fakeResult builds a Result with three gel components centered on
// chosen concentrations and φ rows concentrated on chosen terms.
func fakeResult(t *testing.T, concs [][3]float64, termSets [][]string, termProbs [][]float64) *core.Result {
	t.Helper()
	dict := lexicon.Default()
	k := len(concs)
	res := &core.Result{K: k, V: dict.Len()}
	for i := 0; i < k; i++ {
		mean := recipe.FeatureVector(concs[i][:])
		res.Gel = append(res.Gel, core.Component{Mean: mean, Precision: stats.ScaledIdentity(3, 50)})
		res.Emu = append(res.Emu, core.Component{
			Mean:      recipe.FeatureVector(make([]float64, recipe.NumEmulsions)),
			Precision: stats.ScaledIdentity(recipe.NumEmulsions, 10),
		})
		row := make([]float64, dict.Len())
		rest := 1.0
		for j, romaji := range termSets[i] {
			term, ok := dict.ByRomaji(romaji)
			if !ok {
				t.Fatalf("term %q missing", romaji)
			}
			row[term.ID] = termProbs[i][j]
			rest -= termProbs[i][j]
		}
		// Spread the remainder to keep φ a distribution.
		spread := rest / float64(dict.Len())
		for v := range row {
			row[v] += spread
		}
		res.Phi = append(res.Phi, row)
	}
	return res
}

// threeTopicResult: soft low-gelatin, hard high-gelatin, hard kanten.
func threeTopicResult(t *testing.T) *core.Result {
	return fakeResult(t,
		[][3]float64{{0.019, 0, 0}, {0.028, 0, 0}, {0, 0.012, 0}},
		[][]string{{"furufuru"}, {"katai", "muchimuchi"}, {"dossiri", "korit"}},
		[][]float64{{0.9}, {0.6, 0.3}, {0.6, 0.3}},
	)
}

func TestAssignMeasurementsMatchesGelBands(t *testing.T) {
	res := threeTopicResult(t)
	as, err := AssignMeasurements(res, rheology.TableI, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 13 {
		t.Fatalf("assigned %d rows", len(as))
	}
	byID := make(map[string]Assignment)
	for _, a := range as {
		byID[a.Measurement.ID] = a
	}
	// Rows 1-2 (gelatin .018/.02) → topic 0; rows 3-4 (.025/.03) → topic 1;
	// kanten rows 6-9 → topic 2.
	for _, id := range []string{"1", "2"} {
		if byID[id].Topic != 0 {
			t.Errorf("row %s → topic %d, want 0", id, byID[id].Topic)
		}
	}
	for _, id := range []string{"3", "4"} {
		if byID[id].Topic != 1 {
			t.Errorf("row %s → topic %d, want 1", id, byID[id].Topic)
		}
	}
	for _, id := range []string{"6", "7", "8", "9"} {
		if byID[id].Topic != 2 {
			t.Errorf("row %s → topic %d, want 2", id, byID[id].Topic)
		}
	}
	// Divergences are the per-topic minimum and non-negative.
	for _, a := range as {
		if a.Divergence < 0 {
			t.Errorf("row %s negative divergence", a.Measurement.ID)
		}
		for _, d := range a.PerTopic {
			if d < a.Divergence-1e-9 {
				t.Errorf("row %s divergence not minimal", a.Measurement.ID)
			}
		}
	}
}

func TestAssignMeasurementsConfig(t *testing.T) {
	res := threeTopicResult(t)
	if _, err := AssignMeasurements(res, rheology.TableI, Config{SettingSigma: 0}); err == nil {
		t.Error("zero σ should fail")
	}
}

func TestTopicAxisScore(t *testing.T) {
	res := threeTopicResult(t)
	dict := lexicon.Default()
	soft := TopicAxisScore(res, dict, 0, lexicon.Hardness)
	hard := TopicAxisScore(res, dict, 1, lexicon.Hardness)
	if soft >= 0 {
		t.Errorf("furufuru topic hardness score = %g, want negative", soft)
	}
	if hard <= 0.3 {
		t.Errorf("katai topic hardness score = %g, want strongly positive", hard)
	}
}

func TestValidateSpearman(t *testing.T) {
	res := threeTopicResult(t)
	as, err := AssignMeasurements(res, rheology.TableI, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	val := Validate(res, lexicon.Default(), as)
	// Hardness must correlate positively: soft rows land in the furufuru
	// topic, hard rows in katai/dossiri topics. Three topics give only
	// three distinct scores for thirteen rows (and the agar rows have no
	// dedicated topic here), so the rank correlation is muted; the
	// integration test in the bench suite checks the full-pipeline value.
	if r := val.Spearman[lexicon.Hardness]; r < 0.3 {
		t.Errorf("hardness Spearman = %.3f, want ≥ 0.3", r)
	}
}

func TestTopicMeanConcentrations(t *testing.T) {
	res := threeTopicResult(t)
	c := TopicMeanConcentrations(res, 0, 0.0005)
	if math.Abs(c[int(recipe.Gelatin)]-0.019) > 1e-6 {
		t.Errorf("gelatin conc = %g", c[int(recipe.Gelatin)])
	}
	if _, present := c[int(recipe.Kanten)]; present {
		t.Error("absent kanten should be filtered by the floor")
	}
}

func TestSortAssignmentsByTopic(t *testing.T) {
	as := []Assignment{
		{Topic: 2, Measurement: rheology.TableI[0]},
		{Topic: 0, Measurement: rheology.TableI[1]},
		{Topic: 0, Measurement: rheology.TableI[0]},
	}
	SortAssignmentsByTopic(as)
	if as[0].Topic != 0 || as[1].Topic != 0 || as[2].Topic != 2 {
		t.Errorf("order: %v", as)
	}
	if as[0].Measurement.ID > as[1].Measurement.ID {
		t.Error("ties should order by measurement ID")
	}
}

// fig test fixtures: 40 docs in topic 0 with emulsion profiles either
// Bavarois-like or plain, and terms correlated with the profile.
func figFixture(t *testing.T) (*core.Result, []recipe.Doc, *lexicon.Dictionary) {
	t.Helper()
	dict := lexicon.Default()
	res := fakeResult(t,
		[][3]float64{{0.025, 0, 0}, {0, 0.01, 0}},
		[][]string{{"katai"}, {"dossiri"}},
		[][]float64{{0.9}, {0.9}},
	)
	// Theta assigns the first 40 docs to topic 0, the rest to topic 1.
	var docs []recipe.Doc
	termID := func(r string) int {
		term, ok := dict.ByRomaji(r)
		if !ok {
			t.Fatalf("missing %s", r)
		}
		return term.ID
	}
	bavaroisEmu := rheology.Bavarois.EmulsionFeatures()
	plainEmu := recipe.FeatureVector(make([]float64, recipe.NumEmulsions))
	for i := 0; i < 40; i++ {
		var doc recipe.Doc
		if i%2 == 0 {
			// Bavarois-like: hard + elastic terms.
			doc = recipe.Doc{RecipeID: "b", TermIDs: []int{termID("katai"), termID("burunburun")}, Emulsion: bavaroisEmu}
		} else {
			doc = recipe.Doc{RecipeID: "p", TermIDs: []int{termID("furufuru"), termID("horohoro")}, Emulsion: plainEmu}
		}
		doc.Gel = recipe.FeatureVector([]float64{0.025, 0, 0})
		docs = append(docs, doc)
		res.Theta = append(res.Theta, []float64{0.9, 0.1})
	}
	for i := 0; i < 10; i++ {
		docs = append(docs, recipe.Doc{
			RecipeID: "k",
			TermIDs:  []int{termID("dossiri")},
			Gel:      recipe.FeatureVector([]float64{0, 0.01, 0}),
			Emulsion: plainEmu,
		})
		res.Theta = append(res.Theta, []float64{0.1, 0.9})
	}
	return res, docs, dict
}

func TestBuildFigure3(t *testing.T) {
	res, docs, dict := figFixture(t)
	fig, err := BuildFigure3(res, docs, dict, 0, "Bavarois", rheology.Bavarois.EmulsionFeatures(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Bins) != 4 {
		t.Fatalf("bins = %d", len(fig.Bins))
	}
	total := 0
	for _, b := range fig.Bins {
		total += b.Recipes
	}
	if total != 40 {
		t.Errorf("binned %d recipes, want 40 (topic members only)", total)
	}
	// KL order: bins must be non-decreasing in mean KL.
	for i := 1; i < len(fig.Bins); i++ {
		if fig.Bins[i].MeanKL < fig.Bins[i-1].MeanKL-1e-9 {
			t.Error("bins not ordered by KL")
		}
	}
	// Low-KL bins are the Bavarois-like recipes: hard and elastic.
	first, last := fig.Bins[0], fig.Bins[3]
	if !(first.HardFraction() > last.HardFraction()) {
		t.Errorf("hard fraction should fall with KL: %.2f vs %.2f", first.HardFraction(), last.HardFraction())
	}
	if !(first.ElasticFraction() > last.ElasticFraction()) {
		t.Errorf("elastic fraction should fall with KL: %.2f vs %.2f", first.ElasticFraction(), last.ElasticFraction())
	}
}

func TestBuildFigure3Errors(t *testing.T) {
	res, docs, dict := figFixture(t)
	if _, err := BuildFigure3(res, docs, dict, 0, "x", rheology.Bavarois.EmulsionFeatures(), 1); err == nil {
		t.Error("1 bin should fail")
	}
	if _, err := BuildFigure3(res, docs, dict, 1, "x", rheology.Bavarois.EmulsionFeatures(), 100); err == nil {
		t.Error("more bins than members should fail")
	}
}

func TestBuildFigure4(t *testing.T) {
	res, docs, dict := figFixture(t)
	fig, err := BuildFigure4(res, docs, dict, 0, "Bavarois", rheology.Bavarois.EmulsionFeatures())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 40 {
		t.Fatalf("points = %d", len(fig.Points))
	}
	// Near-dish points (low KL = Bavarois-like) sit right (harder) and
	// up (more cohesive/elastic) of the topic star.
	h, c := fig.NearMeanKL(0.25)
	if h <= fig.StarX {
		t.Errorf("near-dish hardness %.3f should exceed star %.3f", h, fig.StarX)
	}
	if c <= fig.StarY {
		t.Errorf("near-dish cohesiveness %.3f should exceed star %.3f", c, fig.StarY)
	}
	// Empty topic errors.
	if _, err := BuildFigure4(res, docs, dict, 5, "x", rheology.Bavarois.EmulsionFeatures()); err == nil {
		t.Error("missing topic should fail")
	}
}

func TestEmulsionKLProperties(t *testing.T) {
	bav := rheology.Bavarois.EmulsionFeatures()
	plain := recipe.FeatureVector(make([]float64, recipe.NumEmulsions))
	if d := emulsionKL(bav, bav, smoothingEps); d > 1e-9 {
		t.Errorf("self KL = %g", d)
	}
	if d := emulsionKL(bav, plain, smoothingEps); d <= 0 {
		t.Errorf("cross KL = %g", d)
	}
	// Milk jelly emulsions are closer to milk-only than Bavarois is.
	milkOnly := recipe.FeatureVector([]float64{0, 0, 0, 0, 0.7, 0})
	mj := rheology.MilkJelly.EmulsionFeatures()
	if emulsionKL(mj, milkOnly, smoothingEps) >= emulsionKL(bav, milkOnly, smoothingEps) {
		t.Error("milk jelly should be nearer a milk-only recipe than Bavarois")
	}
}

func TestFig3BinFractions(t *testing.T) {
	b := Fig3Bin{Hard: 3, Soft: 1, Elastic: 0, Cohesive: 0}
	if b.HardFraction() != 0.75 {
		t.Errorf("hard fraction = %g", b.HardFraction())
	}
	if !math.IsNaN(b.ElasticFraction()) {
		t.Error("empty elastic fraction should be NaN")
	}
}
