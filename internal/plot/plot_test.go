package plot

import (
	"strings"
	"testing"

	"repro/internal/linkage"
	"repro/internal/rheology"
)

func TestFigure2SVG(t *testing.T) {
	curve := rheology.Simulate(rheology.Attributes{Hardness: 2.78, Cohesiveness: 0.31, Adhesiveness: 0.42})
	svg := Figure2SVG(curve, "TPA curve")
	for _, want := range []string{"<svg", "</svg>", "polyline", "TPA curve"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Degenerate curve must not panic or divide by zero.
	empty := Figure2SVG(rheology.Curve{DT: 0.01}, "empty")
	if !strings.Contains(empty, "</svg>") {
		t.Error("degenerate curve render broken")
	}
}

func TestFigure3SVG(t *testing.T) {
	fig := linkage.Figure3{
		Dish:  "Bavarois",
		Topic: 3,
		Bins: []linkage.Fig3Bin{
			{MeanKL: 0.1, Recipes: 10, Hard: 8, Soft: 1, Elastic: 6, Cohesive: 2},
			{MeanKL: 0.9, Recipes: 10, Hard: 4, Soft: 4, Elastic: 1, Cohesive: 4},
		},
	}
	svg := Figure3SVG(fig)
	for _, want := range []string{"<svg", "Bavarois", "hard (red)", "elastic (blue)", "rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	// All-zero bins must not panic.
	zero := Figure3SVG(linkage.Figure3{Dish: "x", Bins: []linkage.Fig3Bin{{}}})
	if !strings.Contains(zero, "</svg>") {
		t.Error("zero bins render broken")
	}
}

func TestFigure4SVG(t *testing.T) {
	fig := linkage.Figure4{
		Dish:  "Milk jelly",
		Topic: 3,
		Points: []linkage.Fig4Point{
			{RecipeID: "a", Hardness: 0.8, Cohesiveness: 0.1, KL: 0.05},
			{RecipeID: "b", Hardness: -0.3, Cohesiveness: -0.5, KL: 2.0},
		},
		StarX: 0.2, StarY: -0.1,
	}
	svg := Figure4SVG(fig)
	for _, want := range []string{"<svg", "Milk jelly", "circle", "polygon"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	if got := strings.Count(svg, "<circle"); got != 2 {
		t.Errorf("%d circles, want 2", got)
	}
}

func TestHeatColorRange(t *testing.T) {
	for _, tt := range []float64{-1, 0, 0.5, 1, 2} {
		c := heatColor(tt)
		if !strings.HasPrefix(c, "rgb(") {
			t.Errorf("heatColor(%g) = %q", tt, c)
		}
	}
	if heatColor(0) == heatColor(1) {
		t.Error("extremes should differ")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&c`); got != "a&lt;b&gt;&amp;c" {
		t.Errorf("escape = %q", got)
	}
}
