package plot

import (
	"fmt"
	"math"

	"repro/internal/linkage"
	"repro/internal/rheology"
)

// Figure2SVG renders a simulated TPA force-time curve.
func Figure2SVG(curve rheology.Curve, title string) string {
	const w, h = 640, 360
	const mL, mR, mT, mB = 50.0, 20.0, 40.0, 40.0
	c := newCanvas(w, h)
	c.text(mL, 24, 14, title)

	minF, maxF := 0.0, 0.0
	for _, p := range curve.Points {
		minF = math.Min(minF, p.F)
		maxF = math.Max(maxF, p.F)
	}
	if maxF == minF {
		maxF = minF + 1
	}
	dur := curve.Duration()
	if dur == 0 {
		dur = 1
	}
	x := func(t float64) float64 { return mL + t/dur*(w-mL-mR) }
	y := func(f float64) float64 { return mT + (maxF-f)/(maxF-minF)*(h-mT-mB) }

	// Axes: time along zero-force line.
	c.line(mL, y(0), w-mR, y(0), "#888", 1)
	c.line(mL, mT, mL, h-mB, "#888", 1)
	c.text(8, y(0)+4, 11, "0")
	c.text(8, mT+10, 11, fmt.Sprintf("%.1f", maxF))
	c.text(w-mR-60, h-8, 11, fmt.Sprintf("%.1fs", dur))

	pts := make([][2]float64, len(curve.Points))
	for i, p := range curve.Points {
		pts[i] = [2]float64{x(p.T), y(p.F)}
	}
	c.polyline(pts, "rgb(40,80,200)", 1.6)
	return c.String()
}

// Figure3SVG renders the paired hard/soft and elastic/cohesive
// histograms of one dish.
func Figure3SVG(fig linkage.Figure3) string {
	const w, h = 720, 340
	const mL, mT, mB = 50.0, 50.0, 60.0
	c := newCanvas(w, h)
	c.text(mL, 24, 14, fmt.Sprintf("Figure 3 — %s (topic %d), bins by emulsion-KL", fig.Dish, fig.Topic))

	maxCount := 1
	for _, b := range fig.Bins {
		for _, v := range []int{b.Hard, b.Soft, b.Elastic, b.Cohesive} {
			if v > maxCount {
				maxCount = v
			}
		}
	}
	panelW := (w - 2*mL) / 2
	barsPerBin := 2
	groupW := float64(panelW) / float64(len(fig.Bins))
	barW := groupW/float64(barsPerBin) - 4

	draw := func(x0 float64, label string, a, b func(linkage.Fig3Bin) int, colorA, colorB string) {
		c.text(x0, mT-8, 12, label)
		for i, bin := range fig.Bins {
			gx := x0 + float64(i)*groupW
			for j, get := range []func(linkage.Fig3Bin) int{a, b} {
				v := get(bin)
				bh := float64(v) / float64(maxCount) * (h - mT - mB)
				color := colorA
				if j == 1 {
					color = colorB
				}
				c.rect(gx+float64(j)*(barW+2), h-mB-bh, barW, bh, color)
			}
			c.text(gx, h-mB+16, 10, fmt.Sprintf("%.1f", bin.MeanKL))
		}
	}
	draw(mL, "hard (red) vs soft (gray)",
		func(b linkage.Fig3Bin) int { return b.Hard },
		func(b linkage.Fig3Bin) int { return b.Soft },
		"rgb(200,60,60)", "rgb(170,170,170)")
	draw(mL+float64(panelW)+10, "elastic (blue) vs cohesive (gray)",
		func(b linkage.Fig3Bin) int { return b.Elastic },
		func(b linkage.Fig3Bin) int { return b.Cohesive },
		"rgb(60,90,200)", "rgb(170,170,170)")
	c.text(mL, h-18, 11, "bins ordered by KL divergence of emulsion concentrations to the dish (near → far)")
	return c.String()
}

// Figure4SVG renders the hardness × cohesiveness scatter with
// KL-colored points and the topic-centroid star.
func Figure4SVG(fig linkage.Figure4) string {
	const w, h = 520, 520
	const m = 60.0
	c := newCanvas(w, h)
	c.text(m, 24, 14, fmt.Sprintf("Figure 4 — %s (topic %d)", fig.Dish, fig.Topic))

	x := func(v float64) float64 { return m + (v+1)/2*(w-2*m) }
	y := func(v float64) float64 { return h - m - (v+1)/2*(h-2*m) }
	c.line(m, y(0), w-m, y(0), "#bbb", 1)
	c.line(x(0), m, x(0), h-m, "#bbb", 1)
	c.text(w-m-60, y(0)-6, 11, "hardness →")
	c.text(x(0)+6, m+10, 11, "cohesiveness ↑")

	maxKL := 0.0
	for _, p := range fig.Points {
		if p.KL > maxKL && !math.IsInf(p.KL, 0) {
			maxKL = p.KL
		}
	}
	if maxKL == 0 {
		maxKL = 1
	}
	for _, p := range fig.Points {
		t := p.KL / maxKL
		// Slight deterministic jitter by index hash keeps coincident
		// category-balance points visible.
		c.circle(x(p.Hardness), y(p.Cohesiveness), 3.2, heatColor(t))
	}
	c.star(x(fig.StarX), y(fig.StarY), 10, "gold")
	c.text(m, h-20, 11, "red = low emulsion-KL to the dish, blue = far; star = topic mean")
	return c.String()
}
