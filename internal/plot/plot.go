// Package plot renders the paper's figures as standalone SVG files —
// the force-time curve of Figure 2, the KL-ordered histograms of
// Figure 3 and the hardness × cohesiveness scatter of Figure 4 — using
// only the standard library.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// canvas accumulates SVG elements.
type canvas struct {
	w, h int
	sb   strings.Builder
}

func newCanvas(w, h int) *canvas {
	c := &canvas{w: w, h: h}
	fmt.Fprintf(&c.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

func (c *canvas) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (c *canvas) polyline(points [][2]float64, stroke string, width float64) {
	var pts []string
	for _, p := range points {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", p[0], p[1]))
	}
	fmt.Fprintf(&c.sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		strings.Join(pts, " "), stroke, width)
}

func (c *canvas) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&c.sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

func (c *canvas) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (c *canvas) text(x, y float64, size int, s string) {
	fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="%d">%s</text>`+"\n",
		x, y, size, escape(s))
}

func (c *canvas) star(x, y, r float64, fill string) {
	var pts []string
	for i := 0; i < 10; i++ {
		rr := r
		if i%2 == 1 {
			rr = r / 2.5
		}
		a := float64(i)*math.Pi/5 - math.Pi/2
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x+rr*math.Cos(a), y+rr*math.Sin(a)))
	}
	fmt.Fprintf(&c.sb, `<polygon points="%s" fill="%s" stroke="black" stroke-width="0.7"/>`+"\n",
		strings.Join(pts, " "), fill)
}

func (c *canvas) String() string {
	return c.sb.String() + "</svg>\n"
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// heatColor maps t ∈ [0,1] (0 = near/red, 1 = far/blue) to a color, the
// KL coloring of Figures 3-4.
func heatColor(t float64) string {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	r := int(220 * (1 - t))
	b := int(220 * t)
	return fmt.Sprintf("rgb(%d,60,%d)", r+35, b+35)
}
