package pipeline

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/lexicon"
	"repro/internal/recipe"
)

// testOptions shrinks the run for test speed.
func testOptions() Options {
	opts := DefaultOptions()
	opts.Corpus.Scale = 0.15
	opts.Model.Iterations = 150
	return opts
}

func runTestPipeline(t *testing.T, opts Options) *Output {
	t.Helper()
	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunRecoversTopics(t *testing.T) {
	out := runTestPipeline(t, testOptions())
	if len(out.Docs) == 0 || len(out.Docs) != len(out.Kept) {
		t.Fatalf("docs/kept mismatch: %d vs %d", len(out.Docs), len(out.Kept))
	}
	if out.Model.V != out.Dict.Len() {
		t.Errorf("model vocab %d, dictionary %d", out.Model.V, out.Dict.Len())
	}
	truth := make([]int, len(out.Docs))
	for i, d := range out.Docs {
		truth[i] = d.Truth
	}
	c, err := eval.NewContingency(out.Model.Assign(), truth)
	if err != nil {
		t.Fatal(err)
	}
	if p := c.Purity(); p < 0.75 {
		t.Errorf("purity = %.3f, want ≥ 0.75", p)
	}
	if n := c.NMI(); n < 0.55 {
		t.Errorf("NMI = %.3f, want ≥ 0.55", n)
	}
}

func TestRunDocsAlignWithModel(t *testing.T) {
	out := runTestPipeline(t, testOptions())
	if len(out.Model.Theta) != len(out.Docs) {
		t.Fatalf("θ rows %d, docs %d", len(out.Model.Theta), len(out.Docs))
	}
	for i, d := range out.Docs {
		if d.RecipeID != out.Kept[i].ID {
			t.Fatalf("doc %d is %s but kept recipe is %s", i, d.RecipeID, out.Kept[i].ID)
		}
		if len(d.Gel) != recipe.NumGels || len(d.Emulsion) != recipe.NumEmulsions {
			t.Fatalf("doc %d feature dims %d/%d", i, len(d.Gel), len(d.Emulsion))
		}
		if len(d.TermIDs) == 0 {
			t.Fatalf("doc %d has no terms", i)
		}
	}
}

func TestRunFiltersFruitHeavy(t *testing.T) {
	opts := testOptions()
	opts.Corpus.FruitHeavyRate = 0.5
	out := runTestPipeline(t, opts)
	if out.FilterStats.TooUnrelated == 0 {
		t.Error("fruit-heavy recipes should be dropped by the 10% rule")
	}
	for _, r := range out.Kept {
		if f := r.UnrelatedFraction(); f > opts.MaxUnrelated+1e-9 {
			t.Errorf("%s survived with unrelated share %.3f", r.ID, f)
		}
	}
}

func TestRunW2VFilterExcludesCrispyTerms(t *testing.T) {
	// Full corpus scale: word2vec needs text volume before rare terms
	// embed reliably (the paper trained on its full 63k-recipe crawl).
	opts := DefaultOptions()
	opts.Corpus.ConfoundRate = 0.3
	opts.Model.Iterations = 50
	out := runTestPipeline(t, opts)
	found := false
	for term := range out.ExcludedTerms {
		t2, ok := out.Dict.ByKana(term)
		if !ok {
			t.Errorf("excluded term %q not in dictionary", term)
			continue
		}
		if !t2.GelRelated {
			found = true
		}
	}
	if !found {
		t.Errorf("no non-gel term excluded; excluded = %v", out.ExcludedTerms)
	}
	// Core single-term topics must survive the filter.
	for _, protected := range []string{"ぷるぷる", "ふわふわ", "ふるふる"} {
		if _, excluded := out.ExcludedTerms[protected]; excluded {
			t.Errorf("filter wrongly excluded %s", protected)
		}
	}
	// And excluded terms must not appear in any doc.
	for _, d := range out.Docs {
		for _, id := range d.TermIDs {
			if _, excluded := out.ExcludedTerms[out.Dict.Term(id).Kana]; excluded {
				t.Fatalf("excluded term %s still present in doc %s", out.Dict.Term(id).Kana, d.RecipeID)
			}
		}
	}
}

func TestRunWithoutW2VFilter(t *testing.T) {
	opts := testOptions()
	opts.UseW2VFilter = false
	out := runTestPipeline(t, opts)
	if out.W2V != nil || len(out.ExcludedTerms) != 0 {
		t.Error("filter disabled but artifacts present")
	}
}

func TestRunOnRecipesCustomCorpus(t *testing.T) {
	mk := func(id, desc string) *recipe.Recipe {
		r := &recipe.Recipe{
			ID:          id,
			Description: desc,
			Ingredients: []recipe.Ingredient{
				{Name: "ゼラチン", Amount: "5g"},
				{Name: "水", Amount: "400ml"},
			},
		}
		if err := r.Resolve(); err != nil {
			t.Fatal(err)
		}
		r.Truth = -1
		return r
	}
	var recipes []*recipe.Recipe
	for i := 0; i < 30; i++ {
		desc := "ぷるぷるのゼリーです。"
		if i%2 == 0 {
			desc = "かたいゼリーです。どっしりしています。"
		}
		recipes = append(recipes, mk(string(rune('a'+i%26))+"x", desc))
	}
	opts := testOptions()
	opts.UseW2VFilter = false
	opts.Model.K = 2
	opts.Model.Iterations = 60
	out, err := RunOnRecipes(recipes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Docs) != 30 {
		t.Errorf("kept %d docs", len(out.Docs))
	}
}

func TestRunFunnelReproducesCollectionStats(t *testing.T) {
	opts := DefaultOptions()
	opts.Corpus = corpus.FunnelConfig(0.04)
	opts.Model.Iterations = 40
	out := runTestPipeline(t, opts)
	// Most generated recipes are untagged or fruit-heavy and must drop.
	if out.FilterStats.NoTexture == 0 {
		t.Error("funnel should drop untagged recipes")
	}
	if out.FilterStats.TooUnrelated == 0 {
		t.Error("funnel should drop fruit-heavy recipes")
	}
	keptShare := float64(len(out.Kept)) / float64(len(out.AllRecipes))
	// Paper: 3,000 of 63,000 ≈ 4.8%.
	if keptShare < 0.01 || keptShare > 0.15 {
		t.Errorf("kept share = %.3f, want ≈ 0.05", keptShare)
	}
}

func TestIngredientWordLists(t *testing.T) {
	unrel := UnrelatedIngredientWords()
	gels := GelIngredientWords()
	if len(unrel) == 0 || len(gels) == 0 {
		t.Fatal("empty word lists")
	}
	seen := make(map[string]bool)
	for _, w := range gels {
		seen[w] = true
	}
	for _, w := range unrel {
		if seen[w] {
			t.Errorf("%q in both gel and unrelated lists", w)
		}
	}
}

func TestTermIDsExclusion(t *testing.T) {
	dict := lexicon.Default()
	out := &Output{Dict: dict, ExcludedTerms: map[string][]string{"さくさく": {"なっつ"}}}
	r := &recipe.Recipe{Description: "ぷるぷるでさくさくです"}
	ids := out.termIDs(r)
	if len(ids) != 1 {
		t.Fatalf("got %d ids", len(ids))
	}
	if dict.Term(ids[0]).Romaji != "purupuru" {
		t.Errorf("kept %s", dict.Term(ids[0]).Romaji)
	}
}

func TestRunErrors(t *testing.T) {
	opts := testOptions()
	opts.Corpus.Scale = -1
	if _, err := Run(opts); err == nil {
		t.Error("bad corpus config should fail")
	}
	// All recipes filtered out.
	opts = testOptions()
	opts.UseW2VFilter = false
	empty := &recipe.Recipe{ID: "x", Description: "no terms here", Ingredients: []recipe.Ingredient{{Name: "水", Amount: "100ml"}}}
	if err := empty.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOnRecipes([]*recipe.Recipe{empty}, opts); err == nil {
		t.Error("no survivors should fail")
	}
}
