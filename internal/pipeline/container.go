// Durable container format (format version 2).
//
// Everything the pipeline persists — model bundles, fit checkpoints —
// shares one on-disk envelope built for crash safety and integrity:
//
//	offset 0   magic "RHEODUR1" (8 bytes)
//	offset 8   header length H, uint32 big-endian
//	offset 12  header: H bytes of JSON
//	           {"format":2,"kind":"bundle","schema":1,
//	            "payload_len":N,"sha256":"<hex digest>"}
//	offset 12+H  payload: N bytes (gzip-compressed JSON document)
//	then EOF — trailing bytes are corruption, not slack.
//
// The length-prefixed header means a torn write is detected before any
// payload byte is parsed; the SHA-256 digest catches bit flips that
// gzip's CRC-32 window can miss; the kind field stops a checkpoint from
// being loaded as a bundle; and the format version lets a future layout
// be rejected cleanly instead of misparsed. Format version 1 is the
// legacy naked gzip+JSON bundle, still readable (detected by the gzip
// magic bytes) but no longer written.
package pipeline

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

const (
	containerMagic    = "RHEODUR1"
	containerFormat   = 2
	maxHeaderLen      = 1 << 16 // a header is a few hundred bytes; anything huge is garbage
	maxPayloadLen     = 1 << 31 // 2 GiB; beyond this the length field itself is suspect
	kindBundle        = "bundle"
	kindCheckpoint    = "checkpoint"
	kindShardStats    = "shardstats"
	kindShardManifest = "shardmanifest"
)

// Typed load errors. Every rejected load wraps exactly one of these,
// so callers can distinguish "the file is damaged" (retry from a
// replica, refit) from "the file is from a newer build" (upgrade) from
// "wrong file" (operator error) with errors.Is. The underlying cause
// (io.ErrUnexpectedEOF, gzip.ErrChecksum, a JSON syntax error) is also
// wrapped and remains inspectable.
var (
	// ErrCorrupt marks truncated, bit-flipped, or trailing-garbage input.
	ErrCorrupt = errors.New("durable payload corrupt")
	// ErrVersion marks a container or schema version this build cannot read.
	ErrVersion = errors.New("durable format version unsupported")
	// ErrKind marks a structurally valid container of the wrong kind.
	ErrKind = errors.New("durable container kind mismatch")
)

// containerHeader is the JSON header between the magic and the payload.
type containerHeader struct {
	Format     int    `json:"format"`
	Kind       string `json:"kind"`
	Schema     int    `json:"schema"`
	PayloadLen int64  `json:"payload_len"`
	SHA256     string `json:"sha256"`

	// Health is the checkpoint health digest (kind "checkpoint" only).
	// Optional by design: readers ignore an absent digest (files from
	// older writers) and older readers ignore the extra field, so no
	// schema bump is needed. It lives in the header — parsed before any
	// payload byte — so a supervisor can skip a corrupt-by-divergence
	// checkpoint without decompressing the diverged state.
	Health *CheckpointHealth `json:"health,omitempty"`
}

// writeContainer wraps payload in the format-2 envelope. health may be
// nil (bundles; legacy-shaped checkpoints in tests).
func writeContainer(w io.Writer, kind string, schema int, payload []byte, health *CheckpointHealth) error {
	digest := sha256.Sum256(payload)
	hdr, err := json.Marshal(containerHeader{
		Format:     containerFormat,
		Kind:       kind,
		Schema:     schema,
		PayloadLen: int64(len(payload)),
		SHA256:     hex.EncodeToString(digest[:]),
		Health:     health,
	})
	if err != nil {
		return fmt.Errorf("pipeline: encoding container header: %w", err)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	for _, chunk := range [][]byte{[]byte(containerMagic), lenBuf[:], hdr, payload} {
		if _, err := w.Write(chunk); err != nil {
			return fmt.Errorf("pipeline: writing container: %w", err)
		}
	}
	return nil
}

// BundleDigest parses the format-2 container envelope in b and returns
// the hex SHA-256 payload digest from its header, after verifying that
// the digest matches the payload bytes, the container kind is
// "bundle", and nothing trails the payload. This digest is the content
// address a bundle is stored and fetched under (internal/storage): two
// byte-identical fitted models share one digest, and a fetched blob
// whose recomputed digest disagrees is corruption, not a model.
//
// The gzip payload itself is NOT decompressed or decoded — digest
// extraction must stay cheap enough to run on every registry publish
// and fetch. Use LoadBundle for full validation.
func BundleDigest(b []byte) (string, error) {
	r := bytes.NewReader(b)
	var magic [len(containerMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return "", fmt.Errorf("pipeline: bundle magic missing: %w: %w", ErrCorrupt, err)
	}
	if string(magic[:]) != containerMagic {
		return "", fmt.Errorf("pipeline: not a bundle container: %w", ErrCorrupt)
	}
	_, hdr, err := readContainer(r, kindBundle)
	if err != nil {
		return "", err
	}
	return hdr.SHA256, nil
}

// readContainer parses a format-2 envelope whose magic has already
// been consumed by the caller, verifies the digest, and returns the
// payload with the full header (schema version, health digest).
func readContainer(r io.Reader, wantKind string) ([]byte, containerHeader, error) {
	var hdr containerHeader
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, hdr, fmt.Errorf("pipeline: container header length missing: %w: %w", ErrCorrupt, err)
	}
	hdrLen := binary.BigEndian.Uint32(lenBuf[:])
	if hdrLen == 0 || hdrLen > maxHeaderLen {
		return nil, hdr, fmt.Errorf("pipeline: container header length %d implausible: %w", hdrLen, ErrCorrupt)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdrBytes); err != nil {
		return nil, hdr, fmt.Errorf("pipeline: container header truncated: %w: %w", ErrCorrupt, err)
	}
	if err := json.Unmarshal(hdrBytes, &hdr); err != nil {
		return nil, hdr, fmt.Errorf("pipeline: container header unparseable: %w: %w", ErrCorrupt, err)
	}
	if hdr.Format != containerFormat {
		return nil, hdr, fmt.Errorf("pipeline: container format %d, this build reads %d: %w",
			hdr.Format, containerFormat, ErrVersion)
	}
	if hdr.Kind != wantKind {
		return nil, hdr, fmt.Errorf("pipeline: container holds a %q, want a %q: %w", hdr.Kind, wantKind, ErrKind)
	}
	if hdr.PayloadLen < 0 || hdr.PayloadLen > maxPayloadLen {
		return nil, hdr, fmt.Errorf("pipeline: payload length %d implausible: %w", hdr.PayloadLen, ErrCorrupt)
	}
	payload := make([]byte, hdr.PayloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, hdr, fmt.Errorf("pipeline: payload truncated: %w: %w", ErrCorrupt, err)
	}
	// A container is exactly one envelope; bytes past the declared
	// payload mean the file was overwritten, concatenated, or the
	// header lies — none of which should load silently.
	var trailer [1]byte
	if n, _ := io.ReadFull(r, trailer[:]); n != 0 {
		return nil, hdr, fmt.Errorf("pipeline: %d+ trailing bytes after payload: %w", n, ErrCorrupt)
	}
	digest := sha256.Sum256(payload)
	want, err := hex.DecodeString(hdr.SHA256)
	if err != nil || len(want) != sha256.Size {
		return nil, hdr, fmt.Errorf("pipeline: container digest unparseable: %w", ErrCorrupt)
	}
	if !bytes.Equal(digest[:], want) {
		return nil, hdr, fmt.Errorf("pipeline: payload digest mismatch (bit flip or torn write): %w", ErrCorrupt)
	}
	return payload, hdr, nil
}
