package pipeline

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SaveBundleFile persists the bundle to path crash-safely: the bytes go
// to a temp file in the same directory, are fsynced, and only then
// atomically renamed over the destination. A crash at any point leaves
// either the old file or the new one — never a torn hybrid.
func (o *Output) SaveBundleFile(path string) error {
	return AtomicWriteFile(path, func(w *bufio.Writer) error {
		return o.SaveBundle(w)
	})
}

// LoadBundleFile opens path and loads it with LoadBundle.
func LoadBundleFile(path string) (*Output, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening bundle file: %w", err)
	}
	defer f.Close()
	out, err := LoadBundle(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// tempSuffix marks this package's atomic-write temp files:
// <base>.tmp-<random>. The suffix is what the stale sweep matches on.
const tempSuffix = ".tmp-"

// staleTempAge is how old a leftover temp file must be before the
// sweep reclaims it. The age gate keeps a sweep from deleting a temp
// that a concurrent writer to the same path is still filling.
const staleTempAge = 10 * time.Minute

// AtomicWriteFile streams write's output into a temp file next to
// path, fsyncs it, renames it into place, and fsyncs the directory so
// the rename itself is durable. The temp file is removed on every
// in-process failure (encode error, flush, fsync, chmod, rename), and
// each call also sweeps temp files stranded by callers that died
// between creating a temp and cleaning it up — a crash or kill -9
// leaves a .tmp-* behind that no defer can reclaim, so the next
// successful writer reclaims it instead.
func AtomicWriteFile(path string, write func(*bufio.Writer) error) error {
	dir := filepath.Dir(path)
	base := filepath.Base(path)
	sweepStaleTemps(dir, base)

	tmp, err := os.CreateTemp(dir, base+tempSuffix+"*")
	if err != nil {
		return fmt.Errorf("pipeline: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Belt and braces: the error paths below remove the temp
	// explicitly; this defer covers a panicking write callback. Once
	// the rename lands, tmpName no longer exists and the Remove is a
	// harmless ENOENT.
	defer os.Remove(tmpName)

	fail := func(err error) error {
		tmp.Close()
		if rmErr := os.Remove(tmpName); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
			return fmt.Errorf("%w (and removing temp %s: %v)", err, tmpName, rmErr)
		}
		return err
	}

	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("pipeline: writing %s: %w", tmpName, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("pipeline: fsync %s: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("pipeline: closing %s: %w", tmpName, err))
	}
	// CreateTemp makes 0600; these are shareable artifacts, not secrets.
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fail(fmt.Errorf("pipeline: chmod %s: %w", tmpName, err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fail(fmt.Errorf("pipeline: renaming into place: %w", err))
	}
	// Make the rename durable: fsync the containing directory. Some
	// filesystems don't support fsync on directories; that's not fatal.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// sweepStaleTemps removes <base>.tmp-* leftovers in dir older than
// staleTempAge: the droppings of writers that crashed mid-write. Young
// temps are spared (they may belong to a live concurrent writer), and
// every error is ignored — the sweep is opportunistic hygiene, never a
// reason to fail the write that triggered it.
func sweepStaleTemps(dir, base string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	prefix := base + tempSuffix
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		os.Remove(filepath.Join(dir, e.Name()))
	}
}
