package pipeline

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// SaveBundleFile persists the bundle to path crash-safely: the bytes go
// to a temp file in the same directory, are fsynced, and only then
// atomically renamed over the destination. A crash at any point leaves
// either the old file or the new one — never a torn hybrid.
func (o *Output) SaveBundleFile(path string) error {
	return writeFileAtomic(path, func(w *bufio.Writer) error {
		return o.SaveBundle(w)
	})
}

// LoadBundleFile opens path and loads it with LoadBundle.
func LoadBundleFile(path string) (*Output, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening bundle file: %w", err)
	}
	defer f.Close()
	out, err := LoadBundle(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// writeFileAtomic streams write's output into a temp file next to path,
// fsyncs it, renames it into place, and fsyncs the directory so the
// rename itself is durable.
func writeFileAtomic(path string, write func(*bufio.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pipeline: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	// On any failure below, remove the temp file; ignore errors — the
	// prefix pattern makes leftovers identifiable anyway.
	defer os.Remove(tmpName)

	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("pipeline: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("pipeline: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("pipeline: closing %s: %w", tmpName, err)
	}
	// CreateTemp makes 0600; these are shareable artifacts, not secrets.
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("pipeline: chmod %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("pipeline: renaming into place: %w", err)
	}
	// Make the rename durable: fsync the containing directory. Some
	// filesystems don't support fsync on directories; that's not fatal.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
