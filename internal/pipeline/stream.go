// Streaming corpus ingestion: the record-at-a-time front half of the
// pipeline, for corpora too large to hold as []*recipe.Recipe. The
// source is read twice — once to train the word2vec relatedness filter
// on a bounded reservoir of tokenized descriptions, once to filter and
// featurize — so peak memory is O(reservoir + kept documents), never
// O(corpus).
package pipeline

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/recipe"
	"repro/internal/stats"
)

// StreamSource reopens the corpus stream. RunStream reads it twice
// (word2vec pass, ingestion pass), so the source must yield the same
// bytes on each call — a file, an object-store blob, a deterministic
// generator.
type StreamSource func() (io.ReadCloser, error)

// FileSource adapts a JSONL (or JSON-array) corpus file on disk.
func FileSource(path string) StreamSource {
	return func() (io.ReadCloser, error) { return os.Open(path) }
}

// GeneratedSource streams n synthetic recipes straight out of the
// corpus generator through a pipe — the million-recipe harness with no
// corpus file and no materialized corpus. GenerateTo is deterministic
// for a fixed config, so each reopen replays identical bytes, which is
// exactly the reopenable-stream contract RunStream needs.
func GeneratedSource(cfg corpus.Config, n int) StreamSource {
	return func() (io.ReadCloser, error) {
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(corpus.GenerateTo(cfg, pw, n)) }()
		return pr, nil
	}
}

// maxFilterSentences bounds the word2vec training reservoir: enough
// sentences that the relatedness filter's neighbourhoods stabilize,
// small enough that a million-recipe stream trains in bounded memory.
// Corpora below the bound train on every sentence, so streaming and
// in-memory runs agree exactly there.
const maxFilterSentences = 20000

// RunStream executes the pipeline on a streamed corpus. It differs
// from RunOnRecipes in what it retains: AllRecipes and Kept stay nil
// (the stream is never materialized), Docs carries the featurized kept
// documents, and Ingest reports every record the lenient decoder or
// amount resolution skipped. Records stream through resolution →
// dataset filters → feature construction one at a time; a malformed
// record skips, it does not abort the corpus.
func RunStream(src StreamSource, opts Options) (*Output, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("%w: RunStream needs a source", ErrOptions)
	}
	out := &Output{Dict: lexicon.Default(), ExcludedTerms: map[string][]string{}}

	if opts.UseW2VFilter {
		start := time.Now()
		if err := out.trainFilterStreaming(src, opts); err != nil {
			return nil, err
		}
		out.recordStage(opts.Metrics, "word2vec_filter", start)
	}

	ingestStart := time.Now()
	data, report, err := out.ingest(src, opts)
	if err != nil {
		return nil, err
	}
	out.Ingest = report
	if opts.Metrics != nil {
		opts.Metrics.Counter("ingest_records_total",
			"Corpus records decoded by streaming ingestion.", nil).Add(int64(report.Decoded))
		opts.Metrics.Counter("ingest_skipped_records_total",
			"Corpus records skipped by streaming ingestion (malformed, oversized, unresolvable).",
			nil).Add(int64(len(report.Skipped)))
	}
	if len(out.Docs) == 0 {
		return nil, fmt.Errorf("pipeline: no recipes survived the filters")
	}
	out.recordStage(opts.Metrics, "dataset_filter", ingestStart)

	if opts.Metrics != nil {
		opts.Model.Hooks = opts.Model.Hooks.Then(SamplerMetrics(opts.Metrics))
	}
	modelStart := time.Now()
	res, incidents, shards, err := fitModel(data, opts)
	out.FitIncidents = incidents
	out.Shards = shards
	if err != nil {
		return nil, fmt.Errorf("pipeline: model: %w", err)
	}
	out.recordStage(opts.Metrics, "model", modelStart)
	out.Model = res
	if _, err := res.BuildKernel(); err != nil {
		return nil, fmt.Errorf("pipeline: fold-in kernel: %w", err)
	}
	return out, nil
}

// trainFilterStreaming is the streaming word2vec pass: tokenize every
// description as it flows by, keep a fixed-size deterministic
// reservoir of sentences, then train on the reservoir. Seeded from the
// model seed so repeated runs exclude the same terms.
func (o *Output) trainFilterStreaming(src StreamSource, opts Options) error {
	tok := o.filterTokenizer()
	rng := stats.NewRNG(opts.Model.Seed, 0x5EED5A3F)
	sentences := make([][]string, 0, maxFilterSentences)
	observed := make(map[string]bool)
	seen := 0
	r, err := src()
	if err != nil {
		return fmt.Errorf("pipeline: opening corpus stream: %w", err)
	}
	defer r.Close()
	_, err = recipe.StreamJSONLenient(r, 0, func(rec *recipe.Recipe) error {
		o.observeDescription(tok, rec.Description, observed, func(sent []string) {
			seen++
			switch {
			case len(sentences) < maxFilterSentences:
				sentences = append(sentences, sent)
			default:
				// Classic reservoir sampling: the j-th sentence replaces a
				// random slot with probability cap/j, so every sentence is
				// retained equiprobably no matter how long the stream runs.
				if j := rng.IntN(seen); j < maxFilterSentences {
					sentences[j] = sent
				}
			}
		})
		return nil
	})
	if err != nil {
		return fmt.Errorf("pipeline: word2vec pass: %w", err)
	}
	return o.trainFilterFromSentences(sentences, observed, opts)
}

// ingest is the second pass: stream records through amount resolution,
// the dataset filters and feature construction, building the model
// input without retaining recipe text. Resolution failures are
// reported as skips alongside the decoder's own.
func (o *Output) ingest(src StreamSource, opts Options) (*core.Data, *recipe.DecodeReport, error) {
	cfg := recipe.FilterConfig{
		MaxUnrelatedFraction: opts.MaxUnrelated,
		RequireGel:           true,
		RequireTexture:       true,
		HasTexture: func(r *recipe.Recipe) bool {
			return len(o.termIDs(r)) > 0
		},
	}
	data := &core.Data{V: o.Dict.Len()}
	r, err := src()
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: opening corpus stream: %w", err)
	}
	defer r.Close()
	var unresolved []recipe.SkippedRecord
	index := 0
	report, err := recipe.StreamJSONLenient(r, 0, func(rec *recipe.Recipe) error {
		i := index
		index++
		if rerr := rec.Resolve(); rerr != nil {
			unresolved = append(unresolved, recipe.SkippedRecord{
				Index: i, Reason: "unresolvable: " + rerr.Error(),
			})
			return nil
		}
		if !cfg.Admit(rec, &o.FilterStats) {
			return nil
		}
		doc := recipe.Doc{
			RecipeID: rec.ID,
			TermIDs:  o.termIDs(rec),
			Gel:      rec.GelFeatures(),
			Emulsion: rec.EmulsionFeatures(),
			Truth:    rec.Truth,
		}
		o.Docs = append(o.Docs, doc)
		data.Words = append(data.Words, doc.TermIDs)
		data.Gel = append(data.Gel, doc.Gel)
		data.Emu = append(data.Emu, doc.Emulsion)
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: ingesting corpus: %w", err)
	}
	report.Decoded -= len(unresolved)
	report.Skipped = append(report.Skipped, unresolved...)
	return data, report, nil
}
