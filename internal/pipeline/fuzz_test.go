package pipeline

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadBundle drives arbitrary bytes through the bundle loader. The
// invariant under fuzzing: LoadBundle never panics, and every rejection
// wraps one of the typed sentinels so callers can always classify the
// failure. Seeds cover both on-disk generations plus the interesting
// damage shapes so the fuzzer starts at the format boundaries instead
// of rediscovering them.
func FuzzLoadBundle(f *testing.F) {
	v2 := validBundleV2(f)
	v1 := validBundleV1(f)
	f.Add(v2)
	f.Add(v1)
	f.Add(v2[:len(v2)/2])                          // torn container
	f.Add(v1[:len(v1)/2])                          // torn gzip
	f.Add([]byte(containerMagic))                  // magic only
	f.Add([]byte{0x1f, 0x8b})                      // gzip magic only
	f.Add(append([]byte(nil), v2...)[:12])         // magic + header length, no header
	f.Add(bytes.Repeat([]byte{0}, 64))             // zeros
	f.Add([]byte(`{"version":1,"docs":[]}`))       // naked JSON, no gzip
	f.Add(append(append([]byte(nil), v2...), '!')) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := LoadBundle(bytes.NewReader(data))
		if err == nil {
			if out == nil || out.Model == nil {
				t.Fatal("nil output without error")
			}
			return
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrKind) {
			t.Fatalf("untyped load error: %v", err)
		}
	})
}

// FuzzShardManifest drives arbitrary bytes through the shard-manifest
// loader: never panic, every rejection typed, every accepted manifest
// internally consistent (Validate runs inside the loader).
func FuzzShardManifest(f *testing.F) {
	dir := f.TempDir()
	if err := SaveShardManifest(dir, validManifest()); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, ShardManifestFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2]) // torn write
	f.Add(good[:12])          // magic + header length only
	f.Add(validBundleV2(f))   // wrong kind
	f.Add([]byte(containerMagic))
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := readShardManifest(bytes.NewReader(data))
		if err == nil {
			if m == nil {
				t.Fatal("nil manifest without error")
			}
			if verr := m.Validate(); verr != nil {
				t.Fatalf("loader accepted an invalid manifest: %v", verr)
			}
			return
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrKind) {
			t.Fatalf("untyped manifest error: %v", err)
		}
	})
}

// FuzzReadCheckpoint gives the checkpoint loader the same treatment.
func FuzzReadCheckpoint(f *testing.F) {
	_, _, snap := checkpointSnapshot(f)
	dir := f.TempDir()
	if err := WriteCheckpointFile(dir, snap); err != nil {
		f.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(validBundleV2(f)) // wrong kind
	f.Add([]byte(containerMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sn, _, err := readCheckpoint(bytes.NewReader(data))
		if err == nil {
			if sn == nil {
				t.Fatal("nil snapshot without error")
			}
			return
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrKind) {
			t.Fatalf("untyped checkpoint error: %v", err)
		}
	})
}
