package pipeline

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestRunRecordsStageTimings: a run with a registry produces the stage
// timings in execution order on the Output and mirrors them (plus the
// sampler sweep series) into the registry.
func TestRunRecordsStageTimings(t *testing.T) {
	reg := obs.NewRegistry()
	opts := testOptions()
	opts.Metrics = reg
	out := runTestPipeline(t, opts)

	want := []string{"corpus", "word2vec_filter", "dataset_filter", "model"}
	if len(out.Timings) != len(want) {
		t.Fatalf("timings = %+v, want stages %v", out.Timings, want)
	}
	for i, st := range out.Timings {
		if st.Stage != want[i] {
			t.Errorf("timings[%d].Stage = %q, want %q", i, st.Stage, want[i])
		}
		if st.Elapsed < 0 {
			t.Errorf("stage %s: negative elapsed %v", st.Stage, st.Elapsed)
		}
	}
	// The model fit dominates a pipeline run.
	if out.Timings[3].Elapsed <= 0 {
		t.Error("model stage recorded no time")
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		`pipeline_stage_seconds{stage="corpus"}`,
		`pipeline_stage_seconds{stage="model"}`,
		"sampler_sweeps_total ",
		"sampler_log_likelihood",
		`sampler_phase_seconds_count{phase="z"}`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
}

// TestRunWithoutMetricsStillTimes: Timings are populated even with no
// registry configured.
func TestRunWithoutMetricsStillTimes(t *testing.T) {
	opts := testOptions()
	opts.UseW2VFilter = false
	out := runTestPipeline(t, opts)
	stages := make([]string, len(out.Timings))
	for i, st := range out.Timings {
		stages[i] = st.Stage
	}
	if len(stages) != 3 || stages[0] != "corpus" || stages[2] != "model" {
		t.Errorf("stages = %v", stages)
	}
}

// TestSamplerMetricsComposes: the adapter composes with a caller hook
// via Then and both fire per sweep.
func TestSamplerMetricsComposes(t *testing.T) {
	reg := obs.NewRegistry()
	fired := 0
	hooks := core.SweepHooks{OnSweep: func(core.SweepStats) { fired++ }}.Then(SamplerMetrics(reg))
	hooks.OnSweep(core.SweepStats{Sweep: 0, Total: time.Millisecond, LogLik: -42, OccupiedTopics: 3, MaxTopicShare: 0.5})
	hooks.OnSweep(core.SweepStats{Sweep: 1, Total: time.Millisecond, LogLik: -40, OccupiedTopics: 3, MaxTopicShare: 0.5})
	if fired != 2 {
		t.Errorf("caller hook fired %d times", fired)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "sampler_sweeps_total 2") {
		t.Errorf("sweep counter missing:\n%s", text)
	}
	if !strings.Contains(text, "sampler_log_likelihood -40") {
		t.Errorf("loglik gauge missing:\n%s", text)
	}
}
