package pipeline

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/recipe"
)

// bytesSource reopens an in-memory corpus — the reopenable-stream
// contract without touching disk.
func bytesSource(b []byte) StreamSource {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(b)), nil
	}
}

func streamCorpus(t testing.TB, scale float64) []byte {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.Scale = scale
	recs, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := corpus.GenerateTo(cfg, &buf, len(recs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunStreamMatchesInMemory: streaming the same corpus bytes that
// RunOnRecipes gets as decoded records must produce the identical
// fitted model — streaming changes memory behaviour, not results.
func TestRunStreamMatchesInMemory(t *testing.T) {
	raw := streamCorpus(t, 0.1)
	opts := testOptions()
	opts.UseW2VFilter = false // the in-memory and reservoir w2v passes see different sentence sets
	opts.Model.Iterations = 60
	opts.Model.BurnIn = 30

	recs, rep, err := recipe.ReadJSONLenient(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 0 {
		t.Fatalf("generated corpus had %d skips", len(rep.Skipped))
	}
	for _, r := range recs {
		if err := r.Resolve(); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := RunOnRecipes(recs, opts)
	if err != nil {
		t.Fatal(err)
	}

	got, err := RunStream(bytesSource(raw), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.AllRecipes != nil || got.Kept != nil {
		t.Fatal("stream run materialized the corpus")
	}
	if got.Ingest == nil {
		t.Fatal("stream run reported no ingest stats")
	}
	if len(got.Docs) != len(ref.Docs) {
		t.Fatalf("stream kept %d docs, in-memory kept %d", len(got.Docs), len(ref.Docs))
	}
	for i := range ref.Docs {
		if got.Docs[i].RecipeID != ref.Docs[i].RecipeID {
			t.Fatalf("doc %d: stream %s vs in-memory %s", i, got.Docs[i].RecipeID, ref.Docs[i].RecipeID)
		}
	}
	for d := range ref.Model.Y {
		if got.Model.Y[d] != ref.Model.Y[d] {
			t.Fatalf("Y[%d] = %d, want %d", d, got.Model.Y[d], ref.Model.Y[d])
		}
		for k := range ref.Model.Theta[d] {
			if got.Model.Theta[d][k] != ref.Model.Theta[d][k] {
				t.Fatalf("Theta[%d][%d] differs", d, k)
			}
		}
	}
	for k := range ref.Model.Phi {
		for v := range ref.Model.Phi[k] {
			if got.Model.Phi[k][v] != ref.Model.Phi[k][v] {
				t.Fatalf("Phi[%d][%d] differs", k, v)
			}
		}
	}
}

// TestRunStreamSkipsBadRecords: malformed lines and unresolvable
// records are reported, not fatal, and do not shift later documents.
func TestRunStreamSkipsBadRecords(t *testing.T) {
	raw := streamCorpus(t, 0.1)
	lines := bytes.Split(bytes.TrimRight(raw, "\n"), []byte("\n"))
	var buf bytes.Buffer
	buf.Write(lines[0])
	buf.WriteByte('\n')
	buf.WriteString("{\"id\": \"broken\",\n") // torn record
	buf.WriteString(`{"id":"r-unresolvable","description":"かたいゼリー","ingredients":[{"name":"gelatin","amount":"???"}]}` + "\n")
	for _, ln := range lines[1:] {
		buf.Write(ln)
		buf.WriteByte('\n')
	}
	opts := testOptions()
	opts.UseW2VFilter = false
	opts.Model.Iterations = 40
	opts.Model.BurnIn = 20

	out, err := RunStream(bytesSource(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ingest == nil || len(out.Ingest.Skipped) == 0 {
		t.Fatal("expected skip reports for damaged records")
	}
	var unresolvable bool
	for _, sk := range out.Ingest.Skipped {
		if strings.HasPrefix(sk.Reason, "unresolvable:") {
			unresolvable = true
		}
	}
	if !unresolvable {
		t.Fatalf("no unresolvable-record skip in %+v", out.Ingest.Skipped)
	}
	if len(out.Docs) == 0 {
		t.Fatal("no documents survived")
	}
}

// TestRunStreamWithW2VFilter: the reservoir-trained filter path runs
// end to end and actually excludes terms.
func TestRunStreamWithW2VFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("word2vec training")
	}
	raw := streamCorpus(t, 0.1)
	opts := testOptions()
	opts.Model.Iterations = 40
	opts.Model.BurnIn = 20
	out, err := RunStream(bytesSource(raw), opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.W2V == nil {
		t.Fatal("no relatedness model was trained")
	}
	if len(out.Docs) == 0 {
		t.Fatal("no documents survived")
	}
}

func TestRunStreamNilSource(t *testing.T) {
	if _, err := RunStream(nil, testOptions()); err == nil {
		t.Fatal("nil source accepted")
	}
}
