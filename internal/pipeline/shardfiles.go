// Durable shard-fit state: the manifest that makes a sharded fit
// resumable and the per-shard statistics files it points at. Both ride
// the format-2 RHEODUR1 container (see container.go), so a torn write,
// bit flip, or wrong-kind file is detected before any byte is trusted.
package pipeline

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
)

// ShardManifestFile is the fixed name of the shard manifest inside a
// shard directory. One file, atomically replaced after every state
// change: a resumed orchestrator has exactly one source of truth.
const ShardManifestFile = "manifest.shards"

const (
	shardManifestSchemaVersion = 1
	shardStatsSchemaVersion    = 1
)

// Shard entry states. A shard is pending until its statistics file is
// durably on disk; there is deliberately no "running" state — a crash
// mid-fit leaves the entry pending and the next run refits it.
const (
	ShardPending = "pending"
	ShardFitted  = "fitted"
)

// ShardIdentity pins everything that determines a sharded fit's
// result. A manifest whose identity does not match the current run
// byte-for-byte describes a different fit; resuming from it would
// silently merge statistics from the wrong model, so the orchestrator
// discards it and refits everything.
type ShardIdentity struct {
	NumDocs        int     `json:"num_docs"`
	V              int     `json:"v"`
	K              int     `json:"k"`
	Iterations     int     `json:"iterations"`
	BurnIn         int     `json:"burn_in"`
	Seed           uint64  `json:"seed"`
	ShardCount     int     `json:"shard_count"`
	Collapsed      bool    `json:"collapsed"`
	Workers        int     `json:"workers"`
	Alpha          float64 `json:"alpha"`
	Gamma          float64 `json:"gamma"`
	UseEmulsion    bool    `json:"use_emulsion"`
	EmulsionWeight float64 `json:"emulsion_weight"`
}

// ShardEntry is one shard's row in the manifest.
type ShardEntry struct {
	// Lo, Hi is the shard's global document range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Seed is the shard chain's seed, derived deterministically from the
	// run seed and the range so a retried or resumed shard replays the
	// same chain.
	Seed uint64 `json:"seed"`
	// State is ShardPending or ShardFitted.
	State string `json:"state"`
	// File names the shard's statistics file inside the shard directory
	// (fitted shards only).
	File string `json:"file,omitempty"`
	// Digest is the hex SHA-256 of the statistics payload, cross-checked
	// against the file's own header on load (fitted shards only).
	Digest string `json:"digest,omitempty"`
	// Resharded marks a shard created by splitting a straggler.
	Resharded bool `json:"resharded,omitempty"`
}

// ShardManifest records the progress of one sharded fit: which shards
// exist, which are durably fitted, and whether the merge completed.
type ShardManifest struct {
	Identity ShardIdentity `json:"identity"`
	Shards   []ShardEntry  `json:"shards"`
	// Merged is set once the merged model was assembled successfully —
	// a resumed run with Merged still false re-merges from the fitted
	// shard files.
	Merged bool `json:"merged"`
	// IngestWatermark is the highest durable-ingest-log sequence number
	// whose record is reflected in the fitted model ("appended-since-fit"
	// watermark). It survives identity changes: each re-fit grows the
	// corpus, so the identity never matches across fits, but the
	// watermark must — it is what tells the refit controller how many
	// accepted records the serving model has not yet learned from.
	// Omitted as zero for manifests that predate online ingestion.
	IngestWatermark uint64 `json:"ingest_watermark,omitempty"`
	// IngestLastFitUnix is when the watermark last advanced — the wall
	// time of the promotion that absorbed those records. Persisted so a
	// restarted server computes model staleness from the last fit, not
	// from the oldest record in the whole ingest log (which the fit
	// already covered). Zero for manifests that predate it.
	IngestLastFitUnix int64 `json:"ingest_last_fit_unix,omitempty"`
}

// Validate checks the manifest's internal consistency: shards sorted
// by Lo, contiguous, covering exactly [0, NumDocs), with legal states
// and a file+digest on every fitted entry. Damaged manifests are
// rejected on load so a resumed orchestrator never trusts them.
func (m *ShardManifest) Validate() error {
	if len(m.Shards) == 0 {
		// A watermark-only manifest — zero identity, no shard rows — is
		// how an unsharded deployment persists its ingest watermark; a
		// zero-everything manifest is still corruption.
		if m.IngestWatermark > 0 && m.Identity == (ShardIdentity{}) {
			return nil
		}
		return fmt.Errorf("pipeline: shard manifest has no shards: %w", ErrCorrupt)
	}
	if !sort.SliceIsSorted(m.Shards, func(i, j int) bool { return m.Shards[i].Lo < m.Shards[j].Lo }) {
		return fmt.Errorf("pipeline: shard manifest entries out of order: %w", ErrCorrupt)
	}
	next := 0
	for i, sh := range m.Shards {
		if sh.Lo != next || sh.Hi <= sh.Lo {
			return fmt.Errorf("pipeline: shard %d covers [%d,%d), want contiguous from %d: %w",
				i, sh.Lo, sh.Hi, next, ErrCorrupt)
		}
		next = sh.Hi
		switch sh.State {
		case ShardPending:
		case ShardFitted:
			if sh.File == "" || sh.Digest == "" {
				return fmt.Errorf("pipeline: fitted shard %d lacks file or digest: %w", i, ErrCorrupt)
			}
		default:
			return fmt.Errorf("pipeline: shard %d has unknown state %q: %w", i, sh.State, ErrCorrupt)
		}
		if sh.File != "" && filepath.Base(sh.File) != sh.File {
			return fmt.Errorf("pipeline: shard %d file %q escapes the shard directory: %w", i, sh.File, ErrCorrupt)
		}
	}
	if next != m.Identity.NumDocs {
		return fmt.Errorf("pipeline: shards cover [0,%d) but the corpus has %d documents: %w",
			next, m.Identity.NumDocs, ErrCorrupt)
	}
	return nil
}

// SaveShardManifest atomically replaces dir/manifest.shards. The
// directory is created if absent.
func SaveShardManifest(dir string, m *ShardManifest) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pipeline: shard dir: %w", err)
	}
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("pipeline: encoding shard manifest: %w", err)
	}
	return AtomicWriteFile(filepath.Join(dir, ShardManifestFile), func(w *bufio.Writer) error {
		return writeContainer(w, kindShardManifest, shardManifestSchemaVersion, payload, nil)
	})
}

// LoadShardManifest reads dir/manifest.shards. A missing file returns
// an error satisfying errors.Is(err, fs.ErrNotExist) — the fresh-start
// signal; damaged files return wrapped ErrCorrupt/ErrVersion/ErrKind.
func LoadShardManifest(dir string) (*ShardManifest, error) {
	path := filepath.Join(dir, ShardManifestFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening shard manifest: %w", err)
	}
	defer f.Close()
	m, err := readShardManifest(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// readShardManifest parses a shard-manifest container stream.
func readShardManifest(r io.Reader) (*ShardManifest, error) {
	var magic [len(containerMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("pipeline: shard manifest magic missing: %w: %w", ErrCorrupt, err)
	}
	if string(magic[:]) != containerMagic {
		return nil, fmt.Errorf("pipeline: not a shard manifest container: %w", ErrCorrupt)
	}
	payload, hdr, err := readContainer(r, kindShardManifest)
	if err != nil {
		return nil, err
	}
	if hdr.Schema > shardManifestSchemaVersion || hdr.Schema < 1 {
		return nil, fmt.Errorf("pipeline: shard manifest schema %d, this build reads ≤ %d: %w",
			hdr.Schema, shardManifestSchemaVersion, ErrVersion)
	}
	m := &ShardManifest{}
	if err := json.Unmarshal(payload, m); err != nil {
		return nil, fmt.Errorf("pipeline: decoding shard manifest: %w: %w", ErrCorrupt, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteShardStatsFile durably writes one shard's statistics to
// dir/name (crash-safe temp+rename) and returns the hex SHA-256 of the
// payload — the digest the manifest records and the loader verifies.
func WriteShardStatsFile(dir, name string, st *core.ShardStats) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("pipeline: shard dir: %w", err)
	}
	var body bytes.Buffer
	gz := gzip.NewWriter(&body)
	if err := st.WriteJSON(gz); err != nil {
		return "", fmt.Errorf("pipeline: encoding shard stats: %w", err)
	}
	if err := gz.Close(); err != nil {
		return "", fmt.Errorf("pipeline: compressing shard stats: %w", err)
	}
	err := AtomicWriteFile(filepath.Join(dir, name), func(w *bufio.Writer) error {
		return writeContainer(w, kindShardStats, shardStatsSchemaVersion, body.Bytes(), nil)
	})
	if err != nil {
		return "", err
	}
	return payloadDigestHex(body.Bytes()), nil
}

// LoadIngestWatermark reads the appended-since-fit watermark from
// dir/manifest.shards. A missing or damaged manifest reads as zero —
// the conservative answer: every ingest-log record counts as unseen,
// and the next re-fit rewrites a clean manifest. Never an error,
// because the watermark is advisory (it sizes the refit trigger);
// correctness comes from the ingest log itself.
func LoadIngestWatermark(dir string) uint64 {
	seq, _ := LoadIngestState(dir)
	return seq
}

// LoadIngestState reads the appended-since-fit watermark and the wall
// time of the fit that set it from dir/manifest.shards, with the same
// zero-on-missing posture as LoadIngestWatermark.
func LoadIngestState(dir string) (seq uint64, lastFitUnix int64) {
	m, err := LoadShardManifest(dir)
	if err != nil {
		return 0, 0
	}
	return m.IngestWatermark, m.IngestLastFitUnix
}

// SaveIngestWatermark durably records seq as the appended-since-fit
// watermark in dir/manifest.shards, stamped with fitUnix (the wall
// time of the promotion advancing it), preserving whatever shard state
// the manifest already holds (read-modify-write under the atomic
// replace). A missing or unreadable manifest gets a fresh
// watermark-only one. Regressions are refused: the watermark is
// monotone, and a re-fit that raced an older save must not roll it
// backwards and re-trigger itself.
func SaveIngestWatermark(dir string, seq uint64, fitUnix int64) error {
	m, err := LoadShardManifest(dir)
	if err != nil {
		m = &ShardManifest{}
	}
	if seq <= m.IngestWatermark {
		return nil
	}
	m.IngestWatermark = seq
	if fitUnix > m.IngestLastFitUnix {
		m.IngestLastFitUnix = fitUnix
	}
	return SaveShardManifest(dir, m)
}

// payloadDigestHex is the container's payload digest, recomputed for
// the manifest record.
func payloadDigestHex(payload []byte) string {
	d := sha256.Sum256(payload)
	return hex.EncodeToString(d[:])
}

// LoadShardStatsFile reads dir/name, verifies the container (magic,
// kind, schema, internal digest) and — when wantDigest is non-empty —
// that the payload digest matches the manifest's record, then restores
// the statistics under the supplied priors. Any mismatch wraps
// ErrCorrupt: the orchestrator treats it as "refit this shard", never
// as data.
func LoadShardStatsFile(dir, name, wantDigest string, gelPrior, emuPrior *stats.NormalWishart) (*core.ShardStats, error) {
	path := filepath.Join(dir, name)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening shard stats: %w", err)
	}
	defer f.Close()
	var magic [len(containerMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("%s: shard stats magic missing: %w: %w", path, ErrCorrupt, err)
	}
	if string(magic[:]) != containerMagic {
		return nil, fmt.Errorf("%s: not a shard stats container: %w", path, ErrCorrupt)
	}
	payload, hdr, err := readContainer(f, kindShardStats)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if hdr.Schema > shardStatsSchemaVersion || hdr.Schema < 1 {
		return nil, fmt.Errorf("%s: shard stats schema %d, this build reads ≤ %d: %w",
			path, hdr.Schema, shardStatsSchemaVersion, ErrVersion)
	}
	if wantDigest != "" && hdr.SHA256 != wantDigest {
		return nil, fmt.Errorf("%s: shard stats digest %.12s…, manifest expects %.12s…: %w",
			path, hdr.SHA256, wantDigest, ErrCorrupt)
	}
	gz, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("%s: opening shard stats payload: %w: %w", path, ErrCorrupt, err)
	}
	defer gz.Close()
	st, err := core.ReadShardStatsJSON(gz, gelPrior, emuPrior)
	if err != nil {
		return nil, fmt.Errorf("%s: decoding shard stats: %w: %w", path, ErrCorrupt, err)
	}
	return st, nil
}
