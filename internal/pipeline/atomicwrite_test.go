package pipeline

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tempLeftovers lists <base>.tmp-* files in dir — what a leaky atomic
// write would strand.
func tempLeftovers(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		if strings.Contains(e.Name(), tempSuffix) {
			got = append(got, e.Name())
		}
	}
	return got
}

// TestAtomicWriteCleansTempOnWriteError: a failing payload encoder
// must not strand its temp file.
func TestAtomicWriteCleansTempOnWriteError(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("encoder exploded")
	err := AtomicWriteFile(filepath.Join(dir, "model.bundle"), func(w *bufio.Writer) error {
		w.WriteString("partial payload")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the encoder's error", err)
	}
	if left := tempLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("temp files leaked on write error: %v", left)
	}
}

// TestAtomicWriteCleansTempOnRenameError: when the rename into place
// fails (here: the destination is a directory), the temp file is
// removed and the destination untouched.
func TestAtomicWriteCleansTempOnRenameError(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "model.bundle")
	// A non-empty directory at the destination makes os.Rename fail the
	// same way a failing disk would at the final step.
	if err := os.MkdirAll(filepath.Join(dest, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := AtomicWriteFile(dest, func(w *bufio.Writer) error {
		_, err := w.WriteString("payload")
		return err
	})
	if err == nil {
		t.Fatal("rename over a non-empty directory should fail")
	}
	if left := tempLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("temp files leaked on rename error: %v", left)
	}
}

// TestAtomicWriteSweepsStaleTemps: temp files stranded by a crashed
// writer (old mtime) are reclaimed by the next write to the same path;
// fresh temps — possibly a live concurrent writer — are spared.
func TestAtomicWriteSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	dest := filepath.Join(dir, "model.bundle")

	stale := filepath.Join(dir, "model.bundle"+tempSuffix+"crashed")
	fresh := filepath.Join(dir, "model.bundle"+tempSuffix+"inflight")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("torn"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if err := AtomicWriteFile(dest, func(w *bufio.Writer) error {
		_, err := w.WriteString("payload")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stale temp survived the sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp was swept (could have been a live writer): %v", err)
	}
	got, err := os.ReadFile(dest)
	if err != nil || string(got) != "payload" {
		t.Fatalf("destination = %q, %v; want the written payload", got, err)
	}
}

// TestSaveBundleFileNoTempLeakOnError: the end-to-end bundle save path
// cleans up after itself when it cannot complete (unfitted output →
// encoder error before any byte hits the temp file’s final home).
func TestSaveBundleFileNoTempLeakOnError(t *testing.T) {
	dir := t.TempDir()
	o := &Output{} // no model: SaveBundle refuses
	if err := o.SaveBundleFile(filepath.Join(dir, "model.bundle")); err == nil {
		t.Fatal("saving an unfitted output should fail")
	}
	if left := tempLeftovers(t, dir); len(left) != 0 {
		t.Fatalf("temp files leaked: %v", left)
	}
}
