package pipeline

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/recipe"
)

// Bundle is the persistent form of a fitted pipeline: everything the
// annotation and linkage layers need, without the raw corpus. Bundles
// let services start from a file instead of refitting at boot.
type bundle struct {
	Version       int                 `json:"version"`
	Docs          []recipe.Doc        `json:"docs"`
	ExcludedTerms map[string][]string `json:"excluded_terms"`
	Model         json.RawMessage     `json:"model"`
}

// bundleSchemaVersion guards the inner document layout. The container
// format (see container.go) versions the envelope; this versions the
// fields inside it.
const bundleSchemaVersion = 1

// SaveBundle writes the fitted state (model, docs, term exclusions) in
// the format-2 durable container: gzipped JSON wrapped in a
// length-prefixed, SHA-256-digested envelope. Use SaveBundleFile for
// the crash-safe on-disk variant.
func (o *Output) SaveBundle(w io.Writer) error {
	if o.Model == nil {
		return fmt.Errorf("pipeline: cannot save an unfitted output")
	}
	payload, err := o.bundlePayload()
	if err != nil {
		return err
	}
	return writeContainer(w, kindBundle, bundleSchemaVersion, payload, nil)
}

// EncodeBundle renders the fitted state as container bytes plus the
// hex SHA-256 payload digest the container carries — the content
// address a registry stores the bundle under. The digest is re-derived
// from the encoded bytes (not trusted from the writer), so the pair is
// self-consistent by construction.
func (o *Output) EncodeBundle() ([]byte, string, error) {
	var buf bytes.Buffer
	if err := o.SaveBundle(&buf); err != nil {
		return nil, "", err
	}
	digest, err := BundleDigest(buf.Bytes())
	if err != nil {
		return nil, "", fmt.Errorf("pipeline: re-reading encoded bundle: %w", err)
	}
	return buf.Bytes(), digest, nil
}

// bundlePayload renders the gzip-compressed JSON bundle body.
func (o *Output) bundlePayload() ([]byte, error) {
	var modelBuf bytes.Buffer
	if err := o.Model.WriteJSON(&modelBuf); err != nil {
		return nil, err
	}
	b := bundle{
		Version:       bundleSchemaVersion,
		Docs:          o.Docs,
		ExcludedTerms: o.ExcludedTerms,
		Model:         json.RawMessage(modelBuf.Bytes()),
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	enc := json.NewEncoder(gz)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(b); err != nil {
		return nil, fmt.Errorf("pipeline: encoding bundle: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("pipeline: closing bundle: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadBundle reads a bundle written by SaveBundle — the format-2
// container — or by the pre-container releases (format 1: a naked
// gzip+JSON stream, detected by its gzip magic). Truncated, bit-flipped
// and trailing-garbage inputs are rejected with an error wrapping
// ErrCorrupt; future container or schema versions with ErrVersion; a
// checkpoint file passed by mistake with ErrKind. The returned Output
// carries the model, docs, exclusions and dictionary; the raw recipe
// corpus is not part of a bundle (AllRecipes and Kept are nil).
func LoadBundle(r io.Reader) (*Output, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(containerMagic))
	switch {
	case err == nil && string(magic) == containerMagic:
		if _, err := br.Discard(len(containerMagic)); err != nil {
			return nil, fmt.Errorf("pipeline: reading bundle: %w", err)
		}
		payload, hdr, err := readContainer(br, kindBundle)
		if err != nil {
			return nil, err
		}
		if hdr.Schema > bundleSchemaVersion || hdr.Schema < 1 {
			return nil, fmt.Errorf("pipeline: bundle schema %d, this build reads ≤ %d: %w",
				hdr.Schema, bundleSchemaVersion, ErrVersion)
		}
		return decodeBundleBody(bytes.NewReader(payload))
	case len(magic) >= 2 && magic[0] == 0x1f && magic[1] == 0x8b:
		// Format 1: the legacy naked gzip stream.
		return decodeBundleBody(br)
	default:
		return nil, fmt.Errorf("pipeline: not a bundle (no container or gzip magic): %w", ErrCorrupt)
	}
}

// decodeBundleBody decompresses and decodes the bundle document,
// mapping every failure mode — torn gzip stream, JSON syntax damage,
// trailing garbage inside or after the document, bad model shape — to
// a wrapped, inspectable error instead of leaking io.ErrUnexpectedEOF
// raw.
func decodeBundleBody(r io.Reader) (*Output, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening bundle: %w: %w", ErrCorrupt, err)
	}
	defer gz.Close()
	gz.Multistream(false)
	var b bundle
	dec := json.NewDecoder(gz)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("pipeline: decoding bundle: %w: %w", ErrCorrupt, err)
	}
	if b.Version > bundleSchemaVersion || b.Version < 1 {
		return nil, fmt.Errorf("pipeline: bundle schema %d, this build reads ≤ %d: %w",
			b.Version, bundleSchemaVersion, ErrVersion)
	}
	// Drain the decoder's buffer and the rest of the gzip stream: this
	// catches trailing garbage after the JSON document AND forces the
	// gzip footer checksum to be verified (a truncated stream fails
	// here even when the JSON document happened to decode).
	if err := expectOnlyWhitespace(dec.Buffered()); err != nil {
		return nil, err
	}
	if err := expectOnlyWhitespace(gz); err != nil {
		return nil, err
	}
	// Bytes after the gzip stream itself are garbage too. Both callers
	// pass an io.ByteReader, which guarantees flate reads no further
	// than the stream end — so one more readable byte is real trailing
	// data, not decompressor over-read.
	if br, ok := r.(io.ByteReader); ok {
		if _, err := br.ReadByte(); err != io.EOF {
			return nil, fmt.Errorf("pipeline: trailing garbage after bundle stream: %w", ErrCorrupt)
		}
	}
	model, err := core.ReadResultJSON(bytes.NewReader(b.Model))
	if err != nil {
		return nil, fmt.Errorf("pipeline: bundle model: %w: %w", ErrCorrupt, err)
	}
	if len(b.Docs) != len(model.Theta) {
		return nil, fmt.Errorf("pipeline: bundle has %d docs but model has %d rows: %w",
			len(b.Docs), len(model.Theta), ErrCorrupt)
	}
	// Prebuild the fold-in kernel: it validates the model shape (a
	// structurally broken bundle is corruption, not a serving-time
	// panic) and pays the per-model cache cost at load instead of on
	// the first annotation request.
	if _, err := model.BuildKernel(); err != nil {
		return nil, fmt.Errorf("pipeline: bundle model: %w: %w", ErrCorrupt, err)
	}
	out := &Output{
		Dict:          lexicon.Default(),
		Docs:          b.Docs,
		ExcludedTerms: b.ExcludedTerms,
		Model:         model,
	}
	if out.ExcludedTerms == nil {
		out.ExcludedTerms = map[string][]string{}
	}
	return out, nil
}

// expectOnlyWhitespace consumes r to EOF, rejecting anything but JSON
// whitespace. A read error (a gzip checksum failure surfaces here) is
// corruption too.
func expectOnlyWhitespace(r io.Reader) error {
	buf := make([]byte, 512)
	for {
		n, err := r.Read(buf)
		for _, c := range buf[:n] {
			switch c {
			case ' ', '\t', '\n', '\r':
			default:
				return fmt.Errorf("pipeline: trailing garbage after bundle document: %w", ErrCorrupt)
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("pipeline: bundle stream damaged: %w: %w", ErrCorrupt, err)
		}
	}
}
