package pipeline

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/lexicon"
	"repro/internal/recipe"
)

// Bundle is the persistent form of a fitted pipeline: everything the
// annotation and linkage layers need, without the raw corpus. Bundles
// let services start from a file instead of refitting at boot.
type bundle struct {
	Version       int                 `json:"version"`
	Docs          []recipe.Doc        `json:"docs"`
	ExcludedTerms map[string][]string `json:"excluded_terms"`
	Model         json.RawMessage     `json:"model"`
}

// bundleVersion guards against format drift.
const bundleVersion = 1

// SaveBundle writes the fitted state (model, docs, term exclusions) as
// gzipped JSON.
func (o *Output) SaveBundle(w io.Writer) error {
	if o.Model == nil {
		return fmt.Errorf("pipeline: cannot save an unfitted output")
	}
	var modelBuf bytes.Buffer
	if err := o.Model.WriteJSON(&modelBuf); err != nil {
		return err
	}
	b := bundle{
		Version:       bundleVersion,
		Docs:          o.Docs,
		ExcludedTerms: o.ExcludedTerms,
		Model:         json.RawMessage(modelBuf.Bytes()),
	}
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("pipeline: encoding bundle: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("pipeline: closing bundle: %w", err)
	}
	return nil
}

// LoadBundle reads a bundle written by SaveBundle. The returned Output
// carries the model, docs, exclusions and dictionary; the raw recipe
// corpus is not part of a bundle (AllRecipes and Kept are nil).
func LoadBundle(r io.Reader) (*Output, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening bundle: %w", err)
	}
	defer gz.Close()
	var b bundle
	if err := json.NewDecoder(gz).Decode(&b); err != nil {
		return nil, fmt.Errorf("pipeline: decoding bundle: %w", err)
	}
	if b.Version != bundleVersion {
		return nil, fmt.Errorf("pipeline: bundle version %d, want %d", b.Version, bundleVersion)
	}
	model, err := core.ReadResultJSON(bytes.NewReader(b.Model))
	if err != nil {
		return nil, err
	}
	if len(b.Docs) != len(model.Theta) {
		return nil, fmt.Errorf("pipeline: bundle has %d docs but model has %d rows", len(b.Docs), len(model.Theta))
	}
	out := &Output{
		Dict:          lexicon.Default(),
		Docs:          b.Docs,
		ExcludedTerms: b.ExcludedTerms,
		Model:         model,
	}
	if out.ExcludedTerms == nil {
		out.ExcludedTerms = map[string][]string{}
	}
	return out, nil
}
