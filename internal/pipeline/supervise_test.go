package pipeline

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/stats"
)

// superviseData draws a small three-topic corpus from the model's own
// generative process, big enough for a 40-sweep chain to stay stable.
func superviseData(docs int) *core.Data {
	rng := stats.NewRNG(41, 99)
	phi := [][]float64{
		{.30, .30, .30, .03, .03, .02, .01, .005, .005},
		{.01, .005, .005, .30, .30, .30, .03, .03, .02},
		{.03, .03, .02, .01, .005, .005, .30, .30, .30},
	}
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	emuMeans := [][]float64{{2, 8}, {8, 2}, {5, 5}}
	data := &core.Data{V: 9}
	for d := 0; d < docs; d++ {
		k := d % 3
		n := 2 + rng.IntN(4)
		words := make([]int, n)
		for i := range words {
			words[i] = rng.Categorical(phi[k])
		}
		data.Words = append(data.Words, words)
		data.Gel = append(data.Gel, []float64{rng.Normal(gelMeans[k][0], 0.25), rng.Normal(gelMeans[k][1], 0.25)})
		data.Emu = append(data.Emu, []float64{rng.Normal(emuMeans[k][0], 0.3), rng.Normal(emuMeans[k][1], 0.3)})
	}
	return data
}

func superviseConfig(iters int) core.Config {
	cfg := core.DefaultConfig()
	cfg.K = 3
	cfg.Iterations = iters
	cfg.BurnIn = iters / 2
	cfg.Seed = 9
	return cfg
}

// TestCheckpointHealthDigest covers the digest round trip: a clean
// trace stamps Healthy=true; a NaN in the trace flips it off both at
// write time and — defense in depth — when a forged header claims
// otherwise.
func TestCheckpointHealthDigest(t *testing.T) {
	_, _, snap := checkpointSnapshot(t)

	t.Run("healthy", func(t *testing.T) {
		dir := t.TempDir()
		if err := WriteCheckpointFile(dir, snap); err != nil {
			t.Fatal(err)
		}
		sn, h, err := LoadCheckpointWithHealth(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !h.Healthy || h.Sweep != snap.Sweep || sn.Sweep != snap.Sweep {
			t.Fatalf("digest = %+v, want healthy at sweep %d", h, snap.Sweep)
		}
		if math.IsNaN(h.LogLik) || math.IsInf(h.LogLik, 0) {
			t.Fatalf("digest log-likelihood %v not finite", h.LogLik)
		}
	})

	t.Run("derived-from-trace", func(t *testing.T) {
		// JSON cannot carry NaN, so a snapshot holding a non-finite trace
		// never reaches disk; the derivation itself must still flag it so
		// writers stamp Healthy=false instead of failing to encode.
		poisoned := *snap
		poisoned.LogLik = append(append([]float64(nil), snap.LogLik...), math.NaN())
		if h := snapshotHealth(&poisoned); h.Healthy || h.Reason == "" {
			t.Fatalf("snapshotHealth = %+v, want unhealthy with a reason", h)
		}
	})

	t.Run("unhealthy-header-gates-load", func(t *testing.T) {
		dir := t.TempDir()
		unhealthy := CheckpointHealth{Sweep: snap.Sweep, Healthy: false, Reason: "diverged"}
		if err := WriteCheckpointFileWithHealth(dir, snap, unhealthy); err != nil {
			t.Fatal(err)
		}
		// The plain loader still hands the snapshot back (crash-resume
		// compatibility)…
		if _, err := LoadCheckpointFile(dir); err != nil {
			t.Fatal(err)
		}
		// …but the supervisor's health-gated load refuses it.
		st := &FitCheckpointStore{Dir: dir}
		if _, err := st.LoadHealthy(); !errors.Is(err, ErrUnhealthyCheckpoint) {
			t.Fatalf("LoadHealthy error = %v, want ErrUnhealthyCheckpoint", err)
		}
	})

	t.Run("sanitizes-nonfinite-digest", func(t *testing.T) {
		dir := t.TempDir()
		// A digest stamped mid-divergence may carry a NaN log-likelihood;
		// the writer must keep the header JSON-encodable and record the
		// unhealthiness rather than erroring.
		bad := CheckpointHealth{Sweep: snap.Sweep, LogLik: math.NaN(), Healthy: true}
		if err := WriteCheckpointFileWithHealth(dir, snap, bad); err != nil {
			t.Fatal(err)
		}
		_, h, err := LoadCheckpointWithHealth(dir)
		if err != nil {
			t.Fatal(err)
		}
		if h.Healthy || math.IsNaN(h.LogLik) {
			t.Fatalf("digest = %+v, want unhealthy with a finite log-likelihood", h)
		}
	})
}

// syncCrashStore is FitCheckpointStore with a synchronous writer: the
// same "checkpoint.write" injection point and the same durable
// temp+rename WriteCheckpointFile, minus the background goroutine
// whose single-flight skipping would make WHICH write consumes the
// scripted fault racy on a fast chain. Load/discard delegate to the
// real store.
type syncCrashStore struct {
	FitCheckpointStore
	script *resilience.Script
}

func (st *syncCrashStore) Writer() (func(*core.Snapshot) error, func() error) {
	write := func(sn *core.Snapshot) error {
		if err := resilience.Inject(context.Background(), st.script, "checkpoint.write"); err != nil {
			return err
		}
		return WriteCheckpointFile(st.Dir, sn)
	}
	return write, func() error { return nil }
}

// TestSupervisedRollbackAfterCheckpointWriteCrash is the satellite
// crash test: a fault injected into the durable write path kills the
// sweep-20 checkpoint write; the error aborts the chain, the sweep-10
// checkpoint on disk must still be loadable, and the supervisor must
// resume from it and finish the fit.
func TestSupervisedRollbackAfterCheckpointWriteCrash(t *testing.T) {
	data := superviseData(40)
	cfg := superviseConfig(40)
	cfg.CheckpointEvery = 10
	dir := t.TempDir()

	script := resilience.NewScript()
	script.Queue("checkpoint.write", 1, resilience.Fault{})                                // sweep 10: succeeds
	script.Queue("checkpoint.write", 1, resilience.Fault{Err: errors.New("disk on fire")}) // sweep 20: fails

	st := &syncCrashStore{FitCheckpointStore: FitCheckpointStore{Dir: dir}, script: script}
	sv := &resilience.Supervisor{MaxRestarts: 2, Store: st}
	res, incidents, err := sv.RunFit(context.Background(), data, cfg, nil)
	if err != nil {
		t.Fatalf("supervised fit failed: %v (incidents %+v)", err, incidents)
	}
	if res == nil {
		t.Fatal("nil result from successful fit")
	}
	if len(incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly one", incidents)
	}
	inc := incidents[0]
	if inc.Action != resilience.ActionRollback || inc.ResumedFrom != 10 {
		t.Fatalf("incident = %+v, want a rollback resuming the surviving sweep-10 checkpoint", inc)
	}
	// The recovered attempt ran to completion writing checkpoints past
	// the crash point; the final one must be durable and healthy.
	sn, h, lerr := LoadCheckpointWithHealth(dir)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if !h.Healthy || sn.Sweep != 40 {
		t.Fatalf("final checkpoint sweep %d healthy=%v, want sweep 40 healthy", sn.Sweep, h.Healthy)
	}
}

// TestCheckpointWriterCrashLeavesPreviousCheckpoint is the
// writer-level half of the crash story: a failed write must surface as
// the sticky error AND leave the previously persisted checkpoint
// intact (temp + rename never tears the live file).
func TestCheckpointWriterCrashLeavesPreviousCheckpoint(t *testing.T) {
	_, _, snap := checkpointSnapshot(t)
	dir := t.TempDir()
	w := NewCheckpointWriter(dir, nil)
	script := resilience.NewScript()
	script.Queue("checkpoint.write", 1, resilience.Fault{})
	script.Queue("checkpoint.write", 1, resilience.Fault{Err: errors.New("torn write")})
	w.Injector = script

	if err := w.Write(snap); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	later := *snap
	later.Sweep = snap.Sweep + 4
	if err := w.Write(&later); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err == nil {
		t.Fatal("injected write failure not surfaced by Flush")
	}
	sn, err := LoadCheckpointFile(dir)
	if err != nil {
		t.Fatalf("previous checkpoint unloadable after failed write: %v", err)
	}
	if sn.Sweep != snap.Sweep {
		t.Fatalf("checkpoint sweep = %d, want the pre-crash %d", sn.Sweep, snap.Sweep)
	}
}

// TestSupervisedResumeSkipsUnhealthyCheckpoint: a startup -resume
// pointed at a diverged checkpoint must not resume it — the supervisor
// retires the file and starts fresh.
func TestSupervisedResumeSkipsUnhealthyCheckpoint(t *testing.T) {
	data := superviseData(30)
	cfg := superviseConfig(20)
	dir := t.TempDir()

	// A snapshot with a non-finite trace cannot even be JSON-encoded, so
	// a checkpoint written mid-divergence carries an explicit unhealthy
	// digest instead — forge one the way the writer would stamp it.
	_, _, snap := checkpointSnapshot(t)
	unhealthy := CheckpointHealth{
		Sweep:   snap.Sweep,
		Healthy: false,
		Reason:  "non-finite log-likelihood",
	}
	if err := WriteCheckpointFileWithHealth(dir, snap, unhealthy); err != nil {
		t.Fatal(err)
	}

	opts := Options{
		Model:      cfg,
		Supervise:  true,
		Checkpoint: CheckpointOptions{Dir: dir, Every: 10, Resume: true},
	}
	res, incidents, _, err := fitModel(data, opts)
	if err != nil {
		t.Fatalf("supervised fit failed: %v (incidents %+v)", err, incidents)
	}
	if res == nil || len(incidents) != 0 {
		t.Fatalf("want a clean fresh fit, got incidents %+v", incidents)
	}
	if _, err := os.Stat(filepath.Join(dir, CheckpointFile+".discarded")); err != nil {
		t.Fatalf("diverged checkpoint not retired to .discarded: %v", err)
	}
	// The fresh fit replaced the retired checkpoint with a healthy one
	// (the background writer may have skipped the final cadence point,
	// so only the digest and a positive sweep are pinned).
	sn, h, err := LoadCheckpointWithHealth(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Healthy || sn.Sweep < 10 {
		t.Fatalf("fresh fit's checkpoint sweep %d healthy=%v, want a healthy checkpoint at sweep ≥ 10", sn.Sweep, h.Healthy)
	}
}

// TestSupervisedFitHealthMetrics: the supervised path must account for
// health events, restarts, and rolled-back sweeps in the registry.
func TestSupervisedFitHealthMetrics(t *testing.T) {
	data := superviseData(40)
	cfg := superviseConfig(40)
	var fired bool
	cfg.Health.Perturb = func(sweep int, ll float64) float64 {
		if sweep == 25 && !fired {
			fired = true
			return math.NaN()
		}
		return ll
	}
	reg := obs.NewRegistry()
	opts := Options{
		Model:      cfg,
		Supervise:  true,
		Checkpoint: CheckpointOptions{Dir: t.TempDir(), Every: 10},
		Metrics:    reg,
	}
	_, incidents, _, err := fitModel(data, opts)
	if err != nil {
		t.Fatalf("supervised fit failed: %v (incidents %+v)", err, incidents)
	}
	events := reg.Counter("fit_health_events_total", "", obs.Labels{"kind": "nan_loglik"}).Value()
	if events != 1 {
		t.Fatalf("fit_health_events_total{kind=nan_loglik} = %d, want 1", events)
	}
	restarts := reg.Counter("fit_restarts_total", "", nil).Value()
	if restarts != 1 {
		t.Fatalf("fit_restarts_total = %d, want 1", restarts)
	}
	// The fault fires at sweep 25; which checkpoint the rollback lands
	// on depends on the background writer's in-flight skips, so derive
	// the expected loss from the recorded incident instead of pinning it.
	if len(incidents) != 1 || incidents[0].Action != resilience.ActionRollback {
		t.Fatalf("incidents = %+v, want one rollback", incidents)
	}
	wantRolled := int64(incidents[0].Sweep - incidents[0].ResumedFrom)
	rolled := reg.Counter("fit_rollback_sweeps_total", "", nil).Value()
	if rolled != wantRolled || rolled <= 0 {
		t.Fatalf("fit_rollback_sweeps_total = %d, want %d (positive)", rolled, wantRolled)
	}
}

// TestOptionsRejectsIncoherentCombos: Run and RunOnRecipes refuse
// option combinations with no defined semantics, typed as ErrOptions,
// regardless of which conflicting field is "first".
func TestOptionsRejectsIncoherentCombos(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"restarts+checkpoint", func(o *Options) {
			o.Restarts = 3
			o.Checkpoint = CheckpointOptions{Dir: t.TempDir()}
		}},
		{"checkpoint+restarts", func(o *Options) {
			o.Checkpoint = CheckpointOptions{Dir: t.TempDir()}
			o.Restarts = 3
		}},
		{"restarts+supervise", func(o *Options) {
			o.Restarts = 2
			o.Supervise = true
		}},
		{"supervise+restarts", func(o *Options) {
			o.Supervise = true
			o.Restarts = 2
		}},
		{"negative-max-restarts", func(o *Options) { o.MaxRestarts = -1 }},
		{"negative-sweep-timeout", func(o *Options) { o.SweepTimeout = -1 }},
		{"negative-max-ll-drop", func(o *Options) { o.MaxLLDrop = -0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := DefaultOptions()
			tc.mut(&opts)
			if _, err := Run(opts); !errors.Is(err, ErrOptions) {
				t.Fatalf("Run error = %v, want ErrOptions", err)
			}
			if _, err := RunOnRecipes(nil, opts); !errors.Is(err, ErrOptions) {
				t.Fatalf("RunOnRecipes error = %v, want ErrOptions", err)
			}
		})
	}
}
