package pipeline

import (
	"log/slog"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// StageTiming is the wall time of one pipeline stage, in execution
// order: corpus → word2vec_filter → dataset_filter → model.
type StageTiming struct {
	Stage   string        `json:"stage"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// recordStage appends the timing to the output and mirrors it into the
// metrics registry (when one is configured) as
// pipeline_stage_seconds{stage=…}.
func (o *Output) recordStage(reg *obs.Registry, stage string, start time.Time) {
	d := time.Since(start)
	o.Timings = append(o.Timings, StageTiming{Stage: stage, Elapsed: d})
	if reg != nil {
		reg.Gauge("pipeline_stage_seconds",
			"Wall time of each pipeline stage for the most recent run.",
			obs.Labels{"stage": stage}).Set(d.Seconds())
	}
}

// SamplerMetrics builds a core.SweepHooks sink that records per-sweep
// telemetry into reg:
//
//	sampler_sweeps_total                      counter
//	sampler_sweep_seconds                     histogram
//	sampler_phase_seconds{phase=z|y|components} histogram
//	sampler_log_likelihood                    gauge (last sweep)
//	sampler_occupied_topics                   gauge (last sweep)
//	sampler_max_topic_share                   gauge (last sweep)
//
// This is the adapter that keeps core free of any obs dependency: core
// only knows its own hook types; the recording lives here, where both
// packages already meet. Compose it onto existing hooks with Then.
// SweepProgress builds a hook that logs one structured progress line
// every `every` sweeps (and on sweep 0, so a long fit shows signs of
// life immediately). every <= 0 disables it. Compose with other hooks
// via Then.
func SweepProgress(logger *slog.Logger, every int) core.SweepHooks {
	if logger == nil || every <= 0 {
		return core.SweepHooks{}
	}
	return core.SweepHooks{OnSweep: func(st core.SweepStats) {
		if st.Sweep%every != 0 {
			return
		}
		logger.Info("gibbs sweep",
			"sweep", st.Sweep,
			"loglik", st.LogLik,
			"occupied_topics", st.OccupiedTopics,
			"max_topic_share", st.MaxTopicShare,
			"sweep_ms", st.Total.Milliseconds())
	}}
}

func SamplerMetrics(reg *obs.Registry) core.SweepHooks {
	const phaseHelp = "Wall time of one Gibbs sweep phase."
	sweeps := reg.Counter("sampler_sweeps_total", "Gibbs sweeps completed.", nil)
	sweepSec := reg.Histogram("sampler_sweep_seconds", "Wall time of one full Gibbs sweep.", nil, nil)
	zSec := reg.Histogram("sampler_phase_seconds", phaseHelp, nil, obs.Labels{"phase": "z"})
	ySec := reg.Histogram("sampler_phase_seconds", phaseHelp, nil, obs.Labels{"phase": "y"})
	compSec := reg.Histogram("sampler_phase_seconds", phaseHelp, nil, obs.Labels{"phase": "components"})
	logLik := reg.Gauge("sampler_log_likelihood", "Joint log-likelihood after the last sweep.", nil)
	occupied := reg.Gauge("sampler_occupied_topics", "Topics with at least one document after the last sweep.", nil)
	maxShare := reg.Gauge("sampler_max_topic_share", "Largest topic's document share after the last sweep.", nil)
	return core.SweepHooks{OnSweep: func(st core.SweepStats) {
		sweeps.Inc()
		sweepSec.Observe(st.Total.Seconds())
		zSec.Observe(st.ZPhase.Seconds())
		ySec.Observe(st.YPhase.Seconds())
		compSec.Observe(st.Components.Seconds())
		logLik.Set(st.LogLik)
		occupied.Set(float64(st.OccupiedTopics))
		maxShare.Set(st.MaxTopicShare)
	}}
}
