package pipeline

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// shardStatsFixture fits a small shard chain and returns its mergeable
// statistics plus the priors needed to restore them from disk.
func shardStatsFixture(t testing.TB) (*core.ShardStats, *stats.NormalWishart, *stats.NormalWishart) {
	t.Helper()
	data := superviseData(18)
	cfg := superviseConfig(20)
	gp, ep, err := core.EmpiricalPriors(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GelPrior, cfg.EmuPrior = gp, ep
	s, err := core.NewSampler(data.Slice(0, 12), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	return s.ShardStats(0), gp, ep
}

func TestShardStatsFileRoundTrip(t *testing.T) {
	st, gp, ep := shardStatsFixture(t)
	dir := t.TempDir()
	digest, err := WriteShardStatsFile(dir, "shard-0.stats", st)
	if err != nil {
		t.Fatal(err)
	}
	if digest == "" {
		t.Fatal("empty digest")
	}
	got, err := LoadShardStatsFile(dir, "shard-0.stats", digest, gp, ep)
	if err != nil {
		t.Fatal(err)
	}
	var want, have bytes.Buffer
	if err := st.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if err := got.WriteJSON(&have); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatal("restored shard stats differ from the originals")
	}
}

func TestShardStatsFileDigestMismatch(t *testing.T) {
	st, gp, ep := shardStatsFixture(t)
	dir := t.TempDir()
	if _, err := WriteShardStatsFile(dir, "shard-0.stats", st); err != nil {
		t.Fatal(err)
	}
	_, err := LoadShardStatsFile(dir, "shard-0.stats",
		"0000000000000000000000000000000000000000000000000000000000000000", gp, ep)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on manifest/file digest mismatch, got %v", err)
	}
}

func TestShardStatsFileBitFlip(t *testing.T) {
	st, gp, ep := shardStatsFixture(t)
	dir := t.TempDir()
	digest, err := WriteShardStatsFile(dir, "shard-0.stats", st)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "shard-0.stats")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-8] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardStatsFile(dir, "shard-0.stats", digest, gp, ep); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on flipped payload byte, got %v", err)
	}
}

func TestShardStatsFileWrongKind(t *testing.T) {
	_, gp, ep := shardStatsFixture(t)
	dir := t.TempDir()
	m := validManifest()
	if err := SaveShardManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardStatsFile(dir, ShardManifestFile, "", gp, ep); !errors.Is(err, ErrKind) {
		t.Fatalf("want ErrKind loading a manifest as shard stats, got %v", err)
	}
}

func validManifest() *ShardManifest {
	return &ShardManifest{
		Identity: ShardIdentity{NumDocs: 10, V: 9, K: 3, Iterations: 40, BurnIn: 20, Seed: 9, ShardCount: 2},
		Shards: []ShardEntry{
			{Lo: 0, Hi: 5, Seed: 9, State: ShardFitted, File: "shard-a.stats", Digest: "abc123"},
			{Lo: 5, Hi: 10, Seed: 11, State: ShardPending},
		},
	}
}

func TestShardManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := validManifest()
	if err := SaveShardManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("manifest round trip mismatch:\nwant %+v\ngot  %+v", m, got)
	}
}

func TestLoadShardManifestMissing(t *testing.T) {
	if _, err := LoadShardManifest(t.TempDir()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist for an empty shard dir, got %v", err)
	}
}

func TestLoadShardManifestCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := SaveShardManifest(dir, validManifest()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ShardManifestFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on flipped manifest byte, got %v", err)
	}
}

func TestShardManifestValidate(t *testing.T) {
	damage := map[string]func(*ShardManifest){
		"no shards":       func(m *ShardManifest) { m.Shards = nil },
		"gap":             func(m *ShardManifest) { m.Shards[1].Lo = 6 },
		"overlap":         func(m *ShardManifest) { m.Shards[1].Lo = 4 },
		"empty range":     func(m *ShardManifest) { m.Shards[0].Hi = 0 },
		"short coverage":  func(m *ShardManifest) { m.Shards[1].Hi = 9 },
		"unknown state":   func(m *ShardManifest) { m.Shards[0].State = "running" },
		"fitted no file":  func(m *ShardManifest) { m.Shards[0].File = "" },
		"path escape":     func(m *ShardManifest) { m.Shards[0].File = "../evil.stats" },
		"absolute path":   func(m *ShardManifest) { m.Shards[0].File = "/tmp/evil.stats" },
		"out of order":    func(m *ShardManifest) { m.Shards[0], m.Shards[1] = m.Shards[1], m.Shards[0] },
		"fitted no diges": func(m *ShardManifest) { m.Shards[0].Digest = "" },
	}
	if err := validManifest().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	for name, mut := range damage {
		m := validManifest()
		mut(m)
		if err := m.Validate(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

func TestOptionsValidateSharding(t *testing.T) {
	base := func() Options {
		o := testOptions()
		o.ShardCount = 4
		return o
	}
	cases := map[string]func(*Options){
		"negative shards":     func(o *Options) { o.ShardCount = -1 },
		"negative retries":    func(o *Options) { o.ShardRetries = -1 },
		"negative straggler":  func(o *Options) { o.StragglerTimeout = -1 },
		"shards+restarts":     func(o *Options) { o.Restarts = 3 },
		"shards+checkpoint":   func(o *Options) { o.Checkpoint.Dir = "x" },
		"shards+learn alpha":  func(o *Options) { o.Model.LearnAlpha = true },
		"shard dir unsharded": func(o *Options) { o.ShardCount = 1; o.ShardDir = "x" },
	}
	good := base()
	if err := good.validate(); err != nil {
		t.Fatalf("sharded options rejected: %v", err)
	}
	for name, mut := range cases {
		o := base()
		mut(&o)
		if err := o.validate(); !errors.Is(err, ErrOptions) {
			t.Errorf("%s: want ErrOptions, got %v", name, err)
		}
	}
}
