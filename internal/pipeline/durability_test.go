package pipeline

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/recipe"
	"repro/internal/stats"
)

// mustGenerate resolves the synthetic corpus for tests that call
// RunOnRecipes twice on identical input.
func mustGenerate(t *testing.T, opts Options) []*recipe.Recipe {
	t.Helper()
	recipes, err := corpus.Generate(opts.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	return recipes
}

// tinyOutput builds a structurally valid Output without running the
// pipeline — cheap enough to serialize hundreds of times in the
// corruption tables and fuzz seeds.
func tinyOutput() *Output {
	ident := func() [][]float64 { return [][]float64{{1, 0}, {0, 1}} }
	comp := func(m0, m1 float64) core.Component {
		return core.Component{Mean: []float64{m0, m1}, Precision: stats.MatFromRows(ident())}
	}
	model := &core.Result{
		K: 2, V: 3, Alpha: 0.1, Gamma: 0.1, UseEmulsion: true, EmulsionWeight: 0.5,
		Phi:    [][]float64{{0.5, 0.25, 0.25}, {0.2, 0.4, 0.4}},
		Theta:  [][]float64{{0.7, 0.3}},
		Y:      []int{0},
		Gel:    []core.Component{comp(0, 0), comp(1, 1)},
		Emu:    []core.Component{comp(0, 1), comp(1, 0)},
		LogLik: []float64{-10, -9},
	}
	return &Output{
		Docs: []recipe.Doc{{
			RecipeID: "r1", TermIDs: []int{0, 2},
			Gel: []float64{0.1, 0.2}, Emulsion: []float64{0.3, 0.4},
		}},
		ExcludedTerms: map[string][]string{"ぷるぷる": {"なっつ"}},
		Model:         model,
	}
}

// validBundleV2 returns tinyOutput serialized in the current container
// format.
func validBundleV2(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tinyOutput().SaveBundle(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// validBundleV1 returns the same state in the legacy format-1 layout
// (naked gzip+JSON, no container envelope) exactly as old builds wrote
// it.
func validBundleV1(t testing.TB) []byte {
	t.Helper()
	payload, err := tinyOutput().bundlePayload()
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestLoadBundleReadsBothFormats: the current loader accepts its own
// output and legacy v1 files, recovering identical state from each.
func TestLoadBundleReadsBothFormats(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"v2-container", validBundleV2(t)},
		{"v1-legacy", validBundleV1(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := LoadBundle(bytes.NewReader(tc.data))
			if err != nil {
				t.Fatal(err)
			}
			want := tinyOutput()
			if got.Model.K != want.Model.K || got.Model.V != want.Model.V {
				t.Errorf("model shape: %d/%d", got.Model.K, got.Model.V)
			}
			if len(got.Docs) != 1 || got.Docs[0].RecipeID != "r1" {
				t.Errorf("docs lost: %+v", got.Docs)
			}
			if len(got.ExcludedTerms["ぷるぷる"]) != 1 {
				t.Errorf("exclusions lost: %v", got.ExcludedTerms)
			}
			for k := range want.Model.Phi {
				for v := range want.Model.Phi[k] {
					if got.Model.Phi[k][v] != want.Model.Phi[k][v] {
						t.Fatal("φ lost precision")
					}
				}
			}
		})
	}
}

// TestLoadBundleRejectsDamage is the integrity acceptance table: every
// damaged, foreign, or future input is rejected with the right typed
// sentinel, never a panic and never a naked io error.
func TestLoadBundleRejectsDamage(t *testing.T) {
	v2 := validBundleV2(t)
	v1 := validBundleV1(t)
	// The v2 header starts after magic(8)+len(4); find the payload
	// offset so bit flips land where the SHA-256 digest governs.
	hdrLen := int(v2[8])<<24 | int(v2[9])<<16 | int(v2[10])<<8 | int(v2[11])
	payloadOff := 12 + hdrLen

	flip := func(data []byte, i int) []byte {
		out := append([]byte(nil), data...)
		out[i] ^= 0x01
		return out
	}
	concat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	futureSchema := func() []byte {
		var buf bytes.Buffer
		if err := writeContainer(&buf, kindBundle, 99, []byte("opaque future payload"), nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	wrongKind := func() []byte {
		var buf bytes.Buffer
		if err := writeContainer(&buf, kindCheckpoint, 1, []byte("snapshot bytes"), nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"not-a-bundle", []byte("plain text, definitely not a bundle"), ErrCorrupt},
		{"torn-magic", v2[:4], ErrCorrupt},
		{"torn-header-length", v2[:10], ErrCorrupt},
		{"torn-header", v2[:12+hdrLen/2], ErrCorrupt},
		{"torn-payload", v2[:len(v2)-10], ErrCorrupt},
		{"bit-flip-payload", flip(v2, payloadOff+5), ErrCorrupt},
		{"bit-flip-last-byte", flip(v2, len(v2)-1), ErrCorrupt},
		{"trailing-garbage", concat(v2, []byte("extra")), ErrCorrupt},
		{"header-not-json", concat(v2[:12], bytes.Repeat([]byte{'x'}, hdrLen), v2[payloadOff:]), ErrCorrupt},
		{"future-container-format", bytes.Replace(append([]byte(nil), v2...), []byte(`"format":2`), []byte(`"format":9`), 1), ErrVersion},
		{"future-schema", futureSchema, ErrVersion},
		{"checkpoint-as-bundle", wrongKind, ErrKind},
		{"v1-torn-gzip", v1[:len(v1)/2], ErrCorrupt},
		{"v1-bit-flip", flip(v1, len(v1)/2), ErrCorrupt},
		{"v1-trailing-garbage", concat(v1, []byte("junk after the stream")), ErrCorrupt},
		{"v1-truncated-to-header", v1[:3], ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := LoadBundle(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("damaged input loaded successfully: %+v", out)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want errors.Is(err, %v)", err, tc.want)
			}
			// The raw cause must be wrapped, not returned bare.
			if err.Error() == "unexpected EOF" || err.Error() == "EOF" {
				t.Fatalf("naked io error leaked: %v", err)
			}
		})
	}
}

// TestLoadBundleFutureSchemaInV1Body: a legacy-layout stream claiming
// a future inner schema is a version problem, not corruption.
func TestLoadBundleFutureSchemaInV1Body(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte(`{"version":9,"docs":[],"model":{}}`)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(&buf); !errors.Is(err, ErrVersion) {
		t.Fatalf("future inner schema should be ErrVersion, got %v", err)
	}
}

// TestSaveBundleFileAtomic: the on-disk write is crash-safe — the
// destination only ever holds a complete bundle, and a failed write
// leaves an existing file untouched.
func TestSaveBundleFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.bundle")
	out := tinyOutput()
	if err := out.SaveBundleFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Model.K != out.Model.K {
		t.Error("round trip through file lost the model")
	}
	// No temp litter after success.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory not clean after save: %v", entries)
	}
	// A failing save (unfitted output) must leave the good file intact.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&Output{}).SaveBundleFile(path); err == nil {
		t.Fatal("unfitted save should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save clobbered the existing bundle")
	}
}

func TestLoadBundleFileMissing(t *testing.T) {
	_, err := LoadBundleFile(filepath.Join(t.TempDir(), "nope.bundle"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file should surface fs.ErrNotExist, got %v", err)
	}
}

// checkpointSnapshot fits a tiny chain far enough to have a snapshot.
func checkpointSnapshot(t testing.TB) (*core.Data, core.Config, *core.Snapshot) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.K = 2
	cfg.Iterations = 8
	cfg.BurnIn = 2
	cfg.Seed = 7
	data := &core.Data{
		V:     3,
		Words: [][]int{{0, 1}, {2}, {0, 2}},
		Gel:   [][]float64{{0.1, 0.2}, {0.3, 0.1}, {0.2, 0.2}},
		Emu:   [][]float64{{0.5, 0.1}, {0.1, 0.5}, {0.3, 0.3}},
	}
	var snap *core.Snapshot
	cfg.CheckpointEvery = 4
	cfg.CheckpointFunc = func(sn *core.Snapshot) error { snap = sn; return nil }
	if _, err := core.Fit(data, cfg); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot emitted")
	}
	cfg.CheckpointFunc = nil
	cfg.CheckpointEvery = 0
	return data, cfg, snap
}

// TestCheckpointFileRoundTrip: write → load recovers a snapshot that
// resumes to the same result.
func TestCheckpointFileRoundTrip(t *testing.T) {
	data, cfg, snap := checkpointSnapshot(t)
	dir := t.TempDir()
	if err := WriteCheckpointFile(dir, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpointFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sweep != snap.Sweep {
		t.Fatalf("sweep %d, want %d", loaded.Sweep, snap.Sweep)
	}
	if _, err := core.ResumeFit(data, cfg, loaded); err != nil {
		t.Fatalf("loaded checkpoint does not resume: %v", err)
	}
}

// TestCheckpointFileRejectsDamage: the checkpoint loader has the same
// integrity posture as the bundle loader.
func TestCheckpointFileRejectsDamage(t *testing.T) {
	_, _, snap := checkpointSnapshot(t)
	dir := t.TempDir()
	if err := WriteCheckpointFile(dir, snap); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CheckpointFile)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	write := func(t *testing.T, data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("missing", func(t *testing.T) {
		if _, err := LoadCheckpointFile(t.TempDir()); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("want fs.ErrNotExist, got %v", err)
		}
	})
	t.Run("torn", func(t *testing.T) {
		write(t, good[:len(good)/2])
		if _, err := LoadCheckpointFile(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("bit-flip", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-7] ^= 0x10
		write(t, bad)
		if _, err := LoadCheckpointFile(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("bundle-as-checkpoint", func(t *testing.T) {
		write(t, validBundleV2(t))
		if _, err := LoadCheckpointFile(dir); !errors.Is(err, ErrKind) {
			t.Fatalf("want ErrKind, got %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		write(t, nil)
		if _, err := LoadCheckpointFile(dir); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
}

// TestCheckpointWriter: async writes land on disk, metrics count them,
// and a dead target directory surfaces as a sticky error on the next
// Write — which is how the chain learns to stop.
func TestCheckpointWriter(t *testing.T) {
	_, _, snap := checkpointSnapshot(t)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w := NewCheckpointWriter(dir, reg)
	if err := w.Write(snap); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpointFile(dir); err != nil {
		t.Fatalf("flushed checkpoint not loadable: %v", err)
	}
	if got := reg.Counter("checkpoint_writes_total", "", nil).Value(); got != 1 {
		t.Errorf("checkpoint_writes_total = %d, want 1", got)
	}
	if got := reg.Gauge("checkpoint_last_sweep", "", nil).Value(); got != float64(snap.Sweep) {
		t.Errorf("checkpoint_last_sweep = %v, want %d", got, snap.Sweep)
	}

	// Point a writer at a file-as-directory so every write fails.
	bad := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	wb := NewCheckpointWriter(filepath.Join(bad, "sub"), reg)
	if err := wb.Write(snap); err != nil {
		t.Fatalf("first write reports asynchronously, got %v", err)
	}
	if err := wb.Flush(); err == nil {
		t.Fatal("write into a non-directory should fail")
	}
	if err := wb.Write(snap); err == nil {
		t.Fatal("sticky error not surfaced on next Write")
	}
	if got := reg.Counter("checkpoint_write_errors_total", "", nil).Value(); got < 1 {
		t.Errorf("checkpoint_write_errors_total = %d, want ≥ 1", got)
	}
}

// TestPipelineCheckpointResume: end-to-end — a pipeline run with
// checkpointing leaves a resumable file, and resuming from it yields
// exactly the model an uninterrupted run produces (the chain re-runs
// only the sweeps after the last persisted checkpoint, so the final
// state must match bit for bit).
func TestPipelineCheckpointResume(t *testing.T) {
	opts := testOptions()
	opts.UseW2VFilter = false // keep the fixture fast; the filter is irrelevant here
	opts.Model.Iterations = 40
	opts.Corpus.Scale = 0.15
	recipes := mustGenerate(t, opts)

	dir := t.TempDir()
	opts.Checkpoint = CheckpointOptions{Dir: dir, Every: 7}
	opts.Metrics = obs.NewRegistry()
	full, err := RunOnRecipes(recipes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := opts.Metrics.Counter("checkpoint_writes_total", "", nil).Value(); n < 1 {
		t.Fatalf("no checkpoints written during the run (count %d)", n)
	}
	sn, err := LoadCheckpointFile(dir)
	if err != nil {
		t.Fatalf("run left no loadable checkpoint: %v", err)
	}
	if sn.Sweep < opts.Checkpoint.Every {
		t.Fatalf("checkpoint at sweep %d, expected ≥ %d", sn.Sweep, opts.Checkpoint.Every)
	}

	// "Crash" happened: rerun the same options with Resume. The fit
	// restarts from the persisted sweep and must land on the identical
	// model.
	opts.Checkpoint.Resume = true
	resumed, err := RunOnRecipes(recipes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Metrics.Counter("checkpoint_loads_total", "", nil).Value() != 1 {
		t.Error("resume did not count a checkpoint load")
	}
	for k := range full.Model.Phi {
		for v := range full.Model.Phi[k] {
			if full.Model.Phi[k][v] != resumed.Model.Phi[k][v] {
				t.Fatalf("φ[%d][%d] diverged after resume: %v vs %v",
					k, v, resumed.Model.Phi[k][v], full.Model.Phi[k][v])
			}
		}
	}
	if len(full.Model.LogLik) != len(resumed.Model.LogLik) {
		t.Fatalf("loglik trace %d vs %d", len(resumed.Model.LogLik), len(full.Model.LogLik))
	}
}

// TestPipelineCheckpointRejectsRestarts: multi-chain restarts cannot
// share one checkpoint file.
func TestPipelineCheckpointRejectsRestarts(t *testing.T) {
	opts := testOptions()
	opts.Restarts = 3
	opts.Checkpoint = CheckpointOptions{Dir: t.TempDir()}
	recipes := mustGenerate(t, opts)
	if _, err := RunOnRecipes(recipes, opts); err == nil ||
		!strings.Contains(err.Error(), "single chain") {
		t.Fatalf("restarts+checkpointing should be rejected, got %v", err)
	}
}

// TestPipelineResumeWithoutCheckpointFallsBack: Resume with an empty
// directory is a fresh fit, not an error — so services can always pass
// -resume and survive their very first boot.
func TestPipelineResumeWithoutCheckpointFallsBack(t *testing.T) {
	opts := testOptions()
	opts.UseW2VFilter = false
	opts.Model.Iterations = 20
	opts.Checkpoint = CheckpointOptions{Dir: t.TempDir(), Every: 50, Resume: true}
	recipes := mustGenerate(t, opts)
	out, err := RunOnRecipes(recipes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Model == nil {
		t.Fatal("fresh fit did not happen")
	}
}
