// Package pipeline wires the full method end to end, in the order of
// the paper's Section III: corpus → tokenization → word2vec
// relatedness filter → dataset filters → feature construction → joint
// topic model.
package pipeline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lexicon"
	"repro/internal/obs"
	"repro/internal/recipe"
	"repro/internal/resilience"
	"repro/internal/textseg"
	"repro/internal/word2vec"
)

// Options configures a pipeline run.
type Options struct {
	Corpus corpus.Config
	Model  core.Config

	// UseW2VFilter enables the word2vec gel-relatedness term filter.
	UseW2VFilter bool
	W2V          word2vec.Config
	FilterTopK   int     // neighbours inspected per term
	FilterMinSim float64 // similarity floor for an offending neighbour
	FilterMargin float64 // contrastive margin over gel-ingredient similarity

	// MaxUnrelated is the unrelated-ingredient weight-share cutoff
	// (the paper's 10%).
	MaxUnrelated float64

	// Restarts > 1 fits that many independent chains and keeps the one
	// with the best post-burn-in log-likelihood (core.FitBest) — the
	// remedy for occasional split/merge local optima.
	Restarts int

	// Checkpoint enables durable crash recovery for the model-fit stage
	// (see CheckpointOptions). Incompatible with Restarts > 1.
	Checkpoint CheckpointOptions

	// Supervise runs the fit under the self-healing supervisor: sweeps
	// are health-checked (NaN / log-likelihood collapse / topic
	// implosion / degenerate covariance / stalls), and unhealthy chains
	// roll back to the last healthy checkpoint (when Checkpoint.Dir is
	// set) or restart reseeded. Incompatible with Restarts > 1 — the
	// supervisor owns the single chain.
	Supervise bool
	// MaxRestarts bounds supervised recovery attempts after the first
	// (default 3 when Supervise is set).
	MaxRestarts int
	// SweepTimeout arms the supervised stall watchdog: a sweep taking
	// longer than this aborts the attempt. 0 disables the watchdog.
	SweepTimeout time.Duration
	// MaxLLDrop is the supervised divergence threshold: a sweep whose
	// log-likelihood falls more than this below the best seen so far
	// aborts the attempt. 0 disables the drop check (NaN/±Inf is always
	// fatal under supervision).
	MaxLLDrop float64

	// ShardCount > 1 partitions the documents into that many contiguous
	// shards, fits each as an independent supervised chain, and merges
	// the shards' sufficient statistics into one model — the
	// corpus-scale fault-tolerant fit (internal/shardfit, which must be
	// imported to register the fitter). Incompatible with Restarts > 1,
	// Checkpoint.Dir (shards checkpoint under ShardDir) and
	// Model.LearnAlpha (α must stay fixed and shared across shards for
	// the statistics to merge).
	ShardCount int
	// ShardRetries bounds orchestrator-level retries per shard after a
	// worker dies (default 2). Retries replay the shard's own seed, so a
	// killed-and-retried worker reproduces its statistics bit-for-bit.
	ShardRetries int
	// StragglerTimeout, when positive, is the wall-clock budget of one
	// shard attempt. A shard that exhausts it (and its retries) is split
	// in half and the halves fitted separately — progress over
	// replaying the straggler forever.
	StragglerTimeout time.Duration
	// ShardDir, when non-empty, makes the sharded fit resumable: a
	// digest-checked manifest plus per-shard statistics files are
	// maintained there, and a restarted run refits only the shards that
	// were not durably fitted yet. Requires ShardCount > 1.
	ShardDir string

	// Metrics, when non-nil, receives stage timings
	// (pipeline_stage_seconds{stage=…}) and per-sweep sampler telemetry
	// (see SamplerMetrics). Stage timings are also always available on
	// Output.Timings.
	Metrics *obs.Registry
}

// DefaultOptions reproduces the paper's setup.
func DefaultOptions() Options {
	w := word2vec.DefaultConfig()
	// Frequent-word subsampling is counterproductive at recipe-corpus
	// size: it thins out exactly the topping-word co-occurrences the
	// relatedness filter needs.
	w.Subsample = 0
	m := core.DefaultConfig()
	// The paper calls emulsion effects subordinate to gel effects; λ=0.5
	// tempering encodes that and gives the best ground-truth recovery
	// (see BenchmarkAblationEmulsionWeight).
	m.EmulsionWeight = 0.5
	// A small α sharpens the word→y coupling of equation (3): with only
	// 1-4 texture tokens per recipe, α=0.5 lets the concentration channel
	// overrule the terms; α=0.1 recovers the ground-truth populations
	// markedly better.
	m.Alpha = 0.1
	return Options{
		Corpus:       corpus.DefaultConfig(),
		Model:        m,
		UseW2VFilter: true,
		W2V:          w,
		FilterTopK:   25,
		FilterMinSim: 0.25,
		FilterMargin: 0.15,
		MaxUnrelated: 0.10,
	}
}

// Output is everything a run produces.
type Output struct {
	Dict        *lexicon.Dictionary
	AllRecipes  []*recipe.Recipe // the generated corpus
	Kept        []*recipe.Recipe // recipes surviving the dataset filters
	Docs        []recipe.Doc     // model input, index-aligned with Model.Theta
	Model       *core.Result
	FilterStats recipe.FilterStats
	// ExcludedTerms is the set of texture-term kana the word2vec filter
	// removed, with the offending ingredient words.
	ExcludedTerms map[string][]string
	W2V           *word2vec.Model
	// Timings holds per-stage wall times in execution order.
	Timings []StageTiming
	// FitIncidents is the supervised fit's recovery history: empty for
	// unsupervised runs and for supervised runs that never needed a
	// rollback or restart. Not persisted in bundles.
	FitIncidents []resilience.Incident
	// Shards summarizes the sharded fit when ShardCount > 1 (nil
	// otherwise). Not persisted in bundles.
	Shards *ShardFitSummary
	// Ingest reports what the streaming decoder skipped (RunStream only).
	Ingest *recipe.DecodeReport
}

// ShardFitSummary is the orchestrator's account of a sharded fit —
// what /statusz shows and what the chaos/resume tests assert on.
type ShardFitSummary struct {
	// ShardCount is the number of shards after any resharding.
	ShardCount int `json:"shard_count"`
	// Resumed counts shards whose statistics were reused from the shard
	// directory instead of being refitted.
	Resumed int `json:"resumed"`
	// Fitted counts shards fitted (or refitted) by this run.
	Fitted int `json:"fitted"`
	// Retried counts orchestrator-level worker retries after failures.
	Retried int `json:"retried"`
	// Resharded counts shards that were split after straggler timeouts.
	Resharded int `json:"resharded"`
	// Incidents aggregates the per-shard supervisors' recovery history.
	Incidents []resilience.Incident `json:"incidents,omitempty"`
}

// ShardFitter is the sharded-fit entry point. internal/shardfit
// registers its orchestrator here at init; the indirection keeps the
// pipeline free of an import cycle (shardfit builds on the pipeline's
// durable shard files).
type ShardFitter func(data *core.Data, opts Options) (*core.Result, *ShardFitSummary, error)

var shardFitter ShardFitter

// RegisterShardFitter installs the sharded-fit implementation used
// when Options.ShardCount > 1. Called from internal/shardfit's init.
func RegisterShardFitter(f ShardFitter) { shardFitter = f }

// ErrOptions marks an Options combination the pipeline refuses to run.
var ErrOptions = errors.New("pipeline: invalid options")

// validate rejects option combinations with no coherent semantics
// before any stage spends work.
func (o *Options) validate() error {
	if o.Restarts > 1 && o.Checkpoint.Dir != "" {
		return fmt.Errorf("%w: Checkpoint.Dir with Restarts=%d (checkpointing tracks a single chain; drop Restarts or the checkpoint dir)",
			ErrOptions, o.Restarts)
	}
	if o.Restarts > 1 && o.Supervise {
		return fmt.Errorf("%w: Supervise with Restarts=%d (the supervisor owns a single chain; use MaxRestarts for recovery attempts)",
			ErrOptions, o.Restarts)
	}
	if o.MaxRestarts < 0 {
		return fmt.Errorf("%w: MaxRestarts=%d negative", ErrOptions, o.MaxRestarts)
	}
	if o.SweepTimeout < 0 {
		return fmt.Errorf("%w: SweepTimeout=%v negative", ErrOptions, o.SweepTimeout)
	}
	if o.MaxLLDrop < 0 {
		return fmt.Errorf("%w: MaxLLDrop=%g negative", ErrOptions, o.MaxLLDrop)
	}
	if o.ShardCount < 0 {
		return fmt.Errorf("%w: ShardCount=%d negative", ErrOptions, o.ShardCount)
	}
	if o.ShardRetries < 0 {
		return fmt.Errorf("%w: ShardRetries=%d negative", ErrOptions, o.ShardRetries)
	}
	if o.StragglerTimeout < 0 {
		return fmt.Errorf("%w: StragglerTimeout=%v negative", ErrOptions, o.StragglerTimeout)
	}
	if o.ShardCount > 1 {
		switch {
		case o.Restarts > 1:
			return fmt.Errorf("%w: ShardCount=%d with Restarts=%d (shards are single chains; retries and supervision handle recovery)",
				ErrOptions, o.ShardCount, o.Restarts)
		case o.Checkpoint.Dir != "":
			return fmt.Errorf("%w: ShardCount=%d with Checkpoint.Dir (shard checkpoints live under ShardDir)",
				ErrOptions, o.ShardCount)
		case o.Model.LearnAlpha:
			return fmt.Errorf("%w: ShardCount=%d with Model.LearnAlpha (α must stay fixed and shared for shard statistics to merge)",
				ErrOptions, o.ShardCount)
		}
	} else if o.ShardDir != "" {
		return fmt.Errorf("%w: ShardDir set but ShardCount=%d (the shard directory only serves a sharded fit)",
			ErrOptions, o.ShardCount)
	}
	return nil
}

// Run executes the full pipeline.
func Run(opts Options) (*Output, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	recipes, err := corpus.Generate(opts.Corpus)
	if err != nil {
		return nil, fmt.Errorf("pipeline: corpus: %w", err)
	}
	corpusElapsed := time.Since(start)
	out, err := RunOnRecipes(recipes, opts)
	if err != nil {
		return nil, err
	}
	// Prepend so Timings reads in execution order.
	out.Timings = append([]StageTiming{{Stage: "corpus", Elapsed: corpusElapsed}}, out.Timings...)
	if opts.Metrics != nil {
		opts.Metrics.Gauge("pipeline_stage_seconds",
			"Wall time of each pipeline stage for the most recent run.",
			obs.Labels{"stage": "corpus"}).Set(corpusElapsed.Seconds())
	}
	return out, nil
}

// RunOnRecipes executes the pipeline on an existing (resolved) corpus,
// so callers can bring their own recipe collection.
func RunOnRecipes(recipes []*recipe.Recipe, opts Options) (*Output, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	out := &Output{Dict: lexicon.Default(), AllRecipes: recipes, ExcludedTerms: map[string][]string{}}

	// Word2vec relatedness filter, trained on all descriptions.
	if opts.UseW2VFilter {
		start := time.Now()
		if err := out.trainFilter(recipes, opts); err != nil {
			return nil, err
		}
		out.recordStage(opts.Metrics, "word2vec_filter", start)
	}

	// Dataset filters: gel required, ≤ MaxUnrelated unrelated share,
	// and at least one surviving texture term.
	filterStart := time.Now()
	cfg := recipe.FilterConfig{
		MaxUnrelatedFraction: opts.MaxUnrelated,
		RequireGel:           true,
		RequireTexture:       true,
		HasTexture: func(r *recipe.Recipe) bool {
			return len(out.termIDs(r)) > 0
		},
	}
	out.Kept, out.FilterStats = recipe.Filter(recipes, cfg)

	// Model input.
	data := &core.Data{V: out.Dict.Len()}
	for _, r := range out.Kept {
		doc := recipe.Doc{
			RecipeID: r.ID,
			TermIDs:  out.termIDs(r),
			Gel:      r.GelFeatures(),
			Emulsion: r.EmulsionFeatures(),
			Truth:    r.Truth,
		}
		out.Docs = append(out.Docs, doc)
		data.Words = append(data.Words, doc.TermIDs)
		data.Gel = append(data.Gel, doc.Gel)
		data.Emu = append(data.Emu, doc.Emulsion)
	}
	if len(out.Docs) == 0 {
		return nil, fmt.Errorf("pipeline: no recipes survived the filters")
	}
	out.recordStage(opts.Metrics, "dataset_filter", filterStart)

	if opts.Metrics != nil {
		opts.Model.Hooks = opts.Model.Hooks.Then(SamplerMetrics(opts.Metrics))
	}
	modelStart := time.Now()
	res, incidents, shards, err := fitModel(data, opts)
	out.FitIncidents = incidents
	out.Shards = shards
	if err != nil {
		return nil, fmt.Errorf("pipeline: model: %w", err)
	}
	out.recordStage(opts.Metrics, "model", modelStart)
	out.Model = res
	// A freshly fitted model is structurally sound by construction;
	// prebuilding the fold-in kernel here moves its one-time cost off
	// the first annotation request.
	if _, err := res.BuildKernel(); err != nil {
		return nil, fmt.Errorf("pipeline: fold-in kernel: %w", err)
	}
	return out, nil
}

// termIDs extracts the recipe's texture-term IDs, dropping terms the
// word2vec filter excluded.
func (o *Output) termIDs(r *recipe.Recipe) []int {
	ids := o.Dict.ExtractTermIDs(r.Description)
	if len(o.ExcludedTerms) == 0 {
		return ids
	}
	kept := ids[:0:0]
	for _, id := range ids {
		if _, excluded := o.ExcludedTerms[o.Dict.Term(id).Kana]; !excluded {
			kept = append(kept, id)
		}
	}
	return kept
}

// trainFilter trains word2vec on the tokenized descriptions and marks
// texture terms whose neighbourhoods contain gel-unrelated ingredient
// words.
//
// The word2vec tokenizer's dictionary holds the texture terms AND all
// registry ingredient names: without the latter, an ingredient mention
// glues onto the following particles (なっつをのせて as one token) and
// the filter can never see the ingredient as a neighbour.
func (o *Output) trainFilter(recipes []*recipe.Recipe, opts Options) error {
	tok := o.filterTokenizer()
	sentences := make([][]string, 0, len(recipes))
	observed := make(map[string]bool)
	for _, r := range recipes {
		o.observeDescription(tok, r.Description, observed, func(sent []string) {
			sentences = append(sentences, sent)
		})
	}
	return o.trainFilterFromSentences(sentences, observed, opts)
}

// filterTokenizer builds the word2vec tokenizer: the texture-term trie
// extended with all registry ingredient names, so ingredient mentions
// segment as their own tokens (see trainFilter).
func (o *Output) filterTokenizer() *textseg.Tokenizer {
	trie := o.Dict.Trie()
	next := o.Dict.Len()
	for _, info := range recipe.KnownIngredients() {
		trie.Insert(textseg.Normalize(info.Name), next)
		next++
		for _, a := range info.Aliases {
			trie.Insert(textseg.Normalize(a), next)
			next++
		}
	}
	return textseg.NewTokenizer(trie)
}

// observeDescription tokenizes one description, hands its sentence to
// emit (when it carries more than one token) and marks the texture
// terms it contains in observed.
func (o *Output) observeDescription(tok *textseg.Tokenizer, desc string, observed map[string]bool, emit func([]string)) {
	toks := tok.Tokenize(desc)
	sent := textseg.Surfaces(toks)
	if len(sent) > 1 {
		emit(sent)
	}
	for _, t := range toks {
		if !t.InDict {
			continue
		}
		// Only texture terms count as filter candidates; the combined
		// trie also matches ingredient names.
		if _, isTerm := o.Dict.ByKana(t.Surface); isTerm {
			observed[t.Surface] = true
		}
	}
}

// trainFilterFromSentences is trainFilter's training half, shared with
// the streaming ingestion path (which collects sentences by reservoir
// instead of holding every description).
func (o *Output) trainFilterFromSentences(sentences [][]string, observed map[string]bool, opts Options) error {
	model, err := word2vec.Train(sentences, opts.W2V)
	if err != nil {
		return fmt.Errorf("pipeline: word2vec: %w", err)
	}
	o.W2V = model

	terms := make([]string, 0, len(observed))
	for t := range observed {
		terms = append(terms, t)
	}
	results := word2vec.FilterContrastive(model, terms,
		UnrelatedIngredientWords(), GelIngredientWords(),
		opts.FilterTopK, opts.FilterMinSim, opts.FilterMargin)
	for _, res := range results {
		if res.Excluded {
			o.ExcludedTerms[res.Term] = res.Offending
		}
	}
	return nil
}

// GelIngredientWords returns the normalized surface forms of the gel
// ingredients, the contrast anchors of the relatedness filter.
func GelIngredientWords() []string {
	var out []string
	for _, info := range recipe.KnownIngredients() {
		if info.Category != recipe.CategoryGel {
			continue
		}
		out = append(out, textseg.Normalize(info.Name))
		for _, a := range info.Aliases {
			out = append(out, textseg.Normalize(a))
		}
	}
	return out
}

// UnrelatedIngredientWords returns the normalized surface forms of all
// gel-unrelated (CategoryOther) ingredients in the registry — the
// offending-neighbour vocabulary of the word2vec filter.
func UnrelatedIngredientWords() []string {
	var out []string
	for _, info := range recipe.KnownIngredients() {
		if info.Category != recipe.CategoryOther {
			continue
		}
		out = append(out, textseg.Normalize(info.Name))
		for _, a := range info.Aliases {
			out = append(out, textseg.Normalize(a))
		}
	}
	return out
}
