package pipeline

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// CheckpointFile is the fixed name of the chain checkpoint inside a
// checkpoint directory. One file, atomically replaced on every write:
// after a crash there is exactly one candidate to resume from.
const CheckpointFile = "checkpoint.ckpt"

// checkpointSchemaVersion guards the checkpoint payload layout (the
// core snapshot wire format rides inside; core versions that itself).
const checkpointSchemaVersion = 1

// WriteCheckpointFile persists the snapshot to dir/checkpoint.ckpt in
// the format-2 durable container (kind "checkpoint"), crash-safely via
// temp file + fsync + atomic rename. The directory is created if absent.
func WriteCheckpointFile(dir string, sn *core.Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pipeline: checkpoint dir: %w", err)
	}
	var body bytes.Buffer
	gz := gzip.NewWriter(&body)
	if err := sn.WriteJSON(gz); err != nil {
		return fmt.Errorf("pipeline: encoding checkpoint: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("pipeline: compressing checkpoint: %w", err)
	}
	return writeFileAtomic(filepath.Join(dir, CheckpointFile), func(w *bufio.Writer) error {
		return writeContainer(w, kindCheckpoint, checkpointSchemaVersion, body.Bytes())
	})
}

// LoadCheckpointFile reads dir/checkpoint.ckpt. A missing file returns
// an error satisfying errors.Is(err, fs.ErrNotExist) so callers can
// fall back to a fresh fit; damaged or foreign files return wrapped
// ErrCorrupt / ErrVersion / ErrKind like bundles do.
func LoadCheckpointFile(dir string) (*core.Snapshot, error) {
	path := filepath.Join(dir, CheckpointFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening checkpoint: %w", err)
	}
	defer f.Close()
	sn, err := readCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sn, nil
}

// readCheckpoint parses a checkpoint container stream.
func readCheckpoint(r io.Reader) (*core.Snapshot, error) {
	var magic [len(containerMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint magic missing: %w: %w", ErrCorrupt, err)
	}
	if string(magic[:]) != containerMagic {
		return nil, fmt.Errorf("pipeline: not a checkpoint container: %w", ErrCorrupt)
	}
	payload, schema, err := readContainer(r, kindCheckpoint)
	if err != nil {
		return nil, err
	}
	if schema > checkpointSchemaVersion || schema < 1 {
		return nil, fmt.Errorf("pipeline: checkpoint schema %d, this build reads ≤ %d: %w",
			schema, checkpointSchemaVersion, ErrVersion)
	}
	gz, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("pipeline: opening checkpoint payload: %w: %w", ErrCorrupt, err)
	}
	defer gz.Close()
	sn, err := core.ReadSnapshotJSON(gz)
	if err != nil {
		return nil, fmt.Errorf("pipeline: decoding checkpoint: %w: %w", ErrCorrupt, err)
	}
	return sn, nil
}

// CheckpointWriter writes snapshots in the background so the sampler
// never blocks on disk. It is single-flight: if a write is still in
// progress when the next snapshot arrives, the new one is skipped (the
// following checkpoint will capture a fresher state anyway). A failed
// write is sticky — the NEXT Write call returns it, aborting the chain
// instead of sampling on top of a dead disk.
type CheckpointWriter struct {
	dir string

	writes *obs.Counter
	errs   *obs.Counter
	skips  *obs.Counter
	last   *obs.Gauge

	mu   sync.Mutex
	busy bool
	err  error
	wg   sync.WaitGroup
}

// NewCheckpointWriter builds a writer targeting dir. reg may be nil;
// when set, the writer maintains checkpoint_writes_total,
// checkpoint_write_errors_total, checkpoint_skipped_total and
// checkpoint_last_sweep.
func NewCheckpointWriter(dir string, reg *obs.Registry) *CheckpointWriter {
	w := &CheckpointWriter{dir: dir}
	if reg != nil {
		w.writes = reg.Counter("checkpoint_writes_total",
			"Chain checkpoints durably written.", nil)
		w.errs = reg.Counter("checkpoint_write_errors_total",
			"Chain checkpoint writes that failed.", nil)
		w.skips = reg.Counter("checkpoint_skipped_total",
			"Checkpoints skipped because the previous write was still in flight.", nil)
		w.last = reg.Gauge("checkpoint_last_sweep",
			"Sweep index of the most recently persisted checkpoint.", nil)
	}
	return w
}

// Write hands the snapshot to the background writer and returns
// immediately. Safe to use directly as core.Config.CheckpointFunc: the
// snapshot is already a deep copy, so the chain may keep mutating.
func (w *CheckpointWriter) Write(sn *core.Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.busy {
		if w.skips != nil {
			w.skips.Inc()
		}
		return nil
	}
	w.busy = true
	w.wg.Add(1)
	go func() {
		err := WriteCheckpointFile(w.dir, sn)
		w.mu.Lock()
		w.busy = false
		if err != nil {
			w.err = err
			if w.errs != nil {
				w.errs.Inc()
			}
		} else {
			if w.writes != nil {
				w.writes.Inc()
			}
			if w.last != nil {
				w.last.Set(float64(sn.Sweep))
			}
		}
		w.mu.Unlock()
		w.wg.Done()
	}()
	return nil
}

// Flush waits for any in-flight write and returns the sticky error, if
// one occurred. Call after the fit finishes so the final checkpoint is
// on disk before the process reports success.
func (w *CheckpointWriter) Flush() error {
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// CheckpointOptions configures crash recovery for the model-fit stage.
type CheckpointOptions struct {
	// Dir, when non-empty, enables checkpointing: the chain state is
	// durably written to Dir/checkpoint.ckpt every Every sweeps.
	Dir string
	// Every is the checkpoint cadence in sweeps (default 25).
	Every int
	// Resume loads an existing checkpoint from Dir and continues the
	// chain from it instead of starting fresh. A missing checkpoint
	// falls back to a fresh fit; a damaged one is an error.
	Resume bool
}

// fitModel runs the model stage, honouring restarts and checkpointing.
func fitModel(data *core.Data, opts Options) (*core.Result, error) {
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	ck := opts.Checkpoint
	if ck.Dir == "" {
		return core.FitBest(data, opts.Model, restarts)
	}
	if restarts > 1 {
		return nil, fmt.Errorf("pipeline: checkpointing supports a single chain, not Restarts=%d", restarts)
	}
	cfg := opts.Model
	cfg.CheckpointEvery = ck.Every
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 25
	}
	writer := NewCheckpointWriter(ck.Dir, opts.Metrics)
	cfg.CheckpointFunc = writer.Write

	var res *core.Result
	var err error
	if ck.Resume {
		var sn *core.Snapshot
		sn, err = LoadCheckpointFile(ck.Dir)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			res, err = core.Fit(data, cfg) // nothing to resume yet
		case err != nil:
			return nil, err
		default:
			if opts.Metrics != nil {
				opts.Metrics.Counter("checkpoint_loads_total",
					"Chain checkpoints loaded for resume.", nil).Inc()
			}
			res, err = core.ResumeFit(data, cfg, sn)
		}
	} else {
		res, err = core.Fit(data, cfg)
	}
	if err != nil {
		return nil, err
	}
	if err := writer.Flush(); err != nil {
		return nil, fmt.Errorf("pipeline: final checkpoint: %w", err)
	}
	return res, nil
}
