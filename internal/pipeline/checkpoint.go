package pipeline

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// CheckpointFile is the fixed name of the chain checkpoint inside a
// checkpoint directory. One file, atomically replaced on every write:
// after a crash there is exactly one candidate to resume from.
const CheckpointFile = "checkpoint.ckpt"

// checkpointSchemaVersion guards the checkpoint payload layout (the
// core snapshot wire format rides inside; core versions that itself).
const checkpointSchemaVersion = 1

// ErrUnhealthyCheckpoint marks a checkpoint whose health digest (or
// log-likelihood trace) shows the chain had already diverged when it
// was written. The supervisor skips such checkpoints and restarts
// fresh instead of resuming garbage.
var ErrUnhealthyCheckpoint = errors.New("pipeline: checkpoint unhealthy")

// CheckpointHealth is the health digest stamped into a checkpoint
// container's header: enough for a supervisor to decide "safe to
// resume?" without decompressing the payload.
type CheckpointHealth struct {
	// Sweep is the snapshot's completed-sweep index.
	Sweep int `json:"sweep"`
	// LogLik is the last finite log-likelihood in the trace (0 when the
	// trace is empty). Kept finite by construction: JSON cannot carry
	// NaN, and a non-finite trace flips Healthy off instead.
	LogLik float64 `json:"loglik"`
	// Healthy is false when the trace contains a non-finite value — the
	// signature of a checkpoint written mid-divergence.
	Healthy bool `json:"healthy"`
	// Reason explains an unhealthy digest.
	Reason string `json:"reason,omitempty"`
}

// snapshotHealth derives the digest from the snapshot's own trace: a
// chain is presumed healthy unless its log-likelihood history says
// otherwise. Also used on load, so a digest cannot claim health its
// payload contradicts (and legacy digest-less checkpoints get the same
// scrutiny).
func snapshotHealth(sn *core.Snapshot) CheckpointHealth {
	h := CheckpointHealth{Sweep: sn.Sweep, Healthy: true}
	for i, v := range sn.LogLik {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			h.Healthy = false
			h.Reason = fmt.Sprintf("non-finite log-likelihood at trace index %d", i)
			continue
		}
		h.LogLik = v
	}
	return h
}

// WriteCheckpointFile persists the snapshot to dir/checkpoint.ckpt in
// the format-2 durable container (kind "checkpoint"), crash-safely via
// temp file + fsync + atomic rename, stamping the header with a health
// digest derived from the snapshot's log-likelihood trace. The
// directory is created if absent.
func WriteCheckpointFile(dir string, sn *core.Snapshot) error {
	h := snapshotHealth(sn)
	return WriteCheckpointFileWithHealth(dir, sn, h)
}

// WriteCheckpointFileWithHealth is WriteCheckpointFile with an
// explicit health digest — for callers that know more than the trace
// shows (or tests forging diverged checkpoints). A non-finite LogLik
// is sanitized to keep the header JSON-encodable.
func WriteCheckpointFileWithHealth(dir string, sn *core.Snapshot, h CheckpointHealth) error {
	if math.IsNaN(h.LogLik) || math.IsInf(h.LogLik, 0) {
		h.LogLik = 0
		h.Healthy = false
		if h.Reason == "" {
			h.Reason = "non-finite log-likelihood"
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pipeline: checkpoint dir: %w", err)
	}
	var body bytes.Buffer
	gz := gzip.NewWriter(&body)
	if err := sn.WriteJSON(gz); err != nil {
		return fmt.Errorf("pipeline: encoding checkpoint: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("pipeline: compressing checkpoint: %w", err)
	}
	return AtomicWriteFile(filepath.Join(dir, CheckpointFile), func(w *bufio.Writer) error {
		return writeContainer(w, kindCheckpoint, checkpointSchemaVersion, body.Bytes(), &h)
	})
}

// LoadCheckpointFile reads dir/checkpoint.ckpt. A missing file returns
// an error satisfying errors.Is(err, fs.ErrNotExist) so callers can
// fall back to a fresh fit; damaged or foreign files return wrapped
// ErrCorrupt / ErrVersion / ErrKind like bundles do.
func LoadCheckpointFile(dir string) (*core.Snapshot, error) {
	sn, _, err := LoadCheckpointWithHealth(dir)
	return sn, err
}

// LoadCheckpointWithHealth is LoadCheckpointFile exposing the health
// digest. Checkpoints from writers predating the digest derive one
// from the snapshot's trace; either way the digest is cross-checked
// against the trace, so Healthy=true means both header and payload
// agree the chain was clean.
func LoadCheckpointWithHealth(dir string) (*core.Snapshot, CheckpointHealth, error) {
	path := filepath.Join(dir, CheckpointFile)
	f, err := os.Open(path)
	if err != nil {
		return nil, CheckpointHealth{}, fmt.Errorf("pipeline: opening checkpoint: %w", err)
	}
	defer f.Close()
	sn, h, err := readCheckpoint(f)
	if err != nil {
		return nil, h, fmt.Errorf("%s: %w", path, err)
	}
	return sn, h, nil
}

// readCheckpoint parses a checkpoint container stream.
func readCheckpoint(r io.Reader) (*core.Snapshot, CheckpointHealth, error) {
	var health CheckpointHealth
	var magic [len(containerMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, health, fmt.Errorf("pipeline: checkpoint magic missing: %w: %w", ErrCorrupt, err)
	}
	if string(magic[:]) != containerMagic {
		return nil, health, fmt.Errorf("pipeline: not a checkpoint container: %w", ErrCorrupt)
	}
	payload, hdr, err := readContainer(r, kindCheckpoint)
	if err != nil {
		return nil, health, err
	}
	if hdr.Schema > checkpointSchemaVersion || hdr.Schema < 1 {
		return nil, health, fmt.Errorf("pipeline: checkpoint schema %d, this build reads ≤ %d: %w",
			hdr.Schema, checkpointSchemaVersion, ErrVersion)
	}
	gz, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, health, fmt.Errorf("pipeline: opening checkpoint payload: %w: %w", ErrCorrupt, err)
	}
	defer gz.Close()
	sn, err := core.ReadSnapshotJSON(gz)
	if err != nil {
		return nil, health, fmt.Errorf("pipeline: decoding checkpoint: %w: %w", ErrCorrupt, err)
	}
	derived := snapshotHealth(sn)
	if hdr.Health == nil {
		// Pre-digest writer: judge the chain by its trace alone.
		health = derived
	} else {
		health = *hdr.Health
		if health.Healthy && !derived.Healthy {
			// The header claims health the payload contradicts; trust the
			// evidence over the label.
			health.Healthy = false
			health.Reason = derived.Reason
		}
	}
	return sn, health, nil
}

// CheckpointWriter writes snapshots in the background so the sampler
// never blocks on disk. It is single-flight: if a write is still in
// progress when the next snapshot arrives, the new one is skipped (the
// following checkpoint will capture a fresher state anyway). A failed
// write is sticky — the NEXT Write call returns it, aborting the chain
// instead of sampling on top of a dead disk.
type CheckpointWriter struct {
	dir string

	// Injector, when non-nil, injects faults into the durable write
	// path (operation "checkpoint.write") before the temp+rename
	// sequence runs — the crash-during-checkpoint-write test hook. Set
	// it before the first Write; it is read from the writer goroutine.
	Injector resilience.Injector

	writes *obs.Counter
	errs   *obs.Counter
	skips  *obs.Counter
	last   *obs.Gauge

	mu   sync.Mutex
	busy bool
	err  error
	wg   sync.WaitGroup
}

// NewCheckpointWriter builds a writer targeting dir. reg may be nil;
// when set, the writer maintains checkpoint_writes_total,
// checkpoint_write_errors_total, checkpoint_skipped_total and
// checkpoint_last_sweep.
func NewCheckpointWriter(dir string, reg *obs.Registry) *CheckpointWriter {
	w := &CheckpointWriter{dir: dir}
	if reg != nil {
		w.writes = reg.Counter("checkpoint_writes_total",
			"Chain checkpoints durably written.", nil)
		w.errs = reg.Counter("checkpoint_write_errors_total",
			"Chain checkpoint writes that failed.", nil)
		w.skips = reg.Counter("checkpoint_skipped_total",
			"Checkpoints skipped because the previous write was still in flight.", nil)
		w.last = reg.Gauge("checkpoint_last_sweep",
			"Sweep index of the most recently persisted checkpoint.", nil)
	}
	return w
}

// Write hands the snapshot to the background writer and returns
// immediately. Safe to use directly as core.Config.CheckpointFunc: the
// snapshot is already a deep copy, so the chain may keep mutating.
func (w *CheckpointWriter) Write(sn *core.Snapshot) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.busy {
		if w.skips != nil {
			w.skips.Inc()
		}
		return nil
	}
	w.busy = true
	w.wg.Add(1)
	go func() {
		err := resilience.Inject(context.Background(), w.Injector, "checkpoint.write")
		if err == nil {
			err = WriteCheckpointFile(w.dir, sn)
		}
		w.mu.Lock()
		w.busy = false
		if err != nil {
			w.err = err
			if w.errs != nil {
				w.errs.Inc()
			}
		} else {
			if w.writes != nil {
				w.writes.Inc()
			}
			if w.last != nil {
				w.last.Set(float64(sn.Sweep))
			}
		}
		w.mu.Unlock()
		w.wg.Done()
	}()
	return nil
}

// Flush waits for any in-flight write and returns the sticky error, if
// one occurred. Call after the fit finishes so the final checkpoint is
// on disk before the process reports success.
func (w *CheckpointWriter) Flush() error {
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// CheckpointOptions configures crash recovery for the model-fit stage.
type CheckpointOptions struct {
	// Dir, when non-empty, enables checkpointing: the chain state is
	// durably written to Dir/checkpoint.ckpt every Every sweeps.
	Dir string
	// Every is the checkpoint cadence in sweeps (default 25).
	Every int
	// Resume loads an existing checkpoint from Dir and continues the
	// chain from it instead of starting fresh. A missing checkpoint
	// falls back to a fresh fit; a damaged one is an error (unless the
	// fit is supervised, in which case the supervisor starts fresh and
	// records the skip).
	Resume bool
}

// FitCheckpointStore adapts the pipeline's single-file durable
// checkpoint to the supervisor's CheckpointStore: health-gated loads,
// a fresh background writer per attempt, and discard-by-rename so a
// burned checkpoint stays on disk for post-mortems.
type FitCheckpointStore struct {
	Dir     string
	Metrics *obs.Registry
	// Injector is forwarded to each attempt's CheckpointWriter (fault
	// injection for the durable write path).
	Injector resilience.Injector
}

// Writer returns a fresh CheckpointWriter pair for one fit attempt.
func (st *FitCheckpointStore) Writer() (func(*core.Snapshot) error, func() error) {
	w := NewCheckpointWriter(st.Dir, st.Metrics)
	w.Injector = st.Injector
	return w.Write, w.Flush
}

// LoadHealthy loads the checkpoint only when its health digest — and
// the trace inside — agree the chain was clean at write time.
func (st *FitCheckpointStore) LoadHealthy() (*core.Snapshot, error) {
	sn, h, err := LoadCheckpointWithHealth(st.Dir)
	if err != nil {
		return nil, err
	}
	if !h.Healthy {
		return nil, fmt.Errorf("%w: sweep %d: %s", ErrUnhealthyCheckpoint, h.Sweep, h.Reason)
	}
	return sn, nil
}

// Discard retires the current checkpoint by renaming it to
// checkpoint.ckpt.discarded (replacing any earlier discard), keeping
// the diverged state inspectable. A missing checkpoint is a no-op.
func (st *FitCheckpointStore) Discard(reason string) error {
	_ = reason // recorded by the supervisor's incident, not on disk
	src := filepath.Join(st.Dir, CheckpointFile)
	err := os.Rename(src, src+".discarded")
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// fitModel runs the model stage, honouring sharding, restarts,
// checkpointing and supervision. The incident slice is non-empty only
// for supervised fits that needed recovery; the summary is non-nil
// only for sharded fits.
func fitModel(data *core.Data, opts Options) (*core.Result, []resilience.Incident, *ShardFitSummary, error) {
	if opts.ShardCount > 1 {
		if shardFitter == nil {
			return nil, nil, nil, fmt.Errorf("%w: ShardCount=%d but no shard fitter is registered (import repro/internal/shardfit)",
				ErrOptions, opts.ShardCount)
		}
		res, sum, err := shardFitter(data, opts)
		if err != nil {
			var inc []resilience.Incident
			if sum != nil {
				inc = sum.Incidents
			}
			return nil, inc, sum, err
		}
		return res, sum.Incidents, sum, nil
	}
	res, incidents, err := fitUnsharded(data, opts)
	return res, incidents, nil, err
}

// fitUnsharded is the single-model fit path (every mode except
// ShardCount > 1).
func fitUnsharded(data *core.Data, opts Options) (*core.Result, []resilience.Incident, error) {
	if opts.Supervise {
		return fitSupervised(data, opts)
	}
	restarts := opts.Restarts
	if restarts < 1 {
		restarts = 1
	}
	ck := opts.Checkpoint
	if ck.Dir == "" {
		res, err := core.FitBest(data, opts.Model, restarts)
		return res, nil, err
	}
	if restarts > 1 {
		// Unreachable via Run/RunOnRecipes (Options.validate rejects the
		// combination) but kept for direct callers.
		return nil, nil, fmt.Errorf("checkpointing supports a single chain, not Restarts=%d: %w", restarts, ErrOptions)
	}
	cfg := opts.Model
	cfg.CheckpointEvery = ck.Every
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 25
	}
	writer := NewCheckpointWriter(ck.Dir, opts.Metrics)
	cfg.CheckpointFunc = writer.Write

	var res *core.Result
	var err error
	if ck.Resume {
		var sn *core.Snapshot
		sn, err = LoadCheckpointFile(ck.Dir)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			res, err = core.Fit(data, cfg) // nothing to resume yet
		case err != nil:
			return nil, nil, err
		default:
			if opts.Metrics != nil {
				opts.Metrics.Counter("checkpoint_loads_total",
					"Chain checkpoints loaded for resume.", nil).Inc()
			}
			res, err = core.ResumeFit(data, cfg, sn)
		}
	} else {
		res, err = core.Fit(data, cfg)
	}
	if err != nil {
		return nil, nil, err
	}
	if err := writer.Flush(); err != nil {
		return nil, nil, fmt.Errorf("pipeline: final checkpoint: %w", err)
	}
	return res, nil, nil
}

// fitSupervised wires Options into the resilience supervisor: health
// policy thresholds, the checkpoint store (when a checkpoint dir is
// configured), health/restart/rollback metrics, and the startup
// resume. Unlike the plain resume path, a corrupt or diverged
// checkpoint is not fatal here — self-healing means starting fresh and
// saying so.
func fitSupervised(data *core.Data, opts Options) (*core.Result, []resilience.Incident, error) {
	cfg := opts.Model
	cfg.Health.MaxLLDrop = opts.MaxLLDrop
	cfg.Health.SweepTimeout = opts.SweepTimeout
	if cfg.Health.MinTopics == 0 {
		cfg.Health.MinTopics = 1
	}
	if opts.Metrics != nil {
		reg := opts.Metrics
		prev := cfg.Health.OnEvent
		cfg.Health.OnEvent = func(ev core.HealthEvent) {
			reg.Counter("fit_health_events_total",
				"Numerical-health violations detected during model fits.",
				obs.Labels{"kind": string(ev.Kind)}).Inc()
			if prev != nil {
				prev(ev)
			}
		}
	}

	var store resilience.CheckpointStore
	var initial *core.Snapshot
	ck := opts.Checkpoint
	if ck.Dir != "" {
		cfg.CheckpointEvery = ck.Every
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 25
		}
		st := &FitCheckpointStore{Dir: ck.Dir, Metrics: opts.Metrics}
		store = st
		if ck.Resume {
			sn, err := st.LoadHealthy()
			switch {
			case err == nil:
				initial = sn
				if opts.Metrics != nil {
					opts.Metrics.Counter("checkpoint_loads_total",
						"Chain checkpoints loaded for resume.", nil).Inc()
				}
			case errors.Is(err, fs.ErrNotExist):
				// Nothing to resume yet.
			case errors.Is(err, ErrUnhealthyCheckpoint) || errors.Is(err, ErrCorrupt) ||
				errors.Is(err, core.ErrSnapshot):
				// A diverged or damaged checkpoint must not block recovery;
				// retire it and start fresh.
				_ = st.Discard("unusable at startup resume: " + err.Error())
			default:
				return nil, nil, err
			}
		}
	}

	maxRestarts := opts.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = 3
	}
	sup := &resilience.Supervisor{
		MaxRestarts: maxRestarts,
		Backoff: resilience.Backoff{
			Base: 50 * time.Millisecond,
			Max:  2 * time.Second,
			Seed: cfg.Seed,
		},
		Store: store,
	}
	if opts.Metrics != nil {
		restartsC := opts.Metrics.Counter("fit_restarts_total",
			"Supervised fit attempts restarted after an incident.", nil)
		rollbackC := opts.Metrics.Counter("fit_rollback_sweeps_total",
			"Sweeps of progress lost to checkpoint rollbacks.", nil)
		sup.OnIncident = func(inc resilience.Incident) {
			if inc.Action == resilience.ActionGaveUp {
				return
			}
			restartsC.Inc()
			if inc.Action == resilience.ActionRollback && inc.ResumedFrom >= 0 && inc.Sweep > inc.ResumedFrom {
				rollbackC.Add(int64(inc.Sweep - inc.ResumedFrom))
			}
		}
	}
	return sup.RunFit(context.Background(), data, cfg, initial)
}
