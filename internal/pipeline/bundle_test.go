package pipeline

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

func TestBundleRoundTrip(t *testing.T) {
	opts := testOptions()
	opts.Corpus.ConfoundRate = 0.3 // exercise excluded-term persistence
	out := runTestPipeline(t, opts)

	var buf bytes.Buffer
	if err := out.SaveBundle(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model.K != out.Model.K || got.Model.V != out.Model.V {
		t.Errorf("model shape lost: %d/%d vs %d/%d", got.Model.K, got.Model.V, out.Model.K, out.Model.V)
	}
	if len(got.Docs) != len(out.Docs) {
		t.Fatalf("docs: %d vs %d", len(got.Docs), len(out.Docs))
	}
	for i := range got.Docs {
		if got.Docs[i].RecipeID != out.Docs[i].RecipeID || got.Docs[i].Truth != out.Docs[i].Truth {
			t.Fatalf("doc %d differs", i)
		}
	}
	if len(got.ExcludedTerms) != len(out.ExcludedTerms) {
		t.Errorf("exclusions: %d vs %d", len(got.ExcludedTerms), len(out.ExcludedTerms))
	}
	// The loaded model supports fold-in (hyperparameters survived).
	theta, err := got.Model.FoldIn(nil, got.Docs[0].Gel, got.Docs[0].Emulsion, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(theta) != got.Model.K {
		t.Error("fold-in on loaded model broken")
	}
	// φ rows identical.
	for k := range out.Model.Phi {
		for v := range out.Model.Phi[k] {
			if out.Model.Phi[k][v] != got.Model.Phi[k][v] {
				t.Fatal("φ lost precision")
			}
		}
	}
}

func TestSaveBundleUnfitted(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Output{}).SaveBundle(&buf); err == nil {
		t.Error("unfitted output should fail")
	}
}

func TestLoadBundleErrors(t *testing.T) {
	// Not gzip.
	if _, err := LoadBundle(strings.NewReader("plain text")); err == nil {
		t.Error("non-gzip input should fail")
	}
	// Gzip but not a bundle.
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write([]byte("not json"))
	gz.Close()
	if _, err := LoadBundle(&buf); err == nil {
		t.Error("non-JSON bundle should fail")
	}
	// Wrong version.
	buf.Reset()
	gz = gzip.NewWriter(&buf)
	gz.Write([]byte(`{"version": 99, "docs": [], "model": {}}`))
	gz.Close()
	if _, err := LoadBundle(&buf); err == nil {
		t.Error("wrong version should fail")
	}
}
