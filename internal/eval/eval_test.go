package eval

import (
	"math"
	"testing"
)

func TestContingencyPerfect(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2, 2}
	truth := []int{5, 5, 7, 7, 9, 9} // relabeled but identical partition
	c, err := NewContingency(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Purity(); got != 1 {
		t.Errorf("purity = %g", got)
	}
	if got := c.NMI(); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI = %g", got)
	}
	if got := c.VMeasure(); math.Abs(got-1) > 1e-12 {
		t.Errorf("V = %g", got)
	}
}

func TestContingencyRandom(t *testing.T) {
	// Independent labels: MI ≈ 0.
	pred := []int{0, 1, 0, 1, 0, 1, 0, 1}
	truth := []int{0, 0, 1, 1, 0, 0, 1, 1}
	c, err := NewContingency(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MutualInformation(); math.Abs(got) > 1e-12 {
		t.Errorf("MI = %g, want 0", got)
	}
	if got := c.NMI(); math.Abs(got) > 1e-12 {
		t.Errorf("NMI = %g, want 0", got)
	}
	if got := c.Purity(); got != 0.5 {
		t.Errorf("purity = %g, want 0.5", got)
	}
}

func TestContingencyPartial(t *testing.T) {
	pred := []int{0, 0, 0, 1, 1, 1}
	truth := []int{0, 0, 1, 1, 1, 1}
	c, err := NewContingency(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Purity(); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("purity = %g", got)
	}
	nmi := c.NMI()
	if nmi <= 0 || nmi >= 1 {
		t.Errorf("NMI = %g, want in (0,1)", nmi)
	}
	v := c.VMeasure()
	if v <= 0 || v >= 1 {
		t.Errorf("V = %g, want in (0,1)", v)
	}
}

func TestContingencyErrors(t *testing.T) {
	if _, err := NewContingency([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewContingency(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestCoherenceOrdersTopics(t *testing.T) {
	// Terms 0,1 always co-occur; terms 2,3 never do.
	docs := [][]int{
		{0, 1}, {0, 1}, {0, 1}, {0, 1},
		{2}, {3}, {2}, {3},
	}
	coherent := Coherence([]int{0, 1}, docs)
	incoherent := Coherence([]int{2, 3}, docs)
	if coherent <= incoherent {
		t.Errorf("coherent %g should exceed incoherent %g", coherent, incoherent)
	}
	if got := Coherence([]int{0}, docs); got != 0 {
		t.Errorf("single-term coherence = %g", got)
	}
}

func TestPerplexity(t *testing.T) {
	// Uniform model over 4 words → perplexity 4.
	docs := [][]int{{0, 1}, {2, 3}}
	theta := [][]float64{{1}, {1}}
	phi := [][]float64{{0.25, 0.25, 0.25, 0.25}}
	p, err := Perplexity(docs, theta, phi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-4) > 1e-9 {
		t.Errorf("perplexity = %g, want 4", p)
	}
	// Better model → lower perplexity.
	phi2 := [][]float64{{0.4, 0.4, 0.1, 0.1}}
	docs2 := [][]int{{0, 1}, {0, 1}}
	p2, err := Perplexity(docs2, theta, phi2)
	if err != nil {
		t.Fatal(err)
	}
	if p2 >= 4 {
		t.Errorf("informed perplexity = %g, want < 4", p2)
	}
	// Errors.
	if _, err := Perplexity(docs, theta[:1], phi); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Perplexity([][]int{{}}, [][]float64{{1}}, phi); err == nil {
		t.Error("no words should fail")
	}
	zero := [][]float64{{0, 1, 0, 0}}
	if _, err := Perplexity([][]int{{0}}, theta[:1], zero); err == nil {
		t.Error("zero probability should fail")
	}
}

func TestBootstrapClusterMetric(t *testing.T) {
	// Mostly correct clustering with some noise.
	var pred, truth []int
	for i := 0; i < 300; i++ {
		k := i % 3
		truth = append(truth, k)
		if i%11 == 0 {
			pred = append(pred, (k+1)%3)
		} else {
			pred = append(pred, k)
		}
	}
	ci, err := BootstrapClusterMetric(pred, truth,
		func(c *Contingency) float64 { return c.Purity() }, 200, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Errorf("CI does not bracket the point: %+v", ci)
	}
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 0.2 {
		t.Errorf("implausible CI width: %+v", ci)
	}
	if math.Abs(ci.Point-float64(300-28)/300) > 0.01 {
		t.Errorf("point = %g", ci.Point)
	}
	// Deterministic for a seed.
	ci2, err := BootstrapClusterMetric(pred, truth,
		func(c *Contingency) float64 { return c.Purity() }, 200, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ci != ci2 {
		t.Error("bootstrap not deterministic for fixed seed")
	}
	// Validation.
	if _, err := BootstrapClusterMetric(pred, truth[:10], nil, 200, 0.95, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := BootstrapClusterMetric(pred, truth, nil, 5, 0.95, 1); err == nil {
		t.Error("too few resamples should fail")
	}
	if _, err := BootstrapClusterMetric(pred, truth, nil, 100, 1.5, 1); err == nil {
		t.Error("bad level should fail")
	}
}
