package eval

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestHungarianKnown(t *testing.T) {
	// Classic example: optimal assignment cost 5 (0→1, 1→0, 2→2).
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	seen := make(map[int]bool)
	for i, j := range assign {
		total += cost[i][j]
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
	}
	if total != 5 {
		t.Errorf("total cost = %g, want 5 (assignment %v)", total, assign)
	}
}

func TestHungarianIdentityOnDiagonal(t *testing.T) {
	// Zero diagonal, positive elsewhere: identity is optimal.
	n := 6
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 1 + float64((i+j)%3)
			}
		}
	}
	assign, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range assign {
		if i != j {
			t.Fatalf("assign = %v, want identity", assign)
		}
	}
}

// Property: Hungarian is optimal — compare against brute force for
// small n.
func TestHungarianOptimalProperty(t *testing.T) {
	rng := stats.NewRNG(123, 1)
	f := func(seed uint8) bool {
		_ = seed
		n := 2 + rng.IntN(4)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		assign, err := Hungarian(cost)
		if err != nil {
			return false
		}
		got := 0.0
		for i, j := range assign {
			got += cost[i][j]
		}
		best := bruteForceAssignment(cost)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteForceAssignment(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			total := 0.0
			for i, j := range perm {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

func TestHungarianValidation(t *testing.T) {
	if _, err := Hungarian(nil); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should fail")
	}
	if _, err := Hungarian([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost should fail")
	}
}

func TestMatchTopicsPermutation(t *testing.T) {
	// B is a permutation of A: matching must recover it with cosine 1.
	phiA := [][]float64{
		{0.7, 0.2, 0.1, 0},
		{0, 0.1, 0.2, 0.7},
		{0.25, 0.25, 0.25, 0.25},
	}
	phiB := [][]float64{phiA[2], phiA[0], phiA[1]}
	match, sims, err := MatchTopics(phiA, phiB)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if match[i] != want[i] {
			t.Errorf("match = %v, want %v", match, want)
			break
		}
	}
	for i, s := range sims {
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("sim[%d] = %g", i, s)
		}
	}
}

func TestTopicStability(t *testing.T) {
	phiA := [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	phiB := [][]float64{{0.1, 0.9}, {0.8, 0.2}}
	st, err := TopicStability(phiA, phiB)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean < 0.95 || st.Minimum < 0.9 {
		t.Errorf("stability = %+v", st)
	}
	if _, err := TopicStability(phiA, phiB[:1]); err == nil {
		t.Error("size mismatch should fail")
	}
}
