package eval

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// CI is a bootstrap percentile confidence interval for a metric.
type CI struct {
	Point float64 // metric on the full sample
	Lo    float64
	Hi    float64
}

// BootstrapClusterMetric resamples (prediction, truth) pairs with
// replacement and returns the percentile CI of the given metric at the
// given level (e.g. 0.95). metric is evaluated on each resample via a
// fresh contingency table.
func BootstrapClusterMetric(pred, truth []int, metric func(*Contingency) float64,
	resamples int, level float64, seed uint64) (CI, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return CI{}, fmt.Errorf("eval: bad inputs (%d vs %d)", len(pred), len(truth))
	}
	if resamples < 10 {
		return CI{}, fmt.Errorf("eval: need ≥10 resamples, got %d", resamples)
	}
	if level <= 0 || level >= 1 {
		return CI{}, fmt.Errorf("eval: level %g outside (0,1)", level)
	}
	full, err := NewContingency(pred, truth)
	if err != nil {
		return CI{}, err
	}
	rng := stats.NewRNG(seed, 0xB007)
	n := len(pred)
	vals := make([]float64, resamples)
	rp := make([]int, n)
	rt := make([]int, n)
	for b := 0; b < resamples; b++ {
		for i := 0; i < n; i++ {
			j := rng.IntN(n)
			rp[i] = pred[j]
			rt[i] = truth[j]
		}
		c, err := NewContingency(rp, rt)
		if err != nil {
			return CI{}, err
		}
		vals[b] = metric(c)
	}
	sort.Float64s(vals)
	alpha := (1 - level) / 2
	lo := vals[int(alpha*float64(resamples))]
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return CI{Point: metric(full), Lo: lo, Hi: vals[hiIdx]}, nil
}
