// Package eval scores fitted models against the synthetic corpus's
// ground-truth labels (purity, NMI, V-measure) and provides intrinsic
// quality measures (topic coherence, held-out perplexity). The paper
// could only validate qualitatively against the Texture Profile; the
// generated corpus lets this reproduction also score recovery exactly.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Contingency is the co-occurrence table of predicted cluster ×
// true label.
type Contingency struct {
	counts map[[2]int]int
	rowSum map[int]int
	colSum map[int]int
	n      int
}

// NewContingency tabulates predictions against truth.
func NewContingency(pred, truth []int) (*Contingency, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("eval: %d predictions vs %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return nil, fmt.Errorf("eval: empty input")
	}
	c := &Contingency{
		counts: make(map[[2]int]int),
		rowSum: make(map[int]int),
		colSum: make(map[int]int),
		n:      len(pred),
	}
	for i := range pred {
		c.counts[[2]int{pred[i], truth[i]}]++
		c.rowSum[pred[i]]++
		c.colSum[truth[i]]++
	}
	return c, nil
}

// Purity is the fraction of items whose cluster's majority label
// matches their own.
func (c *Contingency) Purity() float64 {
	total := 0
	for row := range c.rowSum {
		best := 0
		for key, n := range c.counts {
			if key[0] == row && n > best {
				best = n
			}
		}
		total += best
	}
	return float64(total) / float64(c.n)
}

// MutualInformation returns I(pred; truth) in nats.
func (c *Contingency) MutualInformation() float64 {
	mi := 0.0
	n := float64(c.n)
	for key, nij := range c.counts {
		pij := float64(nij) / n
		pi := float64(c.rowSum[key[0]]) / n
		pj := float64(c.colSum[key[1]]) / n
		mi += pij * math.Log(pij/(pi*pj))
	}
	return mi
}

func entropy(sums map[int]int, n int) float64 {
	h := 0.0
	for _, s := range sums {
		p := float64(s) / float64(n)
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// NMI is the normalized mutual information with arithmetic-mean
// normalization; 1 for a perfect (up to relabeling) clustering.
func (c *Contingency) NMI() float64 {
	hp := entropy(c.rowSum, c.n)
	ht := entropy(c.colSum, c.n)
	if hp == 0 && ht == 0 {
		return 1
	}
	denom := (hp + ht) / 2
	if denom == 0 {
		return 0
	}
	return c.MutualInformation() / denom
}

// VMeasure returns the harmonic mean of homogeneity and completeness.
func (c *Contingency) VMeasure() float64 {
	hp := entropy(c.rowSum, c.n) // H(pred)
	ht := entropy(c.colSum, c.n) // H(truth)
	mi := c.MutualInformation()
	homogeneity, completeness := 1.0, 1.0
	if ht > 0 {
		homogeneity = mi / ht
	}
	if hp > 0 {
		completeness = mi / hp
	}
	if homogeneity+completeness == 0 {
		return 0
	}
	return 2 * homogeneity * completeness / (homogeneity + completeness)
}

// Coherence computes UMass topic coherence for one topic's top terms
// over the document collection: Σ log (D(w_i, w_j)+1)/D(w_j) for term
// pairs ordered by rank. Higher (closer to zero) is more coherent.
func Coherence(topTerms []int, docs [][]int) float64 {
	if len(topTerms) < 2 {
		return 0
	}
	docFreq := make(map[int]int)
	coFreq := make(map[[2]int]int)
	want := make(map[int]bool, len(topTerms))
	for _, t := range topTerms {
		want[t] = true
	}
	for _, doc := range docs {
		seen := make(map[int]bool)
		for _, w := range doc {
			if want[w] {
				seen[w] = true
			}
		}
		var present []int
		for w := range seen {
			present = append(present, w)
		}
		sort.Ints(present)
		for _, w := range present {
			docFreq[w]++
		}
		for i := 0; i < len(present); i++ {
			for j := i + 1; j < len(present); j++ {
				coFreq[[2]int{present[i], present[j]}]++
				coFreq[[2]int{present[j], present[i]}]++
			}
		}
	}
	score := 0.0
	for i := 1; i < len(topTerms); i++ {
		for j := 0; j < i; j++ {
			wi, wj := topTerms[i], topTerms[j]
			if docFreq[wj] == 0 {
				continue
			}
			score += math.Log(float64(coFreq[[2]int{wi, wj}]+1) / float64(docFreq[wj]))
		}
	}
	return score
}

// Perplexity computes held-out word perplexity given per-document
// topic mixtures θ and topic-word distributions φ: exp(−Σ log p(w)/N).
func Perplexity(docs [][]int, theta, phi [][]float64) (float64, error) {
	if len(docs) != len(theta) {
		return 0, fmt.Errorf("eval: %d docs vs %d mixtures", len(docs), len(theta))
	}
	ll := 0.0
	n := 0
	for d, words := range docs {
		for _, w := range words {
			p := 0.0
			for k := range theta[d] {
				p += theta[d][k] * phi[k][w]
			}
			if p <= 0 {
				return 0, fmt.Errorf("eval: zero probability for word %d in doc %d", w, d)
			}
			ll += math.Log(p)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("eval: no words")
	}
	return math.Exp(-ll / float64(n)), nil
}
