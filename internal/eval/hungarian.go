package eval

import (
	"fmt"
	"math"
)

// Hungarian solves the square assignment problem: given cost[i][j],
// it returns the column assigned to each row minimizing the total
// cost (the Jonker-style O(n³) shortest augmenting path variant).
func Hungarian(cost [][]float64) ([]int, error) {
	n := len(cost)
	if n == 0 {
		return nil, fmt.Errorf("eval: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, fmt.Errorf("eval: row %d has %d columns, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("eval: NaN cost at (%d,%d)", i, j)
			}
		}
	}
	// 1-based potentials; a[0], b[0] unused.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row assigned to column j
	way := make([]int, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assign := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	return assign, nil
}

// MatchTopics finds the optimal one-to-one matching between two topic
// sets by maximizing the summed cosine similarity of their term
// distributions. It returns, for each topic of a, the matched topic of
// b and the per-pair cosine similarities.
func MatchTopics(phiA, phiB [][]float64) (match []int, sims []float64, err error) {
	k := len(phiA)
	if k == 0 || len(phiB) != k {
		return nil, nil, fmt.Errorf("eval: topic sets of size %d and %d", k, len(phiB))
	}
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			cost[i][j] = -cosineVec(phiA[i], phiB[j])
		}
	}
	match, err = Hungarian(cost)
	if err != nil {
		return nil, nil, err
	}
	sims = make([]float64, k)
	for i, j := range match {
		sims[i] = cosineVec(phiA[i], phiB[j])
	}
	return match, sims, nil
}

func cosineVec(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Stability summarizes topic agreement between two fits of the same
// data (different seeds): the mean and minimum matched-topic cosine,
// weighted by nothing — every topic counts equally.
type Stability struct {
	Match   []int
	Sims    []float64
	Mean    float64
	Minimum float64
}

// TopicStability matches the two fits' topics optimally and summarizes
// the agreement.
func TopicStability(phiA, phiB [][]float64) (Stability, error) {
	match, sims, err := MatchTopics(phiA, phiB)
	if err != nil {
		return Stability{}, err
	}
	st := Stability{Match: match, Sims: sims, Minimum: math.Inf(1)}
	for _, s := range sims {
		st.Mean += s
		if s < st.Minimum {
			st.Minimum = s
		}
	}
	st.Mean /= float64(len(sims))
	return st, nil
}
