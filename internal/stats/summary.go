package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return SumVec(v) / float64(len(v))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// elements).
func Variance(v []float64) float64 {
	n := len(v)
	if n < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation of the sorted sample.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := CloneVec(v)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the sample median.
func Median(v []float64) float64 { return Quantile(v, 0.5) }

// MeanVec returns the elementwise mean of equal-length vectors.
func MeanVec(xs [][]float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	out := make([]float64, len(xs[0]))
	for _, x := range xs {
		for i, v := range x {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(xs))
	}
	return out
}

// CovMat returns the unbiased sample covariance matrix of the rows xs.
func CovMat(xs [][]float64) *Mat {
	n := len(xs)
	if n == 0 {
		return nil
	}
	d := len(xs[0])
	m := MeanVec(xs)
	cov := NewMat(d, d)
	for _, x := range xs {
		diff := SubVec(x, m)
		cov.AddOuterScaled(1, diff, diff)
	}
	if n > 1 {
		for i := range cov.Data {
			cov.Data[i] /= float64(n - 1)
		}
	}
	return cov
}

// Histogram bins values into nbins equal-width bins over [min,max] and
// returns the counts. Values outside the range are clamped to the edge
// bins.
func Histogram(v []float64, nbins int, min, max float64) []int {
	counts := make([]int, nbins)
	if nbins == 0 || max <= min {
		return counts
	}
	w := (max - min) / float64(nbins)
	for _, x := range v {
		b := int((x - min) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// PearsonCorr returns the Pearson correlation between x and y.
func PearsonCorr(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SpearmanCorr returns the Spearman rank correlation between x and y.
func SpearmanCorr(x, y []float64) float64 {
	return PearsonCorr(Ranks(x), Ranks(y))
}

// Ranks returns average ranks (1-based) of v, averaging ties.
func Ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
