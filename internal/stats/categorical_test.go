package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	p := Normalize([]float64{1, 3})
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Errorf("Normalize = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("Normalize of zeros should panic")
		}
	}()
	Normalize([]float64{0, 0})
}

func TestNormalizeSmoothed(t *testing.T) {
	p := NormalizeSmoothed([]float64{0, 0, 0}, 1)
	for _, x := range p {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Errorf("NormalizeSmoothed = %v", p)
		}
	}
	if s := SumVec(NormalizeSmoothed([]float64{0.2, 0, 0.8}, 1e-6)); math.Abs(s-1) > 1e-12 {
		t.Errorf("sum = %g", s)
	}
}

func TestKLCategoricalProperties(t *testing.T) {
	r := NewRNG(50, 1)
	f := func(seed uint8) bool {
		_ = seed
		p := r.DirichletSym(1, 4)
		q := r.DirichletSym(1, 4)
		kl := KLCategorical(p, q)
		return kl >= -1e-12 && math.Abs(KLCategorical(p, p)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKLCategoricalEdgeCases(t *testing.T) {
	// p has support where q doesn't → +Inf.
	if !math.IsInf(KLCategorical([]float64{0.5, 0.5}, []float64{1, 0}), 1) {
		t.Error("want +Inf when q lacks support")
	}
	// p_i = 0 contributes nothing.
	got := KLCategorical([]float64{0, 1}, []float64{0.5, 0.5})
	if want := math.Log(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("KL = %g, want %g", got, want)
	}
}

func TestJSDivergence(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	// Maximal JS divergence is log 2.
	if got := JSDivergence(p, q); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("JS = %g, want ln2", got)
	}
	if got := JSDivergence(p, p); math.Abs(got) > 1e-12 {
		t.Errorf("JS(p,p) = %g", got)
	}
	// Symmetry.
	r := NewRNG(51, 1)
	a := r.DirichletSym(1, 5)
	b := r.DirichletSym(1, 5)
	if math.Abs(JSDivergence(a, b)-JSDivergence(b, a)) > 1e-12 {
		t.Error("JS not symmetric")
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{0.5, 0.5}); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("Entropy = %g", got)
	}
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Errorf("Entropy of point mass = %g", got)
	}
}

func TestArgMaxMin(t *testing.T) {
	v := []float64{3, 1, 4, 1, 5}
	if ArgMax(v) != 4 {
		t.Error("ArgMax wrong")
	}
	if ArgMin(v) != 1 {
		t.Error("ArgMin wrong (should pick first tie)")
	}
}

func TestTopK(t *testing.T) {
	v := []float64{0.1, 0.5, 0.3, 0.5}
	top := TopK(v, 3)
	if len(top) != 3 || top[0] != 1 || top[1] != 3 || top[2] != 2 {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(v, 10); len(got) != 4 {
		t.Errorf("TopK should clamp k, got %v", got)
	}
}
