package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianLogPdf1D(t *testing.T) {
	g, err := NewGaussian([]float64{0}, MatFromRows([][]float64{{1}}))
	if err != nil {
		t.Fatal(err)
	}
	// Standard normal at 0: -0.5·log(2π)
	want := -0.5 * log2Pi
	if got := g.LogPdf([]float64{0}); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogPdf(0) = %g, want %g", got, want)
	}
	// At x=2: -0.5·log(2π) - 2
	if got := g.LogPdf([]float64{2}); math.Abs(got-(want-2)) > 1e-12 {
		t.Errorf("LogPdf(2) = %g, want %g", got, want-2)
	}
}

func TestGaussianLogPdfIntegratesToOne(t *testing.T) {
	// Riemann check in 2D on a grid.
	prec := MatFromRows([][]float64{{2, 0.3}, {0.3, 1}})
	g, err := NewGaussian([]float64{0.5, -0.5}, prec)
	if err != nil {
		t.Fatal(err)
	}
	const h = 0.05
	sum := 0.0
	for x := -6.0; x <= 7.0; x += h {
		for y := -7.0; y <= 6.0; y += h {
			sum += math.Exp(g.LogPdf([]float64{x, y})) * h * h
		}
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("density integrates to %g", sum)
	}
}

func TestGaussianCovRoundTrip(t *testing.T) {
	r := NewRNG(20, 1)
	prec := randomSPD(r, 3)
	g, err := NewGaussian(randomVec(r, 3), prec)
	if err != nil {
		t.Fatal(err)
	}
	prod := g.Cov().Mul(prec)
	if prod.MaxAbsDiff(Identity(3)) > 1e-8 {
		t.Errorf("Cov·Precision = %v", prod)
	}
}

func TestKLGaussianSelfIsZero(t *testing.T) {
	r := NewRNG(21, 1)
	f := func(seed uint8) bool {
		_ = seed
		g, err := NewGaussian(randomVec(r, 3), randomSPD(r, 3))
		if err != nil {
			return false
		}
		return math.Abs(KLGaussian(g, g)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKLGaussianNonNegative(t *testing.T) {
	r := NewRNG(22, 1)
	f := func(seed uint8) bool {
		_ = seed
		p, err1 := NewGaussian(randomVec(r, 3), randomSPD(r, 3))
		q, err2 := NewGaussian(randomVec(r, 3), randomSPD(r, 3))
		if err1 != nil || err2 != nil {
			return false
		}
		return KLGaussian(p, q) >= -1e-9 && SymKLGaussian(p, q) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKLGaussianKnownValue(t *testing.T) {
	// Two 1D normals: KL(N(0,1)‖N(1,1)) = 0.5.
	p, _ := NewGaussian([]float64{0}, MatFromRows([][]float64{{1}}))
	q, _ := NewGaussian([]float64{1}, MatFromRows([][]float64{{1}}))
	if got := KLGaussian(p, q); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("KL = %g, want 0.5", got)
	}
	// KL(N(0,σ²=4)‖N(0,1)) = 0.5(4 − 1 − log4) = 0.8068528…
	p2, _ := NewGaussian([]float64{0}, MatFromRows([][]float64{{0.25}}))
	want := 0.5 * (4 - 1 - math.Log(4))
	if got := KLGaussian(p2, q); math.Abs(got-(want+0.5)) > 1e-12 {
		t.Errorf("KL = %g, want %g", got, want+0.5)
	}
}

func TestGaussianMahalanobis(t *testing.T) {
	g, _ := NewGaussian([]float64{0, 0}, Identity(2))
	if got := g.Mahalanobis([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mahalanobis = %g, want 5", got)
	}
}

func TestGaussianSampleMoments(t *testing.T) {
	r := NewRNG(23, 1)
	prec := MatFromRows([][]float64{{4, 0}, {0, 1}})
	g, _ := NewGaussian([]float64{2, -1}, prec)
	const n = 20000
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = g.Sample(r)
	}
	m := MeanVec(xs)
	if math.Abs(m[0]-2) > 0.02 || math.Abs(m[1]+1) > 0.05 {
		t.Errorf("sample mean = %v", m)
	}
	c := CovMat(xs)
	if math.Abs(c.At(0, 0)-0.25) > 0.02 || math.Abs(c.At(1, 1)-1) > 0.06 {
		t.Errorf("sample cov = %v", c)
	}
}

func TestStudentTMatchesGaussianForLargeNu(t *testing.T) {
	mean := []float64{0.3, -0.2}
	scale := MatFromRows([][]float64{{1, 0.2}, {0.2, 0.8}})
	st, err := NewStudentT(mean, scale, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGaussianCov(mean, scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range [][]float64{{0, 0}, {1, 1}, {-2, 0.5}} {
		if d := math.Abs(st.LogPdf(x) - g.LogPdf(x)); d > 1e-3 {
			t.Errorf("Student-t(ν→∞) vs Gaussian at %v differ by %g", x, d)
		}
	}
}

func TestStudentTHeavierTails(t *testing.T) {
	mean := []float64{0}
	scale := MatFromRows([][]float64{{1}})
	st, _ := NewStudentT(mean, scale, 2)
	g, _ := NewGaussianCov(mean, scale)
	far := []float64{6}
	if st.LogPdf(far) <= g.LogPdf(far) {
		t.Error("Student-t should have heavier tails than Gaussian")
	}
}

func TestStudentTRejectsNonPositiveNu(t *testing.T) {
	if _, err := NewStudentT([]float64{0}, Identity(1), 0); err == nil {
		t.Error("want error for ν=0")
	}
}

func TestNewGaussianRejectsBadPrecision(t *testing.T) {
	if _, err := NewGaussian([]float64{0, 0}, MatFromRows([][]float64{{1, 2}, {2, 1}})); err == nil {
		t.Error("want error for indefinite precision")
	}
	if _, err := NewGaussian([]float64{0}, Identity(2)); err == nil {
		t.Error("want error for dim mismatch")
	}
}

// KL(p‖q) must agree with its Monte-Carlo estimate E_p[log p − log q].
func TestKLGaussianMatchesMonteCarlo(t *testing.T) {
	r := NewRNG(24, 1)
	p, err := NewGaussian([]float64{1, -1}, MatFromRows([][]float64{{2, 0.4}, {0.4, 1.5}}))
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewGaussian([]float64{0, 0.5}, MatFromRows([][]float64{{1, -0.2}, {-0.2, 0.8}}))
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	mc := 0.0
	for i := 0; i < n; i++ {
		x := p.Sample(r)
		mc += p.LogPdf(x) - q.LogPdf(x)
	}
	mc /= n
	if exact := KLGaussian(p, q); math.Abs(mc-exact) > 0.03*(1+exact) {
		t.Errorf("Monte-Carlo KL %.4f vs analytic %.4f", mc, exact)
	}
}
