package stats

import (
	"math"
	"testing"
)

// chiSquaredStat returns the Pearson statistic of observed counts
// against expected probabilities over n draws.
func chiSquaredStat(counts []int, probs []float64, n int) float64 {
	stat := 0.0
	for i, c := range counts {
		e := probs[i] * float64(n)
		if e == 0 {
			if c != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(c) - e
		stat += d * d / e
	}
	return stat
}

// TestAliasDrawFrequencies is the distribution-correctness gate for the
// alias method: on a fixed seed, AliasDraw and Categorical over the
// same weights must both pass a chi-squared test against the target
// distribution (the draws themselves differ — the alias path consumes
// the generator differently and is opt-in for exactly that reason).
func TestAliasDrawFrequencies(t *testing.T) {
	w := []float64{0.5, 3, 0, 1.25, 7, 0.01, 2.2}
	tab, err := NewAliasTable(w)
	if err != nil {
		t.Fatalf("NewAliasTable: %v", err)
	}
	total := 0.0
	for _, v := range w {
		total += v
	}
	probs := make([]float64, len(w))
	for i, v := range w {
		probs[i] = v / total
	}
	const n = 200000
	// Critical value for df=6 at significance 0.001 is 22.46.
	const crit = 22.46
	for name, draw := range map[string]func(r *RNG) int{
		"alias":       func(r *RNG) int { return r.AliasDraw(tab) },
		"categorical": func(r *RNG) int { return r.Categorical(w) },
	} {
		r := NewRNG(424242, 7)
		counts := make([]int, len(w))
		for i := 0; i < n; i++ {
			counts[draw(r)]++
		}
		if counts[2] != 0 {
			t.Fatalf("%s: drew a zero-weight index %d times", name, counts[2])
		}
		if stat := chiSquaredStat(counts, probs, n); stat > crit {
			t.Errorf("%s: chi-squared %.2f > %.2f against target distribution", name, stat, crit)
		}
	}
}

// TestGumbelMaxLogFrequencies checks the Gumbel-max draw against the
// softmax of the log-weights, alongside CategoricalLog on the same
// weights, both via chi-squared on a fixed seed.
func TestGumbelMaxLogFrequencies(t *testing.T) {
	logw := []float64{-1.5, 0.3, math.Inf(-1), 2.0, -0.7}
	maxW := 2.0
	probs := make([]float64, len(logw))
	total := 0.0
	for i, lw := range logw {
		probs[i] = math.Exp(lw - maxW)
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	const n = 200000
	// Critical value for df=3 at significance 0.001 is 16.27.
	const crit = 16.27
	for name, draw := range map[string]func(r *RNG) int{
		"gumbel":         func(r *RNG) int { return r.GumbelMaxLog(logw) },
		"categoricalLog": func(r *RNG) int { return r.CategoricalLog(logw) },
	} {
		r := NewRNG(99, 3)
		counts := make([]int, len(logw))
		for i := 0; i < n; i++ {
			counts[draw(r)]++
		}
		if counts[2] != 0 {
			t.Fatalf("%s: drew a -Inf index %d times", name, counts[2])
		}
		if stat := chiSquaredStat(counts, probs, n); stat > crit {
			t.Errorf("%s: chi-squared %.2f > %.2f against softmax", name, stat, crit)
		}
	}
}

// TestGumbelTopK checks the without-replacement contract (distinct
// indices, finite weights only, honest count) and that the first
// element's marginal matches the softmax — for k=1 Gumbel-top-k is
// exactly Gumbel-max.
func TestGumbelTopK(t *testing.T) {
	logw := []float64{0.5, math.Inf(-1), 1.2, -0.3}
	r := NewRNG(7, 7)
	out := make([]int, 3)
	for trial := 0; trial < 2000; trial++ {
		got := r.GumbelTopK(logw, 3, out)
		if got != 3 {
			t.Fatalf("GumbelTopK returned %d indices, want 3", got)
		}
		seen := map[int]bool{}
		for _, i := range out[:got] {
			if i == 1 {
				t.Fatal("GumbelTopK returned a -Inf index")
			}
			if seen[i] {
				t.Fatalf("GumbelTopK repeated index %d", i)
			}
			seen[i] = true
		}
	}
	if got := r.GumbelTopK(logw, 4, make([]int, 4)); got != 3 {
		t.Fatalf("GumbelTopK over 3 finite weights wrote %d, want 3", got)
	}
}

// TestAliasTableErrors enumerates the rejected constructions.
func TestAliasTableErrors(t *testing.T) {
	for name, w := range map[string][]float64{
		"empty":    {},
		"negative": {1, -0.5},
		"nan":      {1, math.NaN()},
		"posinf":   {1, math.Inf(1)},
		"allzero":  {0, 0, 0},
	} {
		if _, err := NewAliasTable(w); err == nil {
			t.Errorf("%s: NewAliasTable accepted %v", name, w)
		}
	}
}

// TestAliasTableSingleEntry pins the degenerate one-outcome table.
func TestAliasTableSingleEntry(t *testing.T) {
	tab, err := NewAliasTable([]float64{3.5})
	if err != nil {
		t.Fatalf("NewAliasTable: %v", err)
	}
	r := NewRNG(1, 1)
	for i := 0; i < 100; i++ {
		if got := r.AliasDraw(tab); got != 0 {
			t.Fatalf("single-entry draw = %d", got)
		}
	}
}

// FuzzAliasTable drives alias-table construction with arbitrary weight
// vectors: construction must either reject the input or produce a
// table whose draws always land on positive-weight indices. Seeds
// cover the degenerate shapes named in the issue — zeros, single
// entry, near-overflow magnitudes.
func FuzzAliasTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                                                         // single zero weight
	f.Add([]byte{63, 240, 0, 0, 0, 0, 0, 0})                                                      // single 1.0
	f.Add([]byte{127, 239, 255, 255, 255, 255, 255, 255, 127, 239, 255, 255, 255, 255, 255, 255}) // two ~1.8e308 weights: near-overflow total
	f.Add([]byte{63, 240, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})                              // {1, 0}
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 256 {
			n = 256
		}
		w := make([]float64, n)
		for i := range w {
			bits := uint64(0)
			for b := 0; b < 8; b++ {
				bits = bits<<8 | uint64(data[i*8+b])
			}
			w[i] = math.Float64frombits(bits)
		}
		tab, err := NewAliasTable(w)
		if err != nil {
			return
		}
		if tab.N() != len(w) {
			t.Fatalf("table has %d outcomes for %d weights", tab.N(), len(w))
		}
		r := NewRNG(11, 11)
		for i := 0; i < 64; i++ {
			k := r.AliasDraw(tab)
			if k < 0 || k >= len(w) {
				t.Fatalf("draw out of range: %d", k)
			}
			if !(w[k] > 0) {
				t.Fatalf("drew index %d with weight %v", k, w[k])
			}
		}
	})
}
