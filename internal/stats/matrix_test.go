package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatBasicOps(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatFromRows([][]float64{{5, 6}, {7, 8}})

	sum := a.Add(b)
	want := MatFromRows([][]float64{{6, 8}, {10, 12}})
	if sum.MaxAbsDiff(want) != 0 {
		t.Errorf("Add = %v, want %v", sum, want)
	}

	diff := b.Sub(a)
	want = MatFromRows([][]float64{{4, 4}, {4, 4}})
	if diff.MaxAbsDiff(want) != 0 {
		t.Errorf("Sub = %v, want %v", diff, want)
	}

	prod := a.Mul(b)
	want = MatFromRows([][]float64{{19, 22}, {43, 50}})
	if prod.MaxAbsDiff(want) != 0 {
		t.Errorf("Mul = %v, want %v", prod, want)
	}

	if got := a.Scale(2).At(1, 1); got != 8 {
		t.Errorf("Scale(2)[1][1] = %g, want 8", got)
	}
	if got := a.Trace(); got != 5 {
		t.Errorf("Trace = %g, want 5", got)
	}
}

func TestMatTranspose(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.R != 3 || at.C != 2 {
		t.Fatalf("T dims = %d×%d, want 3×2", at.R, at.C)
	}
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatMulVec(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("MulVec[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if id.MaxAbsDiff(d) != 0 {
		t.Error("Identity(3) != Diag(ones)")
	}
	si := ScaledIdentity(2, 2.5)
	if si.At(0, 0) != 2.5 || si.At(0, 1) != 0 {
		t.Error("ScaledIdentity wrong")
	}
}

func TestOuterProduct(t *testing.T) {
	o := Outer([]float64{1, 2}, []float64{3, 4, 5})
	want := MatFromRows([][]float64{{3, 4, 5}, {6, 8, 10}})
	if o.MaxAbsDiff(want) != 0 {
		t.Errorf("Outer = %v, want %v", o, want)
	}

	m := NewMat(2, 2)
	m.AddOuterScaled(2, []float64{1, 1}, []float64{1, 1})
	if m.At(0, 0) != 2 || m.At(1, 1) != 2 {
		t.Errorf("AddOuterScaled = %v", m)
	}
}

func TestVecHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := SumVec(a); got != 6 {
		t.Errorf("SumVec = %g, want 6", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	s := SubVec(b, a)
	for _, x := range s {
		if x != 3 {
			t.Errorf("SubVec = %v", s)
		}
	}
	sc := ScaleVec(2, a)
	if sc[2] != 6 {
		t.Errorf("ScaleVec = %v", sc)
	}
	cl := CloneVec(a)
	cl[0] = 99
	if a[0] != 1 {
		t.Error("CloneVec aliases input")
	}
}

func TestSymmetrize(t *testing.T) {
	m := MatFromRows([][]float64{{1, 2}, {4, 1}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %v", m)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	r := NewRNG(7, 1)
	f := func(seed uint8) bool {
		_ = seed
		a := randomMat(r, 3, 4)
		b := randomMat(r, 4, 2)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.MaxAbsDiff(rhs) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Dot(x, Outer(x,x)·y) == Dot(x,x)·Dot(x,y).
func TestOuterQuadraticProperty(t *testing.T) {
	r := NewRNG(8, 1)
	f := func(seed uint8) bool {
		_ = seed
		x := randomVec(r, 3)
		y := randomVec(r, 3)
		lhs := Dot(x, Outer(x, x).MulVec(y))
		rhs := Dot(x, x) * Dot(x, y)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched dims should panic")
		}
	}()
	a := NewMat(2, 3)
	b := NewMat(2, 3)
	a.Mul(b)
}

func randomMat(r *RNG, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	return m
}

func randomVec(r *RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Normal(0, 1)
	}
	return v
}

// randomSPD returns a random symmetric positive definite matrix.
func randomSPD(r *RNG, n int) *Mat {
	a := randomMat(r, n, n)
	spd := a.Mul(a.T())
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	return spd
}
