package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if want := math.Log(6); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogSumExp = %g, want %g", got, want)
	}
	// Stability with huge offsets.
	got = LogSumExp([]float64{-1000, -1000})
	if want := -1000 + math.Ln2; math.Abs(got-want) > 1e-9 {
		t.Errorf("LogSumExp offset = %g, want %g", got, want)
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1)}), -1) {
		t.Error("LogSumExp of -Inf should be -Inf")
	}
}

func TestLogSumExpShiftInvariance(t *testing.T) {
	r := NewRNG(40, 1)
	f := func(seed uint8) bool {
		_ = seed
		x := randomVec(r, 5)
		c := r.Normal(0, 100)
		shifted := make([]float64, len(x))
		for i := range x {
			shifted[i] = x[i] + c
		}
		return math.Abs(LogSumExp(shifted)-(LogSumExp(x)+c)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLGamma(t *testing.T) {
	// Γ(5) = 24.
	if got := LGamma(5); math.Abs(got-math.Log(24)) > 1e-12 {
		t.Errorf("LGamma(5) = %g", got)
	}
	// Γ(0.5) = √π.
	if got := LGamma(0.5); math.Abs(got-0.5*math.Log(math.Pi)) > 1e-12 {
		t.Errorf("LGamma(0.5) = %g", got)
	}
}

func TestMvLGammaReducesTo1D(t *testing.T) {
	for _, x := range []float64{0.7, 1.5, 4.2} {
		if got, want := MvLGamma(1, x), LGamma(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("MvLGamma(1,%g) = %g, want %g", x, got, want)
		}
	}
}

func TestMvLGammaRecurrence(t *testing.T) {
	// Γ_2(x) = √π · Γ(x) · Γ(x − 1/2)
	x := 3.0
	got := MvLGamma(2, x)
	want := 0.5*math.Log(math.Pi) + LGamma(x) + LGamma(x-0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MvLGamma(2,3) = %g, want %g", got, want)
	}
}

func TestDigamma(t *testing.T) {
	const gamma = 0.5772156649015329 // Euler–Mascheroni
	if got := Digamma(1); math.Abs(got+gamma) > 1e-10 {
		t.Errorf("ψ(1) = %g, want %g", got, -gamma)
	}
	// Recurrence ψ(x+1) = ψ(x) + 1/x.
	for _, x := range []float64{0.3, 1.7, 5.5} {
		if d := Digamma(x+1) - Digamma(x) - 1/x; math.Abs(d) > 1e-9 {
			t.Errorf("ψ recurrence at %g off by %g", x, d)
		}
	}
	if !math.IsNaN(Digamma(-1)) {
		t.Error("ψ of non-positive should be NaN")
	}
}

func TestLogBeta(t *testing.T) {
	// B(1,1) = 1, B(2,3) = 1/12.
	if got := LogBeta(1, 1); math.Abs(got) > 1e-12 {
		t.Errorf("LogBeta(1,1) = %g", got)
	}
	if got := LogBeta(2, 3); math.Abs(got-math.Log(1.0/12)) > 1e-12 {
		t.Errorf("LogBeta(2,3) = %g", got)
	}
}

func TestSigmoidAndLog1pExp(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %g", got)
	}
	if got := Sigmoid(100); got < 0.999999 {
		t.Errorf("Sigmoid(100) = %g", got)
	}
	if got := Sigmoid(-100); got > 1e-6 {
		t.Errorf("Sigmoid(-100) = %g", got)
	}
	for _, x := range []float64{-50, -1, 0, 1, 50} {
		want := math.Log(1 + math.Exp(x))
		if x > 30 {
			want = x
		}
		if d := math.Abs(Log1pExp(x) - want); d > 1e-9 {
			t.Errorf("Log1pExp(%g) off by %g", x, d)
		}
	}
}
