package stats

import "fmt"

// GaussianBank scores one point against K Gaussians in a single call.
// It is the struct-of-arrays form of []*Gaussian: all K means live in
// one flat slice, all K precision matrices in another, and the
// x-independent normalization constants are precomputed — so the
// sampler's y kernel walks three contiguous arrays instead of chasing
// K component pointers per document.
//
// Per-component arithmetic replicates Gaussian.LogPdfScratch exactly
// (same centering, same row-major quadratic form, same summation
// order), so a bank-scored weight vector is bit-identical to K
// individual LogPdfScratch calls. A bank is immutable between
// SetFromGaussians calls and safe for concurrent readers.
type GaussianBank struct {
	k, d     int
	means    []float64 // k*d, component-major
	prec     []float64 // k*d*d, component-major row-major
	logConst []float64 // k: 0.5*(log|Λ| − d·log2π)
}

// NewGaussianBank allocates a bank sized for k components of dimension
// d. Fill it with SetFromGaussians.
func NewGaussianBank(k, d int) *GaussianBank {
	return &GaussianBank{
		k:        k,
		d:        d,
		means:    make([]float64, k*d),
		prec:     make([]float64, k*d*d),
		logConst: make([]float64, k),
	}
}

// K returns the component count.
func (b *GaussianBank) K() int { return b.k }

// Dim returns the component dimension.
func (b *GaussianBank) Dim() int { return b.d }

// SetFromGaussians copies the parameters of gs into the bank's flat
// layout. Call it after components are redrawn; it allocates nothing.
func (b *GaussianBank) SetFromGaussians(gs []*Gaussian) error {
	if len(gs) != b.k {
		return fmt.Errorf("stats: bank sized for %d components, got %d", b.k, len(gs))
	}
	d := b.d
	for k, g := range gs {
		if g.Dim() != d {
			return fmt.Errorf("stats: bank dim %d, component %d has dim %d", d, k, g.Dim())
		}
		copy(b.means[k*d:(k+1)*d], g.Mean)
		copy(b.prec[k*d*d:(k+1)*d*d], g.Precision.Data)
		// Same expression LogPdfScratch evaluates per call, hoisted: the
		// subtraction and halving happen in the identical order, so
		// logConst − 0.5·q reproduces its result bit-for-bit.
		b.logConst[k] = 0.5 * (g.logDet - float64(d)*log2Pi)
	}
	return nil
}

// LogPdfInto assigns out[k] = logpdf_k(x) for every component — the
// same values AddLogPdf would accumulate, written instead of added, so
// a weight vector can be seeded without zeroing first.
func (b *GaussianBank) LogPdfInto(out, x []float64, diff []float64) {
	for i := range out[:b.k] {
		out[i] = 0
	}
	b.AddLogPdf(out, x, 1, diff)
}

// AddLogPdf accumulates out[k] += weight·logpdf_k(x) for every
// component, using diff (length ≥ Dim) as centering scratch. With
// weight 1 the addend is bit-identical to Gaussian.LogPdfScratch: the
// quadratic form keeps its row order and left-associative summation
// order, and where the scalar path skips a zero-centered coordinate
// the unrolled paths add its exactly-zero product — the same value.
// out, x and diff must not alias.
//
// Dimensions 3 and 6 (the paper's gel and emulsion feature spaces) run
// fully unrolled: at these sizes the generic nested loop spends more
// cycles on loop control and bounds checks than on arithmetic.
func (b *GaussianBank) AddLogPdf(out, x []float64, weight float64, diff []float64) {
	d := b.d
	if len(x) != d || len(diff) < d || len(out) < b.k {
		panic("stats: dim mismatch in GaussianBank.AddLogPdf")
	}
	switch d {
	case 3:
		b.addLogPdf3(out, x, weight)
		return
	case 6:
		b.addLogPdf6(out, x, weight)
		return
	}
	diff = diff[:d]
	for k := 0; k < b.k; k++ {
		mean := b.means[k*d : (k+1)*d]
		for i := 0; i < d; i++ {
			diff[i] = x[i] - mean[i]
		}
		p := b.prec[k*d*d : (k+1)*d*d]
		q := 0.0
		for i := 0; i < d; i++ {
			di := diff[i]
			if di == 0 {
				continue
			}
			row := p[i*d : (i+1)*d]
			s := 0.0
			for j := 0; j < d; j++ {
				s += row[j] * diff[j]
			}
			q += di * s
		}
		lp := b.logConst[k] - 0.5*q
		if weight == 1 {
			out[k] += lp
		} else {
			out[k] += weight * lp
		}
	}
}

func (b *GaussianBank) addLogPdf3(out, x []float64, weight float64) {
	x0, x1, x2 := x[0], x[1], x[2]
	means, prec, lc := b.means, b.prec, b.logConst
	for k := 0; k < b.k; k++ {
		m := means[k*3 : k*3+3 : k*3+3]
		d0 := x0 - m[0]
		d1 := x1 - m[1]
		d2 := x2 - m[2]
		p := prec[k*9 : k*9+9 : k*9+9]
		s0 := p[0]*d0 + p[1]*d1 + p[2]*d2
		s1 := p[3]*d0 + p[4]*d1 + p[5]*d2
		s2 := p[6]*d0 + p[7]*d1 + p[8]*d2
		q := d0*s0 + d1*s1 + d2*s2
		lp := lc[k] - 0.5*q
		if weight == 1 {
			out[k] += lp
		} else {
			out[k] += weight * lp
		}
	}
}

func (b *GaussianBank) addLogPdf6(out, x []float64, weight float64) {
	x0, x1, x2, x3, x4, x5 := x[0], x[1], x[2], x[3], x[4], x[5]
	means, prec, lc := b.means, b.prec, b.logConst
	for k := 0; k < b.k; k++ {
		m := means[k*6 : k*6+6 : k*6+6]
		d0 := x0 - m[0]
		d1 := x1 - m[1]
		d2 := x2 - m[2]
		d3 := x3 - m[3]
		d4 := x4 - m[4]
		d5 := x5 - m[5]
		p := prec[k*36 : k*36+36 : k*36+36]
		s0 := p[0]*d0 + p[1]*d1 + p[2]*d2 + p[3]*d3 + p[4]*d4 + p[5]*d5
		s1 := p[6]*d0 + p[7]*d1 + p[8]*d2 + p[9]*d3 + p[10]*d4 + p[11]*d5
		s2 := p[12]*d0 + p[13]*d1 + p[14]*d2 + p[15]*d3 + p[16]*d4 + p[17]*d5
		s3 := p[18]*d0 + p[19]*d1 + p[20]*d2 + p[21]*d3 + p[22]*d4 + p[23]*d5
		s4 := p[24]*d0 + p[25]*d1 + p[26]*d2 + p[27]*d3 + p[28]*d4 + p[29]*d5
		s5 := p[30]*d0 + p[31]*d1 + p[32]*d2 + p[33]*d3 + p[34]*d4 + p[35]*d5
		q := d0*s0 + d1*s1 + d2*s2 + d3*s3 + d4*s4 + d5*s5
		lp := lc[k] - 0.5*q
		if weight == 1 {
			out[k] += lp
		} else {
			out[k] += weight * lp
		}
	}
}

// ScoreTopics writes, for every topic k,
//
//	out[k] = logTab[ndk[k]] + gel_k(xg) + emuWeight·emu_k(xe)
//
// — the y kernel's whole per-document weight build in one pass over the
// topics instead of three (count prior, gel bank, emulsion bank). The
// per-topic sum keeps the multi-pass order (base, then the gel
// log-density, then the weighted emulsion log-density, left to right)
// and each log-density is the bank's own unrolled form, so the result
// is bit-identical to LogPdfInto/AddLogPdf sequencing. Passing emu nil
// drops the emulsion term (UseEmulsion=false); gelDiff/emuDiff are
// centering scratch for dimensions without an unrolled kernel.
func ScoreTopics(out, logTab []float64, ndk []int, gel *GaussianBank, xg, gelDiff []float64, emu *GaussianBank, xe []float64, emuWeight float64, emuDiff []float64) {
	if gel.d == 3 && emu != nil && emu.d == 6 && gel.k == emu.k {
		scoreTopics3x6(out, logTab, ndk, gel, xg, emu, xe, emuWeight)
		return
	}
	for k := range out[:gel.k] {
		out[k] = logTab[ndk[k]]
	}
	gel.AddLogPdf(out, xg, 1, gelDiff)
	if emu != nil {
		emu.AddLogPdf(out, xe, emuWeight, emuDiff)
	}
}

// scoreTopics3x6 is ScoreTopics fused and unrolled for the paper's
// feature shape (gel dim 3, emulsion dim 6).
func scoreTopics3x6(out, logTab []float64, ndk []int, gel *GaussianBank, xg []float64, emu *GaussianBank, xe []float64, w float64) {
	if len(xg) != 3 || len(xe) != 6 || len(out) < gel.k || len(ndk) < gel.k {
		panic("stats: dim mismatch in ScoreTopics")
	}
	g0, g1, g2 := xg[0], xg[1], xg[2]
	e0, e1, e2, e3, e4, e5 := xe[0], xe[1], xe[2], xe[3], xe[4], xe[5]
	gm, gp, glc := gel.means, gel.prec, gel.logConst
	em, ep, elc := emu.means, emu.prec, emu.logConst
	for k := 0; k < gel.k; k++ {
		m := gm[k*3 : k*3+3 : k*3+3]
		d0 := g0 - m[0]
		d1 := g1 - m[1]
		d2 := g2 - m[2]
		p := gp[k*9 : k*9+9 : k*9+9]
		s0 := p[0]*d0 + p[1]*d1 + p[2]*d2
		s1 := p[3]*d0 + p[4]*d1 + p[5]*d2
		s2 := p[6]*d0 + p[7]*d1 + p[8]*d2
		lpG := glc[k] - 0.5*(d0*s0+d1*s1+d2*s2)

		me := em[k*6 : k*6+6 : k*6+6]
		f0 := e0 - me[0]
		f1 := e1 - me[1]
		f2 := e2 - me[2]
		f3 := e3 - me[3]
		f4 := e4 - me[4]
		f5 := e5 - me[5]
		q := ep[k*36 : k*36+36 : k*36+36]
		t0 := q[0]*f0 + q[1]*f1 + q[2]*f2 + q[3]*f3 + q[4]*f4 + q[5]*f5
		t1 := q[6]*f0 + q[7]*f1 + q[8]*f2 + q[9]*f3 + q[10]*f4 + q[11]*f5
		t2 := q[12]*f0 + q[13]*f1 + q[14]*f2 + q[15]*f3 + q[16]*f4 + q[17]*f5
		t3 := q[18]*f0 + q[19]*f1 + q[20]*f2 + q[21]*f3 + q[22]*f4 + q[23]*f5
		t4 := q[24]*f0 + q[25]*f1 + q[26]*f2 + q[27]*f3 + q[28]*f4 + q[29]*f5
		t5 := q[30]*f0 + q[31]*f1 + q[32]*f2 + q[33]*f3 + q[34]*f4 + q[35]*f5
		lpE := elc[k] - 0.5*(f0*t0+f1*t1+f2*t2+f3*t3+f4*t4+f5*t5)

		base := logTab[ndk[k]]
		if w == 1 {
			out[k] = base + lpG + lpE
		} else {
			out[k] = base + lpG + w*lpE
		}
	}
}

// GaussianBankF32 is the float32 scoring variant of GaussianBank: the
// means and precisions are stored in float32 and the per-row products
// run in float32, while the quadratic form and log-density accumulate
// in float64. Serving-only — fitting always scores through the float64
// bank — and opt-in, since results differ from the float64 path by
// rounding (covered by the fold-in tolerance suite).
type GaussianBankF32 struct {
	k, d     int
	means    []float32
	prec     []float32
	logConst []float64 // kept in float64: it is x-independent and cheap
}

// NewGaussianBankF32 allocates an empty float32 bank.
func NewGaussianBankF32(k, d int) *GaussianBankF32 {
	return &GaussianBankF32{
		k:        k,
		d:        d,
		means:    make([]float32, k*d),
		prec:     make([]float32, k*d*d),
		logConst: make([]float64, k),
	}
}

// K returns the component count.
func (b *GaussianBankF32) K() int { return b.k }

// Dim returns the component dimension.
func (b *GaussianBankF32) Dim() int { return b.d }

// SetFromGaussians narrows the parameters of gs into the bank.
func (b *GaussianBankF32) SetFromGaussians(gs []*Gaussian) error {
	if len(gs) != b.k {
		return fmt.Errorf("stats: bank sized for %d components, got %d", b.k, len(gs))
	}
	d := b.d
	for k, g := range gs {
		if g.Dim() != d {
			return fmt.Errorf("stats: bank dim %d, component %d has dim %d", d, k, g.Dim())
		}
		for i, v := range g.Mean {
			b.means[k*d+i] = float32(v)
		}
		for i, v := range g.Precision.Data {
			b.prec[k*d*d+i] = float32(v)
		}
		b.logConst[k] = 0.5 * (g.logDet - float64(d)*log2Pi)
	}
	return nil
}

// AddLogPdf accumulates out[k] += weight·logpdf_k(x) with float32
// centering and products and float64 accumulation.
func (b *GaussianBankF32) AddLogPdf(out, x []float64, weight float64, diff []float32) {
	d := b.d
	if len(x) != d || len(diff) < d || len(out) < b.k {
		panic("stats: dim mismatch in GaussianBankF32.AddLogPdf")
	}
	diff = diff[:d]
	for k := 0; k < b.k; k++ {
		mean := b.means[k*d : (k+1)*d]
		for i := 0; i < d; i++ {
			diff[i] = float32(x[i]) - mean[i]
		}
		p := b.prec[k*d*d : (k+1)*d*d]
		q := 0.0
		for i := 0; i < d; i++ {
			di := diff[i]
			if di == 0 {
				continue
			}
			row := p[i*d : (i+1)*d]
			s := 0.0
			for j := 0; j < d; j++ {
				s += float64(row[j] * diff[j])
			}
			q += float64(di) * s
		}
		out[k] += weight * (b.logConst[k] - 0.5*q)
	}
}

// AddPredictiveLogPdf accumulates out[k] += weight·accs[k].PredictiveLogPdf(x)
// for every accumulator in one call — the batched form the collapsed y
// kernel uses. Each accumulator's forward substitution runs over the
// factor's flat backing array with the loop structure of
// NWAccum.PredictiveLogPdf, so with weight 1 the addend is
// bit-identical to the one-at-a-time calls.
func AddPredictiveLogPdf(out []float64, accs []*NWAccum, x []float64, weight float64) {
	if len(out) < len(accs) {
		panic("stats: output shorter than accumulator list in AddPredictiveLogPdf")
	}
	for k, a := range accs {
		lp := a.PredictiveLogPdf(x)
		if weight == 1 {
			out[k] += lp
		} else {
			out[k] += weight * lp
		}
	}
}
