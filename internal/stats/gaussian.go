package stats

import (
	"fmt"
	"math"
)

const log2Pi = 1.8378770664093453 // log(2π)

// Gaussian is a multivariate normal distribution parameterized by its
// mean and *precision* matrix Λ (inverse covariance), matching the
// parameterization of the paper's Normal-Wishart components.
type Gaussian struct {
	Mean      []float64
	Precision *Mat

	chol   *Cholesky // factor of the precision
	logDet float64   // log|Λ|
}

// NewGaussian builds a Gaussian from a mean and a positive definite
// precision matrix.
func NewGaussian(mean []float64, precision *Mat) (*Gaussian, error) {
	if precision.R != len(mean) || precision.C != len(mean) {
		return nil, fmt.Errorf("stats: precision is %d×%d but mean has dim %d", precision.R, precision.C, len(mean))
	}
	c, err := NewCholesky(precision)
	if err != nil {
		return nil, fmt.Errorf("stats: precision matrix: %w", err)
	}
	return &Gaussian{Mean: CloneVec(mean), Precision: precision.Clone(), chol: c, logDet: c.LogDet()}, nil
}

// SetParams refills g in place from a mean and positive definite
// precision matrix, reusing the existing mean/precision/factor storage
// when the dimension matches (allocating it on first use). The factor
// and log-determinant come from the same recurrences NewGaussian runs,
// so a reused Gaussian is bit-identical to a freshly constructed one.
// Not safe concurrently with readers of g.
func (g *Gaussian) SetParams(mean []float64, precision *Mat) error {
	d := len(mean)
	if precision.R != d || precision.C != d {
		return fmt.Errorf("stats: precision is %d×%d but mean has dim %d", precision.R, precision.C, d)
	}
	if g.chol == nil || len(g.Mean) != d {
		g.Mean = make([]float64, d)
		g.Precision = NewMat(d, d)
		g.chol = &Cholesky{L: NewMat(d, d)}
	}
	if err := CholeskyInto(g.chol.L, precision); err != nil {
		return fmt.Errorf("stats: precision matrix: %w", err)
	}
	copy(g.Mean, mean)
	copy(g.Precision.Data, precision.Data)
	g.logDet = g.chol.LogDet()
	return nil
}

// NewGaussianCov builds a Gaussian from a mean and a covariance matrix.
func NewGaussianCov(mean []float64, cov *Mat) (*Gaussian, error) {
	prec, err := Inverse(RegularizeSPD(cov, 1e-12))
	if err != nil {
		return nil, err
	}
	return NewGaussian(mean, prec)
}

// Dim returns the dimensionality.
func (g *Gaussian) Dim() int { return len(g.Mean) }

// Cov returns the covariance matrix Λ⁻¹.
func (g *Gaussian) Cov() *Mat { return g.chol.Inverse() }

// LogPdf returns the log density at x. It is allocation-free and safe
// for concurrent use — it sits on the Gibbs sampler's innermost loop.
func (g *Gaussian) LogPdf(x []float64) float64 {
	if len(x) != len(g.Mean) {
		panic("stats: dim mismatch in Gaussian.LogPdf")
	}
	return 0.5*(g.logDet-float64(g.Dim())*log2Pi) - 0.5*g.quadForm(x)
}

// LogPdfScratch is LogPdf with a caller-provided scratch buffer (length
// ≥ Dim) holding the centered vector, so the subtraction x−μ happens
// once instead of once per matrix row. It returns bit-identical values
// to LogPdf — the products and summation order are unchanged — and sits
// on the sampler's innermost loop where the d× redundant subtractions
// of the plain path are measurable.
func (g *Gaussian) LogPdfScratch(x, scratch []float64) float64 {
	d := len(g.Mean)
	if len(x) != d || len(scratch) < d {
		panic("stats: dim mismatch in Gaussian.LogPdfScratch")
	}
	diff := scratch[:d]
	for i := 0; i < d; i++ {
		diff[i] = x[i] - g.Mean[i]
	}
	q := 0.0
	for i := 0; i < d; i++ {
		di := diff[i]
		if di == 0 {
			continue
		}
		row := g.Precision.Data[i*d : (i+1)*d]
		s := 0.0
		for j := 0; j < d; j++ {
			s += row[j] * diff[j]
		}
		q += di * s
	}
	return 0.5*(g.logDet-float64(d)*log2Pi) - 0.5*q
}

// quadForm computes (x−μ)ᵀ·Λ·(x−μ) without temporaries.
func (g *Gaussian) quadForm(x []float64) float64 {
	d := len(g.Mean)
	q := 0.0
	for i := 0; i < d; i++ {
		di := x[i] - g.Mean[i]
		if di == 0 {
			continue
		}
		row := g.Precision.Data[i*d : (i+1)*d]
		s := 0.0
		for j := 0; j < d; j++ {
			s += row[j] * (x[j] - g.Mean[j])
		}
		q += di * s
	}
	return q
}

// Mahalanobis returns the Mahalanobis distance sqrt((x−μ)ᵀΛ(x−μ)).
func (g *Gaussian) Mahalanobis(x []float64) float64 {
	return math.Sqrt(g.quadForm(x))
}

// Sample draws one sample.
func (g *Gaussian) Sample(r *RNG) []float64 {
	return r.MVNormal(g.Mean, g.Cov())
}

// KLGaussian returns KL(p‖q) for multivariate normals:
//
//	½ [ tr(Λq Σp) + (μq−μp)ᵀ Λq (μq−μp) − d + log|Σq|/|Σp| ].
func KLGaussian(p, q *Gaussian) float64 {
	if p.Dim() != q.Dim() {
		panic("stats: dim mismatch in KLGaussian")
	}
	d := float64(p.Dim())
	sp := p.Cov()
	tr := q.Precision.Mul(sp).Trace()
	diff := SubVec(q.Mean, p.Mean)
	quad := Dot(diff, q.Precision.MulVec(diff))
	// log|Σq| − log|Σp| = log|Λp| − log|Λq|
	logRatio := p.logDet - q.logDet
	return 0.5 * (tr + quad - d + logRatio)
}

// SymKLGaussian returns the symmetrized divergence KL(p‖q)+KL(q‖p).
func SymKLGaussian(p, q *Gaussian) float64 {
	return KLGaussian(p, q) + KLGaussian(q, p)
}

// StudentT is a multivariate Student-t distribution, the posterior
// predictive of a Normal-Wishart model; used by the collapsed sampler.
type StudentT struct {
	Mean []float64
	// Scale is the scale matrix Σ (not covariance; covariance is
	// ν/(ν−2)·Σ when ν > 2).
	Scale *Mat
	Nu    float64

	chol   *Cholesky // factor of Scale
	logDet float64
}

// NewStudentT constructs a multivariate Student-t.
func NewStudentT(mean []float64, scale *Mat, nu float64) (*StudentT, error) {
	if nu <= 0 {
		return nil, fmt.Errorf("stats: Student-t needs ν > 0, got %g", nu)
	}
	c, err := NewCholesky(RegularizeSPD(scale, 1e-12))
	if err != nil {
		return nil, fmt.Errorf("stats: Student-t scale: %w", err)
	}
	return &StudentT{Mean: CloneVec(mean), Scale: scale.Clone(), Nu: nu, chol: c, logDet: c.LogDet()}, nil
}

// LogPdf returns the log density at x.
func (t *StudentT) LogPdf(x []float64) float64 {
	d := float64(len(t.Mean))
	diff := SubVec(x, t.Mean)
	q := t.chol.HalfQuadratic(diff)
	return LGamma((t.Nu+d)/2) - LGamma(t.Nu/2) -
		0.5*(d*math.Log(t.Nu*math.Pi)+t.logDet) -
		(t.Nu+d)/2*math.Log1p(q/t.Nu)
}
