package stats

import (
	"fmt"
	"math"
)

// AliasTable is a Walker/Vose alias table: O(n) to build from a weight
// vector, O(1) per draw regardless of n. It pays off when the same
// distribution is sampled many times — exactly the shape of fold-in
// against a frozen model, where the static α·φ_w part of the topic
// weights never changes between requests.
//
// A table is immutable after construction and safe for concurrent
// draws (the RNG carries all mutable state).
type AliasTable struct {
	prob  []float64 // acceptance threshold per column, in [0,1]
	alias []int32   // fallback index per column
	total float64   // sum of the input weights
}

// NewAliasTable builds an alias table over the non-negative weights w
// using Vose's stable two-worklist construction. Weights need not be
// normalized; zero weights are legal (their columns redirect with
// probability 1). Errors on empty, negative, NaN, Inf or all-zero
// input.
func NewAliasTable(w []float64) (*AliasTable, error) {
	n := len(w)
	if n == 0 {
		return nil, fmt.Errorf("stats: alias table needs at least one weight")
	}
	total := 0.0
	for i, x := range w {
		if x < 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("stats: alias weight %d is negative or NaN", i)
		}
		if math.IsInf(x, 1) {
			return nil, fmt.Errorf("stats: alias weight %d is +Inf", i)
		}
		total += x
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: alias weights sum to zero")
	}
	if math.IsInf(total, 1) {
		return nil, fmt.Errorf("stats: alias weights overflow to +Inf")
	}

	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		total: total,
	}
	// Scaled weights: mean 1 per column. Partition into small (<1) and
	// large (≥1) worklists, then repeatedly top a small column up from a
	// large one.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, x := range w {
		// Divide before multiplying: x/total is in [0,1], so the scaled
		// weight is bounded by n. The tempting n/total prefactor overflows
		// to +Inf for subnormal totals, and 0·Inf = NaN would then sort a
		// zero-weight column into the large list — drawable at probability
		// 1 despite having no mass.
		scaled[i] = x / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers are exactly-1 columns up to rounding; both residual
	// lists saturate (the standard Vose treatment of float error).
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t, nil
}

// N returns the number of outcomes.
func (t *AliasTable) N() int { return len(t.prob) }

// Total returns the sum of the weights the table was built from.
func (t *AliasTable) Total() float64 { return t.total }

// AliasDraw samples one index from the table in O(1): a single uniform
// picks the column with its integer part and accepts or redirects with
// its fractional part.
func (r *RNG) AliasDraw(t *AliasTable) int {
	u := r.Float64() * float64(len(t.prob))
	i := int(u)
	if i >= len(t.prob) { // u==n·(1−ulp) edge after the multiply
		i = len(t.prob) - 1
	}
	if u-float64(i) < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// GumbelMaxLog samples an index proportionally to exp(logw) via the
// Gumbel-max trick: argmax_k logw[k] + G_k with G_k standard Gumbel
// noise. It needs no exponentials of the weights and no normalization
// — one log per index instead of one exp plus two reduction passes —
// but consumes K uniforms where CategoricalLog consumes one, so it is
// an opt-in alternative draw, not a bit-identical replacement. −Inf
// weights are excluded; panics if all weights are −Inf.
func (r *RNG) GumbelMaxLog(logw []float64) int {
	best := math.Inf(-1)
	bestI := -1
	for i, x := range logw {
		if math.IsInf(x, -1) {
			continue
		}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		g := x - math.Log(-math.Log(u))
		if g > best {
			best = g
			bestI = i
		}
	}
	if bestI < 0 {
		panic("stats: GumbelMaxLog all weights -Inf")
	}
	return bestI
}

// GumbelTopK writes the indices of the k largest Gumbel-perturbed
// log-weights into out (length ≥ k) in decreasing perturbed order —
// equivalent to sampling k distinct indices without replacement with
// probabilities proportional to exp(logw). Returns the number written
// (less than k when fewer than k weights are finite).
func (r *RNG) GumbelTopK(logw []float64, k int, out []int) int {
	if k <= 0 {
		return 0
	}
	if k > len(logw) {
		k = len(logw)
	}
	// Selection into a small parallel key slice: k is tiny (top terms,
	// beam widths), so insertion into a sorted prefix beats a heap.
	keys := make([]float64, 0, k)
	n := 0
	for i, x := range logw {
		if math.IsInf(x, -1) {
			continue
		}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		g := x - math.Log(-math.Log(u))
		if n < k {
			keys = append(keys, g)
			out[n] = i
			n++
			for j := n - 1; j > 0 && keys[j] > keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
				out[j], out[j-1] = out[j-1], out[j]
			}
			continue
		}
		if g <= keys[k-1] {
			continue
		}
		keys[k-1] = g
		out[k-1] = i
		for j := k - 1; j > 0 && keys[j] > keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return n
}
