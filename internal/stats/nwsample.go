package stats

import "math"

// NWDrawScratch holds every intermediate of a posterior Normal-Wishart
// draw — the posterior-update buffers, the regularization/factor
// workspace, the Bartlett matrices and the substitution columns — so a
// Gibbs sweep that redraws K components per iteration performs the
// whole posterior-and-sample chain without allocating. Mu and Lambda
// are the draw outputs; both are overwritten by the next
// PosteriorSampleInto call, so callers that keep a draw must copy it
// out. A scratch belongs to one goroutine.
type NWDrawScratch struct {
	post *PosteriorScratch

	muC []float64 // posterior mean μ'
	sC  *Mat      // posterior scale S'

	reg  *Mat      // RegularizeSPD working copy
	chol *Cholesky // shared factor buffer

	e, yv, xv []float64 // InverseInto substitution columns

	bart   *Mat // Bartlett factor A
	la     *Mat // L·A
	laT    *Mat // (L·A)ᵀ
	wish   *Mat // Wishart draw before regularization
	scaled *Mat // β·Λ
	cov    *Mat // (β·Λ)⁻¹

	z []float64 // standard normals for the mean draw

	// Mu and Lambda hold the sampled mean and precision after a
	// PosteriorSampleInto call, valid until the next one.
	Mu     []float64
	Lambda *Mat
}

// NewDrawScratch returns draw scratch sized for this prior's dimension.
func (nw *NormalWishart) NewDrawScratch() *NWDrawScratch {
	d := nw.Dim()
	return &NWDrawScratch{
		post:   nw.NewPosteriorScratch(),
		muC:    make([]float64, d),
		sC:     NewMat(d, d),
		reg:    NewMat(d, d),
		chol:   &Cholesky{L: NewMat(d, d)},
		e:      make([]float64, d),
		yv:     make([]float64, d),
		xv:     make([]float64, d),
		bart:   NewMat(d, d),
		la:     NewMat(d, d),
		laT:    NewMat(d, d),
		wish:   NewMat(d, d),
		scaled: NewMat(d, d),
		cov:    NewMat(d, d),
		z:      make([]float64, d),
		Mu:     make([]float64, d),
		Lambda: NewMat(d, d),
	}
}

// addScatter accumulates m += diff·diffᵀ, the AddOuterScaled(1, diff,
// diff) call of the posterior update with the scale multiply dropped
// (1·x is exactly x) and the row indexing hoisted; rows with a zero
// pivot are skipped exactly as AddOuterScaled skips them. The paper's
// feature dimensions run unrolled; every per-element product matches
// the generic form, so the scatter is bit-identical either way.
func addScatter(m *Mat, diff []float64) {
	data := m.Data
	switch len(diff) {
	case 3:
		d0, d1, d2 := diff[0], diff[1], diff[2]
		if d0 != 0 {
			data[0] += d0 * d0
			data[1] += d0 * d1
			data[2] += d0 * d2
		}
		if d1 != 0 {
			data[3] += d1 * d0
			data[4] += d1 * d1
			data[5] += d1 * d2
		}
		if d2 != 0 {
			data[6] += d2 * d0
			data[7] += d2 * d1
			data[8] += d2 * d2
		}
	default:
		d := len(diff)
		for i := 0; i < d; i++ {
			av := diff[i]
			if av == 0 {
				continue
			}
			row := data[i*d : i*d+d : i*d+d]
			for j := 0; j < d; j++ {
				row[j] += av * diff[j]
			}
		}
	}
}

// PosteriorSampleInto draws (μ, Λ) from the Normal-Wishart posterior
// given observations xs, writing the sample into scr.Mu and scr.Lambda.
// It is the fused, allocation-free form of
//
//	mu, lambda := nw.PosteriorWith(xs, scr).Sample(r)
//
// and is bit-identical to it: the posterior update reuses the exact
// PosteriorWith arithmetic, each Regularize/Cholesky/Inverse step runs
// the Into variant of the primitive the allocating chain calls (same
// recurrences, same operation order), and the Bartlett factor and mean
// draw consume the generator in the same order — so the chain of draws,
// and therefore the fitted model, is unchanged.
func (nw *NormalWishart) PosteriorSampleInto(r *RNG, xs [][]float64, scr *NWDrawScratch) {
	d := nw.Dim()
	n := len(xs)
	var betaC, nuC float64
	muC := scr.muC[:d]
	if n == 0 {
		// Posterior returns a clone of the prior; the values Sample
		// consumes are the prior's own.
		betaC, nuC = nw.Beta, nw.Nu
		copy(muC, nw.Mu0)
		copy(scr.sC.Data, nw.S.Data)
	} else {
		ps := scr.post
		mean := ps.mean[:d]
		for i := range mean {
			mean[i] = 0
		}
		for _, x := range xs {
			if len(x) != d {
				panic("stats: dim mismatch in NormalWishart.PosteriorSampleInto")
			}
			for i, v := range x {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(n)
		}
		scatter := ps.scatter
		for i := range scatter.Data {
			scatter.Data[i] = 0
		}
		diff := ps.diff[:d]
		for _, x := range xs {
			for i := range diff {
				diff[i] = x[i] - mean[i]
			}
			addScatter(scatter, diff)
		}
		fn := float64(n)
		betaC = nw.Beta + fn
		nuC = nw.Nu + fn
		for i := range muC {
			muC[i] = (nw.Beta*nw.Mu0[i] + fn*mean[i]) / betaC
		}
		sInv := ps.sInv
		copy(sInv.Data, nw.priorSInv().Data)
		for i := range diff {
			diff[i] = mean[i] - nw.Mu0[i]
		}
		sInv.AddInPlace(scatter)
		sInv.AddOuterScaled(nw.Beta*fn/betaC, diff, diff)
		// S' = Inverse(RegularizeSPD(S'⁻¹, 1e-12)), via the factor the
		// regularizer already computed.
		RegularizeSPDInto(scr.reg, sInv, 1e-12, scr.chol)
		scr.chol.InverseInto(scr.sC, scr.e, scr.yv, scr.xv)
	}

	// Λ ~ Wishart(ν', S') by the Bartlett decomposition, exactly as
	// RNG.Wishart: factor the regularized scale, fill A diagonal-first
	// per row, then Λ = (L·A)(L·A)ᵀ symmetrized.
	RegularizeSPDInto(scr.reg, scr.sC, 1e-12, scr.chol)
	a := scr.bart
	for i := range a.Data {
		a.Data[i] = 0
	}
	for i := 0; i < d; i++ {
		a.Set(i, i, math.Sqrt(r.ChiSquared(nuC-float64(i))))
		for j := 0; j < i; j++ {
			a.Set(i, j, r.StdNormal())
		}
	}
	MulInto(scr.la, scr.chol.L, a)
	TransposeInto(scr.laT, scr.la)
	MulInto(scr.wish, scr.la, scr.laT)
	scr.wish.Symmetrize()
	RegularizeSPDInto(scr.Lambda, scr.wish, 1e-10, scr.chol)

	// μ | Λ ~ N(μ', (β'·Λ)⁻¹): scale, factor (MustCholesky semantics —
	// panic on failure), invert, regularize, draw.
	for i, v := range scr.Lambda.Data {
		scr.scaled.Data[i] = v * betaC
	}
	if err := CholeskyInto(scr.chol.L, scr.scaled); err != nil {
		panic(err)
	}
	scr.chol.InverseInto(scr.cov, scr.e, scr.yv, scr.xv)
	RegularizeSPDInto(scr.reg, scr.cov, 1e-12, scr.chol)
	r.MVNormalCholInto(scr.Mu[:d], muC, scr.chol, scr.z)
}
