package stats

import (
	"math"
	"testing"
)

func accumFixture(t *testing.T) (*NormalWishart, [][]float64) {
	t.Helper()
	prior, err := NewNormalWishart([]float64{0, 0}, 0.5, 5, Identity(2).Scale(0.4))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(60, 1)
	xs := make([][]float64, 40)
	for i := range xs {
		xs[i] = []float64{r.Normal(1, 0.5), r.Normal(-2, 0.8)}
	}
	return prior, xs
}

func TestNWAccumMatchesBatchPosterior(t *testing.T) {
	prior, xs := accumFixture(t)
	acc := NewNWAccum(prior)
	for _, x := range xs {
		acc.Add(x)
	}
	batch := prior.Posterior(xs)
	inc := acc.Posterior()
	if math.Abs(batch.Beta-inc.Beta) > 1e-9 || math.Abs(batch.Nu-inc.Nu) > 1e-9 {
		t.Errorf("β/ν mismatch: %g/%g vs %g/%g", inc.Beta, inc.Nu, batch.Beta, batch.Nu)
	}
	for i := range batch.Mu0 {
		if math.Abs(batch.Mu0[i]-inc.Mu0[i]) > 1e-9 {
			t.Errorf("μ mismatch at %d: %g vs %g", i, inc.Mu0[i], batch.Mu0[i])
		}
	}
	if batch.S.MaxAbsDiff(inc.S) > 1e-8 {
		t.Errorf("S mismatch:\n%v\nvs\n%v", inc.S, batch.S)
	}
}

func TestNWAccumRemoveRestoresState(t *testing.T) {
	prior, xs := accumFixture(t)
	acc := NewNWAccum(prior)
	for _, x := range xs[:20] {
		acc.Add(x)
	}
	before := acc.Posterior()
	for _, x := range xs[20:] {
		acc.Add(x)
	}
	for _, x := range xs[20:] {
		acc.Remove(x)
	}
	after := acc.Posterior()
	if acc.N() != 20 {
		t.Fatalf("N = %d", acc.N())
	}
	for i := range before.Mu0 {
		if math.Abs(before.Mu0[i]-after.Mu0[i]) > 1e-8 {
			t.Errorf("μ not restored at %d", i)
		}
	}
	if before.S.MaxAbsDiff(after.S) > 1e-7 {
		t.Error("S not restored")
	}
}

func TestNWAccumEmptyIsPrior(t *testing.T) {
	prior, xs := accumFixture(t)
	acc := NewNWAccum(prior)
	post := acc.Posterior()
	if post.Beta != prior.Beta || post.Nu != prior.Nu || post.S.MaxAbsDiff(prior.S) > 1e-15 {
		t.Error("empty accumulator posterior must equal prior")
	}
	// Predictive matches the prior predictive.
	st, err := prior.PredictiveT()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(acc.PredictiveLogPdf(xs[0]) - st.LogPdf(xs[0])); d > 1e-9 {
		t.Errorf("empty predictive off by %g", d)
	}
}

func TestNWAccumPredictiveMatchesBatch(t *testing.T) {
	prior, xs := accumFixture(t)
	acc := NewNWAccum(prior)
	for _, x := range xs[:15] {
		acc.Add(x)
	}
	st, err := prior.Posterior(xs[:15]).PredictiveT()
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.5, -1}
	if d := math.Abs(acc.PredictiveLogPdf(probe) - st.LogPdf(probe)); d > 1e-7 {
		t.Errorf("predictive off by %g", d)
	}
	// Cache invalidation on mutation.
	acc.Add(xs[15])
	st2, err := prior.Posterior(xs[:16]).PredictiveT()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(acc.PredictiveLogPdf(probe) - st2.LogPdf(probe)); d > 1e-7 {
		t.Errorf("stale cache: off by %g", d)
	}
}

func TestNWAccumLogMarginalMatchesBatch(t *testing.T) {
	prior, xs := accumFixture(t)
	acc := NewNWAccum(prior)
	for _, x := range xs[:10] {
		acc.Add(x)
	}
	want := prior.LogMarginalLikelihood(xs[:10])
	if d := math.Abs(acc.LogMarginalLikelihood() - want); d > 1e-7 {
		t.Errorf("marginal off by %g", d)
	}
}

func TestNWAccumRemoveEmptyPanics(t *testing.T) {
	prior, _ := accumFixture(t)
	acc := NewNWAccum(prior)
	defer func() {
		if recover() == nil {
			t.Error("Remove on empty should panic")
		}
	}()
	acc.Remove([]float64{0, 0})
}

func TestNWAccumDegenerateAxisStaysFinite(t *testing.T) {
	// All observations identical on one axis (the absent-gel case):
	// posterior and predictive must stay finite and positive definite.
	prior, _ := accumFixture(t)
	acc := NewNWAccum(prior)
	for i := 0; i < 50; i++ {
		acc.Add([]float64{9.21, float64(i) * 0.01})
	}
	post := acc.Posterior()
	if _, err := NewCholesky(post.S); err != nil {
		t.Fatalf("posterior scale not PD: %v", err)
	}
	lp := acc.PredictiveLogPdf([]float64{9.21, 0.2})
	if math.IsNaN(lp) || math.IsInf(lp, 0) {
		t.Errorf("predictive log pdf = %g", lp)
	}
}

// TestNWAccumMergeWithMatchesSequential: merging two accumulators over
// disjoint halves of the data must reproduce the sufficient statistics
// of one accumulator fed everything in order — exactly, because the
// stats are plain sums accumulated in the same left-to-right order.
func TestNWAccumMergeWithMatchesSequential(t *testing.T) {
	prior, xs := accumFixture(t)
	whole := NewNWAccum(prior)
	for _, x := range xs {
		whole.Add(x)
	}
	left, right := NewNWAccum(prior), NewNWAccum(prior)
	for _, x := range xs[:len(xs)/2] {
		left.Add(x)
	}
	for _, x := range xs[len(xs)/2:] {
		right.Add(x)
	}
	if err := left.MergeWith(right); err != nil {
		t.Fatal(err)
	}
	wn, wsum, wouter := whole.State()
	mn, msum, mouter := left.State()
	if wn != mn {
		t.Fatalf("count: merged %g vs whole %g", mn, wn)
	}
	for i := range wsum {
		if math.Abs(wsum[i]-msum[i]) > 1e-10 {
			t.Errorf("sum[%d]: merged %g vs whole %g", i, msum[i], wsum[i])
		}
	}
	if d := wouter.MaxAbsDiff(mouter); d > 1e-10 {
		t.Errorf("outer product differs by %g", d)
	}
	// The factored predictive must agree too (it is rebuilt from the
	// statistics, so this exercises the predOK invalidation).
	x := []float64{0.3, -1.1}
	if d := math.Abs(whole.PredictiveLogPdf(x) - left.PredictiveLogPdf(x)); d > 1e-10 {
		t.Errorf("predictive log-pdf differs by %g after merge", d)
	}
	// The merge source must be untouched.
	bn, _, _ := right.State()
	if int(bn) != len(xs)-len(xs)/2 {
		t.Errorf("merge mutated its argument: n = %g", bn)
	}
}

func TestNWAccumMergeWithRejectsMismatchedPriors(t *testing.T) {
	prior, _ := accumFixture(t)
	other, err := NewNormalWishart([]float64{0, 0}, 0.75, 5, Identity(2).Scale(0.4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewNWAccum(prior), NewNWAccum(other)
	if err := a.MergeWith(b); err == nil {
		t.Error("merging accumulators with different priors should fail")
	}
	if err := a.MergeWith(nil); err == nil {
		t.Error("merging with nil should fail")
	}
	// Same prior object: fine.
	if err := a.MergeWith(NewNWAccum(prior)); err != nil {
		t.Errorf("same-prior merge failed: %v", err)
	}
}
