package stats

import (
	"math"
	"sort"
)

// Normalize returns w scaled to sum to one. Panics if the sum is not
// positive.
func Normalize(w []float64) []float64 {
	s := SumVec(w)
	if s <= 0 || math.IsNaN(s) {
		panic("stats: Normalize needs a positive sum")
	}
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = x / s
	}
	return out
}

// NormalizeSmoothed adds eps to every weight before normalizing,
// allowing all-zero or partially-zero vectors to become proper
// distributions (used when comparing sparse concentration vectors with
// categorical KL).
func NormalizeSmoothed(w []float64, eps float64) []float64 {
	out := make([]float64, len(w))
	s := 0.0
	for i, x := range w {
		out[i] = x + eps
		s += out[i]
	}
	for i := range out {
		out[i] /= s
	}
	return out
}

// KLCategorical returns KL(p‖q) = Σ p_i log(p_i/q_i) for probability
// vectors. Terms with p_i = 0 contribute zero; q_i = 0 with p_i > 0
// yields +Inf.
func KLCategorical(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: dim mismatch in KLCategorical")
	}
	kl := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1)
		}
		kl += p[i] * math.Log(p[i]/q[i])
	}
	return kl
}

// JSDivergence returns the Jensen-Shannon divergence between p and q,
// a bounded symmetric alternative to KL.
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("stats: dim mismatch in JSDivergence")
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	return 0.5*KLCategorical(p, m) + 0.5*KLCategorical(q, m)
}

// Entropy returns the Shannon entropy of a probability vector in nats.
func Entropy(p []float64) float64 {
	h := 0.0
	for _, x := range p {
		if x > 0 {
			h -= x * math.Log(x)
		}
	}
	return h
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element (first on ties).
func ArgMin(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}

// TopK returns the indices of the k largest elements in decreasing
// order of value (stable on ties by index).
func TopK(v []float64, k int) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
