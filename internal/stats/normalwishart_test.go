package stats

import (
	"math"
	"testing"
)

func testPrior(t *testing.T, dim int) *NormalWishart {
	t.Helper()
	mu0 := make([]float64, dim)
	nw, err := NewNormalWishart(mu0, 1.0, float64(dim)+2, Identity(dim).Scale(0.5))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNWPosteriorCounts(t *testing.T) {
	nw := testPrior(t, 2)
	xs := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	post := nw.Posterior(xs)
	if post.Beta != nw.Beta+3 {
		t.Errorf("β' = %g, want %g", post.Beta, nw.Beta+3)
	}
	if post.Nu != nw.Nu+3 {
		t.Errorf("ν' = %g, want %g", post.Nu, nw.Nu+3)
	}
	// μ' = (β·μ0 + n·x̄)/(β+n) with μ0 = 0, x̄ = (2/3, 2/3)
	want := 3.0 * (2.0 / 3.0) / 4.0
	if math.Abs(post.Mu0[0]-want) > 1e-12 {
		t.Errorf("μ'[0] = %g, want %g", post.Mu0[0], want)
	}
}

func TestNWPosteriorEmptyIsPrior(t *testing.T) {
	nw := testPrior(t, 3)
	post := nw.Posterior(nil)
	if post.Beta != nw.Beta || post.Nu != nw.Nu {
		t.Error("empty posterior must equal prior")
	}
	if post.S.MaxAbsDiff(nw.S) > 1e-15 {
		t.Error("empty posterior scale must equal prior scale")
	}
	// And must not alias.
	post.S.Set(0, 0, 99)
	if nw.S.At(0, 0) == 99 {
		t.Error("posterior aliases prior scale matrix")
	}
}

func TestNWPosteriorConcentratesOnTruth(t *testing.T) {
	r := NewRNG(30, 1)
	trueMu := []float64{1.5, -0.5}
	trueCov := MatFromRows([][]float64{{0.2, 0.05}, {0.05, 0.1}})
	const n = 5000
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = r.MVNormal(trueMu, trueCov)
	}
	nw := testPrior(t, 2)
	post := nw.Posterior(xs)
	// Posterior mean of μ ≈ truth.
	for i := range trueMu {
		if math.Abs(post.Mu0[i]-trueMu[i]) > 0.03 {
			t.Errorf("posterior μ[%d] = %g, want ≈ %g", i, post.Mu0[i], trueMu[i])
		}
	}
	// E[Λ] = ν'·S' should approximate the true precision.
	_, lam := post.MeanParams()
	truePrec, err := Inverse(trueCov)
	if err != nil {
		t.Fatal(err)
	}
	if lam.MaxAbsDiff(truePrec) > 0.06*truePrec.At(0, 0) {
		t.Errorf("E[Λ] = %v, want ≈ %v", lam, truePrec)
	}
}

func TestNWSampleRoundTrip(t *testing.T) {
	r := NewRNG(31, 1)
	nw := testPrior(t, 2)
	for i := 0; i < 100; i++ {
		mu, lam := nw.Sample(r)
		if len(mu) != 2 {
			t.Fatal("bad μ dim")
		}
		if _, err := NewCholesky(lam); err != nil {
			t.Fatalf("sampled Λ not PD: %v", err)
		}
	}
}

func TestNWPredictiveTIsProper(t *testing.T) {
	nw := testPrior(t, 2)
	st, err := nw.PredictiveT()
	if err != nil {
		t.Fatal(err)
	}
	// 2D Riemann integration of the predictive density.
	const h = 0.1
	sum := 0.0
	for x := -12.0; x <= 12.0; x += h {
		for y := -12.0; y <= 12.0; y += h {
			sum += math.Exp(st.LogPdf([]float64{x, y})) * h * h
		}
	}
	if math.Abs(sum-1) > 0.03 {
		t.Errorf("predictive integrates to %g", sum)
	}
}

func TestNWLogMarginalLikelihoodPrefersMatchingData(t *testing.T) {
	r := NewRNG(32, 1)
	nw := testPrior(t, 2)
	near := make([][]float64, 50)
	far := make([][]float64, 50)
	for i := range near {
		near[i] = r.MVNormal([]float64{0, 0}, Identity(2).Scale(0.3))
		far[i] = r.MVNormal([]float64{25, 25}, Identity(2).Scale(0.3))
	}
	if nw.LogMarginalLikelihood(near) <= nw.LogMarginalLikelihood(far) {
		t.Error("marginal likelihood should prefer data near the prior mean")
	}
}

func TestNWLogMarginalDecomposesByChainRule(t *testing.T) {
	// p(x1,x2) = p(x1)·p(x2|x1): marginal of both = marginal of first +
	// predictive of second under the posterior after the first.
	nw := testPrior(t, 2)
	x1 := []float64{0.5, -0.3}
	x2 := []float64{-0.2, 0.4}
	joint := nw.LogMarginalLikelihood([][]float64{x1, x2})
	first := nw.LogMarginalLikelihood([][]float64{x1})
	post1 := nw.Posterior([][]float64{x1})
	st, err := post1.PredictiveT()
	if err != nil {
		t.Fatal(err)
	}
	chained := first + st.LogPdf(x2)
	if math.Abs(joint-chained) > 1e-6 {
		t.Errorf("chain rule violated: joint = %g, chained = %g", joint, chained)
	}
}

func TestNWValidation(t *testing.T) {
	if _, err := NewNormalWishart([]float64{0, 0}, 0, 4, Identity(2)); err == nil {
		t.Error("want error for β=0")
	}
	if _, err := NewNormalWishart([]float64{0, 0}, 1, 0.5, Identity(2)); err == nil {
		t.Error("want error for ν ≤ dim−1")
	}
	if _, err := NewNormalWishart([]float64{0, 0}, 1, 4, Identity(3)); err == nil {
		t.Error("want error for dim mismatch")
	}
	if _, err := NewNormalWishart([]float64{0, 0}, 1, 4, MatFromRows([][]float64{{1, 2}, {2, 1}})); err == nil {
		t.Error("want error for non-PD scale")
	}
}

func TestNWModeAndMean(t *testing.T) {
	nw := testPrior(t, 2)
	mu, lamMode := nw.Mode()
	_, lamMean := nw.MeanParams()
	if len(mu) != 2 {
		t.Fatal("bad mode dim")
	}
	// Mode scale (ν−d)·S < mean scale ν·S elementwise on the diagonal.
	if lamMode.At(0, 0) >= lamMean.At(0, 0) {
		t.Error("mode precision should be smaller than mean precision")
	}
}
