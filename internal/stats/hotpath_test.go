package stats

// Equivalence tests for the hot-path variants: every scratch/factored
// API must reproduce its allocating counterpart — bit-identical where
// the operation order is unchanged, ≤1e-10 where the linear algebra is
// reorganized (rank-one update/downdate vs. full refactorization).

import (
	"errors"
	"math"
	"testing"
)

func randSPD(r *RNG, d int) *Mat {
	a := NewMat(d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			a.Set(i, j, r.Normal(0, 1))
		}
	}
	spd := a.Mul(a.T())
	for i := 0; i < d; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(d))
	}
	spd.Symmetrize()
	return spd
}

func TestCholeskyIntoMatchesNewCholesky(t *testing.T) {
	r := NewRNG(11, 0)
	for _, d := range []int{1, 2, 3, 6} {
		a := randSPD(r, d)
		want := MustCholesky(a)
		got := NewMat(d, d)
		// Poison the buffer: CholeskyInto must fully overwrite it.
		for i := range got.Data {
			got.Data[i] = math.NaN()
		}
		if err := CholeskyInto(got, a); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if got.MaxAbsDiff(want.L) != 0 {
			t.Errorf("d=%d: CholeskyInto differs from NewCholesky by %g", d, got.MaxAbsDiff(want.L))
		}
	}
	if err := CholeskyInto(NewMat(2, 2), ScaledIdentity(2, -1)); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("negative matrix: err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestRank1UpdateMatchesRefactorization(t *testing.T) {
	r := NewRNG(12, 0)
	for _, d := range []int{2, 3, 6} {
		a := randSPD(r, d)
		x := make([]float64, d)
		for i := range x {
			x[i] = r.Normal(0, 2)
		}
		l := MustCholesky(a).L
		Rank1Update(l, x, make([]float64, d))
		updated := a.Clone()
		updated.AddOuterScaled(1, x, x)
		want := MustCholesky(updated)
		if diff := l.MaxAbsDiff(want.L); diff > 1e-10 {
			t.Errorf("d=%d: rank-1 update off by %g", d, diff)
		}
	}
}

func TestRank1DowndateMatchesRefactorization(t *testing.T) {
	r := NewRNG(13, 0)
	for _, d := range []int{2, 3, 6} {
		a := randSPD(r, d)
		x := make([]float64, d)
		for i := range x {
			x[i] = r.Normal(0, 0.3) // small enough that A − xxᵀ stays PD
		}
		l := MustCholesky(a).L
		if err := Rank1Downdate(l, x, make([]float64, d)); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		downdated := a.Clone()
		downdated.AddOuterScaled(-1, x, x)
		want := MustCholesky(downdated)
		if diff := l.MaxAbsDiff(want.L); diff > 1e-10 {
			t.Errorf("d=%d: rank-1 downdate off by %g", d, diff)
		}
	}
	// Update followed by downdate with the same vector round-trips.
	a := randSPD(r, 3)
	x := []float64{1.5, -0.7, 2.2}
	l := MustCholesky(a).L
	work := make([]float64, 3)
	Rank1Update(l, x, work)
	if err := Rank1Downdate(l, x, work); err != nil {
		t.Fatal(err)
	}
	if diff := l.MaxAbsDiff(MustCholesky(a).L); diff > 1e-10 {
		t.Errorf("update/downdate round trip off by %g", diff)
	}
}

func TestRank1DowndateRejectsIndefinite(t *testing.T) {
	l := MustCholesky(Identity(2)).L
	// I − xxᵀ with ‖x‖ > 1 is indefinite.
	err := Rank1Downdate(l, []float64{2, 0}, make([]float64, 2))
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestGaussianLogPdfScratchBitIdentical(t *testing.T) {
	r := NewRNG(14, 0)
	for _, d := range []int{1, 3, 6} {
		mean := make([]float64, d)
		for i := range mean {
			mean[i] = r.Normal(0, 3)
		}
		g, err := NewGaussian(mean, randSPD(r, d))
		if err != nil {
			t.Fatal(err)
		}
		scratch := make([]float64, d)
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, d)
			for i := range x {
				x[i] = r.Normal(0, 3)
			}
			if trial%5 == 0 {
				x[0] = mean[0] // exercise the di==0 skip
			}
			if got, want := g.LogPdfScratch(x, scratch), g.LogPdf(x); got != want {
				t.Fatalf("d=%d trial %d: scratch %v != plain %v", d, trial, got, want)
			}
		}
	}
}

func TestCategoricalLogScratchBitIdentical(t *testing.T) {
	gen := NewRNG(15, 0)
	a, b := NewRNG(16, 1), NewRNG(16, 1)
	scratch := make([]float64, 12)
	for trial := 0; trial < 200; trial++ {
		k := 2 + gen.IntN(10)
		logw := make([]float64, k)
		for i := range logw {
			logw[i] = gen.Normal(-400, 300) // deep underflow territory
		}
		if got, want := a.CategoricalLogScratch(logw, scratch), b.CategoricalLog(logw); got != want {
			t.Fatalf("trial %d: scratch draw %d != plain draw %d", trial, got, want)
		}
	}
}

// refPosterior is the seed implementation of NormalWishart.Posterior,
// kept verbatim so the scratch rewrite is provably bit-identical.
func refPosterior(nw *NormalWishart, xs [][]float64) *NormalWishart {
	d := nw.Dim()
	n := len(xs)
	if n == 0 {
		return &NormalWishart{Mu0: CloneVec(nw.Mu0), Beta: nw.Beta, Nu: nw.Nu, S: nw.S.Clone()}
	}
	mean := make([]float64, d)
	for _, x := range xs {
		for i, v := range x {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	scatter := NewMat(d, d)
	for _, x := range xs {
		diff := SubVec(x, mean)
		scatter.AddOuterScaled(1, diff, diff)
	}
	fn := float64(n)
	betaC := nw.Beta + fn
	nuC := nw.Nu + fn
	muC := make([]float64, d)
	for i := range muC {
		muC[i] = (nw.Beta*nw.Mu0[i] + fn*mean[i]) / betaC
	}
	sInv, err := Inverse(RegularizeSPD(nw.S, 1e-12))
	if err != nil {
		panic(err)
	}
	diff0 := SubVec(mean, nw.Mu0)
	sInv.AddInPlace(scatter)
	sInv.AddOuterScaled(nw.Beta*fn/betaC, diff0, diff0)
	sC, err := Inverse(RegularizeSPD(sInv, 1e-12))
	if err != nil {
		panic(err)
	}
	return &NormalWishart{Mu0: muC, Beta: betaC, Nu: nuC, S: sC}
}

func TestPosteriorWithBitIdenticalToSeed(t *testing.T) {
	r := NewRNG(17, 0)
	for _, d := range []int{2, 3, 6} {
		mu0 := make([]float64, d)
		for i := range mu0 {
			mu0[i] = r.Normal(0, 1)
		}
		prior, err := NewNormalWishart(mu0, 0.8, float64(d)+2.5, randSPD(r, d).Scale(0.1))
		if err != nil {
			t.Fatal(err)
		}
		scr := prior.NewPosteriorScratch()
		for _, n := range []int{0, 1, 5, 40} {
			xs := make([][]float64, n)
			for i := range xs {
				xs[i] = make([]float64, d)
				for j := range xs[i] {
					xs[i][j] = r.Normal(2, 1.5)
				}
			}
			want := refPosterior(prior, xs)
			got := prior.PosteriorWith(xs, scr)
			if got.Beta != want.Beta || got.Nu != want.Nu {
				t.Fatalf("d=%d n=%d: β/ν differ", d, n)
			}
			for i := range want.Mu0 {
				if got.Mu0[i] != want.Mu0[i] {
					t.Fatalf("d=%d n=%d: μ'[%d] %v != %v", d, n, i, got.Mu0[i], want.Mu0[i])
				}
			}
			if diff := got.S.MaxAbsDiff(want.S); diff != 0 {
				t.Fatalf("d=%d n=%d: S' differs by %g", d, n, diff)
			}
		}
	}
}

func TestNWAccumPredictiveMatchesFullRefactorization(t *testing.T) {
	prior, xs := accumFixture(t)
	acc := NewNWAccum(prior)
	probes := [][]float64{{0.5, -1}, {3, 2}, {-2, -4}, {0, 0}}
	for i, x := range xs {
		acc.Add(x)
		st, err := prior.Posterior(xs[:i+1]).PredictiveT()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range probes {
			if d := math.Abs(acc.PredictiveLogPdf(p) - st.LogPdf(p)); d > 1e-10 {
				t.Fatalf("n=%d probe %v: factored predictive off by %g", i+1, p, d)
			}
		}
	}
	// And back down through Remove.
	for i := len(xs) - 1; i > 0; i-- {
		acc.Remove(xs[i])
		st, err := prior.Posterior(xs[:i]).PredictiveT()
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(acc.PredictiveLogPdf(probes[0]) - st.LogPdf(probes[0])); d > 1e-10 {
			t.Fatalf("after remove to n=%d: off by %g", i, d)
		}
	}
}

func TestNWAccumPredictiveAllocFree(t *testing.T) {
	prior, xs := accumFixture(t)
	acc := NewNWAccum(prior)
	for _, x := range xs {
		acc.Add(x)
	}
	probe := []float64{0.3, -1.2}
	acc.PredictiveLogPdf(probe) // build the cache once
	if n := testing.AllocsPerRun(100, func() {
		acc.PredictiveLogPdf(probe)
	}); n != 0 {
		t.Errorf("cached PredictiveLogPdf allocates %.1f/op, want 0", n)
	}
	// The Remove/eval×K/Add cycle of a collapsed sweep step: the lazy
	// rebuild itself must also be allocation-free.
	if n := testing.AllocsPerRun(100, func() {
		acc.Remove(xs[0])
		acc.PredictiveLogPdf(probe)
		acc.Add(xs[0])
		acc.PredictiveLogPdf(probe)
	}); n != 0 {
		t.Errorf("sweep-step cycle allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		acc.LogMarginalLikelihood()
	}); n != 0 {
		t.Errorf("LogMarginalLikelihood allocates %.1f/op, want 0", n)
	}
}
