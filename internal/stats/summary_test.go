package stats

import (
	"math"
	"testing"
)

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	// Sample variance with n-1: 32/7.
	if got, want := Variance(v), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %g, want %g", got, want)
	}
	if got := StdDev(v); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs")
	}
}

func TestQuantileMedian(t *testing.T) {
	v := []float64{3, 1, 2}
	if got := Median(v); got != 2 {
		t.Errorf("Median = %g", got)
	}
	if got := Quantile(v, 0); got != 1 {
		t.Errorf("Q0 = %g", got)
	}
	if got := Quantile(v, 1); got != 3 {
		t.Errorf("Q1 = %g", got)
	}
	if got := Quantile([]float64{0, 10}, 0.25); got != 2.5 {
		t.Errorf("Q.25 = %g", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestMeanVecCovMat(t *testing.T) {
	xs := [][]float64{{1, 0}, {3, 4}}
	m := MeanVec(xs)
	if m[0] != 2 || m[1] != 2 {
		t.Errorf("MeanVec = %v", m)
	}
	c := CovMat(xs)
	// cov (n-1 denominator): [[2,4],[4,8]]
	want := MatFromRows([][]float64{{2, 4}, {4, 8}})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("CovMat = %v, want %v", c, want)
	}
}

func TestHistogram(t *testing.T) {
	v := []float64{0.1, 0.2, 0.6, 0.9, -5, 100}
	h := Histogram(v, 2, 0, 1)
	// -5 clamps to bin 0, 100 clamps to bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("Histogram = %v", h)
	}
	if got := Histogram(v, 0, 0, 1); len(got) != 0 {
		t.Error("zero bins should return empty")
	}
}

func TestPearsonSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := PearsonCorr(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Pearson = %g", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := PearsonCorr(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("Pearson = %g", got)
	}
	// Spearman is invariant to monotone transforms.
	ymono := []float64{1, 8, 27, 64, 125}
	if got := SpearmanCorr(x, ymono); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman = %g", got)
	}
	if !math.IsNaN(PearsonCorr(x, []float64{1, 1, 1, 1, 1})) {
		t.Error("constant series should give NaN")
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("Ranks = %v, want %v", r, want)
			break
		}
	}
}
