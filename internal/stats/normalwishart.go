package stats

import (
	"fmt"
	"math"
	"sync"
)

// NormalWishart is the conjugate prior NW(μ₀, β, ν, S) over the mean and
// precision (μ, Λ) of a multivariate Gaussian:
//
//	Λ ~ Wishart(ν, S)          (E[Λ] = ν·S)
//	μ | Λ ~ N(μ₀, (β·Λ)⁻¹)
//
// This matches the paper's hyperparameterization (μ₀, βᵍ, νᵍ, Sᵍ) for
// the gel components and (m₀, βᵉ, νᵉ, Sᵉ) for the emulsion components.
type NormalWishart struct {
	Mu0  []float64
	Beta float64
	Nu   float64
	S    *Mat // scale matrix of the Wishart

	// sInvOnce/sInvCache memoize Inverse(RegularizeSPD(S, 1e-12)), a
	// constant the posterior update needs on every call. S must not be
	// mutated after the first posterior/predictive evaluation.
	sInvOnce  sync.Once
	sInvCache *Mat
}

// NewNormalWishart validates and constructs a Normal-Wishart prior.
func NewNormalWishart(mu0 []float64, beta, nu float64, s *Mat) (*NormalWishart, error) {
	d := len(mu0)
	if s.R != d || s.C != d {
		return nil, fmt.Errorf("stats: NW scale is %d×%d but mean has dim %d", s.R, s.C, d)
	}
	if beta <= 0 {
		return nil, fmt.Errorf("stats: NW needs β > 0, got %g", beta)
	}
	if nu <= float64(d-1) {
		return nil, fmt.Errorf("stats: NW needs ν > dim−1 = %d, got %g", d-1, nu)
	}
	if _, err := NewCholesky(s); err != nil {
		return nil, fmt.Errorf("stats: NW scale matrix: %w", err)
	}
	return &NormalWishart{Mu0: CloneVec(mu0), Beta: beta, Nu: nu, S: s.Clone()}, nil
}

// Dim returns the dimensionality.
func (nw *NormalWishart) Dim() int { return len(nw.Mu0) }

// priorSInv returns the memoized S⁻¹ (regularized exactly as the
// original per-call computation was, so values are bit-identical).
// Callers must treat the result as read-only.
func (nw *NormalWishart) priorSInv() *Mat {
	nw.sInvOnce.Do(func() {
		inv, err := Inverse(RegularizeSPD(nw.S, 1e-12))
		if err != nil {
			panic(err) // prior validated at construction
		}
		nw.sInvCache = inv
	})
	return nw.sInvCache
}

// PosteriorScratch holds the reusable intermediates of a posterior
// update — sample mean, centered vector, scatter matrix and the
// assembled S'⁻¹ — so a Gibbs sweep that recomputes K posteriors per
// iteration stops allocating them. Obtain one per goroutine via
// NewPosteriorScratch; a scratch must not be shared concurrently.
type PosteriorScratch struct {
	mean, diff []float64
	scatter    *Mat
	sInv       *Mat
}

// NewPosteriorScratch returns scratch sized for this prior's dimension.
func (nw *NormalWishart) NewPosteriorScratch() *PosteriorScratch {
	d := nw.Dim()
	return &PosteriorScratch{
		mean:    make([]float64, d),
		diff:    make([]float64, d),
		scatter: NewMat(d, d),
		sInv:    NewMat(d, d),
	}
}

// Posterior returns the Normal-Wishart posterior given observations xs.
// With n observations, sample mean x̄ and scatter Σᵢ(xᵢ−x̄)(xᵢ−x̄)ᵀ:
//
//	β' = β + n,   ν' = ν + n,   μ' = (β·μ₀ + n·x̄)/(β+n)
//	S'⁻¹ = S⁻¹ + scatter + (β·n/(β+n))·(x̄−μ₀)(x̄−μ₀)ᵀ
//
// These are the update formulas the paper states under equation (4).
func (nw *NormalWishart) Posterior(xs [][]float64) *NormalWishart {
	return nw.PosteriorWith(xs, nw.NewPosteriorScratch())
}

// PosteriorWith is Posterior using caller-provided scratch for all
// intermediates, allocating only the returned posterior itself. The
// arithmetic (operation order, centering, rank-one terms) is unchanged,
// so results are bit-identical to Posterior.
func (nw *NormalWishart) PosteriorWith(xs [][]float64, scr *PosteriorScratch) *NormalWishart {
	d := nw.Dim()
	n := len(xs)
	if n == 0 {
		return &NormalWishart{Mu0: CloneVec(nw.Mu0), Beta: nw.Beta, Nu: nw.Nu, S: nw.S.Clone()}
	}
	mean := scr.mean[:d]
	for i := range mean {
		mean[i] = 0
	}
	for _, x := range xs {
		if len(x) != d {
			panic("stats: dim mismatch in NormalWishart.Posterior")
		}
		for i, v := range x {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(n)
	}
	scatter := scr.scatter
	for i := range scatter.Data {
		scatter.Data[i] = 0
	}
	diff := scr.diff[:d]
	for _, x := range xs {
		for i := range diff {
			diff[i] = x[i] - mean[i]
		}
		scatter.AddOuterScaled(1, diff, diff)
	}
	fn := float64(n)
	betaC := nw.Beta + fn
	nuC := nw.Nu + fn
	muC := make([]float64, d)
	for i := range muC {
		muC[i] = (nw.Beta*nw.Mu0[i] + fn*mean[i]) / betaC
	}
	sInv := scr.sInv
	copy(sInv.Data, nw.priorSInv().Data)
	for i := range diff {
		diff[i] = mean[i] - nw.Mu0[i]
	}
	sInv.AddInPlace(scatter)
	sInv.AddOuterScaled(nw.Beta*fn/betaC, diff, diff)
	sC, err := Inverse(RegularizeSPD(sInv, 1e-12))
	if err != nil {
		panic(err)
	}
	return &NormalWishart{Mu0: muC, Beta: betaC, Nu: nuC, S: sC}
}

// Sample draws (μ, Λ) from the Normal-Wishart.
func (nw *NormalWishart) Sample(r *RNG) (mu []float64, lambda *Mat) {
	lambda = r.Wishart(nw.Nu, nw.S)
	lambda = RegularizeSPD(lambda, 1e-10)
	cov := MustCholesky(lambda.Scale(nw.Beta)).Inverse()
	mu = r.MVNormal(nw.Mu0, cov)
	return mu, lambda
}

// Mode returns the MAP (μ, Λ): μ = μ₀ and Λ = (ν−d)·S for ν > d.
func (nw *NormalWishart) Mode() (mu []float64, lambda *Mat) {
	d := float64(nw.Dim())
	f := nw.Nu - d
	if f <= 0 {
		f = nw.Nu // fall back to the mean scale when the mode is undefined
	}
	return CloneVec(nw.Mu0), nw.S.Scale(f)
}

// MeanParams returns the posterior-mean parameters: E[μ] = μ₀ and
// E[Λ] = ν·S.
func (nw *NormalWishart) MeanParams() (mu []float64, lambda *Mat) {
	return CloneVec(nw.Mu0), nw.S.Scale(nw.Nu)
}

// PredictiveT returns the posterior predictive distribution of a new
// observation, a multivariate Student-t:
//
//	t_{ν−d+1}( μ₀, (β+1)/(β·(ν−d+1)) · S⁻¹ ).
func (nw *NormalWishart) PredictiveT() (*StudentT, error) {
	d := float64(nw.Dim())
	dof := nw.Nu - d + 1
	if dof <= 0 {
		return nil, fmt.Errorf("stats: predictive dof %g ≤ 0", dof)
	}
	scale := nw.priorSInv().Scale((nw.Beta + 1) / (nw.Beta * dof))
	return NewStudentT(nw.Mu0, scale, dof)
}

// LogMarginalLikelihood returns log p(xs) under the Normal-Wishart
// model with all parameters integrated out:
//
//	log Z(posterior) − log Z(prior) − (n·d/2)·log(2π)
//
// where log Z(β,ν,S) = (ν·d/2)·log 2 + log Γ_d(ν/2) + (ν/2)·log|S| − (d/2)·log β.
func (nw *NormalWishart) LogMarginalLikelihood(xs [][]float64) float64 {
	post := nw.Posterior(xs)
	d := nw.Dim()
	n := float64(len(xs))
	return post.logZ() - nw.logZ() - n*float64(d)/2*log2Pi
}

func (nw *NormalWishart) logZ() float64 {
	d := float64(nw.Dim())
	ld, err := LogDetSPD(nw.S)
	if err != nil {
		ld, _ = LogDetSPD(RegularizeSPD(nw.S, 1e-12))
	}
	return nw.Nu*d/2*math.Ln2 + MvLGamma(nw.Dim(), nw.Nu/2) +
		nw.Nu/2*ld - d/2*math.Log(nw.Beta)
}
