package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source shared by all stochastic code in
// the repository. It wraps math/rand/v2's PCG so that every experiment
// is reproducible from a seed pair.
type RNG struct {
	src *rand.Rand
	pcg *rand.PCG
}

// NewRNG returns an RNG seeded with (seed, stream).
func NewRNG(seed, stream uint64) *RNG {
	pcg := rand.NewPCG(seed, stream)
	return &RNG{src: rand.New(pcg), pcg: pcg}
}

// MarshalState captures the generator's exact stream position. The
// wrapped rand.Rand keeps no state of its own (every draw derives from
// the source), so restoring these bytes via UnmarshalState resumes the
// stream bit-for-bit — the property crash-safe sampler checkpoints
// depend on.
func (r *RNG) MarshalState() ([]byte, error) {
	return r.pcg.MarshalBinary()
}

// UnmarshalState restores a stream position captured by MarshalState.
func (r *RNG) UnmarshalState(b []byte) error {
	return r.pcg.UnmarshalBinary(b)
}

// Reseed resets the generator to the exact state NewRNG(seed, stream)
// would produce. The rand.Rand wrapper keeps no state of its own (the
// same property MarshalState relies on), so a pooled RNG reseeded per
// request yields the identical draw sequence to a freshly constructed
// one — without the allocation.
func (r *RNG) Reseed(seed, stream uint64) {
	r.pcg.Seed(seed, stream)
}

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform integer in [0,n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle shuffles n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Normal returns a sample from N(mu, sigma²).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.src.NormFloat64()
}

// StdNormal returns a sample from N(0,1).
func (r *RNG) StdNormal() float64 { return r.src.NormFloat64() }

// Exponential returns a sample from Exp(rate).
func (r *RNG) Exponential(rate float64) float64 {
	return r.src.ExpFloat64() / rate
}

// Gamma returns a sample from Gamma(shape, scale) with mean shape·scale,
// using Marsaglia–Tsang for shape ≥ 1 and the boost trick for shape < 1.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Gamma needs positive shape and scale")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) · U^{1/a}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.StdNormal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// ChiSquared returns a sample from χ²(df).
func (r *RNG) ChiSquared(df float64) float64 {
	return r.Gamma(df/2, 2)
}

// Beta returns a sample from Beta(a, b).
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	return x / (x + y)
}

// Dirichlet returns a sample from Dir(alpha).
func (r *RNG) Dirichlet(alpha []float64) []float64 {
	out := make([]float64, len(alpha))
	s := 0.0
	for i, a := range alpha {
		out[i] = r.Gamma(a, 1)
		s += out[i]
	}
	if s == 0 {
		// Extremely sparse draw underflowed; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= s
	}
	return out
}

// DirichletSym returns a sample from a symmetric Dirichlet with
// concentration a in k dimensions.
func (r *RNG) DirichletSym(a float64, k int) []float64 {
	alpha := make([]float64, k)
	for i := range alpha {
		alpha[i] = a
	}
	return r.Dirichlet(alpha)
}

// Categorical samples an index proportionally to the non-negative
// weights w. The weights need not be normalized. Panics if all weights
// are zero or any is negative/NaN.
func (r *RNG) Categorical(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("stats: Categorical weight negative or NaN")
		}
		total += x
	}
	if total <= 0 {
		panic("stats: Categorical weights sum to zero")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// CategoricalFast is Categorical without the validation pass, for hot
// loops whose weights are non-negative and finite by construction
// (counts times probabilities, exponentials). The total is summed in
// the same index order and the inversion scan is unchanged, so for
// valid weights the draw is bit-identical to Categorical — it consumes
// one uniform and selects the same index. Invalid weights (negative,
// NaN) silently skew the draw instead of panicking; callers own that
// invariant.
func (r *RNG) CategoricalFast(w []float64) int {
	total := 0.0
	for _, x := range w {
		total += x
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// CategoricalLog samples an index from unnormalized log-weights using
// the log-sum-exp trick; robust when densities underflow.
func (r *RNG) CategoricalLog(logw []float64) int {
	return r.CategoricalLogScratch(logw, make([]float64, len(logw)))
}

// CategoricalLogFused is CategoricalLogScratch with the
// exponentiation, total and inversion fused into two passes instead of
// four. The max scan, the per-index exp(x−m) values, the summation
// order of the total and the cumulative inversion are all unchanged,
// so the draw is bit-identical to CategoricalLogScratch (and therefore
// CategoricalLog) — it only skips the redundant re-walks and the
// validation branches, which the exponential makes impossible to
// trigger. Panics if every weight is −Inf. logw and scratch may not
// alias.
func (r *RNG) CategoricalLogFused(logw, scratch []float64) int {
	m := math.Inf(-1)
	for _, x := range logw {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		panic("stats: CategoricalLog all weights -Inf")
	}
	w := scratch[:len(logw)]
	total := 0.0
	for i, x := range logw {
		e := math.Exp(x - m)
		w[i] = e
		total += e
	}
	u := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if u < acc {
			return i
		}
	}
	return len(w) - 1
}

// CategoricalLogScratch is CategoricalLog with a caller-provided
// scratch buffer (length ≥ len(logw)) for the exponentiated weights,
// eliminating the per-draw allocation on sampler hot loops. The draw is
// bit-identical to CategoricalLog. logw and scratch may not alias.
func (r *RNG) CategoricalLogScratch(logw, scratch []float64) int {
	m := math.Inf(-1)
	for _, x := range logw {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		panic("stats: CategoricalLog all weights -Inf")
	}
	w := scratch[:len(logw)]
	for i, x := range logw {
		w[i] = math.Exp(x - m)
	}
	return r.Categorical(w)
}

// MVNormalChol samples from N(mu, Σ) where chol is the Cholesky factor
// of the covariance Σ = L·Lᵀ.
func (r *RNG) MVNormalChol(mu []float64, chol *Cholesky) []float64 {
	n := len(mu)
	z := make([]float64, n)
	for i := range z {
		z[i] = r.StdNormal()
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := mu[i]
		for k := 0; k <= i; k++ {
			s += chol.L.At(i, k) * z[k]
		}
		out[i] = s
	}
	return out
}

// MVNormalCholInto is MVNormalChol writing the sample into out using z
// (length ≥ dim) as the standard-normal scratch. The normals are drawn
// in the same order and the lower-triangular accumulation keeps its
// left-associative sum, so the draw is bit-identical to MVNormalChol
// from the same generator state.
func (r *RNG) MVNormalCholInto(out, mu []float64, chol *Cholesky, z []float64) {
	n := len(mu)
	if len(out) < n || len(z) < n {
		panic("stats: dim mismatch in MVNormalCholInto")
	}
	z = z[:n]
	for i := range z {
		z[i] = r.StdNormal()
	}
	for i := 0; i < n; i++ {
		s := mu[i]
		for k := 0; k <= i; k++ {
			s += chol.L.At(i, k) * z[k]
		}
		out[i] = s
	}
}

// MVNormal samples from N(mu, cov); cov must be positive definite.
func (r *RNG) MVNormal(mu []float64, cov *Mat) []float64 {
	return r.MVNormalChol(mu, MustCholesky(RegularizeSPD(cov, 1e-12)))
}

// Wishart samples from W(df, scale) via the Bartlett decomposition.
// df must exceed dim−1; scale must be positive definite. The returned
// matrix has expectation df·scale.
func (r *RNG) Wishart(df float64, scale *Mat) *Mat {
	scale.assertSquare()
	n := scale.R
	if df <= float64(n-1) {
		panic("stats: Wishart needs df > dim-1")
	}
	lc := MustCholesky(RegularizeSPD(scale, 1e-12))
	// Bartlett factor A: lower triangular, A_ii ~ sqrt(χ²(df-i)),
	// A_ij ~ N(0,1) for i > j.
	a := NewMat(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, math.Sqrt(r.ChiSquared(df-float64(i))))
		for j := 0; j < i; j++ {
			a.Set(i, j, r.StdNormal())
		}
	}
	la := lc.L.Mul(a)
	w := la.Mul(la.T())
	w.Symmetrize()
	return w
}
