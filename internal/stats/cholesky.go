package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrNumericalHealth is the umbrella sentinel for numerical-health
// violations: states a correct algorithm only reaches when the chain
// has already diverged (non-positive-definite posteriors, jitter
// regularization that cannot converge). Every such failure — returned
// or panicked — wraps this sentinel, so a fit supervisor can
// distinguish "the numbers went bad, roll back and retry" from
// ordinary I/O or configuration errors with one errors.Is check.
var ErrNumericalHealth = errors.New("stats: numerical health violated")

// ErrNotPositiveDefinite is returned when a Cholesky factorization
// fails. It wraps ErrNumericalHealth.
var ErrNotPositiveDefinite error = sentinelError{
	msg:   "stats: matrix is not positive definite",
	cause: ErrNumericalHealth,
}

// sentinelError is a named sentinel that also wraps a broader one, so
// both errors.Is(err, ErrNotPositiveDefinite) and
// errors.Is(err, ErrNumericalHealth) hold for the same failure.
type sentinelError struct {
	msg   string
	cause error
}

func (e sentinelError) Error() string { return e.msg }
func (e sentinelError) Unwrap() error { return e.cause }

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L·Lᵀ.
type Cholesky struct {
	L *Mat
}

// NewCholesky factorizes the symmetric positive definite matrix a.
func NewCholesky(a *Mat) (*Cholesky, error) {
	a.assertSquare()
	n := a.R
	l := NewMat(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		root := math.Sqrt(d)
		l.Set(j, j, root)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/root)
		}
	}
	return &Cholesky{L: l}, nil
}

// MustCholesky is NewCholesky that panics on failure; for use where the
// caller guarantees positive definiteness (e.g. freshly regularized priors).
func MustCholesky(a *Mat) *Cholesky {
	c, err := NewCholesky(a)
	if err != nil {
		panic(err)
	}
	return c
}

// SolveVec solves A·x = b and returns x.
func (c *Cholesky) SolveVec(b []float64) []float64 {
	n := c.L.R
	if len(b) != n {
		panic("stats: dim mismatch in SolveVec")
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// Inverse returns A⁻¹.
func (c *Cholesky) Inverse() *Mat {
	n := c.L.R
	inv := NewMat(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := c.SolveVec(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	inv.Symmetrize()
	return inv
}

// InverseInto writes A⁻¹ into inv without allocating, using e, y and x
// (each length ≥ dim) as substitution scratch. It solves the same unit
// columns in the same order as Inverse, so inv is bit-identical to the
// allocating result.
func (c *Cholesky) InverseInto(inv *Mat, e, y, x []float64) {
	n := c.L.R
	if inv.R != n || inv.C != n || len(e) < n || len(y) < n || len(x) < n {
		panic("stats: dim mismatch in InverseInto")
	}
	e, y, x = e[:n], y[:n], x[:n]
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		// SolveVec's two substitutions, inlined over the scratch.
		for i := 0; i < n; i++ {
			s := e[i]
			for k := 0; k < i; k++ {
				s -= c.L.At(i, k) * y[k]
			}
			y[i] = s / c.L.At(i, i)
		}
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= c.L.At(k, i) * x[k]
			}
			x[i] = s / c.L.At(i, i)
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	inv.Symmetrize()
}

// LogDet returns log|A| = 2·Σ log L_ii.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.R; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// HalfQuadratic returns the quadratic form xᵀ·A⁻¹·x computed via the
// factor: ‖L⁻¹x‖². Used in Gaussian log-densities.
func (c *Cholesky) HalfQuadratic(x []float64) float64 {
	n := c.L.R
	if len(x) != n {
		panic("stats: dim mismatch in HalfQuadratic")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	return Dot(y, y)
}

// CholeskyInto factorizes the symmetric positive definite matrix a into
// the preallocated lower-triangular dst (upper triangle is zeroed), the
// allocation-free counterpart of NewCholesky for hot paths that reuse a
// factor buffer. Only the lower triangle of a is read, so a need not be
// exactly symmetric.
func CholeskyInto(dst, a *Mat) error {
	a.assertSquare()
	if dst.R != a.R || dst.C != a.C {
		panic("stats: dim mismatch in CholeskyInto")
	}
	n := a.R
	l := dst
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		root := math.Sqrt(d)
		l.Set(j, j, root)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/root)
		}
		for i := 0; i < j; i++ {
			l.Set(i, j, 0)
		}
	}
	return nil
}

// Rank1Update rewrites the lower-triangular factor l of A in place into
// the factor of A + x·xᵀ using Givens rotations — O(d²) instead of the
// O(d³) refactorization. work is caller-provided scratch of length d
// (clobbered); x itself is not mutated.
func Rank1Update(l *Mat, x, work []float64) {
	l.assertSquare()
	n := l.R
	if len(x) != n || len(work) < n {
		panic("stats: dim mismatch in Rank1Update")
	}
	w := work[:n]
	copy(w, x)
	for k := 0; k < n; k++ {
		lkk := l.At(k, k)
		r := math.Hypot(lkk, w[k])
		c := r / lkk
		s := w[k] / lkk
		l.Set(k, k, r)
		for i := k + 1; i < n; i++ {
			v := (l.At(i, k) + s*w[i]) / c
			l.Set(i, k, v)
			w[i] = c*w[i] - s*v
		}
	}
}

// Rank1Downdate rewrites the lower-triangular factor l of A in place
// into the factor of A − x·xᵀ via hyperbolic rotations, or returns
// ErrNotPositiveDefinite (leaving l partially modified) when the
// downdated matrix is not positive definite. work is caller-provided
// scratch of length d (clobbered); x itself is not mutated.
func Rank1Downdate(l *Mat, x, work []float64) error {
	l.assertSquare()
	n := l.R
	if len(x) != n || len(work) < n {
		panic("stats: dim mismatch in Rank1Downdate")
	}
	w := work[:n]
	copy(w, x)
	for k := 0; k < n; k++ {
		lkk := l.At(k, k)
		d := (lkk - w[k]) * (lkk + w[k])
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (downdate pivot %d = %g)", ErrNotPositiveDefinite, k, d)
		}
		r := math.Sqrt(d)
		c := r / lkk
		s := w[k] / lkk
		l.Set(k, k, r)
		for i := k + 1; i < n; i++ {
			v := (l.At(i, k) - s*w[i]) / c
			l.Set(i, k, v)
			w[i] = c*w[i] - s*v
		}
	}
	return nil
}

// Inverse returns the inverse of a symmetric positive definite matrix,
// or an error if it is not positive definite.
func Inverse(a *Mat) (*Mat, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return c.Inverse(), nil
}

// LogDetSPD returns log determinant of a symmetric positive definite matrix.
func LogDetSPD(a *Mat) (float64, error) {
	c, err := NewCholesky(a)
	if err != nil {
		return 0, err
	}
	return c.LogDet(), nil
}

// RegularizeSPD adds jitter·I until the matrix factorizes, doubling the
// jitter each attempt. It mutates and returns a copy, never the input.
// This guards the sampler against near-singular scatter matrices that
// arise when a topic holds very few, near-identical observations.
func RegularizeSPD(a *Mat, jitter float64) *Mat {
	out := a.Clone()
	out.Symmetrize()
	for attempt := 0; attempt < 60; attempt++ {
		if _, err := NewCholesky(out); err == nil {
			return out
		}
		for i := 0; i < out.R; i++ {
			out.Set(i, i, out.At(i, i)+jitter)
		}
		jitter *= 2
	}
	// Panic with an error value wrapping ErrNumericalHealth: a matrix
	// that stays indefinite through 60 jitter doublings means the chain
	// state is garbage, and a supervisor recovering the panic needs the
	// sentinel to classify it as a health event rather than a crash.
	panic(fmt.Errorf("stats: RegularizeSPD failed to produce a positive definite matrix after 60 jitter doublings: %w", ErrNumericalHealth))
}

// RegularizeSPDInto is RegularizeSPD writing the regularized matrix
// into dst and its Cholesky factor into chol (both preallocated, dim
// matching a). The copy, symmetrization and jitter schedule are those
// of RegularizeSPD, and the factorization attempt per jitter step runs
// the identical pivot recurrence, so dst is bit-identical to the
// allocating result — with the factor of the accepted matrix kept
// instead of thrown away, saving the caller a refactorization.
func RegularizeSPDInto(dst, a *Mat, jitter float64, chol *Cholesky) {
	if dst.R != a.R || dst.C != a.C {
		panic("stats: bad destination shape in RegularizeSPDInto")
	}
	copy(dst.Data, a.Data)
	dst.Symmetrize()
	for attempt := 0; attempt < 60; attempt++ {
		if err := CholeskyInto(chol.L, dst); err == nil {
			return
		}
		for i := 0; i < dst.R; i++ {
			dst.Set(i, i, dst.At(i, i)+jitter)
		}
		jitter *= 2
	}
	panic(fmt.Errorf("stats: RegularizeSPD failed to produce a positive definite matrix after 60 jitter doublings: %w", ErrNumericalHealth))
}
