package stats

import (
	"fmt"
	"math"
)

// NWAccum maintains the sufficient statistics of a set of observations
// under a Normal-Wishart prior — count, sum vector and sum of outer
// products — supporting O(d²) add/remove and cached posterior
// predictive evaluation. Collapsed Gibbs samplers use it to avoid
// recomputing the posterior from the full member list at every step.
//
// The posterior predictive Student-t is kept in factored form: the
// Cholesky factor of S'⁻¹ assembled directly from the statistics via
// one factorization plus a rank-one downdate, so PredictiveLogPdf never
// inverts a matrix and performs no allocation in steady state.
type NWAccum struct {
	prior *NormalWishart
	n     float64
	sum   []float64
	outer *Mat

	// base = S₀⁻¹ + β₀·μ₀μ₀ᵀ, a constant of the prior. With it the
	// posterior precision-scale obeys the rank-one identity
	//
	//	S'⁻¹ = base + Σxxᵀ − β'·μ'μ'ᵀ,
	//
	// which is what makes the factor cheap to rebuild from (n, sum,
	// outer) alone.
	base        *Mat
	priorLogZ   float64
	priorLogDet float64 // log|S₀|

	// The factored predictive, rebuilt lazily after a mutation. The
	// rebuild is deliberately a pure function of (prior, n, sum, outer)
	// — NOT maintained incrementally across Add/Remove — so a sampler
	// resumed from a snapshot of those statistics reconstructs the
	// exact bits an uninterrupted run would hold. An incrementally
	// updated factor would accumulate its own floating-point history
	// and break byte-identical crash/resume.
	predOK       bool
	predDof      float64
	predC        float64 // predictive scale = predC · (S'⁻¹)⁻¹
	predLogConst float64 // x-independent part of the Student-t log-pdf
	predLogDetM  float64 // log|S'⁻¹|
	predMean     []float64
	predL        *Mat // lower Cholesky factor of S'⁻¹

	m    *Mat // scratch: assembles base + Σxxᵀ
	diff []float64
	work []float64
}

// NewNWAccum returns an empty accumulator over the prior.
func NewNWAccum(prior *NormalWishart) *NWAccum {
	d := prior.Dim()
	base := prior.priorSInv().Clone()
	base.AddOuterScaled(prior.Beta, prior.Mu0, prior.Mu0)
	return &NWAccum{
		prior:     prior,
		sum:       make([]float64, d),
		outer:     NewMat(d, d),
		base:      base,
		priorLogZ: prior.logZ(),
		predMean:  make([]float64, d),
		predL:     NewMat(d, d),
		m:         NewMat(d, d),
		diff:      make([]float64, d),
		work:      make([]float64, d),
	}
}

// N returns the number of accumulated observations.
func (a *NWAccum) N() int { return int(a.n + 0.5) }

// Add incorporates x.
func (a *NWAccum) Add(x []float64) {
	a.n++
	for i, v := range x {
		a.sum[i] += v
	}
	a.outer.AddOuterScaled(1, x, x)
	a.predOK = false
}

// Remove deletes a previously added x.
func (a *NWAccum) Remove(x []float64) {
	if a.n < 1 {
		panic("stats: NWAccum.Remove on empty accumulator")
	}
	a.n--
	for i, v := range x {
		a.sum[i] -= v
	}
	a.outer.AddOuterScaled(-1, x, x)
	a.predOK = false
}

// Posterior computes the Normal-Wishart posterior from the
// accumulated statistics. With sample mean x̄ = sum/n and scatter
// Σxxᵀ − n·x̄x̄ᵀ the update matches NormalWishart.Posterior.
func (a *NWAccum) Posterior() *NormalWishart {
	d := a.prior.Dim()
	if a.n == 0 {
		return &NormalWishart{Mu0: CloneVec(a.prior.Mu0), Beta: a.prior.Beta, Nu: a.prior.Nu, S: a.prior.S.Clone()}
	}
	mean := make([]float64, d)
	for i := range mean {
		mean[i] = a.sum[i] / a.n
	}
	scatter := a.outer.Clone()
	scatter.AddOuterScaled(-a.n, mean, mean)
	scatter.Symmetrize()
	// Rank-one cancellation can leave slightly negative diagonals.
	for i := 0; i < d; i++ {
		if scatter.At(i, i) < 0 {
			scatter.Set(i, i, 0)
		}
	}

	betaC := a.prior.Beta + a.n
	nuC := a.prior.Nu + a.n
	muC := make([]float64, d)
	for i := range muC {
		muC[i] = (a.prior.Beta*a.prior.Mu0[i] + a.n*mean[i]) / betaC
	}
	sInv := a.prior.priorSInv().Clone()
	diff := SubVec(mean, a.prior.Mu0)
	sInv.AddInPlace(scatter)
	sInv.AddOuterScaled(a.prior.Beta*a.n/betaC, diff, diff)
	sC, err := Inverse(RegularizeSPD(sInv, 1e-12))
	if err != nil {
		panic(err)
	}
	return &NormalWishart{Mu0: muC, Beta: betaC, Nu: nuC, S: sC}
}

// State exports the raw sufficient statistics (count, sum vector, sum
// of outer products) as copies, so a checkpoint can persist the exact
// floating-point state rather than re-deriving it from the member list
// in a different summation order.
func (a *NWAccum) State() (n float64, sum []float64, outer *Mat) {
	return a.n, CloneVec(a.sum), a.outer.Clone()
}

// SetState overwrites the accumulated statistics with previously
// exported ones. The prior is unchanged; dimensions must match it.
func (a *NWAccum) SetState(n float64, sum []float64, outer *Mat) error {
	d := a.prior.Dim()
	if n < 0 {
		return fmt.Errorf("stats: NWAccum state has negative count %g", n)
	}
	if len(sum) != d || outer == nil || outer.R != d || outer.C != d {
		return fmt.Errorf("stats: NWAccum state dims mismatch prior dim %d", d)
	}
	a.n = n
	a.sum = CloneVec(sum)
	a.outer = outer.Clone()
	a.predOK = false
	return nil
}

// SamePrior reports whether two priors describe the same distribution
// field-for-field. Merging accumulators is only meaningful over one
// prior: the base matrix, normalizers and posterior updates all depend
// on it.
func (nw *NormalWishart) samePriorAs(o *NormalWishart) bool {
	if nw == o {
		return true
	}
	if nw == nil || o == nil {
		return false
	}
	if nw.Beta != o.Beta || nw.Nu != o.Nu || len(nw.Mu0) != len(o.Mu0) {
		return false
	}
	for i, v := range nw.Mu0 {
		if o.Mu0[i] != v {
			return false
		}
	}
	if nw.S.R != o.S.R || nw.S.C != o.S.C {
		return false
	}
	for i, v := range nw.S.Data {
		if o.S.Data[i] != v {
			return false
		}
	}
	return true
}

// MergeWith folds b's accumulated observations into a. The sufficient
// statistics (count, sum, Σxxᵀ) are all plain sums over the members,
// so a post-merge accumulator is exactly the one that would result
// from adding a's members first and b's second — the primitive a
// sharded fit uses to combine per-shard rheology statistics. Both
// accumulators must share the same prior (field-for-field); b is left
// untouched.
func (a *NWAccum) MergeWith(b *NWAccum) error {
	if b == nil {
		return fmt.Errorf("stats: NWAccum.MergeWith(nil)")
	}
	if !a.prior.samePriorAs(b.prior) {
		return fmt.Errorf("stats: NWAccum.MergeWith: priors differ")
	}
	a.n += b.n
	for i, v := range b.sum {
		a.sum[i] += v
	}
	a.outer.AddInPlace(b.outer)
	a.predOK = false
	return nil
}

// ensurePred rebuilds the factored posterior predictive from the
// sufficient statistics: one Cholesky of base + Σxxᵀ followed by a
// rank-one downdate with √β'·μ' yields chol(S'⁻¹) with no matrix
// inverse at all. Falls back to an explicitly regularized
// factorization in the (rare) event the downdate loses positive
// definiteness to cancellation.
func (a *NWAccum) ensurePred() {
	if a.predOK {
		return
	}
	d := a.prior.Dim()
	fd := float64(d)
	betaC := a.prior.Beta + a.n
	nuC := a.prior.Nu + a.n
	dof := nuC - fd + 1 // > 0: prior validated ν > d−1
	for i := 0; i < d; i++ {
		a.predMean[i] = (a.prior.Beta*a.prior.Mu0[i] + a.sum[i]) / betaC
	}
	copy(a.m.Data, a.base.Data)
	a.m.AddInPlace(a.outer)
	err := CholeskyInto(a.predL, a.m)
	if err == nil {
		sb := math.Sqrt(betaC)
		for i := 0; i < d; i++ {
			a.diff[i] = sb * a.predMean[i]
		}
		err = Rank1Downdate(a.predL, a.diff, a.work)
	}
	if err != nil {
		a.m.AddOuterScaled(-betaC, a.predMean, a.predMean)
		c, cerr := NewCholesky(RegularizeSPD(a.m, 1e-12))
		if cerr != nil {
			// Panic with the error value so it keeps wrapping
			// ErrNotPositiveDefinite → ErrNumericalHealth; a supervised fit
			// recovers this into a typed degenerate-covariance health event.
			panic(fmt.Errorf("stats: NWAccum predictive scale not positive definite: %w", cerr))
		}
		copy(a.predL.Data, c.L.Data)
	}
	logDetM := 0.0
	for i := 0; i < d; i++ {
		logDetM += math.Log(a.predL.At(i, i))
	}
	logDetM *= 2
	a.predDof = dof
	a.predC = (betaC + 1) / (betaC * dof)
	a.predLogDetM = logDetM
	// The Student-t scale is predC·S'⁻¹, so log|Scale| = d·log(predC) + log|S'⁻¹|.
	logDetScale := fd*math.Log(a.predC) + logDetM
	a.predLogConst = LGamma((dof+fd)/2) - LGamma(dof/2) -
		0.5*(fd*math.Log(dof*math.Pi)+logDetScale)
	a.predOK = true
}

// LogMarginalLikelihood returns log p(accumulated data) with all
// parameters integrated out, matching
// NormalWishart.LogMarginalLikelihood. Evaluated from the factored
// predictive (log|S'| = −log|S'⁻¹|), so it allocates nothing in steady
// state.
func (a *NWAccum) LogMarginalLikelihood() float64 {
	a.ensurePred()
	d := a.prior.Dim()
	fd := float64(d)
	betaC := a.prior.Beta + a.n
	nuC := a.prior.Nu + a.n
	postLogZ := nuC*fd/2*math.Ln2 + MvLGamma(d, nuC/2) +
		nuC/2*(-a.predLogDetM) - fd/2*math.Log(betaC)
	return postLogZ - a.priorLogZ - a.n*fd/2*log2Pi
}

// PredictiveLogPdf evaluates the posterior predictive density at x —
// a Student-t with dof ν'−d+1, mean μ' and scale predC·S'⁻¹ — through
// the factor S'⁻¹ = L·Lᵀ: the quadratic form (x−μ')ᵀScale⁻¹(x−μ') is
// ‖L⁻¹(x−μ')‖²/predC, one forward substitution. Allocation-free; the
// factor is cached between mutations.
func (a *NWAccum) PredictiveLogPdf(x []float64) float64 {
	a.ensurePred()
	d := a.prior.Dim()
	if len(x) != d {
		panic("stats: dim mismatch in NWAccum.PredictiveLogPdf")
	}
	for i := 0; i < d; i++ {
		a.diff[i] = x[i] - a.predMean[i]
	}
	// Forward substitution L·y = diff, accumulating q = ‖y‖².
	y := a.work
	q := 0.0
	for i := 0; i < d; i++ {
		s := a.diff[i]
		for k := 0; k < i; k++ {
			s -= a.predL.At(i, k) * y[k]
		}
		y[i] = s / a.predL.At(i, i)
		q += y[i] * y[i]
	}
	q /= a.predC
	fd := float64(d)
	return a.predLogConst - (a.predDof+fd)/2*math.Log1p(q/a.predDof)
}
