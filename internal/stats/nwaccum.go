package stats

import "fmt"

// NWAccum maintains the sufficient statistics of a set of observations
// under a Normal-Wishart prior — count, sum vector and sum of outer
// products — supporting O(d²) add/remove and cached posterior
// predictive evaluation. Collapsed Gibbs samplers use it to avoid
// recomputing the posterior from the full member list at every step.
type NWAccum struct {
	prior *NormalWishart
	n     float64
	sum   []float64
	outer *Mat

	cached *StudentT // posterior predictive; nil when stale
}

// NewNWAccum returns an empty accumulator over the prior.
func NewNWAccum(prior *NormalWishart) *NWAccum {
	d := prior.Dim()
	return &NWAccum{prior: prior, sum: make([]float64, d), outer: NewMat(d, d)}
}

// N returns the number of accumulated observations.
func (a *NWAccum) N() int { return int(a.n + 0.5) }

// Add incorporates x.
func (a *NWAccum) Add(x []float64) {
	a.n++
	for i, v := range x {
		a.sum[i] += v
	}
	a.outer.AddOuterScaled(1, x, x)
	a.cached = nil
}

// Remove deletes a previously added x.
func (a *NWAccum) Remove(x []float64) {
	if a.n < 1 {
		panic("stats: NWAccum.Remove on empty accumulator")
	}
	a.n--
	for i, v := range x {
		a.sum[i] -= v
	}
	a.outer.AddOuterScaled(-1, x, x)
	a.cached = nil
}

// Posterior computes the Normal-Wishart posterior from the
// accumulated statistics. With sample mean x̄ = sum/n and scatter
// Σxxᵀ − n·x̄x̄ᵀ the update matches NormalWishart.Posterior.
func (a *NWAccum) Posterior() *NormalWishart {
	d := a.prior.Dim()
	if a.n == 0 {
		return &NormalWishart{Mu0: CloneVec(a.prior.Mu0), Beta: a.prior.Beta, Nu: a.prior.Nu, S: a.prior.S.Clone()}
	}
	mean := make([]float64, d)
	for i := range mean {
		mean[i] = a.sum[i] / a.n
	}
	scatter := a.outer.Clone()
	scatter.AddOuterScaled(-a.n, mean, mean)
	scatter.Symmetrize()
	// Rank-one cancellation can leave slightly negative diagonals.
	for i := 0; i < d; i++ {
		if scatter.At(i, i) < 0 {
			scatter.Set(i, i, 0)
		}
	}

	betaC := a.prior.Beta + a.n
	nuC := a.prior.Nu + a.n
	muC := make([]float64, d)
	for i := range muC {
		muC[i] = (a.prior.Beta*a.prior.Mu0[i] + a.n*mean[i]) / betaC
	}
	sInv, err := Inverse(RegularizeSPD(a.prior.S, 1e-12))
	if err != nil {
		panic(err) // prior validated at construction
	}
	diff := SubVec(mean, a.prior.Mu0)
	sInv.AddInPlace(scatter)
	sInv.AddOuterScaled(a.prior.Beta*a.n/betaC, diff, diff)
	sC, err := Inverse(RegularizeSPD(sInv, 1e-12))
	if err != nil {
		panic(err)
	}
	return &NormalWishart{Mu0: muC, Beta: betaC, Nu: nuC, S: sC}
}

// State exports the raw sufficient statistics (count, sum vector, sum
// of outer products) as copies, so a checkpoint can persist the exact
// floating-point state rather than re-deriving it from the member list
// in a different summation order.
func (a *NWAccum) State() (n float64, sum []float64, outer *Mat) {
	return a.n, CloneVec(a.sum), a.outer.Clone()
}

// SetState overwrites the accumulated statistics with previously
// exported ones. The prior is unchanged; dimensions must match it.
func (a *NWAccum) SetState(n float64, sum []float64, outer *Mat) error {
	d := a.prior.Dim()
	if n < 0 {
		return fmt.Errorf("stats: NWAccum state has negative count %g", n)
	}
	if len(sum) != d || outer == nil || outer.R != d || outer.C != d {
		return fmt.Errorf("stats: NWAccum state dims mismatch prior dim %d", d)
	}
	a.n = n
	a.sum = CloneVec(sum)
	a.outer = outer.Clone()
	a.cached = nil
	return nil
}

// LogMarginalLikelihood returns log p(accumulated data) with all
// parameters integrated out, matching
// NormalWishart.LogMarginalLikelihood.
func (a *NWAccum) LogMarginalLikelihood() float64 {
	return a.Posterior().logZ() - a.prior.logZ() - a.n*float64(a.prior.Dim())/2*log2Pi
}

// PredictiveLogPdf evaluates the posterior predictive density at x,
// caching the Student-t between mutations.
func (a *NWAccum) PredictiveLogPdf(x []float64) float64 {
	if a.cached == nil {
		st, err := a.Posterior().PredictiveT()
		if err != nil {
			st, err = a.prior.PredictiveT()
			if err != nil {
				panic("stats: prior predictive undefined: " + err.Error())
			}
		}
		a.cached = st
	}
	return a.cached.LogPdf(x)
}
