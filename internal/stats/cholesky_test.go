package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	a := MatFromRows([][]float64{{4, 2}, {2, 3}})
	c, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt(2)]]
	if math.Abs(c.L.At(0, 0)-2) > 1e-12 ||
		math.Abs(c.L.At(1, 0)-1) > 1e-12 ||
		math.Abs(c.L.At(1, 1)-math.Sqrt2) > 1e-12 {
		t.Errorf("L = %v", c.L)
	}
	if got, want := c.LogDet(), math.Log(8); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDet = %g, want %g", got, want)
	}
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	r := NewRNG(11, 1)
	f := func(seed uint8) bool {
		_ = seed
		a := randomSPD(r, 4)
		c, err := NewCholesky(a)
		if err != nil {
			return false
		}
		recon := c.L.Mul(c.L.T())
		return recon.MaxAbsDiff(a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	r := NewRNG(12, 1)
	f := func(seed uint8) bool {
		_ = seed
		a := randomSPD(r, 3)
		b := randomVec(r, 3)
		c := MustCholesky(a)
		x := c.SolveVec(b)
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyInverse(t *testing.T) {
	r := NewRNG(13, 1)
	a := randomSPD(r, 3)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	if prod.MaxAbsDiff(Identity(3)) > 1e-9 {
		t.Errorf("A·A⁻¹ = %v", prod)
	}
}

func TestCholeskyHalfQuadratic(t *testing.T) {
	r := NewRNG(14, 1)
	a := randomSPD(r, 3)
	x := randomVec(r, 3)
	c := MustCholesky(a)
	got := c.HalfQuadratic(x)
	want := Dot(x, c.Inverse().MulVec(x))
	if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
		t.Errorf("HalfQuadratic = %g, want %g", got, want)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	_, err := NewCholesky(a)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestRegularizeSPD(t *testing.T) {
	a := MatFromRows([][]float64{{1, 1}, {1, 1}}) // singular
	fixed := RegularizeSPD(a, 1e-8)
	if _, err := NewCholesky(fixed); err != nil {
		t.Errorf("RegularizeSPD output not PD: %v", err)
	}
	// Input must be untouched.
	if a.At(0, 0) != 1 {
		t.Error("RegularizeSPD mutated its input")
	}
}

func TestLogDetSPD(t *testing.T) {
	got, err := LogDetSPD(Diag([]float64{2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Log(24); math.Abs(got-want) > 1e-12 {
		t.Errorf("LogDetSPD = %g, want %g", got, want)
	}
}
