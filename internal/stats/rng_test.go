package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 0)
	b := NewRNG(42, 0)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43, 0)
	same := true
	a = NewRNG(42, 0)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical streams")
	}
}

func TestGammaMoments(t *testing.T) {
	r := NewRNG(1, 1)
	const n = 40000
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2.0}, {1.0, 1.0}, {3.5, 0.5}, {10, 2},
	} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Gamma(tc.shape, tc.scale)
		}
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if m := Mean(xs); math.Abs(m-wantMean) > 0.05*wantMean+0.02 {
			t.Errorf("Gamma(%g,%g) mean = %g, want ≈ %g", tc.shape, tc.scale, m, wantMean)
		}
		if v := Variance(xs); math.Abs(v-wantVar) > 0.1*wantVar+0.05 {
			t.Errorf("Gamma(%g,%g) var = %g, want ≈ %g", tc.shape, tc.scale, v, wantVar)
		}
	}
}

func TestChiSquaredMean(t *testing.T) {
	r := NewRNG(2, 1)
	const n, df = 20000, 7.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.ChiSquared(df)
	}
	if m := Mean(xs); math.Abs(m-df) > 0.15 {
		t.Errorf("χ²(%g) mean = %g", df, m)
	}
}

func TestBetaMoments(t *testing.T) {
	r := NewRNG(3, 1)
	const n = 20000
	a, b := 2.0, 5.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Beta(a, b)
	}
	want := a / (a + b)
	if m := Mean(xs); math.Abs(m-want) > 0.01 {
		t.Errorf("Beta(2,5) mean = %g, want %g", m, want)
	}
}

func TestDirichletProperties(t *testing.T) {
	r := NewRNG(4, 1)
	alpha := []float64{1, 2, 3}
	sums := make([]float64, 3)
	const n = 10000
	for i := 0; i < n; i++ {
		d := r.Dirichlet(alpha)
		s := SumVec(d)
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("Dirichlet sample sums to %g", s)
		}
		for j, v := range d {
			if v < 0 {
				t.Fatal("Dirichlet component negative")
			}
			sums[j] += v
		}
	}
	for j, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		if got := sums[j] / n; math.Abs(got-want) > 0.01 {
			t.Errorf("Dirichlet mean[%d] = %g, want %g", j, got, want)
		}
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := NewRNG(5, 1)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.012 {
			t.Errorf("Categorical freq[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestCategoricalLogAgreesWithLinear(t *testing.T) {
	r1 := NewRNG(6, 1)
	r2 := NewRNG(6, 1)
	w := []float64{0.5, 1.5, 3.0}
	logw := make([]float64, len(w))
	for i, x := range w {
		logw[i] = math.Log(x) - 500 // extreme offset must not matter
	}
	for i := 0; i < 1000; i++ {
		if r1.Categorical(w) != r2.CategoricalLog(logw) {
			t.Fatal("CategoricalLog diverges from Categorical under shared stream")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := NewRNG(7, 1)
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {math.NaN(), 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) should panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestMVNormalMoments(t *testing.T) {
	r := NewRNG(8, 1)
	mu := []float64{1, -2}
	cov := MatFromRows([][]float64{{2, 0.5}, {0.5, 1}})
	const n = 30000
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = r.MVNormal(mu, cov)
	}
	m := MeanVec(xs)
	for i := range mu {
		if math.Abs(m[i]-mu[i]) > 0.05 {
			t.Errorf("MVNormal mean[%d] = %g, want %g", i, m[i], mu[i])
		}
	}
	c := CovMat(xs)
	if c.MaxAbsDiff(cov) > 0.08 {
		t.Errorf("MVNormal cov = %v, want %v", c, cov)
	}
}

func TestWishartMean(t *testing.T) {
	r := NewRNG(9, 1)
	scale := MatFromRows([][]float64{{0.5, 0.1}, {0.1, 0.3}})
	df := 6.0
	const n = 8000
	acc := NewMat(2, 2)
	for i := 0; i < n; i++ {
		acc.AddInPlace(r.Wishart(df, scale))
	}
	mean := acc.Scale(1.0 / n)
	want := scale.Scale(df)
	if mean.MaxAbsDiff(want) > 0.12 {
		t.Errorf("Wishart mean = %v, want %v", mean, want)
	}
}

func TestWishartSamplesArePD(t *testing.T) {
	r := NewRNG(10, 1)
	scale := Identity(3).Scale(0.2)
	for i := 0; i < 200; i++ {
		w := r.Wishart(5, scale)
		if _, err := NewCholesky(w); err != nil {
			t.Fatalf("Wishart sample %d not PD: %v", i, err)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(15, 1)
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Exponential(4)
	}
	if m := Mean(xs); math.Abs(m-0.25) > 0.01 {
		t.Errorf("Exponential(4) mean = %g, want 0.25", m)
	}
}
