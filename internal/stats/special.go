package stats

import "math"

// LogSumExp returns log Σ exp(x_i) computed stably.
func LogSumExp(x []float64) float64 {
	m := math.Inf(-1)
	for _, v := range x {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// LGamma returns log Γ(x) for x > 0.
func LGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// MvLGamma returns the log multivariate gamma function log Γ_p(x),
// defined for x > (p−1)/2.
func MvLGamma(p int, x float64) float64 {
	out := float64(p*(p-1)) / 4 * math.Log(math.Pi)
	for j := 1; j <= p; j++ {
		out += LGamma(x + float64(1-j)/2)
	}
	return out
}

// Digamma returns ψ(x), the derivative of log Γ, for x > 0.
func Digamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	out := 0.0
	for x < 12 {
		out -= 1 / x
		x++
	}
	// Asymptotic expansion.
	inv := 1 / x
	inv2 := inv * inv
	out += math.Log(x) - 0.5*inv -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2/240)))
	return out
}

// LogBeta returns log B(a,b).
func LogBeta(a, b float64) float64 {
	return LGamma(a) + LGamma(b) - LGamma(a+b)
}

// Log1pExp returns log(1+exp(x)) stably.
func Log1pExp(x float64) float64 {
	if x > 35 {
		return x
	}
	if x < -35 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// Sigmoid returns 1/(1+exp(−x)).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
