package stats

import (
	"math"
	"testing"
)

func testDrawPrior(t *testing.T, d int) *NormalWishart {
	t.Helper()
	mu0 := make([]float64, d)
	s := NewMat(d, d)
	for i := 0; i < d; i++ {
		mu0[i] = 0.3 * float64(i+1)
		s.Set(i, i, 1.0+0.1*float64(i))
		for j := 0; j < i; j++ {
			s.Set(i, j, 0.05)
			s.Set(j, i, 0.05)
		}
	}
	nw, err := NewNormalWishart(mu0, 0.7, float64(d)+2.5, s)
	if err != nil {
		t.Fatalf("prior: %v", err)
	}
	return nw
}

// TestPosteriorSampleIntoBitIdentical pins the fused draw to the
// allocating chain it replaces: with identically seeded generators,
// PosteriorSampleInto must reproduce PosteriorWith(...).Sample(...)
// bit for bit — including on an empty observation set (prior draw) and
// across repeated reuse of one scratch.
func TestPosteriorSampleIntoBitIdentical(t *testing.T) {
	for _, d := range []int{3, 6} {
		nw := testDrawPrior(t, d)
		gen := NewRNG(11, 7)
		scr := nw.NewDrawScratch()
		post := nw.NewPosteriorScratch()
		for _, n := range []int{0, 1, 2, 17} {
			xs := make([][]float64, n)
			for i := range xs {
				x := make([]float64, d)
				for j := range x {
					x[j] = gen.Normal(float64(j), 1.5)
				}
				xs[i] = x
			}
			r1 := NewRNG(99, uint64(n))
			r2 := NewRNG(99, uint64(n))
			wantMu, wantLam := nw.PosteriorWith(xs, post).Sample(r1)
			nw.PosteriorSampleInto(r2, xs, scr)
			for i := range wantMu {
				if scr.Mu[i] != wantMu[i] {
					t.Fatalf("d=%d n=%d: mu[%d] = %v, want %v", d, n, i, scr.Mu[i], wantMu[i])
				}
			}
			for i, v := range wantLam.Data {
				if scr.Lambda.Data[i] != v {
					t.Fatalf("d=%d n=%d: lambda[%d] = %v, want %v", d, n, i, scr.Lambda.Data[i], v)
				}
			}
			if g1, g2 := r1.Float64(), r2.Float64(); g1 != g2 {
				t.Fatalf("d=%d n=%d: generators diverged (%v vs %v)", d, n, g1, g2)
			}
		}
	}
}

// TestSetParamsMatchesNewGaussian checks that refilling a Gaussian in
// place reproduces a freshly constructed one exactly, including the
// cached factorization used by LogPdf.
func TestSetParamsMatchesNewGaussian(t *testing.T) {
	gen := NewRNG(5, 5)
	var g Gaussian
	for trial := 0; trial < 4; trial++ {
		d := 3 + trial%2*3
		mean := make([]float64, d)
		prec := NewMat(d, d)
		for i := range mean {
			mean[i] = gen.Normal(0, 2)
			prec.Set(i, i, 2.0+gen.Float64())
		}
		want, err := NewGaussian(mean, prec)
		if err != nil {
			t.Fatalf("NewGaussian: %v", err)
		}
		if err := g.SetParams(mean, prec); err != nil {
			t.Fatalf("SetParams: %v", err)
		}
		x := make([]float64, d)
		for i := range x {
			x[i] = gen.Normal(0, 1)
		}
		if got, w := g.LogPdf(x), want.LogPdf(x); got != w {
			t.Fatalf("trial %d: LogPdf = %v, want %v", trial, got, w)
		}
	}
	bad := NewMat(3, 3) // all-zero: not positive definite
	if err := g.SetParams(make([]float64, 3), bad); err == nil {
		t.Fatal("SetParams accepted a singular precision")
	}
}

// TestScoreTopicsBitIdentical pins the fused per-topic weight build to
// the three-pass sequence it replaces, for the specialized 3×6 shape,
// the emulsion-free case, generic dimensions, and both unit and
// non-unit emulsion weights.
func TestScoreTopicsBitIdentical(t *testing.T) {
	gen := NewRNG(3, 1)
	build := func(k, d int) *GaussianBank {
		gs := make([]*Gaussian, k)
		for i := range gs {
			mean := make([]float64, d)
			prec := NewMat(d, d)
			for j := range mean {
				mean[j] = gen.Normal(0, 1)
				prec.Set(j, j, 1.5+gen.Float64())
			}
			for a := 0; a < d; a++ {
				for b := 0; b < a; b++ {
					v := 0.1 * gen.Normal(0, 1)
					prec.Set(a, b, v)
					prec.Set(b, a, v)
				}
			}
			prec = RegularizeSPD(prec, 1e-8)
			g, err := NewGaussian(mean, prec)
			if err != nil {
				t.Fatalf("component: %v", err)
			}
			gs[i] = g
		}
		bank := NewGaussianBank(k, d)
		if err := bank.SetFromGaussians(gs); err != nil {
			t.Fatalf("bank: %v", err)
		}
		return bank
	}
	const k = 7
	logTab := make([]float64, 30)
	for c := range logTab {
		logTab[c] = math.Log(float64(c) + 0.4)
	}
	ndk := []int{0, 3, 1, 29, 7, 2, 11}
	for _, dims := range [][2]int{{3, 6}, {4, 5}} {
		gel := build(k, dims[0])
		emu := build(k, dims[1])
		xg, xe := make([]float64, dims[0]), make([]float64, dims[1])
		for i := range xg {
			xg[i] = gen.Normal(0, 1)
		}
		for i := range xe {
			xe[i] = gen.Normal(0, 1)
		}
		gd, ed := make([]float64, dims[0]), make([]float64, dims[1])
		for _, w := range []float64{1, 0.35} {
			for _, withEmu := range []bool{true, false} {
				want := make([]float64, k)
				for i := range want {
					want[i] = logTab[ndk[i]]
				}
				gel.AddLogPdf(want, xg, 1, gd)
				eb := emu
				if !withEmu {
					eb = nil
				} else {
					emu.AddLogPdf(want, xe, w, ed)
				}
				got := make([]float64, k)
				ScoreTopics(got, logTab, ndk, gel, xg, gd, eb, xe, w, ed)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("dims=%v w=%v emu=%v: out[%d] = %v, want %v",
							dims, w, withEmu, i, got[i], want[i])
					}
				}
			}
		}
	}
}
