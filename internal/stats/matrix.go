// Package stats provides the numerical substrate for the texture topic
// model: small dense linear algebra, random number generation, and the
// probability distributions used by the Gibbs sampler (Dirichlet,
// categorical, multivariate normal, Wishart, Normal-Wishart, Student-t),
// together with the divergences used for topic linkage.
//
// All matrices are small (gel space is 3-dimensional, emulsion space is
// 6-dimensional), so the package favours clarity and allocation-free
// in-place variants over blocked algorithms.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	Data []float64 // len R*C, row-major
}

// NewMat returns an R×C zero matrix.
func NewMat(r, c int) *Mat {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("stats: invalid matrix dims %d×%d", r, c))
	}
	return &Mat{R: r, C: c, Data: make([]float64, r*c)}
}

// MatFromRows builds a matrix from row slices. All rows must have equal length.
func MatFromRows(rows [][]float64) *Mat {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("stats: MatFromRows needs at least one non-empty row")
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.C {
			panic(fmt.Sprintf("stats: ragged rows: row %d has %d cols, want %d", i, len(row), m.C))
		}
		copy(m.Data[i*m.C:(i+1)*m.C], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Mat {
	m := NewMat(len(d), len(d))
	for i, v := range d {
		m.Set(i, i, v)
	}
	return m
}

// ScaledIdentity returns s·I of size n.
func ScaledIdentity(n int, s float64) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, s)
	}
	return m
}

// At returns element (i,j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i,j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) []float64 {
	out := make([]float64, m.C)
	copy(out, m.Data[i*m.C:(i+1)*m.C])
	return out
}

// Add returns m + b.
func (m *Mat) Add(b *Mat) *Mat {
	m.assertSameShape(b)
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m − b.
func (m *Mat) Sub(b *Mat) *Mat {
	m.assertSameShape(b)
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// AddInPlace adds b into m.
func (m *Mat) AddInPlace(b *Mat) {
	m.assertSameShape(b)
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// Scale returns s·m.
func (m *Mat) Scale(s float64) *Mat {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// MulInto writes the matrix product a·b into dst, the allocation-free
// counterpart of Mul: the skip of zero left-operands and the k-middle
// accumulation order are identical, so dst is bit-for-bit what Mul
// would return. dst must not alias a or b.
func MulInto(dst, a, b *Mat) {
	if a.C != b.R {
		panic(fmt.Sprintf("stats: dim mismatch in MulInto: %d×%d · %d×%d", a.R, a.C, b.R, b.C))
	}
	if dst.R != a.R || dst.C != b.C {
		panic("stats: bad destination shape in MulInto")
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			v := a.At(i, k)
			if v == 0 {
				continue
			}
			for j := 0; j < b.C; j++ {
				dst.Data[i*dst.C+j] += v * b.At(k, j)
			}
		}
	}
}

// TransposeInto writes aᵀ into dst without allocating. dst must not
// alias a.
func TransposeInto(dst, a *Mat) {
	if dst.R != a.C || dst.C != a.R {
		panic("stats: bad destination shape in TransposeInto")
	}
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			dst.Set(j, i, a.At(i, j))
		}
	}
}

// Mul returns the matrix product m·b.
func (m *Mat) Mul(b *Mat) *Mat {
	if m.C != b.R {
		panic(fmt.Sprintf("stats: dim mismatch in Mul: %d×%d · %d×%d", m.R, m.C, b.R, b.C))
	}
	out := NewMat(m.R, b.C)
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.C; j++ {
				out.Data[i*out.C+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Mat) MulVec(v []float64) []float64 {
	if m.C != len(v) {
		panic(fmt.Sprintf("stats: dim mismatch in MulVec: %d×%d · %d", m.R, m.C, len(v)))
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		s := 0.0
		for j := 0; j < m.C; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// T returns the transpose.
func (m *Mat) T() *Mat {
	out := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Mat) Trace() float64 {
	m.assertSquare()
	t := 0.0
	for i := 0; i < m.R; i++ {
		t += m.At(i, i)
	}
	return t
}

// Symmetrize replaces m with (m+mᵀ)/2, damping drift from accumulated
// floating-point error in rank-one updates.
func (m *Mat) Symmetrize() {
	m.assertSquare()
	for i := 0; i < m.R; i++ {
		for j := i + 1; j < m.C; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbsDiff returns max |m−b| elementwise; used by tests.
func (m *Mat) MaxAbsDiff(b *Mat) float64 {
	m.assertSameShape(b)
	d := 0.0
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - b.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// String renders the matrix for debugging.
func (m *Mat) String() string {
	var sb strings.Builder
	for i := 0; i < m.R; i++ {
		sb.WriteString("[")
		for j := 0; j < m.C; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

func (m *Mat) assertSameShape(b *Mat) {
	if m.R != b.R || m.C != b.C {
		panic(fmt.Sprintf("stats: shape mismatch %d×%d vs %d×%d", m.R, m.C, b.R, b.C))
	}
}

func (m *Mat) assertSquare() {
	if m.R != m.C {
		panic(fmt.Sprintf("stats: want square matrix, got %d×%d", m.R, m.C))
	}
}

// Outer returns the outer product a·bᵀ.
func Outer(a, b []float64) *Mat {
	m := NewMat(len(a), len(b))
	for i, av := range a {
		for j, bv := range b {
			m.Set(i, j, av*bv)
		}
	}
	return m
}

// AddOuterScaled adds s·a·bᵀ into m in place.
func (m *Mat) AddOuterScaled(s float64, a, b []float64) {
	if m.R != len(a) || m.C != len(b) {
		panic("stats: dim mismatch in AddOuterScaled")
	}
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			m.Data[i*m.C+j] += s * av * bv
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: dim mismatch in Dot")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AxpyVec returns a + s·b.
func AxpyVec(a []float64, s float64, b []float64) []float64 {
	if len(a) != len(b) {
		panic("stats: dim mismatch in AxpyVec")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + s*b[i]
	}
	return out
}

// SubVec returns a − b.
func SubVec(a, b []float64) []float64 { return AxpyVec(a, -1, b) }

// AddVec returns a + b.
func AddVec(a, b []float64) []float64 { return AxpyVec(a, 1, b) }

// ScaleVec returns s·a.
func ScaleVec(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = s * a[i]
	}
	return out
}

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// SumVec returns the sum of elements.
func SumVec(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
