package shardfit

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// shardData draws a three-topic corpus from the model's own generative
// process — the same construction the pipeline supervision tests use.
func shardData(docs int) *core.Data {
	rng := stats.NewRNG(41, 99)
	phi := [][]float64{
		{.30, .30, .30, .03, .03, .02, .01, .005, .005},
		{.01, .005, .005, .30, .30, .30, .03, .03, .02},
		{.03, .03, .02, .01, .005, .005, .30, .30, .30},
	}
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	emuMeans := [][]float64{{2, 8}, {8, 2}, {5, 5}}
	data := &core.Data{V: 9}
	for d := 0; d < docs; d++ {
		k := d % 3
		n := 2 + rng.IntN(4)
		words := make([]int, n)
		for i := range words {
			words[i] = rng.Categorical(phi[k])
		}
		data.Words = append(data.Words, words)
		data.Gel = append(data.Gel, []float64{rng.Normal(gelMeans[k][0], 0.25), rng.Normal(gelMeans[k][1], 0.25)})
		data.Emu = append(data.Emu, []float64{rng.Normal(emuMeans[k][0], 0.3), rng.Normal(emuMeans[k][1], 0.3)})
	}
	return data
}

// shardOpts is a small sharded-fit configuration with the priors
// pinned from the full corpus (the orchestrator would pin the same
// ones; doing it here lets tests hand identical configs to core.Fit).
func shardOpts(t *testing.T, data *core.Data, shards int) pipeline.Options {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.K = 3
	cfg.Iterations = 30
	cfg.BurnIn = 15
	cfg.Seed = 9
	gp, ep, err := core.EmpiricalPriors(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GelPrior, cfg.EmuPrior = gp, ep
	return pipeline.Options{Model: cfg, ShardCount: shards}
}

func mustFit(t *testing.T, o *Orchestrator, data *core.Data) (*core.Result, *pipeline.ShardFitSummary) {
	t.Helper()
	res, sum, err := o.Fit(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	return res, sum
}

// assertSameResult demands bit-identical estimates — the currency of
// the kill-and-retry guarantee.
func assertSameResult(t *testing.T, got, want *core.Result) {
	t.Helper()
	if len(got.Y) != len(want.Y) {
		t.Fatalf("Y length %d vs %d", len(got.Y), len(want.Y))
	}
	for d := range want.Y {
		if got.Y[d] != want.Y[d] {
			t.Fatalf("Y[%d] = %d, want %d", d, got.Y[d], want.Y[d])
		}
		for k := range want.Theta[d] {
			if got.Theta[d][k] != want.Theta[d][k] {
				t.Fatalf("Theta[%d][%d] = %g, want %g", d, k, got.Theta[d][k], want.Theta[d][k])
			}
		}
	}
	for k := range want.Phi {
		for v := range want.Phi[k] {
			if got.Phi[k][v] != want.Phi[k][v] {
				t.Fatalf("Phi[%d][%d] = %g, want %g", k, v, got.Phi[k][v], want.Phi[k][v])
			}
		}
	}
	for k := range want.Gel {
		for i := range want.Gel[k].Mean {
			if got.Gel[k].Mean[i] != want.Gel[k].Mean[i] {
				t.Fatalf("gel mean[%d][%d] = %g, want %g", k, i, got.Gel[k].Mean[i], want.Gel[k].Mean[i])
			}
		}
		if d := got.Gel[k].Precision.MaxAbsDiff(want.Gel[k].Precision); d != 0 {
			t.Fatalf("gel precision %d differs by %g", k, d)
		}
	}
}

// TestSingleShardMatchesPlainFit: ShardCount=1 keeps the run seed and
// must reproduce core.Fit byte-for-byte — sharding is free when off.
func TestSingleShardMatchesPlainFit(t *testing.T) {
	data := shardData(45)
	opts := shardOpts(t, data, 1)
	ref, err := core.Fit(data, opts.Model)
	if err != nil {
		t.Fatal(err)
	}
	res, sum := mustFit(t, &Orchestrator{Opts: opts}, data)
	// Phi/Theta/Y come from the same integer counts and formulas —
	// exact. The Gaussian components are rebuilt from a fresh
	// accumulation (capture) versus the sampler's incremental one
	// (Estimate), so they agree only up to float summation order.
	for d := range ref.Y {
		if res.Y[d] != ref.Y[d] {
			t.Fatalf("Y[%d] = %d, want %d", d, res.Y[d], ref.Y[d])
		}
		for k := range ref.Theta[d] {
			if res.Theta[d][k] != ref.Theta[d][k] {
				t.Fatalf("Theta[%d][%d] = %g, want %g", d, k, res.Theta[d][k], ref.Theta[d][k])
			}
		}
	}
	for k := range ref.Phi {
		for v := range ref.Phi[k] {
			if res.Phi[k][v] != ref.Phi[k][v] {
				t.Fatalf("Phi[%d][%d] = %g, want %g", k, v, res.Phi[k][v], ref.Phi[k][v])
			}
		}
	}
	for k := range ref.Gel {
		for i := range ref.Gel[k].Mean {
			if math.Abs(res.Gel[k].Mean[i]-ref.Gel[k].Mean[i]) > 1e-8 {
				t.Fatalf("gel mean[%d][%d]: %g vs %g", k, i, res.Gel[k].Mean[i], ref.Gel[k].Mean[i])
			}
		}
		if d := res.Gel[k].Precision.MaxAbsDiff(ref.Gel[k].Precision); d > 1e-6 {
			t.Fatalf("gel precision %d differs by %g", k, d)
		}
	}
	if sum.ShardCount != 1 || sum.Fitted != 1 {
		t.Fatalf("summary = %+v, want one fitted shard", sum)
	}
}

// TestShardedFitDeterministic: two identical sharded runs agree
// bit-for-bit even with concurrent workers.
func TestShardedFitDeterministic(t *testing.T) {
	data := shardData(60)
	a, _ := mustFit(t, &Orchestrator{Opts: shardOpts(t, data, 4)}, data)
	b, _ := mustFit(t, &Orchestrator{Opts: shardOpts(t, data, 4)}, data)
	assertSameResult(t, a, b)
	if len(a.Theta) != data.NumDocs() {
		t.Fatalf("merged model covers %d/%d docs", len(a.Theta), data.NumDocs())
	}
}

// killChaos poisons the chain of the listed shard ranges on their
// first attempt — the "worker dies mid-fit" injection. The retried
// attempt runs clean with the same seed.
func killChaos(killLos map[int]bool) func(lo, hi, attempt int, cfg *core.Config) {
	return func(lo, hi, attempt int, cfg *core.Config) {
		if attempt == 0 && killLos[lo] {
			cfg.Health.Perturb = func(sweep int, ll float64) float64 {
				if sweep == 5 {
					return math.NaN()
				}
				return ll
			}
		}
	}
}

// TestChaosKillKOfNConverges is the chaos test: with 2 of 4 shard
// workers killed mid-fit, the retried workers replay their seeds and
// the merged model is byte-identical to an undisturbed run.
func TestChaosKillKOfNConverges(t *testing.T) {
	data := shardData(60)
	opts := shardOpts(t, data, 4)
	clean, _ := mustFit(t, &Orchestrator{Opts: opts}, data)

	ranges := core.ShardRanges(data.NumDocs(), 4)
	kills := map[int]bool{ranges[1][0]: true, ranges[3][0]: true}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	res, sum := mustFit(t, &Orchestrator{Opts: opts, Chaos: killChaos(kills)}, data)
	assertSameResult(t, res, clean)
	if sum.Retried != 2 {
		t.Fatalf("summary = %+v, want exactly 2 retries", sum)
	}
	if len(sum.Incidents) != 2 {
		t.Fatalf("want the 2 kills recorded as incidents, got %+v", sum.Incidents)
	}
	if v := reg.Counter("fit_shards_retried_total", "", nil).Value(); v != 2 {
		t.Fatalf("fit_shards_retried_total = %d, want 2", v)
	}
	if v := reg.Counter("fit_shards_merged_total", "", nil).Value(); v != 4 {
		t.Fatalf("fit_shards_merged_total = %d, want 4", v)
	}
}

// persistentChaos kills every attempt of one shard — the terminal
// failure that exercises maximal-progress persistence.
func persistentChaos(killLo int) func(lo, hi, attempt int, cfg *core.Config) {
	return func(lo, hi, attempt int, cfg *core.Config) {
		if lo == killLo {
			cfg.Health.Perturb = func(sweep int, ll float64) float64 {
				if sweep == 5 {
					return math.NaN()
				}
				return ll
			}
		}
	}
}

// TestCrashResumeFromManifest: a run that dies with one shard
// unfitted leaves the other shards durably recorded; the rerun reuses
// them, refits only the missing shard, and converges to the clean
// model.
func TestCrashResumeFromManifest(t *testing.T) {
	data := shardData(60)
	dir := t.TempDir()
	opts := shardOpts(t, data, 4)
	clean, _ := mustFit(t, &Orchestrator{Opts: opts}, data)

	opts.ShardDir = dir
	ranges := core.ShardRanges(data.NumDocs(), 4)
	_, _, err := (&Orchestrator{Opts: opts, Chaos: persistentChaos(ranges[2][0])}).Fit(context.Background(), data)
	if err == nil {
		t.Fatal("persistently killed shard did not fail the run")
	}
	man, merr := pipeline.LoadShardManifest(dir)
	if merr != nil {
		t.Fatal(merr)
	}
	fitted := 0
	for _, e := range man.Shards {
		if e.State == pipeline.ShardFitted {
			fitted++
		}
	}
	if fitted != 3 || man.Merged {
		t.Fatalf("after crash: %d fitted, merged=%v, want 3 fitted unmerged", fitted, man.Merged)
	}

	res, sum := mustFit(t, &Orchestrator{Opts: opts}, data)
	assertSameResult(t, res, clean)
	if sum.Resumed != 3 || sum.Fitted != 1 {
		t.Fatalf("resume summary = %+v, want 3 resumed / 1 fitted", sum)
	}
	man, merr = pipeline.LoadShardManifest(dir)
	if merr != nil || !man.Merged {
		t.Fatalf("manifest after resume: merged=%v err=%v", man != nil && man.Merged, merr)
	}
}

// TestResumeRejectsForeignManifest: a manifest written for a different
// fit (other seed) must not contribute a single shard.
func TestResumeRejectsForeignManifest(t *testing.T) {
	data := shardData(48)
	dir := t.TempDir()
	opts := shardOpts(t, data, 3)
	opts.ShardDir = dir
	mustFit(t, &Orchestrator{Opts: opts}, data)

	opts2 := opts
	opts2.Model.Seed = 77
	clean2, _ := mustFit(t, &Orchestrator{Opts: func() pipeline.Options {
		o := opts2
		o.ShardDir = ""
		return o
	}()}, data)
	res, sum := mustFit(t, &Orchestrator{Opts: opts2}, data)
	assertSameResult(t, res, clean2)
	if sum.Resumed != 0 || sum.Fitted != 3 {
		t.Fatalf("summary = %+v, want full refit under new identity", sum)
	}
}

// TestResumeRefitsCorruptShardFile: a bit-flipped statistics file must
// be refitted, not merged.
func TestResumeRefitsCorruptShardFile(t *testing.T) {
	data := shardData(48)
	dir := t.TempDir()
	opts := shardOpts(t, data, 3)
	opts.ShardDir = dir
	clean, _ := mustFit(t, &Orchestrator{Opts: opts}, data)

	man, err := pipeline.LoadShardManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, man.Shards[1].File)
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-10] ^= 0x40
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	res, sum := mustFit(t, &Orchestrator{Opts: opts}, data)
	assertSameResult(t, res, clean)
	if sum.Resumed != 2 || sum.Fitted != 1 {
		t.Fatalf("summary = %+v, want 2 resumed / 1 refit after corruption", sum)
	}
}

// TestStragglerReshards: a shard that cannot finish inside the
// straggler timeout is split and the halves complete; the run makes
// progress instead of hanging.
func TestStragglerReshards(t *testing.T) {
	data := shardData(40)
	opts := shardOpts(t, data, 2)
	opts.StragglerTimeout = 200 * time.Millisecond
	ranges := core.ShardRanges(data.NumDocs(), 2)
	stallLo, stallHi := ranges[1][0], ranges[1][1]
	chaos := func(lo, hi, attempt int, cfg *core.Config) {
		if lo == stallLo && hi == stallHi {
			cfg.Hooks = cfg.Hooks.Then(core.SweepHooks{OnSweep: func(core.SweepStats) {
				time.Sleep(400 * time.Millisecond)
			}})
		}
	}
	res, sum := mustFit(t, &Orchestrator{Opts: opts, Chaos: chaos}, data)
	if sum.Resharded != 1 || sum.ShardCount != 3 {
		t.Fatalf("summary = %+v, want 1 reshard yielding 3 shards", sum)
	}
	if len(res.Theta) != data.NumDocs() || len(res.Y) != data.NumDocs() {
		t.Fatalf("resharded model covers %d/%d docs", len(res.Theta), data.NumDocs())
	}
}

// TestShardFitterRegistered: importing this package wires the
// orchestrator into the pipeline's fit dispatch, end to end — a
// sharded RunOnRecipes produces an aligned model plus a summary.
func TestShardFitterRegistered(t *testing.T) {
	ccfg := corpus.DefaultConfig()
	ccfg.Scale = 0.05
	recipes, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := pipeline.DefaultOptions()
	opts.UseW2VFilter = false
	opts.Model.Iterations = 40
	opts.Model.BurnIn = 20
	opts.ShardCount = 3
	out, err := pipeline.RunOnRecipes(recipes, opts)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shards == nil || out.Shards.Fitted != 3 || out.Shards.ShardCount != 3 {
		t.Fatalf("Output.Shards = %+v, want 3 fitted shards", out.Shards)
	}
	if len(out.Model.Theta) != len(out.Docs) {
		t.Fatalf("merged θ rows %d, docs %d", len(out.Model.Theta), len(out.Docs))
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("unreachable")
	}
}
