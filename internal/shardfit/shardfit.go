// Package shardfit is the corpus-scale fault-tolerant fit: it
// partitions the documents into contiguous shards, fits every shard as
// an independent supervised chain, and merges the shards' sufficient
// statistics (core.ShardStats) into one model.
//
// Fault tolerance is layered:
//
//   - Inside a shard, the resilience supervisor handles divergence —
//     health-aborted attempts roll back to the shard's checkpoint or
//     restart reseeded (Options.Supervise).
//   - Around a shard, the orchestrator retries dead workers with the
//     shard's own seed under jittered backoff, so a killed-and-retried
//     worker reproduces its statistics bit-for-bit and the merged
//     model is byte-identical to an undisturbed run.
//   - A shard that exhausts a straggler timeout is split in half and
//     the halves fitted separately — bounded progress instead of
//     replaying the straggler forever.
//   - Across process crashes, a digest-checked manifest in
//     Options.ShardDir records which shards are durably fitted; a
//     restarted orchestrator refits only the rest and re-merges.
//
// Importing this package registers the orchestrator with the pipeline
// (pipeline.Options.ShardCount > 1); the blank import lives in the
// binaries so the pipeline itself stays cycle-free.
package shardfit

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

func init() {
	pipeline.RegisterShardFitter(Fit)
}

// maxReshardDepth bounds recursive straggler splitting: a shard is
// split at most this many times before its failure is terminal.
const maxReshardDepth = 2

// defaultShardRetries is the orchestrator-level retry budget per shard
// when Options.ShardRetries is zero.
const defaultShardRetries = 2

// Fit is the pipeline.ShardFitter registered at init.
func Fit(data *core.Data, opts pipeline.Options) (*core.Result, *pipeline.ShardFitSummary, error) {
	return (&Orchestrator{Opts: opts}).Fit(context.Background(), data)
}

// Orchestrator runs one sharded fit. The zero value plus Opts is
// ready; the remaining fields are test instrumentation.
type Orchestrator struct {
	Opts pipeline.Options

	// Concurrency bounds simultaneous shard workers (0 = GOMAXPROCS).
	Concurrency int

	// Chaos, when non-nil, may rewrite a shard attempt's config before
	// it runs — the fault-injection hook the kill-K-of-N and straggler
	// tests use (e.g. installing a Health.Perturb that poisons the
	// chain, or a sweep hook that stalls it). Keyed by the shard's
	// document range and the orchestrator-level attempt index. Must be
	// nil in production.
	Chaos func(lo, hi, attempt int, cfg *core.Config)
}

// run is the mutable state of one Fit call.
type run struct {
	o    *Orchestrator
	opts pipeline.Options
	cfg  core.Config // shared shard config: pinned priors, no seed
	data *core.Data
	dir  string

	mu      sync.Mutex
	man     *pipeline.ShardManifest
	results map[int]*core.ShardStats // fitted statistics, keyed by Lo
	sum     pipeline.ShardFitSummary

	started, retried, failed, merged *obs.Counter
	seconds                          *obs.Histogram
}

// Fit executes the sharded fit. On error the summary is still
// returned: shards fitted before the failure are durably recorded
// (when ShardDir is set) and a rerun resumes from them.
func (o *Orchestrator) Fit(ctx context.Context, data *core.Data) (*core.Result, *pipeline.ShardFitSummary, error) {
	opts := o.Opts
	if opts.ShardCount < 1 {
		opts.ShardCount = 1
	}
	cfg := opts.Model
	if cfg.GelPrior == nil || cfg.EmuPrior == nil {
		// The priors must be computed ONCE from the full corpus and
		// shared: per-shard empirical priors would make the shards'
		// accumulators non-mergeable.
		gp, ep, err := core.EmpiricalPriors(data)
		if err != nil {
			return nil, nil, fmt.Errorf("shardfit: priors: %w", err)
		}
		cfg.GelPrior, cfg.EmuPrior = gp, ep
	}
	ranges := core.ShardRanges(data.NumDocs(), opts.ShardCount)
	if len(ranges) == 0 {
		return nil, nil, fmt.Errorf("shardfit: no documents to shard")
	}

	r := &run{
		o:       o,
		opts:    opts,
		cfg:     cfg,
		data:    data,
		dir:     opts.ShardDir,
		results: map[int]*core.ShardStats{},
	}
	if reg := opts.Metrics; reg != nil {
		r.started = reg.Counter("fit_shards_started_total",
			"Shard fit attempts started (first attempts and retries).", nil)
		r.retried = reg.Counter("fit_shards_retried_total",
			"Shard workers retried after dying mid-fit.", nil)
		r.failed = reg.Counter("fit_shards_failed_total",
			"Shards that exhausted every retry and reshard.", nil)
		r.merged = reg.Counter("fit_shards_merged_total",
			"Shards merged into final models.", nil)
		r.seconds = reg.Histogram("fit_shard_seconds",
			"Wall time of successful shard fits.",
			[]float64{0.1, 0.5, 1, 5, 30, 120, 600}, nil)
	}

	if err := r.initManifest(ranges); err != nil {
		return nil, r.summary(), err
	}
	if err := r.fitPending(ctx); err != nil {
		return nil, r.summary(), err
	}
	res, err := r.merge()
	if err != nil {
		return nil, r.summary(), err
	}
	return res, r.summary(), nil
}

// summary returns a stable copy of the running tally.
func (r *run) summary() *pipeline.ShardFitSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sum
	s.ShardCount = len(r.man.Shards)
	s.Incidents = append([]resilience.Incident(nil), r.sum.Incidents...)
	return &s
}

// identity pins the run's parameters for the manifest.
func (r *run) identity() pipeline.ShardIdentity {
	return pipeline.ShardIdentity{
		NumDocs:        r.data.NumDocs(),
		V:              r.data.V,
		K:              r.cfg.K,
		Iterations:     r.cfg.Iterations,
		BurnIn:         r.cfg.BurnIn,
		Seed:           r.cfg.Seed,
		ShardCount:     r.opts.ShardCount,
		Collapsed:      r.cfg.Collapsed,
		Workers:        r.cfg.Workers,
		Alpha:          r.cfg.Alpha,
		Gamma:          r.cfg.Gamma,
		UseEmulsion:    r.cfg.UseEmulsion,
		EmulsionWeight: r.cfg.EmulsionWeight,
	}
}

// initManifest builds the shard plan, resuming from a durable manifest
// when one exists for this exact fit. Fitted shards whose statistics
// files load and digest-verify are reused; anything else — identity
// mismatch, corrupt manifest, damaged stats file — falls back to
// refitting, never to trusting bad state.
func (r *run) initManifest(ranges [][2]int) error {
	fresh := &pipeline.ShardManifest{Identity: r.identity()}
	for _, rg := range ranges {
		fresh.Shards = append(fresh.Shards, pipeline.ShardEntry{
			Lo: rg[0], Hi: rg[1],
			Seed:  seedFor(r.cfg.Seed, rg[0], rg[1], r.data.NumDocs()),
			State: pipeline.ShardPending,
		})
	}
	r.man = fresh
	if r.dir == "" {
		return nil
	}
	prev, err := pipeline.LoadShardManifest(r.dir)
	if err == nil {
		// The ingest watermark outlives any single fit: a grown corpus
		// changes the identity (NumDocs at minimum) and discards the
		// shard rows, but the record of which ingest-log sequences the
		// last promoted model absorbed must carry forward or every
		// re-fit would reset the appended-since-fit counter to the whole
		// log.
		fresh.IngestWatermark = prev.IngestWatermark
		fresh.IngestLastFitUnix = prev.IngestLastFitUnix
	}
	switch {
	case err == nil && prev.Identity == fresh.Identity:
		r.man = prev
		for i := range r.man.Shards {
			e := &r.man.Shards[i]
			if e.State != pipeline.ShardFitted {
				continue
			}
			st, lerr := pipeline.LoadShardStatsFile(r.dir, e.File, e.Digest, r.cfg.GelPrior, r.cfg.EmuPrior)
			if lerr != nil || st.Lo != e.Lo || st.Hi != e.Hi {
				// Damaged or mislabelled statistics: refit this shard.
				e.State = pipeline.ShardPending
				e.File, e.Digest = "", ""
				continue
			}
			r.results[e.Lo] = st
			r.sum.Resumed++
		}
		r.man.Merged = false
	case err == nil:
		// A manifest for a different fit: start over (identity mismatch
		// must never merge foreign statistics).
	case errors.Is(err, fs.ErrNotExist):
		// First run in this directory.
	default:
		// Corrupt or unreadable manifest: refit everything.
	}
	return pipeline.SaveShardManifest(r.dir, r.man)
}

// fitPending fans the pending shards out to bounded workers. The first
// terminal shard failure is returned, but in-flight shards finish (and
// persist) first, so a rerun resumes from maximal progress.
func (r *run) fitPending(ctx context.Context) error {
	var pending []int
	r.mu.Lock()
	for i, e := range r.man.Shards {
		if e.State == pipeline.ShardPending {
			pending = append(pending, i)
		}
	}
	r.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	workers := r.o.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	sem := make(chan struct{}, workers)
	errCh := make(chan error, len(pending))
	var wg sync.WaitGroup
	for _, idx := range pending {
		entry := r.entryAt(idx)
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errCh <- r.fitShard(ctx, entry, 0)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

func (r *run) entryAt(i int) pipeline.ShardEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.man.Shards[i]
}

// fitShard drives one shard to durable statistics: retry the worker
// with the shard's own seed under jittered backoff, and — when every
// attempt died to the straggler timeout — split the shard and fit the
// halves (depth-bounded).
func (r *run) fitShard(ctx context.Context, e pipeline.ShardEntry, depth int) error {
	retries := r.opts.ShardRetries
	if retries == 0 {
		retries = defaultShardRetries
	}
	delays := resilience.Backoff{
		Attempts: retries + 1,
		Base:     10 * time.Millisecond,
		Max:      500 * time.Millisecond,
		Seed:     e.Seed,
	}.Delays()
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			r.count(r.retried, &r.sum.Retried)
			time.Sleep(delays[attempt-1])
		}
		st, err := r.runAttempt(ctx, e, attempt)
		if err == nil {
			return r.recordFitted(e, st)
		}
		lastErr = err
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			// A straggler, not a crash: retrying the same seed would stall
			// the same way, so go straight to resharding.
			break
		}
	}
	if errors.Is(lastErr, context.DeadlineExceeded) && ctx.Err() == nil &&
		depth < maxReshardDepth && e.Hi-e.Lo >= 2 {
		return r.reshard(ctx, e, depth)
	}
	if r.failed != nil {
		r.failed.Inc()
	}
	return fmt.Errorf("shardfit: shard [%d,%d) failed after %d attempt(s): %w",
		e.Lo, e.Hi, retries+1, lastErr)
}

// runAttempt runs one shard chain under its own supervisor and
// captures its mergeable statistics.
func (r *run) runAttempt(ctx context.Context, e pipeline.ShardEntry, attempt int) (*core.ShardStats, error) {
	if r.started != nil {
		r.started.Inc()
	}
	start := time.Now()
	cfg := r.cfg
	cfg.Seed = e.Seed
	maxRestarts := 0
	var store resilience.CheckpointStore
	if r.opts.Supervise {
		cfg.Health.MaxLLDrop = r.opts.MaxLLDrop
		cfg.Health.SweepTimeout = r.opts.SweepTimeout
		if cfg.Health.MinTopics == 0 {
			cfg.Health.MinTopics = 1
		}
		maxRestarts = r.opts.MaxRestarts
		if maxRestarts == 0 {
			maxRestarts = 3
		}
		if r.dir != "" {
			cfg.CheckpointEvery = r.opts.Checkpoint.Every
			if cfg.CheckpointEvery <= 0 {
				cfg.CheckpointEvery = 25
			}
			store = &pipeline.FitCheckpointStore{
				Dir:     shardCheckpointDir(r.dir, e),
				Metrics: r.opts.Metrics,
			}
		}
	}
	if r.o.Chaos != nil {
		r.o.Chaos(e.Lo, e.Hi, attempt, &cfg)
	}
	if r.opts.StragglerTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.StragglerTimeout)
		defer cancel()
	}
	var st *core.ShardStats
	sup := &resilience.Supervisor{
		MaxRestarts: maxRestarts,
		Backoff: resilience.Backoff{
			Base: 10 * time.Millisecond,
			Max:  500 * time.Millisecond,
			Seed: cfg.Seed,
		},
		Store:   store,
		Capture: func(s *core.Sampler) { st = s.ShardStats(e.Lo) },
	}
	_, incidents, err := sup.RunFit(ctx, r.data.Slice(e.Lo, e.Hi), cfg, nil)
	if len(incidents) > 0 {
		r.mu.Lock()
		r.sum.Incidents = append(r.sum.Incidents, incidents...)
		r.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	if r.seconds != nil {
		r.seconds.Observe(time.Since(start).Seconds())
	}
	return st, nil
}

// recordFitted persists a shard's statistics (when a shard directory
// is configured) and marks its manifest entry fitted.
func (r *run) recordFitted(e pipeline.ShardEntry, st *core.ShardStats) error {
	file, digest := "", ""
	if r.dir != "" {
		var err error
		file = shardStatsName(e)
		digest, err = pipeline.WriteShardStatsFile(r.dir, file, st)
		if err != nil {
			return fmt.Errorf("shardfit: persisting shard [%d,%d): %w", e.Lo, e.Hi, err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results[e.Lo] = st
	r.sum.Fitted++
	for i := range r.man.Shards {
		if r.man.Shards[i].Lo == e.Lo && r.man.Shards[i].Hi == e.Hi {
			r.man.Shards[i].State = pipeline.ShardFitted
			r.man.Shards[i].File = file
			r.man.Shards[i].Digest = digest
			break
		}
	}
	return r.saveManifestLocked()
}

// reshard splits a straggler in half and fits the halves. The halves
// carry their own range-derived seeds, so the result differs from the
// undisturbed plan — resharding trades exact reproducibility for
// progress, and the manifest records that it happened.
func (r *run) reshard(ctx context.Context, e pipeline.ShardEntry, depth int) error {
	mid := e.Lo + (e.Hi-e.Lo)/2
	left := pipeline.ShardEntry{
		Lo: e.Lo, Hi: mid,
		Seed:  seedFor(r.cfg.Seed, e.Lo, mid, r.data.NumDocs()),
		State: pipeline.ShardPending, Resharded: true,
	}
	right := pipeline.ShardEntry{
		Lo: mid, Hi: e.Hi,
		Seed:  seedFor(r.cfg.Seed, mid, e.Hi, r.data.NumDocs()),
		State: pipeline.ShardPending, Resharded: true,
	}
	r.mu.Lock()
	for i := range r.man.Shards {
		if r.man.Shards[i].Lo == e.Lo && r.man.Shards[i].Hi == e.Hi {
			r.man.Shards = append(r.man.Shards[:i],
				append([]pipeline.ShardEntry{left, right}, r.man.Shards[i+1:]...)...)
			break
		}
	}
	r.sum.Resharded++
	err := r.saveManifestLocked()
	r.mu.Unlock()
	if err != nil {
		return err
	}
	if err := r.fitShard(ctx, left, depth+1); err != nil {
		return err
	}
	return r.fitShard(ctx, right, depth+1)
}

// merge assembles the final model from the fitted shards' statistics
// and marks the manifest merged.
func (r *run) merge() (*core.Result, error) {
	r.mu.Lock()
	parts := make([]*core.ShardStats, 0, len(r.man.Shards))
	for _, e := range r.man.Shards {
		st := r.results[e.Lo]
		if st == nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("shardfit: shard [%d,%d) has no statistics to merge", e.Lo, e.Hi)
		}
		parts = append(parts, st)
	}
	r.mu.Unlock()
	sort.Slice(parts, func(i, j int) bool { return parts[i].Lo < parts[j].Lo })
	merged, err := core.MergeShardStats(parts)
	if err != nil {
		return nil, fmt.Errorf("shardfit: merging %d shards: %w", len(parts), err)
	}
	res, err := merged.Result()
	if err != nil {
		return nil, fmt.Errorf("shardfit: assembling merged model: %w", err)
	}
	if r.merged != nil {
		r.merged.Add(int64(len(parts)))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.man.Merged = true
	if err := r.saveManifestLocked(); err != nil {
		return nil, err
	}
	return res, nil
}

// saveManifestLocked persists the manifest when a shard directory is
// configured. Callers hold r.mu.
func (r *run) saveManifestLocked() error {
	if r.dir == "" {
		return nil
	}
	return pipeline.SaveShardManifest(r.dir, r.man)
}

// count bumps a counter metric and its summary tally together.
func (r *run) count(c *obs.Counter, tally *int) {
	if c != nil {
		c.Inc()
	}
	r.mu.Lock()
	*tally++
	r.mu.Unlock()
}

// shardStatsName is the statistics file name for a shard range.
func shardStatsName(e pipeline.ShardEntry) string {
	return fmt.Sprintf("shard-%08d-%08d.stats", e.Lo, e.Hi)
}

// shardCheckpointDir is the per-shard checkpoint directory.
func shardCheckpointDir(dir string, e pipeline.ShardEntry) string {
	return fmt.Sprintf("%s/ck-%08d-%08d", dir, e.Lo, e.Hi)
}

// seedFor derives a shard chain's seed from the run seed and the
// shard's document range. The full range keeps the run seed untouched,
// so ShardCount=1 reproduces the plain fit byte-for-byte; partial
// ranges mix range and seed through a splitmix64 finalizer, giving
// every shard (including reshard splits) a stable, well-separated
// stream that survives orchestrator restarts.
func seedFor(base uint64, lo, hi, nDocs int) uint64 {
	if lo == 0 && hi == nDocs {
		return base
	}
	x := base ^ (uint64(lo)+1)*0x9E3779B97F4A7C15 ^ (uint64(hi)+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
