package core

import (
	"context"
	"testing"
)

// TestSweepHooksReceiveStats checks the telemetry contract of Run: one
// SweepStats per sweep, in order, with phase timings that add up and a
// log-likelihood identical to the recorded trace.
func TestSweepHooksReceiveStats(t *testing.T) {
	data, _ := synthData(21, 90)
	cfg := smallCfg()
	cfg.Iterations = 12
	var stats []SweepStats
	cfg.Hooks = SweepHooks{OnSweep: func(st SweepStats) { stats = append(stats, st) }}
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(stats) != cfg.Iterations {
		t.Fatalf("hook fired %d times, want %d", len(stats), cfg.Iterations)
	}
	for i, st := range stats {
		if st.Sweep != i {
			t.Fatalf("stats[%d].Sweep = %d", i, st.Sweep)
		}
		if st.Total <= 0 {
			t.Fatalf("sweep %d: non-positive total %v", i, st.Total)
		}
		if st.ZPhase < 0 || st.YPhase < 0 || st.Components < 0 {
			t.Fatalf("sweep %d: negative phase time %+v", i, st)
		}
		if sum := st.ZPhase + st.YPhase + st.Components; sum > st.Total {
			t.Fatalf("sweep %d: phases %v exceed total %v", i, sum, st.Total)
		}
		if st.LogLik != s.LogLik[i] {
			t.Fatalf("sweep %d: hook loglik %g, trace %g", i, st.LogLik, s.LogLik[i])
		}
		if st.OccupiedTopics < 1 || st.OccupiedTopics > cfg.K {
			t.Fatalf("sweep %d: occupied topics %d outside [1,%d]", i, st.OccupiedTopics, cfg.K)
		}
		if st.MaxTopicShare <= 0 || st.MaxTopicShare > 1 {
			t.Fatalf("sweep %d: max topic share %g", i, st.MaxTopicShare)
		}
	}
}

// TestSweepHooksParallelAndCollapsed checks the hook also fires on the
// parallel and collapsed sweep paths with sane phase timings.
func TestSweepHooksParallelAndCollapsed(t *testing.T) {
	data, _ := synthData(22, 80)
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"parallel", func(c *Config) { c.Workers = 3 }},
		{"collapsed", func(c *Config) { c.Collapsed = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCfg()
			cfg.Iterations = 6
			tc.mut(&cfg)
			fired := 0
			cfg.Hooks = SweepHooks{OnSweep: func(st SweepStats) {
				fired++
				if st.Total <= 0 || st.ZPhase < 0 || st.YPhase < 0 {
					t.Errorf("bad stats %+v", st)
				}
			}}
			if _, err := Fit(data, cfg); err != nil {
				t.Fatal(err)
			}
			if fired != cfg.Iterations {
				t.Fatalf("hook fired %d times, want %d", fired, cfg.Iterations)
			}
		})
	}
}

func TestSweepHooksThen(t *testing.T) {
	var order []string
	a := SweepHooks{OnSweep: func(SweepStats) { order = append(order, "a") }}
	b := SweepHooks{OnSweep: func(SweepStats) { order = append(order, "b") }}
	a.Then(b).OnSweep(SweepStats{})
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("composition order %v", order)
	}
	// Zero values compose away.
	if (SweepHooks{}).Then(a).OnSweep == nil {
		t.Fatal("zero.Then(a) lost a")
	}
	if a.Then(SweepHooks{}).OnSweep == nil {
		t.Fatal("a.Then(zero) lost a")
	}
	if (SweepHooks{}).Then(SweepHooks{}).OnSweep != nil {
		t.Fatal("zero.Then(zero) should stay zero")
	}
}

// TestFoldInHook checks fold-in telemetry on both the completed and
// the canceled path.
func TestFoldInHook(t *testing.T) {
	data, _ := synthData(23, 90)
	cfg := smallCfg()
	cfg.Iterations = 60
	res, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []FoldInStats
	res.FoldInHook = func(st FoldInStats) { got = append(got, st) }

	words := []int{0, 1, 2}
	if _, err := res.FoldIn(words, data.Gel[0], data.Emu[0], 40, 7); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	if got[0].Sweeps != 40 || got[0].Words != 3 || got[0].Canceled || got[0].Total <= 0 {
		t.Fatalf("completed stats %+v", got[0])
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := res.FoldInCtx(ctx, words, data.Gel[0], data.Emu[0], 40, 7); err == nil {
		t.Fatal("canceled fold-in should fail")
	}
	if len(got) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(got))
	}
	if !got[1].Canceled || got[1].Sweeps != 0 {
		t.Fatalf("canceled stats %+v", got[1])
	}
}
