//go:build race

package core

// raceEnabled reports whether this test binary was built with -race;
// allocation-count assertions are meaningless under the race
// detector's instrumentation.
const raceEnabled = true
