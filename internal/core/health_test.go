package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

func healthTestConfig(iters int) Config {
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.Iterations = iters
	cfg.BurnIn = iters / 2
	cfg.Seed = 7
	return cfg
}

// requireHealthError asserts err is a *HealthError of the given kind
// wrapping ErrUnhealthy, and returns it.
func requireHealthError(t *testing.T, err error, kind HealthKind) *HealthError {
	t.Helper()
	if err == nil {
		t.Fatalf("fit succeeded, want a %s health error", kind)
	}
	if !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("error %v does not wrap ErrUnhealthy", err)
	}
	var he *HealthError
	if !errors.As(err, &he) {
		t.Fatalf("error %v is not a *HealthError", err)
	}
	if he.Event.Kind != kind {
		t.Fatalf("health kind = %s, want %s (event: %+v)", he.Event.Kind, kind, he.Event)
	}
	return he
}

// TestHealthNaNLogLikAborts injects a NaN log-likelihood at a fixed
// sweep and checks the always-on classifier aborts there with a typed
// event, firing OnEvent exactly once.
func TestHealthNaNLogLikAborts(t *testing.T) {
	data, _ := synthData(3, 60)
	cfg := healthTestConfig(40)
	var events []HealthEvent
	cfg.Health = HealthPolicy{
		OnEvent: func(ev HealthEvent) { events = append(events, ev) },
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 17 {
				return math.NaN()
			}
			return ll
		},
	}
	_, err := Fit(data, cfg)
	he := requireHealthError(t, err, HealthNaNLogLik)
	if he.Event.Sweep != 17 {
		t.Fatalf("event sweep = %d, want 17", he.Event.Sweep)
	}
	if len(events) != 1 || events[0].Kind != HealthNaNLogLik {
		t.Fatalf("OnEvent calls = %+v, want exactly one nan_loglik", events)
	}
}

// TestHealthLogLikCollapseAborts drops the log-likelihood far below
// the running best at one sweep and checks the MaxLLDrop classifier
// catches it.
func TestHealthLogLikCollapseAborts(t *testing.T) {
	data, _ := synthData(3, 60)
	cfg := healthTestConfig(40)
	// The threshold must clear the chain's natural burn-in fluctuation
	// (tens of nats on this corpus) while the injected 1000-nat drop
	// sails past it.
	cfg.Health = HealthPolicy{
		MaxLLDrop: 500,
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 20 {
				return ll - 1000
			}
			return ll
		},
	}
	_, err := Fit(data, cfg)
	he := requireHealthError(t, err, HealthLogLikCollapse)
	if he.Event.Sweep != 20 {
		t.Fatalf("event sweep = %d, want 20", he.Event.Sweep)
	}
}

// TestHealthTopicCollapseAborts sets the occupancy floor at K, so the
// first completed sweep necessarily trips the implosion classifier —
// exercising the occupancy plumbing end to end.
func TestHealthTopicCollapseAborts(t *testing.T) {
	data, _ := synthData(3, 30)
	cfg := healthTestConfig(20)
	cfg.Health = HealthPolicy{MinTopics: cfg.K}
	_, err := Fit(data, cfg)
	he := requireHealthError(t, err, HealthTopicCollapse)
	if he.Event.Sweep != 0 {
		t.Fatalf("event sweep = %d, want 0", he.Event.Sweep)
	}
}

// TestHealthSweepTimeoutInBand arms the in-band stall check with an
// impossible deadline; the first sweep must abort as a stall.
func TestHealthSweepTimeoutInBand(t *testing.T) {
	data, _ := synthData(3, 30)
	cfg := healthTestConfig(20)
	cfg.Health = HealthPolicy{SweepTimeout: time.Nanosecond}
	_, err := Fit(data, cfg)
	requireHealthError(t, err, HealthSweepStall)
}

// TestHealthAbortUnhealthyWatchdog covers the out-of-band abort: a
// watchdog calling AbortUnhealthy makes Run return a typed stall error
// without recording a partial sweep.
func TestHealthAbortUnhealthyWatchdog(t *testing.T) {
	data, _ := synthData(3, 30)
	cfg := healthTestConfig(20)
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.AbortUnhealthy(HealthSweepStall, "watchdog: no heartbeat")
	err = s.Run(nil)
	requireHealthError(t, err, HealthSweepStall)
	if s.CompletedSweeps() != 0 {
		t.Fatalf("completed sweeps = %d after pre-run abort, want 0", s.CompletedSweeps())
	}
}

// TestHealthAbortPlainError covers Abort with a non-health cause (the
// supervisor's context-cancellation path): the returned error wraps
// the cause but is not a HealthError.
func TestHealthAbortPlainError(t *testing.T) {
	data, _ := synthData(3, 30)
	cfg := healthTestConfig(20)
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("context canceled")
	s.Abort(cause)
	err = s.Run(nil)
	if !errors.Is(err, cause) {
		t.Fatalf("error %v does not wrap the abort cause", err)
	}
	var he *HealthError
	if errors.As(err, &he) {
		t.Fatalf("plain abort produced a HealthError: %v", err)
	}
}

// TestHealthDegenerateCovarianceRecovered poisons a collapsed
// sampler's gel accumulator so the Normal-Wishart predictive loses
// positive definiteness beyond repair; the resulting kernel panic must
// come back as a typed degenerate_covariance health error, not a
// crash.
func TestHealthDegenerateCovarianceRecovered(t *testing.T) {
	data, _ := synthData(3, 30)
	cfg := healthTestConfig(20)
	cfg.Collapsed = true
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A hugely negative-definite scatter cannot be regularized by any
	// plausible jitter: base + outer stays indefinite through all 60
	// doublings and the stats layer panics with ErrNumericalHealth.
	n, sum, outer := s.gelAcc[0].State()
	for i := 0; i < outer.R; i++ {
		outer.Set(i, i, -1e300)
	}
	if err := s.gelAcc[0].SetState(n, sum, outer); err != nil {
		t.Fatal(err)
	}
	err = s.Run(nil)
	he := requireHealthError(t, err, HealthDegenerateCovariance)
	if !errors.Is(err, stats.ErrNumericalHealth) {
		t.Fatalf("error %v does not wrap stats.ErrNumericalHealth", err)
	}
	if he.Cause == nil {
		t.Fatal("degenerate-covariance event lost its cause")
	}
}

// TestHealthChecksBeforeCheckpoint ensures a sweep that trips a health
// check never reaches the checkpoint emission: the diverged state must
// not overwrite the last healthy checkpoint.
func TestHealthChecksBeforeCheckpoint(t *testing.T) {
	data, _ := synthData(3, 60)
	cfg := healthTestConfig(40)
	cfg.CheckpointEvery = 5
	var sweeps []int
	cfg.CheckpointFunc = func(sn *Snapshot) error {
		sweeps = append(sweeps, sn.Sweep)
		return nil
	}
	cfg.Health = HealthPolicy{
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 9 { // would checkpoint after this sweep ((9+1)%5 == 0)
				return math.NaN()
			}
			return ll
		},
	}
	_, err := Fit(data, cfg)
	requireHealthError(t, err, HealthNaNLogLik)
	if len(sweeps) != 1 || sweeps[0] != 5 {
		t.Fatalf("checkpointed sweeps = %v, want exactly [5] (nothing at or after the divergence)", sweeps)
	}
}

// TestHealthBestCarriesAcrossResume checks the collapse reference
// survives a checkpoint round trip: a resumed chain seeded with the
// old trace must compare new sweeps against the pre-resume best.
func TestHealthBestCarriesAcrossResume(t *testing.T) {
	data, _ := synthData(3, 60)
	cfg := healthTestConfig(10)
	var snap *Snapshot
	cfg.CheckpointEvery = 10
	cfg.CheckpointFunc = func(sn *Snapshot) error { snap = sn; return nil }
	if _, err := Fit(data, cfg); err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Sweep != 10 {
		t.Fatalf("expected a checkpoint at sweep 10, got %+v", snap)
	}
	cfg.Iterations = 20
	cfg.CheckpointFunc = nil
	cfg.Health = HealthPolicy{
		MaxLLDrop: 500,
		Perturb: func(sweep int, ll float64) float64 {
			if sweep == 12 {
				return ll - 1000 // collapse relative to the resumed trace's best
			}
			return ll
		},
	}
	_, err := ResumeFit(data, cfg, snap)
	he := requireHealthError(t, err, HealthLogLikCollapse)
	if he.Event.Sweep != 12 {
		t.Fatalf("event sweep = %d, want 12", he.Event.Sweep)
	}
}
