package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// foldRequests builds a deterministic batch of fold-in requests from
// fresh synthetic recipes of each generating region, plus the mapping
// from region to fitted topic.
func foldRequests(res *Result, n int) (words [][]int, gels, emus [][]float64, wantTopic []int) {
	rng := stats.NewRNG(80, 1)
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	emuMeans := [][]float64{{2, 8}, {8, 2}, {5, 5}}
	wordPools := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	regionTopic := make([]int, 3)
	for region, gm := range gelMeans {
		best, bestD := 0, math.Inf(1)
		for k := 0; k < res.K; k++ {
			d := 0.0
			for j := range gm {
				diff := res.Gel[k].Mean[j] - gm[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = k, d
			}
		}
		regionTopic[region] = best
	}
	for i := 0; i < n; i++ {
		region := i % 3
		words = append(words, []int{
			wordPools[region][rng.IntN(3)],
			wordPools[region][rng.IntN(3)],
		})
		gels = append(gels, []float64{rng.Normal(gelMeans[region][0], 0.25), rng.Normal(gelMeans[region][1], 0.25)})
		emus = append(emus, []float64{rng.Normal(emuMeans[region][0], 0.3), rng.Normal(emuMeans[region][1], 0.3)})
		wantTopic = append(wantTopic, regionTopic[region])
	}
	return words, gels, emus, wantTopic
}

// TestFloat32FoldInEquivalence is the float32-path tolerance gate: on
// the committed synthetic fixture, the float32 kernel's θ must stay
// within a small max-abs-diff of the float64 path per request, and its
// placement accuracy must be no worse than the float64 path's on the
// same requests. (Exact equality is not expected — float32 rounding
// can flip individual Gibbs draws — so the gate is distributional, not
// bitwise, which is why the path is opt-in.)
func TestFloat32FoldInEquivalence(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 300)
	// Confirm the opt-in actually engages the float32 state, so the
	// comparison below exercises the reduced-precision path.
	kn32, err := res.BuildKernelOpts(KernelOptions{Float32: true})
	if err != nil {
		t.Fatal(err)
	}
	if kn32.phiW32 == nil || kn32.gelBank32 == nil || kn32.emuBank32 == nil {
		t.Fatal("Float32 option did not build the float32 kernel state")
	}
	words, gels, emus, wantTopic := foldRequests(res, 45)
	const tol = 0.08
	correct64, correct32 := 0, 0
	worst := 0.0
	for i := range words {
		t64, err := res.FoldInOptsCtx(context.Background(), KernelOptions{}, words[i], gels[i], emus[i], 60, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		t32, err := res.FoldInOptsCtx(context.Background(), KernelOptions{Float32: true}, words[i], gels[i], emus[i], 60, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if s := stats.SumVec(t32); math.Abs(s-1) > 1e-9 {
			t.Fatalf("request %d: float32 θ sums to %g", i, s)
		}
		for k := range t64 {
			if d := math.Abs(t64[k] - t32[k]); d > worst {
				worst = d
			}
		}
		if stats.ArgMax(t64) == wantTopic[i] {
			correct64++
		}
		if stats.ArgMax(t32) == wantTopic[i] {
			correct32++
		}
	}
	if worst > tol {
		t.Errorf("float32 θ deviates from float64 by %.4f, tolerance %.4f", worst, tol)
	}
	if correct32 < correct64 {
		t.Errorf("float32 placement %d/%d worse than float64 %d/%d",
			correct32, len(words), correct64, len(words))
	}
	t.Logf("max θ deviation %.5f, placement f64 %d/%d f32 %d/%d", worst, correct64, len(words), correct32, len(words))
}

// TestAliasFoldInEquivalence gates the alias/Gumbel draw path the same
// way: the draws consume the generator differently (so θ is not
// bitwise comparable), but placement accuracy on the fixture must be
// no worse than the default path's.
func TestAliasFoldInEquivalence(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 300)
	words, gels, emus, wantTopic := foldRequests(res, 45)
	correctDef, correctAlias := 0, 0
	for i := range words {
		td, err := res.FoldInOptsCtx(context.Background(), KernelOptions{}, words[i], gels[i], emus[i], 60, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		ta, err := res.FoldInOptsCtx(context.Background(), KernelOptions{Alias: true}, words[i], gels[i], emus[i], 60, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if s := stats.SumVec(ta); math.Abs(s-1) > 1e-9 {
			t.Fatalf("request %d: alias θ sums to %g", i, s)
		}
		if stats.ArgMax(td) == wantTopic[i] {
			correctDef++
		}
		if stats.ArgMax(ta) == wantTopic[i] {
			correctAlias++
		}
	}
	if correctAlias < correctDef {
		t.Errorf("alias placement %d/%d worse than default %d/%d",
			correctAlias, len(words), correctDef, len(words))
	}
	t.Logf("placement default %d/%d alias %d/%d", correctDef, len(words), correctAlias, len(words))
}

// TestFittingNeverRoutesThroughFloat32 is the guard the issue asks
// for: the fitting sampler's entire state — counts, components,
// scratch, parallel-shard buffers — must contain no float32 anywhere.
// The float32 kernels exist only on FoldInKernel behind an explicit
// opt-in, so a reflect walk over Sampler proving the type is
// float32-free shows fitting cannot route through reduced precision.
func TestFittingNeverRoutesThroughFloat32(t *testing.T) {
	seen := map[reflect.Type]bool{}
	var walk func(ty reflect.Type, path string)
	walk = func(ty reflect.Type, path string) {
		if seen[ty] {
			return
		}
		seen[ty] = true
		switch ty.Kind() {
		case reflect.Float32, reflect.Complex64:
			t.Errorf("fitting state holds float32 at %s", path)
		case reflect.Ptr, reflect.Slice, reflect.Array, reflect.Chan:
			walk(ty.Elem(), path+"/*")
		case reflect.Map:
			walk(ty.Key(), path+"/key")
			walk(ty.Elem(), path+"/val")
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				f := ty.Field(i)
				walk(f.Type, path+"."+f.Name)
			}
		}
	}
	walk(reflect.TypeOf(Sampler{}), "Sampler")

	// And the default kernel leaves the float32 banks unbuilt: only
	// the opt-in slot materializes them.
	res, _ := fitSynth(t, smallCfg(), 120)
	kn, err := res.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	if kn.phiW32 != nil || kn.gelBank32 != nil || kn.emuBank32 != nil {
		t.Error("default kernel built float32 state without opt-in")
	}
}
