package core

import (
	"fmt"

	"repro/internal/stats"
)

// Component is a fitted topic's Gaussian over a concentration space.
type Component struct {
	Mean      []float64
	Precision *stats.Mat
}

// Gaussian materializes the component density.
func (c Component) Gaussian() (*stats.Gaussian, error) {
	return stats.NewGaussian(c.Mean, stats.RegularizeSPD(c.Precision, 1e-10))
}

// Result is the fitted model: the point estimates of equation (5) plus
// the concentration components and per-recipe assignments.
type Result struct {
	K, V  int
	Phi   [][]float64 // K×V texture-term distributions
	Theta [][]float64 // D×K per-recipe topic distributions
	Y     []int       // concentration-topic assignment per recipe
	Gel   []Component // per-topic gel components
	Emu   []Component // per-topic emulsion components

	// Inference hyperparameters, retained so fold-in inference on new
	// recipes uses the same kernel.
	Alpha          float64
	Gamma          float64
	UseEmulsion    bool
	EmulsionWeight float64

	LogLik []float64 // per-sweep joint log-likelihood trace

	// FoldInHook, when non-nil, receives one FoldInStats per FoldInCtx
	// chain (completed or canceled). Install it before sharing the
	// Result across goroutines; concurrent fold-ins invoke it
	// concurrently, so the sink must be safe for concurrent use. It is
	// telemetry only and is not serialized.
	FoldInHook func(FoldInStats)

	// kernel caches the fold-in working set (per-topic Gaussians,
	// vocab-major φ). Built lazily by BuildKernel; never serialized.
	kernel kernelCache
}

// Estimate computes the point estimates of equation (5) from the
// current sampler state:
//
//	φ_kv = (N_kv + γ)/(N_k + γV)
//	θ_dk = (N_dk + M_dk + α)/(N_d + M_d + Σα)
//
// In collapsed mode the components are the posterior means given the
// current assignment; otherwise they are the current sampled values.
func (s *Sampler) Estimate() *Result {
	res := &Result{
		K:              s.cfg.K,
		V:              s.data.V,
		Alpha:          s.cfg.Alpha,
		Gamma:          s.cfg.Gamma,
		UseEmulsion:    s.cfg.UseEmulsion,
		EmulsionWeight: s.cfg.EmulsionWeight,
		LogLik:         append([]float64(nil), s.LogLik...),
		Y:              append([]int(nil), s.Y...),
	}
	res.Phi = make([][]float64, s.cfg.K)
	gv := s.cfg.Gamma * float64(s.data.V)
	for k := 0; k < s.cfg.K; k++ {
		res.Phi[k] = make([]float64, s.data.V)
	}
	// The counts are stored vocab-major; each φ_kv depends only on its
	// own count, so the traversal order is immaterial to the values.
	for w := 0; w < s.data.V; w++ {
		row := s.nwk[w]
		for k := 0; k < s.cfg.K; k++ {
			res.Phi[k][w] = (float64(row[k]) + s.cfg.Gamma) / (float64(s.nk[k]) + gv)
		}
	}
	res.Theta = make([][]float64, s.data.NumDocs())
	sumAlpha := s.cfg.Alpha * float64(s.cfg.K)
	for d := range s.data.Words {
		row := make([]float64, s.cfg.K)
		denom := float64(s.nd[d]) + 1 + sumAlpha // M_d = 1 concentration observation
		for k := 0; k < s.cfg.K; k++ {
			m := 0.0
			if s.Y[d] == k {
				m = 1
			}
			row[k] = (float64(s.ndk[d][k]) + m + s.cfg.Alpha) / denom
		}
		res.Theta[d] = row
	}

	// Components are reported as posterior means given the final
	// assignment, not the last random draw: a topic that happens to be
	// empty at the final sweep would otherwise report an arbitrary prior
	// sample (with β ≪ 1 its mean wanders far outside the data range),
	// which would poison the KL linkage downstream.
	members := s.membersByTopic()
	res.Gel = make([]Component, s.cfg.K)
	res.Emu = make([]Component, s.cfg.K)
	for k := 0; k < s.cfg.K; k++ {
		gxs := make([][]float64, len(members[k]))
		exs := make([][]float64, len(members[k]))
		for i, d := range members[k] {
			gxs[i] = s.data.Gel[d]
			exs[i] = s.data.Emu[d]
		}
		mu, lam := s.cfg.GelPrior.Posterior(gxs).MeanParams()
		res.Gel[k] = Component{Mean: mu, Precision: lam}
		m, l := s.cfg.EmuPrior.Posterior(exs).MeanParams()
		res.Emu[k] = Component{Mean: m, Precision: l}
	}
	return res
}

// Fit is the one-call API: build a sampler, run it, and return the
// estimates.
func Fit(data *Data, cfg Config) (*Result, error) {
	s, err := NewSampler(data, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Run(nil); err != nil {
		return nil, err
	}
	return s.Estimate(), nil
}

// FitBest runs `restarts` independent chains (seeds cfg.Seed,
// cfg.Seed+1, …) and returns the estimate of the chain with the best
// mean post-burn-in log-likelihood. Gibbs chains on this model
// occasionally settle in split/merge local optima; restart selection
// is the standard, exactness-preserving remedy.
func FitBest(data *Data, cfg Config, restarts int) (*Result, error) {
	if restarts < 1 {
		return nil, fmt.Errorf("core: need ≥1 restart, got %d", restarts)
	}
	var best *Result
	bestLL := 0.0
	for r := 0; r < restarts; r++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(r)
		res, err := Fit(data, c)
		if err != nil {
			return nil, fmt.Errorf("core: restart %d: %w", r, err)
		}
		ll := meanTail(res.LogLik)
		if best == nil || ll > bestLL {
			best, bestLL = res, ll
		}
	}
	return best, nil
}

// meanTail averages the last half of a trace.
func meanTail(trace []float64) float64 {
	if len(trace) == 0 {
		return 0
	}
	tail := trace[len(trace)/2:]
	s := 0.0
	for _, v := range tail {
		s += v
	}
	return s / float64(len(tail))
}

// Assign returns the topic of each recipe by maximum θ probability —
// the paper's rule for the "# Recipes" column of Table II(a).
func (r *Result) Assign() []int {
	out := make([]int, len(r.Theta))
	for d, row := range r.Theta {
		out[d] = stats.ArgMax(row)
	}
	return out
}

// DocsPerTopic counts recipes per topic under Assign.
func (r *Result) DocsPerTopic() []int {
	counts := make([]int, r.K)
	for _, k := range r.Assign() {
		counts[k]++
	}
	return counts
}

// TermProb pairs a vocabulary index with its probability in a topic.
type TermProb struct {
	ID   int
	Prob float64
}

// TopTerms returns topic k's n most probable terms in decreasing
// probability.
func (r *Result) TopTerms(k, n int) []TermProb {
	if k < 0 || k >= r.K {
		panic(fmt.Sprintf("core: topic %d out of range", k))
	}
	idx := stats.TopK(r.Phi[k], n)
	out := make([]TermProb, len(idx))
	for i, id := range idx {
		out[i] = TermProb{ID: id, Prob: r.Phi[k][id]}
	}
	return out
}

// ShallowClone returns a fresh Result header over the same parameter
// slices, with its own fold-in hook and kernel slot. Use it when the
// same fitted model must be installed twice (e.g. swapped back into a
// server that mutates FoldInHook on install); copying a Result by
// value is not supported — the kernel slot is not copyable.
func (r *Result) ShallowClone() *Result {
	return &Result{
		K: r.K, V: r.V, Phi: r.Phi, Theta: r.Theta, Y: r.Y, Gel: r.Gel, Emu: r.Emu,
		Alpha: r.Alpha, Gamma: r.Gamma,
		UseEmulsion: r.UseEmulsion, EmulsionWeight: r.EmulsionWeight,
		LogLik: r.LogLik,
	}
}

// GelGaussian returns topic k's gel component as a density, for KL
// linkage against empirical settings.
func (r *Result) GelGaussian(k int) (*stats.Gaussian, error) {
	return r.Gel[k].Gaussian()
}

// EmuGaussian returns topic k's emulsion component as a density.
func (r *Result) EmuGaussian(k int) (*stats.Gaussian, error) {
	return r.Emu[k].Gaussian()
}
