package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ErrDegenerateModel marks a Result whose shape cannot support fold-in
// inference — zero topics, missing components, or φ rows that disagree
// with the declared vocabulary. Match it with errors.Is. It replaces
// the index panic a degenerate model used to trigger.
var ErrDegenerateModel = errors.New("core: degenerate model")

// FoldInKernel is the per-model working set of fold-in inference,
// precomputed once per Result: the per-topic concentration Gaussians
// (with their Cholesky factors and log-determinants baked in) and the
// φ matrix transposed to vocab-major columns so the z kernel's inner
// topic loop reads one contiguous row per token. Chains drawn through
// the kernel are bit-identical to the original per-call derivation:
// the Gaussians are built by the same constructor, the φ columns are
// exact copies, and the pooled RNGs are reseeded to the same (seed,
// stream) pair a fresh RNG would use.
//
// A kernel is immutable after construction and safe for concurrent
// use; per-request scratch lives in an internal sync.Pool, so
// steady-state fold-ins allocate nothing beyond the caller's θ slice.
type FoldInKernel struct {
	res *Result // hook + identity; model parameters are copied below

	k, v           int
	gelDim, emuDim int
	alpha          float64
	useEmu         bool
	emuWeight      float64

	gelG []*stats.Gaussian
	emuG []*stats.Gaussian
	phiW [][]float64 // vocab-major φ columns: phiW[w][k] == Phi[k][w]

	pool sync.Pool // *foldScratch
}

// foldScratch is one in-flight fold-in's working memory.
type foldScratch struct {
	rng     *stats.RNG
	z       []int
	ndk     []int
	conc    []float64
	weights []float64
	logw    []float64
	catW    []float64
	gelDiff []float64
	emuDiff []float64
}

// BuildKernel validates the model shape and returns its fold-in
// kernel, constructing it on first call and reusing it afterwards
// (SwapOutput installs a fresh Result, which starts with no kernel).
// Shape defects are reported as errors matching ErrDegenerateModel
// instead of the panic the unchecked index used to raise.
func (r *Result) BuildKernel() (*FoldInKernel, error) {
	if kn := r.kernel.Load(); kn != nil {
		return kn, nil
	}
	kn, err := newFoldInKernel(r)
	if err != nil {
		return nil, err
	}
	// Two racing builders produce interchangeable kernels; keep the first.
	r.kernel.CompareAndSwap(nil, kn)
	return r.kernel.Load(), nil
}

func newFoldInKernel(r *Result) (*FoldInKernel, error) {
	if r.K < 1 {
		return nil, fmt.Errorf("%w: K=%d", ErrDegenerateModel, r.K)
	}
	if r.V < 0 {
		return nil, fmt.Errorf("%w: V=%d", ErrDegenerateModel, r.V)
	}
	if len(r.Gel) != r.K || len(r.Emu) != r.K {
		return nil, fmt.Errorf("%w: %d gel / %d emulsion components for K=%d",
			ErrDegenerateModel, len(r.Gel), len(r.Emu), r.K)
	}
	if len(r.Phi) != r.K {
		return nil, fmt.Errorf("%w: %d φ rows for K=%d", ErrDegenerateModel, len(r.Phi), r.K)
	}
	for k, row := range r.Phi {
		if len(row) != r.V {
			return nil, fmt.Errorf("%w: φ row %d has %d terms, vocabulary %d",
				ErrDegenerateModel, k, len(row), r.V)
		}
	}
	kn := &FoldInKernel{
		res:       r,
		k:         r.K,
		v:         r.V,
		gelDim:    len(r.Gel[0].Mean),
		emuDim:    len(r.Emu[0].Mean),
		alpha:     r.Alpha,
		useEmu:    r.UseEmulsion,
		emuWeight: r.EmulsionWeight,
		gelG:      make([]*stats.Gaussian, r.K),
		emuG:      make([]*stats.Gaussian, r.K),
	}
	for k := 0; k < r.K; k++ {
		if len(r.Gel[k].Mean) != kn.gelDim || len(r.Emu[k].Mean) != kn.emuDim {
			return nil, fmt.Errorf("%w: topic %d component dims %d/%d, topic 0 has %d/%d",
				ErrDegenerateModel, k, len(r.Gel[k].Mean), len(r.Emu[k].Mean), kn.gelDim, kn.emuDim)
		}
		g, err := r.GelGaussian(k)
		if err != nil {
			return nil, fmt.Errorf("core: topic %d gel: %w", k, err)
		}
		kn.gelG[k] = g
		e, err := r.EmuGaussian(k)
		if err != nil {
			return nil, fmt.Errorf("core: topic %d emulsion: %w", k, err)
		}
		kn.emuG[k] = e
	}
	flat := make([]float64, r.V*r.K)
	kn.phiW = make([][]float64, r.V)
	for w := 0; w < r.V; w++ {
		col := flat[w*r.K : (w+1)*r.K : (w+1)*r.K]
		for k := 0; k < r.K; k++ {
			col[k] = r.Phi[k][w]
		}
		kn.phiW[w] = col
	}
	kn.pool.New = func() any {
		return &foldScratch{
			rng:     stats.NewRNG(0, 0), // reseeded per request
			ndk:     make([]int, kn.k),
			conc:    make([]float64, kn.k),
			weights: make([]float64, kn.k),
			logw:    make([]float64, kn.k),
			catW:    make([]float64, kn.k),
			gelDiff: make([]float64, kn.gelDim),
			emuDiff: make([]float64, kn.emuDim),
		}
	}
	return kn, nil
}

// K returns the model's topic count (the length FoldInTo expects of
// its destination θ slice).
func (kn *FoldInKernel) K() int { return kn.k }

// FoldInTo runs fold-in inference for one recipe, writing the averaged
// θ of the chain's second half into theta (length K). It is FoldInCtx
// with the allocation moved to the caller: steady-state calls touch
// only pooled scratch. Chains are bit-identical to FoldInCtx for the
// same inputs.
func (kn *FoldInKernel) FoldInTo(ctx context.Context, theta []float64, words []int, gel, emu []float64, iters int, seed uint64) error {
	if iters <= 0 {
		return fmt.Errorf("core: fold-in needs positive iterations")
	}
	if len(theta) != kn.k {
		return fmt.Errorf("core: fold-in θ destination has length %d, model has K=%d", len(theta), kn.k)
	}
	if len(gel) != kn.gelDim || len(emu) != kn.emuDim {
		return fmt.Errorf("core: fold-in feature dims %d/%d, model %d/%d",
			len(gel), len(emu), kn.gelDim, kn.emuDim)
	}
	for _, w := range words {
		if w < 0 || w >= kn.v {
			return fmt.Errorf("core: fold-in word %d outside [0,%d)", w, kn.v)
		}
	}

	sc := kn.pool.Get().(*foldScratch)
	defer kn.pool.Put(sc)

	// Concentration log-likelihood per topic is constant across sweeps.
	conc := sc.conc
	for k := 0; k < kn.k; k++ {
		conc[k] = kn.gelG[k].LogPdfScratch(gel, sc.gelDiff)
		if kn.useEmu {
			conc[k] += kn.emuWeight * kn.emuG[k].LogPdfScratch(emu, sc.emuDiff)
		}
	}

	rng := sc.rng
	rng.Reseed(seed, 0xF01D)
	if cap(sc.z) < len(words) {
		sc.z = make([]int, len(words))
	}
	z := sc.z[:len(words)]
	ndk := sc.ndk
	for k := range ndk {
		ndk[k] = 0
	}
	for n := range z {
		z[n] = rng.IntN(kn.k)
		ndk[z[n]]++
	}
	y := rng.CategoricalLogScratch(conc, sc.catW)

	start := time.Now()
	for k := range theta {
		theta[k] = 0
	}
	kept := 0
	weights := sc.weights
	logw := sc.logw
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			if hook := kn.res.FoldInHook; hook != nil {
				hook(FoldInStats{Sweeps: it, Words: len(words), Total: time.Since(start), Canceled: true})
			}
			return &CanceledError{Sweeps: it, Cause: err}
		}
		for n, w := range words {
			ndk[z[n]]--
			row := kn.phiW[w]
			for k := 0; k < kn.k; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				weights[k] = (float64(ndk[k]) + m + kn.alpha) * row[k]
			}
			z[n] = rng.Categorical(weights)
			ndk[z[n]]++
		}
		for k := 0; k < kn.k; k++ {
			logw[k] = math.Log(float64(ndk[k])+kn.alpha) + conc[k]
		}
		y = rng.CategoricalLogScratch(logw, sc.catW)

		if it >= iters/2 {
			kept++
			denom := float64(len(words)) + 1 + kn.alpha*float64(kn.k)
			for k := 0; k < kn.k; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				theta[k] += (float64(ndk[k]) + m + kn.alpha) / denom
			}
		}
	}
	for k := range theta {
		theta[k] /= float64(kept)
	}
	if hook := kn.res.FoldInHook; hook != nil {
		hook(FoldInStats{Sweeps: iters, Words: len(words), Total: time.Since(start)})
	}
	return nil
}

// kernelCache is the Result-side slot BuildKernel fills. It lives in
// its own type so Result stays a plain data struct for JSON round
// trips; the slot is deliberately not serialized.
type kernelCache struct {
	p atomic.Pointer[FoldInKernel]
}

func (c *kernelCache) Load() *FoldInKernel { return c.p.Load() }
func (c *kernelCache) CompareAndSwap(old, new *FoldInKernel) bool {
	return c.p.CompareAndSwap(old, new)
}
