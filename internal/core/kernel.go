package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ErrDegenerateModel marks a Result whose shape cannot support fold-in
// inference — zero topics, missing components, or φ rows that disagree
// with the declared vocabulary. Match it with errors.Is. It replaces
// the index panic a degenerate model used to trigger.
var ErrDegenerateModel = errors.New("core: degenerate model")

// KernelOptions selects an opt-in fold-in scoring variant. The zero
// value is the default kernel: float64 scoring, inverse-CDF
// categorical draws, chains byte-identical to the seed implementation.
// Both options change the draw stream or the rounding, so they are
// explicitly not byte-identical — they are distribution-equivalent
// (alias) or tolerance-equivalent (float32), covered by the frequency
// and fold-in equivalence suites.
type KernelOptions struct {
	// Alias draws the token-topic z with a per-word Vose alias table
	// over the static α·φ_w part of the weights plus an exact sparse
	// correction for the document-dependent part, and the document
	// topic y with the Gumbel-max trick. The model is frozen during
	// fold-in, so the tables never go stale; draws are exactly
	// distributed but consume a different number of uniforms.
	Alias bool
	// Float32 scores φ and the concentration Gaussians in float32 with
	// float64 accumulators. Serving-only: fitting has no float32 path.
	Float32 bool
}

// slot maps the options to a kernel-cache slot index.
func (o KernelOptions) slot() int {
	s := 0
	if o.Alias {
		s |= 1
	}
	if o.Float32 {
		s |= 2
	}
	return s
}

// FoldInKernel is the per-model working set of fold-in inference,
// precomputed once per Result: the per-topic concentration Gaussians
// in struct-of-arrays banks (Cholesky log-determinants baked in) and
// the φ matrix transposed to vocab-major columns so the z kernel's
// inner topic loop reads one contiguous K-length row per token. Chains
// drawn through the default kernel are bit-identical to the original
// per-call derivation: the Gaussians are built by the same
// constructor, the φ columns are exact copies, the log-count table
// caches the exact values math.Log would return, and the pooled RNGs
// are reseeded to the same (seed, stream) pair a fresh RNG would use.
//
// A kernel is immutable after construction and safe for concurrent
// use; per-request scratch lives in an internal sync.Pool, so
// steady-state fold-ins allocate nothing beyond the caller's θ slice.
type FoldInKernel struct {
	res *Result // hook + identity; model parameters are copied below

	opts KernelOptions

	k, v           int
	gelDim, emuDim int
	alpha          float64
	useEmu         bool
	emuWeight      float64

	gelG []*stats.Gaussian
	emuG []*stats.Gaussian
	phiW [][]float64 // vocab-major φ columns: phiW[w][k] == Phi[k][w]

	gelBank *stats.GaussianBank
	emuBank *stats.GaussianBank

	// Alias-mode state: one table per word over the static α·φ_w[k]
	// weights (nil without the option).
	aliasW []*stats.AliasTable

	// Float32-mode state (nil without the option).
	phiW32    [][]float32
	gelBank32 *stats.GaussianBankF32
	emuBank32 *stats.GaussianBankF32

	pool sync.Pool // *foldScratch
}

// foldScratch is one in-flight fold-in's working memory.
type foldScratch struct {
	rng     *stats.RNG
	z       []int
	ndk     []int
	conc    []float64
	weights []float64
	logw    []float64
	catW    []float64
	gelDiff []float64
	emuDiff []float64

	// logTab[c] caches math.Log(float64(c)+α) for c ∈ [0, len(words)]:
	// the y kernel looks topic counts up instead of recomputing the
	// logarithm K times per sweep. Values are bit-identical by
	// construction (the cached expression is the original one).
	logTab []float64

	dynW   []float64 // alias mode: document-dependent weight part
	gelD32 []float32 // float32 mode: centering scratch
	emuD32 []float32

	// yCache memoizes the y draw's exponentiated weight vector per
	// topic-count state. The y weights are a pure function of the ndk
	// vector within one request (conc and the log table are fixed), and
	// a short document revisits very few count states across its
	// sweeps, so most draws skip the K exponentials entirely. Hits are
	// bit-identical: the cached exps came from the same max-scan +
	// exp sequence an uncached draw would run, and the inverse-CDF draw
	// still consumes exactly one uniform. Slots are invalidated at
	// request start (conc changes per recipe).
	yCache [yCacheSlots]yCacheEntry
}

// yCacheSlots is the direct-mapped y-state cache size. Must be a power
// of two; 16 covers the one-hot states of typical short requests with
// few collisions.
const yCacheSlots = 16

type yCacheEntry struct {
	valid bool
	key   []int     // ndk state, length K
	w     []float64 // exp(logw − max) for that state, length K
}

// BuildKernel validates the model shape and returns its default
// fold-in kernel, constructing it on first call and reusing it
// afterwards (SwapOutput installs a fresh Result, which starts with no
// kernel). Shape defects are reported as errors matching
// ErrDegenerateModel instead of the panic the unchecked index used to
// raise.
func (r *Result) BuildKernel() (*FoldInKernel, error) {
	return r.BuildKernelOpts(KernelOptions{})
}

// BuildKernelOpts is BuildKernel for an opt-in scoring variant. Each
// option combination caches its own kernel on the Result, so mixed
// workloads (default fitting-side fold-ins next to a float32 serving
// pool) don't rebuild per call.
func (r *Result) BuildKernelOpts(opts KernelOptions) (*FoldInKernel, error) {
	slot := opts.slot()
	if kn := r.kernel.Load(slot); kn != nil {
		return kn, nil
	}
	kn, err := newFoldInKernel(r, opts)
	if err != nil {
		return nil, err
	}
	// Two racing builders produce interchangeable kernels; keep the first.
	r.kernel.CompareAndSwap(slot, nil, kn)
	return r.kernel.Load(slot), nil
}

func newFoldInKernel(r *Result, opts KernelOptions) (*FoldInKernel, error) {
	if r.K < 1 {
		return nil, fmt.Errorf("%w: K=%d", ErrDegenerateModel, r.K)
	}
	if r.V < 0 {
		return nil, fmt.Errorf("%w: V=%d", ErrDegenerateModel, r.V)
	}
	if len(r.Gel) != r.K || len(r.Emu) != r.K {
		return nil, fmt.Errorf("%w: %d gel / %d emulsion components for K=%d",
			ErrDegenerateModel, len(r.Gel), len(r.Emu), r.K)
	}
	if len(r.Phi) != r.K {
		return nil, fmt.Errorf("%w: %d φ rows for K=%d", ErrDegenerateModel, len(r.Phi), r.K)
	}
	for k, row := range r.Phi {
		if len(row) != r.V {
			return nil, fmt.Errorf("%w: φ row %d has %d terms, vocabulary %d",
				ErrDegenerateModel, k, len(row), r.V)
		}
	}
	kn := &FoldInKernel{
		res:       r,
		opts:      opts,
		k:         r.K,
		v:         r.V,
		gelDim:    len(r.Gel[0].Mean),
		emuDim:    len(r.Emu[0].Mean),
		alpha:     r.Alpha,
		useEmu:    r.UseEmulsion,
		emuWeight: r.EmulsionWeight,
		gelG:      make([]*stats.Gaussian, r.K),
		emuG:      make([]*stats.Gaussian, r.K),
	}
	for k := 0; k < r.K; k++ {
		if len(r.Gel[k].Mean) != kn.gelDim || len(r.Emu[k].Mean) != kn.emuDim {
			return nil, fmt.Errorf("%w: topic %d component dims %d/%d, topic 0 has %d/%d",
				ErrDegenerateModel, k, len(r.Gel[k].Mean), len(r.Emu[k].Mean), kn.gelDim, kn.emuDim)
		}
		g, err := r.GelGaussian(k)
		if err != nil {
			return nil, fmt.Errorf("core: topic %d gel: %w", k, err)
		}
		kn.gelG[k] = g
		e, err := r.EmuGaussian(k)
		if err != nil {
			return nil, fmt.Errorf("core: topic %d emulsion: %w", k, err)
		}
		kn.emuG[k] = e
	}
	kn.gelBank = stats.NewGaussianBank(r.K, kn.gelDim)
	kn.emuBank = stats.NewGaussianBank(r.K, kn.emuDim)
	if err := kn.gelBank.SetFromGaussians(kn.gelG); err != nil {
		return nil, fmt.Errorf("core: gel bank: %w", err)
	}
	if err := kn.emuBank.SetFromGaussians(kn.emuG); err != nil {
		return nil, fmt.Errorf("core: emulsion bank: %w", err)
	}
	flat := make([]float64, r.V*r.K)
	kn.phiW = make([][]float64, r.V)
	for w := 0; w < r.V; w++ {
		col := flat[w*r.K : (w+1)*r.K : (w+1)*r.K]
		for k := 0; k < r.K; k++ {
			col[k] = r.Phi[k][w]
		}
		kn.phiW[w] = col
	}
	if opts.Alias {
		kn.aliasW = make([]*stats.AliasTable, r.V)
		static := make([]float64, r.K)
		for w := 0; w < r.V; w++ {
			for k := 0; k < r.K; k++ {
				static[k] = kn.alpha * kn.phiW[w][k]
			}
			t, err := stats.NewAliasTable(static)
			if err != nil {
				return nil, fmt.Errorf("core: alias table for word %d: %w", w, err)
			}
			kn.aliasW[w] = t
		}
	}
	if opts.Float32 {
		flat32 := make([]float32, r.V*r.K)
		kn.phiW32 = make([][]float32, r.V)
		for w := 0; w < r.V; w++ {
			col := flat32[w*r.K : (w+1)*r.K : (w+1)*r.K]
			for k := 0; k < r.K; k++ {
				col[k] = float32(kn.phiW[w][k])
			}
			kn.phiW32[w] = col
		}
		kn.gelBank32 = stats.NewGaussianBankF32(r.K, kn.gelDim)
		kn.emuBank32 = stats.NewGaussianBankF32(r.K, kn.emuDim)
		if err := kn.gelBank32.SetFromGaussians(kn.gelG); err != nil {
			return nil, fmt.Errorf("core: gel f32 bank: %w", err)
		}
		if err := kn.emuBank32.SetFromGaussians(kn.emuG); err != nil {
			return nil, fmt.Errorf("core: emulsion f32 bank: %w", err)
		}
	}
	kn.pool.New = func() any {
		sc := &foldScratch{
			rng:     stats.NewRNG(0, 0), // reseeded per request
			ndk:     make([]int, kn.k),
			conc:    make([]float64, kn.k),
			weights: make([]float64, kn.k),
			logw:    make([]float64, kn.k),
			catW:    make([]float64, kn.k),
			gelDiff: make([]float64, kn.gelDim),
			emuDiff: make([]float64, kn.emuDim),
		}
		if kn.opts.Alias {
			sc.dynW = make([]float64, kn.k)
		}
		if kn.opts.Float32 {
			sc.gelD32 = make([]float32, kn.gelDim)
			sc.emuD32 = make([]float32, kn.emuDim)
		}
		for i := range sc.yCache {
			sc.yCache[i].key = make([]int, kn.k)
			sc.yCache[i].w = make([]float64, kn.k)
		}
		return sc
	}
	return kn, nil
}

// K returns the model's topic count (the length FoldInTo expects of
// its destination θ slice).
func (kn *FoldInKernel) K() int { return kn.k }

// Options returns the scoring variant the kernel was built with.
func (kn *FoldInKernel) Options() KernelOptions { return kn.opts }

// FoldInTo runs fold-in inference for one recipe, writing the averaged
// θ of the chain's second half into theta (length K). It is FoldInCtx
// with the allocation moved to the caller: steady-state calls touch
// only pooled scratch. Default-kernel chains are bit-identical to
// FoldInCtx for the same inputs; alias and float32 kernels draw their
// own (deterministic, seeded) chains.
func (kn *FoldInKernel) FoldInTo(ctx context.Context, theta []float64, words []int, gel, emu []float64, iters int, seed uint64) error {
	if iters <= 0 {
		return fmt.Errorf("core: fold-in needs positive iterations")
	}
	if len(theta) != kn.k {
		return fmt.Errorf("core: fold-in θ destination has length %d, model has K=%d", len(theta), kn.k)
	}
	if len(gel) != kn.gelDim || len(emu) != kn.emuDim {
		return fmt.Errorf("core: fold-in feature dims %d/%d, model %d/%d",
			len(gel), len(emu), kn.gelDim, kn.emuDim)
	}
	for _, w := range words {
		if w < 0 || w >= kn.v {
			return fmt.Errorf("core: fold-in word %d outside [0,%d)", w, kn.v)
		}
	}

	sc := kn.pool.Get().(*foldScratch)
	defer kn.pool.Put(sc)

	// Concentration log-likelihood per topic is constant across sweeps.
	conc := sc.conc
	if kn.opts.Float32 {
		for k := range conc {
			conc[k] = 0
		}
		kn.gelBank32.AddLogPdf(conc, gel, 1, sc.gelD32)
		if kn.useEmu {
			kn.emuBank32.AddLogPdf(conc, emu, kn.emuWeight, sc.emuD32)
		}
	} else {
		kn.gelBank.LogPdfInto(conc, gel, sc.gelDiff)
		if kn.useEmu {
			kn.emuBank.AddLogPdf(conc, emu, kn.emuWeight, sc.emuDiff)
		}
	}

	// The y kernel's log(N_dk+α) terms range over counts 0…len(words);
	// cache every possible value once per request instead of taking K
	// logarithms per sweep. The cached expression is exactly the inline
	// one, so lookups are bit-identical.
	if cap(sc.logTab) < len(words)+1 {
		sc.logTab = make([]float64, len(words)+1)
	}
	logTab := sc.logTab[:len(words)+1]
	for c := range logTab {
		logTab[c] = math.Log(float64(c) + kn.alpha)
	}

	rng := sc.rng
	rng.Reseed(seed, 0xF01D)
	if cap(sc.z) < len(words) {
		sc.z = make([]int, len(words))
	}
	z := sc.z[:len(words)]
	ndk := sc.ndk
	for k := range ndk {
		ndk[k] = 0
	}
	for n := range z {
		z[n] = rng.IntN(kn.k)
		ndk[z[n]]++
	}
	y := rng.CategoricalLogScratch(conc, sc.catW)

	start := time.Now()
	for k := range theta {
		theta[k] = 0
	}
	kept := 0
	var err error
	switch {
	case kn.opts.Alias:
		kept, y, err = kn.sweepAlias(ctx, theta, words, z, ndk, conc, logTab, y, iters, sc, start)
	default:
		kept, y, err = kn.sweepDefault(ctx, theta, words, z, ndk, conc, logTab, y, iters, sc, start)
	}
	_ = y
	if err != nil {
		return err
	}
	for k := range theta {
		theta[k] /= float64(kept)
	}
	if hook := kn.res.FoldInHook; hook != nil {
		hook(FoldInStats{Sweeps: iters, Words: len(words), Total: time.Since(start)})
	}
	return nil
}

// sweepDefault is the seed-equivalent Gibbs loop: inverse-CDF
// categorical draws, float64 (or float32, when the option is set)
// scoring. On the default float64 kernel every weight, draw and θ
// contribution is bit-identical to the original implementation — the
// loop only hoists the per-topic branch on y into a single fixup,
// looks the y kernel's logarithms up from the per-request table, and
// uses the fused draw variants (all individually bit-exact
// transformations).
func (kn *FoldInKernel) sweepDefault(ctx context.Context, theta []float64, words []int, z, ndk []int, conc, logTab []float64, y, iters int, sc *foldScratch, start time.Time) (int, int, error) {
	kk := kn.k
	alpha := kn.alpha
	weights := sc.weights[:kk]
	logw := sc.logw[:kk]
	ndk = ndk[:kk]
	conc = conc[:kk]
	kept := 0
	half := iters / 2
	denom := float64(len(words)) + 1 + alpha*float64(kk)
	rng := sc.rng
	f32 := kn.opts.Float32
	for i := range sc.yCache {
		sc.yCache[i].valid = false
	}
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			if hook := kn.res.FoldInHook; hook != nil {
				hook(FoldInStats{Sweeps: it, Words: len(words), Total: time.Since(start), Canceled: true})
			}
			return 0, y, &CanceledError{Sweeps: it, Cause: err}
		}
		if f32 {
			for n, w := range words {
				ndk[z[n]]--
				row := kn.phiW32[w][:kk]
				a32 := float32(alpha)
				for k := 0; k < kk; k++ {
					weights[k] = float64((float32(ndk[k]) + a32) * row[k])
				}
				weights[y] = float64((float32(ndk[y]) + 1 + a32) * row[y])
				zn := rng.CategoricalFast(weights)
				z[n] = zn
				ndk[zn]++
			}
		} else {
			for n, w := range words {
				ndk[z[n]]--
				row := kn.phiW[w][:kk]
				for k := 0; k < kk; k++ {
					weights[k] = (float64(ndk[k]) + alpha) * row[k]
				}
				// The y-coupled topic carries the +1 recipe-topic pull;
				// fixing it up once replaces a branch per topic. For k≠y
				// the original addend was an exact +0.
				weights[y] = (float64(ndk[y]) + 1 + alpha) * row[y]
				zn := rng.CategoricalFast(weights)
				z[n] = zn
				ndk[zn]++
			}
		}
		// y draw, memoized per ndk state: an inverse-CDF draw over the
		// cached exp weights is bit-identical to recomputing them (and
		// consumes the same single uniform).
		h := uint(0)
		for k := 0; k < kk; k++ {
			h = h*131 + uint(ndk[k])
		}
		e := &sc.yCache[h&(yCacheSlots-1)]
		if e.valid && intsEqual(e.key, ndk) {
			y = rng.CategoricalFast(e.w)
		} else {
			for k := 0; k < kk; k++ {
				logw[k] = logTab[ndk[k]] + conc[k]
			}
			y = rng.CategoricalLogFused(logw, e.w)
			copy(e.key, ndk)
			e.valid = true
		}

		if it >= half {
			kept++
			for k := 0; k < kk; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				theta[k] += (float64(ndk[k]) + m + alpha) / denom
			}
		}
	}
	return kept, y, nil
}

// intsEqual reports element-wise equality of equal-length int slices.
func intsEqual(a, b []int) bool {
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// sweepAlias is the opt-in alias/Gumbel Gibbs loop. The z weights
// decompose as (N_dk + M_dk)·φ_w[k] + α·φ_w[k]: the document-dependent
// first part is summed exactly per step, the static second part is the
// per-word alias table built at kernel construction — O(1) to draw
// from however large K grows. The model is frozen, so the decomposed
// draw is exactly distributed (no stale-weight approximation); it
// consumes uniforms differently from the default path, which is why
// the whole mode is opt-in. y uses the Gumbel-max trick.
func (kn *FoldInKernel) sweepAlias(ctx context.Context, theta []float64, words []int, z, ndk []int, conc, logTab []float64, y, iters int, sc *foldScratch, start time.Time) (int, int, error) {
	kk := kn.k
	alpha := kn.alpha
	logw := sc.logw[:kk]
	dynW := sc.dynW[:kk]
	ndk = ndk[:kk]
	conc = conc[:kk]
	kept := 0
	half := iters / 2
	denom := float64(len(words)) + 1 + alpha*float64(kk)
	rng := sc.rng
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			if hook := kn.res.FoldInHook; hook != nil {
				hook(FoldInStats{Sweeps: it, Words: len(words), Total: time.Since(start), Canceled: true})
			}
			return 0, y, &CanceledError{Sweeps: it, Cause: err}
		}
		for n, w := range words {
			ndk[z[n]]--
			row := kn.phiW[w][:kk]
			sdyn := 0.0
			for k := 0; k < kk; k++ {
				dw := float64(ndk[k]) * row[k]
				dynW[k] = dw
				sdyn += dw
			}
			dynW[y] += row[y]
			sdyn += row[y]
			tab := kn.aliasW[w]
			var zn int
			if u := rng.Float64() * (sdyn + tab.Total()); u < sdyn {
				acc := 0.0
				zn = kk - 1
				for k := 0; k < kk; k++ {
					acc += dynW[k]
					if u < acc {
						zn = k
						break
					}
				}
			} else {
				zn = rng.AliasDraw(tab)
			}
			z[n] = zn
			ndk[zn]++
		}
		for k := 0; k < kk; k++ {
			logw[k] = logTab[ndk[k]] + conc[k]
		}
		y = rng.GumbelMaxLog(logw)

		if it >= half {
			kept++
			for k := 0; k < kk; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				theta[k] += (float64(ndk[k]) + m + alpha) / denom
			}
		}
	}
	return kept, y, nil
}

// kernelCache is the Result-side slot set BuildKernelOpts fills, one
// slot per option combination. It lives in its own type so Result
// stays a plain data struct for JSON round trips; the slots are
// deliberately not serialized.
type kernelCache struct {
	p [4]atomic.Pointer[FoldInKernel]
}

func (c *kernelCache) Load(slot int) *FoldInKernel { return c.p[slot].Load() }
func (c *kernelCache) CompareAndSwap(slot int, old, new *FoldInKernel) bool {
	return c.p[slot].CompareAndSwap(old, new)
}
