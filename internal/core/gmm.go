package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// GMMConfig controls the concentrations-only baseline.
type GMMConfig struct {
	K          int
	Alpha      float64 // symmetric Dirichlet on mixture weights
	Prior      *stats.NormalWishart
	Iterations int
	Seed       uint64
}

// GMMResult is a fitted Gaussian mixture over concentration features.
type GMMResult struct {
	K          int
	Weights    []float64
	Components []Component
	Y          []int
	LogLik     []float64
}

// FitGMM runs collapsed-weight Gibbs sampling for a Bayesian Gaussian
// mixture over the feature vectors — the concentrations-only baseline:
// it clusters recipes by gel dose but carries no texture terms, so its
// clusters cannot be read as sensory vocabulary.
func FitGMM(xs [][]float64, cfg GMMConfig) (*GMMResult, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("core: gmm: empty input")
	}
	if cfg.K <= 1 || cfg.Alpha <= 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("core: gmm: invalid config %+v", cfg)
	}
	dim := len(xs[0])
	for i, x := range xs {
		if len(x) != dim {
			return nil, fmt.Errorf("core: gmm: row %d has dim %d, want %d", i, len(x), dim)
		}
	}
	if cfg.Prior == nil {
		p, err := empiricalPrior(xs, dim)
		if err != nil {
			return nil, err
		}
		cfg.Prior = p
	}
	if cfg.Prior.Dim() != dim {
		return nil, fmt.Errorf("core: gmm: prior dim %d, data dim %d", cfg.Prior.Dim(), dim)
	}

	rng := stats.NewRNG(cfg.Seed, 0x6333)
	n := len(xs)
	y := make([]int, n)
	counts := make([]int, cfg.K)
	for i := range y {
		y[i] = rng.IntN(cfg.K)
		counts[y[i]]++
	}
	comps := make([]component, cfg.K)
	resample := func() error {
		members := make([][]int, cfg.K)
		for i, k := range y {
			members[k] = append(members[k], i)
		}
		for k := 0; k < cfg.K; k++ {
			data := make([][]float64, len(members[k]))
			for i, m := range members[k] {
				data[i] = xs[m]
			}
			mu, lam := cfg.Prior.Posterior(data).Sample(rng)
			c, err := newComponent(mu, lam)
			if err != nil {
				return fmt.Errorf("core: gmm component %d: %w", k, err)
			}
			comps[k] = c
		}
		return nil
	}
	if err := resample(); err != nil {
		return nil, err
	}

	var lls []float64
	logw := make([]float64, cfg.K)
	for it := 0; it < cfg.Iterations; it++ {
		for i, x := range xs {
			counts[y[i]]--
			for k := 0; k < cfg.K; k++ {
				logw[k] = math.Log(float64(counts[k])+cfg.Alpha) + comps[k].gauss.LogPdf(x)
			}
			k := rng.CategoricalLog(logw)
			y[i] = k
			counts[k]++
		}
		if err := resample(); err != nil {
			return nil, err
		}
		ll := 0.0
		for i, x := range xs {
			ll += comps[y[i]].gauss.LogPdf(x)
		}
		lls = append(lls, ll)
	}

	res := &GMMResult{K: cfg.K, Y: append([]int(nil), y...), LogLik: lls}
	res.Weights = make([]float64, cfg.K)
	for k := 0; k < cfg.K; k++ {
		res.Weights[k] = (float64(counts[k]) + cfg.Alpha) / (float64(n) + cfg.Alpha*float64(cfg.K))
	}
	res.Components = make([]Component, cfg.K)
	for k := 0; k < cfg.K; k++ {
		res.Components[k] = Component{
			Mean:      stats.CloneVec(comps[k].gauss.Mean),
			Precision: comps[k].gauss.Precision.Clone(),
		}
	}
	return res, nil
}
