package core

import "repro/internal/stats"

// updateAlpha performs one Minka fixed-point update of the symmetric
// Dirichlet concentration α given the current topic-count statistics
// (Minka 2000, "Estimating a Dirichlet distribution", eq. 55):
//
//	α ← α · Σ_d Σ_k [ψ(n_dk + α) − ψ(α)] / (K · Σ_d [ψ(n_d + Kα) − ψ(Kα)])
//
// where n_dk includes the concentration observation (M_dk) exactly as
// in the sampler's kernels, and n_d = N_d + 1 accordingly.
func (s *Sampler) updateAlpha() {
	k := float64(s.cfg.K)
	alpha := s.cfg.Alpha
	num, den := 0.0, 0.0
	for d := range s.data.Words {
		for t := 0; t < s.cfg.K; t++ {
			n := float64(s.ndk[d][t])
			if s.Y[d] == t {
				n++
			}
			if n > 0 {
				num += stats.Digamma(n+alpha) - stats.Digamma(alpha)
			}
		}
		nd := float64(s.nd[d]) + 1
		den += stats.Digamma(nd+k*alpha) - stats.Digamma(k*alpha)
	}
	if den <= 0 || num <= 0 {
		return
	}
	next := alpha * num / (k * den)
	// Clamp to a sane range; the fixed point can oscillate early in the
	// chain when counts are still random.
	if next < 1e-3 {
		next = 1e-3
	}
	if next > 10 {
		next = 10
	}
	s.cfg.Alpha = next
}

// Alpha returns the sampler's current Dirichlet concentration —
// constant unless LearnAlpha is set.
func (s *Sampler) Alpha() float64 { return s.cfg.Alpha }
