package core

import (
	"math"

	"repro/internal/stats"
)

// initYKMeans seeds the per-recipe concentration topics with
// k-means++ on the gel feature vectors followed by a few Lloyd
// rounds. Random initialization tends to leave far-apart small gel
// bands merged under one wide Gaussian while other topics sit empty (a
// label vacuum the Gibbs chain escapes only slowly); seeding centers
// across the occupied gel bands removes that failure mode. The chain
// still mixes from there, so the stationary distribution is unchanged.
func initYKMeans(xs [][]float64, k int, rng *stats.RNG) []int {
	n := len(xs)
	centers := make([][]float64, 0, k)
	// k-means++ seeding.
	centers = append(centers, stats.CloneVec(xs[rng.IntN(n)]))
	d2 := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i, x := range xs {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(x, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// Fewer distinct points than centers; duplicate an existing one.
			centers = append(centers, stats.CloneVec(xs[rng.IntN(n)]))
			continue
		}
		centers = append(centers, stats.CloneVec(xs[rng.Categorical(d2)]))
	}
	assign := make([]int, n)
	// Lloyd refinement.
	for round := 0; round < 8; round++ {
		changed := false
		for i, x := range xs {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(x, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, x := range xs {
			c := assign[i]
			counts[c]++
			for j, v := range x {
				centers[c][j] += v
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
	}
	return assign
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
