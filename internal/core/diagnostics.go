package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// GewekeZ is a convergence diagnostic on a log-likelihood trace: the
// z-score of the difference between the mean of the first `early`
// fraction and the last `late` fraction of the chain (Geweke 1992,
// with plain variance in place of the spectral estimate — adequate for
// the nearly-uncorrelated sweep-level traces produced here). |z| below
// about 2 is consistent with convergence.
func GewekeZ(trace []float64, early, late float64) (float64, error) {
	n := len(trace)
	if n < 10 {
		return 0, fmt.Errorf("core: need ≥10 trace points, have %d", n)
	}
	if early <= 0 || late <= 0 || early+late > 1 {
		return 0, fmt.Errorf("core: invalid window fractions %g/%g", early, late)
	}
	a := trace[:int(float64(n)*early)]
	b := trace[n-int(float64(n)*late):]
	if len(a) < 2 || len(b) < 2 {
		return 0, fmt.Errorf("core: windows too small")
	}
	va := stats.Variance(a) / float64(len(a))
	vb := stats.Variance(b) / float64(len(b))
	if va+vb == 0 {
		return 0, nil // constant trace: trivially converged
	}
	return (stats.Mean(a) - stats.Mean(b)) / math.Sqrt(va+vb), nil
}

// ESS estimates the effective sample size of a trace via the
// initial-positive-sequence autocorrelation sum.
func ESS(trace []float64) float64 {
	n := len(trace)
	if n < 4 {
		return float64(n)
	}
	mean := stats.Mean(trace)
	var c0 float64
	for _, x := range trace {
		d := x - mean
		c0 += d * d
	}
	c0 /= float64(n)
	if c0 == 0 {
		return float64(n)
	}
	sum := 0.0
	for lag := 1; lag < n/2; lag++ {
		var ck float64
		for i := 0; i+lag < n; i++ {
			ck += (trace[i] - mean) * (trace[i+lag] - mean)
		}
		ck /= float64(n)
		rho := ck / c0
		if rho <= 0.05 {
			break
		}
		sum += rho
	}
	return float64(n) / (1 + 2*sum)
}

// SplitData partitions the documents into train and test sets.
func SplitData(data *Data, testFrac float64, seed uint64) (train, test *Data, err error) {
	if _, _, err := data.Validate(); err != nil {
		return nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("core: test fraction %g outside (0,1)", testFrac)
	}
	n := data.NumDocs()
	nTest := int(float64(n) * testFrac)
	if nTest == 0 || nTest == n {
		return nil, nil, fmt.Errorf("core: split leaves an empty side (%d/%d)", nTest, n)
	}
	perm := stats.NewRNG(seed, 0x5A11).Perm(n)
	train = &Data{V: data.V}
	test = &Data{V: data.V}
	for i, idx := range perm {
		dst := train
		if i < nTest {
			dst = test
		}
		dst.Words = append(dst.Words, data.Words[idx])
		dst.Gel = append(dst.Gel, data.Gel[idx])
		dst.Emu = append(dst.Emu, data.Emu[idx])
	}
	return train, test, nil
}

// HeldOut is the held-out evaluation of a fitted model on unseen
// documents.
type HeldOut struct {
	// Perplexity is the per-token word perplexity under the folded-in
	// mixtures.
	Perplexity float64
	// ConcLogLik is the mean per-document log-likelihood of the gel (and,
	// if the model uses them, emulsion) features under the best topic of
	// the folded-in mixture.
	ConcLogLik float64
	Docs       int
	Tokens     int
}

// Evaluate folds each test document into the fitted model and scores
// the held-out words and concentrations — the quantity to compare when
// selecting K.
func (r *Result) Evaluate(test *Data, foldIters int, seed uint64) (HeldOut, error) {
	if _, _, err := test.Validate(); err != nil {
		return HeldOut{}, err
	}
	var out HeldOut
	ll := 0.0
	concLL := 0.0
	for d := range test.Words {
		theta, err := r.FoldIn(test.Words[d], test.Gel[d], test.Emu[d], foldIters, seed+uint64(d))
		if err != nil {
			return HeldOut{}, err
		}
		for _, w := range test.Words[d] {
			p := 0.0
			for k := 0; k < r.K; k++ {
				p += theta[k] * r.Phi[k][w]
			}
			if p <= 0 {
				return HeldOut{}, fmt.Errorf("core: zero held-out probability for word %d", w)
			}
			ll += math.Log(p)
			out.Tokens++
		}
		k := stats.ArgMax(theta)
		g, err := r.GelGaussian(k)
		if err != nil {
			return HeldOut{}, err
		}
		docLL := g.LogPdf(test.Gel[d])
		if r.UseEmulsion {
			e, err := r.EmuGaussian(k)
			if err != nil {
				return HeldOut{}, err
			}
			docLL += r.EmulsionWeight * e.LogPdf(test.Emu[d])
		}
		concLL += docLL
		out.Docs++
	}
	if out.Tokens > 0 {
		out.Perplexity = math.Exp(-ll / float64(out.Tokens))
	}
	if out.Docs > 0 {
		out.ConcLogLik = concLL / float64(out.Docs)
	}
	return out, nil
}
