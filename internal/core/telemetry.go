package core

import "time"

// SweepStats is the telemetry of one completed Gibbs sweep: where the
// wall time went (z phase, y phase, component resampling), how the
// chain is doing (joint log-likelihood), and how the topics are
// occupied (a chain collapsing onto two topics shows up here hundreds
// of sweeps before it shows in the final tables).
type SweepStats struct {
	Sweep int // 0-based sweep index

	Total      time.Duration // whole sweep including log-likelihood
	ZPhase     time.Duration // token-topic resampling
	YPhase     time.Duration // concentration-topic resampling
	Components time.Duration // Normal-Wishart component redraws (zero in collapsed mode)

	LogLik float64

	OccupiedTopics int     // topics holding at least one recipe (y occupancy)
	MaxTopicShare  float64 // largest fraction of recipes on one topic
}

// SweepHooks is the sampler's telemetry sink. The zero value disables
// everything; a non-nil OnSweep receives one SweepStats per completed
// sweep, synchronously on the sampling goroutine — keep it cheap
// (metric observations, occasional log lines), it is on the fit's
// critical path.
type SweepHooks struct {
	OnSweep func(SweepStats)
}

// Then composes hooks: both sinks see every sweep, h first. Either
// side may be the zero value.
func (h SweepHooks) Then(next SweepHooks) SweepHooks {
	if h.OnSweep == nil {
		return next
	}
	if next.OnSweep == nil {
		return h
	}
	first, second := h.OnSweep, next.OnSweep
	return SweepHooks{OnSweep: func(st SweepStats) {
		first(st)
		second(st)
	}}
}

// occupancy summarizes the y assignment from the mk counts.
func occupancy(mk []int, docs int) (occupied int, maxShare float64) {
	maxCount := 0
	for _, m := range mk {
		if m > 0 {
			occupied++
		}
		if m > maxCount {
			maxCount = m
		}
	}
	if docs > 0 {
		maxShare = float64(maxCount) / float64(docs)
	}
	return occupied, maxShare
}

// FoldInStats is the telemetry of one fold-in inference: chain length,
// input size, wall time, and whether the chain was abandoned by its
// context. Canceled chains report the sweeps they completed before the
// context ended.
type FoldInStats struct {
	Sweeps   int
	Words    int
	Total    time.Duration
	Canceled bool
}

// phaseTimes carries the per-phase wall-clock of one sweep between the
// kernels and Run's telemetry.
type phaseTimes struct {
	z, y, components time.Duration
}
