// Package core implements the paper's contribution: a joint topic
// model that couples a categorical distribution over sensory texture
// terms with Gaussian distributions over gel and emulsion ingredient
// concentrations, inferred by Gibbs sampling.
//
// Generative process (the paper's Figure 1 / equation (1)):
//
//	for each topic k ∈ 1..K:
//	    φ_k               ~ Dir(γ)                  texture-term distribution
//	    (μ_k, Λ_k)        ~ NW(μ₀ᵍ, βᵍ, νᵍ, Sᵍ)     gel-concentration component
//	    (m_k, L_k)        ~ NW(m₀ᵉ, βᵉ, νᵉ, Sᵉ)     emulsion component
//	for each recipe d ∈ 1..D:
//	    θ_d ~ Dir(α)
//	    for each texture token n ∈ 1..N_d:
//	        z_dn ~ Mult(θ_d);  w_dn ~ Mult(φ_{z_dn})
//	    y_d ~ Mult(θ_d)
//	    g_d ~ N(μ_{y_d}, Λ_{y_d}⁻¹)
//	    e_d ~ N(m_{y_d}, L_{y_d}⁻¹)
//
// θ is collapsed; z, y and the component parameters are sampled by the
// kernels of equations (2), (3) and (4). The concentration vectors g, e
// live in the paper's −log(x) information-quantity space.
package core

import (
	"fmt"

	"repro/internal/stats"
)

// Data is the model input: one entry per recipe.
type Data struct {
	V     int         // texture-term vocabulary size
	Words [][]int     // texture-term token IDs per recipe, values in [0,V)
	Gel   [][]float64 // gel features per recipe (−log space), equal dims
	Emu   [][]float64 // emulsion features per recipe (−log space), equal dims
}

// Validate checks structural consistency and returns the gel and
// emulsion dimensionalities.
func (d *Data) Validate() (gelDim, emuDim int, err error) {
	if d.V <= 0 {
		return 0, 0, fmt.Errorf("core: vocabulary size %d", d.V)
	}
	n := len(d.Words)
	if n == 0 {
		return 0, 0, fmt.Errorf("core: no documents")
	}
	if len(d.Gel) != n || len(d.Emu) != n {
		return 0, 0, fmt.Errorf("core: have %d docs but %d gel and %d emulsion vectors", n, len(d.Gel), len(d.Emu))
	}
	gelDim = len(d.Gel[0])
	emuDim = len(d.Emu[0])
	if gelDim == 0 || emuDim == 0 {
		return 0, 0, fmt.Errorf("core: zero-dimensional features")
	}
	for i := 0; i < n; i++ {
		if len(d.Gel[i]) != gelDim {
			return 0, 0, fmt.Errorf("core: doc %d gel dim %d, want %d", i, len(d.Gel[i]), gelDim)
		}
		if len(d.Emu[i]) != emuDim {
			return 0, 0, fmt.Errorf("core: doc %d emulsion dim %d, want %d", i, len(d.Emu[i]), emuDim)
		}
		for _, w := range d.Words[i] {
			if w < 0 || w >= d.V {
				return 0, 0, fmt.Errorf("core: doc %d has word ID %d outside [0,%d)", i, w, d.V)
			}
		}
	}
	return gelDim, emuDim, nil
}

// NumDocs returns the number of recipes.
func (d *Data) NumDocs() int { return len(d.Words) }

// Slice returns a view of the documents in [lo, hi) sharing the
// underlying token and feature slices — the per-shard input of a
// sharded fit. The bounds must satisfy 0 ≤ lo ≤ hi ≤ NumDocs.
func (d *Data) Slice(lo, hi int) *Data {
	if lo < 0 || hi < lo || hi > d.NumDocs() {
		panic(fmt.Sprintf("core: Data.Slice(%d,%d) outside [0,%d]", lo, hi, d.NumDocs()))
	}
	return &Data{V: d.V, Words: d.Words[lo:hi], Gel: d.Gel[lo:hi], Emu: d.Emu[lo:hi]}
}

// Config controls inference.
type Config struct {
	K     int     // number of topics
	Alpha float64 // symmetric Dirichlet concentration of θ
	Gamma float64 // symmetric Dirichlet concentration of φ

	GelPrior *stats.NormalWishart // NW(μ₀ᵍ, βᵍ, νᵍ, Sᵍ)
	EmuPrior *stats.NormalWishart // NW(m₀ᵉ, βᵉ, νᵉ, Sᵉ)

	Iterations int // Gibbs sweeps
	BurnIn     int // sweeps before log-likelihood-best state tracking

	// UseEmulsion includes the emulsion likelihood in the y kernel
	// (equation (3)). The paper's generative model includes it; turning
	// it off is the "gel-only" ablation.
	UseEmulsion bool

	// EmulsionWeight tempers the emulsion likelihood in the y kernel
	// (power posterior, exponent λ ∈ (0,1]). λ = 1 is the paper's exact
	// model. The paper notes gel concentrations "principally affect the
	// resulting texture with subordinate effects" of emulsions; recipes
	// in one texture population use several distinct emulsion styles, so
	// an untempered 6-dimensional emulsion Gaussian can out-vote the gel
	// and term channels and split topics by style. λ < 1 encodes the
	// subordinate role; BenchmarkAblationEmulsionWeight sweeps it.
	EmulsionWeight float64

	// Workers enables approximate-distributed Gibbs sampling (AD-LDA
	// style) with this many goroutines. 0 or 1 runs the exact sequential
	// kernel; >1 shards documents per sweep, trading exactness of the
	// collapsed word counts within a sweep for near-linear speedup.
	// Incompatible with Collapsed (whose sufficient statistics are
	// inherently sequential).
	Workers int

	// LearnAlpha re-estimates the symmetric Dirichlet concentration α
	// by Minka's fixed point after each post-burn-in sweep, instead of
	// keeping the configured value.
	LearnAlpha bool

	// RandomInit disables the default k-means++ seeding of the
	// concentration topics y and uses uniform random assignment instead
	// (the initialization ablation).
	RandomInit bool

	// Collapsed integrates the component parameters out of the y kernel
	// (Student-t predictive) instead of sampling them explicitly via
	// equation (4) — the collapsed-sampler ablation.
	Collapsed bool

	// Hooks is the sampler's telemetry sink (per-sweep timings,
	// log-likelihood, topic occupancy). The zero value disables it.
	Hooks SweepHooks

	// Health configures per-sweep numerical-health monitoring. The zero
	// value keeps only the always-on NaN/±Inf log-likelihood check; see
	// HealthPolicy for the opt-in classifiers. A violation aborts the
	// chain with a typed *HealthError instead of sampling onward from a
	// diverged state.
	Health HealthPolicy

	// CheckpointEvery, when positive together with a non-nil
	// CheckpointFunc, emits a Snapshot of the full sampler state every
	// that many completed sweeps. The snapshot is a deep copy taken
	// between sweeps — the chain's state never escapes mid-mutation —
	// so the func may hand it to a background writer and return
	// immediately; only a returned error stops the chain.
	CheckpointEvery int
	CheckpointFunc  func(*Snapshot) error

	Seed uint64
}

// DefaultConfig mirrors the paper's setup: K = 10 topics.
func DefaultConfig() Config {
	return Config{
		K:              10,
		Alpha:          0.5,
		Gamma:          0.1,
		Iterations:     300,
		BurnIn:         100,
		UseEmulsion:    true,
		EmulsionWeight: 1,
		Seed:           1,
	}
}

// EmpiricalPriors builds weakly-informative data-driven Normal-Wishart
// priors: the prior mean is the data mean, β is small so topic means
// move freely, ν = dim+2, and S is set so the prior expected precision
// E[Λ] = ν·S matches the inverse of the per-axis data variance. This
// is the standard empirical-Bayes initialization for Gaussian mixture
// components.
func EmpiricalPriors(data *Data) (gel, emu *stats.NormalWishart, err error) {
	gelDim, emuDim, err := data.Validate()
	if err != nil {
		return nil, nil, err
	}
	gel, err = empiricalPrior(data.Gel, gelDim)
	if err != nil {
		return nil, nil, fmt.Errorf("core: gel prior: %w", err)
	}
	emu, err = empiricalPrior(data.Emu, emuDim)
	if err != nil {
		return nil, nil, fmt.Errorf("core: emulsion prior: %w", err)
	}
	return gel, emu, nil
}

func empiricalPrior(xs [][]float64, dim int) (*stats.NormalWishart, error) {
	mean := stats.MeanVec(xs)
	nu := float64(dim) + 2
	s := stats.NewMat(dim, dim)
	for j := 0; j < dim; j++ {
		var v float64
		for _, x := range xs {
			d := x[j] - mean[j]
			v += d * d
		}
		v /= float64(len(xs))
		if v < 1e-4 {
			v = 1e-4 // constant axes (gel absent everywhere) still need spread
		}
		s.Set(j, j, 1/(v*nu))
	}
	return stats.NewNormalWishart(mean, 0.05, nu, s)
}
