package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/stats"
)

// shardStatsVersion guards the shard-statistics wire format.
const shardStatsVersion = 1

// ErrShardStats marks shard statistics that cannot be restored or
// merged — wrong shape, mismatched hyperparameters, non-adjacent
// document ranges, or a future format version.
var ErrShardStats = errors.New("shard stats incompatible")

// ShardStats is the mergeable summary of one fitted shard: everything
// a divide-and-conquer merge needs to assemble a corpus-wide Result
// from independently fitted document ranges. The count matrices are
// integers, so merging them is exact; the Normal-Wishart accumulators
// merge by summing sufficient statistics (commutative up to
// floating-point summation order).
//
// Per-document state (Theta, Y) is kept in global document order:
// a shard covers the contiguous range [Lo, Hi) and MergeWith only
// accepts an adjacent right neighbour, so concatenation preserves the
// corpus order without a permutation step.
type ShardStats struct {
	K, V   int
	Lo, Hi int    // global document range [Lo, Hi)
	Seed   uint64 // seed the shard's chain ran under

	// Inference hyperparameters — must agree across merged shards.
	Alpha          float64
	Gamma          float64
	UseEmulsion    bool
	EmulsionWeight float64

	Nwk [][]int // vocab × topics token counts (vocab-major, like Sampler)
	Nk  []int   // per-topic token totals

	Theta  [][]float64 // per-document topic distributions, rows Lo..Hi
	Y      []int       // per-document concentration topics, rows Lo..Hi
	LogLik []float64   // per-sweep trace; summed elementwise on merge

	// Per-topic concentration accumulators over the shard's final
	// assignment, freshly accumulated in document order (never copied
	// from a collapsed sampler's live accumulators), so a retried shard
	// reproduces them bit-for-bit.
	GelAcc []*stats.NWAccum
	EmuAcc []*stats.NWAccum
}

// NumDocs returns the number of documents the statistics cover.
func (st *ShardStats) NumDocs() int { return st.Hi - st.Lo }

// ShardStats summarizes the sampler's final state as mergeable shard
// statistics for the global document range [lo, lo+numDocs). The count
// matrices are deep copies; Theta is computed with the same point
// estimate Estimate uses; the accumulators are rebuilt from the final
// assignment in document order regardless of sampler mode, so capture
// is a pure, deterministic function of the final chain state.
func (s *Sampler) ShardStats(lo int) *ShardStats {
	d := s.data.NumDocs()
	st := &ShardStats{
		K:              s.cfg.K,
		V:              s.data.V,
		Lo:             lo,
		Hi:             lo + d,
		Seed:           s.cfg.Seed,
		Alpha:          s.cfg.Alpha,
		Gamma:          s.cfg.Gamma,
		UseEmulsion:    s.cfg.UseEmulsion,
		EmulsionWeight: s.cfg.EmulsionWeight,
		Nwk:            makeCountTable(s.data.V, s.cfg.K),
		Nk:             append([]int(nil), s.nk...),
		Y:              append([]int(nil), s.Y...),
		LogLik:         append([]float64(nil), s.LogLik...),
	}
	for v := range s.nwk {
		copy(st.Nwk[v], s.nwk[v])
	}
	st.Theta = make([][]float64, d)
	sumAlpha := s.cfg.Alpha * float64(s.cfg.K)
	for i := range s.data.Words {
		row := make([]float64, s.cfg.K)
		denom := float64(s.nd[i]) + 1 + sumAlpha
		for k := 0; k < s.cfg.K; k++ {
			m := 0.0
			if s.Y[i] == k {
				m = 1
			}
			row[k] = (float64(s.ndk[i][k]) + m + s.cfg.Alpha) / denom
		}
		st.Theta[i] = row
	}
	st.GelAcc = make([]*stats.NWAccum, s.cfg.K)
	st.EmuAcc = make([]*stats.NWAccum, s.cfg.K)
	for k := 0; k < s.cfg.K; k++ {
		st.GelAcc[k] = stats.NewNWAccum(s.cfg.GelPrior)
		st.EmuAcc[k] = stats.NewNWAccum(s.cfg.EmuPrior)
	}
	for i, y := range s.Y {
		st.GelAcc[y].Add(s.data.Gel[i])
		st.EmuAcc[y].Add(s.data.Emu[i])
	}
	return st
}

// compatible reports why two shard summaries cannot be merged, or nil.
func (st *ShardStats) compatible(o *ShardStats) error {
	switch {
	case o == nil:
		return fmt.Errorf("core: merging nil shard stats: %w", ErrShardStats)
	case st.K != o.K || st.V != o.V:
		return fmt.Errorf("core: shard shapes differ: K=%d/%d V=%d/%d: %w", st.K, o.K, st.V, o.V, ErrShardStats)
	case st.Alpha != o.Alpha || st.Gamma != o.Gamma:
		return fmt.Errorf("core: shard hyperparameters differ (α=%g/%g γ=%g/%g): %w",
			st.Alpha, o.Alpha, st.Gamma, o.Gamma, ErrShardStats)
	case st.UseEmulsion != o.UseEmulsion || st.EmulsionWeight != o.EmulsionWeight:
		return fmt.Errorf("core: shard emulsion settings differ: %w", ErrShardStats)
	case o.Lo != st.Hi:
		return fmt.Errorf("core: shards not adjacent: [%d,%d) then [%d,%d): %w",
			st.Lo, st.Hi, o.Lo, o.Hi, ErrShardStats)
	}
	return nil
}

// MergeWith folds the adjacent right-neighbour shard o into st: count
// matrices sum exactly (integers), the concentration accumulators
// merge their sufficient statistics, per-document rows concatenate in
// corpus order, and the log-likelihood traces sum elementwise (each
// shard's trace is its own chain's joint log-likelihood; the sum is
// the joint log-likelihood of the independent chains). o is left
// untouched, so a merge tree can reuse its inputs.
func (st *ShardStats) MergeWith(o *ShardStats) error {
	if err := st.compatible(o); err != nil {
		return err
	}
	for v := range st.Nwk {
		row, orow := st.Nwk[v], o.Nwk[v]
		for k := range row {
			row[k] += orow[k]
		}
	}
	for k := range st.Nk {
		st.Nk[k] += o.Nk[k]
	}
	for k := range st.GelAcc {
		if err := st.GelAcc[k].MergeWith(o.GelAcc[k]); err != nil {
			return fmt.Errorf("core: gel accumulator %d: %w", k, err)
		}
		if err := st.EmuAcc[k].MergeWith(o.EmuAcc[k]); err != nil {
			return fmt.Errorf("core: emulsion accumulator %d: %w", k, err)
		}
	}
	st.Theta = append(st.Theta, o.Theta...)
	st.Y = append(st.Y, o.Y...)
	n := len(st.LogLik)
	if len(o.LogLik) < n {
		n = len(o.LogLik)
	}
	for i := 0; i < n; i++ {
		st.LogLik[i] += o.LogLik[i]
	}
	if len(o.LogLik) > len(st.LogLik) {
		st.LogLik = append(st.LogLik, o.LogLik[len(st.LogLik):]...)
	}
	st.Hi = o.Hi
	return nil
}

// Result assembles the fitted model from (merged) shard statistics:
// φ from the summed count matrices with the same smoothing Estimate
// applies, θ and y concatenated in corpus order, and per-topic
// components as Normal-Wishart posterior means given all merged
// members — the same estimator Estimate reports, computed from the
// merged sufficient statistics instead of a member list.
func (st *ShardStats) Result() (*Result, error) {
	if len(st.Theta) != st.NumDocs() || len(st.Y) != st.NumDocs() {
		return nil, fmt.Errorf("core: shard stats cover [%d,%d) but carry %d θ rows / %d y: %w",
			st.Lo, st.Hi, len(st.Theta), len(st.Y), ErrShardStats)
	}
	res := &Result{
		K:              st.K,
		V:              st.V,
		Alpha:          st.Alpha,
		Gamma:          st.Gamma,
		UseEmulsion:    st.UseEmulsion,
		EmulsionWeight: st.EmulsionWeight,
		LogLik:         append([]float64(nil), st.LogLik...),
		Y:              append([]int(nil), st.Y...),
	}
	res.Phi = make([][]float64, st.K)
	gv := st.Gamma * float64(st.V)
	for k := 0; k < st.K; k++ {
		res.Phi[k] = make([]float64, st.V)
	}
	for w := 0; w < st.V; w++ {
		row := st.Nwk[w]
		for k := 0; k < st.K; k++ {
			res.Phi[k][w] = (float64(row[k]) + st.Gamma) / (float64(st.Nk[k]) + gv)
		}
	}
	res.Theta = make([][]float64, len(st.Theta))
	for d, row := range st.Theta {
		res.Theta[d] = append([]float64(nil), row...)
	}
	res.Gel = make([]Component, st.K)
	res.Emu = make([]Component, st.K)
	for k := 0; k < st.K; k++ {
		mu, lam := st.GelAcc[k].Posterior().MeanParams()
		res.Gel[k] = Component{Mean: mu, Precision: lam}
		m, l := st.EmuAcc[k].Posterior().MeanParams()
		res.Emu[k] = Component{Mean: m, Precision: l}
	}
	if _, err := res.BuildKernel(); err != nil {
		return nil, fmt.Errorf("core: merged model: %w", err)
	}
	return res, nil
}

// shardStatsWire is the JSON form of ShardStats. The accumulators
// serialize as raw sufficient statistics (the same accumState wire the
// snapshot format uses); the priors are not part of the document — the
// reader supplies them, exactly as ResumeSampler does.
type shardStatsWire struct {
	FormatVersion  int          `json:"format_version"`
	K              int          `json:"k"`
	V              int          `json:"v"`
	Lo             int          `json:"lo"`
	Hi             int          `json:"hi"`
	Seed           uint64       `json:"seed"`
	Alpha          float64      `json:"alpha"`
	Gamma          float64      `json:"gamma"`
	UseEmulsion    bool         `json:"use_emulsion"`
	EmulsionWeight float64      `json:"emulsion_weight"`
	Nwk            [][]int      `json:"nwk"`
	Nk             []int        `json:"nk"`
	Theta          [][]float64  `json:"theta"`
	Y              []int        `json:"y"`
	LogLik         []float64    `json:"loglik"`
	GelAcc         []accumState `json:"gel_acc"`
	EmuAcc         []accumState `json:"emu_acc"`
}

// WriteJSON serializes the shard statistics as one JSON document. The
// floats round-trip exactly (Go emits the shortest representation that
// parses back to the same float64), so a shard loaded from disk merges
// bit-identically to one kept in memory.
func (st *ShardStats) WriteJSON(w io.Writer) error {
	sw := shardStatsWire{
		FormatVersion:  shardStatsVersion,
		K:              st.K,
		V:              st.V,
		Lo:             st.Lo,
		Hi:             st.Hi,
		Seed:           st.Seed,
		Alpha:          st.Alpha,
		Gamma:          st.Gamma,
		UseEmulsion:    st.UseEmulsion,
		EmulsionWeight: st.EmulsionWeight,
		Nwk:            st.Nwk,
		Nk:             st.Nk,
		Theta:          st.Theta,
		Y:              st.Y,
		LogLik:         st.LogLik,
		GelAcc:         accumStates(st.GelAcc),
		EmuAcc:         accumStates(st.EmuAcc),
	}
	if err := json.NewEncoder(w).Encode(&sw); err != nil {
		return fmt.Errorf("core: encoding shard stats: %w", err)
	}
	return nil
}

// ReadShardStatsJSON deserializes shard statistics written by
// WriteJSON, validating shape self-consistency and restoring the
// accumulators under the supplied priors (which must be the ones the
// shard was fitted with — the orchestrator derives both from the same
// corpus-wide empirical estimate).
func ReadShardStatsJSON(r io.Reader, gelPrior, emuPrior *stats.NormalWishart) (*ShardStats, error) {
	var sw shardStatsWire
	if err := json.NewDecoder(r).Decode(&sw); err != nil {
		return nil, fmt.Errorf("core: decoding shard stats: %w", err)
	}
	if sw.FormatVersion != shardStatsVersion {
		return nil, fmt.Errorf("core: shard stats format %d, this build reads %d: %w",
			sw.FormatVersion, shardStatsVersion, ErrShardStats)
	}
	d := sw.Hi - sw.Lo
	switch {
	case sw.K < 2 || sw.V < 1:
		return nil, fmt.Errorf("core: shard stats shape K=%d V=%d: %w", sw.K, sw.V, ErrShardStats)
	case sw.Lo < 0 || d < 0:
		return nil, fmt.Errorf("core: shard stats range [%d,%d): %w", sw.Lo, sw.Hi, ErrShardStats)
	case len(sw.Nwk) != sw.V || len(sw.Nk) != sw.K:
		return nil, fmt.Errorf("core: shard stats count tables %d×?/%d, want %d×%d/%d: %w",
			len(sw.Nwk), len(sw.Nk), sw.V, sw.K, sw.K, ErrShardStats)
	case len(sw.Theta) != d || len(sw.Y) != d:
		return nil, fmt.Errorf("core: shard stats carry %d θ rows / %d y for range [%d,%d): %w",
			len(sw.Theta), len(sw.Y), sw.Lo, sw.Hi, ErrShardStats)
	case len(sw.GelAcc) != sw.K || len(sw.EmuAcc) != sw.K:
		return nil, fmt.Errorf("core: shard stats carry %d/%d accumulators, want %d: %w",
			len(sw.GelAcc), len(sw.EmuAcc), sw.K, ErrShardStats)
	}
	st := &ShardStats{
		K:              sw.K,
		V:              sw.V,
		Lo:             sw.Lo,
		Hi:             sw.Hi,
		Seed:           sw.Seed,
		Alpha:          sw.Alpha,
		Gamma:          sw.Gamma,
		UseEmulsion:    sw.UseEmulsion,
		EmulsionWeight: sw.EmulsionWeight,
		Nwk:            makeCountTable(sw.V, sw.K),
		Nk:             sw.Nk,
		Theta:          sw.Theta,
		Y:              sw.Y,
		LogLik:         sw.LogLik,
	}
	for v, row := range sw.Nwk {
		if len(row) != sw.K {
			return nil, fmt.Errorf("core: shard stats nwk row %d has %d topics, want %d: %w",
				v, len(row), sw.K, ErrShardStats)
		}
		copy(st.Nwk[v], row)
	}
	for i, y := range sw.Y {
		if y < 0 || y >= sw.K {
			return nil, fmt.Errorf("core: shard stats y[%d]=%d outside [0,%d): %w", i, y, sw.K, ErrShardStats)
		}
	}
	st.GelAcc = make([]*stats.NWAccum, sw.K)
	st.EmuAcc = make([]*stats.NWAccum, sw.K)
	for k := 0; k < sw.K; k++ {
		ga, err := restoreAccum(gelPrior, sw.GelAcc[k])
		if err != nil {
			return nil, fmt.Errorf("core: gel accumulator %d: %w: %v", k, ErrShardStats, err)
		}
		ea, err := restoreAccum(emuPrior, sw.EmuAcc[k])
		if err != nil {
			return nil, fmt.Errorf("core: emulsion accumulator %d: %w: %v", k, ErrShardStats, err)
		}
		st.GelAcc[k], st.EmuAcc[k] = ga, ea
	}
	return st, nil
}

// MergeShardStats merges adjacent shard summaries (ordered by Lo) into
// one with the divide-and-conquer scheme: the list is split in half,
// each half merged recursively, and the halves combined — the shape of
// the recursive MergeWith exemplar, applied to sufficient statistics.
// The inputs are consumed (the leftmost summary of each subtree is
// mutated in place).
func MergeShardStats(parts []*ShardStats) (*ShardStats, error) {
	switch len(parts) {
	case 0:
		return nil, fmt.Errorf("core: merging zero shards: %w", ErrShardStats)
	case 1:
		return parts[0], nil
	}
	mid := len(parts) / 2
	left, err := MergeShardStats(parts[:mid])
	if err != nil {
		return nil, err
	}
	right, err := MergeShardStats(parts[mid:])
	if err != nil {
		return nil, err
	}
	if err := left.MergeWith(right); err != nil {
		return nil, err
	}
	return left, nil
}
