package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

// fitShard fits one contiguous document range as an independent chain
// (shared corpus-wide priors, per-shard seed) and captures its
// mergeable statistics — the worker half of a sharded fit, inlined.
func fitShard(t *testing.T, data *Data, cfg Config, lo, hi int, seed uint64) *ShardStats {
	t.Helper()
	c := cfg
	c.Seed = seed
	s, err := NewSampler(data.Slice(lo, hi), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	return s.ShardStats(lo)
}

// shardCfg is smallCfg with the priors pinned from the full dataset —
// the sharded-fit contract: per-shard empirical priors would make the
// accumulators non-mergeable.
func shardCfg(t *testing.T, data *Data) Config {
	t.Helper()
	cfg := smallCfg()
	cfg.Iterations = 40
	gp, ep, err := EmpiricalPriors(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg.GelPrior, cfg.EmuPrior = gp, ep
	return cfg
}

// TestShardStatsMergeEquivalence: the divide-and-conquer merge of
// N independently fitted shards must reproduce, exactly for the
// integer count matrices and to 1e-10 for the accumulators, a
// reference that accumulates the same per-shard chains directly in
// global document order.
func TestShardStatsMergeEquivalence(t *testing.T) {
	data, _ := synthData(21, 90)
	cfg := shardCfg(t, data)
	for _, nShards := range []int{2, 3, 5} {
		ranges := ShardRanges(data.NumDocs(), nShards)
		parts := make([]*ShardStats, len(ranges))
		for i, r := range ranges {
			parts[i] = fitShard(t, data, cfg, r[0], r[1], cfg.Seed+uint64(i))
		}
		// Reference: fold the same chains' statistics left-to-right into
		// fresh reference accumulators and plain integer sums.
		refNwk := makeCountTable(data.V, cfg.K)
		refNk := make([]int, cfg.K)
		refGel := make([]*stats.NWAccum, cfg.K)
		refEmu := make([]*stats.NWAccum, cfg.K)
		for k := 0; k < cfg.K; k++ {
			refGel[k] = stats.NewNWAccum(cfg.GelPrior)
			refEmu[k] = stats.NewNWAccum(cfg.EmuPrior)
		}
		for i, r := range ranges {
			for v := range refNwk {
				for k, c := range parts[i].Nwk[v] {
					refNwk[v][k] += c
				}
			}
			for k, c := range parts[i].Nk {
				refNk[k] += c
			}
			for d := r[0]; d < r[1]; d++ {
				refGel[parts[i].Y[d-r[0]]].Add(data.Gel[d])
				refEmu[parts[i].Y[d-r[0]]].Add(data.Emu[d])
			}
		}
		// Re-fit the parts (the merge consumes them) and tree-merge.
		for i, r := range ranges {
			parts[i] = fitShard(t, data, cfg, r[0], r[1], cfg.Seed+uint64(i))
		}
		merged, err := MergeShardStats(parts)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Lo != 0 || merged.Hi != data.NumDocs() {
			t.Fatalf("nShards=%d: merged range [%d,%d)", nShards, merged.Lo, merged.Hi)
		}
		for v := range refNwk {
			for k := range refNwk[v] {
				if merged.Nwk[v][k] != refNwk[v][k] {
					t.Fatalf("nShards=%d: nwk[%d][%d] = %d, reference %d",
						nShards, v, k, merged.Nwk[v][k], refNwk[v][k])
				}
			}
		}
		for k := range refNk {
			if merged.Nk[k] != refNk[k] {
				t.Fatalf("nShards=%d: nk[%d] = %d, reference %d", nShards, k, merged.Nk[k], refNk[k])
			}
		}
		for k := 0; k < cfg.K; k++ {
			assertAccumClose(t, merged.GelAcc[k], refGel[k], 1e-10)
			assertAccumClose(t, merged.EmuAcc[k], refEmu[k], 1e-10)
		}
		if res, err := merged.Result(); err != nil {
			t.Fatalf("nShards=%d: merged result: %v", nShards, err)
		} else if len(res.Theta) != data.NumDocs() || len(res.Y) != data.NumDocs() {
			t.Fatalf("nShards=%d: merged result covers %d/%d docs", nShards, len(res.Theta), len(res.Y))
		}
	}
}

func assertAccumClose(t *testing.T, a, b *stats.NWAccum, tol float64) {
	t.Helper()
	an, asum, aouter := a.State()
	bn, bsum, bouter := b.State()
	if an != bn {
		t.Fatalf("accumulator counts differ: %g vs %g", an, bn)
	}
	for i := range asum {
		if math.Abs(asum[i]-bsum[i]) > tol {
			t.Fatalf("accumulator sum[%d]: %g vs %g", i, asum[i], bsum[i])
		}
	}
	if d := aouter.MaxAbsDiff(bouter); d > tol {
		t.Fatalf("accumulator outer products differ by %g", d)
	}
}

// TestShardStatsSingleShardMatchesFit: one shard covering the whole
// corpus, passed through capture + Result, must agree with the plain
// Fit estimate — byte-identical Phi/Theta/Y (same counts, same
// formulas) and components within the accumulator/batch posterior
// round-off.
func TestShardStatsSingleShardMatchesFit(t *testing.T) {
	data, _ := synthData(22, 60)
	cfg := shardCfg(t, data)
	ref, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := fitShard(t, data, cfg, 0, data.NumDocs(), cfg.Seed)
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	for d := range ref.Y {
		if res.Y[d] != ref.Y[d] {
			t.Fatalf("Y[%d] = %d, Fit gave %d", d, res.Y[d], ref.Y[d])
		}
		for k := range ref.Theta[d] {
			if res.Theta[d][k] != ref.Theta[d][k] {
				t.Fatalf("Theta[%d][%d] = %g, Fit gave %g", d, k, res.Theta[d][k], ref.Theta[d][k])
			}
		}
	}
	for k := range ref.Phi {
		for v := range ref.Phi[k] {
			if res.Phi[k][v] != ref.Phi[k][v] {
				t.Fatalf("Phi[%d][%d] = %g, Fit gave %g", k, v, res.Phi[k][v], ref.Phi[k][v])
			}
		}
	}
	for k := range ref.Gel {
		for i := range ref.Gel[k].Mean {
			if math.Abs(res.Gel[k].Mean[i]-ref.Gel[k].Mean[i]) > 1e-8 {
				t.Fatalf("gel mean[%d][%d]: %g vs %g", k, i, res.Gel[k].Mean[i], ref.Gel[k].Mean[i])
			}
		}
		if d := res.Gel[k].Precision.MaxAbsDiff(ref.Gel[k].Precision); d > 1e-6 {
			t.Fatalf("gel precision %d differs by %g", k, d)
		}
	}
}

// TestShardStatsCaptureDeterministic: re-fitting the same shard with
// the same seed must reproduce the statistics bit-for-bit — the
// property that makes a killed-and-retried shard worker converge to
// the same merged model.
func TestShardStatsCaptureDeterministic(t *testing.T) {
	data, _ := synthData(23, 45)
	cfg := shardCfg(t, data)
	a := fitShard(t, data, cfg, 15, 45, 7)
	b := fitShard(t, data, cfg, 15, 45, 7)
	var wa, wb bytes.Buffer
	if err := a.WriteJSON(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
		t.Fatal("same shard, same seed: serialized statistics differ")
	}
}

func TestShardStatsJSONRoundTrip(t *testing.T) {
	data, _ := synthData(24, 40)
	cfg := shardCfg(t, data)
	st := fitShard(t, data, cfg, 0, 20, 3)
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadShardStatsJSON(bytes.NewReader(buf.Bytes()), cfg.GelPrior, cfg.EmuPrior)
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := got.WriteJSON(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), back.Bytes()) {
		t.Fatal("shard stats do not round-trip byte-identically")
	}
	// A loaded shard must merge like an in-memory one.
	if err := got.MergeWith(fitShard(t, data, cfg, 20, 40, 4)); err != nil {
		t.Fatalf("merging adjacent shard into a loaded one: %v", err)
	}
	if got.Lo != 0 || got.Hi != 40 {
		t.Fatalf("merged range [%d,%d)", got.Lo, got.Hi)
	}
}

func TestShardStatsMergeRejections(t *testing.T) {
	data, _ := synthData(25, 40)
	cfg := shardCfg(t, data)
	a := fitShard(t, data, cfg, 0, 20, 1)
	b := fitShard(t, data, cfg, 20, 40, 2)

	// Non-adjacent: merging b into itself-shaped gap.
	gap := fitShard(t, data, cfg, 0, 10, 1)
	if err := gap.MergeWith(b); !errors.Is(err, ErrShardStats) {
		t.Errorf("non-adjacent merge: err = %v, want ErrShardStats", err)
	}
	// Mismatched hyperparameters.
	b2 := fitShard(t, data, cfg, 20, 40, 2)
	b2.Alpha++
	if err := a.MergeWith(b2); !errors.Is(err, ErrShardStats) {
		t.Errorf("mismatched α merge: err = %v, want ErrShardStats", err)
	}
	if err := a.MergeWith(nil); !errors.Is(err, ErrShardStats) {
		t.Errorf("nil merge: err = %v, want ErrShardStats", err)
	}
	if _, err := MergeShardStats(nil); !errors.Is(err, ErrShardStats) {
		t.Errorf("zero-shard merge: err = %v, want ErrShardStats", err)
	}
}

func TestReadShardStatsRejectsDamage(t *testing.T) {
	data, _ := synthData(26, 20)
	cfg := shardCfg(t, data)
	st := fitShard(t, data, cfg, 0, 20, 1)
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*shardStatsWire)) error {
		var sw shardStatsWire
		if err := json.Unmarshal(buf.Bytes(), &sw); err != nil {
			t.Fatal(err)
		}
		f(&sw)
		var out bytes.Buffer
		if err := json.NewEncoder(&out).Encode(&sw); err != nil {
			t.Fatal(err)
		}
		_, err := ReadShardStatsJSON(&out, cfg.GelPrior, cfg.EmuPrior)
		return err
	}
	cases := map[string]func(*shardStatsWire){
		"future version": func(sw *shardStatsWire) { sw.FormatVersion = 99 },
		"range mismatch": func(sw *shardStatsWire) { sw.Hi += 3 },
		"short nk":       func(sw *shardStatsWire) { sw.Nk = sw.Nk[:1] },
		"ragged nwk":     func(sw *shardStatsWire) { sw.Nwk[2] = sw.Nwk[2][:1] },
		"bad y":          func(sw *shardStatsWire) { sw.Y[0] = 99 },
		"lost accum":     func(sw *shardStatsWire) { sw.GelAcc = sw.GelAcc[:1] },
	}
	for name, f := range cases {
		if err := mutate(f); !errors.Is(err, ErrShardStats) {
			t.Errorf("%s: err = %v, want ErrShardStats", name, err)
		}
	}
	if _, err := ReadShardStatsJSON(bytes.NewReader([]byte("{garbage")), cfg.GelPrior, cfg.EmuPrior); err == nil {
		t.Error("garbage input decoded")
	}
}
