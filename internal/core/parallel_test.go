package core

import (
	"testing"
)

func TestParallelRecoversStructure(t *testing.T) {
	cfg := smallCfg()
	cfg.Workers = 4
	res, truth := fitSynth(t, cfg, 300)
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.9 {
		t.Errorf("parallel recovery accuracy = %.3f", acc)
	}
}

func TestParallelDeterministicForFixedWorkers(t *testing.T) {
	data, _ := synthData(96, 150)
	cfg := smallCfg()
	cfg.Workers = 3
	cfg.Iterations = 40
	r1, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := range r1.Y {
		if r1.Y[d] != r2.Y[d] {
			t.Fatal("same seed and worker count must give identical chains")
		}
	}
}

func TestParallelCountInvariants(t *testing.T) {
	data, _ := synthData(97, 120)
	cfg := smallCfg()
	cfg.Workers = 4
	cfg.Iterations = 10
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	// After merging deltas: nkw row sums equal nk, totals equal token
	// count, ndk consistent with Z.
	totalTokens := 0
	for _, w := range data.Words {
		totalTokens += len(w)
	}
	sumNk := 0
	for k := 0; k < cfg.K; k++ {
		rowSum := 0
		for v := 0; v < data.V; v++ {
			if s.nwk[v][k] < 0 {
				t.Fatalf("negative count nwk[%d][%d]", v, k)
			}
			rowSum += s.nwk[v][k]
		}
		if rowSum != s.nk[k] {
			t.Fatalf("topic %d: row sum %d != nk %d", k, rowSum, s.nk[k])
		}
		sumNk += s.nk[k]
	}
	if sumNk != totalTokens {
		t.Fatalf("Σnk = %d, tokens %d", sumNk, totalTokens)
	}
	for d := range data.Words {
		counts := make([]int, cfg.K)
		for _, z := range s.Z[d] {
			counts[z]++
		}
		for k := 0; k < cfg.K; k++ {
			if counts[k] != s.ndk[d][k] {
				t.Fatalf("doc %d topic %d: ndk %d != actual %d", d, k, s.ndk[d][k], counts[k])
			}
		}
	}
	// mk consistent with Y.
	mk := make([]int, cfg.K)
	for _, y := range s.Y {
		mk[y]++
	}
	for k := 0; k < cfg.K; k++ {
		if mk[k] != s.mk[k] {
			t.Fatalf("mk[%d] = %d, actual %d", k, s.mk[k], mk[k])
		}
	}
}

func TestParallelValidation(t *testing.T) {
	data, _ := synthData(98, 30)
	cfg := smallCfg()
	cfg.Workers = -1
	if _, err := NewSampler(data, cfg); err == nil {
		t.Error("negative workers should fail")
	}
	cfg = smallCfg()
	cfg.Workers = 4
	cfg.Collapsed = true
	if _, err := NewSampler(data, cfg); err == nil {
		t.Error("collapsed + workers should fail")
	}
}

func TestShardRanges(t *testing.T) {
	shards := ShardRanges(10, 3)
	if len(shards) != 3 {
		t.Fatalf("%d shards", len(shards))
	}
	covered := 0
	prev := 0
	for _, sh := range shards {
		if sh[0] != prev {
			t.Fatalf("gap at %d", sh[0])
		}
		covered += sh[1] - sh[0]
		prev = sh[1]
	}
	if covered != 10 || prev != 10 {
		t.Fatalf("covered %d", covered)
	}
	// More workers than items clamps.
	if got := ShardRanges(2, 8); len(got) != 2 {
		t.Errorf("clamped shards = %d", len(got))
	}
}

// TestShardRangesDegenerate is the regression test for the integer
// division by zero: n == 0 used to clamp w to 0 and panic on n / w.
func TestShardRangesDegenerate(t *testing.T) {
	if got := ShardRanges(0, 4); got != nil {
		t.Errorf("ShardRanges(0,4) = %v, want nil", got)
	}
	if got := ShardRanges(0, 0); got != nil {
		t.Errorf("ShardRanges(0,0) = %v, want nil", got)
	}
	// Non-positive worker counts degrade to a single shard instead of
	// dividing by zero.
	for _, w := range []int{0, -3} {
		got := ShardRanges(5, w)
		if len(got) != 1 || got[0] != [2]int{0, 5} {
			t.Errorf("ShardRanges(5,%d) = %v, want one full shard", w, got)
		}
	}
}

// TestParallelDeterministicState: same seed and worker count must give
// byte-identical Z and Y chains, not merely matching final clusters.
func TestParallelDeterministicState(t *testing.T) {
	data, _ := synthData(101, 120)
	run := func() *Sampler {
		cfg := smallCfg()
		cfg.Workers = 4
		cfg.Iterations = 25
		s, err := NewSampler(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(nil); err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1, s2 := run(), run()
	for d := range s1.Z {
		if s1.Y[d] != s2.Y[d] {
			t.Fatalf("Y[%d] differs: %d vs %d", d, s1.Y[d], s2.Y[d])
		}
		for n := range s1.Z[d] {
			if s1.Z[d][n] != s2.Z[d][n] {
				t.Fatalf("Z[%d][%d] differs: %d vs %d", d, n, s1.Z[d][n], s2.Z[d][n])
			}
		}
	}
	if len(s1.LogLik) != len(s2.LogLik) {
		t.Fatalf("trace lengths differ")
	}
	for i := range s1.LogLik {
		if s1.LogLik[i] != s2.LogLik[i] {
			t.Fatalf("loglik[%d] differs: %g vs %g", i, s1.LogLik[i], s2.LogLik[i])
		}
	}
}

// TestParallelLogLikAgreesWithSequential: the AD-LDA approximation
// must converge to the same posterior mass as the exact sequential
// chain — mean post-burn-in log-likelihoods within a small relative
// tolerance on a synthetic corpus.
func TestParallelLogLikAgreesWithSequential(t *testing.T) {
	data, _ := synthData(102, 300)
	tail := func(workers int) float64 {
		cfg := smallCfg()
		cfg.Workers = workers
		cfg.Iterations = 200
		res, err := Fit(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return meanTail(res.LogLik)
	}
	seq := tail(1)
	for _, workers := range []int{2, 4} {
		par := tail(workers)
		rel := (par - seq) / seq
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.02 {
			t.Errorf("workers=%d: mean tail loglik %.1f vs sequential %.1f (rel %.3f)",
				workers, par, seq, rel)
		}
	}
}

func TestParallelMatchesSequentialQuality(t *testing.T) {
	data, truth := synthData(99, 300)
	seqCfg := smallCfg()
	seq, err := Fit(data, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := smallCfg()
	parCfg.Workers = 4
	par, err := Fit(data, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	accSeq := clusterAccuracy(seq.Y, truth, 3)
	accPar := clusterAccuracy(par.Y, truth, 3)
	if accPar < accSeq-0.05 {
		t.Errorf("parallel accuracy %.3f well below sequential %.3f", accPar, accSeq)
	}
}
