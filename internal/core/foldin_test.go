package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestFoldInPlacesNewDocCorrectly(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 300)
	// Generate fresh docs from each true topic's region and check the
	// fold-in lands them with the training docs of that region.
	rng := stats.NewRNG(80, 1)
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	emuMeans := [][]float64{{2, 8}, {8, 2}, {5, 5}}
	wordPools := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}

	// Map each generating region to the fitted topic via component
	// means.
	regionTopic := make([]int, 3)
	for region, gm := range gelMeans {
		best, bestD := 0, math.Inf(1)
		for k := 0; k < res.K; k++ {
			d := 0.0
			for j := range gm {
				diff := res.Gel[k].Mean[j] - gm[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = k, d
			}
		}
		regionTopic[region] = best
	}

	correct := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		region := i % 3
		words := []int{
			wordPools[region][rng.IntN(3)],
			wordPools[region][rng.IntN(3)],
		}
		gel := []float64{rng.Normal(gelMeans[region][0], 0.25), rng.Normal(gelMeans[region][1], 0.25)}
		emu := []float64{rng.Normal(emuMeans[region][0], 0.3), rng.Normal(emuMeans[region][1], 0.3)}
		theta, err := res.FoldIn(words, gel, emu, 60, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if s := stats.SumVec(theta); math.Abs(s-1) > 1e-9 {
			t.Fatalf("θ sums to %g", s)
		}
		if stats.ArgMax(theta) == regionTopic[region] {
			correct++
		}
	}
	if correct < trials*8/10 {
		t.Errorf("fold-in placed %d/%d new docs correctly", correct, trials)
	}
}

func TestFoldInWithoutWords(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 200)
	// A doc with no texture terms is placed by concentrations alone.
	theta, err := res.FoldIn(nil, []float64{3, 9}, []float64{2, 8}, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := stats.SumVec(theta); math.Abs(s-1) > 1e-9 {
		t.Errorf("θ sums to %g", s)
	}
	// The chosen topic's gel mean must be near the query.
	k := stats.ArgMax(theta)
	if math.Abs(res.Gel[k].Mean[0]-3) > 1 {
		t.Errorf("wordless fold-in chose topic with gel mean %v", res.Gel[k].Mean)
	}
}

func TestFoldInValidation(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 60)
	if _, err := res.FoldIn([]int{0}, []float64{1, 2}, []float64{1, 2}, 0, 1); err == nil {
		t.Error("zero iterations should fail")
	}
	if _, err := res.FoldIn([]int{0}, []float64{1}, []float64{1, 2}, 10, 1); err == nil {
		t.Error("gel dim mismatch should fail")
	}
	if _, err := res.FoldIn([]int{999}, []float64{1, 2}, []float64{1, 2}, 10, 1); err == nil {
		t.Error("out-of-vocab word should fail")
	}
}

func TestFoldInDeterministic(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 60)
	a, err := res.FoldIn([]int{0, 1}, []float64{3, 9}, []float64{2, 8}, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.FoldIn([]int{0, 1}, []float64{3, 9}, []float64{2, 8}, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical fold-in")
		}
	}
}

func TestFoldInCtxCancellation(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the first sweep
	_, err := res.FoldInCtx(ctx, []int{0, 1}, []float64{3, 9}, []float64{2, 8}, 30, 7)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled fold-in = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled fold-in should unwrap to the context error, got %v", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Sweeps != 0 {
		t.Errorf("canceled error detail = %+v", ce)
	}
	// Deadline-shaped causes survive unwrapping too.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, err = res.FoldInCtx(dctx, nil, []float64{3, 9}, []float64{2, 8}, 30, 7)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired fold-in = %v", err)
	}
}

func TestFoldInCtxMatchesFoldIn(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 60)
	a, err := res.FoldIn([]int{0, 1}, []float64{3, 9}, []float64{2, 8}, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.FoldInCtx(context.Background(), []int{0, 1}, []float64{3, 9}, []float64{2, 8}, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FoldIn and FoldInCtx diverge on the same seed")
		}
	}
}

func TestResultRoundTripPreservesFoldInParams(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 60)
	if res.Alpha == 0 || res.Gamma == 0 {
		t.Fatal("hyperparameters not captured")
	}
}
