package core

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"
)

func snapshotTestConfig() Config {
	return Config{
		K:              3,
		Alpha:          0.1,
		Gamma:          0.1,
		Iterations:     40,
		BurnIn:         10,
		UseEmulsion:    true,
		EmulsionWeight: 1,
		Seed:           5,
	}
}

// errKilled simulates the process dying mid-fit: the checkpoint hook
// returns it at the chosen sweep, aborting Run with state already
// persisted — exactly what a crash after a checkpoint write looks like.
var errKilled = errors.New("simulated crash")

// runKilled runs a fresh chain that checkpoints every sweep and "dies"
// after killAt sweeps, returning the snapshot the crash left behind.
func runKilled(t *testing.T, data *Data, cfg Config, killAt int) *Snapshot {
	t.Helper()
	var snap *Snapshot
	cfg.CheckpointEvery = 1
	cfg.CheckpointFunc = func(sn *Snapshot) error {
		if sn.Sweep == killAt {
			snap = sn
			return errKilled
		}
		return nil
	}
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); !errors.Is(err, errKilled) {
		t.Fatalf("run should have died at sweep %d, got err %v", killAt, err)
	}
	if snap == nil || snap.Sweep != killAt {
		t.Fatalf("no snapshot captured at sweep %d", killAt)
	}
	return snap
}

// runUninterrupted runs the same chain start to finish and returns the
// live sampler so Z (not exposed on Result) can be compared.
func runUninterrupted(t *testing.T, data *Data, cfg Config) *Sampler {
	t.Helper()
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCrashResumeDeterminism is the acceptance criterion: a chain
// killed between sweeps and resumed from its checkpoint produces
// byte-identical Z/Y assignments and log-likelihood trace to an
// uninterrupted run, across every sampler mode. The snapshot also
// passes through its JSON wire format, so serialization exactness is
// covered by the same assertion.
func TestCrashResumeDeterminism(t *testing.T) {
	modes := []struct {
		name string
		mut  func(*Config)
	}{
		{"sequential", func(c *Config) {}},
		{"parallel-4", func(c *Config) { c.Workers = 4 }},
		{"collapsed", func(c *Config) { c.Collapsed = true }},
		{"learn-alpha", func(c *Config) { c.LearnAlpha = true; c.BurnIn = 5 }},
	}
	// The kill sweep is random per mode (seeded, so failures reproduce).
	pick := rand.New(rand.NewPCG(42, 0))
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			cfg := snapshotTestConfig()
			mode.mut(&cfg)
			data, _ := synthData(7, 60)
			killAt := 1 + pick.IntN(cfg.Iterations-2)

			want := runUninterrupted(t, data, cfg)
			snap := runKilled(t, data, cfg, killAt)

			// Round-trip the snapshot through its wire format, as a real
			// crash-recovery would.
			var buf bytes.Buffer
			if err := snap.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadSnapshotJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}

			resumed, err := ResumeSampler(data, cfg, loaded)
			if err != nil {
				t.Fatal(err)
			}
			if got := resumed.CompletedSweeps(); got != killAt {
				t.Fatalf("resumed sampler at sweep %d, want %d", got, killAt)
			}
			if err := resumed.Run(nil); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(want.Z, resumed.Z) {
				t.Errorf("Z diverged after resume at sweep %d", killAt)
			}
			if !reflect.DeepEqual(want.Y, resumed.Y) {
				t.Errorf("Y diverged after resume at sweep %d", killAt)
			}
			if len(want.LogLik) != len(resumed.LogLik) {
				t.Fatalf("loglik trace length %d vs %d", len(resumed.LogLik), len(want.LogLik))
			}
			for i := range want.LogLik {
				if want.LogLik[i] != resumed.LogLik[i] {
					t.Fatalf("loglik[%d] = %v after resume, want exactly %v (killed at %d)",
						i, resumed.LogLik[i], want.LogLik[i], killAt)
				}
			}
			if a, b := want.Alpha(), resumed.Alpha(); a != b {
				t.Errorf("α diverged: %v vs %v", b, a)
			}
			// And the user-visible estimates agree exactly too.
			we, re := want.Estimate(), resumed.Estimate()
			if !reflect.DeepEqual(we.Phi, re.Phi) {
				t.Error("φ diverged after resume")
			}
			if !reflect.DeepEqual(we.Theta, re.Theta) {
				t.Error("θ diverged after resume")
			}
		})
	}
}

// TestResumeFitExtendsChain: resuming with a larger iteration budget
// legally extends the chain past the original schedule.
func TestResumeFitExtendsChain(t *testing.T) {
	cfg := snapshotTestConfig()
	data, _ := synthData(3, 50)
	snap := runKilled(t, data, cfg, cfg.Iterations/2)
	longer := cfg
	longer.Iterations = cfg.Iterations + 10
	res, err := ResumeFit(data, longer, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LogLik) != longer.Iterations {
		t.Fatalf("extended chain has %d sweeps of trace, want %d", len(res.LogLik), longer.Iterations)
	}
}

// TestCheckpointCadence: CheckpointEvery=n emits snapshots exactly at
// sweeps n, 2n, … and each is a deep copy (mutating the chain after
// the callback does not reach into an already-captured snapshot).
func TestCheckpointCadence(t *testing.T) {
	cfg := snapshotTestConfig()
	cfg.Iterations = 20
	cfg.CheckpointEvery = 6
	var sweeps []int
	var first *Snapshot
	var firstZ [][]int
	cfg.CheckpointFunc = func(sn *Snapshot) error {
		sweeps = append(sweeps, sn.Sweep)
		if first == nil {
			first = sn
			firstZ = make([][]int, len(sn.Z))
			for d := range sn.Z {
				firstZ[d] = append([]int(nil), sn.Z[d]...)
			}
		}
		return nil
	}
	data, _ := synthData(11, 40)
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	if want := []int{6, 12, 18}; !reflect.DeepEqual(sweeps, want) {
		t.Fatalf("checkpoints at %v, want %v", sweeps, want)
	}
	if !reflect.DeepEqual(first.Z, firstZ) {
		t.Error("snapshot Z mutated by the chain after capture — not a deep copy")
	}
}

// TestResumeSamplerRejectsMismatch: every identity field the restore
// path guards is actually guarded, with ErrSnapshot inspectable.
func TestResumeSamplerRejectsMismatch(t *testing.T) {
	cfg := snapshotTestConfig()
	data, _ := synthData(7, 60)
	snap := runKilled(t, data, cfg, 10)

	cases := []struct {
		name string
		mut  func(cfg *Config, sn *Snapshot, data *Data)
	}{
		{"seed", func(c *Config, sn *Snapshot, d *Data) { c.Seed++ }},
		{"workers", func(c *Config, sn *Snapshot, d *Data) { c.Workers = 4 }},
		{"collapsed", func(c *Config, sn *Snapshot, d *Data) { c.Collapsed = true }},
		{"topics", func(c *Config, sn *Snapshot, d *Data) { c.K = 5 }},
		{"future-format", func(c *Config, sn *Snapshot, d *Data) { sn.FormatVersion = 99 }},
		{"docs", func(c *Config, sn *Snapshot, d *Data) { sn.Z = sn.Z[:10]; sn.Y = sn.Y[:10]; sn.Docs = 10 }},
		{"topic-out-of-range", func(c *Config, sn *Snapshot, d *Data) { sn.Y[0] = 99 }},
		{"alpha", func(c *Config, sn *Snapshot, d *Data) { sn.Alpha = -1 }},
		{"components", func(c *Config, sn *Snapshot, d *Data) { sn.GelComp = sn.GelComp[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := cfg
			var buf bytes.Buffer
			if err := snap.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			sn, err := ReadSnapshotJSON(&buf)
			if err != nil {
				t.Fatal(err)
			}
			tc.mut(&c, sn, data)
			if _, err := ResumeSampler(data, c, sn); !errors.Is(err, ErrSnapshot) {
				t.Fatalf("mismatch %q not rejected with ErrSnapshot; got %v", tc.name, err)
			}
		})
	}
}

// TestReadSnapshotJSONFutureVersion: the reader itself refuses future
// formats before any restore is attempted.
func TestReadSnapshotJSONFutureVersion(t *testing.T) {
	if _, err := ReadSnapshotJSON(bytes.NewReader([]byte(`{"format_version": 99}`))); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("future snapshot format accepted: %v", err)
	}
}
