package core

import (
	"testing"

	"repro/internal/stats"
)

func TestInitYKMeansSeparatesBands(t *testing.T) {
	rng := stats.NewRNG(70, 1)
	// Three well-separated 2D bands.
	var xs [][]float64
	var truth []int
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for i := 0; i < 300; i++ {
		k := i % 3
		truth = append(truth, k)
		xs = append(xs, []float64{
			rng.Normal(centers[k][0], 0.3),
			rng.Normal(centers[k][1], 0.3),
		})
	}
	assign := initYKMeans(xs, 3, rng)
	// Perfect separation up to relabeling.
	if acc := clusterAccuracy(assign, truth, 3); acc < 0.99 {
		t.Errorf("k-means accuracy = %.3f", acc)
	}
}

func TestInitYKMeansMoreCentersThanBands(t *testing.T) {
	rng := stats.NewRNG(71, 1)
	var xs [][]float64
	for i := 0; i < 60; i++ {
		xs = append(xs, []float64{rng.Normal(0, 0.1)})
	}
	// K exceeds distinct structure; must not panic and must assign all.
	assign := initYKMeans(xs, 10, rng)
	if len(assign) != 60 {
		t.Fatalf("assigned %d", len(assign))
	}
	for _, a := range assign {
		if a < 0 || a >= 10 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
}

func TestInitYKMeansDuplicatePoints(t *testing.T) {
	rng := stats.NewRNG(72, 1)
	xs := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	assign := initYKMeans(xs, 3, rng)
	if len(assign) != 4 {
		t.Fatal("missing assignments")
	}
}

func TestRandomInitStillRecovers(t *testing.T) {
	cfg := smallCfg()
	cfg.RandomInit = true
	cfg.Iterations = 200
	res, truth := fitSynth(t, cfg, 300)
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.85 {
		t.Errorf("random-init recovery = %.3f", acc)
	}
}

func TestEmulsionWeightValidation(t *testing.T) {
	data, _ := synthData(73, 30)
	cfg := smallCfg()
	cfg.EmulsionWeight = -0.5
	if _, err := NewSampler(data, cfg); err == nil {
		t.Error("negative weight should fail")
	}
	cfg.EmulsionWeight = 1.5
	if _, err := NewSampler(data, cfg); err == nil {
		t.Error("weight > 1 should fail")
	}
	// Zero means "unset" and defaults to 1.
	cfg.EmulsionWeight = 0
	if _, err := NewSampler(data, cfg); err != nil {
		t.Errorf("zero weight should default: %v", err)
	}
}

func TestEmulsionWeightTempering(t *testing.T) {
	// With λ→small the y kernel must still work and recovery hold (gel
	// features alone separate the synthetic topics).
	cfg := smallCfg()
	cfg.EmulsionWeight = 0.25
	res, truth := fitSynth(t, cfg, 300)
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.9 {
		t.Errorf("tempered recovery = %.3f", acc)
	}
}
