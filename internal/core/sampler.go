package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// logFloat is math.Log, named so the parallel kernel reads like the
// sequential one.
func logFloat(x float64) float64 { return math.Log(x) }

// makeCountTable returns an r×c integer table whose rows slice one flat
// backing array, so walking consecutive rows touches contiguous memory.
func makeCountTable(r, c int) [][]int {
	flat := make([]int, r*c)
	rows := make([][]int, r)
	for i := range rows {
		rows[i] = flat[i*c : (i+1)*c : (i+1)*c]
	}
	return rows
}

// component is one topic's Gaussian over a concentration space, stored
// as mean and precision with a cached density object.
type component struct {
	gauss *stats.Gaussian
}

func newComponent(mean []float64, precision *stats.Mat) (component, error) {
	g, err := stats.NewGaussian(mean, stats.RegularizeSPD(precision, 1e-10))
	if err != nil {
		return component{}, err
	}
	return component{gauss: g}, nil
}

// setFrom refills the component in place from a freshly drawn mean and
// precision, reusing the Gaussian's storage after the first sweep. The
// regularization is the one newComponent applies (same jitter, same
// schedule, into caller scratch) and SetParams reruns NewGaussian's
// factorization, so the resulting density is bit-identical to a fresh
// component — the sweep just stops allocating one per topic.
func (c *component) setFrom(mean []float64, precision *stats.Mat, reg *stats.Mat, chol *stats.Cholesky) error {
	stats.RegularizeSPDInto(reg, precision, 1e-10, chol)
	if c.gauss == nil {
		g, err := stats.NewGaussian(mean, reg)
		if err != nil {
			return err
		}
		c.gauss = g
		return nil
	}
	return c.gauss.SetParams(mean, reg)
}

// Sampler is the Gibbs sampler state for the joint topic model.
type Sampler struct {
	cfg  Config
	data *Data
	rng  *stats.RNG

	gelDim, emuDim int

	// Latent assignments.
	Z [][]int // topic of each texture token
	Y []int   // concentration topic of each recipe

	// Count statistics. The topic-word table is stored vocab-major
	// (nwk[w][k]) so the z kernel's inner loop over topics reads one
	// contiguous K-length row per token instead of striding across K
	// separate V-length rows — the counts are integers, so the layout
	// is observationally exact.
	ndk [][]int // docs × topics: texture tokens of d in k
	nwk [][]int // vocab × topics: tokens of word w in k
	nk  []int   // topics: total tokens in k
	nd  []int   // docs: tokens in d (fixed)
	mk  []int   // topics: recipes with y_d = k

	// Explicit component parameters (non-collapsed mode).
	gelComp []component
	emuComp []component

	// Sufficient-statistic accumulators per topic (collapsed mode).
	gelAcc []*stats.NWAccum
	emuAcc []*stats.NWAccum

	// LogLik records the joint data log-likelihood after each sweep.
	LogLik []float64

	// sweep is the number of completed Gibbs sweeps; Run continues from
	// here, so a sampler restored from a Snapshot resumes mid-schedule.
	sweep int

	// abort carries an asynchronous stop request (Abort/AbortUnhealthy).
	// The sampling loops poll it between documents, so a hung-looking
	// chain can be stopped by a watchdog without losing the typed
	// diagnosis. Never serialized; a resumed sampler starts clear.
	abort atomic.Pointer[abortSignal]

	// scr holds every per-sweep buffer the hot loops would otherwise
	// allocate per document or per topic. It is pure scratch — never
	// serialized, rebuilt by NewSampler/ResumeSampler — so it cannot
	// perturb the determinism or snapshot contracts.
	scr samplerScratch
}

// samplerScratch is the sampler's reusable working memory.
type samplerScratch struct {
	weights []float64 // z kernel, length K
	logw    []float64 // y kernel, length K
	catW    []float64 // CategoricalLog exponentiation buffer, length K
	gelDiff []float64 // Gaussian.LogPdfScratch centering, gel space
	emuDiff []float64 // Gaussian.LogPdfScratch centering, emulsion space

	// Struct-of-arrays views of the current components, refreshed by
	// resampleComponents: the y kernel scores a recipe against all K
	// topics in one bank call over flat arrays instead of K pointer
	// chases. Bank scoring is bit-identical to per-component
	// LogPdfScratch calls.
	gelBank *stats.GaussianBank
	emuBank *stats.GaussianBank
	gs      []*stats.Gaussian // staging slice for bank refreshes

	// logTab[c] caches math.Log(float64(c)+α) for every possible
	// per-document topic count c ∈ [0, max nd]; the y kernels index it
	// instead of calling math.Log K times per document per sweep. The
	// cached expression is the inline one, so lookups are bit-identical.
	// Rebuilt whenever α moves (LearnAlpha).
	logTab      []float64
	logTabAlpha float64

	// Component-resampling buffers: per-topic member lists, the
	// feature-slice views handed to the Normal-Wishart posterior, the
	// fused posterior-draw scratch per concentration space, and the
	// regularization workspace for rebuilding component densities in
	// place.
	members  [][]int
	gxs, exs [][]float64
	gelDraw  *stats.NWDrawScratch
	emuDraw  *stats.NWDrawScratch
	gelReg   *stats.Mat
	emuReg   *stats.Mat
	gelChol  *stats.Cholesky
	emuChol  *stats.Cholesky

	par []parShard // parallel-sweep worker state, sized on first use
}

// initScratch sizes the scratch for the sampler's shape. Parallel-shard
// state is created lazily by sweepParallel (the shard count depends on
// the live worker count).
func (s *Sampler) initScratch() {
	k := s.cfg.K
	maxNd := 0
	for _, n := range s.nd {
		if n > maxNd {
			maxNd = n
		}
	}
	s.scr = samplerScratch{
		weights: make([]float64, k),
		logw:    make([]float64, k),
		catW:    make([]float64, k),
		gelDiff: make([]float64, s.gelDim),
		emuDiff: make([]float64, s.emuDim),
		gelBank: stats.NewGaussianBank(k, s.gelDim),
		emuBank: stats.NewGaussianBank(k, s.emuDim),
		gs:      make([]*stats.Gaussian, k),
		logTab:  make([]float64, maxNd+1),
		members: make([][]int, k),
		gelDraw: s.cfg.GelPrior.NewDrawScratch(),
		emuDraw: s.cfg.EmuPrior.NewDrawScratch(),
		gelReg:  stats.NewMat(s.gelDim, s.gelDim),
		emuReg:  stats.NewMat(s.emuDim, s.emuDim),
		gelChol: &stats.Cholesky{L: stats.NewMat(s.gelDim, s.gelDim)},
		emuChol: &stats.Cholesky{L: stats.NewMat(s.emuDim, s.emuDim)},
	}
	s.scr.logTabAlpha = math.NaN() // force the first ensureLogTab build
}

// ensureLogTab rebuilds the log-count table when α has moved (sampler
// construction, resume, or a LearnAlpha update between sweeps).
func (s *Sampler) ensureLogTab() {
	if s.scr.logTabAlpha == s.cfg.Alpha {
		return
	}
	for c := range s.scr.logTab {
		s.scr.logTab[c] = math.Log(float64(c) + s.cfg.Alpha)
	}
	s.scr.logTabAlpha = s.cfg.Alpha
}

// refreshBanks re-mirrors the explicit components into the scratch
// banks; must run after every resampleComponents.
func (s *Sampler) refreshBanks() error {
	for k := range s.gelComp {
		s.scr.gs[k] = s.gelComp[k].gauss
	}
	if err := s.scr.gelBank.SetFromGaussians(s.scr.gs); err != nil {
		return err
	}
	for k := range s.emuComp {
		s.scr.gs[k] = s.emuComp[k].gauss
	}
	return s.scr.emuBank.SetFromGaussians(s.scr.gs)
}

// prepareConfig validates cfg against data, fills in empirical priors
// when the config leaves them nil, and returns the normalized config
// with the feature dimensionalities.
func prepareConfig(data *Data, cfg Config) (Config, int, int, error) {
	gelDim, emuDim, err := data.Validate()
	if err != nil {
		return cfg, 0, 0, err
	}
	if cfg.K <= 1 {
		return cfg, 0, 0, fmt.Errorf("core: need K ≥ 2 topics, got %d", cfg.K)
	}
	if cfg.Alpha <= 0 || cfg.Gamma <= 0 {
		return cfg, 0, 0, fmt.Errorf("core: need positive α and γ")
	}
	if cfg.Iterations <= 0 {
		return cfg, 0, 0, fmt.Errorf("core: need positive iteration count")
	}
	if cfg.EmulsionWeight == 0 {
		cfg.EmulsionWeight = 1
	}
	if cfg.EmulsionWeight < 0 || cfg.EmulsionWeight > 1 {
		return cfg, 0, 0, fmt.Errorf("core: emulsion weight %g outside (0,1]", cfg.EmulsionWeight)
	}
	if cfg.Workers < 0 {
		return cfg, 0, 0, fmt.Errorf("core: negative worker count %d", cfg.Workers)
	}
	if cfg.Workers > 1 && cfg.Collapsed {
		return cfg, 0, 0, fmt.Errorf("core: the collapsed sampler is sequential; Workers > 1 is not supported with it")
	}
	if cfg.GelPrior == nil || cfg.EmuPrior == nil {
		gp, ep, err := EmpiricalPriors(data)
		if err != nil {
			return cfg, 0, 0, err
		}
		if cfg.GelPrior == nil {
			cfg.GelPrior = gp
		}
		if cfg.EmuPrior == nil {
			cfg.EmuPrior = ep
		}
	}
	if cfg.GelPrior.Dim() != gelDim {
		return cfg, 0, 0, fmt.Errorf("core: gel prior dim %d, data dim %d", cfg.GelPrior.Dim(), gelDim)
	}
	if cfg.EmuPrior.Dim() != emuDim {
		return cfg, 0, 0, fmt.Errorf("core: emulsion prior dim %d, data dim %d", cfg.EmuPrior.Dim(), emuDim)
	}
	return cfg, gelDim, emuDim, nil
}

// NewSampler validates inputs, fills in empirical priors when the
// config leaves them nil, and initializes assignments uniformly at
// random.
func NewSampler(data *Data, cfg Config) (*Sampler, error) {
	cfg, gelDim, emuDim, err := prepareConfig(data, cfg)
	if err != nil {
		return nil, err
	}

	s := &Sampler{
		cfg:    cfg,
		data:   data,
		rng:    stats.NewRNG(cfg.Seed, 0x70F1C),
		gelDim: gelDim,
		emuDim: emuDim,
	}
	d := data.NumDocs()
	s.Z = make([][]int, d)
	s.Y = make([]int, d)
	s.ndk = make([][]int, d)
	s.nd = make([]int, d)
	s.nwk = makeCountTable(data.V, cfg.K)
	s.nk = make([]int, cfg.K)
	s.mk = make([]int, cfg.K)
	var yInit []int
	if !cfg.RandomInit {
		yInit = initYKMeans(data.Gel, cfg.K, s.rng)
	}
	for i := 0; i < d; i++ {
		s.ndk[i] = make([]int, cfg.K)
		s.Z[i] = make([]int, len(data.Words[i]))
		s.nd[i] = len(data.Words[i])
		y := s.rng.IntN(cfg.K)
		if yInit != nil {
			y = yInit[i]
		}
		s.Y[i] = y
		s.mk[y]++
		for n, w := range data.Words[i] {
			// Tokens start in the recipe's concentration topic so the two
			// channels begin coupled; random token topics work too but mix
			// more slowly.
			k := y
			if cfg.RandomInit {
				k = s.rng.IntN(cfg.K)
			}
			s.Z[i][n] = k
			s.ndk[i][k]++
			s.nwk[w][k]++
			s.nk[k]++
		}
	}
	s.initScratch()
	if cfg.Collapsed {
		s.gelAcc = make([]*stats.NWAccum, cfg.K)
		s.emuAcc = make([]*stats.NWAccum, cfg.K)
		for k := 0; k < cfg.K; k++ {
			s.gelAcc[k] = stats.NewNWAccum(cfg.GelPrior)
			s.emuAcc[k] = stats.NewNWAccum(cfg.EmuPrior)
		}
		for i := 0; i < d; i++ {
			s.gelAcc[s.Y[i]].Add(data.Gel[i])
			s.emuAcc[s.Y[i]].Add(data.Emu[i])
		}
	} else {
		if err := s.resampleComponents(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Run performs Gibbs sweeps until cfg.Iterations have completed,
// starting from the sampler's current sweep index (0 for a fresh
// sampler, the checkpointed index for one restored via ResumeSampler).
// The onSweep callback (may be nil) receives the sweep index and
// running log-likelihood; richer telemetry (phase timings, occupancy)
// flows through cfg.Hooks. When cfg.CheckpointEvery and
// cfg.CheckpointFunc are both set, a Snapshot is emitted after every
// CheckpointEvery-th completed sweep.
//
// Every completed sweep is classified by cfg.Health (see HealthPolicy);
// a violation — or a degenerate Normal-Wishart posterior surfacing as
// stats.ErrNumericalHealth, whether returned or panicked — aborts the
// chain with a typed *HealthError wrapping ErrUnhealthy. The check runs
// before the checkpoint emission, so an unhealthy state is never
// persisted over a healthy one.
func (s *Sampler) Run(onSweep func(iter int, logLik float64)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// The numerical kernels panic with error values wrapping
			// stats.ErrNumericalHealth when the chain state is beyond
			// repair (non-PD posterior after maximal jitter). Convert
			// those — and only those — into a typed health diagnosis.
			e, ok := r.(error)
			if !ok || !errors.Is(e, stats.ErrNumericalHealth) {
				panic(r)
			}
			err = &HealthError{
				Event: HealthEvent{Kind: HealthDegenerateCovariance, Sweep: s.sweep, LogLik: math.NaN(), Detail: e.Error()},
				Cause: e,
			}
		}
		if err == nil {
			return
		}
		var he *HealthError
		if errors.As(err, &he) && s.cfg.Health.OnEvent != nil {
			s.cfg.Health.OnEvent(he.Event)
		}
	}()
	return s.run(onSweep)
}

// run is Run's loop body; Run wraps it with panic recovery and the
// once-per-error OnEvent notification.
func (s *Sampler) run(onSweep func(iter int, logLik float64)) error {
	hook := s.cfg.Hooks.OnSweep
	hp := s.cfg.Health
	// The running best log-likelihood seeds from the existing trace, so
	// a chain resumed from a checkpoint keeps the same collapse
	// reference an uninterrupted run would hold.
	best := math.Inf(-1)
	for _, v := range s.LogLik {
		if finite(v) && v > best {
			best = v
		}
	}
	for it := s.sweep; it < s.cfg.Iterations; it++ {
		if err := s.abortErr(); err != nil {
			return err
		}
		start := time.Now()
		var pt phaseTimes
		var err error
		if s.cfg.Workers > 1 && !s.cfg.Collapsed {
			pt, err = s.sweepParallel(it)
		} else {
			pt, err = s.sweepSequential()
		}
		if err != nil {
			if errors.Is(err, stats.ErrNumericalHealth) {
				return &HealthError{
					Event: HealthEvent{Kind: HealthDegenerateCovariance, Sweep: it, LogLik: math.NaN(), Detail: err.Error()},
					Cause: err,
				}
			}
			return fmt.Errorf("core: sweep %d: %w", it, err)
		}
		if err := s.abortErr(); err != nil {
			// An abort landed mid-sweep: the kernels bailed out between
			// documents, so this sweep is partial — report it, don't
			// record it.
			return err
		}
		if s.cfg.LearnAlpha && it >= s.cfg.BurnIn {
			s.updateAlpha()
		}
		ll := s.logLikelihood()
		if hp.Perturb != nil {
			ll = hp.Perturb(it, ll)
		}
		elapsed := time.Since(start)
		s.LogLik = append(s.LogLik, ll)
		s.sweep = it + 1
		occupied, maxShare := occupancy(s.mk, s.data.NumDocs())
		if hook != nil {
			hook(SweepStats{
				Sweep:          it,
				Total:          elapsed,
				ZPhase:         pt.z,
				YPhase:         pt.y,
				Components:     pt.components,
				LogLik:         ll,
				OccupiedTopics: occupied,
				MaxTopicShare:  maxShare,
			})
		}
		if onSweep != nil {
			onSweep(it, ll)
		}
		// Classify before checkpointing: a diverged sweep must never
		// overwrite the last healthy checkpoint.
		if ev := hp.classifySweep(it, ll, best, occupied, elapsed); ev != nil {
			return &HealthError{Event: *ev}
		}
		if finite(ll) && ll > best {
			best = ll
		}
		if s.cfg.CheckpointEvery > 0 && s.cfg.CheckpointFunc != nil && (it+1)%s.cfg.CheckpointEvery == 0 {
			if err := s.cfg.CheckpointFunc(s.Snapshot()); err != nil {
				return fmt.Errorf("core: checkpoint after sweep %d: %w", it, err)
			}
		}
	}
	return nil
}

// CompletedSweeps returns how many Gibbs sweeps the sampler has run.
func (s *Sampler) CompletedSweeps() int { return s.sweep }

// Sweep runs one full Gibbs pass: all z, all y, then the component
// parameters.
func (s *Sampler) Sweep() error {
	_, err := s.sweepSequential()
	return err
}

// sweepSequential is Sweep with per-phase wall-clock for telemetry.
// The per-document abort polls (one atomic load each) let a watchdog
// stop a slow sweep mid-pass; Run detects the pending abort and
// discards the partial sweep.
func (s *Sampler) sweepSequential() (phaseTimes, error) {
	var pt phaseTimes
	s.ensureLogTab()
	t := time.Now()
	for d := range s.data.Words {
		if s.aborted() {
			return pt, nil
		}
		s.sampleZ(d)
	}
	pt.z = time.Since(t)
	t = time.Now()
	if s.cfg.Collapsed {
		s.sampleYCollapsed()
		pt.y = time.Since(t)
		return pt, nil
	}
	for d := range s.data.Words {
		if s.aborted() {
			return pt, nil
		}
		s.sampleY(d)
	}
	pt.y = time.Since(t)
	t = time.Now()
	err := s.resampleComponents()
	pt.components = time.Since(t)
	return pt, err
}

// sampleZ resamples every token topic in document d with the kernel of
// equation (2):
//
//	p(z_dn = k) ∝ (N_dk^{-dn} + M_dk + α) · (N_kw^{-dn} + γ)/(N_k^{-dn} + γV)
//
// where M_dk is 1 when y_d = k — texture tokens feel the pull of the
// recipe's concentration topic through the shared θ_d.
func (s *Sampler) sampleZ(d int) {
	w := s.data.Words[d]
	K := s.cfg.K
	weights := s.scr.weights[:K]
	ndk := s.ndk[d][:K]
	nk := s.nk[:K]
	zd := s.Z[d]
	yd := s.Y[d]
	alpha := s.cfg.Alpha
	gamma := s.cfg.Gamma
	gv := gamma * float64(s.data.V)
	for n, word := range w {
		old := zd[n]
		row := s.nwk[word][:K]
		ndk[old]--
		row[old]--
		nk[old]--
		// Flat pass with the y-coupled +1 fixed up once after the loop:
		// for k≠y the original M_dk addend was an exact +0, and the
		// fixup recomputes y's weight in the original operation order,
		// so every weight is bit-identical to the branching form.
		for k := 0; k < K; k++ {
			weights[k] = (float64(ndk[k]) + alpha) *
				(float64(row[k]) + gamma) /
				(float64(nk[k]) + gv)
		}
		weights[yd] = (float64(ndk[yd]) + 1 + alpha) *
			(float64(row[yd]) + gamma) /
			(float64(nk[yd]) + gv)
		k := s.rng.CategoricalFast(weights)
		zd[n] = k
		ndk[k]++
		row[k]++
		nk[k]++
	}
}

// sampleY resamples the concentration topic of document d with the
// kernel of equation (3):
//
//	p(y_d = k) ∝ (N_dk + α) · N(g_d | μ_k, Λ_k) · N(e_d | m_k, L_k)
//
// (M_dk^{−d} vanishes because each recipe carries exactly one y; the
// denominator is constant in k). The emulsion factor follows the
// generative model of equation (1); UseEmulsion=false drops it.
func (s *Sampler) sampleY(d int) {
	old := s.Y[d]
	s.mk[old]--
	K := s.cfg.K
	logw := s.scr.logw[:K]
	ndk := s.ndk[d][:K]
	logTab := s.scr.logTab
	// One fused pass per topic in the multi-pass order — count prior
	// from the log table, then the gel bank, then the weighted emulsion
	// bank — each term bit-identical to its original.
	emuBank := s.scr.emuBank
	if !s.cfg.UseEmulsion {
		emuBank = nil
	}
	stats.ScoreTopics(logw, logTab, ndk, s.scr.gelBank, s.data.Gel[d], s.scr.gelDiff,
		emuBank, s.data.Emu[d], s.cfg.EmulsionWeight, s.scr.emuDiff)
	k := s.rng.CategoricalLogFused(logw, s.scr.catW)
	s.Y[d] = k
	s.mk[k]++
}

// sampleYCollapsed resamples all y with the component parameters
// integrated out: the likelihood of g_d under topic k is the
// Normal-Wishart posterior predictive (a Student-t) given the other
// recipes currently assigned to k, maintained incrementally through
// sufficient-statistic accumulators.
func (s *Sampler) sampleYCollapsed() {
	K := s.cfg.K
	logw := s.scr.logw[:K]
	logTab := s.scr.logTab
	for d := range s.data.Words {
		if s.aborted() {
			return
		}
		old := s.Y[d]
		s.mk[old]--
		s.gelAcc[old].Remove(s.data.Gel[d])
		s.emuAcc[old].Remove(s.data.Emu[d])

		ndk := s.ndk[d][:K]
		for k := 0; k < K; k++ {
			logw[k] = logTab[ndk[k]]
		}
		stats.AddPredictiveLogPdf(logw, s.gelAcc, s.data.Gel[d], 1)
		if s.cfg.UseEmulsion {
			stats.AddPredictiveLogPdf(logw, s.emuAcc, s.data.Emu[d], s.cfg.EmulsionWeight)
		}
		k := s.rng.CategoricalLogFused(logw, s.scr.catW)
		s.Y[d] = k
		s.mk[k]++
		s.gelAcc[k].Add(s.data.Gel[d])
		s.emuAcc[k].Add(s.data.Emu[d])
	}
}

func (s *Sampler) membersByTopic() [][]int {
	members := make([][]int, s.cfg.K)
	for d, y := range s.Y {
		members[y] = append(members[y], d)
	}
	return members
}

// resampleComponents draws (μ_k, Λ_k) and (m_k, L_k) from their
// Normal-Wishart posteriors given the recipes currently assigned to
// each topic — equation (4). Topics with no recipes draw from the
// prior. The member lists and feature views are rebuilt into sampler
// scratch in document order — the same summation order as a fresh
// build, so the posteriors (and therefore the chain) are bit-identical
// to the allocating implementation.
func (s *Sampler) resampleComponents() error {
	members := s.scr.members
	for k := range members {
		members[k] = members[k][:0]
	}
	for d, y := range s.Y {
		members[y] = append(members[y], d)
	}
	if s.gelComp == nil {
		s.gelComp = make([]component, s.cfg.K)
		s.emuComp = make([]component, s.cfg.K)
	}
	gxs, exs := s.scr.gxs, s.scr.exs
	for k := 0; k < s.cfg.K; k++ {
		gxs, exs = gxs[:0], exs[:0]
		for _, d := range members[k] {
			gxs = append(gxs, s.data.Gel[d])
			exs = append(exs, s.data.Emu[d])
		}
		s.cfg.GelPrior.PosteriorSampleInto(s.rng, gxs, s.scr.gelDraw)
		if err := s.gelComp[k].setFrom(s.scr.gelDraw.Mu, s.scr.gelDraw.Lambda, s.scr.gelReg, s.scr.gelChol); err != nil {
			return fmt.Errorf("gel component %d: %w", k, err)
		}
		s.cfg.EmuPrior.PosteriorSampleInto(s.rng, exs, s.scr.emuDraw)
		if err := s.emuComp[k].setFrom(s.scr.emuDraw.Mu, s.scr.emuDraw.Lambda, s.scr.emuReg, s.scr.emuChol); err != nil {
			return fmt.Errorf("emulsion component %d: %w", k, err)
		}
	}
	s.scr.gxs, s.scr.exs = gxs[:0], exs[:0]
	return s.refreshBanks()
}

// logLikelihood computes the joint data log-likelihood under the
// current state: texture tokens under the φ point estimate and
// concentration vectors under their assigned components (or the
// posterior-mean components in collapsed mode).
func (s *Sampler) logLikelihood() float64 {
	gv := s.cfg.Gamma * float64(s.data.V)
	ll := 0.0
	for d, words := range s.data.Words {
		for n, w := range words {
			k := s.Z[d][n]
			ll += math.Log((float64(s.nwk[w][k]) + s.cfg.Gamma) / (float64(s.nk[k]) + gv))
		}
	}
	if s.cfg.Collapsed {
		for k := 0; k < s.cfg.K; k++ {
			ll += s.gelAcc[k].LogMarginalLikelihood()
			if s.cfg.UseEmulsion {
				ll += s.emuAcc[k].LogMarginalLikelihood()
			}
		}
		return ll
	}
	// LogPdfScratch centers once into scratch instead of once per
	// matrix row; its result is bit-identical to LogPdf.
	for d := range s.data.Words {
		k := s.Y[d]
		ll += s.gelComp[k].gauss.LogPdfScratch(s.data.Gel[d], s.scr.gelDiff)
		if s.cfg.UseEmulsion {
			ll += s.emuComp[k].gauss.LogPdfScratch(s.data.Emu[d], s.scr.emuDiff)
		}
	}
	return ll
}
