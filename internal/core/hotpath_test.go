package core

// Equivalence suite for the hot-path overhaul: the kernel-cached
// fold-in and the scratch-reusing sweeps must reproduce the seed
// implementation bit for bit, and the steady-state fold-in path must
// not allocate.

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
)

// refFoldIn is the seed implementation of fold-in inference, kept
// verbatim (minus cancellation and telemetry, which draw nothing from
// the RNG) so the kernel-cached rewrite is provably bit-identical.
func refFoldIn(r *Result, words []int, gel, emu []float64, iters int, seed uint64) ([]float64, error) {
	gelG := make([]*stats.Gaussian, r.K)
	emuG := make([]*stats.Gaussian, r.K)
	for k := 0; k < r.K; k++ {
		g, err := r.GelGaussian(k)
		if err != nil {
			return nil, err
		}
		gelG[k] = g
		e, err := r.EmuGaussian(k)
		if err != nil {
			return nil, err
		}
		emuG[k] = e
	}
	conc := make([]float64, r.K)
	for k := 0; k < r.K; k++ {
		conc[k] = gelG[k].LogPdf(gel)
		if r.UseEmulsion {
			conc[k] += r.EmulsionWeight * emuG[k].LogPdf(emu)
		}
	}

	rng := stats.NewRNG(seed, 0xF01D)
	z := make([]int, len(words))
	ndk := make([]int, r.K)
	for n := range z {
		z[n] = rng.IntN(r.K)
		ndk[z[n]]++
	}
	y := rng.CategoricalLog(conc)

	thetaAcc := make([]float64, r.K)
	kept := 0
	weights := make([]float64, r.K)
	logw := make([]float64, r.K)
	for it := 0; it < iters; it++ {
		for n, w := range words {
			ndk[z[n]]--
			for k := 0; k < r.K; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				weights[k] = (float64(ndk[k]) + m + r.Alpha) * r.Phi[k][w]
			}
			z[n] = rng.Categorical(weights)
			ndk[z[n]]++
		}
		for k := 0; k < r.K; k++ {
			logw[k] = math.Log(float64(ndk[k])+r.Alpha) + conc[k]
		}
		y = rng.CategoricalLog(logw)

		if it >= iters/2 {
			kept++
			denom := float64(len(words)) + 1 + r.Alpha*float64(r.K)
			for k := 0; k < r.K; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				thetaAcc[k] += (float64(ndk[k]) + m + r.Alpha) / denom
			}
		}
	}
	for k := range thetaAcc {
		thetaAcc[k] /= float64(kept)
	}
	return thetaAcc, nil
}

// TestFoldInKernelBitIdenticalToSeed drives the kernel path and the
// seed implementation over the same requests — with and without
// texture words, across seeds and chain lengths — and requires exact
// equality, not tolerance.
func TestFoldInKernelBitIdenticalToSeed(t *testing.T) {
	data, _ := synthData(21, 150)
	cfg := smallCfg()
	cfg.Iterations = 40
	res, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		words []int
		doc   int
		iters int
		seed  uint64
	}{
		{[]int{0, 1, 2, 0}, 0, 60, 1},
		{[]int{3, 4, 5}, 1, 33, 2},
		{nil, 2, 40, 3},
		{[]int{6, 7, 8, 8, 6}, 3, 11, 99},
		{[]int{0, 4, 8}, 4, 100, 7},
	}
	for i, c := range cases {
		want, err := refFoldIn(res, c.words, data.Gel[c.doc], data.Emu[c.doc], c.iters, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.FoldIn(c.words, data.Gel[c.doc], data.Emu[c.doc], c.iters, c.seed)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("case %d: θ[%d] = %v, seed implementation %v", i, k, got[k], want[k])
			}
		}
		// And again through the cached kernel's zero-alloc entry point.
		kn, err := res.BuildKernel()
		if err != nil {
			t.Fatal(err)
		}
		theta := make([]float64, kn.K())
		if err := kn.FoldInTo(context.Background(), theta, c.words, data.Gel[c.doc], data.Emu[c.doc], c.iters, c.seed); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if theta[k] != want[k] {
				t.Fatalf("case %d: FoldInTo θ[%d] = %v, seed implementation %v", i, k, theta[k], want[k])
			}
		}
	}
}

// TestFoldInDegenerateModelTypedError: a Result with no topics or
// missing components used to panic on r.Gel[0]; it must now return an
// error matching ErrDegenerateModel.
func TestFoldInDegenerateModelTypedError(t *testing.T) {
	cases := map[string]*Result{
		"empty":          {},
		"no components":  {K: 3, V: 4, Phi: [][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}}, Alpha: 0.1},
		"phi rows":       {K: 2, V: 4, Gel: make([]Component, 2), Emu: make([]Component, 2), Phi: [][]float64{{1, 0, 0, 0}}, Alpha: 0.1},
		"phi row length": {K: 1, V: 4, Gel: make([]Component, 1), Emu: make([]Component, 1), Phi: [][]float64{{1, 0}}, Alpha: 0.1},
	}
	for name, res := range cases {
		_, err := res.FoldIn([]int{0}, []float64{1, 2}, []float64{1, 2}, 10, 1)
		if !errors.Is(err, ErrDegenerateModel) {
			t.Errorf("%s: err = %v, want ErrDegenerateModel", name, err)
		}
	}
}

// TestFoldInToAllocFree: with the kernel built and the scratch pool
// warm, a fold-in chain must not allocate at all.
func TestFoldInToAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	data, _ := synthData(22, 120)
	cfg := smallCfg()
	cfg.Iterations = 30
	res, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kn, err := res.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	theta := make([]float64, kn.K())
	words := []int{0, 3, 6, 1}
	ctx := context.Background()
	if err := kn.FoldInTo(ctx, theta, words, data.Gel[0], data.Emu[0], 50, 9); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := kn.FoldInTo(ctx, theta, words, data.Gel[0], data.Emu[0], 50, 9); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state FoldInTo allocates %.1f/op, want 0", n)
	}
}

// TestCollapsedDeterministicState: the collapsed sampler (the one
// exercising NWAccum's factored predictive) must stay bit-reproducible
// across runs of the same seed.
func TestCollapsedDeterministicState(t *testing.T) {
	data, _ := synthData(23, 90)
	run := func() *Result {
		cfg := smallCfg()
		cfg.Collapsed = true
		cfg.Iterations = 25
		res, err := Fit(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	for d := range r1.Y {
		if r1.Y[d] != r2.Y[d] {
			t.Fatalf("Y[%d] differs", d)
		}
	}
	for i := range r1.LogLik {
		if r1.LogLik[i] != r2.LogLik[i] {
			t.Fatalf("loglik[%d] differs: %g vs %g", i, r1.LogLik[i], r2.LogLik[i])
		}
	}
}

// TestSweepScratchReuseKeepsChainsIndependent: two samplers sharing
// nothing must produce the same chain as a single sampler run twice —
// guarding against scratch state leaking between Sweep calls.
func TestSweepScratchReuseKeepsChainsIndependent(t *testing.T) {
	data, _ := synthData(24, 60)
	cfg := smallCfg()
	cfg.Iterations = 10
	mk := func() *Sampler {
		s, err := NewSampler(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		if err := a.Sweep(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if err := b.Sweep(); err != nil {
			t.Fatal(err)
		}
	}
	for d := range a.Z {
		if a.Y[d] != b.Y[d] {
			t.Fatalf("Y[%d] differs", d)
		}
		for n := range a.Z[d] {
			if a.Z[d][n] != b.Z[d][n] {
				t.Fatalf("Z[%d][%d] differs", d, n)
			}
		}
	}
}
