package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/stats"
)

// snapshotVersion guards the snapshot wire format. A reader refuses
// snapshots from a future format rather than guessing at their layout.
const snapshotVersion = 1

// ErrSnapshot marks a snapshot that cannot be restored into the given
// sampler configuration — wrong shape, wrong seed, wrong sampler mode,
// or a future format version. Callers distinguish it from I/O errors
// with errors.Is.
var ErrSnapshot = errors.New("snapshot incompatible")

// accumState is the wire form of one NWAccum's sufficient statistics.
// The floats round-trip exactly through JSON (Go emits the shortest
// representation that parses back to the same float64), which is what
// makes collapsed-mode resume byte-identical.
type accumState struct {
	N     float64     `json:"n"`
	Sum   []float64   `json:"sum"`
	Outer [][]float64 `json:"outer"`
}

// Snapshot is the complete state of a Sampler captured between sweeps:
// latent assignments, the current component draws (or collapsed
// sufficient statistics), the RNG stream position, the learned α, the
// log-likelihood trace, and the sweep index. A chain killed after the
// snapshot and restored via ResumeSampler continues exactly where the
// original would have — for a fixed seed and worker count the resumed
// run's Z, Y and log-likelihood trace are byte-identical to an
// uninterrupted one.
//
// Count statistics (ndk, nkw, nk, mk) are intentionally absent: they
// are integer functions of Z and Y and are rebuilt exactly on restore,
// which keeps snapshots smaller and makes a corrupted snapshot that
// disagrees with itself impossible.
type Snapshot struct {
	FormatVersion int `json:"format_version"`

	// Shape and schedule identity — restore refuses a mismatch.
	K          int    `json:"k"`
	V          int    `json:"v"`
	Docs       int    `json:"docs"`
	Seed       uint64 `json:"seed"`
	Workers    int    `json:"workers"`
	Collapsed  bool   `json:"collapsed"`
	Iterations int    `json:"iterations"`

	Sweep  int       `json:"sweep"` // completed sweeps
	Alpha  float64   `json:"alpha"` // current α (LearnAlpha mutates it)
	Z      [][]int   `json:"z"`
	Y      []int     `json:"y"`
	RNG    []byte    `json:"rng"` // PCG stream position
	LogLik []float64 `json:"loglik"`

	// Explicit component draws (non-collapsed mode): the (μ,Λ) pairs in
	// effect for the next sweep's y phase.
	GelComp []jsonComponent `json:"gel_comp,omitempty"`
	EmuComp []jsonComponent `json:"emu_comp,omitempty"`

	// Sufficient-statistic accumulators (collapsed mode).
	GelAcc []accumState `json:"gel_acc,omitempty"`
	EmuAcc []accumState `json:"emu_acc,omitempty"`
}

// Snapshot deep-copies the sampler's full state. It must be called
// between sweeps (Run's checkpoint hook guarantees this); the returned
// value shares nothing with the sampler, so it can be serialized on
// another goroutine while the chain keeps running.
func (s *Sampler) Snapshot() *Snapshot {
	rngState, err := s.rng.MarshalState()
	if err != nil {
		// PCG marshaling cannot fail; a nil state would poison resume,
		// so fail loudly rather than checkpoint garbage.
		panic(fmt.Sprintf("core: snapshot RNG state: %v", err))
	}
	sn := &Snapshot{
		FormatVersion: snapshotVersion,
		K:             s.cfg.K,
		V:             s.data.V,
		Docs:          s.data.NumDocs(),
		Seed:          s.cfg.Seed,
		Workers:       normWorkers(s.cfg.Workers),
		Collapsed:     s.cfg.Collapsed,
		Iterations:    s.cfg.Iterations,
		Sweep:         s.sweep,
		Alpha:         s.cfg.Alpha,
		Y:             append([]int(nil), s.Y...),
		RNG:           rngState,
		LogLik:        append([]float64(nil), s.LogLik...),
	}
	sn.Z = make([][]int, len(s.Z))
	for d, zs := range s.Z {
		sn.Z[d] = append([]int(nil), zs...)
	}
	if s.cfg.Collapsed {
		sn.GelAcc = accumStates(s.gelAcc)
		sn.EmuAcc = accumStates(s.emuAcc)
	} else {
		sn.GelComp = componentStates(s.gelComp)
		sn.EmuComp = componentStates(s.emuComp)
	}
	return sn
}

func accumStates(accs []*stats.NWAccum) []accumState {
	out := make([]accumState, len(accs))
	for k, a := range accs {
		n, sum, outer := a.State()
		rows := make([][]float64, outer.R)
		for i := 0; i < outer.R; i++ {
			rows[i] = outer.Row(i)
		}
		out[k] = accumState{N: n, Sum: sum, Outer: rows}
	}
	return out
}

func componentStates(comps []component) []jsonComponent {
	out := make([]jsonComponent, len(comps))
	for k, c := range comps {
		mean := append([]float64(nil), c.gauss.Mean...)
		out[k] = toJSONComponent(Component{Mean: mean, Precision: c.gauss.Precision})
	}
	return out
}

// WriteJSON serializes the snapshot as one JSON document.
func (sn *Snapshot) WriteJSON(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(sn); err != nil {
		return fmt.Errorf("core: encoding snapshot: %w", err)
	}
	return nil
}

// ReadSnapshotJSON deserializes a snapshot written by WriteJSON,
// rejecting future format versions with ErrSnapshot.
func ReadSnapshotJSON(r io.Reader) (*Snapshot, error) {
	var sn Snapshot
	if err := json.NewDecoder(r).Decode(&sn); err != nil {
		return nil, fmt.Errorf("core: decoding snapshot: %w", err)
	}
	if sn.FormatVersion != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot format %d, this build reads %d: %w",
			sn.FormatVersion, snapshotVersion, ErrSnapshot)
	}
	return &sn, nil
}

// normWorkers maps the two spellings of "sequential" (0 and 1) onto
// one value so snapshots taken under either resume under either.
func normWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

// ResumeSampler rebuilds a Sampler from a Snapshot so that Run
// continues the chain at the next sweep. data and cfg must describe
// the same problem the snapshot was taken from — same document set,
// topic count, seed, sampler mode, and worker count — or the restore
// is refused with ErrSnapshot; determinism guarantees are meaningless
// across a silent mismatch. cfg.Iterations may differ (a resumed chain
// can be extended or shortened); cfg.Alpha is superseded by the
// snapshot's live value.
func ResumeSampler(data *Data, cfg Config, sn *Snapshot) (*Sampler, error) {
	cfg, gelDim, emuDim, err := prepareConfig(data, cfg)
	if err != nil {
		return nil, err
	}
	if sn.FormatVersion != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot format %d, want %d: %w", sn.FormatVersion, snapshotVersion, ErrSnapshot)
	}
	d := data.NumDocs()
	switch {
	case sn.K != cfg.K:
		return nil, fmt.Errorf("core: snapshot has K=%d, config K=%d: %w", sn.K, cfg.K, ErrSnapshot)
	case sn.V != data.V:
		return nil, fmt.Errorf("core: snapshot has V=%d, data V=%d: %w", sn.V, data.V, ErrSnapshot)
	case sn.Docs != d || len(sn.Z) != d || len(sn.Y) != d:
		return nil, fmt.Errorf("core: snapshot covers %d docs, data has %d: %w", sn.Docs, d, ErrSnapshot)
	case sn.Seed != cfg.Seed:
		return nil, fmt.Errorf("core: snapshot seed %d, config seed %d: %w", sn.Seed, cfg.Seed, ErrSnapshot)
	case sn.Collapsed != cfg.Collapsed:
		return nil, fmt.Errorf("core: snapshot collapsed=%v, config collapsed=%v: %w", sn.Collapsed, cfg.Collapsed, ErrSnapshot)
	case normWorkers(sn.Workers) != normWorkers(cfg.Workers):
		return nil, fmt.Errorf("core: snapshot taken with %d workers, config has %d: %w", sn.Workers, cfg.Workers, ErrSnapshot)
	case sn.Sweep < 0:
		return nil, fmt.Errorf("core: snapshot sweep %d negative: %w", sn.Sweep, ErrSnapshot)
	case sn.Alpha <= 0:
		return nil, fmt.Errorf("core: snapshot α=%g not positive: %w", sn.Alpha, ErrSnapshot)
	}
	cfg.Alpha = sn.Alpha

	s := &Sampler{
		cfg:    cfg,
		data:   data,
		rng:    stats.NewRNG(cfg.Seed, 0x70F1C),
		gelDim: gelDim,
		emuDim: emuDim,
		sweep:  sn.Sweep,
		LogLik: append([]float64(nil), sn.LogLik...),
	}
	if err := s.rng.UnmarshalState(sn.RNG); err != nil {
		return nil, fmt.Errorf("core: snapshot RNG state: %w: %v", ErrSnapshot, err)
	}

	// Latent assignments, then the counts rebuilt from them exactly.
	s.Z = make([][]int, d)
	s.Y = make([]int, d)
	s.ndk = make([][]int, d)
	s.nd = make([]int, d)
	s.nwk = makeCountTable(data.V, cfg.K)
	s.nk = make([]int, cfg.K)
	s.mk = make([]int, cfg.K)
	for i := 0; i < d; i++ {
		if len(sn.Z[i]) != len(data.Words[i]) {
			return nil, fmt.Errorf("core: snapshot doc %d has %d tokens, data has %d: %w",
				i, len(sn.Z[i]), len(data.Words[i]), ErrSnapshot)
		}
		y := sn.Y[i]
		if y < 0 || y >= cfg.K {
			return nil, fmt.Errorf("core: snapshot y[%d]=%d outside [0,%d): %w", i, y, cfg.K, ErrSnapshot)
		}
		s.Y[i] = y
		s.mk[y]++
		s.ndk[i] = make([]int, cfg.K)
		s.Z[i] = append([]int(nil), sn.Z[i]...)
		s.nd[i] = len(data.Words[i])
		for n, w := range data.Words[i] {
			k := s.Z[i][n]
			if k < 0 || k >= cfg.K {
				return nil, fmt.Errorf("core: snapshot z[%d][%d]=%d outside [0,%d): %w", i, n, k, cfg.K, ErrSnapshot)
			}
			s.ndk[i][k]++
			s.nwk[w][k]++
			s.nk[k]++
		}
	}
	s.initScratch()

	if cfg.Collapsed {
		if len(sn.GelAcc) != cfg.K || len(sn.EmuAcc) != cfg.K {
			return nil, fmt.Errorf("core: snapshot has %d/%d accumulators, want %d: %w",
				len(sn.GelAcc), len(sn.EmuAcc), cfg.K, ErrSnapshot)
		}
		s.gelAcc = make([]*stats.NWAccum, cfg.K)
		s.emuAcc = make([]*stats.NWAccum, cfg.K)
		for k := 0; k < cfg.K; k++ {
			ga, err := restoreAccum(cfg.GelPrior, sn.GelAcc[k])
			if err != nil {
				return nil, fmt.Errorf("core: gel accumulator %d: %w: %v", k, ErrSnapshot, err)
			}
			ea, err := restoreAccum(cfg.EmuPrior, sn.EmuAcc[k])
			if err != nil {
				return nil, fmt.Errorf("core: emulsion accumulator %d: %w: %v", k, ErrSnapshot, err)
			}
			s.gelAcc[k], s.emuAcc[k] = ga, ea
		}
		return s, nil
	}

	if len(sn.GelComp) != cfg.K || len(sn.EmuComp) != cfg.K {
		return nil, fmt.Errorf("core: snapshot has %d/%d components, want %d: %w",
			len(sn.GelComp), len(sn.EmuComp), cfg.K, ErrSnapshot)
	}
	s.gelComp = make([]component, cfg.K)
	s.emuComp = make([]component, cfg.K)
	for k := 0; k < cfg.K; k++ {
		gc, err := restoreComponent(sn.GelComp[k], gelDim)
		if err != nil {
			return nil, fmt.Errorf("core: gel component %d: %w: %v", k, ErrSnapshot, err)
		}
		ec, err := restoreComponent(sn.EmuComp[k], emuDim)
		if err != nil {
			return nil, fmt.Errorf("core: emulsion component %d: %w: %v", k, ErrSnapshot, err)
		}
		s.gelComp[k], s.emuComp[k] = gc, ec
	}
	// The scratch banks mirror the components; a resumed sampler must
	// score its first y phase against the restored parameters, not the
	// zero-valued bank initScratch left behind.
	if err := s.refreshBanks(); err != nil {
		return nil, fmt.Errorf("core: snapshot component banks: %w", err)
	}
	return s, nil
}

// restoreComponent rebuilds a component from its wire form without
// re-regularizing: the snapshotted precision is the exact matrix the
// running chain held, already positive definite.
func restoreComponent(jc jsonComponent, dim int) (component, error) {
	c, err := fromJSONComponent(jc)
	if err != nil {
		return component{}, err
	}
	if len(c.Mean) != dim {
		return component{}, fmt.Errorf("component dim %d, want %d", len(c.Mean), dim)
	}
	g, err := stats.NewGaussian(c.Mean, c.Precision)
	if err != nil {
		return component{}, err
	}
	return component{gauss: g}, nil
}

func restoreAccum(prior *stats.NormalWishart, st accumState) (*stats.NWAccum, error) {
	a := stats.NewNWAccum(prior)
	if len(st.Outer) == 0 || len(st.Outer[0]) != len(st.Outer) {
		return nil, fmt.Errorf("accumulator outer-product matrix not square")
	}
	if err := a.SetState(st.N, st.Sum, stats.MatFromRows(st.Outer)); err != nil {
		return nil, err
	}
	return a, nil
}

// ResumeFit restores a chain from a snapshot, runs it to cfg.Iterations,
// and returns the estimates — the resume counterpart of Fit.
func ResumeFit(data *Data, cfg Config, sn *Snapshot) (*Result, error) {
	s, err := ResumeSampler(data, cfg, sn)
	if err != nil {
		return nil, err
	}
	if err := s.Run(nil); err != nil {
		return nil, err
	}
	return s.Estimate(), nil
}
