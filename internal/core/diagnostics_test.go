package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestGewekeZConvergedChain(t *testing.T) {
	rng := stats.NewRNG(90, 1)
	trace := make([]float64, 200)
	for i := range trace {
		trace[i] = rng.Normal(0, 1)
	}
	z, err := GewekeZ(trace, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z) > 3 {
		t.Errorf("stationary chain z = %g", z)
	}
}

func TestGewekeZDriftingChain(t *testing.T) {
	trace := make([]float64, 200)
	rng := stats.NewRNG(91, 1)
	for i := range trace {
		trace[i] = float64(i)*0.5 + rng.Normal(0, 1)
	}
	z, err := GewekeZ(trace, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z) < 5 {
		t.Errorf("drifting chain z = %g, want large", z)
	}
}

func TestGewekeZValidation(t *testing.T) {
	if _, err := GewekeZ([]float64{1, 2}, 0.1, 0.5); err == nil {
		t.Error("short trace should fail")
	}
	trace := make([]float64, 50)
	if _, err := GewekeZ(trace, 0.6, 0.6); err == nil {
		t.Error("overlapping windows should fail")
	}
	// Constant trace converges trivially.
	for i := range trace {
		trace[i] = 7
	}
	z, err := GewekeZ(trace, 0.1, 0.5)
	if err != nil || z != 0 {
		t.Errorf("constant trace: z=%g err=%v", z, err)
	}
}

func TestESS(t *testing.T) {
	rng := stats.NewRNG(92, 1)
	iid := make([]float64, 400)
	for i := range iid {
		iid[i] = rng.Normal(0, 1)
	}
	if ess := ESS(iid); ess < 200 {
		t.Errorf("iid ESS = %g, want near n", ess)
	}
	// AR(1) with strong correlation has much lower ESS.
	ar := make([]float64, 400)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.95*ar[i-1] + rng.Normal(0, 0.1)
	}
	if ess := ESS(ar); ess > 100 {
		t.Errorf("correlated ESS = %g, want small", ess)
	}
	if got := ESS([]float64{1, 2}); got != 2 {
		t.Errorf("tiny trace ESS = %g", got)
	}
}

func TestSplitData(t *testing.T) {
	data, _ := synthData(93, 100)
	train, test, err := SplitData(data, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if test.NumDocs() != 20 || train.NumDocs() != 80 {
		t.Errorf("split %d/%d", train.NumDocs(), test.NumDocs())
	}
	if train.V != data.V || test.V != data.V {
		t.Error("vocab size lost")
	}
	// Deterministic.
	train2, _, err := SplitData(data, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range train.Gel {
		if train.Gel[i][0] != train2.Gel[i][0] {
			t.Fatal("split not deterministic")
		}
	}
	// Validation.
	if _, _, err := SplitData(data, 0, 1); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, _, err := SplitData(data, 1, 1); err == nil {
		t.Error("full fraction should fail")
	}
}

func TestEvaluateHeldOut(t *testing.T) {
	data, _ := synthData(94, 400)
	train, test, err := SplitData(data, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(train, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	ho, err := res.Evaluate(test, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ho.Docs != test.NumDocs() || ho.Tokens == 0 {
		t.Fatalf("held-out counts: %+v", ho)
	}
	// The true model has 9 words with ~3 probable per topic; a fitted
	// model must beat the uniform baseline (V=9) clearly.
	if ho.Perplexity >= 8 {
		t.Errorf("held-out perplexity = %g, want < 8", ho.Perplexity)
	}
	if math.IsNaN(ho.ConcLogLik) || ho.ConcLogLik > 10 {
		t.Errorf("concentration loglik = %g", ho.ConcLogLik)
	}

	// A deliberately wrong-K model should not beat the right-K model's
	// word perplexity by any margin (sanity of the selection criterion).
	cfgBad := smallCfg()
	cfgBad.K = 2
	resBad, err := Fit(train, cfgBad)
	if err != nil {
		t.Fatal(err)
	}
	hoBad, err := resBad.Evaluate(test, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hoBad.Perplexity < ho.Perplexity*0.95 {
		t.Errorf("K=2 perplexity %g should not beat K=3's %g", hoBad.Perplexity, ho.Perplexity)
	}
}

func TestGibbsTraceConverges(t *testing.T) {
	data, _ := synthData(95, 200)
	s, err := NewSampler(data, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	// After burn-in the trace should pass the Geweke check.
	post := s.LogLik[len(s.LogLik)/3:]
	z, err := GewekeZ(post, 0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z) > 4 {
		t.Errorf("post-burn-in Geweke z = %g", z)
	}
}
