package core

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// HealthKind classifies one detected numerical-health violation.
type HealthKind string

const (
	// HealthNaNLogLik: the joint log-likelihood came back NaN or ±Inf.
	// Always checked, policy or not — a chain with a non-finite
	// likelihood can only produce garbage.
	HealthNaNLogLik HealthKind = "nan_loglik"
	// HealthLogLikCollapse: the log-likelihood fell more than
	// HealthPolicy.MaxLLDrop below the chain's running best.
	HealthLogLikCollapse HealthKind = "loglik_collapse"
	// HealthTopicCollapse: topic occupancy imploded to at most
	// HealthPolicy.MinTopics topics.
	HealthTopicCollapse HealthKind = "topic_collapse"
	// HealthDegenerateCovariance: a Normal-Wishart posterior (explicit
	// draw or collapsed predictive) lost positive definiteness beyond
	// what jitter regularization can repair.
	HealthDegenerateCovariance HealthKind = "degenerate_covariance"
	// HealthSweepStall: a sweep exceeded HealthPolicy.SweepTimeout, or
	// an external watchdog observed no sweep completing in time and
	// called AbortUnhealthy.
	HealthSweepStall HealthKind = "sweep_stall"
)

// ErrUnhealthy is the sentinel wrapped by every HealthError, so
// callers can separate "the chain's numbers went bad" from I/O and
// configuration failures with errors.Is.
var ErrUnhealthy = errors.New("core: fit numerically unhealthy")

// HealthEvent is one detected violation: what kind, after which sweep,
// and a human-readable diagnosis.
type HealthEvent struct {
	Kind   HealthKind
	Sweep  int     // 0-based index of the sweep that tripped the check
	LogLik float64 // log-likelihood of that sweep (NaN when unknown)
	Detail string
}

// HealthError is the typed error a Sampler.Run returns when a health
// check aborts the chain. It wraps ErrUnhealthy and, when the
// violation surfaced as an underlying error (e.g. a non-PD Cholesky
// from stats), that cause too.
type HealthError struct {
	Event HealthEvent
	Cause error
}

func (e *HealthError) Error() string {
	return fmt.Sprintf("core: fit unhealthy (%s) after sweep %d: %s", e.Event.Kind, e.Event.Sweep, e.Event.Detail)
}

// Unwrap exposes both the ErrUnhealthy sentinel and the concrete
// cause to errors.Is/As.
func (e *HealthError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrUnhealthy}
	}
	return []error{ErrUnhealthy, e.Cause}
}

// HealthPolicy configures the sampler's per-sweep health monitor. The
// zero value keeps only the always-on NaN/±Inf log-likelihood check;
// each threshold enables one more classifier. Violations abort the
// chain: Run returns a *HealthError diagnosing the first one instead
// of sampling onward from a diverged state.
type HealthPolicy struct {
	// MaxLLDrop aborts when the sweep log-likelihood falls more than
	// this below the chain's running best (0 disables). The best is
	// tracked over finite values only and carries across a resume via
	// the snapshot's trace.
	MaxLLDrop float64

	// MinTopics aborts when at most this many topics still hold a
	// recipe (0 disables; 1 catches the classic single-topic implosion).
	MinTopics int

	// SweepTimeout aborts when one sweep's sampling wall time exceeds
	// it (0 disables). This is the in-band half of the stall watchdog;
	// a hung sweep that never returns needs the out-of-band half
	// (AbortUnhealthy from a supervisor goroutine).
	SweepTimeout time.Duration

	// OnEvent, when non-nil, observes the event that aborted the chain
	// (exactly once per Run error). Keep it cheap; it runs on the
	// sampling goroutine.
	OnEvent func(HealthEvent)

	// Perturb, when non-nil, rewrites the log-likelihood after each
	// sweep before it is recorded or classified. It exists for
	// deterministic fault injection in tests — poisoning sweep k with a
	// NaN or a collapse — and must be nil in production.
	Perturb func(sweep int, logLik float64) float64
}

// finite reports whether v is a usable log-likelihood value.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// classifySweep applies the policy to one completed sweep and returns
// the first violation, or nil. elapsed is the sweep's sampling wall
// time (hooks excluded).
func (p HealthPolicy) classifySweep(sweep int, ll, best float64, occupied int, elapsed time.Duration) *HealthEvent {
	switch {
	case !finite(ll):
		return &HealthEvent{Kind: HealthNaNLogLik, Sweep: sweep, LogLik: ll,
			Detail: fmt.Sprintf("log-likelihood %v", ll)}
	case p.MaxLLDrop > 0 && finite(best) && ll < best-p.MaxLLDrop:
		return &HealthEvent{Kind: HealthLogLikCollapse, Sweep: sweep, LogLik: ll,
			Detail: fmt.Sprintf("log-likelihood %.6g dropped %.6g below the running best %.6g (limit %g)",
				ll, best-ll, best, p.MaxLLDrop)}
	case p.MinTopics > 0 && occupied <= p.MinTopics:
		return &HealthEvent{Kind: HealthTopicCollapse, Sweep: sweep, LogLik: ll,
			Detail: fmt.Sprintf("only %d topic(s) occupied (floor %d)", occupied, p.MinTopics)}
	case p.SweepTimeout > 0 && elapsed > p.SweepTimeout:
		return &HealthEvent{Kind: HealthSweepStall, Sweep: sweep, LogLik: ll,
			Detail: fmt.Sprintf("sweep took %v, limit %v", elapsed, p.SweepTimeout)}
	}
	return nil
}

// abortSignal is an asynchronous stop request delivered to a running
// chain via Sampler.Abort/AbortUnhealthy.
type abortSignal struct {
	kind   HealthKind // empty for a plain (non-health) abort
	detail string
	cause  error
}

// Abort asks a running chain to stop cooperatively: the sampling loops
// check the flag between documents and between sweeps, and Run returns
// an error wrapping cause. The first abort wins; later calls are
// no-ops. Safe to call from any goroutine while Run is executing.
func (s *Sampler) Abort(cause error) {
	s.abort.CompareAndSwap(nil, &abortSignal{cause: cause})
}

// AbortUnhealthy is Abort for watchdogs: Run returns a *HealthError of
// the given kind (stamped with the current sweep index) instead of a
// plain wrapped error. External supervisors use it to convert "no
// heartbeat within the sweep deadline" into a typed sweep_stall event.
func (s *Sampler) AbortUnhealthy(kind HealthKind, detail string) {
	s.abort.CompareAndSwap(nil, &abortSignal{kind: kind, detail: detail})
}

// aborted is the cheap per-document check used inside sampling loops.
func (s *Sampler) aborted() bool { return s.abort.Load() != nil }

// abortErr materializes the pending abort into the error Run returns,
// or nil when no abort is pending.
func (s *Sampler) abortErr() error {
	sig := s.abort.Load()
	if sig == nil {
		return nil
	}
	if sig.kind != "" {
		return &HealthError{
			Event: HealthEvent{Kind: sig.kind, Sweep: s.sweep, LogLik: math.NaN(), Detail: sig.detail},
			Cause: sig.cause,
		}
	}
	return fmt.Errorf("core: fit aborted at sweep %d: %w", s.sweep, sig.cause)
}
