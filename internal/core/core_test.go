package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/stats"
)

// synthData draws documents from the model's own generative process
// with three well-separated topics, returning the data and true
// labels.
func synthData(seed uint64, docs int) (*Data, []int) {
	rng := stats.NewRNG(seed, 99)
	const v = 9
	// Topic word distributions: each topic owns three words.
	phi := [][]float64{
		{.30, .30, .30, .03, .03, .02, .01, .005, .005},
		{.01, .005, .005, .30, .30, .30, .03, .03, .02},
		{.03, .03, .02, .01, .005, .005, .30, .30, .30},
	}
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	emuMeans := [][]float64{{2, 8}, {8, 2}, {5, 5}}
	data := &Data{V: v}
	truth := make([]int, docs)
	for d := 0; d < docs; d++ {
		k := d % 3
		truth[d] = k
		n := 2 + rng.IntN(4)
		words := make([]int, n)
		for i := range words {
			words[i] = rng.Categorical(phi[k])
		}
		gel := []float64{rng.Normal(gelMeans[k][0], 0.25), rng.Normal(gelMeans[k][1], 0.25)}
		emu := []float64{rng.Normal(emuMeans[k][0], 0.3), rng.Normal(emuMeans[k][1], 0.3)}
		data.Words = append(data.Words, words)
		data.Gel = append(data.Gel, gel)
		data.Emu = append(data.Emu, emu)
	}
	return data, truth
}

func fitSynth(t *testing.T, cfg Config, docs int) (*Result, []int) {
	t.Helper()
	data, truth := synthData(11, docs)
	res, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, truth
}

// clusterAccuracy scores an assignment against truth under the best
// greedy label matching.
func clusterAccuracy(assign, truth []int, k int) float64 {
	// contingency[c][t]
	cont := make([][]int, k)
	for i := range cont {
		cont[i] = make([]int, k)
	}
	for i := range assign {
		cont[assign[i]][truth[i]]++
	}
	used := make([]bool, k)
	correct := 0
	for c := 0; c < k; c++ {
		best, bestT := -1, -1
		for tt := 0; tt < k; tt++ {
			if !used[tt] && cont[c][tt] > best {
				best, bestT = cont[c][tt], tt
			}
		}
		if bestT >= 0 {
			used[bestT] = true
			correct += cont[c][bestT]
		}
	}
	return float64(correct) / float64(len(assign))
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.Iterations = 120
	cfg.BurnIn = 40
	return cfg
}

func TestFitRecoversJointStructure(t *testing.T) {
	res, truth := fitSynth(t, smallCfg(), 300)
	acc := clusterAccuracy(res.Assign(), truth, 3)
	if acc < 0.9 {
		t.Errorf("joint model recovery accuracy = %.3f, want ≥ 0.9", acc)
	}
	// The Y assignments should agree too.
	accY := clusterAccuracy(res.Y, truth, 3)
	if accY < 0.9 {
		t.Errorf("y recovery accuracy = %.3f", accY)
	}
}

func TestFitRecoversComponents(t *testing.T) {
	res, truth := fitSynth(t, smallCfg(), 300)
	// For each true topic, the matched component mean must sit near the
	// generating gel mean.
	gelMeans := [][]float64{{3, 9}, {6, 9}, {9, 4}}
	assign := res.Assign()
	// map cluster → majority truth
	for k := 0; k < res.K; k++ {
		counts := make([]int, 3)
		n := 0
		for d, c := range assign {
			if c == k {
				counts[truth[d]]++
				n++
			}
		}
		if n < 10 {
			continue
		}
		tt := stats.ArgMax([]float64{float64(counts[0]), float64(counts[1]), float64(counts[2])})
		for j := range gelMeans[tt] {
			if math.Abs(res.Gel[k].Mean[j]-gelMeans[tt][j]) > 0.5 {
				t.Errorf("topic %d gel mean[%d] = %.2f, want ≈ %.2f", k, j, res.Gel[k].Mean[j], gelMeans[tt][j])
			}
		}
	}
}

func TestFitCollapsedRecovers(t *testing.T) {
	cfg := smallCfg()
	cfg.Collapsed = true
	cfg.Iterations = 60 // collapsed sweeps are costlier but mix faster
	res, truth := fitSynth(t, cfg, 180)
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.9 {
		t.Errorf("collapsed recovery accuracy = %.3f", acc)
	}
}

func TestFitGelOnlyAblation(t *testing.T) {
	cfg := smallCfg()
	cfg.UseEmulsion = false
	res, truth := fitSynth(t, cfg, 300)
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.85 {
		t.Errorf("gel-only recovery accuracy = %.3f", acc)
	}
}

func TestLogLikelihoodImproves(t *testing.T) {
	data, _ := synthData(12, 200)
	s, err := NewSampler(data, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	first := stats.Mean(s.LogLik[:10])
	last := stats.Mean(s.LogLik[len(s.LogLik)-10:])
	if last <= first {
		t.Errorf("log-likelihood did not improve: %.1f → %.1f", first, last)
	}
}

func TestFitDeterministic(t *testing.T) {
	data, _ := synthData(13, 120)
	cfg := smallCfg()
	cfg.Iterations = 30
	r1, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := range r1.Y {
		if r1.Y[d] != r2.Y[d] {
			t.Fatal("same seed must give identical assignments")
		}
	}
	for k := range r1.Phi {
		for w := range r1.Phi[k] {
			if r1.Phi[k][w] != r2.Phi[k][w] {
				t.Fatal("same seed must give identical φ")
			}
		}
	}
}

func TestEstimateShapesAndNormalization(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 120)
	if len(res.Phi) != 3 || len(res.Phi[0]) != 9 {
		t.Fatalf("φ shape wrong")
	}
	for k, row := range res.Phi {
		if s := stats.SumVec(row); math.Abs(s-1) > 1e-9 {
			t.Errorf("φ[%d] sums to %g", k, s)
		}
	}
	for d, row := range res.Theta {
		if s := stats.SumVec(row); math.Abs(s-1) > 1e-9 {
			t.Errorf("θ[%d] sums to %g", d, s)
		}
		if d > 5 {
			break
		}
	}
	// Top terms are sorted by probability.
	top := res.TopTerms(0, 5)
	for i := 1; i < len(top); i++ {
		if top[i].Prob > top[i-1].Prob {
			t.Error("TopTerms not sorted")
		}
	}
	if len(res.DocsPerTopic()) != 3 {
		t.Error("DocsPerTopic shape")
	}
	if _, err := res.GelGaussian(0); err != nil {
		t.Errorf("GelGaussian: %v", err)
	}
	if _, err := res.EmuGaussian(2); err != nil {
		t.Errorf("EmuGaussian: %v", err)
	}
}

func TestDataValidation(t *testing.T) {
	good, _ := synthData(14, 10)
	if _, _, err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Data{V: 5, Words: [][]int{{7}}, Gel: [][]float64{{1}}, Emu: [][]float64{{1}}}
	if _, _, err := bad.Validate(); err == nil {
		t.Error("out-of-range word should fail")
	}
	bad2 := &Data{V: 5, Words: [][]int{{1}, {2}}, Gel: [][]float64{{1}}, Emu: [][]float64{{1}, {2}}}
	if _, _, err := bad2.Validate(); err == nil {
		t.Error("mismatched lengths should fail")
	}
	bad3 := &Data{V: 5, Words: [][]int{{1}, {2}}, Gel: [][]float64{{1}, {1, 2}}, Emu: [][]float64{{1}, {1}}}
	if _, _, err := bad3.Validate(); err == nil {
		t.Error("ragged gel dims should fail")
	}
}

func TestNewSamplerValidation(t *testing.T) {
	data, _ := synthData(15, 20)
	for _, mut := range []func(*Config){
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Gamma = -1 },
		func(c *Config) { c.Iterations = 0 },
	} {
		cfg := smallCfg()
		mut(&cfg)
		if _, err := NewSampler(data, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	// Prior dim mismatch.
	cfg := smallCfg()
	wrong, err := stats.NewNormalWishart([]float64{0, 0, 0}, 1, 5, stats.Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg.GelPrior = wrong
	if _, err := NewSampler(data, cfg); err == nil {
		t.Error("gel prior dim mismatch should fail")
	}
}

func TestEmpiricalPriors(t *testing.T) {
	data, _ := synthData(16, 100)
	gp, ep, err := EmpiricalPriors(data)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Dim() != 2 || ep.Dim() != 2 {
		t.Errorf("prior dims %d/%d", gp.Dim(), ep.Dim())
	}
	// Prior mean ≈ data mean.
	want := stats.MeanVec(data.Gel)
	for i := range want {
		if math.Abs(gp.Mu0[i]-want[i]) > 1e-9 {
			t.Error("gel prior mean should equal data mean")
		}
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	res, _ := fitSynth(t, smallCfg(), 60)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != res.K || got.V != res.V || len(got.Phi) != len(res.Phi) {
		t.Error("shape lost")
	}
	if got.Gel[0].Precision.MaxAbsDiff(res.Gel[0].Precision) > 1e-12 {
		t.Error("precision lost")
	}
	if _, err := ReadResultJSON(bytes.NewBufferString(`{"k":2,"phi":[]}`)); err == nil {
		t.Error("inconsistent payload should fail")
	}
}

func TestFitLDARecoversWordClusters(t *testing.T) {
	data, truth := synthData(17, 300)
	cfg := DefaultLDAConfig()
	cfg.K = 3
	cfg.Iterations = 150
	res, err := FitLDA(data.Words, data.V, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Words-only clustering is noisier but should beat chance solidly.
	if acc := clusterAccuracy(res.Assign(), truth, 3); acc < 0.7 {
		t.Errorf("LDA accuracy = %.3f", acc)
	}
	for k, row := range res.Phi {
		if s := stats.SumVec(row); math.Abs(s-1) > 1e-9 {
			t.Errorf("LDA φ[%d] sums to %g", k, s)
		}
	}
	if len(res.LogLik) != cfg.Iterations {
		t.Error("missing loglik trace")
	}
}

func TestFitLDAValidation(t *testing.T) {
	if _, err := FitLDA(nil, 5, DefaultLDAConfig()); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FitLDA([][]int{{9}}, 5, DefaultLDAConfig()); err == nil {
		t.Error("out-of-range word should fail")
	}
	bad := DefaultLDAConfig()
	bad.K = 0
	if _, err := FitLDA([][]int{{1}}, 5, bad); err == nil {
		t.Error("bad config should fail")
	}
}

func TestFitGMMRecoversGaussians(t *testing.T) {
	data, truth := synthData(18, 300)
	res, err := FitGMM(data.Gel, GMMConfig{K: 3, Alpha: 1, Iterations: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.9 {
		t.Errorf("GMM accuracy = %.3f", acc)
	}
	if s := stats.SumVec(res.Weights); math.Abs(s-1) > 1e-9 {
		t.Errorf("weights sum to %g", s)
	}
	if len(res.Components) != 3 {
		t.Error("component count")
	}
}

func TestFitGMMValidation(t *testing.T) {
	if _, err := FitGMM(nil, GMMConfig{K: 2, Alpha: 1, Iterations: 1}); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := FitGMM([][]float64{{1, 2}, {1}}, GMMConfig{K: 2, Alpha: 1, Iterations: 1}); err == nil {
		t.Error("ragged input should fail")
	}
	if _, err := FitGMM([][]float64{{1, 2}}, GMMConfig{K: 0, Alpha: 1, Iterations: 1}); err == nil {
		t.Error("bad config should fail")
	}
}

func TestFitBestSelectsBetterChain(t *testing.T) {
	data, truth := synthData(200, 300)
	cfg := smallCfg()
	cfg.Iterations = 80
	res, err := FitBest(data, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.9 {
		t.Errorf("FitBest accuracy = %.3f", acc)
	}
	// The selected chain's tail log-likelihood is at least as good as a
	// single default-seed run's.
	single, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if meanTail(res.LogLik) < meanTail(single.LogLik)-1e-9 {
		t.Errorf("FitBest tail %g below single-run %g", meanTail(res.LogLik), meanTail(single.LogLik))
	}
	if _, err := FitBest(data, cfg, 0); err == nil {
		t.Error("zero restarts should fail")
	}
}

func TestLearnAlphaConverges(t *testing.T) {
	data, truth := synthData(201, 400)
	cfg := smallCfg()
	cfg.Alpha = 2.0 // deliberately far too smooth
	cfg.LearnAlpha = true
	cfg.Iterations = 150
	cfg.BurnIn = 30
	s, err := NewSampler(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(nil); err != nil {
		t.Fatal(err)
	}
	// The synthetic docs are single-topic: the learned α must shrink
	// well below the bad initial value.
	if got := s.Alpha(); got >= 1.0 {
		t.Errorf("learned α = %g, want ≪ 2.0", got)
	}
	res := s.Estimate()
	if acc := clusterAccuracy(res.Y, truth, 3); acc < 0.9 {
		t.Errorf("recovery with learned α = %.3f", acc)
	}
	if res.Alpha != s.Alpha() {
		t.Error("estimate should carry the learned α")
	}
}
