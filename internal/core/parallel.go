package core

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// sweepParallel runs one Gibbs pass with cfg.Workers goroutines using
// the approximate-distributed scheme of AD-LDA (Newman et al. 2009):
// documents are sharded; each worker samples its shard's z against a
// private copy of the topic-word counts, and the copies' deltas are
// merged after the barrier. Per-document state (ndk, Z, Y) is disjoint
// across shards, so only the nkw/nk approximation deviates from the
// sequential kernel — and it vanishes as the chain mixes. The y phase
// is exactly parallel (its kernel reads only per-document counts and
// the fixed components). Results are deterministic for a fixed worker
// count; they differ from the sequential chain, like any AD-LDA run.
func (s *Sampler) sweepParallel(sweep int) (phaseTimes, error) {
	var pt phaseTimes
	w := s.cfg.Workers
	shards := shardRanges(s.data.NumDocs(), w)
	if len(shards) == 0 {
		// No documents: the z and y phases are vacuous, but the
		// components are still redrawn from their priors so the sweep
		// count advances uniformly.
		t := time.Now()
		err := s.resampleComponents()
		pt.components = time.Since(t)
		return pt, err
	}
	zStart := time.Now()

	type delta struct {
		nkw [][]int
		nk  []int
	}
	deltas := make([]delta, len(shards))
	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, lo, hi int) {
			defer wg.Done()
			// Private copies of the shared counts.
			nkw := make([][]int, s.cfg.K)
			for k := range nkw {
				nkw[k] = append([]int(nil), s.nkw[k]...)
			}
			nk := append([]int(nil), s.nk...)
			rng := stats.NewRNG(s.cfg.Seed^0xAD1DA, uint64(sweep)<<16|uint64(si))

			weights := make([]float64, s.cfg.K)
			gv := s.cfg.Gamma * float64(s.data.V)
			for d := lo; d < hi; d++ {
				for n, word := range s.data.Words[d] {
					old := s.Z[d][n]
					s.ndk[d][old]--
					nkw[old][word]--
					nk[old]--
					for k := 0; k < s.cfg.K; k++ {
						m := 0.0
						if s.Y[d] == k {
							m = 1
						}
						weights[k] = (float64(s.ndk[d][k]) + m + s.cfg.Alpha) *
							(float64(nkw[k][word]) + s.cfg.Gamma) /
							(float64(nk[k]) + gv)
					}
					k := rng.Categorical(weights)
					s.Z[d][n] = k
					s.ndk[d][k]++
					nkw[k][word]++
					nk[k]++
				}
			}
			// Record the deltas against the shared state.
			dl := delta{nkw: make([][]int, s.cfg.K), nk: make([]int, s.cfg.K)}
			for k := 0; k < s.cfg.K; k++ {
				row := make([]int, s.data.V)
				for v := 0; v < s.data.V; v++ {
					row[v] = nkw[k][v] - s.nkw[k][v]
				}
				dl.nkw[k] = row
				dl.nk[k] = nk[k] - s.nk[k]
			}
			deltas[si] = dl
		}(si, sh[0], sh[1])
	}
	wg.Wait()
	for _, dl := range deltas {
		for k := 0; k < s.cfg.K; k++ {
			for v, dv := range dl.nkw[k] {
				s.nkw[k][v] += dv
			}
			s.nk[k] += dl.nk[k]
		}
	}
	pt.z = time.Since(zStart)
	yStart := time.Now()

	// y phase: exactly parallel (kernel reads ndk and the fixed
	// components only).
	for si, sh := range shards {
		wg.Add(1)
		go func(si, lo, hi int) {
			defer wg.Done()
			rng := stats.NewRNG(s.cfg.Seed^0x9D1DA, uint64(sweep)<<16|uint64(si))
			logw := make([]float64, s.cfg.K)
			for d := lo; d < hi; d++ {
				for k := 0; k < s.cfg.K; k++ {
					lw := logFloat(float64(s.ndk[d][k]) + s.cfg.Alpha)
					lw += s.gelComp[k].gauss.LogPdf(s.data.Gel[d])
					if s.cfg.UseEmulsion {
						lw += s.cfg.EmulsionWeight * s.emuComp[k].gauss.LogPdf(s.data.Emu[d])
					}
					logw[k] = lw
				}
				s.Y[d] = rng.CategoricalLog(logw)
			}
		}(si, sh[0], sh[1])
	}
	wg.Wait()
	for k := range s.mk {
		s.mk[k] = 0
	}
	for _, y := range s.Y {
		s.mk[y]++
	}
	pt.y = time.Since(yStart)
	cStart := time.Now()
	err := s.resampleComponents()
	pt.components = time.Since(cStart)
	return pt, err
}

// shardRanges splits n items into at most w contiguous [lo,hi) ranges.
// Zero items yield no shards (rather than a division by zero from the
// w = n clamp); a non-positive worker count is treated as one worker.
func shardRanges(n, w int) [][2]int {
	if n <= 0 {
		return nil
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	size := n / w
	rem := n % w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
