package core

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// sweepParallel runs one Gibbs pass with cfg.Workers goroutines using
// the approximate-distributed scheme of AD-LDA (Newman et al. 2009):
// documents are sharded; each worker samples its shard's z against a
// private copy of the topic-word counts, and the copies' deltas are
// merged after the barrier. Per-document state (ndk, Z, Y) is disjoint
// across shards, so only the nkw/nk approximation deviates from the
// sequential kernel — and it vanishes as the chain mixes. The y phase
// is exactly parallel (its kernel reads only per-document counts and
// the fixed components). Results are deterministic for a fixed worker
// count; they differ from the sequential chain, like any AD-LDA run.
func (s *Sampler) sweepParallel(sweep int) (phaseTimes, error) {
	var pt phaseTimes
	s.ensureLogTab()
	w := s.cfg.Workers
	shards := ShardRanges(s.data.NumDocs(), w)
	if len(shards) == 0 {
		// No documents: the z and y phases are vacuous, but the
		// components are still redrawn from their priors so the sweep
		// count advances uniformly.
		t := time.Now()
		err := s.resampleComponents()
		pt.components = time.Since(t)
		return pt, err
	}
	// Per-shard scratch (count copies, weight buffers, RNGs) persists
	// across sweeps: reseeding a pooled RNG reproduces the exact draw
	// stream a freshly constructed one would emit, so determinism for a
	// fixed worker count is untouched while the per-sweep K×V copy
	// allocations disappear.
	if len(s.scr.par) != len(shards) {
		s.scr.par = make([]parShard, len(shards))
		for i := range s.scr.par {
			s.scr.par[i] = newParShard(s.data.V, s.cfg.K, s.gelDim, s.emuDim)
		}
	}
	zStart := time.Now()

	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, lo, hi int) {
			defer wg.Done()
			sc := &s.scr.par[si]
			// Private copies of the shared counts.
			nwk := sc.nwk
			for v := range nwk {
				copy(nwk[v], s.nwk[v])
			}
			nk := sc.nk
			copy(nk, s.nk)
			rng := sc.rng
			rng.Reseed(s.cfg.Seed^0xAD1DA, uint64(sweep)<<16|uint64(si))

			K := s.cfg.K
			weights := sc.weights[:K]
			alpha := s.cfg.Alpha
			gamma := s.cfg.Gamma
			gv := gamma * float64(s.data.V)
			nk = nk[:K]
			for d := lo; d < hi; d++ {
				if s.aborted() {
					// Cooperative watchdog stop: the partial sweep is
					// abandoned by Run, so breaking between documents
					// (counts still consistent) is safe.
					break
				}
				ndk := s.ndk[d][:K]
				zd := s.Z[d]
				yd := s.Y[d]
				for n, word := range s.data.Words[d] {
					old := zd[n]
					row := nwk[word][:K]
					ndk[old]--
					row[old]--
					nk[old]--
					// Same flat pass + single y fixup as the sequential
					// kernel; bit-identical to the branching form.
					for k := 0; k < K; k++ {
						weights[k] = (float64(ndk[k]) + alpha) *
							(float64(row[k]) + gamma) /
							(float64(nk[k]) + gv)
					}
					weights[yd] = (float64(ndk[yd]) + 1 + alpha) *
						(float64(row[yd]) + gamma) /
						(float64(nk[yd]) + gv)
					k := rng.CategoricalFast(weights)
					zd[n] = k
					ndk[k]++
					row[k]++
					nk[k]++
				}
			}
			// Record the deltas against the shared state.
			for v := range nwk {
				srow, drow := s.nwk[v], sc.dnwk[v]
				for k, c := range nwk[v] {
					drow[k] = c - srow[k]
				}
			}
			for k := range nk {
				sc.dnk[k] = nk[k] - s.nk[k]
			}
		}(si, sh[0], sh[1])
	}
	wg.Wait()
	for si := range shards {
		sc := &s.scr.par[si]
		for v := range s.nwk {
			row := s.nwk[v]
			for k, dv := range sc.dnwk[v] {
				row[k] += dv
			}
		}
		for k, dv := range sc.dnk {
			s.nk[k] += dv
		}
	}
	pt.z = time.Since(zStart)
	yStart := time.Now()

	// y phase: exactly parallel (kernel reads ndk and the fixed
	// components only).
	for si, sh := range shards {
		wg.Add(1)
		go func(si, lo, hi int) {
			defer wg.Done()
			sc := &s.scr.par[si]
			rng := sc.rng
			rng.Reseed(s.cfg.Seed^0x9D1DA, uint64(sweep)<<16|uint64(si))
			K := s.cfg.K
			logw := sc.logw[:K]
			// The banks and log table are refreshed before the phase
			// and read-only inside it, so sharing them across shards is
			// race-free; only the diff/exp scratch is per-shard.
			logTab := s.scr.logTab
			emuBank := s.scr.emuBank
			if !s.cfg.UseEmulsion {
				emuBank = nil
			}
			for d := lo; d < hi; d++ {
				if s.aborted() {
					break
				}
				ndk := s.ndk[d][:K]
				stats.ScoreTopics(logw, logTab, ndk, s.scr.gelBank, s.data.Gel[d], sc.gelDiff,
					emuBank, s.data.Emu[d], s.cfg.EmulsionWeight, sc.emuDiff)
				s.Y[d] = rng.CategoricalLogFused(logw, sc.catW)
			}
		}(si, sh[0], sh[1])
	}
	wg.Wait()
	for k := range s.mk {
		s.mk[k] = 0
	}
	for _, y := range s.Y {
		s.mk[y]++
	}
	pt.y = time.Since(yStart)
	cStart := time.Now()
	err := s.resampleComponents()
	pt.components = time.Since(cStart)
	return pt, err
}

// parShard is one parallel worker's persistent working set: private
// count copies, their deltas against the shared state, the sampling
// buffers and a reseedable RNG. Reusing it across sweeps removes the
// per-sweep K×V allocations without touching the draw streams — the
// RNG is reseeded to the exact (seed, stream) pair a fresh one would
// have used.
type parShard struct {
	nwk  [][]int // private vocab × topics copy
	nk   []int
	dnwk [][]int // deltas vs. the shared counts
	dnk  []int

	weights []float64
	logw    []float64
	catW    []float64
	gelDiff []float64
	emuDiff []float64

	rng *stats.RNG
}

func newParShard(v, k, gelDim, emuDim int) parShard {
	return parShard{
		nwk:     makeCountTable(v, k),
		nk:      make([]int, k),
		dnwk:    makeCountTable(v, k),
		dnk:     make([]int, k),
		weights: make([]float64, k),
		logw:    make([]float64, k),
		catW:    make([]float64, k),
		gelDiff: make([]float64, gelDim),
		emuDiff: make([]float64, emuDim),
		rng:     stats.NewRNG(0, 0), // reseeded before every use
	}
}

// ShardRanges splits n items into at most w contiguous [lo,hi) ranges.
// Zero items yield no shards (rather than a division by zero from the
// w = n clamp); a non-positive worker count is treated as one worker.
func ShardRanges(n, w int) [][2]int {
	if n <= 0 {
		return nil
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	out := make([][2]int, 0, w)
	size := n / w
	rem := n % w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
