package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stats"
)

// jsonComponent is the wire form of a Component.
type jsonComponent struct {
	Mean      []float64   `json:"mean"`
	Precision [][]float64 `json:"precision"`
}

// jsonResult is the wire form of a Result.
type jsonResult struct {
	K              int             `json:"k"`
	V              int             `json:"v"`
	Alpha          float64         `json:"alpha"`
	Gamma          float64         `json:"gamma"`
	UseEmulsion    bool            `json:"use_emulsion"`
	EmulsionWeight float64         `json:"emulsion_weight"`
	Phi            [][]float64     `json:"phi"`
	Theta          [][]float64     `json:"theta"`
	Y              []int           `json:"y"`
	Gel            []jsonComponent `json:"gel"`
	Emu            []jsonComponent `json:"emu"`
	LogLik         []float64       `json:"loglik"`
}

func toJSONComponent(c Component) jsonComponent {
	rows := make([][]float64, c.Precision.R)
	for i := 0; i < c.Precision.R; i++ {
		rows[i] = c.Precision.Row(i)
	}
	return jsonComponent{Mean: c.Mean, Precision: rows}
}

func fromJSONComponent(j jsonComponent) (Component, error) {
	if len(j.Precision) == 0 || len(j.Precision[0]) != len(j.Precision) {
		return Component{}, fmt.Errorf("core: component precision is not square")
	}
	if len(j.Mean) != len(j.Precision) {
		return Component{}, fmt.Errorf("core: component mean dim %d, precision %d", len(j.Mean), len(j.Precision))
	}
	return Component{Mean: j.Mean, Precision: stats.MatFromRows(j.Precision)}, nil
}

// WriteJSON serializes the fitted model.
func (r *Result) WriteJSON(w io.Writer) error {
	jr := jsonResult{
		K: r.K, V: r.V, Phi: r.Phi, Theta: r.Theta, Y: r.Y, LogLik: r.LogLik,
		Alpha: r.Alpha, Gamma: r.Gamma, UseEmulsion: r.UseEmulsion, EmulsionWeight: r.EmulsionWeight,
	}
	for _, c := range r.Gel {
		jr.Gel = append(jr.Gel, toJSONComponent(c))
	}
	for _, c := range r.Emu {
		jr.Emu = append(jr.Emu, toJSONComponent(c))
	}
	if err := json.NewEncoder(w).Encode(jr); err != nil {
		return fmt.Errorf("core: encoding result: %w", err)
	}
	return nil
}

// ReadResultJSON deserializes a fitted model written by WriteJSON.
func ReadResultJSON(rd io.Reader) (*Result, error) {
	var jr jsonResult
	if err := json.NewDecoder(rd).Decode(&jr); err != nil {
		return nil, fmt.Errorf("core: decoding result: %w", err)
	}
	if jr.K <= 0 || len(jr.Phi) != jr.K || len(jr.Gel) != jr.K || len(jr.Emu) != jr.K {
		return nil, fmt.Errorf("core: result shape inconsistent (K=%d)", jr.K)
	}
	res := &Result{
		K: jr.K, V: jr.V, Phi: jr.Phi, Theta: jr.Theta, Y: jr.Y, LogLik: jr.LogLik,
		Alpha: jr.Alpha, Gamma: jr.Gamma, UseEmulsion: jr.UseEmulsion, EmulsionWeight: jr.EmulsionWeight,
	}
	for _, jc := range jr.Gel {
		c, err := fromJSONComponent(jc)
		if err != nil {
			return nil, err
		}
		res.Gel = append(res.Gel, c)
	}
	for _, jc := range jr.Emu {
		c, err := fromJSONComponent(jc)
		if err != nil {
			return nil, err
		}
		res.Emu = append(res.Emu, c)
	}
	return res, nil
}
