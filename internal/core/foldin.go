package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled marks a fold-in abandoned because its context ended.
// Match it with errors.Is; the concrete error also unwraps to the
// context error (context.Canceled or context.DeadlineExceeded), so
// callers can tell a vanished client from an expired deadline.
var ErrCanceled = errors.New("core: fold-in canceled")

// CanceledError reports how far a canceled fold-in got before it was
// abandoned.
type CanceledError struct {
	Sweeps int   // completed Gibbs sweeps
	Cause  error // the context error that stopped the chain
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: fold-in canceled after %d sweeps: %v", e.Sweeps, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// FoldIn infers the topic mixture θ of an unseen recipe under a fitted
// model, holding φ and the concentration components fixed — the
// operation behind the paper's motivating application: estimating what
// texture a posted recipe will have before cooking it.
//
// words may be empty (a recipe whose description carries no texture
// terms is placed by its concentrations alone). The sampler runs iters
// Gibbs sweeps over the recipe's latent z and y and returns the
// averaged θ of the second half of the chain.
func (r *Result) FoldIn(words []int, gel, emu []float64, iters int, seed uint64) ([]float64, error) {
	return r.FoldInCtx(context.Background(), words, gel, emu, iters, seed)
}

// FoldInCtx is FoldIn under a context: cancellation is checked
// between Gibbs sweeps, and an abandoned chain returns a
// *CanceledError matching ErrCanceled. This is what lets a serving
// layer stop paying for a request whose deadline already passed.
//
// Inference runs through the model's FoldInKernel (built lazily on
// first use), so the per-topic Gaussians and φ columns are derived
// once per model rather than once per call; the chains drawn are
// bit-identical either way. Callers that also want to avoid the θ
// allocation use the kernel's FoldInTo directly.
func (r *Result) FoldInCtx(ctx context.Context, words []int, gel, emu []float64, iters int, seed uint64) ([]float64, error) {
	return r.FoldInOptsCtx(ctx, KernelOptions{}, words, gel, emu, iters, seed)
}

// FoldInOptsCtx is FoldInCtx through an opt-in scoring variant (alias
// draws, float32 scoring — see KernelOptions). The zero options value
// is exactly FoldInCtx. Each variant's kernel is cached on the Result,
// so per-call cost matches the default path.
func (r *Result) FoldInOptsCtx(ctx context.Context, opts KernelOptions, words []int, gel, emu []float64, iters int, seed uint64) ([]float64, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("core: fold-in needs positive iterations")
	}
	kn, err := r.BuildKernelOpts(opts)
	if err != nil {
		return nil, err
	}
	theta := make([]float64, kn.k)
	if err := kn.FoldInTo(ctx, theta, words, gel, emu, iters, seed); err != nil {
		return nil, err
	}
	return theta, nil
}
