package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/stats"
)

// ErrCanceled marks a fold-in abandoned because its context ended.
// Match it with errors.Is; the concrete error also unwraps to the
// context error (context.Canceled or context.DeadlineExceeded), so
// callers can tell a vanished client from an expired deadline.
var ErrCanceled = errors.New("core: fold-in canceled")

// CanceledError reports how far a canceled fold-in got before it was
// abandoned.
type CanceledError struct {
	Sweeps int   // completed Gibbs sweeps
	Cause  error // the context error that stopped the chain
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: fold-in canceled after %d sweeps: %v", e.Sweeps, e.Cause)
}

func (e *CanceledError) Unwrap() error { return e.Cause }

func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// FoldIn infers the topic mixture θ of an unseen recipe under a fitted
// model, holding φ and the concentration components fixed — the
// operation behind the paper's motivating application: estimating what
// texture a posted recipe will have before cooking it.
//
// words may be empty (a recipe whose description carries no texture
// terms is placed by its concentrations alone). The sampler runs iters
// Gibbs sweeps over the recipe's latent z and y and returns the
// averaged θ of the second half of the chain.
func (r *Result) FoldIn(words []int, gel, emu []float64, iters int, seed uint64) ([]float64, error) {
	return r.FoldInCtx(context.Background(), words, gel, emu, iters, seed)
}

// FoldInCtx is FoldIn under a context: cancellation is checked
// between Gibbs sweeps, and an abandoned chain returns a
// *CanceledError matching ErrCanceled. This is what lets a serving
// layer stop paying for a request whose deadline already passed.
func (r *Result) FoldInCtx(ctx context.Context, words []int, gel, emu []float64, iters int, seed uint64) ([]float64, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("core: fold-in needs positive iterations")
	}
	if len(gel) != len(r.Gel[0].Mean) || len(emu) != len(r.Emu[0].Mean) {
		return nil, fmt.Errorf("core: fold-in feature dims %d/%d, model %d/%d",
			len(gel), len(emu), len(r.Gel[0].Mean), len(r.Emu[0].Mean))
	}
	for _, w := range words {
		if w < 0 || w >= r.V {
			return nil, fmt.Errorf("core: fold-in word %d outside [0,%d)", w, r.V)
		}
	}

	gelG := make([]*stats.Gaussian, r.K)
	emuG := make([]*stats.Gaussian, r.K)
	for k := 0; k < r.K; k++ {
		g, err := r.GelGaussian(k)
		if err != nil {
			return nil, fmt.Errorf("core: topic %d gel: %w", k, err)
		}
		gelG[k] = g
		e, err := r.EmuGaussian(k)
		if err != nil {
			return nil, fmt.Errorf("core: topic %d emulsion: %w", k, err)
		}
		emuG[k] = e
	}
	// Concentration log-likelihood per topic is constant across sweeps.
	conc := make([]float64, r.K)
	for k := 0; k < r.K; k++ {
		conc[k] = gelG[k].LogPdf(gel)
		if r.UseEmulsion {
			conc[k] += r.EmulsionWeight * emuG[k].LogPdf(emu)
		}
	}

	rng := stats.NewRNG(seed, 0xF01D)
	z := make([]int, len(words))
	ndk := make([]int, r.K)
	for n := range z {
		z[n] = rng.IntN(r.K)
		ndk[z[n]]++
	}
	y := rng.CategoricalLog(conc)

	start := time.Now()
	thetaAcc := make([]float64, r.K)
	kept := 0
	weights := make([]float64, r.K)
	logw := make([]float64, r.K)
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			if hook := r.FoldInHook; hook != nil {
				hook(FoldInStats{Sweeps: it, Words: len(words), Total: time.Since(start), Canceled: true})
			}
			return nil, &CanceledError{Sweeps: it, Cause: err}
		}
		for n, w := range words {
			ndk[z[n]]--
			for k := 0; k < r.K; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				weights[k] = (float64(ndk[k]) + m + r.Alpha) * r.Phi[k][w]
			}
			z[n] = rng.Categorical(weights)
			ndk[z[n]]++
		}
		for k := 0; k < r.K; k++ {
			logw[k] = math.Log(float64(ndk[k])+r.Alpha) + conc[k]
		}
		y = rng.CategoricalLog(logw)

		if it >= iters/2 {
			kept++
			denom := float64(len(words)) + 1 + r.Alpha*float64(r.K)
			for k := 0; k < r.K; k++ {
				m := 0.0
				if y == k {
					m = 1
				}
				thetaAcc[k] += (float64(ndk[k]) + m + r.Alpha) / denom
			}
		}
	}
	for k := range thetaAcc {
		thetaAcc[k] /= float64(kept)
	}
	if hook := r.FoldInHook; hook != nil {
		hook(FoldInStats{Sweeps: iters, Words: len(words), Total: time.Since(start)})
	}
	return thetaAcc, nil
}
