package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// LDAConfig controls the words-only baseline.
type LDAConfig struct {
	K          int
	Alpha      float64
	Gamma      float64
	Iterations int
	Seed       uint64
}

// DefaultLDAConfig mirrors the joint model's text-side settings.
func DefaultLDAConfig() LDAConfig {
	return LDAConfig{K: 10, Alpha: 0.5, Gamma: 0.1, Iterations: 300, Seed: 1}
}

// LDAResult is a fitted words-only LDA baseline.
type LDAResult struct {
	K, V   int
	Phi    [][]float64
	Theta  [][]float64
	LogLik []float64
}

// FitLDA runs collapsed Gibbs sampling for conventional LDA over the
// texture-term tokens only, ignoring concentrations. This is the
// baseline the joint model is compared against: its topics cannot be
// linked to rheology because they carry no concentration component.
func FitLDA(words [][]int, v int, cfg LDAConfig) (*LDAResult, error) {
	if v <= 0 || len(words) == 0 {
		return nil, fmt.Errorf("core: lda: empty input")
	}
	if cfg.K <= 1 || cfg.Alpha <= 0 || cfg.Gamma <= 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("core: lda: invalid config %+v", cfg)
	}
	for d, ws := range words {
		for _, w := range ws {
			if w < 0 || w >= v {
				return nil, fmt.Errorf("core: lda: doc %d word %d outside [0,%d)", d, w, v)
			}
		}
	}
	rng := stats.NewRNG(cfg.Seed, 0x1DA)
	d := len(words)
	z := make([][]int, d)
	ndk := make([][]int, d)
	nkw := make([][]int, cfg.K)
	nk := make([]int, cfg.K)
	for k := range nkw {
		nkw[k] = make([]int, v)
	}
	for i := range words {
		z[i] = make([]int, len(words[i]))
		ndk[i] = make([]int, cfg.K)
		for n, w := range words[i] {
			k := rng.IntN(cfg.K)
			z[i][n] = k
			ndk[i][k]++
			nkw[k][w]++
			nk[k]++
		}
	}

	gv := cfg.Gamma * float64(v)
	weights := make([]float64, cfg.K)
	var lls []float64
	for it := 0; it < cfg.Iterations; it++ {
		for i := range words {
			for n, w := range words[i] {
				old := z[i][n]
				ndk[i][old]--
				nkw[old][w]--
				nk[old]--
				for k := 0; k < cfg.K; k++ {
					weights[k] = (float64(ndk[i][k]) + cfg.Alpha) *
						(float64(nkw[k][w]) + cfg.Gamma) / (float64(nk[k]) + gv)
				}
				k := rng.Categorical(weights)
				z[i][n] = k
				ndk[i][k]++
				nkw[k][w]++
				nk[k]++
			}
		}
		ll := 0.0
		for i := range words {
			for n, w := range words[i] {
				k := z[i][n]
				ll += math.Log((float64(nkw[k][w]) + cfg.Gamma) / (float64(nk[k]) + gv))
				_ = n
			}
		}
		lls = append(lls, ll)
	}

	res := &LDAResult{K: cfg.K, V: v, LogLik: lls}
	res.Phi = make([][]float64, cfg.K)
	for k := 0; k < cfg.K; k++ {
		row := make([]float64, v)
		for w := 0; w < v; w++ {
			row[w] = (float64(nkw[k][w]) + cfg.Gamma) / (float64(nk[k]) + gv)
		}
		res.Phi[k] = row
	}
	res.Theta = make([][]float64, d)
	sumAlpha := cfg.Alpha * float64(cfg.K)
	for i := range words {
		row := make([]float64, cfg.K)
		for k := 0; k < cfg.K; k++ {
			row[k] = (float64(ndk[i][k]) + cfg.Alpha) / (float64(len(words[i])) + sumAlpha)
		}
		res.Theta[i] = row
	}
	return res, nil
}

// Assign returns each document's argmax-θ topic.
func (r *LDAResult) Assign() []int {
	out := make([]int, len(r.Theta))
	for d, row := range r.Theta {
		out[d] = stats.ArgMax(row)
	}
	return out
}
