// POST /ingest and /ingest/batch: online corpus growth at the edge.
// The durability contract is the WAL's — a 2xx means the recipe's
// bytes are fsynced and will survive kill -9 — and the freshness
// contract is the cache's: an accepted recipe is opportunistically
// folded into the live model right away, so the poster can annotate
// it before any re-fit runs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/annotate"
	"repro/internal/ingest"
	"repro/internal/recipe"
)

// IngestAck is the wire form of one accepted ingest, shared with the
// client SDK. A new recipe answers 202 Accepted; a canonical-hash
// duplicate answers 200 with the original sequence and Duplicate set.
type IngestAck struct {
	// Seq is the recipe's durable WAL sequence number.
	Seq uint64 `json:"seq"`
	// Duplicate reports the recipe was already in the log.
	Duplicate bool `json:"duplicate,omitempty"`
	// RecordsSinceFit is how many accepted records await the next
	// re-fit, this one included.
	RecordsSinceFit uint64 `json:"records_since_fit"`
}

// IngestBatchItem is one recipe's ingest outcome, index-aligned with
// the request. Status carries the HTTP status the item would have
// received as a single request (202, 200, or an error status).
type IngestBatchItem struct {
	Index     int    `json:"index"`
	Seq       uint64 `json:"seq,omitempty"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Error     string `json:"error,omitempty"`
	Status    int    `json:"status"`
}

// IngestBatchResponse is the wire form of a batch ingest result.
type IngestBatchResponse struct {
	Results    []IngestBatchItem `json:"results"`
	Accepted   int               `json:"accepted"`
	Duplicates int               `json:"duplicates"`
	Failed     int               `json:"failed"`
}

// handleIngest accepts one recipe into the WAL. Unlike the annotate
// routes it does not require a fitted model — the log is the product
// here, and a server still fitting its first model must not drop
// submissions — but a draining server refuses new durability promises
// the same way it refuses new fold-ins.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, "draining")
		return
	}
	var rec recipe.Recipe
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		writeRecipeDecodeError(w, err)
		return
	}
	ack, status, err := s.ingestOne(&rec)
	if err != nil {
		s.writeIngestError(w, r, err)
		return
	}
	go s.warmFoldIn(&rec)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(ack); err != nil {
		s.logf("serve: /ingest: response encode: %v", err)
	}
}

// handleIngestBatch appends a batch. Items fail individually; the
// response status is 202 when anything new was accepted, 200 when the
// batch was all duplicates and errors.
func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, "draining")
		return
	}
	var req batchRequest
	limit := s.opts.MaxBody * int64(s.opts.MaxBatch)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch body over %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad batch JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Recipes) == 0 {
		http.Error(w, "batch has no recipes", http.StatusBadRequest)
		return
	}
	if len(req.Recipes) > s.opts.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d recipes over the %d limit", len(req.Recipes), s.opts.MaxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}

	resp := IngestBatchResponse{Results: make([]IngestBatchItem, len(req.Recipes))}
	var warm []*recipe.Recipe
	for i, rec := range req.Recipes {
		if rec == nil {
			resp.Results[i] = IngestBatchItem{Index: i, Error: "null recipe", Status: http.StatusBadRequest}
			resp.Failed++
			continue
		}
		ack, status, err := s.ingestOne(rec)
		if err != nil {
			resp.Results[i] = s.ingestFailure(i, err)
			resp.Failed++
			continue
		}
		resp.Results[i] = IngestBatchItem{Index: i, Seq: ack.Seq, Duplicate: ack.Duplicate, Status: status}
		if ack.Duplicate {
			resp.Duplicates++
		} else {
			resp.Accepted++
			warm = append(warm, rec)
		}
	}
	if len(warm) > 0 {
		// One background warmer for the whole batch: each recipe takes a
		// spare pool slot if there is one and is skipped otherwise —
		// freshness is opportunistic, durability is already settled.
		go func() {
			for _, rec := range warm {
				s.warmFoldIn(rec)
			}
		}()
	}
	status := http.StatusOK
	if resp.Accepted > 0 {
		status = http.StatusAccepted
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		s.logf("serve: /ingest/batch: response encode: %v", err)
	}
}

// ingestOne resolves and durably appends one recipe, returning the ack
// and the HTTP status it earns (202 new, 200 duplicate). The Append
// only returns after fsync — the ack IS the durability promise.
func (s *Server) ingestOne(rec *recipe.Recipe) (IngestAck, int, error) {
	if err := rec.Resolve(); err != nil {
		return IngestAck{}, 0, fmt.Errorf("ingest: %w: %w", annotate.ErrRecipe, err)
	}
	ack, err := s.opts.Ingest.Append(rec)
	if err != nil {
		return IngestAck{}, 0, err
	}
	status := http.StatusAccepted
	if ack.Duplicate {
		status = http.StatusOK
	}
	return IngestAck{
		Seq:             ack.Seq,
		Duplicate:       ack.Duplicate,
		RecordsSinceFit: s.opts.Ingest.RecordsSinceFit(),
	}, status, nil
}

// writeIngestError maps an ingest failure: recipe faults are the
// client's (422), a recipe too large for a WAL record is too (413 —
// batch items can individually exceed what a lone request's MaxBody
// cap would have refused), anything else means the log could not be
// written — a 500 the operator must see, because acks stopped being
// possible.
func (s *Server) writeIngestError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, annotate.ErrRecipe) {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	if errors.Is(err, ingest.ErrTooLarge) {
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	s.logf("serve: %s %s: wal append: %v", r.Method, r.URL.Path, err)
	http.Error(w, "ingest log write failed", http.StatusInternalServerError)
}

// ingestFailure is writeIngestError for one batch index.
func (s *Server) ingestFailure(i int, err error) IngestBatchItem {
	if errors.Is(err, annotate.ErrRecipe) {
		return IngestBatchItem{Index: i, Error: err.Error(), Status: http.StatusUnprocessableEntity}
	}
	if errors.Is(err, ingest.ErrTooLarge) {
		return IngestBatchItem{Index: i, Error: err.Error(), Status: http.StatusRequestEntityTooLarge}
	}
	s.logf("serve: /ingest/batch item %d: wal append: %v", i, err)
	return IngestBatchItem{Index: i, Error: "ingest log write failed", Status: http.StatusInternalServerError}
}

// warmFoldIn makes a freshly ingested recipe immediately annotatable:
// fold it in on a spare annotator and seed the request cache, so the
// poster's next /annotate is a cache hit instead of a cold fold-in.
// Strictly opportunistic — no model, no cache, or no free pool slot
// means it silently skips; durability was already acknowledged and the
// recipe reaches the model at the next re-fit regardless.
func (s *Server) warmFoldIn(rec *recipe.Recipe) {
	if s.cache == nil || !s.Ready() {
		return
	}
	if !s.gate.TryAcquire() {
		return
	}
	defer s.gate.Release()
	defer func() {
		if v := recover(); v != nil {
			s.mPanics.Inc()
			s.logf("serve: ingest warm fold-in: panic: %v", v)
		}
	}()
	ctx := context.Background()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	s.mu.RLock()
	pool := s.pool
	s.mu.RUnlock()
	gen := s.generation.Load()
	ann := <-pool
	defer func() { pool <- ann }()
	card, err := ann.Annotate(ctx, rec)
	if err != nil {
		return // best effort; the WAL already has the recipe
	}
	wire := card.Wire()
	s.cache.put(cacheKey{gen: gen, hash: hashRecipe(rec)}, &wire)
}
