package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/recipe"
)

// ingestServer builds a test server with an ingest manager over temp
// dirs, returning both.
func ingestServer(t *testing.T, opts Options) (*Server, *ingest.Manager) {
	t.Helper()
	mgr, err := ingest.OpenManager(ingest.ManagerOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	opts.Ingest = mgr
	return newTestServer(t, opts), mgr
}

func postIngest(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestIngestEndpoint: a new recipe earns 202 with seq 1; the same
// recipe again earns 200 with Duplicate set and the original sequence.
func TestIngestEndpoint(t *testing.T) {
	s, mgr := ingestServer(t, quietOptions())
	h := s.Handler()

	rec := postIngest(h, "/ingest", jellyJSON)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var ack IngestAck
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 1 || ack.Duplicate || ack.RecordsSinceFit != 1 {
		t.Fatalf("ack = %+v", ack)
	}

	rec = postIngest(h, "/ingest", jellyJSON)
	if rec.Code != http.StatusOK {
		t.Fatalf("duplicate status %d: %s", rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 1 || !ack.Duplicate {
		t.Fatalf("duplicate ack = %+v", ack)
	}
	if st := mgr.WAL().Stats(); st.Records != 1 {
		t.Fatalf("wal records = %d, want 1", st.Records)
	}

	// The ingest block reaches /statusz.
	st := statuszStats(t, h)
	if st.Ingest == nil || st.Ingest.WAL.LastSeq != 1 || st.Ingest.RecordsSinceFit != 1 {
		t.Fatalf("statusz ingest block = %+v", st.Ingest)
	}
}

// TestIngestStatusMapping: malformed bodies are 400, well-formed but
// unresolvable recipes 422, and a draining server answers 503 with
// Retry-After rather than making durability promises it may not keep.
func TestIngestStatusMapping(t *testing.T) {
	s, _ := ingestServer(t, quietOptions())
	h := s.Handler()
	for _, tc := range []struct {
		body string
		want int
	}{
		{"not json", http.StatusBadRequest},
		{`{"unknown_field": 1}`, http.StatusBadRequest},
		{`{"id":"x","ingredients":[{"name":"ゼラチン","amount":"たっぷり"}]}`, http.StatusUnprocessableEntity},
	} {
		if rec := postIngest(h, "/ingest", tc.body); rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d (%s)", tc.body, rec.Code, tc.want, rec.Body.String())
		}
	}

	s.BeginDrain()
	rec := postIngest(h, "/ingest", jellyJSON)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining ingest = %d (Retry-After %q)", rec.Code, rec.Header().Get("Retry-After"))
	}
	if rec := postIngest(h, "/ingest/batch", `{"recipes":[`+jellyJSON+`]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining batch ingest = %d", rec.Code)
	}
}

// TestIngestWithoutManager: a server built without an ingest manager
// does not mount the routes at all.
func TestIngestWithoutManager(t *testing.T) {
	h := newTestServer(t, quietOptions()).Handler()
	if rec := postIngest(h, "/ingest", jellyJSON); rec.Code != http.StatusNotFound {
		t.Fatalf("/ingest without manager = %d, want 404", rec.Code)
	}
}

// TestIngestBatchEndpoint: items land individually — new, duplicate,
// and invalid in one request — and the response status reflects
// whether anything new was durably accepted.
func TestIngestBatchEndpoint(t *testing.T) {
	s, mgr := ingestServer(t, quietOptions())
	h := s.Handler()

	second := strings.Replace(jellyJSON, "web-1", "web-2", 1)
	bad := `{"id":"bad","ingredients":[{"name":"ゼラチン","amount":"たっぷり"}]}`
	body := fmt.Sprintf(`{"recipes":[%s,%s,%s,%s]}`, jellyJSON, second, jellyJSON, bad)
	rec := postIngest(h, "/ingest/batch", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp IngestBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Duplicates != 1 || resp.Failed != 1 {
		t.Fatalf("tallies = %+v", resp)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results", len(resp.Results))
	}
	if r := resp.Results[2]; !r.Duplicate || r.Seq != 1 || r.Status != http.StatusOK {
		t.Fatalf("duplicate item = %+v", r)
	}
	if r := resp.Results[3]; r.Status != http.StatusUnprocessableEntity || r.Error == "" {
		t.Fatalf("invalid item = %+v", r)
	}
	if st := mgr.WAL().Stats(); st.Records != 2 {
		t.Fatalf("wal records = %d, want 2", st.Records)
	}

	// An all-duplicate batch accepts nothing: 200.
	rec = postIngest(h, "/ingest/batch", fmt.Sprintf(`{"recipes":[%s]}`, jellyJSON))
	if rec.Code != http.StatusOK {
		t.Fatalf("all-duplicate batch = %d", rec.Code)
	}
	// Shape errors.
	if rec := postIngest(h, "/ingest/batch", `{"recipes":[]}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d", rec.Code)
	}
}

// TestIngestAckDurable: the acked recipe survives closing everything
// and replaying the directory cold — the 202 is a durability promise,
// not a cache entry.
func TestIngestAckDurable(t *testing.T) {
	dir := t.TempDir()
	mgr, err := ingest.OpenManager(ingest.ManagerOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	opts := quietOptions()
	opts.Ingest = mgr
	h := newTestServer(t, opts).Handler()
	if rec := postIngest(h, "/ingest", jellyJSON); rec.Code != http.StatusAccepted {
		t.Fatalf("status %d", rec.Code)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	var got []string
	if err := ingest.Replay(dir, 0, func(seq uint64, doc json.RawMessage) error {
		var r recipe.Recipe
		if err := json.Unmarshal(doc, &r); err != nil {
			return err
		}
		got = append(got, r.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "web-1" {
		t.Fatalf("replayed %v, want [web-1]", got)
	}
}

// TestIngestWarmFoldIn: the synchronous half of the fold-in path — a
// warmed recipe's next /annotate is a cache hit, served without
// touching the annotator pool.
func TestIngestWarmFoldIn(t *testing.T) {
	opts := quietOptions()
	opts.Cache = true
	s, _ := ingestServer(t, opts)
	h := s.Handler()

	var rec recipe.Recipe
	if err := json.Unmarshal([]byte(jellyJSON), &rec); err != nil {
		t.Fatal(err)
	}
	if err := rec.Resolve(); err != nil {
		t.Fatal(err)
	}
	s.warmFoldIn(&rec)

	resp := postAnnotate(h, jellyJSON)
	if resp.Code != http.StatusOK {
		t.Fatalf("annotate after warm fold-in: %d", resp.Code)
	}
	st := s.Stats()
	if st.Cache == nil || st.Cache.Hits != 1 {
		t.Fatalf("warm fold-in did not seed the cache: %+v", st.Cache)
	}
}

// TestIngestBeforeModelReady: durability must not wait for a model —
// a pending server (still fitting) accepts ingest while refusing
// annotate.
func TestIngestBeforeModelReady(t *testing.T) {
	mgr, err := ingest.OpenManager(ingest.ManagerOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	opts := quietOptions()
	opts.Logf = t.Logf
	opts.Ingest = mgr
	s := NewPending(opts)
	h := s.Handler()

	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("annotate before ready = %d, want 503", rec.Code)
	}
	rec := postIngest(h, "/ingest", jellyJSON)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest before ready = %d, want 202: %s", rec.Code, rec.Body.String())
	}
}

// TestIngestChaosFollowerZeroErrors is the end-to-end acceptance
// scenario: a follower replica under live annotate load while the
// ingest/refit path publishes and promotes a new generation behind it.
// The follower must serve zero non-200 responses throughout the
// re-fit, the promotion, and its own hot swap.
func TestIngestChaosFollowerZeroErrors(t *testing.T) {
	ctx := ctxServe(t)
	opts := quietOptions()
	opts.Pool = 4
	opts.FoldInIters = 5
	rig := newFollowerRig(t, opts, FollowOptions{Interval: 20 * time.Millisecond})
	h := rig.srv.Handler()

	genA := publishFixture(t, rig.reg, "ingest-base")
	if err := rig.reg.Promote(ctx, genA.ID); err != nil {
		t.Fatal(err)
	}
	if err := rig.fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	go rig.fol.Run(runCtx)

	// Live load on the follower for the whole window.
	var stop atomic.Bool
	var bad atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < opts.Pool; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rec := postAnnotate(h, jellyJSON)
				if rec.Code != http.StatusOK {
					bad.Add(1)
					t.Errorf("follower answered %d during refit: %s", rec.Code, rec.Body.String())
					return
				}
				served.Add(1)
			}
		}()
	}

	// The "writer" side: a new generation lands the way the refitter
	// lands one — publish, then promote.
	genB := publishFixture(t, rig.reg, "ingest-refit")
	if err := rig.reg.Promote(ctx, genB.ID); err != nil {
		t.Fatal(err)
	}

	// Wait for the follower to converge on the refit generation while
	// load continues.
	deadline := time.Now().Add(5 * time.Second)
	for rig.fol.Status().Generation != genB.ID {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("follower never converged to generation %d", genB.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Let load run a little on the new generation too.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if bad.Load() != 0 {
		t.Fatalf("%d non-200 responses during refit+promotion", bad.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no requests served; the test proved nothing")
	}
	t.Logf("served %d requests with zero errors across the promotion", served.Load())
}

// TestIngestBatchOversizeItem: the batch decoder admits bodies up to
// MaxBody × MaxBatch, so one item can individually dwarf what a lone
// /ingest request could carry — but a recipe too large for a WAL
// record must fail as that item's 413, never be acked (the WAL could
// not recover it) and never poison the rest of the batch.
func TestIngestBatchOversizeItem(t *testing.T) {
	s, mgr := ingestServer(t, quietOptions())
	h := s.Handler()

	hugeDoc, err := json.Marshal(recipe.Recipe{
		ID:          "huge-1",
		Title:       "ゼリー",
		Description: strings.Repeat("a", 9<<20),
		Ingredients: []recipe.Ingredient{
			{Name: "ゼラチン", Amount: "5g"},
			{Name: "水", Amount: "400ml"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"recipes":[%s,%s]}`, hugeDoc, jellyJSON)
	rec := postIngest(h, "/ingest/batch", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %.200s", rec.Code, rec.Body.String())
	}
	var resp IngestBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Failed != 1 {
		t.Fatalf("tallies = accepted %d failed %d", resp.Accepted, resp.Failed)
	}
	if r := resp.Results[0]; r.Status != http.StatusRequestEntityTooLarge || r.Seq != 0 {
		t.Fatalf("oversize item = %+v, want 413 and no seq", r)
	}
	if r := resp.Results[1]; r.Status != http.StatusAccepted {
		t.Fatalf("normal item = %+v", r)
	}
	if st := mgr.WAL().Stats(); st.Records != 1 {
		t.Fatalf("wal records = %d, want only the normal recipe", st.Records)
	}
}
