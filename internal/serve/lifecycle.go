package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Serve runs hs on ln until ctx is canceled, then drains gracefully:
// readiness flips off first (so /readyz tells load balancers to stop
// routing here), then http.Server.Shutdown waits up to drain for
// in-flight requests to complete. Connections still open past the
// deadline are force-closed and the overrun is reported.
//
// A server error (failed accept loop, port stolen) is returned as-is;
// a clean drain returns nil.
func Serve(ctx context.Context, hs *http.Server, s *Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	s.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		hs.Close()
		return fmt.Errorf("serve: drain incomplete after %v: %w", drain, err)
	}
	return nil
}

// ListenAndServe is Serve with the listener taken from hs.Addr.
func ListenAndServe(ctx context.Context, hs *http.Server, s *Server, drain time.Duration) error {
	addr := hs.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, hs, s, ln, drain)
}
