package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/storage"
)

// switchableFault is an injector a test can flip on and off — the
// "kill the backend / plug it back in" lever.
type switchableFault struct {
	on  atomic.Bool
	err error
}

func (s *switchableFault) Fault(op string) resilience.Fault {
	if s.on.Load() {
		return resilience.Fault{Err: s.err}
	}
	return resilience.Fault{}
}

// followerRig is the standard fleet-test setup: an in-process KV
// backend with a kill switch, a robustness-wrapped registry over it,
// and a pending server following that registry.
type followerRig struct {
	kv     *storage.KVStore
	outage *switchableFault
	reg    *storage.Registry
	srv    *Server
	fol    *Follower
}

func newFollowerRig(t *testing.T, opts Options, fopts FollowOptions) *followerRig {
	t.Helper()
	kv := storage.NewKVStore()
	outage := &switchableFault{err: errors.New("backend unplugged")}
	kv.Faults = outage
	robust := storage.NewRobust(kv, storage.RobustOptions{
		OpTimeout:        time.Second,
		Retry:            resilience.Backoff{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 11},
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
	})
	reg := storage.NewRegistry(robust)

	opts.Logf = t.Logf
	srv := NewPending(opts)
	fopts.Registry = reg
	fol, err := srv.NewFollower(fopts)
	if err != nil {
		t.Fatal(err)
	}
	return &followerRig{kv: kv, outage: outage, reg: reg, srv: srv, fol: fol}
}

// publishFixture publishes a bundle derived from the shared fixture,
// perturbing the exclusion map with tag so each tag yields a distinct
// content digest (and therefore a distinct generation).
func publishFixture(t *testing.T, reg *storage.Registry, tag string) storage.Generation {
	t.Helper()
	src := fixtureOutput(t)
	o := *src
	ex := map[string][]string{"__rollout_" + tag: {tag}}
	for k, v := range src.ExcludedTerms {
		ex[k] = v
	}
	o.ExcludedTerms = ex
	b, _, err := o.EncodeBundle()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := reg.Publish(context.Background(), b, tag)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func statuszStats(t *testing.T, h http.Handler) Stats {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statusz: %d", rec.Code)
	}
	var st Stats
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestFollowerRolloutAndDegradedServing is the fleet acceptance test:
// a replica under live load follows the registry; the backend dies
// mid-rollout; the replica serves zero non-200s on its last-good
// generation, reports registry_degraded on /statusz, and converges to
// the promoted generation within one poll interval of the backend
// coming back.
func TestFollowerRolloutAndDegradedServing(t *testing.T) {
	ctx := ctxServe(t)
	opts := quietOptions()
	opts.Pool = 4
	opts.FoldInIters = 5
	rig := newFollowerRig(t, opts, FollowOptions{Interval: 25 * time.Millisecond})
	h := rig.srv.Handler()

	genA := publishFixture(t, rig.reg, "A")
	if err := rig.reg.Promote(ctx, genA.ID); err != nil {
		t.Fatal(err)
	}
	if err := rig.fol.Poll(ctx); err != nil {
		t.Fatalf("initial poll: %v", err)
	}
	if !rig.srv.Ready() {
		t.Fatal("server not ready after first successful poll")
	}

	// Live load at pool concurrency for the rest of the test.
	var (
		stop     atomic.Bool
		served   atomic.Int64
		statuses sync.Map
	)
	var wg sync.WaitGroup
	for i := 0; i < opts.Pool; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rec := postAnnotate(h, jellyJSON)
				v, _ := statuses.LoadOrStore(rec.Code, new(atomic.Int64))
				v.(*atomic.Int64).Add(1)
				if rec.Code == http.StatusOK {
					served.Add(1)
				}
			}
		}()
	}

	// Mid-rollout outage: generation B is promoted, then the backend
	// dies before this replica can fetch it.
	genB := publishFixture(t, rig.reg, "B")
	if err := rig.reg.Promote(ctx, genB.ID); err != nil {
		t.Fatal(err)
	}
	rig.outage.on.Store(true)
	for i := 0; i < 4; i++ {
		if err := rig.fol.Poll(ctx); err == nil {
			t.Fatal("poll succeeded against a dead backend")
		}
	}
	st := statuszStats(t, h)
	if !st.RegistryDegraded || st.Registry == nil || !st.Registry.Degraded {
		t.Fatalf("statusz not degraded during outage: %+v", st)
	}
	if st.Registry.LastError == "" {
		t.Error("degraded status carries no last_error")
	}
	if st.Registry.Generation != genA.ID || st.Registry.Digest != genA.Digest {
		t.Fatalf("outage changed the serving generation: %+v", st.Registry)
	}
	// /readyz stays green: the model is fine, only the control plane is
	// down.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz %d during registry outage, want 200", rec.Code)
	}

	// Recovery: the backend returns; the Run loop must converge to the
	// promoted generation within one poll interval (plus scheduling
	// slack) and clear the degraded flag.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	go rig.fol.Run(runCtx)
	rig.outage.on.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := rig.fol.Status()
		if s.Generation == genB.ID && !s.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not converge to generation %d: %+v", genB.ID, s)
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	statuses.Range(func(code, n any) bool {
		if c := code.(int); c != http.StatusOK {
			t.Errorf("status %d seen %d times across the outage; want only 200s",
				c, n.(*atomic.Int64).Load())
		}
		return true
	})
	if served.Load() == 0 {
		t.Fatal("hammer produced no successful annotations; test proved nothing")
	}
	final := statuszStats(t, h)
	if final.RegistryDegraded {
		t.Error("still degraded after recovery")
	}
	if final.Registry.Generation != genB.ID {
		t.Errorf("serving generation %d after recovery, want %d", final.Registry.Generation, genB.ID)
	}
}

// TestFollowerRefusesMangledBundle: a promoted generation whose blob
// is corrupt is refused — fetch failure counted, degraded reported,
// last-good model kept — and picked up cleanly once the bytes heal.
func TestFollowerRefusesMangledBundle(t *testing.T) {
	ctx := ctxServe(t)
	rig := newFollowerRig(t, quietOptions(), FollowOptions{Interval: time.Hour})

	genA := publishFixture(t, rig.reg, "A")
	if err := rig.reg.Promote(ctx, genA.ID); err != nil {
		t.Fatal(err)
	}
	if err := rig.fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}

	genB := publishFixture(t, rig.reg, "B")
	if err := rig.reg.Promote(ctx, genB.ID); err != nil {
		t.Fatal(err)
	}
	rig.kv.Mangle = func(key string, data []byte) []byte {
		if key != storage.BundleKey(genB.Digest) {
			return data
		}
		cp := append([]byte(nil), data...)
		cp[len(cp)-1] ^= 0x01
		return cp
	}
	err := rig.fol.Poll(ctx)
	if !errors.Is(err, storage.ErrDigestMismatch) {
		t.Fatalf("poll over mangled blob: %v, want ErrDigestMismatch", err)
	}
	s := rig.fol.Status()
	if !s.Degraded || s.Generation != genA.ID {
		t.Fatalf("mangled fetch did not degrade safely: %+v", s)
	}
	if got := rig.fol.mFetchFails.Value(); got != 1 {
		t.Errorf("swap_fetch_failures_total = %d, want 1", got)
	}
	if rec := postAnnotate(rig.srv.Handler(), jellyJSON); rec.Code != http.StatusOK {
		t.Fatalf("annotate on last-good model: %d", rec.Code)
	}

	rig.kv.Mangle = nil
	if err := rig.fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	if s := rig.fol.Status(); s.Generation != genB.ID || s.Degraded {
		t.Fatalf("did not converge after blob healed: %+v", s)
	}
}

// TestFollowerPinnedGeneration: a pinned replica serves its pin and
// ignores promotions.
func TestFollowerPinnedGeneration(t *testing.T) {
	ctx := ctxServe(t)
	rig0 := newFollowerRig(t, quietOptions(), FollowOptions{Interval: time.Hour})
	genA := publishFixture(t, rig0.reg, "A")
	genB := publishFixture(t, rig0.reg, "B")
	if err := rig0.reg.Promote(ctx, genB.ID); err != nil {
		t.Fatal(err)
	}

	// A second server pinned to A against the same registry.
	opts := quietOptions()
	opts.Logf = t.Logf
	srv := NewPending(opts)
	fol, err := srv.NewFollower(FollowOptions{Registry: rig0.reg, Interval: time.Hour, Pin: genA.ID})
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	s := fol.Status()
	if s.Generation != genA.ID {
		t.Fatalf("pinned replica serves generation %d, want %d", s.Generation, genA.ID)
	}
	if err := fol.Poll(ctx); err != nil {
		t.Fatal(err)
	}
	if s := fol.Status(); s.Generation != genA.ID || s.PinnedGeneration != genA.ID {
		t.Fatalf("pin did not hold: %+v", s)
	}
}

// TestFollowerEmptyRegistryIsNotDegraded: a reachable registry with no
// promoted generation means "wait", not "degraded" — and the server
// stays unready because it has no model at all.
func TestFollowerEmptyRegistryIsNotDegraded(t *testing.T) {
	ctx := ctxServe(t)
	rig := newFollowerRig(t, quietOptions(), FollowOptions{Interval: time.Hour})
	if err := rig.fol.Poll(ctx); err != nil {
		t.Fatalf("poll on empty registry: %v", err)
	}
	s := rig.fol.Status()
	if s.Degraded || s.Generation != 0 {
		t.Fatalf("empty registry state: %+v", s)
	}
	if rig.srv.Ready() {
		t.Fatal("server ready with no model")
	}
}

// TestFollowerSingleton: a second follower on the same server is
// rejected.
func TestFollowerSingleton(t *testing.T) {
	rig := newFollowerRig(t, quietOptions(), FollowOptions{Interval: time.Hour})
	if _, err := rig.srv.NewFollower(FollowOptions{Registry: rig.reg}); err == nil {
		t.Fatal("second follower accepted")
	}
}

// TestFollowerMetricsExposed: the registry follower series show up on
// the shared /metrics page.
func TestFollowerMetricsExposed(t *testing.T) {
	rig := newFollowerRig(t, quietOptions(), FollowOptions{Interval: time.Hour})
	rec := httptest.NewRecorder()
	rig.srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{"registry_generation", "registry_degraded", "swap_fetch_failures_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func ctxServe(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}
