package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

// TestStatuszReportsFitIncidents: a model fitted under the supervisor
// carries its recovery history into /statusz, so operators can see a
// serving model survived a rollback without grepping fit logs.
func TestStatuszReportsFitIncidents(t *testing.T) {
	out := cloneOutput(t)
	out.FitIncidents = []resilience.Incident{{
		Attempt:     0,
		Sweep:       25,
		Kind:        string(core.HealthLogLikCollapse),
		Detail:      "log-likelihood collapsed",
		Action:      resilience.ActionRollback,
		ResumedFrom: 20,
		At:          time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
	}}
	s, err := NewWithOptions(out, quietOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statusz: %d", rec.Code)
	}
	var st struct {
		LastFitIncidents []resilience.Incident `json:"last_fit_incidents"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.LastFitIncidents) != 1 {
		t.Fatalf("statusz incidents = %+v, want the rollback", st.LastFitIncidents)
	}
	inc := st.LastFitIncidents[0]
	if inc.Kind != string(core.HealthLogLikCollapse) || inc.Action != resilience.ActionRollback ||
		inc.Sweep != 25 || inc.ResumedFrom != 20 {
		t.Fatalf("statusz incident = %+v, lost fields over the wire", inc)
	}
}

// TestStatuszReportsShardFit: a model produced by a sharded fit
// carries the shard summary into /statusz, and unsharded models omit
// the key entirely.
func TestStatuszReportsShardFit(t *testing.T) {
	out := cloneOutput(t)
	out.Shards = &pipeline.ShardFitSummary{ShardCount: 8, Resumed: 3, Fitted: 5, Retried: 2, Resharded: 1}
	s, err := NewWithOptions(out, quietOptions())
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statusz: %d", rec.Code)
	}
	var st struct {
		ShardFit *pipeline.ShardFitSummary `json:"shard_fit"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ShardFit == nil || st.ShardFit.ShardCount != 8 || st.ShardFit.Resumed != 3 ||
		st.ShardFit.Retried != 2 || st.ShardFit.Resharded != 1 {
		t.Fatalf("statusz shard_fit = %+v, lost fields over the wire", st.ShardFit)
	}

	clean := newTestServer(t, quietOptions())
	rec = httptest.NewRecorder()
	clean.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if strings.Contains(rec.Body.String(), "shard_fit") {
		t.Fatalf("unsharded statusz leaked a shard_fit key: %s", rec.Body)
	}
}

// TestStatuszOmitsIncidentsWhenClean: an unsupervised (or untroubled)
// fit must not emit the key at all.
func TestStatuszOmitsIncidentsWhenClean(t *testing.T) {
	s := newTestServer(t, quietOptions())
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/statusz: %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "last_fit_incidents") {
		t.Fatalf("clean statusz leaked an empty incidents key: %s", rec.Body)
	}
}

// TestSwapOutputRejectsDegenerateModel: a reload source handing over a
// shape-broken model (truncated φ) must be refused at swap time — the
// kernel build fails before the pointer flip and the previous model
// keeps serving.
func TestSwapOutputRejectsDegenerateModel(t *testing.T) {
	s := newTestServer(t, quietOptions())
	h := s.Handler()

	bad := cloneOutput(t)
	bad.Model.Phi = bad.Model.Phi[:1] // fewer φ rows than K
	err := s.SwapOutput(bad)
	if err == nil {
		t.Fatal("swap accepted a model whose kernel cannot build")
	}
	if !errors.Is(err, core.ErrDegenerateModel) {
		t.Fatalf("swap error %v does not wrap core.ErrDegenerateModel", err)
	}
	if got := s.Stats().Generation; got != 1 {
		t.Fatalf("generation %d after refused swap, want 1", got)
	}
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Fatalf("annotate after refused swap: %d; the old model must keep serving", rec.Code)
	}
}
