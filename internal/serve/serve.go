// Package serve exposes the texture annotator over HTTP — the shape a
// recipe-sharing site would deploy: POST a recipe, get its texture
// card; browse the fitted topics.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/annotate"
	"repro/internal/linkage"
	"repro/internal/pipeline"
	"repro/internal/recipe"
)

// Server handles texture annotation requests on a fitted model.
type Server struct {
	out *pipeline.Output
	ann *annotate.Annotator

	mu sync.Mutex // the fold-in sampler mutates per-call state; serialize annotations
}

// New builds a server from a fitted pipeline output.
func New(out *pipeline.Output) (*Server, error) {
	ann, err := annotate.New(out)
	if err != nil {
		return nil, err
	}
	return &Server{out: out, ann: ann}, nil
}

// Handler returns the HTTP routes:
//
//	POST /annotate   body: one recipe JSON object → texture card JSON
//	GET  /topics     the fitted topics with gel doses and top terms
//	GET  /healthz    liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /annotate", s.handleAnnotate)
	mux.HandleFunc("GET /topics", s.handleTopics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var rec recipe.Recipe
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		http.Error(w, "bad recipe JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	card, err := s.ann.Annotate(&rec)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, card.Wire())
}

// topicInfo is the wire form of one fitted topic.
type topicInfo struct {
	Topic   int                 `json:"topic"`
	Recipes int                 `json:"recipes"`
	Gels    map[string]float64  `json:"gels"`
	Terms   []annotate.WireTerm `json:"terms"`
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	counts := s.out.Model.DocsPerTopic()
	var topics []topicInfo
	for k := 0; k < s.out.Model.K; k++ {
		info := topicInfo{Topic: k, Recipes: counts[k], Gels: map[string]float64{}}
		for axis, conc := range linkage.TopicMeanConcentrations(s.out.Model, k, 0.0005) {
			info.Gels[recipe.Gel(axis).String()] = conc
		}
		for _, tp := range s.out.Model.TopTerms(k, 5) {
			if tp.Prob < 0.01 {
				break
			}
			term := s.out.Dict.Term(tp.ID)
			info.Terms = append(info.Terms, annotate.WireTerm{
				Romaji: term.Romaji, Kana: term.Kana, Gloss: term.Gloss, Prob: tp.Prob,
			})
		}
		topics = append(topics, info)
	}
	writeJSON(w, topics)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing more to do than log-worthy
		// territory, which the caller owns.
		return
	}
}
