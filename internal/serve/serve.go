// Package serve exposes the texture annotator over HTTP — the shape a
// recipe-sharing site would deploy: POST a recipe, get its texture
// card; browse the fitted topics.
//
// The serving runtime is built for degradation, not just the happy
// path: a pool of independent fold-in annotators bounds concurrency,
// an admission gate sheds overload with 429 + Retry-After instead of
// queueing it, every request carries a deadline that propagates down
// into the Gibbs sweeps, panics become 500s without killing the
// process, and liveness (/healthz) is split from readiness (/readyz)
// so a load balancer can route around a server that is still fitting
// its model or draining for shutdown.
package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/linkage"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/recipe"
	"repro/internal/resilience"
)

// Options tunes the serving runtime. The zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// Pool is the number of independent fold-in annotators — the hard
	// bound on concurrent annotations.
	Pool int
	// AdmitWait is how long an /annotate request may wait for a pool
	// slot before it is shed with 429 Too Many Requests.
	AdmitWait time.Duration
	// RequestTimeout bounds one request end to end; past it the
	// fold-in chain is abandoned and the client gets 504.
	// Zero disables the deadline.
	RequestTimeout time.Duration
	// MaxBody caps the /annotate request body; larger bodies get 413.
	MaxBody int64
	// MaxBatch caps the recipes per /annotate/batch request; larger
	// batches get 413 (the batch body may total MaxBody × MaxBatch
	// bytes). Default 64 when unset.
	MaxBatch int
	// FoldInIters overrides the Gibbs sweeps per annotation when
	// positive (the annotator default otherwise).
	FoldInIters int
	// Kernel selects opt-in fold-in scoring variants for every pooled
	// annotator (alias-method draws via Alias, float32 scoring via
	// Float32). The zero value keeps the default float64 path, which
	// is byte-identical to the seed implementation. Serving-only:
	// fitting never consults these options.
	Kernel core.KernelOptions
	// Cache enables the request-level annotation cache: responses are
	// stored in a bounded LRU keyed by (model generation, recipe
	// content hash) and repeats are served without a pool slot or a
	// Gibbs sweep, with concurrent identical misses collapsed onto one
	// fold-in. Off by default so a server stays a pure fold-in engine
	// unless asked; cmd/textureserver turns it on.
	Cache bool
	// CacheSize caps the cached responses (with Cache);
	// DefaultCacheSize when zero or negative.
	CacheSize int
	// Seed drives the pool's fold-in chains; pool member i uses
	// Seed+i so concurrent chains are decorrelated but reproducible.
	Seed uint64
	// Injector, when non-nil, injects deterministic faults into the
	// annotate path (op "annotate") — the test hook that makes the
	// degraded paths exercisable without real overload.
	Injector resilience.Injector
	// Logf sinks one-line diagnostics; log.Printf when nil.
	Logf func(format string, args ...any)

	// Ingest, when non-nil, mounts POST /ingest and POST /ingest/batch:
	// accepted recipes are durably appended to the manager's WAL before
	// the request is acknowledged, then opportunistically folded into
	// the live model (cache warm) so they are immediately annotatable.
	Ingest *ingest.Manager

	// Reload, when non-nil, produces a fresh pipeline output for
	// POST /admin/reload and Server.Reload — typically by re-reading a
	// bundle file. The endpoint is only mounted when this is set.
	Reload func(ctx context.Context) (*pipeline.Output, error)
	// AdminToken guards POST /admin/reload: requests must carry it in
	// the X-Admin-Token header. When empty the endpoint accepts any
	// caller — only sensible when the port itself is private.
	AdminToken string

	// Metrics is the registry the server records into and exposes on
	// GET /metrics. A private registry is created when nil; pass one in
	// to share it with the fitting pipeline and sampler telemetry.
	Metrics *obs.Registry
	// AccessLog, when non-nil, emits one structured line per request.
	AccessLog *slog.Logger
	// Pprof mounts net/http/pprof under GET /debug/pprof/ — off by
	// default because profiling endpoints on a public port are a
	// denial-of-service invitation.
	Pprof bool
}

// DefaultCacheSize is the annotation-cache capacity when Options.Cache
// is set without a size: at ~600 bytes per encoded card this bounds
// the cache around 2.5 MB — cheap insurance against a hot key.
const DefaultCacheSize = 4096

// DefaultOptions is the production-shaped configuration.
func DefaultOptions() Options {
	return Options{
		Pool:           runtime.GOMAXPROCS(0),
		AdmitWait:      250 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
		MaxBody:        1 << 20,
		MaxBatch:       64,
		Seed:           1,
	}
}

// Server handles texture annotation requests on a fitted model.
type Server struct {
	opts Options
	logf func(format string, args ...any)
	gate *resilience.Gate

	mu   sync.RWMutex // guards out and pool installation
	out  *pipeline.Output
	pool chan *annotate.Annotator

	// cache is the request-level annotation cache; nil when
	// Options.Cache is off.
	cache *annotCache

	// reloadMu serializes Reload calls so two concurrent /admin/reload
	// requests cannot interleave building and installing pools.
	reloadMu sync.Mutex

	ready      atomic.Bool
	draining   atomic.Bool
	generation atomic.Int64 // bumped on every model install/swap

	// follower is the attached registry follower, nil when this server
	// is not part of a registry-driven fleet. Set once by NewFollower.
	follower atomic.Pointer[Follower]

	reg             *obs.Registry
	mServed         *obs.Counter
	mPanics         *obs.Counter
	mTimeouts       *obs.Counter
	mFoldinSeconds  *obs.Histogram
	mFoldinSweeps   *obs.Counter
	mFoldinCanceled *obs.Counter
	mSwaps          *obs.Counter
	mSwapTime       *obs.Gauge
	mBatches        *obs.Counter
}

// NewPending builds a server with no model yet: /healthz answers,
// everything model-backed answers 503 until SetOutput installs a
// fitted pipeline. This is what lets the process bind its port
// immediately and fit in the background.
func NewPending(opts Options) *Server {
	if opts.Pool < 1 {
		opts.Pool = 1
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = 1 << 20
	}
	if opts.MaxBatch < 1 {
		opts.MaxBatch = 64
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opts: opts,
		logf: logf,
		gate: resilience.NewGate(opts.Pool, opts.AdmitWait),
		reg:  reg,

		mServed: reg.Counter("serve_annotate_served_total", "Annotations served successfully.", nil),
		mPanics: reg.Counter("serve_panics_total", "Handler panics recovered into 500s.", nil),
		mTimeouts: reg.Counter("serve_timeouts_total",
			"Requests that ran out of deadline (admission wait or fold-in).", nil),
		mFoldinSeconds: reg.Histogram("annotate_foldin_seconds",
			"Fold-in Gibbs chain wall time per annotation.", nil, nil),
		mFoldinSweeps: reg.Counter("annotate_foldin_sweeps_total",
			"Fold-in Gibbs sweeps run, including partial canceled chains.", nil),
		mFoldinCanceled: reg.Counter("annotate_foldin_canceled_total",
			"Fold-in chains abandoned by context cancellation.", nil),
		mSwaps: reg.Counter("serve_model_swaps_total",
			"Model installs and live swaps performed.", nil),
		mSwapTime: reg.Gauge("serve_model_swap_timestamp_seconds",
			"Unix time of the most recent model install or swap.", nil),
		mBatches: reg.Counter("serve_annotate_batches_total",
			"Batch annotation requests completed (items count into serve_annotate_served_total).", nil),
	}
	reg.GaugeFunc("serve_model_generation", "Monotonic model generation; 0 until the first install.", nil,
		func() float64 { return float64(s.generation.Load()) })
	reg.CounterFunc("serve_shed_total", "Requests shed by the admission gate.", nil, s.gate.Shed)
	reg.GaugeFunc("serve_in_flight", "Requests currently holding a pool slot.", nil,
		func() float64 { return float64(s.gate.InUse()) })
	reg.GaugeFunc("serve_pool_size", "Configured annotator pool size.", nil,
		func() float64 { return float64(s.opts.Pool) })
	reg.GaugeFunc("serve_ready", "1 when the model is fitted and not draining.", nil,
		func() float64 {
			if s.Ready() {
				return 1
			}
			return 0
		})
	if opts.Cache {
		s.cache = newAnnotCache(opts.CacheSize, reg)
	}
	return s
}

// Metrics returns the server's registry, so callers can record the
// fitting pipeline and sampler telemetry into the same /metrics page.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// buildPool constructs a full annotator pool over out, wiring fold-in
// telemetry before the model is published to handlers so every
// annotation is recorded. Concurrent fold-ins invoke the hook
// concurrently; the metrics are atomic. An unfitted output has no
// model; annotate.New rejects it.
func (s *Server) buildPool(out *pipeline.Output) (chan *annotate.Annotator, error) {
	if out.Model != nil {
		// Build the fold-in kernel before serving so a degenerate model
		// fails the install (not the first request) and no request pays
		// the per-model precomputation.
		if _, err := out.Model.BuildKernel(); err != nil {
			return nil, fmt.Errorf("serve: fold-in kernel: %w", err)
		}
		out.Model.FoldInHook = func(st core.FoldInStats) {
			s.mFoldinSeconds.Observe(st.Total.Seconds())
			s.mFoldinSweeps.Add(int64(st.Sweeps))
			if st.Canceled {
				s.mFoldinCanceled.Inc()
			}
		}
	}
	pool := make(chan *annotate.Annotator, s.opts.Pool)
	for i := 0; i < s.opts.Pool; i++ {
		ann, err := annotate.New(out)
		if err != nil {
			return nil, err
		}
		ann.Seed = s.opts.Seed + uint64(i)
		ann.Kernel = s.opts.Kernel
		if s.opts.FoldInIters > 0 {
			ann.FoldInIters = s.opts.FoldInIters
		}
		pool <- ann
	}
	return pool, nil
}

// install publishes the model and its pool, bumps the generation, and
// flips the server ready.
func (s *Server) install(out *pipeline.Output, pool chan *annotate.Annotator) {
	s.out = out
	s.pool = pool
	gen := s.generation.Add(1)
	s.mSwaps.Inc()
	s.mSwapTime.Set(float64(time.Now().UnixNano()) / 1e9)
	s.ready.Store(true)
	if gen > 1 {
		s.logf("serve: model swapped in, generation %d (K=%d, %d docs)", gen, out.Model.K, len(out.Docs))
	}
}

// SetOutput installs the fitted model, builds the annotator pool, and
// flips the server ready. It may be called once; use SwapOutput to
// replace a model that is already serving.
func (s *Server) SetOutput(out *pipeline.Output) error {
	pool, err := s.buildPool(out)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.out != nil {
		return fmt.Errorf("serve: model already installed")
	}
	s.install(out, pool)
	return nil
}

// SwapOutput atomically replaces the serving model under live traffic.
// A fresh annotator pool is built against the new model before the
// switch, so the swap itself is a pointer flip under the lock: requests
// admitted after it fold in on the new model, while in-flight requests
// finish on the pool they checked out from and return their annotators
// there — the old pool drains naturally and is collected once the last
// borrower lets go. No request is dropped or errored by a swap.
//
// Pass a freshly constructed Output (a new fit or LoadBundle result):
// installing telemetry mutates out.Model, so re-swapping the object
// that is currently serving would race with live fold-ins.
func (s *Server) SwapOutput(out *pipeline.Output) error {
	pool, err := s.buildPool(out)
	if err != nil {
		return fmt.Errorf("serve: building pool for swap: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.install(out, pool)
	return nil
}

// Reload runs Options.Reload and swaps the result in, serializing
// concurrent calls (SIGHUP and /admin/reload can race; only one
// rebuild runs at a time). Returns the generation now serving.
func (s *Server) Reload(ctx context.Context) (int64, error) {
	if s.opts.Reload == nil {
		return 0, fmt.Errorf("serve: no reload source configured")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	out, err := s.opts.Reload(ctx)
	if err != nil {
		return 0, fmt.Errorf("serve: reload source: %w", err)
	}
	if err := s.SwapOutput(out); err != nil {
		return 0, err
	}
	return s.generation.Load(), nil
}

// New builds a ready server from a fitted pipeline output with
// default options.
func New(out *pipeline.Output) (*Server, error) {
	return NewWithOptions(out, DefaultOptions())
}

// NewWithOptions builds a ready server from a fitted pipeline output.
func NewWithOptions(out *pipeline.Output, opts Options) (*Server, error) {
	s := NewPending(opts)
	if err := s.SetOutput(out); err != nil {
		return nil, err
	}
	return s, nil
}

// BeginDrain flips readiness off ahead of shutdown: /readyz answers
// 503 so load balancers stop routing here, while in-flight and
// already-routed requests still complete.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Ready reports whether the model is installed and the server is not
// draining.
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Stats is a point-in-time snapshot of the serving runtime, served on
// /statusz.
type Stats struct {
	Ready      bool  `json:"ready"`
	Draining   bool  `json:"draining"`
	Pool       int   `json:"pool"`
	InFlight   int   `json:"in_flight"`
	Served     int64 `json:"served"`
	Shed       int64 `json:"shed"`
	Panics     int64 `json:"panics"`
	Timeouts   int64 `json:"timeouts"`
	Generation int64 `json:"generation"`
	// LastFitIncidents is the installed model's supervised-fit recovery
	// history (rollbacks, reseeded restarts). Empty when the fit never
	// needed recovery or supervision was off.
	LastFitIncidents []resilience.Incident `json:"last_fit_incidents,omitempty"`
	// ShardFit summarizes the sharded corpus-scale fit that produced the
	// installed model (shard count, retries, reshards, resume progress);
	// nil when the model was fitted unsharded.
	ShardFit *pipeline.ShardFitSummary `json:"shard_fit,omitempty"`
	// RegistryDegraded is true while the registry follower cannot reach
	// its registry or store and the replica serves its last-good model.
	// Always false when no follower is attached (see Registry).
	RegistryDegraded bool `json:"registry_degraded"`
	// Registry is the registry-follower detail (generation, digest,
	// last error, staleness); nil when this server does not follow one.
	Registry *RegistryStatus `json:"registry,omitempty"`
	// Cache is the request-level annotation cache state; nil when the
	// cache is disabled.
	Cache *CacheStats `json:"cache,omitempty"`
	// Ingest is the online-ingestion state (WAL size, watermark,
	// records since fit, refit state); nil when ingestion is off.
	Ingest *ingest.Status `json:"ingest,omitempty"`
}

// CacheStats is the point-in-time state of the annotation cache on
// /statusz.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Size      int   `json:"size"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Waiters   int64 `json:"inflight_waiters"`
	Evictions int64 `json:"evictions"`
	// Leaders is the number of single-flight fold-ins running right now.
	Leaders int `json:"inflight_leaders"`
}

// Stats snapshots the runtime counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Ready:      s.ready.Load(),
		Draining:   s.draining.Load(),
		Pool:       s.opts.Pool,
		InFlight:   s.gate.InUse(),
		Served:     s.mServed.Value(),
		Shed:       s.gate.Shed(),
		Panics:     s.mPanics.Value(),
		Timeouts:   s.mTimeouts.Value(),
		Generation: s.generation.Load(),
	}
	s.mu.RLock()
	if s.out != nil {
		st.LastFitIncidents = s.out.FitIncidents
		st.ShardFit = s.out.Shards
	}
	s.mu.RUnlock()
	if f := s.follower.Load(); f != nil {
		rs := f.Status()
		st.Registry = &rs
		st.RegistryDegraded = rs.Degraded
	}
	if m := s.opts.Ingest; m != nil {
		is := m.Status()
		st.Ingest = &is
	}
	if c := s.cache; c != nil {
		st.Cache = &CacheStats{
			Capacity:  c.capacity,
			Size:      c.Len(),
			Hits:      c.hits.Value(),
			Misses:    c.misses.Value(),
			Waiters:   c.waiters.Value(),
			Evictions: c.evictions.Value(),
			Leaders:   c.Leaders(),
		}
	}
	return st
}

// Handler returns the HTTP routes wrapped in the resilience
// middleware stack:
//
//	POST /annotate        body: one recipe JSON object → texture card JSON
//	POST /annotate/batch  body: {"recipes": [...]} → index-aligned results
//	POST /ingest          body: one recipe JSON object → durable WAL ack
//	POST /ingest/batch    body: {"recipes": [...]} → index-aligned acks
//	GET  /topics     the fitted topics with gel doses and top terms
//	GET  /healthz    liveness: the process is up
//	GET  /readyz     readiness: the model is fitted and not draining
//	GET  /statusz    runtime counters (pool, shed, panics, …)
//	GET  /metrics    Prometheus text exposition of the registry
//
// When Options.Pprof is set, net/http/pprof is mounted under
// GET /debug/pprof/. Every model-facing route is instrumented with a
// per-route latency histogram and status-class counters; the route
// label is the static pattern, never the raw URL, so cardinality
// stays bounded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.Instrument(s.reg, label, h))
	}
	route("POST /annotate", "/annotate", s.handleAnnotate)
	route("POST /annotate/batch", "/annotate/batch", s.handleAnnotateBatch)
	route("GET /topics", "/topics", s.handleTopics)
	if s.opts.Ingest != nil {
		route("POST /ingest", "/ingest", s.handleIngest)
		route("POST /ingest/batch", "/ingest/batch", s.handleIngestBatch)
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, "/statusz", s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			s.logf("serve: /metrics: %v", err)
		}
	})
	if s.opts.Reload != nil {
		route("POST /admin/reload", "/admin/reload", s.handleAdminReload)
	}
	if s.opts.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	h := resilience.Timeout(s.opts.RequestTimeout, mux)
	h = resilience.Recover(h, func(format string, args ...any) {
		s.mPanics.Inc()
		s.logf(format, args...)
	})
	// Access log outermost so a panicking or timed-out request still
	// produces one line with the status the client actually saw.
	return obs.AccessLog(s.opts.AccessLog, h)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case !s.ready.Load():
		http.Error(w, "model not fitted yet", http.StatusServiceUnavailable)
	default:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	}
}

// handleAdminReload rebuilds the model from Options.Reload and swaps
// it in without interrupting traffic. Gated by X-Admin-Token when
// Options.AdminToken is set; mounted only when a reload source exists.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if s.opts.AdminToken != "" && r.Header.Get("X-Admin-Token") != s.opts.AdminToken {
		http.Error(w, "missing or wrong X-Admin-Token", http.StatusForbidden)
		return
	}
	gen, err := s.Reload(r.Context())
	if err != nil {
		s.logf("serve: /admin/reload: %v", err)
		http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, "/admin/reload", map[string]int64{"generation": gen})
}

// unavailable answers 503 with the same Retry-After advice the shed
// path derives from the gate — one helper so every not-ready and
// cache-layer 503 carries the header, set exactly once, instead of
// three hardcoded copies drifting apart.
func (s *Server) unavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(int(s.gate.RetryAfter().Seconds())))
	http.Error(w, reason, http.StatusServiceUnavailable)
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		s.unavailable(w, "model not ready")
		return
	}
	ctx := r.Context()

	if s.cache == nil {
		var rec recipe.Recipe
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			writeRecipeDecodeError(w, err)
			return
		}
		card, err := s.annotateOnce(ctx, &rec)
		if err != nil {
			s.writeAnnotateError(w, r, err)
			return
		}
		s.mServed.Inc()
		s.writeJSON(w, "/annotate", card)
		return
	}

	// Cache path: buffer the body once. A byte-identical repeat — the
	// hot-key shape — answers straight from the raw index without even
	// a JSON decode; everything else decodes and lands on the
	// canonical key.
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyBufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.opts.MaxBody)); err != nil {
		writeRecipeDecodeError(w, err)
		return
	}
	gen := s.generation.Load()
	rk := cacheKey{gen: gen, hash: sha256.Sum256(buf.Bytes())}
	if body, ok := s.cache.rawLookup(rk); ok {
		s.mServed.Inc()
		s.writeBody(w, "hit", body)
		return
	}

	var rec recipe.Recipe
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		writeRecipeDecodeError(w, err)
		return
	}
	// Canonicalize before hashing: Resolve applies the same
	// normalization the fold-in consumes (amount strings → grams), so
	// textual variants of one recipe share a key. Resolve failures are
	// the recipe's fault — same 422 the fold-in path would produce.
	if err := rec.Resolve(); err != nil {
		s.writeAnnotateError(w, r, fmt.Errorf("annotate: %w: %w", annotate.ErrRecipe, err))
		return
	}
	key := cacheKey{gen: gen, hash: hashRecipe(&rec)}
	body, f, leader := s.cache.lookup(key)
	switch {
	case body != nil:
		// Hit: served straight from memory — no pool slot, no sweeps.
		s.cache.addRaw(key, rk)
		s.mServed.Inc()
		s.writeBody(w, "hit", body)
	case !leader:
		// An identical fold-in is already running; wait for its result
		// under this request's own deadline. An expired waiter answers
		// for itself and leaves the leader folding for everyone else.
		select {
		case <-f.done:
			if f.err != nil {
				s.writeWaiterError(w, r, f.err)
				return
			}
			s.cache.addRaw(key, rk)
			s.mServed.Inc()
			s.writeBody(w, "wait", f.body)
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.mTimeouts.Inc()
				http.Error(w, "timed out waiting for an identical in-flight annotation", http.StatusGatewayTimeout)
			}
		}
	default:
		// Leader: exactly one fold-in feeds the cache and every waiter.
		// A panic mid-fold-in must complete the flight before it
		// reaches the Recover middleware — a stranded flight would turn
		// every future identical request into a waiter that can only
		// time out.
		runLeader := func() (*annotate.WireCard, error) {
			defer func() {
				if v := recover(); v != nil {
					s.cache.finish(key, f, nil, fmt.Errorf("annotation panic: %v", v))
					panic(v)
				}
			}()
			return s.annotateOnce(ctx, &rec)
		}
		card, err := runLeader()
		cached, err := s.cache.finish(key, f, card, err)
		if err != nil {
			s.writeAnnotateError(w, r, err)
			return
		}
		s.cache.addRaw(key, rk)
		s.mServed.Inc()
		s.writeBody(w, "miss", cached)
	}
}

// writeRecipeDecodeError maps a body-read or JSON failure on
// /annotate: over the cap is 413, anything else malformed is 400.
func writeRecipeDecodeError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		http.Error(w, fmt.Sprintf("recipe JSON over %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, "bad recipe JSON: "+err.Error(), http.StatusBadRequest)
}

// errAdmitTimeout marks a deadline that expired while waiting for a
// pool slot, keeping its 504 message distinct from a mid-fold-in
// expiry.
var errAdmitTimeout = errors.New("timed out waiting for an annotator")

// annotateOnce is the fold-in path of one annotation: admission
// through the gate (bounded concurrency with a bounded queue-wait —
// past the wait budget the request is shed so an overloaded annotator
// answers "try later" fast instead of queueing into timeout), an
// annotator checkout, and the Gibbs chain. Failures come back as the
// typed errors writeAnnotateError maps to statuses.
func (s *Server) annotateOnce(ctx context.Context, rec *recipe.Recipe) (*annotate.WireCard, error) {
	if err := s.gate.Acquire(ctx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w: %w", errAdmitTimeout, err)
		}
		return nil, err
	}
	defer s.gate.Release()

	// The gate capacity equals the pool size, so a checkout never
	// blocks once admitted.
	s.mu.RLock()
	pool := s.pool
	s.mu.RUnlock()
	ann := <-pool
	defer func() { pool <- ann }()

	if err := resilience.Inject(ctx, s.opts.Injector, "annotate"); err != nil {
		return nil, err
	}
	card, err := ann.Annotate(ctx, rec)
	if err != nil {
		return nil, err
	}
	wire := card.Wire()
	return &wire, nil
}

// writeAnnotateError maps an annotation failure to its status: a
// saturated gate is 429 with retry advice, recipe faults are the
// client's (422), expired deadlines are 504, a vanished client gets
// nothing, and everything else is a 500 — logged, because a 5xx the
// operator cannot see is a 5xx that never gets fixed.
func (s *Server) writeAnnotateError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, resilience.ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.gate.RetryAfter().Seconds())))
		http.Error(w, "annotator pool saturated; retry shortly", http.StatusTooManyRequests)
	case errors.Is(err, errAdmitTimeout):
		s.mTimeouts.Inc()
		http.Error(w, errAdmitTimeout.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, annotate.ErrRecipe):
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeouts.Inc()
		http.Error(w, "annotation timed out", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled), errors.Is(err, core.ErrCanceled):
		s.logf("serve: %s %s: abandoned: %v", r.Method, r.URL.Path, err)
	default:
		s.logf("serve: %s %s: internal: %v", r.Method, r.URL.Path, err)
		http.Error(w, "internal annotation failure", http.StatusInternalServerError)
	}
}

// writeWaiterError maps the leader's failure for a single-flight
// waiter. One difference from the leader's own mapping: a canceled
// leader (its client vanished mid-fold-in) is not this waiter's
// fault and not a timeout — the waiter is told to retry with the
// cache layer's 503.
func (s *Server) writeWaiterError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, core.ErrCanceled) {
		s.unavailable(w, "in-flight annotation canceled; retry")
		return
	}
	s.writeAnnotateError(w, r, err)
}

// writeBody writes a cached (or just-cached) annotation response. The
// X-Annotation-Cache header says how this request was served: "hit"
// from the cache, "wait" from an in-flight fold-in, "miss" by leading
// one.
func (s *Server) writeBody(w http.ResponseWriter, state string, body []byte) {
	w.Header().Set("X-Annotation-Cache", state)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if _, err := w.Write(body); err != nil {
		s.logf("serve: /annotate: response write: %v", err)
	}
}

// TopicInfo is the wire form of one fitted topic on GET /topics,
// shared with the client SDK.
type TopicInfo struct {
	Topic   int                 `json:"topic"`
	Recipes int                 `json:"recipes"`
	Gels    map[string]float64  `json:"gels"`
	Terms   []annotate.WireTerm `json:"terms"`
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	// Same readiness check as the annotate routes: a draining server
	// must stop accepting new /topics work too, not just fold-ins.
	if !s.Ready() {
		s.unavailable(w, "model not ready")
		return
	}
	s.mu.RLock()
	out := s.out
	s.mu.RUnlock()
	counts := out.Model.DocsPerTopic()
	topics := make([]TopicInfo, 0, out.Model.K)
	for k := 0; k < out.Model.K; k++ {
		info := TopicInfo{Topic: k, Recipes: counts[k], Gels: map[string]float64{}}
		for axis, conc := range linkage.TopicMeanConcentrations(out.Model, k, 0.0005) {
			info.Gels[recipe.Gel(axis).String()] = conc
		}
		for _, tp := range out.Model.TopTerms(k, 5) {
			if tp.Prob < 0.01 {
				break
			}
			term := out.Dict.Term(tp.ID)
			info.Terms = append(info.Terms, annotate.WireTerm{
				Romaji: term.Romaji, Kana: term.Kana, Gloss: term.Gloss, Prob: tp.Prob,
			})
		}
		topics = append(topics, info)
	}
	s.writeJSON(w, "/topics", topics)
}

func (s *Server) writeJSON(w http.ResponseWriter, route string, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Headers are already out; all that is left is making the
		// truncated response diagnosable.
		s.logf("serve: %s: response encode: %v", route, err)
	}
}
