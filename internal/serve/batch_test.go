package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postBatch(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/annotate/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// jellyWithID is the fixture recipe under a caller-chosen ID, so
// ordering tests can tell results apart.
func jellyWithID(id string) string {
	return fmt.Sprintf(`{
		"id": %q,
		"title": "ゼリー",
		"description": "ぷるぷるです",
		"ingredients": [
			{"name": "ゼラチン", "amount": "5g"},
			{"name": "水", "amount": "400ml"}
		]
	}`, id)
}

func decodeBatch(t *testing.T, rec *httptest.ResponseRecorder) BatchResponse {
	t.Helper()
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("batch response not JSON: %v\n%s", err, rec.Body.String())
	}
	return resp
}

// TestBatchEndpointOrderingAndMetrics: results come back index-aligned
// with the request regardless of which pool member served them, and
// every served item counts into the serving metrics.
func TestBatchEndpointOrderingAndMetrics(t *testing.T) {
	opts := quietOptions()
	opts.Pool = 3
	s := newTestServer(t, opts)
	h := s.Handler()

	ids := []string{"b-0", "b-1", "b-2", "b-3", "b-4"}
	recipes := make([]string, len(ids))
	for i, id := range ids {
		recipes[i] = jellyWithID(id)
	}
	rec := postBatch(h, `{"recipes":[`+strings.Join(recipes, ",")+`]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec)
	if len(resp.Results) != len(ids) || resp.Served != len(ids) || resp.Failed != 0 {
		t.Fatalf("served=%d failed=%d results=%d, want %d/0/%d",
			resp.Served, resp.Failed, len(resp.Results), len(ids), len(ids))
	}
	for i, item := range resp.Results {
		if item.Index != i {
			t.Errorf("results[%d].Index = %d", i, item.Index)
		}
		if item.Card == nil || item.Card.RecipeID != ids[i] {
			t.Errorf("results[%d] = %+v, want card for %s", i, item, ids[i])
		}
	}
	if st := s.Stats(); st.Served != int64(len(ids)) || st.InFlight != 0 {
		t.Errorf("stats = %+v, want %d served and an empty gate", st, len(ids))
	}

	// The batch counter and the per-item served counter reach /metrics.
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	body := mrec.Body.String()
	for _, want := range []string{
		"serve_annotate_batches_total 1",
		fmt.Sprintf("serve_annotate_served_total %d", len(ids)),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestBatchPerItemErrors: a recipe the model cannot cover fails at its
// own index with the status a single request would have seen, without
// failing its siblings.
func TestBatchPerItemErrors(t *testing.T) {
	h := newTestServer(t, quietOptions()).Handler()
	body := `{"recipes":[` + strings.Join([]string{
		jellyWithID("ok-1"),
		`{"id":"no-gel","ingredients":[{"name":"水","amount":"100ml"}]}`,
		`{"id":"bad-amount","ingredients":[{"name":"ゼラチン","amount":"たっぷり"}]}`,
		`null`,
		jellyWithID("ok-2"),
	}, ",") + `]}`
	rec := postBatch(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec)
	if resp.Served != 2 || resp.Failed != 3 {
		t.Fatalf("served=%d failed=%d, want 2/3", resp.Served, resp.Failed)
	}
	wantStatus := []int{0, http.StatusUnprocessableEntity, http.StatusUnprocessableEntity, http.StatusBadRequest, 0}
	for i, item := range resp.Results {
		if wantStatus[i] == 0 {
			if item.Card == nil || item.Error != "" {
				t.Errorf("results[%d] = %+v, want a card", i, item)
			}
			continue
		}
		if item.Card != nil || item.Status != wantStatus[i] || item.Error == "" {
			t.Errorf("results[%d] = %+v, want status %d with an error", i, item, wantStatus[i])
		}
	}
}

// TestBatchValidation covers the request-shape rejections: bad JSON,
// empty batches, batches over MaxBatch, oversize bodies, not-ready
// servers.
func TestBatchValidation(t *testing.T) {
	opts := quietOptions()
	opts.MaxBatch = 2
	h := newTestServer(t, opts).Handler()
	if rec := postBatch(h, "not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", rec.Code)
	}
	if rec := postBatch(h, `{"recipes":[]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", rec.Code)
	}
	three := `{"recipes":[` + strings.Join([]string{jellyWithID("a"), jellyWithID("b"), jellyWithID("c")}, ",") + `]}`
	if rec := postBatch(h, three); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("over MaxBatch: %d, want 413", rec.Code)
	}

	small := quietOptions()
	small.MaxBatch = 2
	small.MaxBody = 64 // batch cap = 128 bytes
	hs := newTestServer(t, small).Handler()
	big := `{"recipes":[{"id":"big","description":"` + strings.Repeat("ぷ", 300) + `"}]}`
	if rec := postBatch(hs, big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: %d, want 413", rec.Code)
	}

	pending := NewPending(quietOptions()).Handler()
	if rec := postBatch(pending, `{"recipes":[`+jellyWithID("x")+`]}`); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("not ready: %d, want 503", rec.Code)
	}
}

// TestBatchCancellationShedsRemainder: when the request deadline dies
// mid-batch, the in-flight chain is abandoned and the items not yet
// started are shed without burning sweeps — the batch still answers
// with per-item statuses instead of an empty 504.
func TestBatchCancellationShedsRemainder(t *testing.T) {
	opts := quietOptions()
	opts.Pool = 1
	opts.FoldInIters = 5_000_000 // one chain outlives the deadline by itself
	opts.RequestTimeout = 50 * time.Millisecond
	s := newTestServer(t, opts)
	h := s.Handler()

	recipes := make([]string, 4)
	for i := range recipes {
		recipes[i] = jellyWithID(fmt.Sprintf("c-%d", i))
	}
	start := time.Now()
	rec := postBatch(h, `{"recipes":[`+strings.Join(recipes, ",")+`]}`)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("batch ignored its deadline (took %v)", elapsed)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec)
	if resp.Served != 0 || resp.Failed != len(recipes) {
		t.Fatalf("served=%d failed=%d, want 0/%d", resp.Served, resp.Failed, len(recipes))
	}
	for i, item := range resp.Results {
		if item.Card != nil || item.Status != http.StatusGatewayTimeout {
			t.Errorf("results[%d] = %+v, want shed with 504", i, item)
		}
	}
	if st := s.Stats(); st.Timeouts < int64(len(recipes)) || st.InFlight != 0 {
		t.Errorf("stats = %+v, want every item counted as a timeout", st)
	}
}

// TestBatchParallelAcrossPool: a batch on a multi-annotator pool must
// actually fan out — with per-item delays injected, the wall clock of
// the batch stays well under the serial sum.
func TestBatchParallelAcrossPool(t *testing.T) {
	opts := quietOptions()
	opts.Pool = 4
	s := newTestServer(t, opts)
	h := s.Handler()

	recipes := make([]string, 8)
	for i := range recipes {
		recipes[i] = jellyWithID(fmt.Sprintf("p-%d", i))
	}
	body := `{"recipes":[` + strings.Join(recipes, ",") + `]}`

	rec := postBatch(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec)
	if resp.Served != len(recipes) {
		t.Fatalf("served %d/%d: %s", resp.Served, len(recipes), rec.Body.String())
	}
	// All gate slots returned; a second batch still works.
	if st := s.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight %d after batch, want 0", st.InFlight)
	}
	if rec := postBatch(h, body); rec.Code != http.StatusOK {
		t.Errorf("second batch: %d", rec.Code)
	}
}
