package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/recipe"
	"repro/internal/resilience"
)

// bodyBufPool recycles the request/response byte buffers of the
// annotate and batch endpoints, so steady-state traffic does not
// reallocate bodies per call.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// batchRequest is the wire form of POST /annotate/batch.
type batchRequest struct {
	Recipes []*recipe.Recipe `json:"recipes"`
}

// BatchItem is one recipe's outcome, index-aligned with the request.
// Exactly one of Card or Error is set; Status carries the HTTP status
// the item would have received as a single request. Shared with the
// client SDK.
type BatchItem struct {
	Index  int                `json:"index"`
	Card   *annotate.WireCard `json:"card,omitempty"`
	Error  string             `json:"error,omitempty"`
	Status int                `json:"status,omitempty"`
}

// BatchResponse is the wire form of a batch result. Results preserve
// request order; a failed item never fails its siblings.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	Served  int         `json:"served"`
	Failed  int         `json:"failed"`
}

// handleAnnotateBatch folds a batch of recipes in parallel across the
// annotator pool. With the cache enabled, a pre-pass resolves and
// hashes every recipe first: cached items are answered immediately
// without a pool slot, identical recipes within the batch fold in
// once, and only the remaining misses claim annotators. Admission for
// the misses takes one gate slot the way a single request would (shed
// with 429 when saturated), then claims opportunistic extra slots —
// up to the pool size or the miss count, whichever is smaller — so
// spare capacity shortens the batch without starving single-recipe
// traffic. Items fail individually: a recipe the model cannot cover
// reports its own error and status at its index while the rest of the
// batch completes. When the request context ends mid-batch the
// remaining items are shed with the context's status instead of
// burning Gibbs sweeps on them.
func (s *Server) handleAnnotateBatch(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		s.unavailable(w, "model not ready")
		return
	}
	ctx := r.Context()

	// The whole batch shares a body cap of MaxBody per allowed recipe.
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyBufPool.Put(buf)
	limit := s.opts.MaxBody * int64(s.opts.MaxBatch)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, limit)); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch body over %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading batch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req batchRequest
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad batch JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Recipes) == 0 {
		http.Error(w, "batch has no recipes", http.StatusBadRequest)
		return
	}
	if len(req.Recipes) > s.opts.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d recipes over the %d limit", len(req.Recipes), s.opts.MaxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}

	results := make([]BatchItem, len(req.Recipes))

	// Cache pre-pass: answer hits without pool work, collapse
	// duplicates within the batch onto one fold-in, and leave only
	// genuine misses for the workers.
	var keys []cacheKey
	pending := make([]int, 0, len(req.Recipes))
	aliases := map[int]int{} // duplicate index → pending index that folds in for it
	if s.cache != nil {
		keys = make([]cacheKey, len(req.Recipes))
		gen := s.generation.Load()
		firstMiss := map[cacheKey]int{}
		for i, rec := range req.Recipes {
			if rec == nil {
				results[i] = BatchItem{Index: i, Error: "null recipe", Status: http.StatusBadRequest}
				continue
			}
			if err := rec.Resolve(); err != nil {
				results[i] = s.batchFailure(i, fmt.Errorf("annotate: %w: %w", annotate.ErrRecipe, err))
				continue
			}
			keys[i] = cacheKey{gen: gen, hash: hashRecipe(rec)}
			if card, ok := s.cache.get(keys[i]); ok {
				s.mServed.Inc()
				results[i] = BatchItem{Index: i, Card: card}
				continue
			}
			if prev, dup := firstMiss[keys[i]]; dup {
				aliases[i] = prev
				continue
			}
			firstMiss[keys[i]] = i
			pending = append(pending, i)
		}
	} else {
		for i := range req.Recipes {
			pending = append(pending, i)
		}
	}

	if len(pending) > 0 {
		// One slot is admitted under the normal shed policy; extras are
		// taken only if free right now.
		if err := s.gate.Acquire(ctx); err != nil {
			switch {
			case errors.Is(err, resilience.ErrSaturated):
				w.Header().Set("Retry-After", strconv.Itoa(int(s.gate.RetryAfter().Seconds())))
				http.Error(w, "annotator pool saturated; retry shortly", http.StatusTooManyRequests)
			case errors.Is(err, context.DeadlineExceeded):
				s.mTimeouts.Inc()
				http.Error(w, "timed out waiting for an annotator", http.StatusGatewayTimeout)
			}
			return
		}
		workers := 1
		for workers < s.opts.Pool && workers < len(pending) && s.gate.TryAcquire() {
			workers++
		}

		s.mu.RLock()
		pool := s.pool
		s.mu.RUnlock()

		var next atomic.Int64
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer s.gate.Release()
				ann := <-pool
				defer func() { pool <- ann }()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(pending) {
						return
					}
					i := pending[n]
					results[i] = s.annotateBatchItem(ctx, ann, i, req.Recipes[i])
					if s.cache != nil && results[i].Card != nil {
						s.cache.put(keys[i], results[i].Card)
					}
				}
			}()
		}
		wg.Wait()
	}

	// Duplicates share their twin's outcome — same card pointer, same
	// error, their own index.
	for i, src := range aliases {
		results[i] = results[src]
		results[i].Index = i
		if results[i].Card != nil {
			s.mServed.Inc()
		}
	}
	s.mBatches.Inc()

	resp := BatchResponse{Results: results}
	for i := range results {
		if results[i].Card != nil {
			resp.Served++
		} else {
			resp.Failed++
		}
	}
	out := bodyBufPool.Get().(*bytes.Buffer)
	out.Reset()
	defer bodyBufPool.Put(out)
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		s.logf("serve: /annotate/batch: response encode: %v", err)
		http.Error(w, "internal encoding failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(out.Len()))
	if _, err := w.Write(out.Bytes()); err != nil {
		s.logf("serve: /annotate/batch: response write: %v", err)
	}
}

// annotateBatchItem runs one batch item, mapping its failure to the
// status a single request would have seen. A panic is contained to
// the item (the worker goroutine is outside the Recover middleware).
func (s *Server) annotateBatchItem(ctx context.Context, ann *annotate.Annotator, i int, rec *recipe.Recipe) (item BatchItem) {
	defer func() {
		if v := recover(); v != nil {
			s.mPanics.Inc()
			s.logf("serve: /annotate/batch item %d: panic: %v", i, v)
			item = BatchItem{Index: i, Error: "internal annotation failure", Status: http.StatusInternalServerError}
		}
	}()
	if rec == nil {
		return BatchItem{Index: i, Error: "null recipe", Status: http.StatusBadRequest}
	}
	// A dead context sheds the rest of the batch before any sweeps run.
	if err := ctx.Err(); err != nil {
		return s.batchFailure(i, err)
	}
	if err := resilience.Inject(ctx, s.opts.Injector, "annotate"); err != nil {
		return s.batchFailure(i, err)
	}
	card, err := ann.Annotate(ctx, rec)
	if err != nil {
		return s.batchFailure(i, err)
	}
	s.mServed.Inc()
	wire := card.Wire()
	return BatchItem{Index: i, Card: &wire}
}

// batchFailure is writeAnnotateError for one batch index: same status
// mapping, but recorded in the item instead of the response status.
func (s *Server) batchFailure(i int, err error) BatchItem {
	switch {
	case errors.Is(err, annotate.ErrRecipe):
		return BatchItem{Index: i, Error: err.Error(), Status: http.StatusUnprocessableEntity}
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeouts.Inc()
		return BatchItem{Index: i, Error: "annotation timed out", Status: http.StatusGatewayTimeout}
	case errors.Is(err, context.Canceled), errors.Is(err, core.ErrCanceled):
		// 499: client closed request (the nginx convention) — there is
		// no one left to read the card.
		return BatchItem{Index: i, Error: "annotation canceled", Status: 499}
	default:
		s.logf("serve: /annotate/batch item %d: internal: %v", i, err)
		return BatchItem{Index: i, Error: "internal annotation failure", Status: http.StatusInternalServerError}
	}
}
