package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/recipe"
	"repro/internal/resilience"
)

// batchBufPool recycles the request/response byte buffers of the
// batch endpoint, so steady-state batches do not reallocate megabyte
// bodies per call.
var batchBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// batchRequest is the wire form of POST /annotate/batch.
type batchRequest struct {
	Recipes []*recipe.Recipe `json:"recipes"`
}

// batchItem is one recipe's outcome, index-aligned with the request.
// Exactly one of Card or Error is set; Status carries the HTTP status
// the item would have received as a single request.
type batchItem struct {
	Index  int                `json:"index"`
	Card   *annotate.WireCard `json:"card,omitempty"`
	Error  string             `json:"error,omitempty"`
	Status int                `json:"status,omitempty"`
}

// batchResponse is the wire form of a batch result. Results preserve
// request order; a failed item never fails its siblings.
type batchResponse struct {
	Results []batchItem `json:"results"`
	Served  int         `json:"served"`
	Failed  int         `json:"failed"`
}

// handleAnnotateBatch folds a batch of recipes in parallel across the
// annotator pool. Admission takes one gate slot the way a single
// request would (shed with 429 when saturated), then claims
// opportunistic extra slots — up to the pool size or the batch size,
// whichever is smaller — so spare capacity shortens the batch without
// starving single-recipe traffic. Items fail individually: a recipe
// the model cannot cover reports its own error and status at its
// index while the rest of the batch completes. When the request
// context ends mid-batch the remaining items are shed with the
// context's status instead of burning Gibbs sweeps on them.
func (s *Server) handleAnnotateBatch(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "model not ready", http.StatusServiceUnavailable)
		return
	}
	ctx := r.Context()

	// The whole batch shares a body cap of MaxBody per allowed recipe.
	buf := batchBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer batchBufPool.Put(buf)
	limit := s.opts.MaxBody * int64(s.opts.MaxBatch)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, limit)); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, fmt.Sprintf("batch body over %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading batch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req batchRequest
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad batch JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Recipes) == 0 {
		http.Error(w, "batch has no recipes", http.StatusBadRequest)
		return
	}
	if len(req.Recipes) > s.opts.MaxBatch {
		http.Error(w, fmt.Sprintf("batch of %d recipes over the %d limit", len(req.Recipes), s.opts.MaxBatch),
			http.StatusRequestEntityTooLarge)
		return
	}

	// One slot is admitted under the normal shed policy; extras are
	// taken only if free right now.
	if err := s.gate.Acquire(ctx); err != nil {
		switch {
		case errors.Is(err, resilience.ErrSaturated):
			w.Header().Set("Retry-After", strconv.Itoa(int(s.gate.RetryAfter().Seconds())))
			http.Error(w, "annotator pool saturated; retry shortly", http.StatusTooManyRequests)
		case errors.Is(err, context.DeadlineExceeded):
			s.mTimeouts.Inc()
			http.Error(w, "timed out waiting for an annotator", http.StatusGatewayTimeout)
		}
		return
	}
	workers := 1
	for workers < s.opts.Pool && workers < len(req.Recipes) && s.gate.TryAcquire() {
		workers++
	}

	s.mu.RLock()
	pool := s.pool
	s.mu.RUnlock()

	results := make([]batchItem, len(req.Recipes))
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.gate.Release()
			ann := <-pool
			defer func() { pool <- ann }()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Recipes) {
					return
				}
				results[i] = s.annotateBatchItem(ctx, ann, i, req.Recipes[i])
			}
		}()
	}
	wg.Wait()
	s.mBatches.Inc()

	resp := batchResponse{Results: results}
	for i := range results {
		if results[i].Card != nil {
			resp.Served++
		} else {
			resp.Failed++
		}
	}
	out := batchBufPool.Get().(*bytes.Buffer)
	out.Reset()
	defer batchBufPool.Put(out)
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		s.logf("serve: /annotate/batch: response encode: %v", err)
		http.Error(w, "internal encoding failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(out.Len()))
	if _, err := w.Write(out.Bytes()); err != nil {
		s.logf("serve: /annotate/batch: response write: %v", err)
	}
}

// annotateBatchItem runs one batch item, mapping its failure to the
// status a single request would have seen. A panic is contained to
// the item (the worker goroutine is outside the Recover middleware).
func (s *Server) annotateBatchItem(ctx context.Context, ann *annotate.Annotator, i int, rec *recipe.Recipe) (item batchItem) {
	defer func() {
		if v := recover(); v != nil {
			s.mPanics.Inc()
			s.logf("serve: /annotate/batch item %d: panic: %v", i, v)
			item = batchItem{Index: i, Error: "internal annotation failure", Status: http.StatusInternalServerError}
		}
	}()
	if rec == nil {
		return batchItem{Index: i, Error: "null recipe", Status: http.StatusBadRequest}
	}
	// A dead context sheds the rest of the batch before any sweeps run.
	if err := ctx.Err(); err != nil {
		return s.batchFailure(i, err)
	}
	if err := resilience.Inject(ctx, s.opts.Injector, "annotate"); err != nil {
		return s.batchFailure(i, err)
	}
	card, err := ann.Annotate(ctx, rec)
	if err != nil {
		return s.batchFailure(i, err)
	}
	s.mServed.Inc()
	wire := card.Wire()
	return batchItem{Index: i, Card: &wire}
}

// batchFailure is failAnnotate for one batch index: same status
// mapping, but recorded in the item instead of the response status.
func (s *Server) batchFailure(i int, err error) batchItem {
	switch {
	case errors.Is(err, annotate.ErrRecipe):
		return batchItem{Index: i, Error: err.Error(), Status: http.StatusUnprocessableEntity}
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeouts.Inc()
		return batchItem{Index: i, Error: "annotation timed out", Status: http.StatusGatewayTimeout}
	case errors.Is(err, context.Canceled), errors.Is(err, core.ErrCanceled):
		// 499: client closed request (the nginx convention) — there is
		// no one left to read the card.
		return batchItem{Index: i, Error: "annotation canceled", Status: 499}
	default:
		s.logf("serve: /annotate/batch item %d: internal: %v", i, err)
		return batchItem{Index: i, Error: "internal annotation failure", Status: http.StatusInternalServerError}
	}
}
