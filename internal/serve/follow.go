// Registry follower: the piece that turns one server into a fleet
// replica. A Follower polls a storage.Registry for the promoted model
// generation, fetches and integrity-verifies the bundle, and hot-swaps
// it in through the same SwapOutput path an operator reload uses —
// so a rollout is just "promote in the registry; replicas converge".
//
// Degradation contract: a replica that cannot reach the registry or
// its store KEEPS SERVING the model it has. /readyz stays green (the
// model is fine; the control plane is not), /statusz reports the
// degraded state with the last error and how stale the replica's view
// is, and the registry_degraded gauge flips for alerting. Swap safety
// is unchanged: a fetched bundle that fails digest verification,
// decodes corrupt, or builds a degenerate kernel is refused and the
// last-good model serves on.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/storage"
)

// FollowOptions configures a registry follower.
type FollowOptions struct {
	// Registry is the generation registry to follow. Required.
	Registry *storage.Registry
	// Interval is the poll cadence. Default 5s.
	Interval time.Duration
	// Pin, when non-zero, pins this replica to a specific generation ID
	// instead of following the promoted one — canary boxes and
	// bisection debugging.
	Pin int64
}

// RegistryStatus is the follower's slice of /statusz.
type RegistryStatus struct {
	// Following is true when a follower is configured.
	Following bool `json:"following"`
	// Degraded is true when the most recent poll could not complete:
	// registry unreachable, manifest corrupt, fetch or swap refused.
	// The replica still serves its last-good model.
	Degraded bool `json:"degraded"`
	// Generation is the registry generation ID currently serving
	// (0 until the first successful swap).
	Generation int64 `json:"generation"`
	// Digest is the serving bundle's content address.
	Digest string `json:"digest,omitempty"`
	// PinnedGeneration echoes FollowOptions.Pin.
	PinnedGeneration int64 `json:"pinned_generation,omitempty"`
	// LastError is the failure that put the replica in degraded mode
	// (kept until the next successful poll).
	LastError string `json:"last_error,omitempty"`
	// LastSyncUnix is when the replica last completed a successful
	// poll (Unix seconds; 0 before the first).
	LastSyncUnix int64 `json:"last_sync_unix,omitempty"`
	// StalenessSeconds is how long ago that was — how out of date this
	// replica's view of the registry may be.
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
}

// Follower polls a registry and hot-swaps promoted generations into
// its server. Create with Server.NewFollower, drive with Run (or Poll
// for deterministic tests).
type Follower struct {
	srv      *Server
	reg      *storage.Registry
	interval time.Duration
	pin      int64
	logf     func(format string, args ...any)

	mGeneration *obs.Gauge
	mDegraded   *obs.Gauge
	mFetchFails *obs.Counter
	mSwapsOK    *obs.Counter

	mu       sync.Mutex
	st       RegistryStatus
	lastSync time.Time
}

// NewFollower attaches a registry follower to the server and registers
// its metrics (registry_generation, registry_degraded,
// swap_fetch_failures_total). One follower per server: the follower
// owns the swap cadence, and two pollers racing SwapOutput would make
// generation tracking meaningless.
func (s *Server) NewFollower(opts FollowOptions) (*Follower, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("serve: follower needs a registry")
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	f := &Follower{
		srv:      s,
		reg:      opts.Registry,
		interval: opts.Interval,
		pin:      opts.Pin,
		logf:     s.logf,
		mGeneration: s.reg.Gauge("registry_generation",
			"Registry generation ID this replica is serving (0 before the first sync).", nil),
		mDegraded: s.reg.Gauge("registry_degraded",
			"1 while the registry or its store is unreachable and the replica serves its last-good model.", nil),
		mFetchFails: s.reg.Counter("swap_fetch_failures_total",
			"Promoted-generation fetches that failed (store error, digest mismatch, corrupt bundle, refused swap).", nil),
		mSwapsOK: s.reg.Counter("registry_swaps_total",
			"Generations successfully fetched from the registry and swapped in.", nil),
	}
	f.st = RegistryStatus{Following: true, PinnedGeneration: opts.Pin}
	if !s.follower.CompareAndSwap(nil, f) {
		return nil, fmt.Errorf("serve: a follower is already attached")
	}
	return f, nil
}

// Status snapshots the follower state, computing staleness at read
// time so /statusz shows live drift, not drift-as-of-last-poll.
func (f *Follower) Status() RegistryStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	if !f.lastSync.IsZero() {
		st.StalenessSeconds = time.Since(f.lastSync).Seconds()
	}
	return st
}

// Run polls until ctx ends: once immediately (so a replica with a
// reachable registry serves within one fetch of boot, not one
// interval), then on every tick. Poll errors are absorbed into the
// degraded state — the loop itself never stops short of ctx.
func (f *Follower) Run(ctx context.Context) {
	f.Poll(ctx)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			f.Poll(ctx)
		}
	}
}

// resolve picks the generation this replica should serve.
func (f *Follower) resolve(ctx context.Context) (storage.Generation, error) {
	if f.pin != 0 {
		return f.reg.Generation(ctx, f.pin)
	}
	return f.reg.Promoted(ctx)
}

// Poll performs one sync step: resolve the target generation, and if
// it differs from what is serving, fetch + verify + swap. Every
// failure leaves the last-good model serving and the follower marked
// degraded; every success (including "already current") clears
// degradation and refreshes the staleness clock. The returned error is
// what /statusz will show — callers running the loop ignore it.
func (f *Follower) Poll(ctx context.Context) error {
	gen, err := f.resolve(ctx)
	if errors.Is(err, storage.ErrNoPromoted) {
		// A reachable registry with no rollout yet is a fleet waiting,
		// not a fleet degraded.
		f.markSynced()
		return nil
	}
	if err != nil {
		f.markDegraded(fmt.Errorf("resolving generation: %w", err))
		return err
	}
	if cur := f.current(); cur.Digest == gen.Digest && cur.ID == gen.ID {
		f.markSynced()
		return nil
	}

	b, err := f.reg.Fetch(ctx, gen)
	if err != nil {
		f.mFetchFails.Inc()
		f.markDegraded(fmt.Errorf("fetching generation %d: %w", gen.ID, err))
		return err
	}
	out, err := pipeline.LoadBundle(bytes.NewReader(b))
	if err != nil {
		f.mFetchFails.Inc()
		f.markDegraded(fmt.Errorf("decoding generation %d: %w", gen.ID, err))
		return err
	}
	if err := f.srv.SwapOutput(out); err != nil {
		// The kernel gate refused the model (degenerate covariance and
		// friends): the registry promoted something unservable. Refuse,
		// report, keep the last-good model.
		f.mFetchFails.Inc()
		f.markDegraded(fmt.Errorf("swapping generation %d refused: %w", gen.ID, err))
		return err
	}
	wasDegraded := f.markSwapped(gen)
	f.mSwapsOK.Inc()
	suffix := ""
	if wasDegraded {
		suffix = " (recovered from degraded)"
	}
	f.logf("serve: registry generation %d (%.12s…) swapped in%s", gen.ID, gen.Digest, suffix)
	return nil
}

// current returns the generation serving now.
func (f *Follower) current() storage.Generation {
	f.mu.Lock()
	defer f.mu.Unlock()
	return storage.Generation{ID: f.st.Generation, Digest: f.st.Digest}
}

// markDegraded records a failed poll. The serving generation fields
// are left alone: the last-good model is still up.
func (f *Follower) markDegraded(err error) {
	f.mu.Lock()
	if !f.st.Degraded {
		f.logf("serve: registry degraded; serving last-good generation %d: %v", f.st.Generation, err)
	}
	f.st.Degraded = true
	f.st.LastError = err.Error()
	f.mu.Unlock()
	f.mDegraded.Set(1)
}

// markSynced records a successful poll that required no swap.
func (f *Follower) markSynced() {
	f.mu.Lock()
	if f.st.Degraded {
		f.logf("serve: registry reachable again; generation %d current", f.st.Generation)
	}
	f.st.Degraded = false
	f.st.LastError = ""
	f.lastSync = time.Now()
	f.st.LastSyncUnix = f.lastSync.Unix()
	f.mu.Unlock()
	f.mDegraded.Set(0)
}

// markSwapped records a successful fetch+swap and reports whether the
// follower was degraded before it.
func (f *Follower) markSwapped(gen storage.Generation) bool {
	f.mu.Lock()
	was := f.st.Degraded
	f.st.Degraded = false
	f.st.LastError = ""
	f.st.Generation = gen.ID
	f.st.Digest = gen.Digest
	f.lastSync = time.Now()
	f.st.LastSyncUnix = f.lastSync.Unix()
	f.mu.Unlock()
	f.mDegraded.Set(0)
	f.mGeneration.Set(float64(gen.ID))
	return was
}
