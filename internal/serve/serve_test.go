package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/annotate"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

var (
	outOnce sync.Once
	outFix  *pipeline.Output
	outErr  error
)

// fixtureOutput fits one small model shared by every test; servers
// themselves are cheap and built per test with whatever Options the
// scenario needs.
func fixtureOutput(t *testing.T) *pipeline.Output {
	t.Helper()
	outOnce.Do(func() {
		opts := pipeline.DefaultOptions()
		opts.Corpus.Scale = 0.2
		opts.Model.Iterations = 150
		outFix, outErr = pipeline.Run(opts)
	})
	if outErr != nil {
		t.Fatal(outErr)
	}
	return outFix
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	opts.Logf = t.Logf
	s, err := NewWithOptions(fixtureOutput(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func quietOptions() Options {
	o := DefaultOptions()
	o.AdmitWait = 2 * time.Second
	o.RequestTimeout = 30 * time.Second
	return o
}

const jellyJSON = `{
	"id": "web-1",
	"title": "ゼリー",
	"description": "ぷるぷるです",
	"ingredients": [
		{"name": "ゼラチン", "amount": "5g"},
		{"name": "水", "amount": "400ml"}
	]
}`

func postAnnotate(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/annotate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestAnnotateEndpoint(t *testing.T) {
	h := newTestServer(t, quietOptions()).Handler()
	rec := postAnnotate(h, jellyJSON)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var card annotate.WireCard
	if err := json.Unmarshal(rec.Body.Bytes(), &card); err != nil {
		t.Fatal(err)
	}
	if card.RecipeID != "web-1" || len(card.Expected) == 0 {
		t.Errorf("card = %+v", card)
	}
	if card.Attr.Hardness <= 0 {
		t.Error("no rheology on card")
	}
}

func TestAnnotateStatusMapping(t *testing.T) {
	h := newTestServer(t, quietOptions()).Handler()
	for _, tc := range []struct {
		body string
		want int
	}{
		{"not json", http.StatusBadRequest},
		{`{"unknown_field": 1}`, http.StatusBadRequest},
		// Well-formed but not annotatable: the client's recipe, not our bug.
		{`{"id":"x","ingredients":[{"name":"水","amount":"100ml"}]}`, http.StatusUnprocessableEntity},
		{`{"id":"x","ingredients":[{"name":"ゼラチン","amount":"たっぷり"}]}`, http.StatusUnprocessableEntity},
	} {
		if rec := postAnnotate(h, tc.body); rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d (%s)", tc.body, rec.Code, tc.want, rec.Body.String())
		}
	}
	// Wrong method.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/annotate", nil))
	if rec.Code == http.StatusOK {
		t.Error("GET /annotate should fail")
	}
}

func TestAnnotateOversizeBodyIs413(t *testing.T) {
	opts := quietOptions()
	opts.MaxBody = 128
	h := newTestServer(t, opts).Handler()
	big := `{"id":"big","description":"` + strings.Repeat("ぷ", 500) + `"}`
	if rec := postAnnotate(h, big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: status %d, want 413", rec.Code)
	}
}

func TestInternalFailureIs500AndLogged(t *testing.T) {
	script := resilience.NewScript()
	script.Queue("annotate", 1, resilience.Fault{Err: errors.New("model storage corrupted")})
	opts := quietOptions()
	opts.Injector = script
	var mu sync.Mutex
	var logged []string
	opts.Logf = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s, err := NewWithOptions(fixtureOutput(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusInternalServerError {
		t.Errorf("injected internal error: status %d, want 500", rec.Code)
	}
	mu.Lock()
	ok := len(logged) == 1 && strings.Contains(logged[0], "corrupted")
	mu.Unlock()
	if !ok {
		t.Errorf("internal failure log = %v", logged)
	}
	// The fault was one-shot; the server keeps serving.
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Errorf("post-failure request: status %d", rec.Code)
	}
}

func TestPanicRecoveryKeepsServing(t *testing.T) {
	script := resilience.NewScript()
	script.Queue("annotate", 1, resilience.Fault{Panic: "poisoned recipe"})
	opts := quietOptions()
	opts.Injector = script
	s := newTestServer(t, opts)
	h := s.Handler()
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusInternalServerError {
		t.Errorf("panicked request: status %d, want 500", rec.Code)
	}
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Errorf("post-panic request: status %d, want 200", rec.Code)
	}
	if st := s.Stats(); st.Panics != 1 || st.InFlight != 0 {
		t.Errorf("stats after panic = %+v (want 1 panic, 0 in flight)", st)
	}
}

func TestStalledAnnotationIs504(t *testing.T) {
	script := resilience.NewScript()
	script.Queue("annotate", 1, resilience.Fault{Delay: 5 * time.Second})
	opts := quietOptions()
	opts.RequestTimeout = 20 * time.Millisecond
	opts.Injector = script
	h := newTestServer(t, opts).Handler()
	start := time.Now()
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusGatewayTimeout {
		t.Errorf("stalled request: status %d, want 504", rec.Code)
	}
	if time.Since(start) > time.Second {
		t.Error("stalled request was not abandoned at its deadline")
	}
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Errorf("post-stall request: status %d", rec.Code)
	}
}

// TestCancellationMidFoldIn gives the pool absurdly long chains and a
// short request deadline: the deadline must reach down into the Gibbs
// sweeps and abandon them, answering 504 rather than burning the CPU
// to the end of the chain.
func TestCancellationMidFoldIn(t *testing.T) {
	opts := quietOptions()
	opts.FoldInIters = 5_000_000
	opts.RequestTimeout = 30 * time.Millisecond
	h := newTestServer(t, opts).Handler()
	start := time.Now()
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusGatewayTimeout {
		t.Errorf("mid-fold-in deadline: status %d, want 504", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("fold-in ignored its deadline (took %v)", elapsed)
	}
}

// TestHammerConcurrentAnnotate drives the pooled serve path from many
// goroutines under -race: with a roomy admit budget every request
// must be served, and no annotator may be checked out twice at once
// (the race detector would catch shared fold-in state).
func TestHammerConcurrentAnnotate(t *testing.T) {
	opts := quietOptions()
	opts.Pool = 4
	s := newTestServer(t, opts)
	h := s.Handler()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				req := httptest.NewRequest("POST", "/annotate", bytes.NewReader([]byte(jellyJSON)))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if st := s.Stats(); st.Served != 48 || st.InFlight != 0 {
		t.Errorf("stats = %+v, want 48 served, 0 in flight", st)
	}
}

// TestHammerShedsUnderOverload shrinks the pool to one slow annotator
// with a near-zero admit budget: concurrent requests must be shed
// with 429 + Retry-After instead of piling into an unbounded queue.
func TestHammerShedsUnderOverload(t *testing.T) {
	script := resilience.NewScript()
	script.Queue("annotate", -1, resilience.Fault{Delay: 100 * time.Millisecond})
	opts := quietOptions()
	opts.Pool = 1
	opts.AdmitWait = time.Millisecond
	opts.Injector = script
	s := newTestServer(t, opts)
	h := s.Handler()

	const n = 8
	codes := make(chan int, n)
	retryAfter := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := postAnnotate(h, jellyJSON)
			codes <- rec.Code
			if rec.Code == http.StatusTooManyRequests {
				retryAfter <- rec.Header().Get("Retry-After")
			}
		}()
	}
	wg.Wait()
	close(codes)
	close(retryAfter)

	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	if counts[http.StatusOK] < 1 {
		t.Errorf("no request served under overload: %v", counts)
	}
	if counts[http.StatusTooManyRequests] < 1 {
		t.Errorf("tiny pool + tiny admit budget shed nothing: %v", counts)
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != n {
		t.Errorf("unexpected status mix: %v", counts)
	}
	for ra := range retryAfter {
		if ra == "" {
			t.Error("429 without Retry-After")
		}
	}
	if st := s.Stats(); st.Shed < 1 {
		t.Errorf("stats = %+v, want shed > 0", st)
	}
}

func TestTopicsEndpoint(t *testing.T) {
	h := newTestServer(t, quietOptions()).Handler()
	req := httptest.NewRequest("GET", "/topics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if body := strings.TrimSpace(rec.Body.String()); !strings.HasPrefix(body, "[") {
		t.Errorf("topics must be a JSON array, got %.40q", body)
	}
	var topics []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &topics); err != nil {
		t.Fatal(err)
	}
	if len(topics) != 10 {
		t.Errorf("%d topics", len(topics))
	}
}

func TestLifecycleReadiness(t *testing.T) {
	s := NewPending(quietOptions())
	h := s.Handler()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	// Alive but not ready: the model is still fitting.
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("pending healthz = %d", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("pending readyz = %d, want 503", rec.Code)
	}
	if rec := get("/topics"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("pending topics = %d, want 503", rec.Code)
	}
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("pending annotate = %d, want 503", rec.Code)
	} else if rec.Header().Get("Retry-After") == "" {
		t.Error("pending annotate 503 without Retry-After")
	}

	if err := s.SetOutput(fixtureOutput(t)); err != nil {
		t.Fatal(err)
	}
	if rec := get("/readyz"); rec.Code != http.StatusOK {
		t.Errorf("fitted readyz = %d", rec.Code)
	}
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Errorf("fitted annotate = %d: %s", rec.Code, rec.Body.String())
	}
	if err := s.SetOutput(fixtureOutput(t)); err == nil {
		t.Error("double SetOutput should fail")
	}

	// Draining: alive, not ready, no new annotations.
	s.BeginDrain()
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("draining healthz = %d", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", rec.Code)
	}
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining annotate = %d, want 503", rec.Code)
	}
}

func TestStatusz(t *testing.T) {
	s := newTestServer(t, quietOptions())
	h := s.Handler()
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Fatalf("annotate failed: %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("statusz = %d", rec.Code)
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || st.Served != 1 || st.Pool < 1 {
		t.Errorf("statusz = %+v", st)
	}
}

// TestGracefulDrain runs a real listener: SIGTERM (modelled as
// context cancellation) must let the in-flight annotation finish,
// then stop accepting, within the drain budget.
func TestGracefulDrain(t *testing.T) {
	script := resilience.NewScript()
	script.Queue("annotate", -1, resilience.Fault{Delay: 200 * time.Millisecond})
	opts := quietOptions()
	opts.Injector = script
	s := newTestServer(t, opts)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: s.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, hs, s, ln, 2*time.Second) }()

	// One slow request in flight…
	inFlight := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/annotate", "application/json", strings.NewReader(jellyJSON))
		if err != nil {
			inFlight <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			inFlight <- fmt.Errorf("in-flight request finished with %d", resp.StatusCode)
			return
		}
		inFlight <- nil
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the annotator
	cancel()                          // "SIGTERM"

	if err := <-inFlight; err != nil {
		t.Errorf("in-flight request during drain: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("drain = %v, want clean nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
	if s.Ready() {
		t.Error("server still ready after drain")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(&pipeline.Output{}); err == nil {
		t.Error("unfitted output should fail")
	}
}

// TestMetricsEndpoint drives one annotation through the server and
// checks /metrics exposes the serving counters, the per-route latency
// histogram, and the fold-in telemetry in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, quietOptions())
	h := s.Handler()
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Fatalf("annotate status %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE serve_annotate_served_total counter",
		"serve_annotate_served_total 1",
		"serve_shed_total 0",
		"serve_pool_size",
		"serve_ready 1",
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{le="+Inf",route="/annotate"} 1`,
		`http_requests_total{code="2xx",route="/annotate"} 1`,
		"annotate_foldin_seconds_count 1",
		"annotate_foldin_sweeps_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

// TestMetricsSharedRegistry: a caller-supplied registry is the one the
// server records into, so pipeline and sampler series share the page.
func TestMetricsSharedRegistry(t *testing.T) {
	opts := quietOptions()
	opts.Metrics = obs.NewRegistry()
	opts.Metrics.Counter("pipeline_stage_seconds_total", "external series", nil).Inc()
	s := newTestServer(t, opts)
	if s.Metrics() != opts.Metrics {
		t.Fatal("server did not adopt the supplied registry")
	}
	var buf bytes.Buffer
	if err := s.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pipeline_stage_seconds_total") || !strings.Contains(out, "serve_ready") {
		t.Errorf("shared registry exposition missing series:\n%s", out)
	}
}

// TestPprofGating: the profiling endpoints exist only when opted in.
func TestPprofGating(t *testing.T) {
	get := func(h http.Handler, path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	off := newTestServer(t, quietOptions()).Handler()
	if code := get(off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/ = %d, want 404", code)
	}
	opts := quietOptions()
	opts.Pprof = true
	on := newTestServer(t, opts).Handler()
	if code := get(on, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/ = %d, want 200", code)
	}
	if code := get(on, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof on: cmdline = %d, want 200", code)
	}
}

// TestAccessLogLines: with an AccessLog logger installed, each request
// produces one structured line carrying method, path, and status —
// including requests that fail.
func TestAccessLogLines(t *testing.T) {
	var buf bytes.Buffer
	opts := quietOptions()
	opts.AccessLog = obs.NewLogger(&buf, "json")
	h := newTestServer(t, opts).Handler()

	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Fatalf("annotate status %d", rec.Code)
	}
	if rec := postAnnotate(h, "{not json"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body status %d", rec.Code)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d access-log lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, wantStatus := range []float64{200, 400} {
		var entry map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &entry); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if entry["method"] != "POST" || entry["path"] != "/annotate" {
			t.Errorf("line %d = %v", i, entry)
		}
		if entry["status"] != wantStatus {
			t.Errorf("line %d status = %v, want %v", i, entry["status"], wantStatus)
		}
	}
}

// TestStatuszTimeouts: the timeout counter reaches /statusz.
func TestStatuszTimeouts(t *testing.T) {
	opts := quietOptions()
	script := resilience.NewScript()
	script.Queue("annotate", 1, resilience.Fault{Err: context.DeadlineExceeded})
	opts.Injector = script
	s := newTestServer(t, opts)
	h := s.Handler()
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Errorf("Stats().Timeouts = %d, want 1", st.Timeouts)
	}
}
