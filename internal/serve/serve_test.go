package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/annotate"
	"repro/internal/pipeline"
)

var (
	srvOnce sync.Once
	srv     *Server
	srvErr  error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	srvOnce.Do(func() {
		opts := pipeline.DefaultOptions()
		opts.Corpus.Scale = 0.2
		opts.Model.Iterations = 150
		out, err := pipeline.Run(opts)
		if err != nil {
			srvErr = err
			return
		}
		srv, srvErr = New(out)
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srv
}

const jellyJSON = `{
	"id": "web-1",
	"title": "ゼリー",
	"description": "ぷるぷるです",
	"ingredients": [
		{"name": "ゼラチン", "amount": "5g"},
		{"name": "水", "amount": "400ml"}
	]
}`

func TestAnnotateEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	req := httptest.NewRequest("POST", "/annotate", strings.NewReader(jellyJSON))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var card annotate.WireCard
	if err := json.Unmarshal(rec.Body.Bytes(), &card); err != nil {
		t.Fatal(err)
	}
	if card.RecipeID != "web-1" || len(card.Expected) == 0 {
		t.Errorf("card = %+v", card)
	}
	if card.Attr.Hardness <= 0 {
		t.Error("no rheology on card")
	}
}

func TestAnnotateEndpointRejectsBadInput(t *testing.T) {
	h := testServer(t).Handler()
	for _, body := range []string{
		"not json",
		`{"unknown_field": 1}`,
		`{"id":"x","ingredients":[{"name":"水","amount":"100ml"}]}`, // no gel
	} {
		req := httptest.NewRequest("POST", "/annotate", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			t.Errorf("body %q should be rejected", body)
		}
	}
	// Wrong method.
	req := httptest.NewRequest("GET", "/annotate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code == http.StatusOK {
		t.Error("GET /annotate should fail")
	}
}

func TestTopicsEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	req := httptest.NewRequest("GET", "/topics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var topics []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &topics); err != nil {
		t.Fatal(err)
	}
	if len(topics) != 10 {
		t.Errorf("%d topics", len(topics))
	}
}

func TestHealthz(t *testing.T) {
	h := testServer(t).Handler()
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("status %d", rec.Code)
	}
}

func TestConcurrentAnnotations(t *testing.T) {
	h := testServer(t).Handler()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/annotate", bytes.NewReader([]byte(jellyJSON)))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs <- rec.Body.String()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(&pipeline.Output{}); err == nil {
		t.Error("unfitted output should fail")
	}
}
