package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// TestSwapOutputUnderLoad is the zero-downtime acceptance test: while
// /annotate is hammered at exactly pool concurrency, the model is
// swapped repeatedly. Every request must succeed — no 5xx, no shed, no
// drop — and /readyz must stay green throughout.
func TestSwapOutputUnderLoad(t *testing.T) {
	opts := quietOptions()
	opts.Pool = 4
	opts.FoldInIters = 5 // keep each annotation cheap so the hammer cycles fast
	s := newTestServer(t, opts)
	h := s.Handler()

	var (
		stop     atomic.Bool
		served   atomic.Int64
		statuses sync.Map // status code → *atomic.Int64
	)
	count := func(code int) {
		v, _ := statuses.LoadOrStore(code, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}

	var wg sync.WaitGroup
	for i := 0; i < opts.Pool; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rec := postAnnotate(h, jellyJSON)
				count(rec.Code)
				if rec.Code == http.StatusOK {
					served.Add(1)
				}
			}
		}()
	}
	// Readiness watcher: /readyz must never flap during swaps.
	readyzFailures := make(chan int, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
			if rec.Code != http.StatusOK {
				select {
				case readyzFailures <- rec.Code:
				default:
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const swaps = 8
	for i := 0; i < swaps; i++ {
		if err := s.SwapOutput(cloneOutput(t)); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond) // let requests land on each generation
	}
	stop.Store(true)
	wg.Wait()

	statuses.Range(func(code, n any) bool {
		c := code.(int)
		if c != http.StatusOK {
			t.Errorf("status %d seen %d times under swap; want only 200s", c, n.(*atomic.Int64).Load())
		}
		return true
	})
	if served.Load() == 0 {
		t.Fatal("hammer produced no successful annotations; test proved nothing")
	}
	select {
	case code := <-readyzFailures:
		t.Errorf("/readyz answered %d during swaps", code)
	default:
	}
	if got := s.Stats().Generation; got != swaps+1 {
		t.Errorf("generation %d after %d swaps on a fresh server, want %d", got, swaps, swaps+1)
	}
	if shed := s.Stats().Shed; shed != 0 {
		t.Errorf("%d requests shed at pool-level concurrency; swaps must not steal slots", shed)
	}
}

// TestSwapOutputConcurrent: parallel swaps serialize safely and every
// one lands (generation counts them all).
func TestSwapOutputConcurrent(t *testing.T) {
	s := newTestServer(t, quietOptions())
	var wg sync.WaitGroup
	const n = 6
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.SwapOutput(cloneOutput(t)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Generation; got != n+1 {
		t.Errorf("generation %d, want %d", got, n+1)
	}
}

// cloneOutput returns the fixture with a distinct Output and Model
// header, as a real reload (which decodes a fresh bundle) would
// produce. Swapping the very same *pipeline.Output in while it serves
// is not supported: buildPool installs fold-in telemetry on the model.
func cloneOutput(t *testing.T) *pipeline.Output {
	t.Helper()
	return cloneOf(fixtureOutput(t))
}

// cloneOf is cloneOutput for an arbitrary source output.
func cloneOf(src *pipeline.Output) *pipeline.Output {
	o := *src
	o.Model = src.Model.ShallowClone()
	return &o
}

func postReload(h http.Handler, token string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/admin/reload", nil)
	if token != "" {
		req.Header.Set("X-Admin-Token", token)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestAdminReload covers the gated endpoint: token enforcement, a
// successful swap bumping the generation, and a failing reload source
// answering 500 while the old model keeps serving.
func TestAdminReload(t *testing.T) {
	var fail atomic.Bool
	opts := quietOptions()
	opts.AdminToken = "sekrit"
	var srv *Server
	opts.Reload = func(ctx context.Context) (*pipeline.Output, error) {
		if fail.Load() {
			return nil, errors.New("bundle file vanished")
		}
		return cloneOutput(t), nil
	}
	srv = newTestServer(t, opts)
	h := srv.Handler()

	if rec := postReload(h, ""); rec.Code != http.StatusForbidden {
		t.Errorf("tokenless reload: %d, want 403", rec.Code)
	}
	if rec := postReload(h, "wrong"); rec.Code != http.StatusForbidden {
		t.Errorf("wrong-token reload: %d, want 403", rec.Code)
	}
	rec := postReload(h, "sekrit")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: %d, body %s", rec.Code, rec.Body)
	}
	var resp map[string]int64
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp["generation"] != 2 {
		t.Errorf("generation %d after reload, want 2", resp["generation"])
	}

	// A failing source must not take the server down or swap anything.
	fail.Store(true)
	if rec := postReload(h, "sekrit"); rec.Code != http.StatusInternalServerError {
		t.Errorf("failed reload: %d, want 500", rec.Code)
	}
	if got := srv.Stats().Generation; got != 2 {
		t.Errorf("failed reload changed generation to %d", got)
	}
	if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
		t.Errorf("annotate after failed reload: %d", rec.Code)
	}
}

// TestAdminReloadUnmounted: without a reload source the endpoint does
// not exist.
func TestAdminReloadUnmounted(t *testing.T) {
	s := newTestServer(t, quietOptions())
	if rec := postReload(s.Handler(), "any"); rec.Code != http.StatusNotFound {
		t.Errorf("unmounted /admin/reload: %d, want 404", rec.Code)
	}
}

// TestReloadWithoutSource: the programmatic path errors cleanly too.
func TestReloadWithoutSource(t *testing.T) {
	s := newTestServer(t, quietOptions())
	if _, err := s.Reload(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "no reload source") {
		t.Errorf("Reload without source: %v", err)
	}
}
