package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/annotate"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/resilience"
)

var (
	altOnce sync.Once
	altFix  *pipeline.Output
	altErr  error
)

// altOutput fits a second model distinguishable from fixtureOutput —
// different seed and sweep count, so its cards differ byte-for-byte.
// The swap-invalidation test needs it: after a generation bump, a
// stale cache entry and a fresh fold-in must disagree visibly.
func altOutput(t *testing.T) *pipeline.Output {
	t.Helper()
	altOnce.Do(func() {
		opts := pipeline.DefaultOptions()
		opts.Corpus.Scale = 0.2
		opts.Model.Iterations = 80
		opts.Model.Seed = 99
		altFix, altErr = pipeline.Run(opts)
	})
	if altErr != nil {
		t.Fatal(altErr)
	}
	return altFix
}

// cacheOptions is quietOptions with the cache on and a single-member
// pool: pool member i folds with Seed+i, so byte-identity assertions
// need every fold-in on the same member.
func cacheOptions() Options {
	o := quietOptions()
	o.Pool = 1
	o.Cache = true
	return o
}

// foldInCount reads how many Gibbs fold-in chains this server has run —
// the ground truth for "the cache (or single-flight) spared the work".
func foldInCount(s *Server) int64 {
	return s.Metrics().Histogram("annotate_foldin_seconds", "", nil, nil).Count()
}

// TestCacheHitByteIdentical is the core cache contract: a repeat
// request is served from memory (X-Annotation-Cache: hit, no second
// fold-in) and its body is byte-identical to the fresh response — and
// to what a cache-less server computes for the same recipe.
func TestCacheHitByteIdentical(t *testing.T) {
	s := newTestServer(t, cacheOptions())
	h := s.Handler()

	first := postAnnotate(h, jellyJSON)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d: %s", first.Code, first.Body.String())
	}
	if state := first.Header().Get("X-Annotation-Cache"); state != "miss" {
		t.Errorf("first request cache state %q, want miss", state)
	}
	second := postAnnotate(h, jellyJSON)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: %d: %s", second.Code, second.Body.String())
	}
	if state := second.Header().Get("X-Annotation-Cache"); state != "hit" {
		t.Errorf("second request cache state %q, want hit", state)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("hit differs from the fresh response:\n%s\nvs\n%s", first.Body, second.Body)
	}

	// The key hashes the canonical (resolved, sorted) recipe, so
	// reordering the ingredients is the same request.
	reordered := `{
		"id": "web-1",
		"title": "ゼリー",
		"description": "ぷるぷるです",
		"ingredients": [
			{"name": "水", "amount": "400ml"},
			{"name": "ゼラチン", "amount": "5g"}
		]
	}`
	third := postAnnotate(h, reordered)
	if state := third.Header().Get("X-Annotation-Cache"); state != "hit" {
		t.Errorf("reordered ingredients cache state %q, want hit", state)
	}

	if n := foldInCount(s); n != 1 {
		t.Errorf("%d fold-ins for three identical requests, want 1", n)
	}
	st := s.Stats()
	if st.Cache == nil || st.Cache.Hits != 2 || st.Cache.Misses != 1 || st.Cache.Size != 1 {
		t.Errorf("cache stats = %+v, want 2 hits / 1 miss / size 1", st.Cache)
	}
	if st.Served != 3 {
		t.Errorf("served = %d, want 3 (hits count as served)", st.Served)
	}

	// A cache-less server folding the same recipe on the same model and
	// seed produces the very bytes the cache replays.
	plain := quietOptions()
	plain.Pool = 1
	fresh := postAnnotate(newTestServer(t, plain).Handler(), jellyJSON)
	if fresh.Code != http.StatusOK {
		t.Fatalf("fresh server: %d", fresh.Code)
	}
	if !bytes.Equal(fresh.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("cached body differs from a cache-less fold-in:\n%s\nvs\n%s", second.Body, fresh.Body)
	}
}

// TestCacheGenerationSwapInvalidates: a model swap bumps the
// generation in the cache key, so the first request after a swap is a
// miss that folds in on the new model — byte-for-byte the response a
// fresh server on that model gives, not the stale generation's bytes.
func TestCacheGenerationSwapInvalidates(t *testing.T) {
	s := newTestServer(t, cacheOptions())
	h := s.Handler()

	stale := postAnnotate(h, jellyJSON)
	if stale.Code != http.StatusOK {
		t.Fatalf("pre-swap request: %d", stale.Code)
	}
	if rec := postAnnotate(h, jellyJSON); rec.Header().Get("X-Annotation-Cache") != "hit" {
		t.Fatalf("pre-swap repeat not a hit")
	}

	if err := s.SwapOutput(cloneOf(altOutput(t))); err != nil {
		t.Fatal(err)
	}
	swapped := postAnnotate(h, jellyJSON)
	if swapped.Code != http.StatusOK {
		t.Fatalf("post-swap request: %d: %s", swapped.Code, swapped.Body.String())
	}
	if state := swapped.Header().Get("X-Annotation-Cache"); state != "miss" {
		t.Errorf("post-swap cache state %q, want miss (generation changed)", state)
	}
	if bytes.Equal(swapped.Body.Bytes(), stale.Body.Bytes()) {
		t.Error("post-swap response equals the stale generation's bytes; cache not invalidated")
	}

	// Byte-for-byte what the new model computes, verified against an
	// independent cache-less server on the same model clone and seed.
	plain := quietOptions()
	plain.Pool = 1
	plain.Logf = t.Logf
	ps, err := NewWithOptions(cloneOf(altOutput(t)), plain)
	if err != nil {
		t.Fatal(err)
	}
	fresh := postAnnotate(ps.Handler(), jellyJSON)
	if fresh.Code != http.StatusOK {
		t.Fatalf("fresh alt server: %d", fresh.Code)
	}
	if !bytes.Equal(fresh.Body.Bytes(), swapped.Body.Bytes()) {
		t.Errorf("post-swap miss differs from a fresh fold-in on the new model:\n%s\nvs\n%s",
			swapped.Body, fresh.Body)
	}

	// The new generation caches normally from there.
	again := postAnnotate(h, jellyJSON)
	if state := again.Header().Get("X-Annotation-Cache"); state != "hit" {
		t.Errorf("post-swap repeat cache state %q, want hit", state)
	}
	if !bytes.Equal(again.Body.Bytes(), swapped.Body.Bytes()) {
		t.Error("post-swap hit differs from the post-swap miss")
	}
}

// TestCacheLRUBound drives the cache far past its capacity: the bound
// holds, evictions are counted, and recency decides who survives.
func TestCacheLRUBound(t *testing.T) {
	c := newAnnotCache(3, obs.NewRegistry())
	key := func(i int) cacheKey {
		return cacheKey{gen: 1, hash: [sha256.Size]byte{byte(i), byte(i >> 8)}}
	}
	card := &annotate.WireCard{RecipeID: "churn"}
	for i := 0; i < 10; i++ {
		c.put(key(i), card)
	}
	if n := c.Len(); n != 3 {
		t.Fatalf("cache size %d after churn, want 3", n)
	}
	if v := c.evictions.Value(); v != 7 {
		t.Errorf("evictions = %d, want 7", v)
	}
	if _, ok := c.get(key(9)); !ok {
		t.Error("most recent entry evicted")
	}
	if _, ok := c.get(key(0)); ok {
		t.Error("oldest entry survived a full churn")
	}

	// Recency: touching 7 keeps it alive through two more inserts that
	// evict the colder 8 and 9.
	if _, ok := c.get(key(7)); !ok {
		t.Fatal("entry 7 missing before the recency check")
	}
	c.put(key(10), card)
	c.put(key(11), card)
	if _, ok := c.get(key(7)); !ok {
		t.Error("recently touched entry evicted before colder ones")
	}
	if _, ok := c.get(key(8)); ok {
		t.Error("cold entry outlived the LRU bound")
	}

	// Re-putting an existing key refreshes, not duplicates.
	c.put(key(7), card)
	if n := c.Len(); n != 3 {
		t.Errorf("size %d after refreshing an existing key, want 3", n)
	}
}

// TestCacheSingleFlight posts N identical requests concurrently while
// the only fold-in is held slow: exactly one Gibbs chain runs, every
// request answers 200 with identical bytes, and exactly one of them
// led the flight.
func TestCacheSingleFlight(t *testing.T) {
	script := resilience.NewScript()
	script.Queue("annotate", 1, resilience.Fault{Delay: 300 * time.Millisecond})
	opts := cacheOptions()
	opts.Injector = script
	s := newTestServer(t, opts)
	h := s.Handler()

	const n = 8
	var (
		wg     sync.WaitGroup
		codes  [n]int
		bodies [n][]byte
		states [n]string
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postAnnotate(h, jellyJSON)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
			states[i] = rec.Header().Get("X-Annotation-Cache")
		}(i)
	}
	wg.Wait()

	misses := 0
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Errorf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs from request 0", i)
		}
		switch states[i] {
		case "miss":
			misses++
		case "wait", "hit":
		default:
			t.Errorf("request %d cache state %q", i, states[i])
		}
	}
	if misses != 1 {
		t.Errorf("%d leaders for %d identical concurrent requests, want exactly 1", misses, n)
	}
	if fc := foldInCount(s); fc != 1 {
		t.Errorf("%d fold-ins for %d identical concurrent requests, want exactly 1", fc, n)
	}
	st := s.Stats()
	if st.Cache == nil || st.Cache.Leaders != 0 {
		t.Errorf("cache stats = %+v, want no leader left in flight", st.Cache)
	}
	if st.Served != n {
		t.Errorf("served = %d, want %d", st.Served, n)
	}
}

// TestCacheWaiterDeadline: a waiter whose own deadline expires answers
// 504 for itself without poisoning the leader — the leader still
// completes, caches, and serves everyone after.
func TestCacheWaiterDeadline(t *testing.T) {
	script := resilience.NewScript()
	script.Queue("annotate", 1, resilience.Fault{Delay: 400 * time.Millisecond})
	opts := cacheOptions()
	opts.Injector = script
	s := newTestServer(t, opts)
	h := s.Handler()

	leader := make(chan *httptest.ResponseRecorder, 1)
	go func() { leader <- postAnnotate(h, jellyJSON) }()
	time.Sleep(50 * time.Millisecond) // let the leader claim the flight

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("POST", "/annotate", strings.NewReader(jellyJSON)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("expired waiter: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "in-flight") {
		t.Errorf("expired waiter body %q does not name the in-flight wait", rec.Body.String())
	}

	lrec := <-leader
	if lrec.Code != http.StatusOK {
		t.Errorf("leader after waiter expiry: status %d, want 200", lrec.Code)
	}
	after := postAnnotate(h, jellyJSON)
	if after.Code != http.StatusOK || after.Header().Get("X-Annotation-Cache") != "hit" {
		t.Errorf("post-expiry request: status %d, state %q, want a 200 hit",
			after.Code, after.Header().Get("X-Annotation-Cache"))
	}
	if fc := foldInCount(s); fc != 1 {
		t.Errorf("%d fold-ins, want 1 (the expired waiter must not refold)", fc)
	}
	if s.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", s.Stats().Timeouts)
	}
}

// TestBatchCacheReuse: the batch pre-pass answers cached items without
// pool work, collapses intra-batch duplicates onto one fold-in, and
// shares entries with the single-request endpoint.
func TestBatchCacheReuse(t *testing.T) {
	opts := cacheOptions()
	opts.Pool = 2
	s := newTestServer(t, opts)
	h := s.Handler()

	custard := `{
		"id": "custard-1",
		"title": "プリン",
		"ingredients": [
			{"name": "ゼラチン", "amount": "7g"},
			{"name": "牛乳", "amount": "300ml"}
		]
	}`
	body := `{"recipes":[` + jellyJSON + `,` + jellyJSON + `,` + custard + `]}`
	rec := postBatch(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("first batch: %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatch(t, rec)
	if resp.Served != 3 || resp.Failed != 0 {
		t.Fatalf("first batch served=%d failed=%d, want 3/0", resp.Served, resp.Failed)
	}
	dup0, _ := json.Marshal(resp.Results[0].Card)
	dup1, _ := json.Marshal(resp.Results[1].Card)
	if !bytes.Equal(dup0, dup1) {
		t.Error("intra-batch duplicates answered with different cards")
	}
	if fc := foldInCount(s); fc != 2 {
		t.Errorf("%d fold-ins for a 3-item batch with one duplicate, want 2", fc)
	}

	// The identical batch again: all three from the cache, zero new
	// fold-ins, and the gate never claimed a slot for it.
	rec = postBatch(h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("second batch: %d", rec.Code)
	}
	if resp = decodeBatch(t, rec); resp.Served != 3 {
		t.Fatalf("second batch served=%d, want 3", resp.Served)
	}
	if fc := foldInCount(s); fc != 2 {
		t.Errorf("%d fold-ins after an all-hit batch, want still 2", fc)
	}

	// Entries are shared with /annotate: the same recipe posted singly
	// is a hit, and vice-versa cached singles serve later batches.
	single := postAnnotate(h, custard)
	if single.Code != http.StatusOK || single.Header().Get("X-Annotation-Cache") != "hit" {
		t.Errorf("single request after batch: status %d, state %q, want a hit",
			single.Code, single.Header().Get("X-Annotation-Cache"))
	}
	if st := s.Stats(); st.Cache == nil || st.Cache.Hits < 4 || st.Cache.Size != 2 {
		t.Errorf("cache stats = %+v, want ≥4 hits over 2 entries", st.Cache)
	}
}

// TestDrainGates503WithRetryAfter is the readiness-sweep regression:
// after BeginDrain every model-backed route — /annotate,
// /annotate/batch, and /topics (which used to check raw readiness and
// keep serving through a drain) — answers 503 with Retry-After.
func TestDrainGates503WithRetryAfter(t *testing.T) {
	s := newTestServer(t, quietOptions())
	h := s.Handler()
	s.BeginDrain()

	for _, tc := range []struct {
		method, path, body string
	}{
		{"POST", "/annotate", jellyJSON},
		{"POST", "/annotate/batch", `{"recipes":[` + jellyJSON + `]}`},
		{"GET", "/topics", ""},
	} {
		var rd *strings.Reader
		if tc.body != "" {
			rd = strings.NewReader(tc.body)
		} else {
			rd = strings.NewReader("")
		}
		req := httptest.NewRequest(tc.method, tc.path, rd)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s %s while draining: %d, want 503", tc.method, tc.path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s %s while draining: 503 without Retry-After", tc.method, tc.path)
		}
	}
}

// TestCacheStatuszAndMetrics: the cache surfaces on /statusz and in
// the Prometheus exposition; a cache-less server reports neither.
func TestCacheStatuszAndMetrics(t *testing.T) {
	s := newTestServer(t, cacheOptions())
	h := s.Handler()
	for i := 0; i < 2; i++ {
		if rec := postAnnotate(h, jellyJSON); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("statusz has no cache block with the cache enabled")
	}
	if st.Cache.Capacity != DefaultCacheSize || st.Cache.Size != 1 ||
		st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Errorf("statusz cache = %+v", st.Cache)
	}

	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	body := mrec.Body.String()
	for _, want := range []string{
		"serve_cache_hits_total 1",
		"serve_cache_misses_total 1",
		"serve_cache_inflight_waiters_total 0",
		"serve_cache_evictions_total 0",
		"serve_cache_size 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	off := newTestServer(t, quietOptions())
	if off.Stats().Cache != nil {
		t.Error("statusz reports a cache block with the cache disabled")
	}
}
