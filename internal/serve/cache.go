package serve

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"sync"

	"repro/internal/annotate"
	"repro/internal/obs"
	"repro/internal/recipe"
)

// cacheKey identifies one cached annotation: the model generation it
// was computed under plus the content hash of the canonicalized
// request. Including the generation means a SwapOutput (or registry
// rollout) invalidates the whole cache implicitly — requests after a
// swap compute a new-generation key that can never match an old
// entry, and the stale generation ages out of the LRU on its own.
type cacheKey struct {
	gen  int64
	hash [sha256.Size]byte
}

// hashRecipe content-addresses a resolved recipe via the shared
// canonical hash (recipe.CanonicalHash) — the same key the durable
// ingest WAL dedups on, so "already annotatable" and "already
// ingested" agree about recipe identity. The caller must have run
// Resolve first.
func hashRecipe(r *recipe.Recipe) [sha256.Size]byte {
	return recipe.CanonicalHash(r)
}

// flight is one in-progress fold-in that concurrent identical
// requests wait on. The leader fills exactly one of body or err, then
// closes done; waiters select on done against their own context, so a
// slow leader never extends a waiter past its deadline and an expired
// waiter never poisons the leader.
type flight struct {
	done chan struct{}
	body []byte
	card *annotate.WireCard
	err  error
}

// cacheEntry is one cached annotation: the encoded single-request
// response body (byte-identical to what a fresh fold-in would have
// written) plus the typed card for batch items. raws lists the raw
// request-body hashes memoized as spellings of this entry, so
// evicting it also drops its raw-index aliases.
type cacheEntry struct {
	key  cacheKey
	body []byte
	card *annotate.WireCard
	raws []cacheKey
}

// maxRawAliases bounds how many distinct raw spellings one entry will
// memoize — enough for the handful of serializations real clients
// produce, small enough that the raw index stays O(capacity).
const maxRawAliases = 8

// annotCache is the request-level annotation cache: a bounded LRU of
// encoded responses keyed by (model generation, recipe hash), with
// single-flight collapsing of concurrent identical misses so exactly
// one Gibbs fold-in feeds every waiter. All methods are safe for
// concurrent use; lookup and flight bookkeeping share one mutex so a
// finished flight and its cache insert are indivisible — no request
// can slip between them and fold in a second time.
type annotCache struct {
	capacity int

	mu       sync.Mutex
	ll       *list.List
	entries  map[cacheKey]*list.Element
	inflight map[cacheKey]*flight
	// raw indexes exact request bodies: (generation, sha256 of the raw
	// bytes) → canonical key. A byte-identical repeat — the hot-key
	// case — is answered without a JSON decode or a Resolve; any other
	// spelling of the recipe still lands on the canonical hash.
	raw map[cacheKey]cacheKey

	hits      *obs.Counter
	misses    *obs.Counter
	waiters   *obs.Counter
	evictions *obs.Counter
}

func newAnnotCache(capacity int, reg *obs.Registry) *annotCache {
	c := &annotCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*flight),
		raw:      make(map[cacheKey]cacheKey),
		hits: reg.Counter("serve_cache_hits_total",
			"Annotations served from the request cache without a fold-in.", nil),
		misses: reg.Counter("serve_cache_misses_total",
			"Annotation requests that missed the cache.", nil),
		waiters: reg.Counter("serve_cache_inflight_waiters_total",
			"Requests collapsed onto an identical in-flight fold-in.", nil),
		evictions: reg.Counter("serve_cache_evictions_total",
			"Cache entries evicted by the LRU bound.", nil),
	}
	reg.GaugeFunc("serve_cache_size", "Annotation responses currently cached.", nil,
		func() float64 { return float64(c.Len()) })
	return c
}

// Len is the number of cached entries.
func (c *annotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Leaders is the number of single-flight fold-ins currently running.
func (c *annotCache) Leaders() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.inflight)
}

// lookup resolves key in one critical section: a cached body (hit), an
// existing flight to wait on, or a fresh flight the caller now leads
// and must complete with finish. The single critical section is what
// makes the exactly-one-fold-in guarantee hold — there is no window
// between a miss and flight creation for a second leader to slip
// through.
func (c *annotCache) lookup(key cacheKey) (body []byte, f *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits.Inc()
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).body, nil, false
	}
	c.misses.Inc()
	if f, ok := c.inflight[key]; ok {
		c.waiters.Inc()
		return nil, f, false
	}
	f = &flight{done: make(chan struct{})}
	c.inflight[key] = f
	return nil, f, true
}

// rawLookup resolves an exact request-body hash through the raw
// index. A hit skips the whole decode-resolve-hash pipeline; a miss
// says nothing about the canonical key — the caller decodes and tries
// lookup. A memo whose canonical entry was evicted is dropped here.
func (c *annotCache) rawLookup(rk cacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.raw[rk]
	if !ok {
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		delete(c.raw, rk)
		return nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// addRaw memoizes rk as one spelling of key's request, so the next
// byte-identical body short-circuits through rawLookup. A no-op when
// the entry is gone or already carries its alias quota.
func (c *annotCache) addRaw(key, rk cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return
	}
	ent := el.Value.(*cacheEntry)
	if len(ent.raws) >= maxRawAliases {
		return
	}
	if _, dup := c.raw[rk]; dup {
		return
	}
	c.raw[rk] = key
	ent.raws = append(ent.raws, rk)
}

// get is the flight-free lookup the batch pre-pass uses: a hit
// returns the typed card, a miss returns nothing and the caller folds
// in itself (batch items do not join single-flights; their pool slots
// are already claimed).
func (c *annotCache) get(key cacheKey) (*annotate.WireCard, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits.Inc()
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).card, true
	}
	c.misses.Inc()
	return nil, false
}

// put inserts an annotation computed outside a flight (a batch item),
// encoding the card into the body a single request would have
// received.
func (c *annotCache) put(key cacheKey, card *annotate.WireCard) {
	body, err := encodeCard(card)
	if err != nil {
		return // unencodable card: nothing sane to cache
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, body, card)
}

// finish completes a flight: on success the result enters the cache
// and every waiter receives the body; on failure the waiters receive
// the leader's typed error and nothing is cached (the next identical
// request leads a fresh attempt). The flight is removed and the cache
// filled under one lock so no request can miss both.
func (c *annotCache) finish(key cacheKey, f *flight, card *annotate.WireCard, err error) ([]byte, error) {
	var body []byte
	if err == nil {
		body, err = encodeCard(card)
	}
	c.mu.Lock()
	if err == nil {
		c.insertLocked(key, body, card)
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	f.body, f.card, f.err = body, card, err
	close(f.done)
	return body, err
}

// insertLocked adds or refreshes an entry and enforces the LRU bound.
func (c *annotCache) insertLocked(key cacheKey, body []byte, card *annotate.WireCard) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		ent.body, ent.card = body, card
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, card: card})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		old := oldest.Value.(*cacheEntry)
		delete(c.entries, old.key)
		for _, rk := range old.raws {
			delete(c.raw, rk)
		}
		c.evictions.Inc()
	}
}

// encodeCard renders the card exactly as writeJSON would have: same
// encoder settings, same trailing newline — a cache hit is
// byte-identical to the fresh response.
func encodeCard(card *annotate.WireCard) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(card); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
