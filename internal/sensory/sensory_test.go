package sensory

import (
	"math"
	"testing"

	"repro/internal/lexicon"
	"repro/internal/rheology"
)

// tableISamples evaluates the panel on the paper's 13 empirical
// settings.
func tableISamples() []rheology.Attributes {
	out := make([]rheology.Attributes, len(rheology.TableI))
	for i, m := range rheology.TableI {
		out[i] = m.Attr
	}
	return out
}

func TestEvaluateShape(t *testing.T) {
	p := DefaultPanel()
	evals, err := p.Evaluate(lexicon.Default(), tableISamples())
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 13 {
		t.Fatalf("%d evaluations", len(evals))
	}
	for _, e := range evals {
		if len(e.Scores) != p.Subjects {
			t.Fatalf("%d scores", len(e.Scores))
		}
		for _, s := range e.Scores {
			if s.Hardness < 1 || s.Hardness > 9 || s.Cohesive < 1 || s.Cohesive > 9 || s.Adhesive < 1 || s.Adhesive > 9 {
				t.Fatalf("score out of scale: %+v", s)
			}
			if len(s.Words) == 0 || len(s.Words) > 3 {
				t.Fatalf("%d words chosen", len(s.Words))
			}
		}
	}
}

func TestSensoryInstrumentalCorrelation(t *testing.T) {
	p := DefaultPanel()
	evals, err := p.Evaluate(lexicon.Default(), tableISamples())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Correlate(evals) {
		// The correlation studies the paper cites report strong but
		// imperfect sensory-instrumental agreement; the simulated panel
		// should land in that regime on every axis.
		if c.Spearman < 0.6 {
			t.Errorf("%v Spearman = %.3f, want ≥ 0.6", c.Axis, c.Spearman)
		}
		if c.Spearman > 0.999 {
			t.Errorf("%v Spearman = %.3f — a human panel is never perfect", c.Axis, c.Spearman)
		}
	}
}

func TestNoiseDegradesCorrelation(t *testing.T) {
	quiet := DefaultPanel()
	quiet.ScaleNoise = 0.1
	quiet.SubjectBias = 0.1
	noisy := DefaultPanel()
	noisy.ScaleNoise = 3
	noisy.SubjectBias = 2

	dict := lexicon.Default()
	evQuiet, err := quiet.Evaluate(dict, tableISamples())
	if err != nil {
		t.Fatal(err)
	}
	evNoisy, err := noisy.Evaluate(dict, tableISamples())
	if err != nil {
		t.Fatal(err)
	}
	q := Correlate(evQuiet)[0].Spearman
	n := Correlate(evNoisy)[0].Spearman
	if q <= n {
		t.Errorf("quiet panel %.3f should beat noisy %.3f", q, n)
	}
}

func TestWordAgreement(t *testing.T) {
	p := DefaultPanel()
	dict := lexicon.Default()
	evals, err := p.Evaluate(dict, tableISamples())
	if err != nil {
		t.Fatal(err)
	}
	// Chosen words should agree with the instrumental hardness side far
	// above chance.
	if wa := WordAgreement(dict, evals, 1.5); wa < 0.65 {
		t.Errorf("word agreement = %.3f, want ≥ 0.65", wa)
	}
	if got := WordAgreement(dict, nil, 1.5); !math.IsNaN(got) {
		t.Error("no data should give NaN")
	}
}

func TestHardSamplesDrawHardWords(t *testing.T) {
	p := DefaultPanel()
	dict := lexicon.Default()
	soft := rheology.Attributes{Hardness: 0.2, Cohesiveness: 0.6, Adhesiveness: 0.1}
	hard := rheology.Attributes{Hardness: 5.5, Cohesiveness: 0.1, Adhesiveness: 0}
	evals, err := p.Evaluate(dict, []rheology.Attributes{soft, hard})
	if err != nil {
		t.Fatal(err)
	}
	meanHardScore := func(e Evaluation) float64 {
		s, n := 0.0, 0
		for _, sc := range e.Scores {
			for _, id := range sc.Words {
				s += dict.Term(id).Hardness
				n++
			}
		}
		return s / float64(n)
	}
	if !(meanHardScore(evals[0]) < meanHardScore(evals[1])) {
		t.Errorf("word hardness: soft sample %.3f vs hard sample %.3f",
			meanHardScore(evals[0]), meanHardScore(evals[1]))
	}
	// Panel-mean scale scores order correctly too.
	if !(evals[0].MeanHardness() < evals[1].MeanHardness()) {
		t.Error("scale scores should order soft < hard")
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	p := DefaultPanel()
	dict := lexicon.Default()
	a, err := p.Evaluate(dict, tableISamples()[:3])
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Evaluate(dict, tableISamples()[:3])
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Scores[0].Hardness != b[0].Scores[0].Hardness {
		t.Error("same seed must give identical panels")
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := DefaultPanel()
	p.Subjects = 1
	if _, err := p.Evaluate(lexicon.Default(), tableISamples()); err == nil {
		t.Error("tiny panel should fail")
	}
	p = DefaultPanel()
	p.VocabularySize = 2
	if _, err := p.Evaluate(lexicon.Default(), tableISamples()); err == nil {
		t.Error("tiny vocabulary should fail")
	}
}

func TestTopWords(t *testing.T) {
	p := DefaultPanel()
	dict := lexicon.Default()
	// All samples identical and very sticky: sticky words dominate.
	sticky := rheology.Attributes{Hardness: 0.5, Cohesiveness: 0.3, Adhesiveness: 8}
	evals, err := p.Evaluate(dict, []rheology.Attributes{sticky, sticky, sticky, sticky})
	if err != nil {
		t.Fatal(err)
	}
	top := TopWords(dict, evals, 5)
	if len(top) != 5 {
		t.Fatalf("%d top words", len(top))
	}
	stickyCount := 0
	for _, term := range top {
		if term.AdhesivenessSense() == lexicon.SenseSticky {
			stickyCount++
		}
	}
	if stickyCount < 2 {
		t.Errorf("only %d/5 top words are sticky for a very sticky sample: %v", stickyCount, top)
	}
}
